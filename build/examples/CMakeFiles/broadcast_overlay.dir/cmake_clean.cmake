file(REMOVE_RECURSE
  "CMakeFiles/broadcast_overlay.dir/broadcast_overlay.cpp.o"
  "CMakeFiles/broadcast_overlay.dir/broadcast_overlay.cpp.o.d"
  "broadcast_overlay"
  "broadcast_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
