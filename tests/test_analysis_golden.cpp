// Golden-value regression tests for the analysis pipeline.
//
// The solver stack (CSR structure/value split, Anderson-accelerated inner
// and outer loops, warm-started sweeps, parallel SpMV) is free to change
// *how* it computes, but not *what*: these tests pin the §6.4 / Fig 6.3
// indegree statistics and the Lemma 7.5 exhaustive-chain facts to values
// captured from the original dense damped solver, at tolerances far below
// anything a correct reimplementation could miss.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "analysis/degree_mc.hpp"
#include "analysis/global_mc.hpp"
#include "common/stats.hpp"
#include "graph/digraph.hpp"

namespace gossip::analysis {
namespace {

struct Fig63Golden {
  double loss;
  double in_mean;
  double in_sd;
};

// Captured from the seed solver (dense transition rebuild, damped outer
// fixed point at tolerance 1e-11, plain power iteration at 1e-13) at the
// paper's operating point dL = 18, s = 40.
constexpr Fig63Golden kFig63[] = {
    {0.00, 27.970338041052326, 3.6135991814190493},
    {0.01, 26.825551578602482, 4.0051442383505362},
    {0.05, 24.259845264953892, 4.7074965173462981},
    {0.10, 22.777657797537543, 4.9915952801321417},
};

double in_sd(const DegreeMcResult& r) {
  return std::sqrt(pmf_moments(r.in_pmf).variance);
}

TEST(AnalysisGolden, Fig63IndegreeMomentsPerPoint) {
  DegreeMcParams p;  // defaults: dL = 18, s = 40, accelerated pipeline
  for (const Fig63Golden& g : kFig63) {
    p.loss = g.loss;
    const auto r = solve_degree_mc(p);
    ASSERT_TRUE(r.converged) << "loss=" << g.loss;
    EXPECT_NEAR(r.expected_in, g.in_mean, 1e-9) << "loss=" << g.loss;
    EXPECT_NEAR(in_sd(r), g.in_sd, 1e-9) << "loss=" << g.loss;
  }
}

TEST(AnalysisGolden, Fig63IndegreeMomentsWarmSweep) {
  // The warm-started sweep must land on the same fixed points as the cold
  // per-point solves — warm starts change the path, not the destination.
  DegreeMcParams p;
  std::vector<double> losses;
  for (const Fig63Golden& g : kFig63) losses.push_back(g.loss);
  const auto results = solve_degree_mc_sweep(p, losses);
  ASSERT_EQ(results.size(), std::size(kFig63));
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].converged) << "loss=" << kFig63[i].loss;
    EXPECT_NEAR(results[i].expected_in, kFig63[i].in_mean, 1e-9)
        << "loss=" << kFig63[i].loss;
    EXPECT_NEAR(in_sd(results[i]), kFig63[i].in_sd, 1e-9)
        << "loss=" << kFig63[i].loss;
  }
}

TEST(AnalysisGolden, Fig63DampedBaselineAgrees) {
  // The seed-faithful configuration (damped outer, plain inner power
  // iteration) must still reproduce the same goldens: the acceleration is
  // an optimization, not a different model.
  DegreeMcParams p;
  p.acceleration = DegreeMcAcceleration::kDamped;
  p.accelerated_stationary = false;
  p.loss = 0.01;
  const auto r = solve_degree_mc(p);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.expected_in, kFig63[1].in_mean, 1e-9);
  EXPECT_NEAR(in_sd(r), kFig63[1].in_sd, 1e-9);
}

TEST(AnalysisGolden, Lemma75ExhaustiveChainN4) {
  // n = 4, ring + reverse ring (every node's view = its two neighbours,
  // sum degree 6 everywhere), no loss: the exhaustively built chain has
  // exactly 885 reachable states and 7008 stored transitions, and the
  // stationary distribution is uniform on the simple states (Lemma 7.5).
  GlobalMcParams p;
  p.config = SendForgetConfig{.view_size = 6, .min_degree = 0};
  p.loss = 0.0;
  Digraph g(4);
  for (NodeId u = 0; u < 4; ++u) {
    g.add_edge(u, (u + 1) % 4);
    g.add_edge(u, (u + 3) % 4);
  }
  p.initial = g;
  const auto r = build_global_mc(p);
  ASSERT_TRUE(r.exploration_complete);
  EXPECT_EQ(r.states.size(), 885u);
  EXPECT_EQ(r.chain.transition_count(), 7008u);
  EXPECT_TRUE(r.strongly_connected);
  ASSERT_TRUE(r.stationary.converged);
  // Uniformity over simple states. The golden capture saw ~2e-12; 1e-8
  // leaves room for the accelerated stationary solve to take a different
  // floating-point path to the same distribution.
  EXPECT_GT(r.simple_state_count, 0u);
  EXPECT_LT(r.simple_state_uniformity_deviation, 1e-8);
}

}  // namespace
}  // namespace gossip::analysis
