file(REMOVE_RECURSE
  "CMakeFiles/sec7_4_connectivity_threshold.dir/sec7_4_connectivity_threshold.cpp.o"
  "CMakeFiles/sec7_4_connectivity_threshold.dir/sec7_4_connectivity_threshold.cpp.o.d"
  "sec7_4_connectivity_threshold"
  "sec7_4_connectivity_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_4_connectivity_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
