#include "sim/retune.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace gossip::sim {

namespace {

std::uint64_t delta_u64(std::uint64_t now, std::uint64_t then) {
  return now >= then ? now - then : 0;
}

}  // namespace

RetuneController::RetuneController(RetuneConfig config, Solver solver,
                                   Actuator actuator)
    : config_(config),
      solver_(std::move(solver)),
      actuator_(std::move(actuator)) {
  if (!solver_) {
    throw std::invalid_argument("retune controller requires a solver");
  }
  config_.loss_window_probes = std::max<std::size_t>(
      2, config_.loss_window_probes);
  config_.min_probes = std::max<std::size_t>(2, config_.min_probes);
}

void RetuneController::bind_oracle(obs::TheoryOracle* oracle) {
  oracle_ = oracle;
  if (oracle_ == nullptr) return;
  const obs::TheoryPrediction& pred = oracle_->prediction();
  target_out_ = pred.expected_out;
  view_size_ = pred.view_size;
  installed_min_degree_ = pred.min_degree;
  if (!primed_) original_min_degree_ = pred.min_degree;
  primed_ = pred.valid();
}

bool RetuneController::estimate_loss(std::uint64_t round,
                                     const obs::CumulativeCounters& counters) {
  Snapshot snap;
  snap.round = round;
  snap.sent = counters.sent;
  snap.dropped = counters.lost + counters.faulted + counters.to_dead;
  window_.push_back(snap);
  if (window_.size() > config_.loss_window_probes) {
    window_.erase(window_.begin());
  }
  if (window_.size() < config_.min_probes) return false;
  const Snapshot& oldest = window_.front();
  const std::uint64_t sent = delta_u64(snap.sent, oldest.sent);
  if (sent == 0) return false;
  const std::uint64_t dropped = delta_u64(snap.dropped, oldest.dropped);
  loss_estimate_ =
      static_cast<double>(dropped) / static_cast<double>(sent);
  // The validity boundary: the prediction solvers require ℓ + δ < 1.
  loss_estimate_ = std::min(loss_estimate_, 0.99 - config_.delta);
  // The plateau detector's short-horizon view: the newest interval only.
  const Snapshot& prev = window_[window_.size() - 2];
  const std::uint64_t recent_sent = delta_u64(snap.sent, prev.sent);
  if (recent_sent > 0) {
    recent_estimate_ = static_cast<double>(delta_u64(snap.dropped,
                                                     prev.dropped)) /
                       static_cast<double>(recent_sent);
    recent_estimate_ = std::min(recent_estimate_, 0.99 - config_.delta);
  }
  estimate_ready_ = true;
  return true;
}

std::size_t RetuneController::select_min_degree(
    double loss, obs::TheoryPrediction* best) const {
  // §6.3 live: smallest even dL′ at or above the originally configured dL
  // whose predicted E[out] is within degree_margin of the original target
  // while the predicted
  // duplication stays in the Lemma 6.7 band at ℓ̂. Duplication excess grows
  // with dL, so the ascending scan visits the cheapest compliant candidates
  // first; if no candidate reaches the target, the largest band-compliant
  // one is the best effort.
  const std::size_t floor_dl = original_min_degree_;
  const std::size_t ceil_dl = view_size_ - 6;
  std::size_t chosen = 0;
  bool have_fallback = false;
  for (std::size_t dl = floor_dl; dl <= ceil_dl; dl += 2) {
    obs::TheoryPrediction pred =
        solver_(view_size_, dl, loss, config_.delta);
    const bool compliant =
        pred.duplication_probability <= loss + config_.delta;
    if (compliant) {
      chosen = dl;
      *best = pred;
      have_fallback = true;
    }
    if (compliant && pred.expected_out >= target_out_ - config_.degree_margin) {
      return dl;
    }
    if (!compliant && have_fallback) break;  // only gets worse upward
  }
  return have_fallback ? chosen : floor_dl;
}

void RetuneController::retune(std::uint64_t round) {
  obs::TheoryPrediction pred;
  const std::size_t dl = select_min_degree(loss_estimate_, &pred);
  if (!pred.valid()) {
    // select_min_degree found nothing compliant; rebase on the current dL
    // at ℓ̂ so at least the oracle's reference matches reality.
    pred = solver_(view_size_, installed_min_degree_, loss_estimate_,
                   config_.delta);
  }

  RetuneEvent event;
  event.round = round;
  event.loss_estimate = loss_estimate_;
  event.old_min_degree = installed_min_degree_;
  event.new_min_degree = dl;
  event.predicted_out = pred.expected_out;
  event.predicted_duplication = pred.duplication_probability;
  event.applied = !config_.dry_run;
  events_.push_back(event);
  cooldown_until_ = round + config_.cooldown_rounds;
  if (config_.dry_run) return;

  if (dl != installed_min_degree_ && actuator_) {
    actuator_(dl);
    installed_min_degree_ = dl;
  }
  oracle_->update_prediction(std::move(pred));
  // Account the excursion between the stationary points: expected, never
  // escalated. The window may grow (maybe_extend_window) while the
  // overlay is still travelling.
  window_end_ = round + config_.window_rounds;
  extensions_ = 0;
  oracle_->declare_fault_window(round, window_end_, config_.grace_rounds);
  cooldown_until_ = window_end_ + config_.grace_rounds +
                    config_.cooldown_rounds;
  ++applied_;
}

void RetuneController::maybe_extend_window(std::uint64_t round) {
  if (extensions_ >= config_.max_extensions) return;
  if (window_end_ + config_.grace_rounds <
      round + config_.extend_headroom) {
    return;  // already past any extendable region
  }
  if (round + config_.extend_headroom < window_end_) return;  // not yet near
  // Near the end of the declared window: still out of tolerance?
  const auto& samples = oracle_->monitor().samples();
  if (samples.empty()) return;
  const obs::DriftSample& last = samples.back();
  double worst = 0.0;
  for (const double s : last.score) worst = std::max(worst, s);
  if (worst <= 1.0) return;
  window_end_ += config_.extend_rounds;
  ++extensions_;
  oracle_->declare_fault_window(round, window_end_, config_.grace_rounds);
  cooldown_until_ = window_end_ + config_.grace_rounds +
                    config_.cooldown_rounds;
}

void RetuneController::observe(std::uint64_t round,
                               const obs::CumulativeCounters& counters) {
  if (oracle_ == nullptr) return;
  if (!primed_) {
    // Late-bound prediction (oracle primed after bind): re-capture.
    bind_oracle(oracle_);
    if (!primed_) return;
  }
  if (!estimate_loss(round, counters)) return;

  // ℓ̂ has plateaued when the newest inter-probe estimate agrees with the
  // trailing window; while they disagree the window still mixes pre- and
  // post-drift traffic and the windowed value is diluted.
  const bool stable = std::abs(recent_estimate_ - loss_estimate_) <=
                      config_.stability_tolerance;

  if (!config_.dry_run && round < window_end_ + config_.grace_rounds) {
    if (pending_retune_ && stable) {
      // A provisional window is open and ℓ̂ has settled: complete the
      // install (retune() re-declares the window from here).
      pending_retune_ = false;
      if (std::abs(loss_estimate_ - oracle_->prediction().loss) >=
          config_.min_loss_step) {
        retune(round);
      }
      return;
    }
    maybe_extend_window(round);
    return;
  }
  if (round < cooldown_until_) return;
  if (applied_ >= config_.max_retunes && !config_.dry_run) return;

  // Trigger on the FIRST probe past the warn threshold on any lane: the
  // monitor escalates only after violation_streak consecutive candidates,
  // so reacting here always precedes the alarm.
  const auto& samples = oracle_->monitor().samples();
  if (samples.empty()) return;
  const obs::DriftSample& last = samples.back();
  if (last.expected) return;
  double worst = 0.0;
  for (const double s : last.score) worst = std::max(worst, s);
  if (worst <= 1.0) return;

  // Only react when a changed ℓ̂ can explain the drift. The recent
  // estimate responds within one probe of a fresh drift; the windowed one
  // lags, so either moving counts as detection.
  const double installed_loss = oracle_->prediction().loss;
  const bool window_moved =
      std::abs(loss_estimate_ - installed_loss) >= config_.min_loss_step;
  const bool recent_moved =
      std::abs(recent_estimate_ - installed_loss) >= config_.min_loss_step;
  if (!window_moved && !recent_moved) return;

  if (stable && window_moved) {
    retune(round);
    return;
  }
  if (config_.dry_run) return;  // decisions only; no provisional windows

  // Drift detected but ℓ̂ has not plateaued: the degree lanes can escalate
  // to VIOLATION within violation_streak probes — faster than the window
  // fills with post-drift traffic — so suppress escalation now and
  // install once the estimate settles.
  pending_retune_ = true;
  window_end_ = round + config_.window_rounds;
  extensions_ = 0;
  oracle_->declare_fault_window(round, window_end_, config_.grace_rounds);
}

std::string RetuneController::report() const {
  std::ostringstream out;
  out << "retune controller: " << applied_ << " applied, ℓ̂="
      << loss_estimate_ << ", installed dL=" << installed_min_degree_
      << '\n';
  for (const RetuneEvent& e : events_) {
    out << "  round " << e.round << ": ℓ̂=" << e.loss_estimate << " dL "
        << e.old_min_degree << " -> " << e.new_min_degree << " (E[out] "
        << e.predicted_out << ", dup " << e.predicted_duplication << ", "
        << (e.applied ? "applied" : "dry run") << ")\n";
  }
  return out.str();
}

void RetuneController::write_json(std::ostream& out) const {
  out << "{\"applied\":" << applied_
      << ",\"loss_estimate\":" << loss_estimate_
      << ",\"installed_min_degree\":" << installed_min_degree_
      << ",\"events\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const RetuneEvent& e = events_[i];
    if (i > 0) out << ',';
    out << "{\"round\":" << e.round << ",\"loss_estimate\":"
        << e.loss_estimate << ",\"old_min_degree\":" << e.old_min_degree
        << ",\"new_min_degree\":" << e.new_min_degree
        << ",\"predicted_out\":" << e.predicted_out
        << ",\"predicted_duplication\":" << e.predicted_duplication
        << ",\"applied\":" << (e.applied ? "true" : "false") << '}';
  }
  out << "]}";
}

}  // namespace gossip::sim
