// Sparse row-stochastic Markov chains.
//
// The global MC over membership graphs (§7.1) has up to hundreds of
// thousands of states with a handful of transitions each; this container
// stores only the nonzero off-diagonal entries (self-loop mass is implied
// by the row remainder) and provides stationary-distribution and
// structure queries.
//
// Storage is a structure/value split: transitions are accumulated as
// triplets (each add returns a stable *slot*), and finalize_structure()
// compiles them into CSR indexed by *destination* state, so one step of
// pi' = pi P is an independent fixed-order gather per output entry —
// embarrassingly parallel (see step_into) and bit-reproducible for any
// thread count. After the structure is frozen, set_prob() rewrites values
// in place without touching the pattern; the §6.2 degree-MC outer loop
// builds the sparsity pattern once and only refreshes values per fixed-
// point iteration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/solver_telemetry.hpp"

namespace gossip::markov {

class SparseChain {
 public:
  // Slot sentinel returned by add_edge for ignored (self-loop) edges.
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  explicit SparseChain(std::size_t state_count = 0);

  [[nodiscard]] std::size_t state_count() const { return row_sum_.size(); }

  // Ensures the chain has at least `count` states.
  void resize(std::size_t count);

  // Accumulates probability mass `prob` on the transition from -> to.
  // Self-transitions are ignored (they are implicit). Total outgoing mass
  // of a row must stay <= 1 (checked in finalize()).
  void add(std::size_t from, std::size_t to, double prob);

  // Structure/value split: records the transition from -> to with value 0
  // and returns a stable slot usable with set_prob() after the structure
  // is frozen. Self-loops are ignored (returns kNoSlot).
  std::size_t add_edge(std::size_t from, std::size_t to);

  // Outgoing (non-self) probability mass of a row.
  [[nodiscard]] double row_sum(std::size_t state) const {
    return row_sum_[state];
  }

  // Validates rows (throws std::runtime_error if any row exceeds 1 beyond
  // tolerance) and compiles the CSR index. Must be called before the
  // queries below.
  void finalize(double tolerance = 1e-9);

  // Freezes the sparsity pattern only; values may then be rewritten with
  // set_prob() + commit_values() any number of times.
  void finalize_structure();

  // Rewrites the value of a previously added transition. Requires
  // finalize_structure() (or finalize()). kNoSlot is ignored.
  void set_prob(std::size_t slot, double prob);

  // Recomputes row sums after a batch of set_prob calls and re-validates
  // (throws std::runtime_error on row overflow beyond tolerance).
  void commit_values(double tolerance = 1e-9);

  // pi' = pi P, exploiting sparsity. Requires finalize(). Each output
  // entry is an independent fixed-order sum over its incoming transitions,
  // parallelized over the global thread pool for large chains; results are
  // bit-identical for any thread count.
  [[nodiscard]] std::vector<double> step(const std::vector<double>& pi) const;
  // Allocation-free form; `out` is resized to state_count(). `pi` and
  // `out` must not alias.
  void step_into(const std::vector<double>& pi, std::vector<double>& out) const;

  struct StationaryResult {
    std::vector<double> distribution;
    std::size_t iterations = 0;
    bool converged = false;
    double residual = 0.0;
  };
  // Anderson-accelerated power iteration from `initial` (uniform when
  // empty). Stops when the residual ||pi P - pi||_1 drops below
  // `tolerance` — the same criterion plain power iteration uses, so the
  // result is as tight; the acceleration only shortens the path (and
  // falls back to plain power steps when the extrapolation degenerates).
  // `accelerated = false` runs classic power iteration — useful as a
  // benchmark baseline and as the bit-for-bit seed-faithful path.
  // A non-null `telemetry` receives the residual of every iteration under
  // `telemetry_name`, plus the mixer's restart/cooldown events; telemetry
  // never influences the iteration.
  [[nodiscard]] StationaryResult stationary(
      std::vector<double> initial = {}, double tolerance = 1e-12,
      std::size_t max_iterations = 200'000, bool accelerated = true,
      obs::SolverSink* telemetry = nullptr,
      std::string_view telemetry_name = "stationary") const;

  // True if every state can reach every other along positive-probability
  // transitions (self-loops ignored) — irreducibility (Lemma 7.1 checks).
  [[nodiscard]] bool strongly_connected() const;

  // True if, in addition to rows, all *columns* also sum to 1 (counting
  // implied self-loops) — the doubly stochastic property of the no-loss
  // fixed-sum chain (Lemmas 7.3/7.4 imply it; Lemma 7.5 follows).
  [[nodiscard]] bool doubly_stochastic(double tolerance = 1e-9) const;

  // Number of stored (off-diagonal) transition slots.
  [[nodiscard]] std::size_t transition_count() const { return to_.size(); }

 private:
  void build_csr();

  // Triplet (slot-indexed) storage; the build-time representation and the
  // owner of the values.
  std::vector<std::uint32_t> from_;
  std::vector<std::uint32_t> to_;
  std::vector<double> prob_;
  std::vector<double> row_sum_;

  // CSR by destination, compiled by finalize()/finalize_structure():
  // incoming transitions of state j live at [in_row_ptr_[j],
  // in_row_ptr_[j+1]) in in_src_ / in_prob_. slot_to_pos_ maps a triplet
  // slot to its CSR position so set_prob stays O(1).
  std::vector<std::size_t> in_row_ptr_;
  std::vector<std::uint32_t> in_src_;
  std::vector<double> in_prob_;
  std::vector<std::size_t> slot_to_pos_;

  bool finalized_ = false;
};

}  // namespace gossip::markov
