// Integer-bucket histograms and empirical probability mass functions.
//
// These are the primary measurement containers: degree distributions,
// occupancy counts, and survival curves are all accumulated here and then
// compared against analytical predictions with the metrics in stats.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gossip {

// Counts occurrences of non-negative integer values. Grows on demand.
class Histogram {
 public:
  Histogram() = default;

  void add(std::size_t value, std::uint64_t count = 1);

  // Total number of recorded observations.
  [[nodiscard]] std::uint64_t total() const { return total_; }

  // Count in bucket `value` (0 if never recorded).
  [[nodiscard]] std::uint64_t count(std::size_t value) const;

  // Largest value with a nonzero count; 0 for an empty histogram.
  [[nodiscard]] std::size_t max_value() const;

  [[nodiscard]] bool empty() const { return total_ == 0; }

  // Empirical mean / variance / standard deviation of the recorded values.
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

  // Normalized probability mass function p[v] = count(v) / total().
  // Returned vector has size max_value() + 1. Requires a nonempty histogram.
  [[nodiscard]] std::vector<double> pmf() const;

  // Smallest value v such that the cumulative mass through v is >= q.
  // Requires a nonempty histogram and q in [0, 1].
  [[nodiscard]] std::size_t quantile(double q) const;

  void merge(const Histogram& other);
  void clear();

  // Raw counts, indexed by value (size max_value() + 1 or smaller).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

  // Renders "value count probability" rows; used by the bench harness.
  [[nodiscard]] std::string to_table(const std::string& value_header) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace gossip
