// Newscast-style baseline (Tölgyesi & Jelasity's substrate, the paper's
// ref [33]): age-based view exchange.
//
// Every entry carries an age (in initiated actions). On initiate, a node
// picks the partner uniformly from its view, sends a *copy* of its entire
// view plus a fresh self-descriptor (age 0), and the partner replies in
// kind; each side merges both views and keeps the s youngest entries (one
// per id). Copies make the protocol loss-immune, and the age discipline
// washes out dead nodes (their descriptors stop being refreshed and age
// out) — but, like push-pull keep, the wholesale copying correlates
// neighboring views heavily, and view entries are strongly biased toward
// recently active gossip partners.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/protocol.hpp"

namespace gossip {

struct NewscastConfig {
  std::size_t view_size = 20;
};

class Newscast final : public PeerProtocol {
 public:
  Newscast(NodeId self, const NewscastConfig& config);

  [[nodiscard]] const NewscastConfig& config() const { return config_; }

  void on_initiate(Rng& rng, Transport& transport) override;
  void on_message(const Message& message, Rng& rng,
                  Transport& transport) override;

  // Age (in local initiations) of the entry in `slot`; 0 for fresh.
  [[nodiscard]] std::uint64_t entry_age(std::size_t slot) const;
  // Largest age currently in the view (0 when empty).
  [[nodiscard]] std::uint64_t max_age() const;

 private:
  // Builds the outgoing payload: a copy of the view plus our own
  // descriptor. Entry ages are encoded by ordering: the payload is sent
  // youngest-first and the receiver reconstructs relative ages; to keep
  // the wire format shared with the other protocols, absolute ages are
  // carried in a parallel ages vector inside this class and approximated
  // at the receiver by arrival order. (The membership *graph* semantics —
  // which ids are in which views — are exact; ages are a local heuristic
  // exactly as in the original protocol.)
  [[nodiscard]] std::vector<ViewEntry> snapshot_payload() const;

  // Merges candidate entries (assumed youngest-first) into the view,
  // dropping self ids and duplicates, keeping at most capacity youngest.
  void merge(const std::vector<ViewEntry>& incoming);

  NewscastConfig config_;
  // ages_[slot] parallels the view slots; meaningless for empty slots.
  std::vector<std::uint64_t> ages_;
  std::uint64_t clock_ = 0;
};

}  // namespace gossip
