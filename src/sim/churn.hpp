// Churn: joining and leaving nodes.
//
// Per §5, a joining node must know at least dL ids of live nodes before
// engaging in the protocol (obtained by copying another node's view), and it
// starts with outdegree dL and indegree 0 (§6.5). Leaving/failing nodes take
// no action at all — they just stop participating, and the protocol washes
// their ids out of other views.
#pragma once

#include <cstddef>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "sim/loss.hpp"

namespace gossip::sim {

// Collects `count` distinct ids of *live* nodes for a joiner, primarily from
// the view of `contact` (plus the contact itself), topping up from views of
// other random live nodes if needed. Throws if fewer than `count` distinct
// live ids exist in the whole system.
[[nodiscard]] std::vector<NodeId> bootstrap_ids(const Cluster& cluster,
                                                NodeId contact,
                                                std::size_t count, Rng& rng);

// Spawns a new node via `factory`, bootstrapping its view with
// `initial_degree` ids obtained from a random live contact. Returns the new
// node's id.
NodeId join_node(Cluster& cluster, const Cluster::ProtocolFactory& factory,
                 std::size_t initial_degree, Rng& rng);

// Reconnects a previously failed node (§5: "in case of reconnection, by
// probing previously seen ids"): the node probes every id remembered from
// its pre-failure view; probes of dead nodes go unanswered, and each probe
// of a live node is lost with the probe_loss model (optional). Survivors
// seed the new view, topped up via a bootstrap contact if fewer than
// `initial_degree` remain. Throws std::logic_error if the node is live.
void rejoin_node(Cluster& cluster, NodeId id,
                 const Cluster::ProtocolFactory& factory,
                 std::size_t initial_degree, Rng& rng,
                 LossModel* probe_loss = nullptr);

// A simple churn workload: each call to maybe_churn() performs, in
// expectation, `join_rate` joins and `leave_rate` leaves (Bernoulli per
// call). Never kills the last `min_live` nodes.
class ChurnProcess {
 public:
  ChurnProcess(Cluster& cluster, Cluster::ProtocolFactory factory,
               std::size_t joiner_degree, double join_rate, double leave_rate,
               std::size_t min_live = 8);

  // Applies at most one join and one leave; returns ids affected
  // (kNilNode when no such event fired).
  struct Outcome {
    NodeId joined = kNilNode;
    NodeId left = kNilNode;
  };
  Outcome maybe_churn(Rng& rng);

  [[nodiscard]] std::size_t total_joins() const { return joins_; }
  [[nodiscard]] std::size_t total_leaves() const { return leaves_; }

 private:
  Cluster& cluster_;
  Cluster::ProtocolFactory factory_;
  std::size_t joiner_degree_;
  double join_rate_;
  double leave_rate_;
  std::size_t min_live_;
  std::size_t joins_ = 0;
  std::size_t leaves_ = 0;
};

}  // namespace gossip::sim
