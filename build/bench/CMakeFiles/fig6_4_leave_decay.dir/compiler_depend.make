# Empty compiler generated dependencies file for fig6_4_leave_decay.
# This may be replaced when dependencies are built.
