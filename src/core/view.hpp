// Local membership view (u.lv in the paper, §2).
//
// A view is an array of `s` slots, each either empty (⊥) or holding a node
// id. Duplicate ids are allowed (the view is a multiset). Each nonempty slot
// additionally carries a dependence tag used to *measure* the spatial
// independence property (M4): a slot is tagged dependent when its content
// was created by a duplication (see §7.4 and the dependence MC of Fig 7.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"

namespace gossip {

struct ViewEntry {
  NodeId id = kNilNode;
  // True if this id instance was created by duplication (or is a self-edge);
  // propagated through messages. Purely observational: the protocol never
  // reads it.
  bool dependent = false;

  [[nodiscard]] bool empty() const { return id == kNilNode; }
  [[nodiscard]] bool operator==(const ViewEntry&) const = default;
};

class LocalView {
 public:
  // Creates a view with `capacity` slots, all empty. The paper requires the
  // capacity s to be even and >= 6 for its reachability proofs; that
  // constraint is enforced by the protocol configs, not here, so tests can
  // exercise small views.
  explicit LocalView(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  // Outdegree d(u): number of nonempty slots.
  [[nodiscard]] std::size_t degree() const { return degree_; }
  [[nodiscard]] std::size_t empty_slots() const {
    return capacity() - degree_;
  }
  [[nodiscard]] bool full() const { return degree_ == capacity(); }

  [[nodiscard]] bool slot_empty(std::size_t i) const;
  // Slot contents; entry(i).empty() for an empty slot.
  [[nodiscard]] const ViewEntry& entry(std::size_t i) const;

  // Writes a nonempty entry into slot i (slot may be empty or occupied).
  void set(std::size_t i, ViewEntry entry);

  // Empties slot i (idempotent).
  void clear(std::size_t i);

  // Uniformly random empty slot index. Requires empty_slots() > 0.
  // O(1): one rng draw against the occupancy index (the index partitions
  // slot numbers into a nonempty prefix and an empty suffix, maintained by
  // set/clear), so hot receive paths no longer pay an O(s) reservoir scan.
  [[nodiscard]] std::size_t random_empty_slot(Rng& rng) const;

  // Uniformly random nonempty slot index. Requires degree() > 0. O(1), see
  // random_empty_slot.
  [[nodiscard]] std::size_t random_nonempty_slot(Rng& rng) const;

  // Multiplicity of `id` among nonempty slots.
  [[nodiscard]] std::size_t multiplicity(NodeId id) const;
  [[nodiscard]] bool contains(NodeId id) const { return multiplicity(id) > 0; }

  // Nonempty entries in slot order.
  [[nodiscard]] std::vector<ViewEntry> entries() const;
  // Ids of nonempty entries in slot order (with multiplicity).
  [[nodiscard]] std::vector<NodeId> ids() const;

  // Number of nonempty slots tagged dependent.
  [[nodiscard]] std::size_t dependent_count() const;

  // Number of redundant duplicate ids within this view (multiset count
  // minus distinct count over nonempty slots).
  [[nodiscard]] std::size_t intra_view_duplicates() const;

  void clear_all();

 private:
#ifndef NDEBUG
  // Debug-only equivalence check of the occupancy index against a full scan
  // of the slots (the pre-index implementation).
  void check_index() const;
#endif

  std::vector<ViewEntry> slots_;
  // Occupancy index: `order_` is a permutation of slot numbers whose first
  // degree_ entries are exactly the nonempty slots; `pos_[i]` is slot i's
  // position within `order_`. set/clear maintain the partition with one
  // swap, making uniform empty/nonempty slot draws O(1).
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> pos_;
  std::size_t degree_ = 0;
};

}  // namespace gossip
