#include "graph/transformations.hpp"

#include <cassert>
#include <stdexcept>

namespace gossip::graph_ops {

bool can_edge_exchange(const Digraph& g, NodeId u, NodeId w, NodeId v,
                       NodeId z, const TransformLimits& limits) {
  if (u == v) return false;  // the exchange runs across the edge (u, v)
  if (g.edge_multiplicity(u, v) == 0) return false;
  if (g.edge_multiplicity(u, w) == 0) return false;
  if (g.edge_multiplicity(v, z) == 0) return false;
  // u performs a clearing action: needs d(u) > dL. v must absorb the
  // pushed ids mid-sequence: needs room for two ids.
  if (g.out_degree(u) <= limits.min_degree) return false;
  if (g.out_degree(v) + 2 > limits.view_size) return false;
  // w must be a distinct view instance from the consumed (u, v) edge.
  if (w == v && g.edge_multiplicity(u, v) < 2) return false;
  // Same on v's side for the return action.
  if (z == u && g.edge_multiplicity(v, u) < 1) return false;
  return true;
}

void edge_exchange(Digraph& g, NodeId u, NodeId w, NodeId v, NodeId z,
                   const TransformLimits& limits) {
  if (!can_edge_exchange(g, u, w, v, z, limits)) {
    throw std::logic_error("edge exchange prerequisites not met");
  }
  // Realization by two S&F actions (Appendix A):
  //   1. u sends [u, w] to v: removes (u, v), (u, w); v stores u and w:
  //      adds (v, u), (v, w).
  g.remove_edge(u, v);
  g.remove_edge(u, w);
  g.add_edge(v, u);
  g.add_edge(v, w);
  //   2. v sends [v, z] to u: removes (v, u), (v, z); u stores v and z:
  //      adds (u, v), (u, z).
  g.remove_edge(v, u);
  g.remove_edge(v, z);
  g.add_edge(u, v);
  g.add_edge(u, z);
  // Net effect: (u, w) -> (u, z) at u, (v, z) -> (v, w) at v.
}

bool can_degree_borrow(const Digraph& g, NodeId u, NodeId v,
                       const TransformLimits& limits) {
  if (g.edge_multiplicity(u, v) == 0) return false;
  if (g.out_degree(u) < 2) return false;
  if (g.out_degree(u) <= limits.min_degree) return false;
  if (g.out_degree(v) + 2 > limits.view_size) return false;
  return true;
}

void degree_borrow(Digraph& g, NodeId u, NodeId v, NodeId carried,
                   const TransformLimits& limits) {
  if (!can_degree_borrow(g, u, v, limits)) {
    throw std::logic_error("degree borrowing prerequisites not met");
  }
  const std::size_t needed = carried == v ? 2 : 1;
  if (g.edge_multiplicity(u, carried) < needed) {
    throw std::logic_error("carried id not available in u's view");
  }
  // One S&F action from u to v carrying `carried`.
  g.remove_edge(u, v);
  g.remove_edge(u, carried);
  g.add_edge(v, u);
  g.add_edge(v, carried);
}

bool is_edge_exchange_of(const Digraph& before, const Digraph& after,
                         NodeId u, NodeId w, NodeId v, NodeId z) {
  Digraph expected = before;
  if (!expected.remove_edge(u, w)) return false;
  if (!expected.remove_edge(v, z)) return false;
  expected.add_edge(u, z);
  expected.add_edge(v, w);
  return expected == after;
}

}  // namespace gossip::graph_ops
