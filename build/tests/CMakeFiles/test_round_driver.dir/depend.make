# Empty dependencies file for test_round_driver.
# This may be replaced when dependencies are built.
