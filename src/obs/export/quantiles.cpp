#include "obs/export/quantiles.hpp"

#include <algorithm>

namespace gossip::obs {

namespace {

double bucket_lower_edge(const std::vector<double>& upper_bounds,
                         std::size_t bucket) {
  if (bucket == 0) {
    return std::min(0.0, upper_bounds.empty() ? 0.0 : upper_bounds.front());
  }
  return upper_bounds[bucket - 1];
}

}  // namespace

double histogram_quantile(const std::vector<double>& upper_bounds,
                          const std::vector<std::uint64_t>& counts, double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);

  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;

    if (b >= upper_bounds.size()) {
      // Overflow bucket: clamp to the largest finite bound.
      return upper_bounds.empty() ? 0.0 : upper_bounds.back();
    }
    const double lo = bucket_lower_edge(upper_bounds, b);
    const double hi = upper_bounds[b];
    const double within = (rank - before) / static_cast<double>(counts[b]);
    return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
  }
  // Unreachable when total > 0; keep a defined answer for safety.
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

HistogramQuantiles estimate_quantiles(
    const std::vector<double>& upper_bounds,
    const std::vector<std::uint64_t>& counts) {
  HistogramQuantiles q;
  q.p50 = histogram_quantile(upper_bounds, counts, 0.50);
  q.p90 = histogram_quantile(upper_bounds, counts, 0.90);
  q.p99 = histogram_quantile(upper_bounds, counts, 0.99);
  return q;
}

}  // namespace gossip::obs
