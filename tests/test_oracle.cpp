// TheoryOracle + DriftMonitor: the prediction bridge from the analysis
// solvers, the WARN/VIOLATION hysteresis, each check's synthetic trip
// wiring, and the end-to-end contracts — a correctly parameterized run
// stays quiet, a mis-parameterized run (simulated ℓ ≠ predicted ℓ) trips
// the monitor and dumps the armed flight recorder, and attaching the
// oracle never perturbs the simulation (bit-identical fingerprints).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "analysis/prediction.hpp"
#include "core/flat_send_forget.hpp"
#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "obs/oracle/drift_monitor.hpp"
#include "obs/oracle/flight_recorder.hpp"
#include "obs/oracle/theory_oracle.hpp"
#include "obs/timeseries.hpp"
#include "sim/sharded_driver.hpp"

namespace gossip {
namespace {

using obs::DriftCheck;
using obs::DriftMonitor;
using obs::DriftMonitorConfig;
using obs::DriftState;

obs::TheoryPrediction prediction_at(double loss) {
  const SendForgetConfig cfg = default_send_forget_config();
  analysis::DegreeMcParams params;
  params.view_size = cfg.view_size;
  params.min_degree = cfg.min_degree;
  params.loss = loss;
  return analysis::make_theory_prediction(params);
}

// ---------------------------------------------------------------------------
// analysis::make_theory_prediction — the §6.2/§7 bridge.
// ---------------------------------------------------------------------------

TEST(TheoryPrediction, BridgePackagesPaperPredictions) {
  const obs::TheoryPrediction pred = prediction_at(0.02);
  const SendForgetConfig cfg = default_send_forget_config();
  ASSERT_TRUE(pred.valid());
  EXPECT_DOUBLE_EQ(pred.loss, 0.02);
  EXPECT_EQ(pred.view_size, cfg.view_size);
  EXPECT_EQ(pred.min_degree, cfg.min_degree);

  const double out_mass =
      std::accumulate(pred.out_pmf.begin(), pred.out_pmf.end(), 0.0);
  const double in_mass =
      std::accumulate(pred.in_pmf.begin(), pred.in_pmf.end(), 0.0);
  EXPECT_NEAR(out_mass, 1.0, 1e-9);
  EXPECT_NEAR(in_mass, 1.0, 1e-9);

  // Obs 5.1: outdegree lives in [dL, s].
  EXPECT_GE(pred.expected_out, static_cast<double>(cfg.min_degree));
  EXPECT_LE(pred.expected_out, static_cast<double>(cfg.view_size));
  for (std::size_t d = 0; d < cfg.min_degree && d < pred.out_pmf.size(); ++d) {
    EXPECT_NEAR(pred.out_pmf[d], 0.0, 1e-12) << "mass below dL at " << d;
  }

  // Lemma 6.7: dup probability in [ℓ, ℓ+δ]; Lemma 6.6: dup = ℓ + del.
  EXPECT_GE(pred.duplication_probability, pred.loss);
  EXPECT_LE(pred.duplication_probability, pred.loss + pred.delta);
  EXPECT_NEAR(pred.duplication_probability,
              pred.loss + pred.deletion_probability, 1e-3);

  // Lemma 7.9: α ≥ 1 − 2(ℓ+δ).
  EXPECT_DOUBLE_EQ(pred.alpha_lower_bound,
                   1.0 - 2.0 * (pred.loss + pred.delta));
}

// ---------------------------------------------------------------------------
// DriftMonitor hysteresis.
// ---------------------------------------------------------------------------

void probe_with_score(DriftMonitor& monitor, std::uint64_t round,
                      double score) {
  monitor.begin_probe(round);
  monitor.record(DriftCheck::kIndependence, score);
  monitor.end_probe();
}

TEST(DriftMonitor, WarnsImmediatelyAboveTolerance) {
  DriftMonitor monitor;
  probe_with_score(monitor, 1, 0.8);
  EXPECT_EQ(monitor.state(DriftCheck::kIndependence), DriftState::kOk);
  probe_with_score(monitor, 2, 1.5);
  EXPECT_EQ(monitor.state(DriftCheck::kIndependence), DriftState::kWarn);
  EXPECT_EQ(monitor.warn_transitions(), 1u);
  EXPECT_EQ(monitor.violation_transitions(), 0u);
  EXPECT_DOUBLE_EQ(monitor.peak_score(DriftCheck::kIndependence), 1.5);
}

TEST(DriftMonitor, ViolationNeedsConsecutiveCandidates) {
  DriftMonitor monitor;  // violation_ratio 2.0, violation_streak 2
  probe_with_score(monitor, 1, 2.5);
  EXPECT_EQ(monitor.state(DriftCheck::kIndependence), DriftState::kWarn);
  // An in-tolerance probe breaks the candidate streak.
  probe_with_score(monitor, 2, 0.5);
  probe_with_score(monitor, 3, 2.5);
  EXPECT_EQ(monitor.violation_transitions(), 0u);
  probe_with_score(monitor, 4, 2.5);
  EXPECT_EQ(monitor.state(DriftCheck::kIndependence), DriftState::kViolation);
  EXPECT_EQ(monitor.violation_transitions(), 1u);
  EXPECT_EQ(monitor.overall_state(), DriftState::kViolation);
}

TEST(DriftMonitor, ClearsAfterOkStreakAndFiresCallback) {
  DriftMonitor monitor;  // clear_streak 3
  std::vector<obs::DriftTransition> fired;
  monitor.set_violation_callback(
      [&fired](const obs::DriftTransition& t) { fired.push_back(t); });
  probe_with_score(monitor, 1, 3.0);
  probe_with_score(monitor, 2, 3.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].check, DriftCheck::kIndependence);
  EXPECT_EQ(fired[0].to, DriftState::kViolation);
  EXPECT_EQ(fired[0].round, 2u);

  probe_with_score(monitor, 3, 0.5);
  probe_with_score(monitor, 4, 0.5);
  EXPECT_EQ(monitor.state(DriftCheck::kIndependence), DriftState::kViolation);
  probe_with_score(monitor, 5, 0.5);
  EXPECT_EQ(monitor.state(DriftCheck::kIndependence), DriftState::kOk);
  // Per-probe samples retained for the drift trajectory dump.
  EXPECT_EQ(monitor.samples().size(), 5u);
  EXPECT_EQ(fired.size(), 1u);
}

// ---------------------------------------------------------------------------
// Synthetic single-check trips (hand-built probes, warmup disabled).
// ---------------------------------------------------------------------------

// Prediction with no degree marginals: check_degree is skipped (valid()
// is false), so a synthetic probe exercises exactly one lane.
obs::TheoryPrediction rates_only_prediction() {
  obs::TheoryPrediction pred;
  pred.loss = 0.02;
  pred.delta = 0.01;
  pred.alpha_lower_bound = 0.94;
  return pred;
}

TEST(TheoryOracle, AlphaShortfallEscalatesToViolation) {
  obs::OracleConfig config;
  config.warmup_rounds = 0;
  obs::TheoryOracle oracle(rates_only_prediction(), config);

  obs::FlatClusterProbe probe;
  probe.occupied_slots = 1000;
  probe.dependent_entries = 150;  // α̂ = 0.85, shortfall 0.09 → score 4.5
  const obs::CumulativeCounters counters{};
  oracle.observe(1, probe, {}, counters);
  EXPECT_TRUE(oracle.last().alpha_checked);
  EXPECT_NEAR(oracle.last().alpha_hat, 0.85, 1e-12);
  EXPECT_EQ(oracle.monitor().state(DriftCheck::kIndependence),
            DriftState::kWarn);
  oracle.observe(2, probe, {}, counters);
  EXPECT_EQ(oracle.monitor().state(DriftCheck::kIndependence),
            DriftState::kViolation);
  EXPECT_EQ(oracle.monitor().violation_transitions(), 1u);
  // Nothing else tripped: no degree marginals, empty occurrence span,
  // and an empty rate window.
  EXPECT_FALSE(oracle.last().degree_checked);
  EXPECT_FALSE(oracle.last().uniformity_checked);
  EXPECT_FALSE(oracle.last().rates_checked);
  EXPECT_EQ(oracle.monitor().state(DriftCheck::kDuplicationRate),
            DriftState::kOk);
}

TEST(TheoryOracle, UniformityOutlierTripsAndDeadIdsAreExcluded) {
  obs::OracleConfig config;
  config.warmup_rounds = 0;
  config.min_probes_for_uniformity = 1;
  obs::TheoryOracle oracle(rates_only_prediction(), config);

  // 256 ids (the studentized max-z saturates near sqrt(m−1), so a small m
  // could never reach the violation ratio): one id hoards occurrences.
  constexpr std::size_t kIds = 256;
  std::vector<std::uint32_t> occurrences(kIds, 100);
  occurrences[0] = 4000;
  obs::FlatClusterProbe probe;
  probe.occupied_slots = 100;  // α̂ in tolerance (no dependent entries)
  const obs::CumulativeCounters counters{};

  oracle.observe(1, probe, occurrences, counters);
  ASSERT_TRUE(oracle.last().uniformity_checked);
  EXPECT_EQ(oracle.last().uniformity_ids, kIds);
  EXPECT_GT(oracle.last().uniformity_z,
            2.0 * oracle.last().uniformity_limit);
  EXPECT_EQ(oracle.monitor().state(DriftCheck::kUniformity),
            DriftState::kWarn);

  // A dead id mid-stream (churn) drops out of the stable-id set.
  occurrences[5] = obs::kDeadNodeOccurrence;
  oracle.observe(2, probe, occurrences, counters);
  EXPECT_EQ(oracle.last().uniformity_ids, kIds - 1);
  EXPECT_EQ(oracle.monitor().state(DriftCheck::kUniformity),
            DriftState::kViolation);
  EXPECT_EQ(oracle.monitor().state(DriftCheck::kIndependence),
            DriftState::kOk);
}

TEST(TheoryOracle, RateWindowOpensAtFirstPostWarmupProbe) {
  obs::OracleConfig config;
  config.warmup_rounds = 100;
  config.min_sent_for_rates = 1000;
  obs::TheoryOracle oracle(rates_only_prediction(), config);
  obs::FlatClusterProbe probe;
  probe.occupied_slots = 100;

  // Transient counters before and at the baseline probe never enter the
  // window — only post-baseline deltas are judged.
  obs::CumulativeCounters counters;
  counters.sent = 50'000;
  counters.duplications = 40'000;  // wildly off; must be ignored
  oracle.observe(100, probe, {}, counters);
  EXPECT_FALSE(oracle.last().rates_checked);

  counters.sent += 2000;
  counters.duplications += 50;  // window dup rate 0.025 ∈ [0.02, 0.03]
  counters.deletions += 10;     // window del rate 0.005, pred 0 → score 0.25
  oracle.observe(110, probe, {}, counters);
  ASSERT_TRUE(oracle.last().rates_checked);
  EXPECT_EQ(oracle.last().window_sent, 2000u);
  EXPECT_NEAR(oracle.last().duplication_rate, 0.025, 1e-12);
  EXPECT_EQ(oracle.monitor().state(DriftCheck::kDuplicationRate),
            DriftState::kOk);

  // A window breaching the Lemma 6.7 band warns.
  counters.sent += 2000;
  counters.duplications += 240;  // window rate climbs past ℓ+δ+tolerance
  oracle.observe(120, probe, {}, counters);
  EXPECT_EQ(oracle.monitor().state(DriftCheck::kDuplicationRate),
            DriftState::kWarn);
}

// ---------------------------------------------------------------------------
// End-to-end: sharded runs with the oracle riding along.
// ---------------------------------------------------------------------------

struct ChurnRunResult {
  std::uint64_t fingerprint = 0;
  double drift_violations_gauge = 0.0;
};

// The test_sharded_driver churn schedule (8 batches of 3 rounds with a
// kill/revive pair) followed by a quiet tail out to `rounds`.
ChurnRunResult churny_oracle_run(std::size_t n, std::size_t shards,
                                 double sim_loss, std::uint64_t rounds,
                                 std::uint64_t seed,
                                 obs::TheoryOracle* oracle,
                                 obs::FlightRecorder* recorder) {
  const SendForgetConfig cfg = default_send_forget_config();
  FlatSendForgetCluster cluster(n, cfg);
  Rng graph_rng(seed * 3 + 1);
  const Digraph g = permutation_regular(n, cfg.min_degree, graph_rng);
  for (NodeId u = 0; u < n; ++u) cluster.install_view(u, g.out_neighbors(u));

  sim::ShardedDriver driver(
      cluster, sim::ShardedDriverConfig{
                   .shard_count = shards, .loss_rate = sim_loss, .seed = seed});
  driver.set_observation_stride(10);
  driver.attach_oracle(oracle);
  driver.attach_flight_recorder(recorder);

  Rng churn_picks(seed ^ 0xABCD);
  std::uint64_t done = 0;
  std::vector<NodeId> dead;
  for (int batch = 0; batch < 8; ++batch) {
    driver.run_rounds(3);
    done += 3;
    const auto victim =
        static_cast<NodeId>(churn_picks.uniform(cluster.size()));
    if (cluster.live(victim) && cluster.live_count() > n / 2) {
      driver.kill(victim);
      dead.push_back(victim);
    }
    if (!dead.empty()) {
      driver.revive(dead.back());
      dead.pop_back();
    }
  }
  if (rounds > done) driver.run_rounds(rounds - done);

  ChurnRunResult result;
  result.fingerprint = cluster.fingerprint() ^
                       (driver.actions_executed() * 0x9E37ULL) ^
                       driver.network_metrics().delivered;
  if (oracle != nullptr) {
    obs::MetricsRegistry& registry = driver.metrics_registry();
    result.drift_violations_gauge =
        registry.gauge_value(registry.gauge("drift_violations"));
  }
  return result;
}

TEST(TheoryOracleIntegration, CleanRunStaysInsideTolerances) {
  obs::TheoryOracle oracle(prediction_at(0.02));
  const ChurnRunResult run =
      churny_oracle_run(2000, 2, 0.02, 520, 99, &oracle, nullptr);
  EXPECT_EQ(oracle.monitor().violation_transitions(), 0u)
      << oracle.report();
  EXPECT_EQ(run.drift_violations_gauge, 0.0);
  EXPECT_GT(oracle.probes(), 0u);

  // The final quiescent probe exercised every lane.
  const obs::OracleSnapshot& last = oracle.last();
  EXPECT_TRUE(last.degree_checked);
  EXPECT_TRUE(last.rates_checked);
  EXPECT_TRUE(last.uniformity_checked);
  EXPECT_TRUE(last.alpha_checked);
  EXPECT_LT(last.tvd_out, last.tvd_out_limit);
  EXPECT_LT(last.tvd_in, last.tvd_in_limit);
  EXPECT_GE(last.window_sent, oracle.config().min_sent_for_rates);
}

TEST(TheoryOracleIntegration, MisparameterizedRunTripsAndDumpsRecorder) {
  // Predictions computed at ℓ=0.02; the run actually loses 10% — the
  // situation the oracle exists to catch.
  obs::TheoryOracle oracle(prediction_at(0.02));
  obs::FlightRecorder recorder(2);
  const std::string dump_path =
      ::testing::TempDir() + "oracle_misparam.trace";
  oracle.arm_flight_dump(&recorder, dump_path);

  churny_oracle_run(2000, 2, 0.10, 440, 7, &oracle, &recorder);
  EXPECT_GT(oracle.monitor().violation_transitions(), 0u)
      << oracle.report();
  EXPECT_EQ(oracle.monitor().overall_state(), DriftState::kViolation);
  ASSERT_TRUE(oracle.flight_dumped());

  obs::FlightTrace trace;
  ASSERT_TRUE(trace.load_file(dump_path));
  EXPECT_EQ(trace.shard_count(), 2u);
  EXPECT_GT(trace.events().size(), 0u);
}

TEST(TheoryOracleIntegration, ObservationNeverPerturbsTheRun) {
  const ChurnRunResult bare =
      churny_oracle_run(1024, 4, 0.05, 36, 55, nullptr, nullptr);
  obs::TheoryOracle oracle(prediction_at(0.05));
  obs::FlightRecorder recorder(4);
  oracle.arm_flight_dump(&recorder, ::testing::TempDir() + "unused.trace");
  const ChurnRunResult observed =
      churny_oracle_run(1024, 4, 0.05, 36, 55, &oracle, &recorder);
  EXPECT_EQ(bare.fingerprint, observed.fingerprint);
  EXPECT_GT(oracle.probes(), 0u);
}

}  // namespace
}  // namespace gossip
