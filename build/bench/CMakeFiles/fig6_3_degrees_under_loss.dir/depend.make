# Empty dependencies file for fig6_3_degrees_under_loss.
# This may be replaced when dependencies are built.
