#include "core/packed_view.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/flat_send_forget.hpp"
#include "graph/graph_gen.hpp"

namespace gossip {
namespace {

// ---------------------------------------------------------------------------
// PackedViewEntry encoding properties.
// ---------------------------------------------------------------------------

TEST(PackedView, IsFourBytes) {
  static_assert(sizeof(PackedViewEntry) == 4);
  static_assert(sizeof(PackedViewEntry[10]) == 40);
}

TEST(PackedView, DefaultIsEmptyWithNilSentinel) {
  const PackedViewEntry e;
  EXPECT_TRUE(e.empty());
  // The kNilNode sentinel survives packing: an empty slot reads back the
  // same id the unpacked ViewEntry would have reported.
  EXPECT_EQ(e.id(), kNilNode);
  EXPECT_FALSE(e.dependent());
  EXPECT_EQ(e.unpack(), ViewEntry{});
}

TEST(PackedView, PackUnpackRoundTripProperty) {
  Rng rng(2024);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto id = static_cast<NodeId>(
        rng.uniform(PackedViewEntry::kMaxId + 1));
    const bool dep = rng.bernoulli(0.5);
    const PackedViewEntry e = PackedViewEntry::pack(id, dep);
    ASSERT_FALSE(e.empty());
    ASSERT_EQ(e.id(), id);
    ASSERT_EQ(e.id_unchecked(), id);
    ASSERT_EQ(e.dependent(), dep);
    const ViewEntry u = e.unpack();
    ASSERT_EQ(u.id, id);
    ASSERT_EQ(u.dependent, dep);
    // Re-packing the unpacked value is the identity.
    ASSERT_EQ(PackedViewEntry::pack(u.id, u.dependent), e);
  }
}

TEST(PackedView, ExtremeIdsRoundTrip) {
  for (const bool dep : {false, true}) {
    for (const NodeId id : {NodeId{0}, NodeId{1}, PackedViewEntry::kMaxId}) {
      const PackedViewEntry e = PackedViewEntry::pack(id, dep);
      EXPECT_EQ(e.id(), id);
      EXPECT_EQ(e.dependent(), dep);
      EXPECT_FALSE(e.empty());
    }
  }
}

TEST(PackedView, DependentBitManipulation) {
  const PackedViewEntry indep = PackedViewEntry::pack(42, false);
  EXPECT_TRUE(indep.as_dependent().dependent());
  EXPECT_EQ(indep.as_dependent().id(), 42u);
  EXPECT_EQ(indep.with_dependent(false), indep);
  EXPECT_EQ(indep.with_dependent(true), indep.as_dependent());
  EXPECT_EQ(indep.as_dependent().with_dependent(false), indep);
}

TEST(PackedView, BitsRoundTripThroughFromBits) {
  const PackedViewEntry e = PackedViewEntry::pack(123456, true);
  EXPECT_EQ(PackedViewEntry::from_bits(e.bits()), e);
  EXPECT_TRUE(PackedViewEntry::from_bits(PackedViewEntry{}.bits()).empty());
}

// ---------------------------------------------------------------------------
// Packed-vs-unpacked equivalence: the packed engine at p = 1 must replay
// the seed engine's trajectory draw for draw. `ReferenceFlatCluster` below
// is a line-for-line port of the unpacked FlatSendForgetCluster this PR
// replaced (std::vector<ViewEntry> slab, 20-byte push), kept here as the
// semantic pin.
// ---------------------------------------------------------------------------

struct ReferencePush {
  NodeId to = kNilNode;
  ViewEntry sender;
  ViewEntry carried;
};

enum class ReferenceResult : std::uint8_t { kSelfLoop, kSent, kSentDuplicated };

class ReferenceFlatCluster {
 public:
  ReferenceFlatCluster(std::size_t node_count, SendForgetConfig config)
      : config_(config),
        n_(node_count),
        view_size_(config.view_size),
        slots_(node_count * config.view_size),
        degree_(node_count, 0),
        live_(node_count, 1),
        live_count_(node_count) {}

  [[nodiscard]] bool live(NodeId u) const { return live_[u] != 0; }
  [[nodiscard]] std::size_t degree(NodeId u) const { return degree_[u]; }

  ReferenceResult initiate(NodeId u, Rng& rng, ReferencePush& out) {
    ViewEntry* v = view(u);
    const auto [i, j] = rng.distinct_pair(view_size_);
    const ViewEntry target = v[i];
    const ViewEntry carried = v[j];
    if (target.empty() || carried.empty()) return ReferenceResult::kSelfLoop;
    const bool duplicate = degree_[u] <= config_.min_degree;
    if (!duplicate) {
      v[i] = ViewEntry{};
      v[j] = ViewEntry{};
      degree_[u] -= 2;
    }
    out.to = target.id;
    out.sender = ViewEntry{u, duplicate};
    out.carried = ViewEntry{carried.id, duplicate};
    return duplicate ? ReferenceResult::kSentDuplicated
                     : ReferenceResult::kSent;
  }

  std::size_t receive(NodeId u, const ReferencePush& message, Rng& rng) {
    if (degree_[u] == view_size_) return 0;
    store(u, message.sender, rng);
    store(u, message.carried, rng);
    return 2;
  }

  void kill(NodeId u) {
    if (!live_[u]) return;
    live_[u] = 0;
    --live_count_;
  }

  void revive(NodeId u, Rng& rng) {
    const std::size_t want = config_.min_degree;
    std::vector<NodeId> boot;
    boot.reserve(want);
    const auto add_distinct = [&](NodeId id) {
      if (id == u || !live_[id]) return;
      if (std::find(boot.begin(), boot.end(), id) != boot.end()) return;
      boot.push_back(id);
    };
    NodeId contact = random_live_node(rng);
    for (int attempts = 0; boot.size() < want && attempts < 64; ++attempts) {
      add_distinct(contact);
      const ViewEntry* cv = view(contact);
      for (std::size_t i = 0; i < view_size_ && boot.size() < want; ++i) {
        if (!cv[i].empty()) add_distinct(cv[i].id);
      }
      contact = random_live_node(rng);
    }
    while (boot.size() < want) {
      const NodeId id = random_live_node(rng);
      if (id != u) boot.push_back(id);
    }
    ViewEntry* v = view(u);
    for (std::size_t i = 0; i < view_size_; ++i) v[i] = ViewEntry{};
    for (std::size_t i = 0; i < boot.size(); ++i) {
      v[i] = ViewEntry{boot[i], /*dependent=*/false};
    }
    degree_[u] = static_cast<std::uint32_t>(boot.size());
    live_[u] = 1;
    ++live_count_;
  }

  void install_view(NodeId u, const std::vector<NodeId>& ids) {
    ViewEntry* v = view(u);
    for (std::size_t i = 0; i < view_size_; ++i) v[i] = ViewEntry{};
    const std::size_t count = std::min(ids.size(), view_size_);
    for (std::size_t i = 0; i < count; ++i) {
      v[i] = ViewEntry{ids[i], /*dependent=*/false};
    }
    degree_[u] = static_cast<std::uint32_t>(count);
  }

  [[nodiscard]] std::vector<ViewEntry> view_entries(NodeId u) const {
    const ViewEntry* v = view(u);
    std::vector<ViewEntry> out;
    for (std::size_t i = 0; i < view_size_; ++i) {
      if (!v[i].empty()) out.push_back(v[i]);
    }
    return out;
  }

  // Same FNV-1a definition as FlatSendForgetCluster::fingerprint, over the
  // same unpacked values — equal states hash equal across representations.
  [[nodiscard]] std::uint64_t fingerprint() const {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    const auto mix = [&h](std::uint64_t value) {
      h ^= value;
      h *= 0x100000001B3ULL;
    };
    for (const ViewEntry& e : slots_) {
      mix(e.id);
      mix(e.dependent ? 2 : 1);
    }
    for (NodeId u = 0; u < n_; ++u) {
      mix(degree_[u]);
      mix(live_[u]);
    }
    return h;
  }

 private:
  [[nodiscard]] ViewEntry* view(NodeId u) {
    return slots_.data() + static_cast<std::size_t>(u) * view_size_;
  }
  [[nodiscard]] const ViewEntry* view(NodeId u) const {
    return slots_.data() + static_cast<std::size_t>(u) * view_size_;
  }

  [[nodiscard]] NodeId random_live_node(Rng& rng) const {
    for (;;) {
      const auto id = static_cast<NodeId>(rng.uniform(n_));
      if (live_[id]) return id;
    }
  }

  [[nodiscard]] std::size_t random_empty_slot(NodeId u, Rng& rng) const {
    const ViewEntry* v = view(u);
    const std::size_t empties = view_size_ - degree_[u];
    for (int probes = 0; probes < 64; ++probes) {
      const std::size_t i = rng.uniform(view_size_);
      if (v[i].empty()) return i;
    }
    std::size_t k = rng.uniform(empties);
    for (std::size_t i = 0;; ++i) {
      if (v[i].empty() && k-- == 0) return i;
    }
  }

  void store(NodeId u, ViewEntry entry, Rng& rng) {
    if (entry.id == u) entry.dependent = true;
    const std::size_t slot = random_empty_slot(u, rng);
    view(u)[slot] = entry;
    ++degree_[u];
  }

  SendForgetConfig config_;
  std::size_t n_;
  std::size_t view_size_;
  std::vector<ViewEntry> slots_;
  std::vector<std::uint32_t> degree_;
  std::vector<std::uint8_t> live_;
  std::size_t live_count_;
};

TEST(PackedView, LockstepEquivalenceWithUnpackedReference) {
  // Drive both engines through the identical operation sequence with
  // identically-seeded RNG streams. Any divergence in draw order or
  // semantics desynchronizes the streams and cascades into the per-step
  // assertions, so passing pins bit-identical trajectories — including the
  // dependence-tag propagation under duplication and the self-edge rule.
  const std::size_t n = 600;
  const auto cfg = default_send_forget_config();
  FlatSendForgetCluster packed(n, cfg);
  ReferenceFlatCluster reference(n, cfg);
  {
    Rng graph_rng(77);
    const Digraph g = permutation_regular(n, cfg.min_degree, graph_rng);
    for (NodeId u = 0; u < n; ++u) {
      packed.install_view(u, g.out_neighbors(u));
      reference.install_view(u, g.out_neighbors(u));
    }
    // Start a block of nodes with full views so the d(u) = s deletion path
    // is exercised early (steady state rarely reaches it from dL).
    for (NodeId u = 0; u < 64; ++u) {
      std::vector<NodeId> full;
      for (std::size_t i = 1; i <= cfg.view_size; ++i) {
        full.push_back(static_cast<NodeId>((u + i) % n));
      }
      packed.install_view(u, full);
      reference.install_view(u, full);
    }
  }
  Rng packed_rng(424242);
  Rng ref_rng(424242);
  Rng churn_schedule(9);  // shared: *when* to churn, not a protocol draw
  std::vector<NodeId> dead;
  std::uint64_t sent = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t deletions = 0;
  for (int step = 0; step < 60000; ++step) {
    const auto u = static_cast<NodeId>(packed_rng.uniform(n));
    ASSERT_EQ(u, static_cast<NodeId>(ref_rng.uniform(n)));
    if (packed.live(u)) {
      FlatPush pmsg;
      ReferencePush rmsg;
      const FlatInitiateResult pres = packed.initiate(u, packed_rng, pmsg);
      const ReferenceResult rres = reference.initiate(u, ref_rng, rmsg);
      ASSERT_EQ(static_cast<int>(pres), static_cast<int>(rres));
      if (pres != FlatInitiateResult::kSelfLoop) {
        ++sent;
        if (pres == FlatInitiateResult::kSentDuplicated) ++duplicated;
        ASSERT_EQ(pmsg.to, rmsg.to);
        ASSERT_EQ(pmsg.count, 2u);
        ASSERT_EQ(pmsg.sender().unpack(), rmsg.sender);
        ASSERT_EQ(pmsg.carried().unpack(), rmsg.carried);
        const bool lost = packed_rng.bernoulli(0.05);
        ASSERT_EQ(lost, ref_rng.bernoulli(0.05));
        if (!lost && packed.live(pmsg.to)) {
          const std::size_t pa = packed.receive(pmsg.to, pmsg, packed_rng);
          const std::size_t ra = reference.receive(rmsg.to, rmsg, ref_rng);
          ASSERT_EQ(pa, ra);
          if (pa == 0) ++deletions;
        }
      }
    }
    if (step % 512 == 511) {
      const auto victim = static_cast<NodeId>(churn_schedule.uniform(n));
      if (packed.live(victim)) {
        packed.kill(victim);
        reference.kill(victim);
        dead.push_back(victim);
      } else if (!dead.empty()) {
        packed.revive(dead.back(), packed_rng);
        reference.revive(dead.back(), ref_rng);
        dead.pop_back();
      }
    }
  }
  // The run must have exercised every interesting path.
  EXPECT_GT(sent, 10'000u);
  EXPECT_GT(duplicated, 0u);
  EXPECT_GT(deletions, 0u);
  // Full-state comparison, entry by entry and via the shared hash.
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_EQ(packed.live(u), reference.live(u)) << "node " << u;
    ASSERT_EQ(packed.degree(u), reference.degree(u)) << "node " << u;
    ASSERT_EQ(packed.view_entries(u), reference.view_entries(u))
        << "node " << u;
  }
  EXPECT_EQ(packed.fingerprint(), reference.fingerprint());
}

TEST(PackedView, DuplicationTagsBothPayloadEntriesDependent) {
  // At d(u) <= dL the initiator duplicates: both transmitted entries carry
  // the dependence tag and land tagged in the receiver's view (Fig 7.1).
  FlatSendForgetCluster cluster(16, SendForgetConfig{.view_size = 8,
                                                     .min_degree = 2});
  cluster.install_view(1, {2, 3});  // degree == dL -> duplication
  Rng rng(6);
  FlatPush msg;
  FlatInitiateResult result = FlatInitiateResult::kSelfLoop;
  while (result == FlatInitiateResult::kSelfLoop) {
    result = cluster.initiate(1, rng, msg);
  }
  ASSERT_EQ(result, FlatInitiateResult::kSentDuplicated);
  ASSERT_TRUE(msg.sender().dependent());
  ASSERT_TRUE(msg.carried().dependent());
  ASSERT_EQ(cluster.degree(1), 2u);  // slots kept
  const NodeId rx = 5;
  ASSERT_EQ(cluster.receive(rx, msg, rng), 2u);
  std::size_t dependent_entries = 0;
  for (const ViewEntry& e : cluster.view_entries(rx)) {
    if (e.dependent) ++dependent_entries;
  }
  EXPECT_EQ(dependent_entries, 2u);
}

}  // namespace
}  // namespace gossip
