#include "sampling/uniformity.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace gossip::sampling {

UniformityTester::UniformityTester(std::size_t node_count)
    : counts_(node_count, 0) {}

void UniformityTester::record_snapshot(const sim::Cluster& cluster) {
  assert(cluster.size() == counts_.size());
  for (NodeId u = 0; u < cluster.size(); ++u) {
    if (!cluster.live(u)) continue;
    for (const NodeId v : cluster.node(u).view().ids()) {
      if (v == u) continue;  // self-edges exempt (Lemma 7.6)
      if (v >= counts_.size()) continue;
      ++counts_[v];
      ++total_;
    }
  }
}

UniformityTester::Result UniformityTester::test_uniform() const {
  if (total_ == 0) throw std::runtime_error("no observations recorded");
  Result r;
  const std::size_t n = counts_.size();
  const std::vector<double> expected(n, 1.0 / static_cast<double>(n));
  r.chi_square = chi_square_statistic(counts_, expected);
  r.degrees_of_freedom = static_cast<double>(n - 1);
  r.p_value = chi_square_upper_tail(r.chi_square, r.degrees_of_freedom);
  const double uniform = static_cast<double>(total_) / static_cast<double>(n);
  for (const auto c : counts_) {
    const double rel =
        std::abs(static_cast<double>(c) - uniform) / uniform;
    r.max_relative_deviation = std::max(r.max_relative_deviation, rel);
  }
  return r;
}

}  // namespace gossip::sampling
