// Thread-safety of the observability hot path. Built with the tsan label:
// the registry's claim — unsynchronized per-shard slabs with no false
// sharing and no cross-shard writes — must hold under ThreadSanitizer, and
// an observed multi-threaded sharded run must stay on the deterministic
// fingerprint contract.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/flat_send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "obs/watchdog.hpp"
#include "sim/sharded_driver.hpp"

namespace gossip {
namespace {

// Each thread owns one shard and hammers its slab through the public API
// while the others do the same: no two threads ever write the same shard,
// which is exactly the discipline the registry documents. The merged totals
// must come out exact.
TEST(ObsParallel, ConcurrentPerShardCounterWritesMergeExactly) {
  constexpr std::size_t kShards = 8;
  constexpr std::uint64_t kIncrements = 200'000;
  obs::MetricsRegistry registry(kShards);
  const obs::CounterId hits = registry.counter("hits");
  const obs::CounterId bulk = registry.counter("bulk");
  const obs::HistogramId hist = registry.histogram("values", {0.25, 0.5, 0.75});
  std::vector<std::thread> workers;
  workers.reserve(kShards);
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    workers.emplace_back([&registry, hits, bulk, hist, shard] {
      for (std::uint64_t i = 0; i < kIncrements; ++i) {
        registry.add(hits, shard);
        if ((i & 7) == 0) registry.add(bulk, shard, 3);
        if ((i & 1023) == 0) {
          registry.observe(hist, shard,
                           static_cast<double>(shard) / kShards);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(registry.counter_value(hits), kShards * kIncrements);
  EXPECT_EQ(registry.counter_value(bulk), kShards * (kIncrements / 8) * 3);
  std::uint64_t hist_total = 0;
  for (const std::uint64_t c : registry.histogram_counts(hist)) hist_total += c;
  EXPECT_EQ(hist_total, kShards * (kIncrements / 1024 + 1));
}

// Same discipline through the raw slab pointer — the fastest documented hot
// path (cache the pointer once, bump cells directly).
TEST(ObsParallel, RawSlabPointersAreRaceFreeAcrossShards) {
  constexpr std::size_t kShards = 8;
  constexpr std::uint64_t kIncrements = 500'000;
  obs::MetricsRegistry registry(kShards);
  const obs::CounterId a = registry.counter("a");
  const obs::CounterId b = registry.counter("b");
  std::vector<std::thread> workers;
  workers.reserve(kShards);
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    workers.emplace_back([&registry, a, b, shard] {
      std::uint64_t* slab = registry.counters(shard);
      for (std::uint64_t i = 0; i < kIncrements; ++i) {
        ++slab[a.index];
        slab[b.index] += 2;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(registry.counter_value(a), kShards * kIncrements);
  EXPECT_EQ(registry.counter_value(b), kShards * kIncrements * 2);
}

TEST(ObsParallel, ProfilerScopesAcrossThreads) {
  constexpr std::size_t kShards = 4;
  obs::PhaseProfiler profiler(kShards);
  const obs::PhaseId work = profiler.phase("work");
  std::vector<std::thread> workers;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    workers.emplace_back([&profiler, work, shard] {
      for (int i = 0; i < 1'000; ++i) {
        const obs::PhaseProfiler::Scope timer(&profiler, work, shard);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const auto totals = profiler.totals();
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_EQ(totals[0].count, kShards * 1'000u);
}

// A fully observed multi-threaded sharded run (time-series + watchdog +
// profiler attached, 4 worker threads) must be race-free and land on the
// same cluster fingerprint and registry dump as an identical second run —
// the determinism contract with observation in the loop.
TEST(ObsParallel, ObservedShardedRunIsDeterministic) {
  const auto run = [] {
    const std::size_t n = 2'000;
    const SendForgetConfig cfg = default_send_forget_config();
    Rng rng(7);
    FlatSendForgetCluster cluster(n, cfg);
    const Digraph g = permutation_regular(n, cfg.min_degree, rng);
    for (NodeId u = 0; u < n; ++u) cluster.install_view(u, g.out_neighbors(u));
    sim::ShardedDriver driver(
        cluster, sim::ShardedDriverConfig{
                     .shard_count = 4, .loss_rate = 0.03, .seed = 77});
    obs::RoundTimeSeries series(5);
    obs::InvariantWatchdog watchdog(obs::WatchdogConfig{
        .min_degree = cfg.min_degree, .view_size = cfg.view_size});
    obs::PhaseProfiler profiler(4);
    driver.attach_time_series(&series);
    driver.attach_watchdog(&watchdog);
    driver.attach_profiler(&profiler);
    driver.run_rounds(30);
    return std::pair{cluster.fingerprint(),
                     driver.metrics_registry().dump()};
  };
  const auto [fp_a, dump_a] = run();
  const auto [fp_b, dump_b] = run();
  EXPECT_EQ(fp_a, fp_b);
  EXPECT_EQ(dump_a, dump_b);
}

}  // namespace
}  // namespace gossip
