file(REMOVE_RECURSE
  "CMakeFiles/test_send_forget.dir/test_send_forget.cpp.o"
  "CMakeFiles/test_send_forget.dir/test_send_forget.cpp.o.d"
  "test_send_forget"
  "test_send_forget.pdb"
  "test_send_forget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_send_forget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
