# Empty dependencies file for ablation_bursty_loss.
# This may be replaced when dependencies are built.
