// Serialized action driver — the paper's analysis model.
//
// "A central entity repeatedly selects a random node, invokes its
// InitiateAction method, and waits for the completion of the Receive by the
// receiving node" (§5). A *round* is the period in which each node is
// expected to initiate exactly one action (§6.5), i.e. live_count()
// uniformly random picks with replacement.
#pragma once

#include <cstdint>

#include <vector>

#include "common/rng.hpp"
#include "obs/export/snapshot.hpp"
#include "obs/oracle/flight_recorder.hpp"
#include "obs/oracle/theory_oracle.hpp"
#include "obs/recovery.hpp"
#include "obs/timeseries.hpp"
#include "obs/watchdog.hpp"
#include "sim/cluster.hpp"
#include "sim/fault_plane.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "sim/retune.hpp"

namespace gossip::sim {

class RoundDriver {
 public:
  // The driver borrows all three; they must outlive it.
  RoundDriver(Cluster& cluster, LossModel& loss, Rng& rng);

  // One action: a uniformly random live node initiates; any messages are
  // delivered (or lost) synchronously before this returns.
  void step();

  // `count` actions.
  void run_actions(std::uint64_t count);

  // `rounds` rounds of live_count() actions each. Attached observers are
  // sampled at round boundaries (when the round index matches the series'
  // stride); step()/run_actions() never sample — there is no round clock.
  void run_rounds(std::uint64_t rounds);

  [[nodiscard]] std::uint64_t actions_executed() const { return actions_; }
  [[nodiscard]] std::uint64_t rounds_completed() const {
    return rounds_completed_;
  }
  [[nodiscard]] const NetworkMetrics& network_metrics() const {
    return network_.metrics();
  }
  [[nodiscard]] Cluster& cluster() { return cluster_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  // --- observability (attach before run_rounds; borrowed, may be null).
  // Observation reads views and counters only: it draws nothing from the
  // RNG, so attaching observers does not change the run. ---
  void attach_time_series(obs::RoundTimeSeries* series);
  void attach_watchdog(obs::InvariantWatchdog* watchdog);
  // Theory-oracle drift detection at round boundaries (same probe inputs
  // as the ShardedDriver's phase C).
  void attach_oracle(obs::TheoryOracle* oracle);
  // Transport-level flight recording (send/lose/deliver/to-dead into the
  // recorder's shard 0; see DirectNetwork::set_flight_recorder).
  void attach_flight_recorder(obs::FlightRecorder* recorder);
  // Scripted link-level fault injection on the direct network (the round
  // clock run_rounds maintains doubles as the plane's schedule clock, so
  // only run_rounds — not step/run_actions — advances phases).
  void attach_fault_plane(const FaultPlane* plane);
  // Degradation-window tracking at round boundaries; the connectivity lane
  // is skipped (this driver's polymorphic cluster has no flat view graph).
  void attach_recovery(obs::RecoveryTracker* tracker);
  // Online §6.3 retuning at round boundaries (same hook ordering as the
  // ShardedDriver: after the oracle's observe). The actuator supplied to
  // the controller must target this driver's cluster.
  void attach_retune(RetuneController* retune);
  // Streaming telemetry export. This driver has no registry of its own, so
  // the streamer owns/borrows an external one fed through its gauge and
  // counter probes (wired by the caller); the driver only drives the
  // capture clock, invoking the streamer last at each sampled round
  // boundary so snapshots see every observer's output for the round.
  void attach_streamer(obs::SnapshotStreamer* streamer);

 private:
  void observe_round(std::uint64_t round);

  Cluster& cluster_;
  Rng& rng_;
  DirectNetwork network_;
  std::uint64_t actions_ = 0;
  std::uint64_t rounds_completed_ = 0;
  obs::RoundTimeSeries* series_ = nullptr;
  obs::InvariantWatchdog* watchdog_ = nullptr;
  obs::TheoryOracle* oracle_ = nullptr;
  obs::RecoveryTracker* recovery_ = nullptr;
  RetuneController* retune_ = nullptr;
  obs::SnapshotStreamer* streamer_ = nullptr;
  std::vector<std::uint32_t> occurrence_scratch_;
  std::uint64_t observe_stride_ = 1;
};

}  // namespace gossip::sim
