// Wire messages exchanged by membership protocols.
//
// A message is the unit the network may lose (§4: uniform i.i.d. loss).
// S&F uses only kPush; the baseline protocols add request/reply kinds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/node_id.hpp"
#include "core/view.hpp"

namespace gossip {

enum class MessageKind : std::uint8_t {
  kPush,            // S&F: [u, w] — sender id implicit in `from`
  kShuffleRequest,  // shuffle baseline: entries removed from sender's view
  kShuffleReply,    // shuffle baseline: entries removed from replier's view
  kPushPullRequest, // push-pull baseline: copied entries (kept by sender)
  kPushPullReply,   // push-pull baseline: copied entries (kept by replier)
  kNewscastExchange, // newscast baseline: full view copy, youngest first
  kNewscastReply,    // newscast baseline: reply with the replier's copy
};

struct Message {
  NodeId from = kNilNode;
  NodeId to = kNilNode;
  MessageKind kind = MessageKind::kPush;
  std::vector<ViewEntry> payload;
};

}  // namespace gossip
