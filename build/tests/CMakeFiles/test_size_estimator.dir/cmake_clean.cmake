file(REMOVE_RECURSE
  "CMakeFiles/test_size_estimator.dir/test_size_estimator.cpp.o"
  "CMakeFiles/test_size_estimator.dir/test_size_estimator.cpp.o.d"
  "test_size_estimator"
  "test_size_estimator.pdb"
  "test_size_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_size_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
