#include "analysis/global_mc.hpp"
#include "analysis/global_mc.hpp"
