#include "sampling/uniformity.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/send_forget.hpp"

namespace gossip::sampling {
namespace {

sim::Cluster::ProtocolFactory sf_factory() {
  return [](NodeId id) {
    return std::make_unique<SendForget>(
        id, SendForgetConfig{.view_size = 6, .min_degree = 0});
  };
}

TEST(UniformityTester, CountsOccurrencesAcrossViews) {
  sim::Cluster cluster(3, sf_factory());
  cluster.node(0).install_view({1, 2});
  cluster.node(1).install_view({2, 2});
  UniformityTester tester(3);
  tester.record_snapshot(cluster);
  EXPECT_EQ(tester.total_observations(), 4u);
  EXPECT_EQ(tester.occurrence_counts()[1], 1u);
  EXPECT_EQ(tester.occurrence_counts()[2], 3u);
  EXPECT_EQ(tester.occurrence_counts()[0], 0u);
}

TEST(UniformityTester, SkipsSelfEdges) {
  sim::Cluster cluster(2, sf_factory());
  cluster.node(0).install_view({0, 1});
  UniformityTester tester(2);
  tester.record_snapshot(cluster);
  EXPECT_EQ(tester.total_observations(), 1u);
  EXPECT_EQ(tester.occurrence_counts()[0], 0u);
}

TEST(UniformityTester, SkipsDeadNodesViews) {
  sim::Cluster cluster(3, sf_factory());
  cluster.node(0).install_view({1, 1});
  cluster.node(1).install_view({2, 2});
  cluster.kill(1);
  UniformityTester tester(3);
  tester.record_snapshot(cluster);
  // Only node 0's view counted.
  EXPECT_EQ(tester.total_observations(), 2u);
}

TEST(UniformityTester, UniformCountsPassChiSquare) {
  Rng rng(1);
  constexpr std::size_t kN = 50;
  sim::Cluster cluster(kN, sf_factory());
  UniformityTester tester(kN);
  // Synthesize perfectly uniform occupancy via a rotating view pattern.
  for (int snap = 0; snap < 60; ++snap) {
    for (NodeId u = 0; u < kN; ++u) {
      const auto a = static_cast<NodeId>((u + 1 + snap) % kN);
      const auto b = static_cast<NodeId>((u + 2 + snap) % kN);
      cluster.node(u).install_view({a, b});
    }
    tester.record_snapshot(cluster);
  }
  const auto result = tester.test_uniform();
  EXPECT_GT(result.p_value, 0.9);
  EXPECT_LT(result.max_relative_deviation, 0.1);
}

TEST(UniformityTester, SkewedCountsFailChiSquare) {
  constexpr std::size_t kN = 50;
  sim::Cluster cluster(kN, sf_factory());
  // Every node points at node 0 and node 1 only.
  for (NodeId u = 0; u < kN; ++u) {
    cluster.node(u).install_view(
        {static_cast<NodeId>(u == 0 ? 2 : 0), static_cast<NodeId>(u == 1 ? 2 : 1)});
  }
  UniformityTester tester(kN);
  for (int snap = 0; snap < 20; ++snap) tester.record_snapshot(cluster);
  const auto result = tester.test_uniform();
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_GT(result.max_relative_deviation, 1.0);
}

TEST(UniformityTester, ThrowsWithoutObservations) {
  UniformityTester tester(5);
  EXPECT_THROW((void)(tester.test_uniform()), std::runtime_error);
}

}  // namespace
}  // namespace gossip::sampling
