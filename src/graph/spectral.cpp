#include "graph/spectral.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace gossip {

namespace {

// Undirected adjacency (with multiplicity) and degrees.
struct Undirected {
  std::vector<std::vector<NodeId>> adj;
  std::vector<double> degree;
};

Undirected undirect(const Digraph& g) {
  Undirected u;
  u.adj.resize(g.node_count());
  u.degree.assign(g.node_count(), 0.0);
  for (NodeId a = 0; a < g.node_count(); ++a) {
    for (const NodeId b : g.out_neighbors(a)) {
      u.adj[a].push_back(b);
      u.adj[b].push_back(a);
      u.degree[a] += 1.0;
      u.degree[b] += 1.0;
    }
  }
  return u;
}

}  // namespace

SpectralResult estimate_spectral_gap(const Digraph& graph,
                                     const SpectralOptions& options) {
  if (graph.edge_count() == 0) {
    throw std::invalid_argument("graph has no edges");
  }
  const std::size_t n = graph.node_count();
  const Undirected u = undirect(graph);

  // The lazy walk W = (I + D^{-1}A)/2 is similar to a symmetric matrix
  // via D^{1/2}; its top eigenvector in the D-inner-product is the
  // all-ones vector (stationary ∝ degree). Power-iterate a vector kept
  // D-orthogonal to it.
  const double total_degree = 2.0 * static_cast<double>(graph.edge_count());

  Rng rng(options.seed);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform_double() - 0.5;
  }

  auto deflate = [&](std::vector<double>& v) {
    // Remove the component along 1 with respect to the D-weighted inner
    // product: v -= (sum_i d_i v_i / sum_i d_i) * 1 (on non-isolated
    // vertices).
    double proj = 0.0;
    for (std::size_t i = 0; i < n; ++i) proj += u.degree[i] * v[i];
    proj /= total_degree;
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = u.degree[i] > 0.0 ? v[i] - proj : 0.0;
    }
  };
  auto norm = [&](const std::vector<double>& v) {
    // D-weighted norm, matching the symmetrized operator.
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += u.degree[i] * v[i] * v[i];
    return std::sqrt(s);
  };

  deflate(x);
  double x_norm = norm(x);
  if (x_norm == 0.0) {
    // Degenerate random start; perturb deterministically.
    x.assign(n, 0.0);
    x[0] = 1.0;
    deflate(x);
    x_norm = norm(x);
  }
  for (double& v : x) v /= x_norm;

  SpectralResult result;
  double lambda = 0.0;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (u.degree[i] == 0.0) continue;
      double acc = 0.0;
      for (const NodeId j : u.adj[i]) acc += x[j];
      y[i] = 0.5 * x[i] + 0.5 * acc / u.degree[i];
    }
    deflate(y);
    const double y_norm = norm(y);
    if (y_norm == 0.0) {
      // x was (numerically) in the kernel: lambda2 ~ 0.
      result.lambda2 = 0.0;
      result.spectral_gap = 1.0;
      result.converged = true;
      result.iterations = it + 1;
      return result;
    }
    const double next_lambda = y_norm;  // Rayleigh growth factor
    for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / y_norm;
    result.iterations = it + 1;
    if (std::abs(next_lambda - lambda) < options.tolerance) {
      lambda = next_lambda;
      result.converged = true;
      break;
    }
    lambda = next_lambda;
  }
  result.lambda2 = std::min(1.0, lambda);
  result.spectral_gap = 1.0 - result.lambda2;
  return result;
}

}  // namespace gossip
