# Empty dependencies file for gossip_markov.
# This may be replaced when dependencies are built.
