#include "sampling/health.hpp"
#include "sampling/health.hpp"
