file(REMOVE_RECURSE
  "CMakeFiles/extension_scale.dir/extension_scale.cpp.o"
  "CMakeFiles/extension_scale.dir/extension_scale.cpp.o.d"
  "extension_scale"
  "extension_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
