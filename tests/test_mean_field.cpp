#include "analysis/mean_field.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "analysis/degree_mc.hpp"

namespace gossip::analysis {
namespace {

double tvd(const std::vector<double>& a, const std::vector<double>& b) {
  double t = 0.0;
  const std::size_t n = std::max(a.size(), b.size());
  for (std::size_t k = 0; k < n; ++k) {
    const double av = k < a.size() ? a[k] : 0.0;
    const double bv = k < b.size() ? b[k] : 0.0;
    t += std::abs(av - bv);
  }
  return 0.5 * t;
}

double rel_err(double approx, double exact) {
  return exact > 0.0 ? std::abs(approx - exact) / exact
                     : std::abs(approx - exact);
}

// The tolerance contract the fast path ships under (and that check_bench
// gates on the committed BENCH_analysis baseline): per-point degree-marginal
// TVD <= 5e-3 against the exact solver, dup/del rates within 2% relative.
constexpr double kTvdContract = 5e-3;
constexpr double kRateContract = 2e-2;

TEST(MeanField, MatchesExactAcrossPaperSweep) {
  // The committed benchmark box: dL = 18, s = 40, the four ℓ points of the
  // analysis sweep. This is the acceptance pin for the refined solver —
  // in practice it lands orders of magnitude inside the contract.
  const std::vector<double> losses = {0.0, 0.01, 0.05, 0.1};
  const DegreeMcParams exact_params;  // defaults are the paper box
  const auto exact = solve_degree_mc_sweep(exact_params, losses);

  const MeanFieldParams params = mean_field_params(exact_params);
  const auto mf = solve_mean_field_sweep(params, losses);
  ASSERT_EQ(mf.size(), losses.size());

  for (std::size_t p = 0; p < losses.size(); ++p) {
    SCOPED_TRACE("loss=" + std::to_string(losses[p]));
    EXPECT_TRUE(mf[p].converged);
    EXPECT_LE(tvd(mf[p].out_pmf, exact[p].out_pmf), kTvdContract);
    EXPECT_LE(tvd(mf[p].in_pmf, exact[p].in_pmf), kTvdContract);
    EXPECT_LE(rel_err(mf[p].duplication_probability,
                      exact[p].duplication_probability),
              kRateContract);
    EXPECT_LE(rel_err(mf[p].deletion_probability,
                      exact[p].deletion_probability),
              kRateContract);
    // Lemma 6.7 band, with the contract as slack at the edges.
    EXPECT_GE(mf[p].duplication_probability, losses[p] * (1.0 - kRateContract));
  }
}

TEST(MeanField, MatchesExactOnQuickBox) {
  // The --quick benchmark box (s = 20, dL = 8) exercised by the CI
  // perf-smoke leg; refinement must converge there too.
  const std::vector<double> losses = {0.0, 0.05};
  DegreeMcParams exact_params;
  exact_params.view_size = 20;
  exact_params.min_degree = 8;
  const auto exact = solve_degree_mc_sweep(exact_params, losses);

  const auto mf =
      solve_mean_field_sweep(mean_field_params(exact_params), losses);
  for (std::size_t p = 0; p < losses.size(); ++p) {
    SCOPED_TRACE("loss=" + std::to_string(losses[p]));
    EXPECT_TRUE(mf[p].converged);
    EXPECT_LE(tvd(mf[p].out_pmf, exact[p].out_pmf), kTvdContract);
    EXPECT_LE(tvd(mf[p].in_pmf, exact[p].in_pmf), kTvdContract);
    EXPECT_LE(rel_err(mf[p].duplication_probability,
                      exact[p].duplication_probability),
              kRateContract);
    EXPECT_LE(rel_err(mf[p].deletion_probability,
                      exact[p].deletion_probability),
              kRateContract);
  }
}

TEST(MeanField, SweepMatchesPerPointCalls) {
  // The warm-started sweep must land on the same fixed points as isolated
  // per-point solves (the refinement restarts from the closure's product
  // measure at every point, so warm starts only affect the closure seed).
  const std::vector<double> losses = {0.01, 0.1};
  MeanFieldParams params;
  const auto sweep = solve_mean_field_sweep(params, losses);
  for (std::size_t p = 0; p < losses.size(); ++p) {
    params.loss = losses[p];
    const auto single = solve_mean_field(params);
    EXPECT_NEAR(tvd(sweep[p].out_pmf, single.out_pmf), 0.0, 1e-9);
    EXPECT_NEAR(tvd(sweep[p].in_pmf, single.in_pmf), 0.0, 1e-9);
    EXPECT_NEAR(sweep[p].duplication_probability,
                single.duplication_probability, 1e-9);
    EXPECT_NEAR(sweep[p].deletion_probability, single.deletion_probability,
                1e-9);
  }
}

TEST(MeanField, DeterministicAcrossCalls) {
  // Bit-identical results across repeated solves: the prediction cache and
  // the retuning controller both rely on the solver being a pure function
  // of its parameters.
  MeanFieldParams params;
  params.loss = 0.05;
  const auto a = solve_mean_field(params);
  const auto b = solve_mean_field(params);
  ASSERT_EQ(a.out_pmf.size(), b.out_pmf.size());
  for (std::size_t k = 0; k < a.out_pmf.size(); ++k) {
    EXPECT_EQ(a.out_pmf[k], b.out_pmf[k]);
  }
  EXPECT_EQ(a.duplication_probability, b.duplication_probability);
  EXPECT_EQ(a.deletion_probability, b.deletion_probability);
  EXPECT_EQ(a.expected_out, b.expected_out);
}

TEST(MeanField, ResultIsANormalizedDistribution) {
  MeanFieldParams params;
  params.loss = 0.05;
  const auto result = solve_mean_field(params);
  const double out_mass =
      std::accumulate(result.out_pmf.begin(), result.out_pmf.end(), 0.0);
  const double in_mass =
      std::accumulate(result.in_pmf.begin(), result.in_pmf.end(), 0.0);
  EXPECT_NEAR(out_mass, 1.0, 1e-9);
  EXPECT_NEAR(in_mass, 1.0, 1e-9);
  for (const double v : result.out_pmf) EXPECT_GE(v, 0.0);
  for (const double v : result.in_pmf) EXPECT_GE(v, 0.0);
  // Out-degree lives on [dL, s] by protocol invariant.
  EXPECT_GE(result.expected_out, static_cast<double>(params.min_degree));
  EXPECT_LE(result.expected_out, static_cast<double>(params.view_size));
}

TEST(MeanField, RawClosureIsCoarserThanRefinement) {
  // refinement_iterations = 0 returns the product closure alone. It must
  // still be a valid distribution, but the refined solve has to be at
  // least as close to the exact answer (this is what the 1/n term buys).
  DegreeMcParams exact_params;
  exact_params.loss = 0.05;
  const auto exact = solve_degree_mc(exact_params);

  MeanFieldParams params = mean_field_params(exact_params);
  params.refinement_iterations = 0;
  const auto raw = solve_mean_field(params);
  EXPECT_TRUE(raw.converged);
  EXPECT_EQ(raw.refinement_iterations, 0u);

  params.refinement_iterations = 60;
  const auto refined = solve_mean_field(params);
  EXPECT_LE(tvd(refined.in_pmf, exact.in_pmf), tvd(raw.in_pmf, exact.in_pmf));
  EXPECT_LE(rel_err(refined.duplication_probability,
                    exact.duplication_probability),
            rel_err(raw.duplication_probability,
                    exact.duplication_probability));
}

TEST(MeanField, ParamsBridgeRejectsFixedSumDegree) {
  // The §6.1 line chain (fixed sum degree) does not factorize into
  // independent marginals; the bridge must refuse rather than silently
  // solve the wrong model.
  DegreeMcParams exact_params;
  exact_params.fixed_sum_degree = 60;
  EXPECT_THROW((void)mean_field_params(exact_params), std::invalid_argument);
}

TEST(MeanField, ParamsBridgeMapsFields) {
  DegreeMcParams exact_params;
  exact_params.view_size = 20;
  exact_params.min_degree = 8;
  exact_params.loss = 0.07;
  exact_params.sum_degree_cap = 48;
  const auto params = mean_field_params(exact_params);
  EXPECT_EQ(params.view_size, 20u);
  EXPECT_EQ(params.min_degree, 8u);
  EXPECT_DOUBLE_EQ(params.loss, 0.07);
  EXPECT_EQ(params.sum_degree_cap, 48u);
}

TEST(MeanField, InvalidArguments) {
  const auto solve_with = [](auto&& mutate) {
    MeanFieldParams params;
    mutate(params);
    return solve_mean_field(params);
  };
  EXPECT_THROW((void)solve_with([](MeanFieldParams& p) { p.view_size = 39; }),
               std::invalid_argument);
  EXPECT_THROW((void)solve_with([](MeanFieldParams& p) { p.view_size = 4; }),
               std::invalid_argument);
  EXPECT_THROW((void)solve_with([](MeanFieldParams& p) { p.min_degree = 17; }),
               std::invalid_argument);
  EXPECT_THROW(
      (void)solve_with([](MeanFieldParams& p) { p.min_degree = 36; }),
      std::invalid_argument);
  EXPECT_THROW((void)solve_with([](MeanFieldParams& p) { p.loss = 1.0; }),
               std::invalid_argument);
  EXPECT_THROW((void)solve_with([](MeanFieldParams& p) { p.loss = -0.1; }),
               std::invalid_argument);
  EXPECT_THROW(
      (void)solve_with([](MeanFieldParams& p) { p.anderson_depth = 0; }),
      std::invalid_argument);
  EXPECT_THROW(
      (void)solve_with([](MeanFieldParams& p) { p.sum_degree_cap = 38; }),
      std::invalid_argument);
}

}  // namespace
}  // namespace gossip::analysis
