// ArenaDriver: the round-synchronous competition driver for the protocol
// arena (ROADMAP item 4).
//
// The serialized RoundDriver has no round clock a timeout state machine
// could trust (nodes initiate in random order, replies deliver
// recursively), and the sharded flat driver is hard-wired to the packed
// S&F engine. The arena driver closes the gap: it drives the *polymorphic*
// Cluster — S&F, the view-exchange baselines, and the timer-driven
// detectors (SWIM, all-to-all) — on an explicit round clock with scripted
// faults and ambient loss applied to every contender identically.
//
// Execution model, per round r:
//
//   phase A (parallel over shards)  every live node, in id order within
//     its shard, runs on_round(r). Outbound messages sample their fault /
//     loss fate immediately from the sender shard's RNG stream and land in
//     per-(src, dst) shard outboxes.
//   phase B (parallel over destination shards)  each receiver shard
//     drains, in source-shard-major FIFO order, first the replies queued
//     during round r-1's phase B, then round r's phase A traffic. Handlers
//     run with the receiver shard's RNG; messages they send sample their
//     fate now but deliver in round r+1's phase B (one-round latency).
//   phase C (serial)  observation: cluster probe, DetectionTracker,
//     RecoveryTracker, time series.
//
// Determinism contract: node-to-shard blocking is ceil(n / shards) by id
// (the ShardedDriver's mapping), every draw comes from
// Rng::stream(seed, shard), and drain order is a pure function of the
// shard count — so a run is bit-identical for a fixed (seed, shards)
// regardless of the worker thread count. Messages in flight survive the
// death of their sender (the packet already left) and are dropped at
// delivery when the receiver is dead — which makes "killed the round its
// ack was due" a reachable, tested state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/detection.hpp"
#include "obs/recovery.hpp"
#include "obs/timeseries.hpp"
#include "sim/cluster.hpp"
#include "sim/fault_plane.hpp"
#include "sim/network.hpp"

namespace gossip::sim {

struct ArenaDriverConfig {
  std::size_t shards = 1;   // determinism unit (fingerprints depend on it)
  std::size_t threads = 1;  // workers executing the shard blocks
  double loss_rate = 0.0;   // ambient i.i.d. loss
  std::uint64_t seed = 1;
  std::uint64_t observation_stride = 1;
};

class ArenaDriver {
 public:
  ArenaDriver(Cluster& cluster, ArenaDriverConfig config);

  void run_rounds(std::uint64_t rounds);

  [[nodiscard]] std::uint64_t rounds_completed() const { return round_; }
  [[nodiscard]] std::uint64_t actions_executed() const { return actions_; }
  // Network totals summed over shards (deterministic order).
  [[nodiscard]] NetworkMetrics network_metrics() const;
  [[nodiscard]] Cluster& cluster() { return cluster_; }

  // Churn, applied between rounds (serial). Kills/joins are reported to an
  // attached DetectionTracker. The churn RNG is its own stream, so churn
  // decisions never perturb the shard streams.
  void kill(NodeId id);
  // Revives `id` with a fresh protocol instance seeded with `seed_view`.
  void rejoin(NodeId id, const Cluster::ProtocolFactory& factory,
              const std::vector<NodeId>& seed_view);
  [[nodiscard]] Rng& churn_rng() { return churn_rng_; }

  // Observers (borrowed, may be null; attach before run_rounds). All run
  // in serial phase C and draw no RNG.
  void attach_fault_plane(const FaultPlane* plane);
  void attach_detection(obs::DetectionTracker* tracker) {
    detection_ = tracker;
  }
  void attach_recovery(obs::RecoveryTracker* tracker) { recovery_ = tracker; }
  void attach_series(obs::RoundTimeSeries* series) { series_ = series; }

  // Order-insensitive digest of the full world state: liveness, every
  // view's slot contents, every protocol's state_digest(), and the network
  // totals. Two runs are "the same run" iff fingerprints match.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  // One per shard; appends sends to the executing shard's outbox after
  // sampling their fault/loss fate from the shard stream.
  class ShardTransport final : public Transport {
   public:
    void send(Message message) override;

    ArenaDriver* driver = nullptr;
    std::size_t shard = 0;
    std::uint64_t round = 0;
    // Outbox the executing phase appends surviving messages to (phase A:
    // the current frame; phase B: the next frame).
    std::vector<std::vector<Message>>* outbox = nullptr;  // [dst shard]
  };

  [[nodiscard]] std::size_t shard_of(NodeId id) const {
    const std::size_t s = static_cast<std::size_t>(id) / nodes_per_shard_;
    return s < config_.shards ? s : config_.shards - 1;
  }

  void run_phase_a(std::uint64_t round);
  void run_phase_b(std::uint64_t round);
  void observe_round(std::uint64_t round);

  Cluster& cluster_;
  ArenaDriverConfig config_;
  std::size_t nodes_per_shard_;
  ThreadPool pool_;
  Rng churn_rng_;

  std::vector<Rng> shard_rngs_;
  std::vector<NetworkMetrics> shard_metrics_;
  const FaultPlane* fault_plane_ = nullptr;
  std::vector<FaultPlane::Context> fault_ctxs_;

  // outbox_[src][dst]: phase A traffic of the current round.
  // inflight_[src][dst]: phase B replies of the previous round.
  // next_inflight_[src][dst]: phase B replies of the current round.
  std::vector<std::vector<std::vector<Message>>> outbox_;
  std::vector<std::vector<std::vector<Message>>> inflight_;
  std::vector<std::vector<std::vector<Message>>> next_inflight_;

  std::uint64_t round_ = 0;
  std::uint64_t actions_ = 0;

  obs::DetectionTracker* detection_ = nullptr;
  obs::RecoveryTracker* recovery_ = nullptr;
  obs::RoundTimeSeries* series_ = nullptr;
};

}  // namespace gossip::sim
