#include "obs/watchdog.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace gossip::obs {

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kOddOutdegree:
      return "odd_outdegree";
    case ViolationKind::kOutdegreeBelowMin:
      return "outdegree_below_min";
    case ViolationKind::kOutdegreeAboveMax:
      return "outdegree_above_max";
    case ViolationKind::kMailboxConservation:
      return "mailbox_conservation";
    case ViolationKind::kDuplicationRateBound:
      return "duplication_rate_bound";
    case ViolationKind::kDupDelBalance:
      return "dup_del_balance";
  }
  return "unknown";
}

InvariantWatchdog::InvariantWatchdog(WatchdogConfig config)
    : config_(config) {}

void InvariantWatchdog::record(const Violation& violation) {
  ++violation_count_;
  if (log_.size() < config_.max_logged) log_.push_back(violation);
}

void InvariantWatchdog::check_degree(std::uint64_t round, NodeId node,
                                     std::size_t shard,
                                     std::size_t outdegree) {
  ++checks_run_;
  const auto d = static_cast<double>(outdegree);
  if (outdegree % 2 != 0) {
    record(Violation{ViolationKind::kOddOutdegree, round, node, shard, d, 0.0,
                     0.0});
  }
  if (outdegree < config_.min_degree && round >= config_.warmup_rounds) {
    record(Violation{ViolationKind::kOutdegreeBelowMin, round, node, shard, d,
                     static_cast<double>(config_.min_degree),
                     static_cast<double>(config_.view_size)});
  }
  if (outdegree > config_.view_size) {
    record(Violation{ViolationKind::kOutdegreeAboveMax, round, node, shard, d,
                     static_cast<double>(config_.min_degree),
                     static_cast<double>(config_.view_size)});
  }
}

void InvariantWatchdog::check_cluster(std::uint64_t round,
                                      const FlatSendForgetCluster& cluster,
                                      std::size_t nodes_per_shard) {
  const std::size_t n = cluster.size();
  for (NodeId u = 0; u < n; ++u) {
    if (!cluster.live(u)) continue;
    const std::size_t shard =
        nodes_per_shard == 0 ? 0 : static_cast<std::size_t>(u) / nodes_per_shard;
    check_degree(round, u, shard, cluster.degree(u));
  }
}

void InvariantWatchdog::check_conservation(std::uint64_t round,
                                           const CumulativeCounters& c) {
  ++checks_run_;
  const std::uint64_t accounted =
      c.lost + c.delivered + c.to_dead + c.faulted;
  if (accounted != c.sent) {
    record(Violation{ViolationKind::kMailboxConservation, round, kNilNode, 0,
                     static_cast<double>(accounted),
                     static_cast<double>(c.sent),
                     static_cast<double>(c.sent)});
  }
}

void InvariantWatchdog::check_rates(std::uint64_t round,
                                    const CumulativeCounters& c) {
  // Lemmas 6.6/6.7 describe the steady state; counters accumulated during
  // bootstrap (every send from a node at d <= dL duplicates) would poison
  // the running rates for hundreds of rounds. The first post-warmup sample
  // becomes the baseline and rates are measured over the window since it.
  if (round < config_.warmup_rounds) return;
  if (!have_rate_baseline_) {
    rate_baseline_ = c;
    have_rate_baseline_ = true;
    return;
  }
  const auto delta = [](std::uint64_t now, std::uint64_t before) {
    return now >= before ? now - before : std::uint64_t{0};
  };
  const std::uint64_t sent_window = delta(c.sent, rate_baseline_.sent);
  if (sent_window < config_.min_sent_for_rates) return;
  ++checks_run_;
  const auto sent = static_cast<double>(sent_window);
  // Fault-plane drops act as loss for the lemmas: the sender cannot tell a
  // scripted drop from an ambient one, so the *effective* loss drives the
  // duplication/deletion balance.
  const double loss =
      static_cast<double>(delta(c.lost, rate_baseline_.lost) +
                          delta(c.to_dead, rate_baseline_.to_dead) +
                          delta(c.faulted, rate_baseline_.faulted)) /
      sent;
  const double dup =
      static_cast<double>(delta(c.duplications, rate_baseline_.duplications)) /
      sent;
  const double del =
      static_cast<double>(delta(c.deletions, rate_baseline_.deletions)) / sent;
  // Lemma 6.7: dup in [l, l + delta].
  const double lo = loss - config_.rate_tolerance;
  const double hi = loss + config_.delta + config_.rate_tolerance;
  if (dup < lo || dup > hi) {
    record(Violation{ViolationKind::kDuplicationRateBound, round, kNilNode, 0,
                     dup, lo, hi});
  }
  // Lemma 6.6: dup = l + del.
  const double imbalance = std::abs(dup - (loss + del));
  if (imbalance > config_.rate_tolerance) {
    record(Violation{ViolationKind::kDupDelBalance, round, kNilNode, 0,
                     imbalance, 0.0, config_.rate_tolerance});
  }
}

std::string InvariantWatchdog::report() const {
  std::ostringstream out;
  out << "watchdog: " << checks_run_ << " checks, " << violation_count_
      << " violations\n";
  for (const Violation& v : log_) {
    out << "  " << violation_kind_name(v.kind) << " round=" << v.round;
    if (v.node != kNilNode) out << " node=" << v.node;
    out << " shard=" << v.shard << " observed=" << v.observed << " bounds=["
        << v.bound_lo << ", " << v.bound_hi << "]\n";
  }
  return out.str();
}

void InvariantWatchdog::write_json(std::ostream& out) const {
  out << "{\"checks_run\":" << checks_run_
      << ",\"violations\":" << violation_count_ << ",\"log\":[";
  for (std::size_t i = 0; i < log_.size(); ++i) {
    if (i != 0) out << ',';
    const Violation& v = log_[i];
    out << "{\"kind\":\"" << violation_kind_name(v.kind)
        << "\",\"round\":" << v.round << ",\"node\":";
    if (v.node == kNilNode) {
      out << -1;
    } else {
      out << v.node;
    }
    out << ",\"shard\":" << v.shard << ",\"observed\":" << v.observed
        << ",\"bound_lo\":" << v.bound_lo << ",\"bound_hi\":" << v.bound_hi
        << '}';
  }
  out << "]}";
}

}  // namespace gossip::obs
