// Flight recorder: compact per-shard ring buffers of protocol events.
//
// Every message fate (loss, delivery, deletion, duplication) and churn
// event is one 24-byte POD appended to the recording shard's ring — a
// single store plus a counter bump, no locks, no allocation after
// construction, and no RNG draws, so recording never perturbs a run (the
// fingerprint stays bit-identical; pinned in tests/test_flight_recorder.cpp).
// Redundant events are deliberately NOT recorded: self-loops are no-op
// draws whose rate already lives in the metrics, and drivers that resolve
// a message's fate inline (round/sharded) skip kSend because the fate
// event carries the same (id, round, sender, receiver) fields. That keeps
// recording under the 2% overhead budget and stops no-ops from crowding
// real history out of the ring. Only QueuedNetwork emits kSend, where a
// message is genuinely in flight until its scheduled delivery fires.
// Message ids thread causality: the initiator's shard assigns
// (shard << 48 | per-shard sequence) at send time and the id rides the
// message, so a cross-shard delivery event names the same id as its send.
//
// The ring keeps the *last* capacity events per shard (older ones are
// overwritten and counted as dropped) — exactly what a post-mortem needs
// when the DriftMonitor escalates to VIOLATION and the TheoryOracle dumps
// the recorder. Dumps are a small binary format ("SFFR"); FlightTrace
// loads one back and reconstructs a message's lifecycle or a node's view
// history for `sfgossip trace-dump`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/node_id.hpp"

namespace gossip::obs {

enum class FlightEventKind : std::uint8_t {
  kSelfLoop = 0,  // initiate drew an empty slot; no message (Fig 5.1).
                  // Reserved for trace tooling — drivers do not emit it.
  kSend,          // message entered flight (node -> peer). Emitted only by
                  // QueuedNetwork; inline drivers skip it (see file header)
  kDuplicate,     // the send kept its slots (d(u) <= dL)
  kLose,          // the network dropped the message at send time
  kDeliver,       // receiver accepted the message (node = receiver)
  kDelete,        // receiver was full; both ids dropped (follows kDeliver)
  kToDead,        // receiver died in flight; dropped like loss
  kKill,          // churn: node left
  kRevive,        // churn: node rejoined
  kFaultDrop,     // an attached fault plane dropped the message (scripted
                  // injection — distinct from ambient kLose so trace-dump
                  // post-mortems separate faults from background loss)
};

[[nodiscard]] const char* flight_event_kind_name(FlightEventKind kind);

struct FlightEvent {
  std::uint64_t message_id = 0;  // 0 when the event carries no message
  std::uint32_t round = 0;
  NodeId node = kNilNode;  // acting node (initiator / receiver / churned)
  NodeId peer = kNilNode;  // other party (receiver of a send; sender of a
                           // delivery); kNilNode when not applicable
  FlightEventKind kind = FlightEventKind::kSelfLoop;
  std::uint8_t shard = 0;
  std::uint16_t reserved = 0;
};
static_assert(sizeof(FlightEvent) == 24, "FlightEvent must stay compact");

class FlightRecorder {
 public:
  // `capacity` is per shard and rounded up to a power of two (so the ring
  // index is a mask, not a division). The default keeps the ring small
  // enough to stay cache-resident *under load* (512 × 24 B = 12 KiB per
  // shard): the round loop streams the whole packed slab between ring
  // wraps, so a ring that competes with that stream for L2 turns appends
  // into DRAM read-for-ownership + writeback traffic. Measured on the
  // n=50k single-shard gate leg, a 96 KiB ring costs ~3.6% of the round
  // loop and a 12 KiB ring ~1%, against the <2% recording budget. Raise
  // capacity explicitly when a deeper post-mortem tail is worth that cost.
  explicit FlightRecorder(std::size_t shard_count,
                          std::size_t capacity = 1u << 9);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  // Assigns the next message id for `shard`. Deterministic (a per-shard
  // sequence), never 0.
  [[nodiscard]] std::uint64_t begin_message(std::size_t shard) {
    return make_message_id(shard, ++shards_[shard].sequence);
  }

  // Hot path: append one event to `shard`'s ring. Only the shard's own
  // thread may call this (same single-writer discipline as the registry).
  void record(std::size_t shard, FlightEvent event) {
    Shard& sh = shards_[shard];
    event.shard = static_cast<std::uint8_t>(shard);
    sh.ring[sh.total & mask_] = event;
    ++sh.total;
  }

  // Phase-long burst cursor for one shard: caches the ring pointer, mask,
  // and counters so each record is a masked store plus a local increment
  // instead of three dependent loads through the recorder (the difference
  // between ~5% and <2% overhead on the sharded round loop). Same
  // single-writer discipline as record(); counters flush back on
  // destruction, so the recorder must not be read (dump/shard_events)
  // while a writer for that shard is live.
  class ShardWriter {
   public:
    ShardWriter(FlightRecorder& recorder, std::size_t shard)
        : recorder_(&recorder),
          shard_(shard),
          ring_(recorder.shards_[shard].ring.data()),
          mask_(recorder.mask_),
          total_(recorder.shards_[shard].total),
          sequence_(recorder.shards_[shard].sequence) {}
    ShardWriter(const ShardWriter&) = delete;
    ShardWriter& operator=(const ShardWriter&) = delete;
    ~ShardWriter() { flush(); }

    [[nodiscard]] std::uint64_t begin_message() {
      return make_message_id(shard_, ++sequence_);
    }
    void record(FlightEvent event) {
      event.shard = static_cast<std::uint8_t>(shard_);
      ring_[total_ & mask_] = event;
      ++total_;
    }
    void flush() {
      Shard& sh = recorder_->shards_[shard_];
      sh.total = total_;
      sh.sequence = sequence_;
    }

   private:
    FlightRecorder* recorder_;
    std::size_t shard_;
    FlightEvent* ring_;
    std::uint64_t mask_;
    std::uint64_t total_;
    std::uint64_t sequence_;
  };

  // Events currently held / overwritten for one shard.
  [[nodiscard]] std::uint64_t recorded(std::size_t shard) const {
    return shards_[shard].total;
  }
  [[nodiscard]] std::uint64_t dropped(std::size_t shard) const {
    const std::uint64_t total = shards_[shard].total;
    return total > capacity_ ? total - capacity_ : 0;
  }
  [[nodiscard]] std::uint64_t total_recorded() const;

  // `shard`'s retained events, oldest first (the ring unwrapped).
  [[nodiscard]] std::vector<FlightEvent> shard_events(std::size_t shard) const;

  void clear();

  // Binary dump: "SFFR" magic, version, shard count, per-shard totals and
  // retained events. Same-architecture format (native endianness) — a
  // debugging artifact, not an interchange format.
  void dump(std::ostream& out) const;
  // Returns false (and writes nothing durable) on I/O failure.
  bool dump_to_file(const std::string& path) const;

  [[nodiscard]] static std::uint64_t make_message_id(std::size_t shard,
                                                     std::uint64_t sequence) {
    return (static_cast<std::uint64_t>(shard) << 48) | sequence;
  }
  [[nodiscard]] static std::size_t message_shard(std::uint64_t message_id) {
    return static_cast<std::size_t>(message_id >> 48);
  }

 private:
  struct alignas(64) Shard {
    std::vector<FlightEvent> ring;
    std::uint64_t total = 0;     // events ever recorded
    std::uint64_t sequence = 0;  // last message id sequence issued
  };

  std::size_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::vector<Shard> shards_;
};

// A loaded dump: every retained event merged across shards in (round,
// shard, intra-shard order) — a deterministic global order consistent with
// each shard's own chronology.
class FlightTrace {
 public:
  // Parses a dump; returns false on malformed input (leaves *this empty).
  // Every record read is bounds-checked against the header it claims to
  // follow, so a truncated or bit-flipped file fails with a diagnostic in
  // last_error() instead of handing garbage events to the analyzer.
  bool load(std::istream& in);
  bool load_file(const std::string& path);

  // Why the last load() / load_file() returned false; empty after success.
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

  [[nodiscard]] std::size_t shard_count() const { return dropped_.size(); }
  [[nodiscard]] const std::vector<FlightEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t dropped(std::size_t shard) const {
    return dropped_[shard];
  }
  [[nodiscard]] std::uint64_t total_dropped() const;

  // Every event carrying `message_id`, in global order: the message's
  // lifecycle ([duplicate, then] deliver / lose / to-dead [+ delete];
  // queued runs prefix a send).
  [[nodiscard]] std::vector<FlightEvent> message_lifecycle(
      std::uint64_t message_id) const;

  // Every event naming `node` (as actor or peer), in global order: the
  // node's view history — what it sent, received, dropped, and when it
  // churned.
  [[nodiscard]] std::vector<FlightEvent> node_history(NodeId node) const;

  // "round 12 shard 0: send msg 0x... 17 -> 42" — one line, no newline.
  [[nodiscard]] static std::string format_event(const FlightEvent& event);

 private:
  bool fail(const std::string& message);

  std::vector<FlightEvent> events_;
  std::vector<std::uint64_t> dropped_;
  std::string last_error_;
};

}  // namespace gossip::obs
