# Empty compiler generated dependencies file for test_degree_mc.
# This may be replaced when dependencies are built.
