#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "graph/graph_gen.hpp"

namespace gossip {
namespace {

TEST(GraphIo, RoundTripPreservesGraph) {
  Rng rng(1);
  const auto g = random_out_regular(50, 5, rng);
  const auto copy = parse_graph(serialize_graph(g));
  EXPECT_TRUE(copy == g);
}

TEST(GraphIo, RoundTripPreservesMultiplicityAndSelfEdges) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(2, 2);
  const auto copy = parse_graph(serialize_graph(g));
  EXPECT_EQ(copy.edge_multiplicity(0, 1), 2u);
  EXPECT_EQ(copy.edge_multiplicity(2, 2), 1u);
  EXPECT_TRUE(copy == g);
}

TEST(GraphIo, EmptyGraph) {
  const Digraph g(4);
  const auto copy = parse_graph(serialize_graph(g));
  EXPECT_EQ(copy.node_count(), 4u);
  EXPECT_EQ(copy.edge_count(), 0u);
}

TEST(GraphIo, RejectsBadHeader) {
  EXPECT_THROW(parse_graph("wrong\nnodes 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_graph(""), std::invalid_argument);
}

TEST(GraphIo, RejectsMalformedCountAndEdges) {
  EXPECT_THROW(parse_graph("membership-graph v1\nvertices 2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_graph("membership-graph v1\nnodes 2\n0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_graph("membership-graph v1\nnodes 2\n0 1 9\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_graph("membership-graph v1\nnodes 2\n0 5\n"),
               std::invalid_argument);
}

TEST(GraphIo, FileRoundTrip) {
  Rng rng(2);
  const auto g = ring_with_chords(20, 2, rng);
  const std::string path = ::testing::TempDir() + "/graph_io_test.txt";
  save_graph(g, path);
  const auto copy = load_graph(path);
  EXPECT_TRUE(copy == g);
  std::remove(path.c_str());
}

TEST(GraphIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_graph("/nonexistent/dir/file.txt"), std::runtime_error);
}

}  // namespace
}  // namespace gossip
