// Quantile estimation over fixed-bucket histograms.
//
// The registry stores per-bucket counts against a strictly increasing list
// of finite upper bounds plus an implicit +inf overflow bucket. Quantiles
// are estimated Prometheus-style: find the bucket containing the requested
// rank and interpolate linearly between the bucket's lower and upper edge.
// The estimate is deterministic (pure integer/double arithmetic over the
// merged counts) and never touches the hot path.
#pragma once

#include <cstdint>
#include <vector>

namespace gossip::obs {

struct HistogramQuantiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// Estimate the q-quantile (q in [0,1]) of a fixed-bucket histogram.
// `counts` has upper_bounds.size() + 1 entries; the last is the +inf
// overflow bucket. Conventions:
//  - an empty histogram (total count 0) yields 0.0;
//  - ranks landing in the overflow bucket clamp to the largest finite
//    bound (there is no upper edge to interpolate toward);
//  - the first bucket interpolates from min(0, upper_bounds[0]) so the
//    all-non-negative degree histograms start at zero.
[[nodiscard]] double histogram_quantile(
    const std::vector<double>& upper_bounds,
    const std::vector<std::uint64_t>& counts, double q);

// p50/p90/p99 in one pass over the cumulative counts.
[[nodiscard]] HistogramQuantiles estimate_quantiles(
    const std::vector<double>& upper_bounds,
    const std::vector<std::uint64_t>& counts);

}  // namespace gossip::obs
