// Shared helpers for protocol unit tests.
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace gossip::testing {

// A transport that records outbound messages instead of delivering them.
class CaptureTransport final : public Transport {
 public:
  void send(Message message) override { sent.push_back(std::move(message)); }

  std::vector<Message> sent;
};

// Installs `ids` into the protocol view (slot order, tagged independent).
inline void install(PeerProtocol& protocol, const std::vector<NodeId>& ids) {
  protocol.install_view(ids);
}

}  // namespace gossip::testing
