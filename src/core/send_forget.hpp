// The Send & Forget (S&F) membership protocol — Figure 5.1 of the paper.
//
// S&F is push-only and bookkeeping-free: after a node sends a message it
// "forgets" about it, so actions never overlap at a node and the protocol
// tolerates message loss by construction. Loss is compensated by
// *duplication*: when the sender's outdegree is at the lower threshold dL,
// the sent ids are kept instead of cleared, creating (the only) dependent
// view entries.
//
//   InitiateAction(u):                    Receive(u, [v1, v2]):
//     select 1 <= i != j <= s u.a.r.        if d(u) < s:
//     v <- u.lv[i]; w <- u.lv[j]              put v1, v2 into two empty
//     if v != ⊥ and w != ⊥:                   slots chosen u.a.r.
//       send [u, w] to v                    else: delete (drop) them
//       if d(u) > dL:
//         u.lv[i] <- ⊥; u.lv[j] <- ⊥       Invariant (Obs 5.1): d(u) is
//       (else: duplication)                 always even and in [dL, s].
#pragma once

#include <cstddef>

#include "core/protocol.hpp"

namespace gossip {

struct SendForgetConfig {
  // View size s: even, >= 6 (§5).
  std::size_t view_size = 40;
  // Lower outdegree threshold dL: even, 0 <= dL <= s - 6 (§5).
  std::size_t min_degree = 18;

  // Throws std::invalid_argument when the constraints above are violated.
  void validate() const;
};

// Returns the paper's example configuration from §6.3 (d_hat = 30,
// delta = 0.01): dL = 18, s = 40.
[[nodiscard]] SendForgetConfig default_send_forget_config();

class SendForget final : public PeerProtocol {
 public:
  SendForget(NodeId self, const SendForgetConfig& config);

  [[nodiscard]] const SendForgetConfig& config() const { return config_; }

  void on_initiate(Rng& rng, Transport& transport) override;
  void on_message(const Message& message, Rng& rng,
                  Transport& transport) override;

 private:
  SendForgetConfig config_;
};

}  // namespace gossip
