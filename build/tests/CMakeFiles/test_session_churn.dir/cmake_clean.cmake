file(REMOVE_RECURSE
  "CMakeFiles/test_session_churn.dir/test_session_churn.cpp.o"
  "CMakeFiles/test_session_churn.dir/test_session_churn.cpp.o.d"
  "test_session_churn"
  "test_session_churn.pdb"
  "test_session_churn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
