file(REMOVE_RECURSE
  "CMakeFiles/gossip_sim.dir/sim/churn.cpp.o"
  "CMakeFiles/gossip_sim.dir/sim/churn.cpp.o.d"
  "CMakeFiles/gossip_sim.dir/sim/cluster.cpp.o"
  "CMakeFiles/gossip_sim.dir/sim/cluster.cpp.o.d"
  "CMakeFiles/gossip_sim.dir/sim/event_driver.cpp.o"
  "CMakeFiles/gossip_sim.dir/sim/event_driver.cpp.o.d"
  "CMakeFiles/gossip_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/gossip_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/gossip_sim.dir/sim/loss.cpp.o"
  "CMakeFiles/gossip_sim.dir/sim/loss.cpp.o.d"
  "CMakeFiles/gossip_sim.dir/sim/network.cpp.o"
  "CMakeFiles/gossip_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/gossip_sim.dir/sim/round_driver.cpp.o"
  "CMakeFiles/gossip_sim.dir/sim/round_driver.cpp.o.d"
  "CMakeFiles/gossip_sim.dir/sim/session_churn.cpp.o"
  "CMakeFiles/gossip_sim.dir/sim/session_churn.cpp.o.d"
  "CMakeFiles/gossip_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/gossip_sim.dir/sim/trace.cpp.o.d"
  "libgossip_sim.a"
  "libgossip_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
