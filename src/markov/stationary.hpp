// Stationary distributions of finite Markov chains.
//
// The paper computes "the MC's stationary distribution numerically by
// multiplying the transition matrix by itself until it converges" (§6.2);
// we use the equivalent (and cheaper) repeated vector-matrix product.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/matrix.hpp"

namespace gossip::markov {

struct StationaryOptions {
  // Stop when the L1 change between successive distributions drops below
  // this threshold.
  double tolerance = 1e-13;
  std::size_t max_iterations = 2'000'000;
  // Optional initial distribution; uniform when empty.
  std::vector<double> initial;
};

struct StationaryResult {
  std::vector<double> distribution;
  std::size_t iterations = 0;
  bool converged = false;
  // L1 change in the final iteration.
  double residual = 0.0;
};

// Computes pi with pi = pi * P by power iteration. P must be row-stochastic.
[[nodiscard]] StationaryResult stationary_distribution(
    const Matrix& transition, const StationaryOptions& options = {});

// Verifies pi * P == pi within tolerance.
[[nodiscard]] bool is_stationary(const Matrix& transition,
                                 const std::vector<double>& pi,
                                 double tolerance = 1e-9);

// Total variation distance between the t-step distribution started at
// `initial` and `pi`; used to measure convergence speed empirically.
[[nodiscard]] std::vector<double> tv_trajectory(const Matrix& transition,
                                                std::vector<double> initial,
                                                const std::vector<double>& pi,
                                                std::size_t steps);

}  // namespace gossip::markov
