// Extension: system-size estimation — an application-level measurement of
// what view quality buys (§1 motivates membership views with "gathering
// statistics").
//
// The birthday estimator n̂ = k(k-1)/(2C) is unbiased iff samples are
// i.i.d. uniform. Three samplers feed it:
//   * S&F fresh view samples (M3-M5 hold) — accurate;
//   * random-walk endpoints on a hub-skewed overlay — collisions inflate,
//     n is *under*estimated;
//   * a deliberately stale sampler (one frozen view reused) — tiny sample
//     support, gross underestimate.
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/peer_sampler.hpp"
#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "sampling/random_walk.hpp"
#include "sampling/size_estimator.hpp"
#include "sim/round_driver.hpp"

namespace {

using namespace gossip;

// Greedy: drains every fresh entry before letting the protocol run.
// Spaced: at most `per_round` samples per round, letting the view turn
// over between draws (less residual correlation, better estimates).
double estimate_with_fresh_sampler(sim::Cluster& cluster,
                                   sim::RoundDriver& driver, Rng& rng,
                                   std::size_t samples,
                                   std::size_t per_round) {
  sampling::BirthdaySizeEstimator est;
  FreshPeerSampler sampler(cluster.node(0));
  std::size_t this_round = 0;
  while (est.sample_count() < samples) {
    const auto peer =
        this_round < per_round ? sampler.sample(rng) : std::nullopt;
    if (peer) {
      est.add_sample(*peer);
      ++this_round;
    } else {
      driver.run_rounds(1);
      this_round = 0;
    }
  }
  return est.estimate().value_or(0.0);
}

// Pooled: one sample per round from each of `observers` different nodes —
// cross-view dependence only, so the estimate is nearly unbiased.
double estimate_pooled(sim::Cluster& cluster, sim::RoundDriver& driver,
                       Rng& rng, std::size_t samples, std::size_t observers) {
  sampling::BirthdaySizeEstimator est;
  std::vector<FreshPeerSampler> samplers;
  samplers.reserve(observers);
  for (std::size_t k = 0; k < observers; ++k) {
    samplers.emplace_back(
        cluster.node(static_cast<NodeId>(k % cluster.size())));
  }
  while (est.sample_count() < samples) {
    for (auto& sampler : samplers) {
      if (est.sample_count() >= samples) break;
      if (const auto peer = sampler.sample(rng)) est.add_sample(*peer);
    }
    driver.run_rounds(1);
  }
  return est.estimate().value_or(0.0);
}

}  // namespace

int main() {
  using namespace gossip::bench;

  print_header("Extension — birthday size estimation from peer samples");

  constexpr std::size_t kSamples = 700;
  std::printf("%8s | %12s %12s %12s %12s %12s\n", "true n", "S&F greedy",
              "S&F spaced", "S&F pooled", "RW (skewed)", "stale view");
  for (const std::size_t n : {200u, 400u, 800u, 1600u}) {
    Rng rng(1000 + n);
    sim::Cluster cluster(n, [](NodeId id) {
      return std::make_unique<SendForget>(id, default_send_forget_config());
    });
    Digraph g = permutation_regular(n, 10, rng);
    // Add hub skew so that degree bias is visible for the walk.
    for (NodeId u = 1; u < n; ++u) g.add_edge(u, 0);
    cluster.install_graph(g);
    sim::UniformLoss loss(0.01);
    sim::RoundDriver driver(cluster, loss, rng);
    driver.run_rounds(300);

    // (a) S&F fresh samples, greedy and spaced.
    const double sf_greedy = estimate_with_fresh_sampler(
        cluster, driver, rng, kSamples, /*per_round=*/1000);
    const double sf_spaced = estimate_with_fresh_sampler(
        cluster, driver, rng, kSamples, /*per_round=*/1);
    const double sf_pooled =
        estimate_pooled(cluster, driver, rng, kSamples, /*observers=*/100);

    // (b) Random-walk endpoints on a freshly skewed copy of the overlay
    // (the S&F run above has already repaired the hub, so re-skew).
    sim::Cluster skewed(n, [](NodeId id) {
      return std::make_unique<SendForget>(id, default_send_forget_config());
    });
    skewed.install_graph(g);
    sim::UniformLoss no_loss(0.0);
    sampling::RandomWalkSampler walker(
        skewed, no_loss, sampling::RandomWalkConfig{.walk_length = 25});
    sampling::BirthdaySizeEstimator rw_est;
    while (rw_est.sample_count() < kSamples) {
      if (const auto peer = walker.sample(
              static_cast<NodeId>(rng.uniform(n)), rng)) {
        rw_est.add_sample(*peer);
      }
    }

    // (c) Stale sampler: resample one frozen view forever.
    sampling::BirthdaySizeEstimator stale_est;
    const auto frozen = cluster.node(0).view().ids();
    for (std::size_t k = 0; k < kSamples; ++k) {
      stale_est.add_sample(frozen[rng.uniform(frozen.size())]);
    }

    std::printf("%8zu | %12.0f %12.0f %12.0f %12.0f %12.0f\n", n, sf_greedy,
                sf_spaced, sf_pooled, rw_est.estimate().value_or(0.0),
                stale_est.estimate().value_or(0.0));
  }
  print_note("pooling across 100 observers removes the single-observer "
             "bias (a lone node's arrivals over-represent its slowly "
             "changing in-neighborhood) and tracks the true size; the "
             "degree-biased walk underestimates grossly (hub collisions); "
             "a frozen view can never see past its ~28 entries. Budget: "
             "700 samples each.");
  return 0;
}
