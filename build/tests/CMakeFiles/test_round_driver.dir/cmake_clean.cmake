file(REMOVE_RECURSE
  "CMakeFiles/test_round_driver.dir/test_round_driver.cpp.o"
  "CMakeFiles/test_round_driver.dir/test_round_driver.cpp.o.d"
  "test_round_driver"
  "test_round_driver.pdb"
  "test_round_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_round_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
