#include "markov/sparse_chain.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stack>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "markov/anderson.hpp"

namespace gossip::markov {

namespace {

// Below this many stored transitions a parallel dispatch costs more than
// the gather itself.
constexpr std::size_t kParallelTransitionThreshold = 1 << 15;

}  // namespace

SparseChain::SparseChain(std::size_t state_count) : row_sum_(state_count, 0.0) {}

void SparseChain::resize(std::size_t count) {
  if (count > row_sum_.size()) row_sum_.resize(count, 0.0);
}

void SparseChain::add(std::size_t from, std::size_t to, double prob) {
  assert(!finalized_);
  if (prob <= 0.0) return;
  resize(std::max(from, to) + 1);
  if (from == to) return;  // self-loops are implicit
  from_.push_back(static_cast<std::uint32_t>(from));
  to_.push_back(static_cast<std::uint32_t>(to));
  prob_.push_back(prob);
  row_sum_[from] += prob;
}

std::size_t SparseChain::add_edge(std::size_t from, std::size_t to) {
  assert(!finalized_);
  resize(std::max(from, to) + 1);
  if (from == to) return kNoSlot;
  from_.push_back(static_cast<std::uint32_t>(from));
  to_.push_back(static_cast<std::uint32_t>(to));
  prob_.push_back(0.0);
  return prob_.size() - 1;
}

void SparseChain::build_csr() {
  const std::size_t n = state_count();
  const std::size_t nnz = prob_.size();
  in_row_ptr_.assign(n + 1, 0);
  for (std::size_t e = 0; e < nnz; ++e) ++in_row_ptr_[to_[e] + 1];
  for (std::size_t j = 0; j < n; ++j) in_row_ptr_[j + 1] += in_row_ptr_[j];
  in_src_.resize(nnz);
  in_prob_.resize(nnz);
  slot_to_pos_.resize(nnz);
  // Counting sort by destination; slots of a destination keep insertion
  // order, so every gather below is a fixed-order sum.
  std::vector<std::size_t> cursor(in_row_ptr_.begin(), in_row_ptr_.end() - 1);
  for (std::size_t e = 0; e < nnz; ++e) {
    const std::size_t pos = cursor[to_[e]]++;
    in_src_[pos] = from_[e];
    in_prob_[pos] = prob_[e];
    slot_to_pos_[e] = pos;
  }
  finalized_ = true;
}

void SparseChain::finalize(double tolerance) {
  for (std::size_t s = 0; s < row_sum_.size(); ++s) {
    if (row_sum_[s] > 1.0 + tolerance) {
      throw std::runtime_error("sparse chain row exceeds probability 1");
    }
    row_sum_[s] = std::min(row_sum_[s], 1.0);
  }
  build_csr();
}

void SparseChain::finalize_structure() { build_csr(); }

void SparseChain::set_prob(std::size_t slot, double prob) {
  assert(finalized_);
  if (slot == kNoSlot) return;
  assert(slot < prob_.size());
  prob_[slot] = prob;
  in_prob_[slot_to_pos_[slot]] = prob;
}

void SparseChain::commit_values(double tolerance) {
  assert(finalized_);
  std::fill(row_sum_.begin(), row_sum_.end(), 0.0);
  for (std::size_t e = 0; e < prob_.size(); ++e) {
    row_sum_[from_[e]] += prob_[e];
  }
  for (double& row : row_sum_) {
    if (row > 1.0 + tolerance) {
      throw std::runtime_error("sparse chain row exceeds probability 1");
    }
    row = std::min(row, 1.0);
  }
}

void SparseChain::step_into(const std::vector<double>& pi,
                            std::vector<double>& out) const {
  assert(finalized_);
  assert(pi.size() == state_count());
  assert(&pi != &out);
  const std::size_t n = state_count();
  out.resize(n);
  const double* p = pi.data();
  double* o = out.data();
  auto gather = [&](std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end; ++j) {
      double acc = p[j] * (1.0 - row_sum_[j]);
      for (std::size_t k = in_row_ptr_[j]; k < in_row_ptr_[j + 1]; ++k) {
        acc += p[in_src_[k]] * in_prob_[k];
      }
      o[j] = acc;
    }
  };
  if (in_prob_.size() >= kParallelTransitionThreshold) {
    // Grain is a pure function of n, so chunk boundaries — and therefore
    // bits — do not depend on the worker count.
    const std::size_t grain = std::max<std::size_t>(256, n / 64);
    ThreadPool::global().parallel_for(n, grain, gather);
  } else {
    gather(0, n);
  }
}

std::vector<double> SparseChain::step(const std::vector<double>& pi) const {
  std::vector<double> next;
  step_into(pi, next);
  return next;
}

SparseChain::StationaryResult SparseChain::stationary(
    std::vector<double> initial, double tolerance,
    std::size_t max_iterations, bool accelerated,
    obs::SolverSink* telemetry, std::string_view telemetry_name) const {
  assert(finalized_);
  const std::size_t n = state_count();
  if (n == 0) throw std::runtime_error("empty chain");
  StationaryResult result;
  std::vector<double> pi = std::move(initial);
  if (pi.empty()) {
    pi.assign(n, 1.0 / static_cast<double>(n));
  } else if (pi.size() != n) {
    throw std::invalid_argument("initial distribution has wrong size");
  }
  // Anderson-accelerated power iteration. The residual ||pi P - pi||_1 is
  // the same stopping criterion plain power iteration uses (there the
  // step change *is* the residual), so the accepted distribution is as
  // tight as an unaccelerated solve; the mixer only shortens the path.
  // Rejected or degenerate extrapolations fall back to the plain power
  // step, so the worst case matches unaccelerated convergence.
  AndersonMixer mixer(4);
  mixer.set_telemetry(telemetry, telemetry_name);
  std::vector<double> next(n);
  std::vector<double> f(n);
  std::vector<double> accel;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    step_into(pi, next);
    double total = 0.0;
    for (const double x : next) total += x;
    for (double& x : next) x /= total;
    double diff = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      f[s] = next[s] - pi[s];
      diff += std::abs(f[s]);
    }
    result.iterations = it + 1;
    result.residual = diff;
    if (telemetry != nullptr) {
      telemetry->on_iteration(telemetry_name, it + 1, diff);
    }
    if (diff < tolerance) {
      std::swap(pi, next);
      result.converged = true;
      break;
    }
    if (accelerated) {
      mixer.push(pi, f, diff);
      if (mixer.extrapolate(accel) && project_to_simplex(accel)) {
        std::swap(pi, accel);
        continue;
      }
    }
    std::swap(pi, next);
  }
  result.distribution = std::move(pi);
  return result;
}

bool SparseChain::strongly_connected() const {
  const std::size_t n = state_count();
  if (n <= 1) return true;
  // Build adjacency and run iterative Tarjan (structure only).
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::size_t e = 0; e < prob_.size(); ++e) {
    if (prob_[e] > 0.0) adj[from_[e]].push_back(to_[e]);
  }
  constexpr std::uint32_t kUnvisited = 0xFFFFFFFFu;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> scc_stack;
  std::uint32_t next_index = 0;
  std::size_t scc_count = 0;
  struct Frame {
    std::uint32_t node;
    std::size_t child;
  };
  std::stack<Frame> call_stack;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push({root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;
    while (!call_stack.empty()) {
      auto& frame = call_stack.top();
      if (frame.child < adj[frame.node].size()) {
        const std::uint32_t w = adj[frame.node][frame.child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          call_stack.push({w, 0});
        } else if (on_stack[w]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[w]);
        }
      } else {
        const std::uint32_t v = frame.node;
        call_stack.pop();
        if (!call_stack.empty()) {
          auto& parent = call_stack.top();
          lowlink[parent.node] = std::min(lowlink[parent.node], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          ++scc_count;
          if (scc_count > 1) return false;
          std::uint32_t w;
          do {
            w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
          } while (w != v);
        }
      }
    }
  }
  return scc_count == 1;
}

bool SparseChain::doubly_stochastic(double tolerance) const {
  std::vector<double> column_sum(state_count(), 0.0);
  for (std::size_t s = 0; s < state_count(); ++s) {
    column_sum[s] += 1.0 - row_sum_[s];  // implied self-loop
  }
  for (std::size_t e = 0; e < prob_.size(); ++e) {
    column_sum[to_[e]] += prob_[e];
  }
  for (const double c : column_sum) {
    if (std::abs(c - 1.0) > tolerance) return false;
  }
  return true;
}

}  // namespace gossip::markov
