#!/usr/bin/env python3
"""Regression gate over the committed BENCH_*.json baselines.

Validates every baseline in the repository root (or the directory given as
the first argument):

  all files     schema_version >= 2 header present; the git stamp records a
                clean revision (bench_report refuses to write a BENCH_*
                baseline from a dirty tree; this catches one smuggled in
                with --allow-dirty).
  scale         registry_overhead_pct and recorder_overhead_pct under the
                2% hot-path budget; a nonempty results table.
  analysis      the accelerated degree-MC sweep agrees with the seed
                baseline configuration (max mean-indegree difference), and
                the mean-field fast path holds its contract: >= 50x faster
                than the exact sweep on the committed box, per-point
                degree-marginal TVD <= 5e-3 and dup/del rates within 2%
                relative of the exact solver, every point converged, and
                the prediction cache actually serves repeats.
  telemetry     zero watchdog violations, nonempty registry histograms
                (the degree histograms must actually be wired), the
                "observe" phase attributed as a coordinator phase, and the
                export plane holding its contract: a valid
                sfgossip.snapshot/v1 delta-encoded schema header,
                exporter_overhead_pct under the 2% hot-path budget,
                bit-identical fingerprints with exporters attached, and
                ordered (p50 <= p90 <= p99) outdegree quantile estimates.
  drift         the correctly parameterized run finished with zero drift
                violations inside the degree-TVD limits, and the
                mis-parameterized run tripped the monitor and dumped a
                nonempty flight trace.
  forensics     every analyzer leg attributed all of its incidents to the
                injected cause with zero left unknown, the rendered JSON
                report was byte-identical across renders, and the whole
                load->index->attribute->render pass stayed inside the
                wall-clock budget recorded in the baseline.
  chaos         every fault-plane leg holds its gate: the partition and
                mass-kill legs degraded and recovered within their round
                budgets, the regional burst leg recovered and ended fully
                in band, and the undeclared-spike leg still tripped the
                drift monitor (declared-window accounting must not blunt
                detection of faults nobody declared). The sustained-spike
                pair must split: the retuned leg survives with zero drift
                violations, at least one applied retune, and the degree
                lanes back in band, while the unattended leg trips the
                monitor.
  arena         the protocol x scenario x loss detection matrix is complete
                ({sf, swim, a2a} x {partition_heal, mass_kill,
                regional_burst} x {0, 0.02, 0.10}), every leg reproduced
                its fingerprint across two back-to-back runs, SWIM detected
                every mass-kill victim at every live observer (completeness
                1.0) with false-positive pair-spells under budget and all
                refuted at loss <= 2%, and the S&F legs recovered within
                the same round budgets BENCH_chaos.json commits (the arena
                must not need looser S&F gates than the chaos baseline).

Run directly or via ctest (registered as check_bench_baselines). Exits
nonzero listing every failed check; prints one OK line per file otherwise.
"""

import glob
import json
import os
import sys

HOT_PATH_BUDGET_PCT = 2.0
DEGREE_MC_AGREEMENT = 1e-6
# Observation overhead budget (observed vs bare at the reference n). The
# cost is the stride-10 quiescent probe: an O(n*s) walk over every packed
# view row plus the watchdog scan, amortized over 10 rounds of useful work.
# Packed 4-byte entries halved the probe's traffic relative to the unpacked
# seed engine (20.7% there), so a sampling regression past this budget means
# the probe degraded structurally, not that the workload got faster.
OBS_BUDGET_PCT = 25.0
# Memory-footprint gate for the 10M-node leg: the packed SoA layout budgets
# ~171 B/node (160 B slot row + degree/live side arrays + the driver's live
# lists); 220 leaves allocator and mailbox headroom without letting a
# per-node regression (e.g. an unpacked entry sneaking back in) pass.
BYTES_PER_NODE_BUDGET = 220.0
BYTES_PER_NODE_MIN_N = 10_000_000
# Single-worker throughput gate at the n = 50k operating point: >= 1.5x the
# unpacked seed engine's committed 8.93M actions/sec.
SINGLE_THREAD_GATE_N = 50_000
SINGLE_THREAD_FLOOR_APS = 1.5 * 8.93e6
# Mean-field fast-path contract: wall-clock floor vs the accelerated exact
# sweep on the committed box, and per-point accuracy limits vs the exact
# solver (the solver lands orders of magnitude inside these; the gates
# bound structural regressions, not noise).
MEAN_FIELD_SPEEDUP_FLOOR = 50.0
MEAN_FIELD_TVD_LIMIT = 5e-3
MEAN_FIELD_RATE_LIMIT = 2e-2


def fail(errors, path, message):
    errors.append(f"{os.path.basename(path)}: {message}")


def check_header(doc, path, errors):
    schema = doc.get("schema_version")
    if not isinstance(schema, int) or schema < 2:
        fail(errors, path, f"schema_version {schema!r} (need >= 2)")
    git = doc.get("git")
    if not isinstance(git, str) or not git:
        fail(errors, path, "missing git stamp")
    elif git == "unknown" or git.endswith("-dirty"):
        fail(errors, path, f"baseline written from a dirty tree (git: {git})")


def check_scale(doc, path, errors):
    results = doc.get("results")
    if not results:
        fail(errors, path, "empty results table")
        return
    for key in ("registry_overhead_pct", "recorder_overhead_pct"):
        pct = doc.get(key)
        if not isinstance(pct, (int, float)):
            fail(errors, path, f"missing {key}")
        elif pct >= HOT_PATH_BUDGET_PCT:
            fail(errors, path,
                 f"{key} = {pct:.2f}% (budget < {HOT_PATH_BUDGET_PCT}%)")
    obs = doc.get("obs_overhead_pct")
    if not isinstance(obs, (int, float)):
        fail(errors, path, "missing obs_overhead_pct")
    elif obs >= OBS_BUDGET_PCT:
        fail(errors, path,
             f"obs_overhead_pct = {obs:.2f}% (budget < {OBS_BUDGET_PCT}%; "
             "the stride-10 quiescent probe got structurally slower)")
    # Memory footprint at the 10M-node operating point. The baseline must
    # actually contain such a leg — the headline scale claim is void if the
    # big run silently disappears from the table.
    big = [r for r in results
           if r.get("driver", "").startswith("sharded")
           and r.get("n", 0) >= BYTES_PER_NODE_MIN_N]
    if not big:
        fail(errors, path,
             f"no sharded leg with n >= {BYTES_PER_NODE_MIN_N}")
    for r in big:
        bpn = r.get("bytes_per_node")
        if not isinstance(bpn, (int, float)) or bpn <= 0:
            fail(errors, path,
                 f"n={r.get('n')}: missing/zero bytes_per_node")
        elif bpn > BYTES_PER_NODE_BUDGET:
            fail(errors, path,
                 f"n={r.get('n')}: bytes_per_node = {bpn:.1f} "
                 f"(budget <= {BYTES_PER_NODE_BUDGET:.0f})")
    # Single-worker throughput at n = 50k: the packed hot path plus
    # shard-blocked scheduling must clear 1.5x the unpacked seed engine on
    # one thread, independent of how many cores the bench box has.
    best_1t = max((r.get("actions_per_sec", 0.0) for r in results
                   if r.get("driver") == "sharded_flat"
                   and r.get("n") == SINGLE_THREAD_GATE_N
                   and r.get("threads") == 1), default=0.0)
    if best_1t <= 0.0:
        fail(errors, path,
             f"no sharded_flat leg at n={SINGLE_THREAD_GATE_N} threads=1")
    elif best_1t < SINGLE_THREAD_FLOOR_APS:
        fail(errors, path,
             f"single-thread n={SINGLE_THREAD_GATE_N} throughput "
             f"{best_1t:.3g} actions/sec "
             f"(floor {SINGLE_THREAD_FLOOR_APS:.3g})")
    # When the winning speedup configuration is oversubscribed, the honest
    # single-worker companion figure must ride along.
    if doc.get("speedup_oversubscribed") is True:
        if not any(k.startswith("speedup_vs_sequential_at_n")
                   and k.endswith("_1t") for k in doc):
            fail(errors, path,
                 "speedup is oversubscribed but the _1t companion "
                 "speedup key is missing")


def check_analysis(doc, path, errors):
    degree = doc.get("degree_mc", {})
    diff = degree.get("max_mean_indegree_diff")
    if not isinstance(diff, (int, float)):
        fail(errors, path, "missing degree_mc.max_mean_indegree_diff")
    elif diff > DEGREE_MC_AGREEMENT:
        fail(errors, path,
             f"accelerated degree MC disagrees with baseline by {diff:g}")

    mean_field = doc.get("mean_field")
    if not isinstance(mean_field, dict):
        fail(errors, path, "missing mean_field section")
        return
    speedup = mean_field.get("speedup_vs_exact")
    if not isinstance(speedup, (int, float)):
        fail(errors, path, "missing mean_field.speedup_vs_exact")
    elif speedup < MEAN_FIELD_SPEEDUP_FLOOR:
        fail(errors, path,
             f"mean-field speedup {speedup:g}x below the "
             f"{MEAN_FIELD_SPEEDUP_FLOOR:g}x floor")
    points = mean_field.get("points", [])
    if not points:
        fail(errors, path, "mean_field.points is empty")
    for point in points:
        loss = point.get("loss")
        if point.get("converged") is not True:
            fail(errors, path,
                 f"mean-field point loss={loss!r} did not converge")
        for stat, limit in (("tvd_out", MEAN_FIELD_TVD_LIMIT),
                            ("tvd_in", MEAN_FIELD_TVD_LIMIT),
                            ("dup_rel_err", MEAN_FIELD_RATE_LIMIT),
                            ("del_rel_err", MEAN_FIELD_RATE_LIMIT)):
            value = point.get(stat)
            if not isinstance(value, (int, float)):
                fail(errors, path,
                     f"mean-field point loss={loss!r} missing {stat}")
            elif value > limit:
                fail(errors, path,
                     f"mean-field point loss={loss!r} {stat} = {value:g} "
                     f"outside its limit {limit:g}")
    cache = mean_field.get("cache", {})
    if not cache.get("hits"):
        fail(errors, path,
             "prediction cache served no hits (repeat solve not cached)")


def check_telemetry(doc, path, errors):
    sim = doc.get("simulation", {})
    violations = sim.get("watchdog", {}).get("violations")
    if violations != 0:
        fail(errors, path, f"watchdog violations = {violations!r} (want 0)")
    if not sim.get("registry", {}).get("histograms"):
        fail(errors, path, "registry histograms are empty "
             "(degree histograms not wired)")
    phases = {p.get("phase"): p for p in sim.get("phases", [])}
    observe = phases.get("observe")
    if observe is None:
        fail(errors, path, "no 'observe' phase in the profiler dump")
    elif observe.get("coordinator") is not True:
        fail(errors, path, "'observe' phase not marked as coordinator "
             "(its nanos would be misattributed to shard 0)")
    elif "per_shard_nanos" in observe:
        fail(errors, path,
             "'observe' phase still carries per_shard_nanos")

    export = doc.get("export")
    if not isinstance(export, dict):
        fail(errors, path, "missing 'export' section (exporter overhead "
             "leg not wired)")
        return
    schema = export.get("snapshot_schema", {})
    if schema.get("name") != "sfgossip.snapshot" or \
       schema.get("version") != 1 or \
       schema.get("delta_encoded") is not True:
        fail(errors, path, f"bad snapshot_schema header {schema!r} (want "
             "name='sfgossip.snapshot', version=1, delta_encoded=true)")
    pct = export.get("exporter_overhead_pct")
    if not isinstance(pct, (int, float)):
        fail(errors, path, "missing exporter_overhead_pct")
    elif pct >= HOT_PATH_BUDGET_PCT:
        fail(errors, path,
             f"exporter_overhead_pct = {pct:.2f}% "
             f"(budget < {HOT_PATH_BUDGET_PCT}%)")
    if export.get("fingerprint_match") is not True:
        fail(errors, path, "exporter-attached run changed the simulation "
             "fingerprint (export plane must draw zero RNG)")
    if not export.get("snapshots"):
        fail(errors, path, "exporter leg captured no snapshots")
    q = export.get("outdegree_quantiles", {})
    p50, p90, p99 = (q.get(k) for k in ("p50", "p90", "p99"))
    if not all(isinstance(v, (int, float)) for v in (p50, p90, p99)):
        fail(errors, path, "missing outdegree quantiles in export section")
    elif not (0 < p50 <= p90 <= p99):
        fail(errors, path,
             f"outdegree quantiles not ordered: p50={p50} p90={p90} "
             f"p99={p99}")


def check_drift(doc, path, errors):
    gates = doc.get("gates", {})
    if gates.get("clean_zero_violations") is not True:
        fail(errors, path, "clean run gate failed")
    if gates.get("misparam_tripped") is not True:
        fail(errors, path, "mis-parameterized run gate failed")
    clean = doc.get("clean", {})
    if clean.get("violation_transitions") != 0:
        fail(errors, path,
             f"clean run had {clean.get('violation_transitions')!r} "
             "drift violations")
    probe = clean.get("last_probe", {})
    for stat, limit in (("tvd_out", "tvd_out_limit"),
                        ("tvd_in", "tvd_in_limit")):
        value, bound = probe.get(stat), probe.get(limit)
        if not isinstance(value, (int, float)) or \
           not isinstance(bound, (int, float)):
            fail(errors, path, f"missing {stat}/{limit} in clean last_probe")
        elif value >= bound:
            fail(errors, path,
                 f"clean {stat} = {value:g} outside its limit {bound:g}")
    mis = doc.get("misparam", {})
    if not mis.get("violation_transitions"):
        fail(errors, path, "mis-parameterized run never escalated to "
             "VIOLATION")
    if mis.get("dump_written") is not True or not mis.get("dump_events"):
        fail(errors, path, "mis-parameterized run did not dump a nonempty "
             "flight trace")


def check_chaos(doc, path, errors):
    gates = doc.get("gates", {})
    for gate in ("partition_recovered", "mass_failure_recovered",
                 "burst_survived", "undeclared_tripped",
                 "retune_survived", "retune_off_tripped"):
        if gates.get(gate) is not True:
            fail(errors, path, f"chaos gate {gate} failed")
    budgets = doc.get("budgets", {})
    for leg, label, budget_key in (
            ("partition_heal", "split", "partition_rounds"),
            ("mass_failure", "mass-kill", "mass_kill_rounds"),
            ("burst_survival", "rack-burst", "burst_rounds")):
        run = doc.get(leg, {})
        budget = budgets.get(budget_key)
        if not isinstance(budget, int):
            fail(errors, path, f"missing budgets.{budget_key}")
            continue
        episode = next((e for e in run.get("episodes", [])
                        if e.get("label") == label), None)
        if episode is None:
            fail(errors, path, f"{leg}: no '{label}' episode recorded")
            continue
        if episode.get("degraded") is not True:
            fail(errors, path,
                 f"{leg}: '{label}' never degraded (fault had no effect)")
        if episode.get("recovered") is not True:
            fail(errors, path, f"{leg}: '{label}' never recovered")
        rounds = episode.get("recovery_rounds")
        if not isinstance(rounds, int):
            fail(errors, path, f"{leg}: missing recovery_rounds")
        elif rounds > budget:
            fail(errors, path,
                 f"{leg}: recovered in {rounds} rounds "
                 f"(budget {budget})")
        if run.get("unrecovered") != 0:
            fail(errors, path,
                 f"{leg}: {run.get('unrecovered')!r} unrecovered episode(s)")
        if not run.get("faulted") and leg != "mass_failure":
            fail(errors, path, f"{leg}: fault plane dropped no messages")
    spike = doc.get("undeclared_spike", {})
    if not spike.get("violation_transitions"):
        fail(errors, path,
             "undeclared spike never escalated the drift monitor")
    if not any(e.get("label") == "undeclared" and e.get("degraded")
               for e in spike.get("episodes", [])):
        fail(errors, path,
             "undeclared spike opened no undeclared recovery episode")
    retune = doc.get("loss_retune", {})
    if retune.get("violation_transitions") != 0:
        fail(errors, path,
             f"retuned spike escalated the drift monitor "
             f"({retune.get('violation_transitions')!r} violations)")
    if not retune.get("retunes_applied"):
        fail(errors, path, "retuned spike installed no new configuration")
    if retune.get("degree_in_band") is not True:
        fail(errors, path,
             "retuned spike ended with the degree lanes out of band")
    if retune.get("unrecovered") != 0:
        fail(errors, path,
             f"retuned spike left {retune.get('unrecovered')!r} "
             f"unrecovered episode(s)")
    bare = doc.get("loss_retune_off", {})
    if not bare.get("violation_transitions"):
        fail(errors, path,
             "unattended sustained spike never escalated the drift monitor")


def check_forensics(doc, path, errors):
    gates = doc.get("gates", {})
    for gate in ("declared_attributed", "churn_attributed",
                 "loss_attributed", "analyze_within_budget"):
        if gates.get(gate) is not True:
            fail(errors, path, f"forensics gate {gate} failed")
    budget = doc.get("analyze_budget_seconds")
    if not isinstance(budget, (int, float)) or budget <= 0:
        fail(errors, path, "missing analyze_budget_seconds")
        budget = None
    for leg in ("declared_partition", "undeclared_mass_kill",
                "undeclared_loss_spike"):
        a = doc.get(leg)
        if not isinstance(a, dict):
            fail(errors, path, f"missing {leg} leg")
            continue
        incidents = a.get("incidents")
        if not isinstance(incidents, int) or incidents <= 0:
            fail(errors, path, f"{leg}: no incidents detected "
                 "(the injected fault left no trace)")
        if a.get("unknown") != 0:
            fail(errors, path,
                 f"{leg}: {a.get('unknown')!r} incident(s) left unknown")
        if a.get("matched") != incidents:
            fail(errors, path,
                 f"{leg}: {a.get('matched')!r}/{incidents!r} incidents "
                 f"attributed to {a.get('expected_cause')!r}")
        if a.get("deterministic") is not True:
            fail(errors, path, f"{leg}: report render not deterministic")
        seconds = a.get("analyze_seconds")
        if not isinstance(seconds, (int, float)):
            fail(errors, path, f"{leg}: missing analyze_seconds")
        elif budget is not None and seconds >= budget:
            fail(errors, path,
                 f"{leg}: analyze took {seconds:g}s (budget {budget:g}s)")
        if not a.get("trace_events") or not a.get("snapshots"):
            fail(errors, path,
                 f"{leg}: empty artifact set (trace_events="
                 f"{a.get('trace_events')!r}, "
                 f"snapshots={a.get('snapshots')!r})")


# The arena's S&F recovery budgets must equal the committed chaos budgets
# (BENCH_chaos.json "budgets"): the arena is not allowed to quietly loosen
# the recovery story the chaos baseline gates on.
ARENA_SF_PARTITION_BUDGET = 200
ARENA_SF_MASS_KILL_BUDGET = 360
ARENA_PROTOCOLS = ("sf", "swim", "a2a")
ARENA_SCENARIOS = ("partition_heal", "mass_kill", "regional_burst")
ARENA_LOSSES = (0.0, 0.02, 0.1)
ARENA_GATED_LOSS = 0.02  # swim + sf gates apply at loss <= this


def check_arena(doc, path, errors):
    gates = doc.get("gates", {})
    for gate in ("matrix_complete", "deterministic", "swim_complete",
                 "swim_fp_under_budget", "sf_partition_recovered",
                 "sf_mass_kill_recovered"):
        if gates.get(gate) is not True:
            fail(errors, path, f"arena gate {gate} failed")
    budgets = doc.get("budgets", {})
    fp_budget = budgets.get("swim_fp_events")
    if not isinstance(fp_budget, int) or fp_budget <= 0:
        fail(errors, path, "missing budgets.swim_fp_events")
        fp_budget = None
    for key, expected in (("sf_partition_rounds", ARENA_SF_PARTITION_BUDGET),
                          ("sf_mass_kill_rounds", ARENA_SF_MASS_KILL_BUDGET)):
        if budgets.get(key) != expected:
            fail(errors, path,
                 f"budgets.{key} = {budgets.get(key)!r} (must equal the "
                 f"committed chaos budget {expected})")

    legs = doc.get("legs", [])
    by_cell = {}
    for leg in legs:
        by_cell[(leg.get("protocol"), leg.get("scenario"),
                 leg.get("loss"))] = leg
    for protocol in ARENA_PROTOCOLS:
        for scenario in ARENA_SCENARIOS:
            for loss in ARENA_LOSSES:
                if (protocol, scenario, loss) not in by_cell:
                    fail(errors, path,
                         f"matrix cell {protocol} x {scenario} x "
                         f"loss={loss} missing")
    for leg in legs:
        name = (f"{leg.get('protocol')} x {leg.get('scenario')} x "
                f"loss={leg.get('loss')}")
        if leg.get("deterministic") is not True:
            fail(errors, path,
                 f"{name}: not bit-identical across its two runs")
        if not leg.get("sent"):
            fail(errors, path, f"{name}: no traffic recorded")
        detection = leg.get("detection", {})
        gated = (isinstance(leg.get("loss"), (int, float))
                 and leg["loss"] <= ARENA_GATED_LOSS)
        if leg.get("protocol") == "swim" and \
           leg.get("scenario") == "mass_kill" and gated:
            if detection.get("completeness") != 1.0 or \
               not detection.get("events") or \
               detection.get("complete") != detection.get("events"):
                fail(errors, path,
                     f"{name}: completeness "
                     f"{detection.get('completeness')!r} "
                     f"({detection.get('complete')!r}/"
                     f"{detection.get('events')!r} events complete, "
                     "want every victim at every live observer)")
            fp = detection.get("fp_events")
            if fp_budget is not None and \
               (not isinstance(fp, int) or fp > fp_budget):
                fail(errors, path,
                     f"{name}: fp_events {fp!r} over budget {fp_budget}")
            if detection.get("fp_unresolved") != 0:
                fail(errors, path,
                     f"{name}: {detection.get('fp_unresolved')!r} "
                     "false-positive spell(s) never refuted")
        if leg.get("protocol") == "sf" and gated and \
           leg.get("scenario") in ("partition_heal", "mass_kill"):
            budget = (ARENA_SF_PARTITION_BUDGET
                      if leg["scenario"] == "partition_heal"
                      else ARENA_SF_MASS_KILL_BUDGET)
            label = ("split" if leg["scenario"] == "partition_heal"
                     else "mass-kill")
            episode = next((e for e in leg.get("episodes", [])
                            if e.get("label") == label), None)
            if episode is None:
                fail(errors, path, f"{name}: no '{label}' episode")
                continue
            if episode.get("degraded") is not True:
                fail(errors, path,
                     f"{name}: '{label}' never degraded "
                     "(fault had no effect)")
            if episode.get("recovered") is not True:
                fail(errors, path, f"{name}: '{label}' never recovered")
            rounds = episode.get("recovery_rounds")
            if not isinstance(rounds, int) or rounds > budget:
                fail(errors, path,
                     f"{name}: recovered in {rounds!r} rounds "
                     f"(budget {budget})")
            if leg.get("unrecovered") != 0:
                fail(errors, path,
                     f"{name}: {leg.get('unrecovered')!r} unrecovered "
                     "episode(s)")


CHECKS = {
    "scale_trajectory": check_scale,
    "analysis_pipeline": check_analysis,
    "telemetry": check_telemetry,
    "drift_oracle": check_drift,
    "chaos_faults": check_chaos,
    "forensics": check_forensics,
    "arena": check_arena,
}


def main(argv):
    root = argv[1] if len(argv) > 1 else "."
    paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        print(f"error: no BENCH_*.json baselines under {root}",
              file=sys.stderr)
        return 1
    errors = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            fail(errors, path, f"unreadable: {exc}")
            continue
        check_header(doc, path, errors)
        kind = doc.get("benchmark")
        checker = CHECKS.get(kind)
        if checker is None:
            fail(errors, path, f"unknown benchmark kind {kind!r}")
        else:
            checker(doc, path, errors)
        print(f"checked {os.path.basename(path)} ({kind})")
    if errors:
        print(f"\n{len(errors)} baseline check(s) failed:", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"all {len(paths)} baselines pass")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
