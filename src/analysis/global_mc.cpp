#include "analysis/global_mc.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace gossip::analysis {

namespace {

// Serializes a state to a canonical byte string for interning. Views are
// kept sorted, so the encoding is canonical by construction.
std::string encode(const GlobalState& state) {
  std::string key;
  key.reserve(state.size() * 8);
  for (const auto& view : state) {
    for (const NodeId id : view) {
      key.push_back(static_cast<char>(id & 0xFF));
      key.push_back(static_cast<char>((id >> 8) & 0xFF));
    }
    key.push_back('\x7F');
    key.push_back('\x7F');
  }
  return key;
}

// Removes one instance of `id` from a sorted multiset view.
void remove_instance(std::vector<NodeId>& view, NodeId id) {
  const auto it = std::lower_bound(view.begin(), view.end(), id);
  assert(it != view.end() && *it == id);
  view.erase(it);
}

// Inserts an id keeping the view sorted.
void insert_instance(std::vector<NodeId>& view, NodeId id) {
  view.insert(std::upper_bound(view.begin(), view.end(), id), id);
}

class GlobalMcBuilder {
 public:
  explicit GlobalMcBuilder(const GlobalMcParams& params) : p_(params) {
    validate();
  }

  GlobalMcResult build() {
    GlobalMcResult result;
    result.node_count = p_.initial.node_count();

    const GlobalState initial = state_from_graph(p_.initial);
    intern(initial);

    // Breadth-first exploration; transitions are recorded as states are
    // expanded.
    for (std::size_t s = 0; s < states_.size(); ++s) {
      if (states_.size() > p_.max_states) {
        result.exploration_complete = false;
        break;
      }
      expand(s);
    }
    result.exploration_complete =
        result.exploration_complete && states_.size() <= p_.max_states;

    chain_.finalize();
    result.states = states_;
    result.strongly_connected =
        result.exploration_complete && chain_.strongly_connected();
    result.doubly_stochastic =
        result.exploration_complete && chain_.doubly_stochastic();

    if (result.exploration_complete && p_.compute_stationary) {
      result.stationary = chain_.stationary({}, p_.stationary_tolerance,
                                            p_.max_stationary_iterations);
      finalize_statistics(result);
    }
    result.chain = std::move(chain_);
    return result;
  }

 private:
  void validate() const {
    p_.config.validate();
    if (p_.loss < 0.0 || p_.loss >= 1.0) {
      throw std::invalid_argument("loss must be in [0, 1)");
    }
    if (p_.initial.node_count() < 2) {
      throw std::invalid_argument("need at least 2 nodes");
    }
    for (NodeId u = 0; u < p_.initial.node_count(); ++u) {
      const auto d = p_.initial.out_degree(u);
      if (d % 2 != 0) {
        throw std::invalid_argument("initial outdegrees must be even");
      }
      if (d > p_.config.view_size) {
        throw std::invalid_argument("initial view exceeds capacity");
      }
    }
  }

  std::size_t intern(const GlobalState& state) {
    const std::string key = encode(state);
    const auto [it, inserted] = index_.try_emplace(key, states_.size());
    if (inserted) {
      states_.push_back(state);
      chain_.resize(states_.size());
    }
    return it->second;
  }

  // Enumerates all transformations out of state `s` with exact
  // probabilities; anything not emitted stays as an implicit self-loop.
  void expand(std::size_t s) {
    // NOTE: states_ may reallocate during intern(); copy the source state.
    const GlobalState state = states_[s];
    const std::size_t n = state.size();
    const double cap = static_cast<double>(p_.config.view_size);
    const double pair_slots = cap * (cap - 1.0);

    for (NodeId u = 0; u < n; ++u) {
      const auto& view = state[u];
      if (view.size() < 2) continue;  // only self-loop actions possible

      // Distinct id values in the view with multiplicities.
      std::map<NodeId, std::size_t> mult;
      for (const NodeId id : view) ++mult[id];

      const bool duplicate = view.size() <= p_.config.min_degree;

      for (const auto& [target, m_target] : mult) {
        for (const auto& [carried, m_carried] : mult) {
          const double favorable =
              static_cast<double>(m_target) *
              static_cast<double>(m_carried - (target == carried ? 1 : 0));
          if (favorable <= 0.0) continue;
          const double p_pick =
              favorable / pair_slots / static_cast<double>(n);

          // Sender-side step (identical whether the message is lost).
          GlobalState after_send = state;
          if (!duplicate) {
            remove_instance(after_send[u], target);
            remove_instance(after_send[u], carried);
          }

          if (p_.loss > 0.0) {
            emit(s, after_send, p_pick * p_.loss);
          }

          // Receive step at `target` (which may be u itself; the view used
          // is the post-send one — steps execute in order).
          GlobalState delivered = after_send;
          auto& receiver = delivered[target];
          if (receiver.size() + 2 <= p_.config.view_size) {
            insert_instance(receiver, u);
            insert_instance(receiver, carried);
          }
          // else: deletion — ids dropped, view unchanged.
          emit(s, delivered, p_pick * (1.0 - p_.loss));
        }
      }
    }
  }

  void emit(std::size_t from, const GlobalState& to_state, double prob) {
    if (prob <= 0.0) return;
    // §7.1: partitioned membership graphs are excluded from G; edges
    // leading to them become self-loops.
    if (!weakly_connected(to_state)) return;
    const std::size_t to = intern(to_state);
    chain_.add(from, to, prob);
  }

  // Weak connectivity of the membership graph (self-edges do not connect).
  [[nodiscard]] static bool weakly_connected(const GlobalState& state) {
    const std::size_t n = state.size();
    std::vector<std::size_t> parent(n);
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
    auto find = [&](std::size_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    std::size_t components = n;
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : state[u]) {
        const std::size_t a = find(u);
        const std::size_t b = find(v);
        if (a != b) {
          parent[a] = b;
          --components;
        }
      }
    }
    return components == 1;
  }

  [[nodiscard]] static bool is_simple_state(const GlobalState& state) {
    for (NodeId u = 0; u < state.size(); ++u) {
      const auto& view = state[u];
      for (std::size_t i = 0; i < view.size(); ++i) {
        if (view[i] == u) return false;                    // self-edge
        if (i > 0 && view[i] == view[i - 1]) return false; // parallel edge
      }
    }
    return true;
  }

  void finalize_statistics(GlobalMcResult& result) const {
    const auto& pi = result.stationary.distribution;
    const auto n_states = static_cast<double>(states_.size());
    for (const double x : pi) {
      result.uniformity_deviation =
          std::max(result.uniformity_deviation, std::abs(x * n_states - 1.0));
    }

    // Uniformity restricted to simple states (exact Lemma 7.5 regime).
    double simple_mass = 0.0;
    for (std::size_t s = 0; s < states_.size(); ++s) {
      if (is_simple_state(states_[s])) {
        ++result.simple_state_count;
        simple_mass += pi[s];
      }
    }
    if (result.simple_state_count > 0) {
      const double mean =
          simple_mass / static_cast<double>(result.simple_state_count);
      for (std::size_t s = 0; s < states_.size(); ++s) {
        if (!is_simple_state(states_[s])) continue;
        result.simple_state_uniformity_deviation =
            std::max(result.simple_state_uniformity_deviation,
                     std::abs(pi[s] / mean - 1.0));
      }
    }

    // P(v in u.lv) under pi, for all ordered pairs u != v.
    const std::size_t n = result.node_count;
    std::vector<double> presence(n * n, 0.0);
    for (std::size_t s = 0; s < states_.size(); ++s) {
      for (NodeId u = 0; u < n; ++u) {
        const auto& view = states_[s][u];
        NodeId previous = kNilNode;
        for (const NodeId v : view) {
          if (v == previous) continue;  // presence, not multiplicity
          previous = v;
          presence[u * n + v] += pi[s];
        }
      }
    }
    double lo = 2.0;
    double hi = -1.0;
    double sum = 0.0;
    std::size_t pairs = 0;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u == v) continue;  // self-edges exempt (Lemma 7.6)
        const double p = presence[u * n + v];
        lo = std::min(lo, p);
        hi = std::max(hi, p);
        sum += p;
        ++pairs;
      }
    }
    const double mean = sum / static_cast<double>(pairs);
    result.edge_presence_spread = mean > 0.0 ? (hi - lo) / mean : 0.0;
  }

  GlobalMcParams p_;
  std::vector<GlobalState> states_;
  std::unordered_map<std::string, std::size_t> index_;
  markov::SparseChain chain_;
};

}  // namespace

GlobalMcResult build_global_mc(const GlobalMcParams& params) {
  return GlobalMcBuilder(params).build();
}

GlobalState state_from_graph(const Digraph& graph) {
  GlobalState state(graph.node_count());
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    state[u] = graph.out_neighbors(u);
    std::sort(state[u].begin(), state[u].end());
  }
  return state;
}

Digraph graph_from_state(const GlobalState& state) {
  Digraph g(state.size());
  for (NodeId u = 0; u < state.size(); ++u) {
    for (const NodeId v : state[u]) {
      g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace gossip::analysis
