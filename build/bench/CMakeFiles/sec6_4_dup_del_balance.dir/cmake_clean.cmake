file(REMOVE_RECURSE
  "CMakeFiles/sec6_4_dup_del_balance.dir/sec6_4_dup_del_balance.cpp.o"
  "CMakeFiles/sec6_4_dup_del_balance.dir/sec6_4_dup_del_balance.cpp.o.d"
  "sec6_4_dup_del_balance"
  "sec6_4_dup_del_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_4_dup_del_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
