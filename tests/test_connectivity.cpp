#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "graph/graph_gen.hpp"

namespace gossip {
namespace {

TEST(Connectivity, SingleNodeIsConnected) {
  Digraph g(1);
  EXPECT_TRUE(is_weakly_connected(g));
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Connectivity, TwoIsolatedNodesNotConnected) {
  Digraph g(2);
  EXPECT_FALSE(is_weakly_connected(g));
}

TEST(Connectivity, DirectedChainIsWeaklyNotStronglyConnected) {
  const Digraph g = line_graph(5);
  EXPECT_TRUE(is_weakly_connected(g));
  EXPECT_FALSE(is_strongly_connected(g));
  EXPECT_EQ(strong_component_count(g), 5u);
}

TEST(Connectivity, DirectedCycleIsStronglyConnected) {
  Digraph g(4);
  for (NodeId u = 0; u < 4; ++u) g.add_edge(u, (u + 1) % 4);
  EXPECT_TRUE(is_strongly_connected(g));
  EXPECT_EQ(strong_component_count(g), 1u);
}

TEST(Connectivity, WeakComponents) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto sizes = weak_component_sizes(g);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 1u);
}

TEST(Connectivity, LiveSubsetConnectivity) {
  // 0 -> 1 -> 2 with node 1 dead: live {0, 2} are disconnected.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<bool> live = {true, false, true};
  EXPECT_FALSE(is_weakly_connected_among(g, live));
  // With an edge 0 -> 2 it becomes connected among the living.
  g.add_edge(0, 2);
  EXPECT_TRUE(is_weakly_connected_among(g, live));
}

TEST(Connectivity, LiveSubsetTrivialCases) {
  Digraph g(3);
  EXPECT_TRUE(is_weakly_connected_among(g, {false, false, false}));
  EXPECT_TRUE(is_weakly_connected_among(g, {false, true, false}));
}

TEST(Connectivity, DiameterOfChain) {
  const Digraph g = line_graph(10);
  EXPECT_EQ(estimate_undirected_diameter(g, 10), 9u);
}

TEST(Connectivity, DiameterOfDisconnectedIsMax) {
  Digraph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(estimate_undirected_diameter(g, 3),
            std::numeric_limits<std::size_t>::max());
}

TEST(Connectivity, StarGraphWeaklyConnected) {
  const Digraph g = star_graph(50);
  EXPECT_TRUE(is_weakly_connected(g));
  EXPECT_LE(estimate_undirected_diameter(g, 50), 2u);
}

TEST(Connectivity, RandomOutRegularIsConnectedWhp) {
  Rng rng(3);
  const Digraph g = random_out_regular(500, 5, rng);
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(Connectivity, SelfLoopsDoNotConnect) {
  Digraph g(2);
  g.add_edge(0, 0);
  g.add_edge(1, 1);
  EXPECT_FALSE(is_weakly_connected(g));
}

}  // namespace
}  // namespace gossip
