#include "markov/stationary.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gossip::markov {
namespace {

// Two-state chain with P(0->1) = a, P(1->0) = b has stationary
// (b, a) / (a + b).
Matrix two_state(double a, double b) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0 - a;
  m.at(0, 1) = a;
  m.at(1, 0) = b;
  m.at(1, 1) = 1.0 - b;
  return m;
}

TEST(Stationary, TwoStateAnalytic) {
  const Matrix p = two_state(0.3, 0.1);
  const auto result = stationary_distribution(p);
  EXPECT_TRUE(result.converged);
  ASSERT_EQ(result.distribution.size(), 2u);
  EXPECT_NEAR(result.distribution[0], 0.25, 1e-9);
  EXPECT_NEAR(result.distribution[1], 0.75, 1e-9);
  EXPECT_TRUE(is_stationary(p, result.distribution, 1e-9));
}

TEST(Stationary, DoublyStochasticGivesUniform) {
  // Symmetric random-walk-with-lazy-step on a 4-cycle.
  Matrix p(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    p.at(i, i) = 0.5;
    p.at(i, (i + 1) % 4) = 0.25;
    p.at(i, (i + 3) % 4) = 0.25;
  }
  const auto result = stationary_distribution(p);
  EXPECT_TRUE(result.converged);
  for (const double x : result.distribution) {
    EXPECT_NEAR(x, 0.25, 1e-9);
  }
}

TEST(Stationary, RespectsInitialDistributionArgument) {
  const Matrix p = two_state(0.5, 0.5);
  StationaryOptions opts;
  opts.initial = {1.0, 0.0};
  const auto result = stationary_distribution(p, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.distribution[0], 0.5, 1e-9);
}

TEST(Stationary, WrongSizeInitialThrows) {
  const Matrix p = two_state(0.5, 0.5);
  StationaryOptions opts;
  opts.initial = {1.0};
  EXPECT_THROW(stationary_distribution(p, opts), std::invalid_argument);
}

TEST(Stationary, EmptyMatrixThrows) {
  Matrix p;
  EXPECT_THROW(stationary_distribution(p), std::invalid_argument);
}

TEST(Stationary, IterationLimitReported) {
  const Matrix p = two_state(0.001, 0.001);
  StationaryOptions opts;
  opts.max_iterations = 3;
  opts.initial = {1.0, 0.0};
  const auto result = stationary_distribution(p, opts);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3u);
  EXPECT_GT(result.residual, 0.0);
}

TEST(Stationary, IsStationaryRejectsWrongVector) {
  const Matrix p = two_state(0.3, 0.1);
  EXPECT_FALSE(is_stationary(p, {0.5, 0.5}, 1e-9));
  EXPECT_FALSE(is_stationary(p, {1.0}, 1e-9));
}

TEST(Stationary, TvTrajectoryDecreasesToZero) {
  const Matrix p = two_state(0.4, 0.2);
  const auto pi = stationary_distribution(p).distribution;
  const auto tv = tv_trajectory(p, {1.0, 0.0}, pi, 50);
  ASSERT_EQ(tv.size(), 51u);
  EXPECT_GT(tv.front(), 0.2);
  EXPECT_LT(tv.back(), 1e-6);
  for (std::size_t t = 1; t < tv.size(); ++t) {
    EXPECT_LE(tv[t], tv[t - 1] + 1e-12);
  }
}

}  // namespace
}  // namespace gossip::markov
