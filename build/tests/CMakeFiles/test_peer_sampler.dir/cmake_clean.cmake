file(REMOVE_RECURSE
  "CMakeFiles/test_peer_sampler.dir/test_peer_sampler.cpp.o"
  "CMakeFiles/test_peer_sampler.dir/test_peer_sampler.cpp.o.d"
  "test_peer_sampler"
  "test_peer_sampler.pdb"
  "test_peer_sampler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peer_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
