#include "analysis/temporal.hpp"

#include <cmath>
#include <stdexcept>

namespace gossip::analysis {

namespace {

void validate(const TemporalParams& p) {
  if (p.node_count < 2) throw std::invalid_argument("need n >= 2");
  if (p.view_size < 2) throw std::invalid_argument("need s >= 2");
  if (p.expected_out <= 1.0) throw std::invalid_argument("need dE > 1");
  if (p.alpha <= 0.0 || p.alpha > 1.0) {
    throw std::invalid_argument("alpha must be in (0, 1]");
  }
  if (p.epsilon <= 0.0 || p.epsilon >= 1.0) {
    throw std::invalid_argument("epsilon must be in (0, 1)");
  }
}

}  // namespace

double expected_conductance_bound(const TemporalParams& p) {
  validate(p);
  const double s = static_cast<double>(p.view_size);
  return p.expected_out * (p.expected_out - 1.0) * p.alpha /
         (2.0 * s * (s - 1.0));
}

double temporal_independence_bound(const TemporalParams& p) {
  validate(p);
  const double s = static_cast<double>(p.view_size);
  const double n = static_cast<double>(p.node_count);
  const double de = p.expected_out;
  const double front = 16.0 * s * s * (s - 1.0) * (s - 1.0) /
                       (de * de * (de - 1.0) * (de - 1.0) * p.alpha * p.alpha);
  return front * (n * s * std::log(n) + std::log(4.0 / p.epsilon));
}

double temporal_independence_actions_per_node(const TemporalParams& p) {
  return temporal_independence_bound(p) / static_cast<double>(p.node_count);
}

}  // namespace gossip::analysis
