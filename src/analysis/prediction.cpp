#include "analysis/prediction.hpp"

#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "analysis/independence.hpp"
#include "analysis/mean_field.hpp"

namespace gossip::analysis {
namespace {

// Model-defining key: everything that changes the stationary answer.
// Doubles are compared by bit pattern so the key is a total order without
// epsilon ambiguity (callers pass exact literals, not computed noise).
using CacheKey = std::tuple<std::size_t,     // view_size
                            std::size_t,     // min_degree
                            std::uint64_t,   // loss bits
                            std::size_t,     // sum_degree_cap
                            std::uint64_t,   // fixed_sum_degree (+1, 0=none)
                            std::uint64_t,   // delta bits
                            int>;            // source

struct PredictionCache {
  std::mutex mutex;
  std::map<CacheKey, obs::TheoryPrediction> entries;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

PredictionCache& cache() {
  static PredictionCache instance;
  return instance;
}

CacheKey make_key(const DegreeMcParams& params, double delta,
                  PredictionSource source) {
  const std::uint64_t fixed =
      params.fixed_sum_degree
          ? static_cast<std::uint64_t>(*params.fixed_sum_degree) + 1
          : 0;
  return {params.view_size,
          params.min_degree,
          std::bit_cast<std::uint64_t>(params.loss),
          params.sum_degree_cap,
          fixed,
          std::bit_cast<std::uint64_t>(delta),
          static_cast<int>(source)};
}

obs::TheoryPrediction solve_prediction(const DegreeMcParams& params,
                                       double delta,
                                       PredictionSource source) {
  obs::TheoryPrediction pred;
  pred.loss = params.loss;
  pred.delta = delta;
  pred.view_size = params.view_size;
  pred.min_degree = params.min_degree;
  if (source == PredictionSource::kMeanField) {
    MeanFieldResult mf = solve_mean_field(mean_field_params(params));
    pred.out_pmf = std::move(mf.out_pmf);
    pred.in_pmf = std::move(mf.in_pmf);
    pred.expected_out = mf.expected_out;
    pred.expected_in = mf.expected_in;
    pred.duplication_probability = mf.duplication_probability;
    pred.deletion_probability = mf.deletion_probability;
  } else {
    DegreeMcResult mc = solve_degree_mc(params);
    pred.out_pmf = std::move(mc.out_pmf);
    pred.in_pmf = std::move(mc.in_pmf);
    pred.expected_out = mc.expected_out;
    pred.expected_in = mc.expected_in;
    pred.duplication_probability = mc.duplication_probability;
    pred.deletion_probability = mc.deletion_probability;
  }
  pred.alpha_lower_bound = independence_lower_bound_simple(params.loss, delta);
  return pred;
}

}  // namespace

obs::TheoryPrediction make_theory_prediction(const DegreeMcParams& params,
                                             double delta,
                                             PredictionSource source) {
  const CacheKey key = make_key(params, delta, source);
  auto& c = cache();
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    if (const auto it = c.entries.find(key); it != c.entries.end()) {
      ++c.hits;
      return it->second;
    }
  }
  // Solve outside the lock: concurrent misses on the same key race to
  // insert the identical (deterministic) answer, which is harmless and
  // keeps slow exact solves from serializing unrelated lookups.
  obs::TheoryPrediction pred = solve_prediction(params, delta, source);
  std::lock_guard<std::mutex> lock(c.mutex);
  const auto [it, inserted] = c.entries.emplace(key, std::move(pred));
  ++c.misses;
  return it->second;
}

PredictionCacheStats prediction_cache_stats() {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  return {c.hits, c.misses, c.entries.size()};
}

void clear_prediction_cache() {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.entries.clear();
  c.hits = 0;
  c.misses = 0;
}

}  // namespace gossip::analysis
