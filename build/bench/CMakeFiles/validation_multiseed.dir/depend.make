# Empty dependencies file for validation_multiseed.
# This may be replaced when dependencies are built.
