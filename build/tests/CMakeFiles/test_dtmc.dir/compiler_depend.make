# Empty compiler generated dependencies file for test_dtmc.
# This may be replaced when dependencies are built.
