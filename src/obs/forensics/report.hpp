// IncidentReport rendering + snapshot-stream diffing.
//
// Two output formats over one incident list:
//
//   JSON      deterministic machine format: fixed key order, %.6g number
//             formatting, no timestamps and no environment stamps — the
//             same archive renders to the byte-identical report (gated in
//             BENCH_forensics.json).
//   markdown  the human post-mortem: run summary, per-incident sections
//             with cause, confidence, and the evidence timeline.
//
// SnapshotDiff compares two runs' metric surfaces (final counter and gauge
// values) for regression triage; when present it is appended to both
// renderings.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/forensics/attribution.hpp"
#include "obs/forensics/run_archive.hpp"

namespace gossip::obs::forensics {

struct SnapshotDiffEntry {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  // (current - baseline) / max(|baseline|, 1); counters and gauges here
  // are counts, so the unit floor keeps tiny baselines from exploding.
  double relative = 0.0;
};

struct SnapshotDiff {
  std::vector<SnapshotDiffEntry> counters;  // final cumulative values
  std::vector<SnapshotDiffEntry> gauges;    // values at the last snapshot
  double threshold = 0.10;
  std::size_t regressions = 0;  // entries with |relative| > threshold

  // Union of both surfaces' metrics, current's name order first, then
  // baseline-only names.
  [[nodiscard]] static SnapshotDiff compare(const SnapshotSurface& baseline,
                                            const SnapshotSurface& current,
                                            double threshold = 0.10);
};

// `diff` may be null. Both renderers are pure functions of their inputs.
void write_report_json(std::ostream& out, const RunArchive& archive,
                       const std::vector<Incident>& incidents,
                       const SnapshotDiff* diff);
void write_report_markdown(std::ostream& out, const RunArchive& archive,
                           const std::vector<Incident>& incidents,
                           const SnapshotDiff* diff);

}  // namespace gossip::obs::forensics
