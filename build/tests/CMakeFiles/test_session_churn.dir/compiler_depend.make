# Empty compiler generated dependencies file for test_session_churn.
# This may be replaced when dependencies are built.
