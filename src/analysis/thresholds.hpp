// Degree-threshold selection (§6.3).
//
// Given a target expected outdegree d_hat (no loss) and a tolerance δ on
// the duplication/deletion probabilities, choose dL and s using the
// analytical no-loss distribution with dm = 3*d_hat (Lemma 6.3):
//
//   dL = max even d' <= d_hat with Pr(d <= d') <= δ,
//   s  = min even d' >= d_hat with Pr(d >= d') <= δ.
//
// The paper's running example: d_hat = 30, δ = 0.01 → dL = 18, s = 40.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gossip::analysis {

struct ThresholdSelection {
  std::size_t min_degree = 0;  // dL
  std::size_t view_size = 0;   // s
  // Achieved probabilities at the chosen thresholds (both <= delta):
  double prob_at_or_below_min = 0.0;  // Pr(d <= dL)
  double prob_at_or_above_max = 0.0;  // Pr(d >= s)
  // Expected outdegree of the underlying analytical distribution (= dm/3).
  double expected_out = 0.0;
};

// `target_degree` (d_hat) must be even and positive; `delta` in (0, 1/2).
// Throws std::invalid_argument otherwise, and std::runtime_error if no
// feasible thresholds exist (delta too small).
[[nodiscard]] ThresholdSelection select_thresholds(std::size_t target_degree,
                                                   double delta);

// One point of the Lemma 6.7 check: at thresholds chosen for tolerance δ
// with no loss, the steady-state duplication probability under loss ℓ
// should stay within [ℓ, ℓ + δ] (and Lemma 6.6 forces dup = ℓ + del).
struct ThresholdLossValidation {
  double loss = 0.0;
  double duplication_probability = 0.0;
  double deletion_probability = 0.0;
  // |dup - (ℓ + del)|: how tightly the Lemma 6.6 balance holds numerically.
  double balance_gap = 0.0;
  bool within_bound = false;  // dup in [ℓ, ℓ + δ]
};

// Validates a selection against the full §6.2 degree MC across loss rates,
// using one warm-started sweep (solve_degree_mc_sweep) over `losses`.
// Requires ℓ + δ < 1 for every loss. This is the numerical closure of
// §6.3: the thresholds are chosen from the no-loss analytical
// distribution, then certified against the lossy chain.
[[nodiscard]] std::vector<ThresholdLossValidation>
validate_thresholds_under_loss(const ThresholdSelection& selection,
                               double delta, std::span<const double> losses);

}  // namespace gossip::analysis
