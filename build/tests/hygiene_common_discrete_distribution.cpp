#include "common/discrete_distribution.hpp"
#include "common/discrete_distribution.hpp"
