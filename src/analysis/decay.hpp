// Degree dynamics of joining and leaving nodes (§6.5).
//
// Lemma 6.9/6.10: an id instance present at round t0 survives to round
// t0 + i with probability at most (1 - (1-ℓ-δ) dL / s²)^i — the Fig 6.4
// curves. Lemmas 6.11-6.13 and Corollary 6.14 bound how fast a joiner
// becomes represented in other views.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gossip::analysis {

struct DecayParams {
  std::size_t view_size = 40;   // s
  std::size_t min_degree = 18;  // dL
  double loss = 0.0;            // ℓ
  double delta = 0.01;          // δ, duplication tolerance from §6.3
};

// Per-round survival factor 1 - (1-ℓ-δ) dL / s² (Lemma 6.9).
[[nodiscard]] double survival_factor(const DecayParams& params);

// Upper bound on P(an id instance of a node that left at round 0 is still
// in some view at round r), for r = 0..rounds (Lemma 6.10; Fig 6.4).
[[nodiscard]] std::vector<double> leave_survival_bound(
    const DecayParams& params, std::size_t rounds);

// Smallest round r with survival bound < threshold. The paper's headline:
// with dL=18, s=40, δ=0.01, fewer than 50% survive after ~70 rounds.
[[nodiscard]] std::size_t rounds_until_survival_below(
    const DecayParams& params, double threshold);

// Lower bound on a veteran node's id-creation rate per round, as a multiple
// of the expected indegree Din (Lemma 6.11): (1-ℓ-δ) dL / s².
[[nodiscard]] double veteran_creation_rate(const DecayParams& params);

// A joiner's creation rate is at least (dL/s)² times the veteran rate
// (Lemma 6.12).
[[nodiscard]] double joiner_creation_ratio(const DecayParams& params);

// Rounds within which a joiner is expected to create (dL/s)² * Din id
// instances (Lemma 6.13): s² / ((1-ℓ-δ) dL). For s/dL = 2 and ℓ+δ << 1
// this is ≈ 2s rounds and the instance count is Din/4 (Corollary 6.14).
[[nodiscard]] double joiner_integration_rounds(const DecayParams& params);

// Expected id instances created by the joiner within the integration
// window, as a fraction of Din (Lemma 6.13): (dL/s)².
[[nodiscard]] double joiner_instances_fraction(const DecayParams& params);

// Summary of the Lemma 6.9/6.10 decay at one loss rate, for sweeping ℓ
// across the Fig 6.4 family of curves.
struct DecaySweepPoint {
  double loss = 0.0;
  double survival_factor = 1.0;          // per-round factor (Lemma 6.9)
  std::size_t rounds_until_below = 0;    // first r with bound < threshold
  double joiner_integration_rounds = 0;  // Lemma 6.13 window at this ℓ
};

// Evaluates the decay/integration bounds at each loss in `losses`, keeping
// the remaining parameters of `params` fixed (`params.loss` is ignored).
// `threshold` is passed to rounds_until_survival_below, e.g. 0.5 for the
// paper's half-life headline.
[[nodiscard]] std::vector<DecaySweepPoint> decay_sweep(
    DecayParams params, std::span<const double> losses, double threshold);

}  // namespace gossip::analysis
