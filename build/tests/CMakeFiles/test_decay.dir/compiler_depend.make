# Empty compiler generated dependencies file for test_decay.
# This may be replaced when dependencies are built.
