// Bridge from the analysis solvers to the obs-layer TheoryPrediction: the
// obs library cannot link analysis (the dependency points the other way),
// so the oracle's input is produced here — one §6.2 stationary solve plus
// the Lemma 7.9 closed-form bound, packed into plain data.
//
// Two solver backends produce the same prediction contract:
//  * kExactMc — the full degree-MC fixed point (analysis/degree_mc);
//  * kMeanField — the mean-field fast path (analysis/mean_field), within
//    the contract tolerances (degree TVD <= 5e-3, dup/del rates <= 2%)
//    at two orders of magnitude less wall-clock.
//
// Solved predictions are memoized in a process-wide cache keyed on the
// model-defining parameters (box, loss, truncation, fixed-sum line, delta,
// source), so repeated requests for the same point — the oracle setup in
// bench_report, sfgossip, and the retuning controller's re-solves — pay
// for the stationary solve once.
#pragma once

#include <cstddef>

#include "analysis/degree_mc.hpp"
#include "obs/oracle/prediction.hpp"

namespace gossip::analysis {

enum class PredictionSource {
  kExactMc,    // solve_degree_mc: reference answer, hundreds of ms
  kMeanField,  // solve_mean_field: contract-accurate, ~ms
};

// Solves the stationary degree model at `params` with the chosen backend
// and packages the marginals, action-outcome probabilities, and the
// α ≥ 1 − 2(ℓ+δ) bound for the TheoryOracle. Results are served from the
// process-wide cache when the same (params, delta, source) point was
// solved before; solver tuning fields (tolerances, acceleration) are not
// part of the key. Propagates the solver's exceptions on bad parameters —
// in particular kMeanField rejects fixed_sum_degree (the §6.1 line chain
// does not factorize).
[[nodiscard]] obs::TheoryPrediction make_theory_prediction(
    const DegreeMcParams& params, double delta = 0.01,
    PredictionSource source = PredictionSource::kExactMc);

// Cache introspection for benchmarks and tests. Counters are cumulative
// for the process; `size` is the current number of cached predictions.
struct PredictionCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t size = 0;
};
[[nodiscard]] PredictionCacheStats prediction_cache_stats();

// Drops all cached predictions and resets the hit/miss counters.
void clear_prediction_cache();

}  // namespace gossip::analysis
