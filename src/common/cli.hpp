// Minimal command-line parsing for the tools and benches.
//
// Supports `--name value`, `--name=value`, bare boolean `--name`, and
// positional arguments. Typed getters validate and throw CliError with a
// message suitable for printing next to usage text.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace gossip {

class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ArgParser {
 public:
  // Parses tokens (argv[1..]); `argv[0]`-style program names should not be
  // included. Throws CliError on malformed input (e.g. "--=x").
  explicit ArgParser(std::vector<std::string> tokens);
  ArgParser(int argc, const char* const* argv);

  // True if --name was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  // String option; `fallback` when absent. Throws CliError if the flag was
  // given without a value.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;

  // Typed options with range validation (inclusive bounds).
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback,
                                     std::int64_t min_value,
                                     std::int64_t max_value) const;
  [[nodiscard]] std::size_t get_size(const std::string& name,
                                     std::size_t fallback,
                                     std::size_t min_value,
                                     std::size_t max_value) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback,
                                  double min_value, double max_value) const;

  // Boolean flag: present (with no value or "true"/"1") => true;
  // "false"/"0" => false.
  [[nodiscard]] bool get_flag(const std::string& name,
                              bool fallback = false) const;

  // Positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  // Names of all --options seen; lets callers reject unknown flags.
  [[nodiscard]] std::vector<std::string> option_names() const;

 private:
  void parse(std::vector<std::string> tokens);

  // Option name -> value; flags without values store kNoValue.
  static constexpr const char* kNoValue = "\x01";
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace gossip
