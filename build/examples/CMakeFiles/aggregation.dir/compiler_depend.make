# Empty compiler generated dependencies file for aggregation.
# This may be replaced when dependencies are built.
