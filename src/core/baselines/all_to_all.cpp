#include "core/baselines/all_to_all.hpp"

#include <algorithm>

namespace gossip {

AllToAll::AllToAll(NodeId self, const AllToAllConfig& config)
    : PeerProtocol(self, config.view_size), config_(config) {}

void AllToAll::install_view(const std::vector<NodeId>& ids) {
  PeerProtocol::install_view(ids);
  table_.clear();
  present_.clear();
  ids_.clear();
  for (const NodeId id : ids) {
    if (id == self() || find_member(id) != nullptr) continue;
    add_member(id);
  }
}

AllToAll::Member* AllToAll::find_member(NodeId id) {
  if (id >= present_.size() || present_[id] == 0) return nullptr;
  return &table_[id];
}

AllToAll::Member& AllToAll::add_member(NodeId id) {
  if (id >= present_.size()) {
    present_.resize(id + 1, 0);
    table_.resize(id + 1);
  }
  present_[id] = 1;
  ids_.push_back(id);
  Member& m = table_[id];
  m.counter = 0;
  m.last_advance = round_;  // grace: the timer arms from first sight
  m.status = Status::kAlive;
  ++mutable_metrics().ids_accepted;
  return m;
}

void AllToAll::on_round(std::uint64_t round, Rng& rng, Transport& transport) {
  (void)rng;  // fully deterministic: no draws
  round_ = round;
  ++mutable_metrics().actions_initiated;

  // Timeout sweep first, so a heartbeat sent this round cannot mask a
  // member that was already overdue.
  for (const NodeId id : ids_) {
    Member& m = table_[id];
    if (m.status == Status::kAlive &&
        round - m.last_advance >= config_.fail_timeout) {
      m.status = Status::kFaulty;
      ++mutable_metrics().deletions;
    }
    if (m.status == Status::kFaulty &&
        round - m.last_advance >=
            config_.fail_timeout + config_.remove_timeout) {
      m.status = Status::kRemoved;
    }
  }

  if (round % config_.heartbeat_period != 0) return;
  ++counter_;
  // Fan out in table order (ascending id for the initial membership):
  // deterministic with zero RNG.
  for (const NodeId id : ids_) {
    const Member& m = table_[id];
    if (m.status == Status::kRemoved) continue;
    Message beat;
    beat.from = self();
    beat.to = id;
    beat.kind = MessageKind::kHeartbeat;
    beat.subject = self();
    beat.stamp = counter_;
    transport.send(std::move(beat));
    ++mutable_metrics().messages_sent;
  }
}

void AllToAll::on_initiate(Rng& rng, Transport& transport) {
  on_round(round_ + 1, rng, transport);
}

void AllToAll::on_message(const Message& message, Rng& rng,
                          Transport& transport) {
  (void)rng;
  (void)transport;
  ++mutable_metrics().messages_received;
  if (message.kind != MessageKind::kHeartbeat) return;
  Member* m = find_member(message.from);
  if (m == nullptr) m = &add_member(message.from);  // join path
  if (message.stamp > m->counter) {
    m->counter = message.stamp;
    m->last_advance = round_;
    m->status = Status::kAlive;  // resurrection on resumed heartbeats
  }
}

MemberVerdict AllToAll::member_verdict(NodeId id) const {
  if (id == self()) return MemberVerdict::kAlive;
  if (id >= present_.size() || present_[id] == 0) {
    return MemberVerdict::kUnknown;
  }
  return table_[id].status == Status::kAlive ? MemberVerdict::kAlive
                                             : MemberVerdict::kFaulty;
}

std::uint64_t AllToAll::state_digest() const {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(counter_);
  for (NodeId id = 0; id < present_.size(); ++id) {
    if (present_[id] == 0) continue;
    const Member& m = table_[id];
    mix(id);
    mix(m.counter);
    mix(m.last_advance);
    mix(static_cast<std::uint64_t>(m.status));
  }
  return h;
}

const AllToAll::Member* AllToAll::member(NodeId id) const {
  if (id >= present_.size() || present_[id] == 0) return nullptr;
  return &table_[id];
}

}  // namespace gossip
