// Analytical degree distributions under no loss (§6.1, eq. 6.1).
//
// With atomic actions (no loss), dL = 0, and all views initialized so that
// the sum degree ds(u) = d(u) + 2*din(u) equals a constant dm, the protocol
// preserves ds(u) (Lemma 6.2) and is equally likely to reach every
// membership graph satisfying the invariant (Lemma 7.5). Counting the
// assignments of dm potential neighbors gives, for even outdegree d*:
//
//   a(d*) = C(dm, d*) * C(dm - d*, (dm - d*)/2)
//   Pr(d(u) = d*) = Pr(din(u) = (dm - d*)/2) ≈ a(d*) / Σ_{d' even} a(d').
//
// Computed in the log domain: dm up to several hundred is exact to double
// precision.
#pragma once

#include <cstddef>
#include <vector>

namespace gossip::analysis {

// Pr(outdegree = d) for d = 0..dm (zero at odd d). `sum_degree` (dm) must be
// even and positive.
[[nodiscard]] std::vector<double> analytical_outdegree_pmf(
    std::size_t sum_degree);

// Pr(indegree = i) for i = 0..dm/2; the indegree of a node with outdegree d
// is (dm - d)/2.
[[nodiscard]] std::vector<double> analytical_indegree_pmf(
    std::size_t sum_degree);

// The average node in/outdegree implied by Lemma 6.3: dm / 3.
[[nodiscard]] double analytical_mean_degree(std::size_t sum_degree);

}  // namespace gossip::analysis
