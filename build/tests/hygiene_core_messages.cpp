#include "core/messages.hpp"
#include "core/messages.hpp"
