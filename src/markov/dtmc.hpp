// Generic discrete-time Markov chain builder with state interning.
//
// States are identified by opaque 64-bit keys (callers encode their state
// tuples, e.g. (outdegree, indegree) for the degree MC of §6.2). Transitions
// are accumulated as weights; build() normalizes rows, assigning any
// missing mass to a self-loop so the result is exactly row-stochastic —
// matching the paper's convention of replacing excluded transitions with
// self-loops (§6.2, §7.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "markov/matrix.hpp"
#include "markov/sparse_chain.hpp"

namespace gossip::markov {

class DtmcBuilder {
 public:
  // Interns a state key; returns its dense index.
  std::size_t state_index(std::uint64_t key);

  // True if the key has been interned.
  [[nodiscard]] bool has_state(std::uint64_t key) const;

  // Adds `weight` to the transition from -> to (both interned on demand).
  // Weights must be non-negative.
  void add_transition(std::uint64_t from, std::uint64_t to, double weight);

  [[nodiscard]] std::size_t state_count() const { return keys_.size(); }
  [[nodiscard]] const std::vector<std::uint64_t>& keys() const { return keys_; }

  struct Chain {
    Matrix transition;                // row-stochastic
    std::vector<std::uint64_t> keys;  // dense index -> state key
    std::unordered_map<std::uint64_t, std::size_t> index;  // key -> index
  };

  // Produces the row-stochastic chain. Rows whose accumulated weight exceeds
  // 1 + tolerance throw; remaining mass up to 1 becomes a self-loop.
  [[nodiscard]] Chain build(double tolerance = 1e-9) const;

  struct SparseBuild {
    SparseChain chain;                // finalized; self-loop mass implicit
    std::vector<std::uint64_t> keys;  // dense index -> state key
    std::unordered_map<std::uint64_t, std::size_t> index;  // key -> index
  };

  // Same chain in sparse (CSR) form, skipping the dense n×n materialization
  // — the memory-sane path for large interned state spaces.
  [[nodiscard]] SparseBuild build_sparse(double tolerance = 1e-9) const;

 private:
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::vector<std::uint64_t> keys_;
  // Sparse accumulation: per source state, map of target -> weight.
  std::vector<std::unordered_map<std::size_t, double>> rows_;
};

// Helpers for packing small tuples into state keys.
[[nodiscard]] constexpr std::uint64_t pack_pair(std::uint32_t a,
                                                std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
[[nodiscard]] constexpr std::uint32_t unpack_first(std::uint64_t key) {
  return static_cast<std::uint32_t>(key >> 32);
}
[[nodiscard]] constexpr std::uint32_t unpack_second(std::uint64_t key) {
  return static_cast<std::uint32_t>(key & 0xFFFFFFFFULL);
}

}  // namespace gossip::markov
