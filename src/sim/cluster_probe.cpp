#include "sim/cluster_probe.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace gossip::sim {

namespace {

obs::DegreeSummary summarize(const std::vector<std::uint32_t>& degrees) {
  obs::DegreeSummary s;
  if (degrees.empty()) return s;
  s.min = UINT32_MAX;
  double sum = 0.0;
  for (const std::uint32_t d : degrees) {
    sum += d;
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
  }
  s.mean = sum / static_cast<double>(degrees.size());
  double sq = 0.0;
  for (const std::uint32_t d : degrees) {
    const double c = static_cast<double>(d) - s.mean;
    sq += c * c;
  }
  s.sd = degrees.size() > 1
             ? std::sqrt(sq / static_cast<double>(degrees.size() - 1))
             : 0.0;
  return s;
}

}  // namespace

obs::FlatClusterProbe probe_cluster(const Cluster& cluster,
                                    std::vector<std::uint32_t>* occurrences) {
  const std::size_t n = cluster.size();
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::uint32_t> out_live;
  out_live.reserve(cluster.live_count());
  obs::FlatClusterProbe probe;
  std::size_t occupied = 0;
  std::size_t capacity = 0;
  std::size_t max_capacity = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (!cluster.live(u)) continue;
    const LocalView& view = cluster.node(u).view();
    const std::size_t d = view.degree();
    out_live.push_back(static_cast<std::uint32_t>(d));
    occupied += d;
    capacity += view.capacity();
    max_capacity = std::max(max_capacity, view.capacity());
    if (probe.outdegree_hist.size() < max_capacity + 1) {
      probe.outdegree_hist.resize(max_capacity + 1, 0);
    }
    ++probe.outdegree_hist[d];  // d <= capacity <= max_capacity
    for (std::size_t i = 0; i < view.capacity(); ++i) {
      if (!view.slot_empty(i)) {
        ++indegree[view.entry(i).id];
        if (view.entry(i).dependent) ++probe.dependent_entries;
      }
    }
  }
  probe.indegree_hist.assign(2 * max_capacity + 1, 0);
  std::vector<std::uint32_t> in_live;
  in_live.reserve(out_live.size());
  for (NodeId u = 0; u < n; ++u) {
    if (cluster.live(u)) {
      in_live.push_back(indegree[u]);
      ++probe.indegree_hist[std::min<std::size_t>(indegree[u],
                                                  2 * max_capacity)];
    }
  }
  if (occurrences != nullptr) {
    occurrences->assign(n, UINT32_MAX);
    for (NodeId u = 0; u < n; ++u) {
      if (cluster.live(u)) (*occurrences)[u] = indegree[u];
    }
  }
  probe.live_nodes = out_live.size();
  probe.outdegree = summarize(out_live);
  probe.indegree = summarize(in_live);
  probe.occupied_slots = occupied;
  probe.empty_slot_fraction =
      capacity == 0 ? 0.0
                    : 1.0 - static_cast<double>(occupied) /
                                static_cast<double>(capacity);
  return probe;
}

obs::CumulativeCounters cumulative_counters(const ProtocolMetrics& protocol,
                                            const NetworkMetrics& network) {
  obs::CumulativeCounters c;
  c.actions = protocol.actions_initiated;
  c.self_loops = protocol.self_loop_actions;
  c.duplications = protocol.duplications;
  c.deletions = protocol.deletions;
  c.sent = network.sent;
  c.lost = network.lost;
  c.delivered = network.delivered;
  c.to_dead = network.to_dead;
  c.faulted = network.faulted;
  return c;
}

}  // namespace gossip::sim
