#include "core/variants/send_forget_ext.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gossip {

void SendForgetExtConfig::validate() const {
  if (view_size < 6 || view_size % 2 != 0) {
    throw std::invalid_argument("view size s must be even and >= 6");
  }
  if (min_degree % 2 != 0 || min_degree + 6 > view_size) {
    throw std::invalid_argument("dL must be even with dL <= s - 6");
  }
  if (pairs_per_message == 0) {
    throw std::invalid_argument("pairs_per_message must be >= 1");
  }
  if (2 * pairs_per_message > view_size) {
    throw std::invalid_argument("a message cannot carry more ids than s");
  }
}

SendForgetExt::SendForgetExt(NodeId self, const SendForgetExtConfig& config)
    : PeerProtocol(self, config.view_size), config_(config) {
  config_.validate();
}

std::size_t SendForgetExt::tombstone_count() const {
  return tombstones_.size();
}

std::size_t SendForgetExt::undelete(std::size_t count) {
  // Revive in pairs to preserve the even-degree invariant.
  std::size_t to_revive = std::min(count, tombstones_.size());
  to_revive -= to_revive % 2;
  auto& view = mutable_view();
  for (std::size_t k = 0; k < to_revive; ++k) {
    Tombstone tomb = tombstones_.front();
    tombstones_.erase(tombstones_.begin());
    assert(view.slot_empty(tomb.slot));
    // The revived instance duplicates the copy that was sent out; label it
    // dependent, like a duplication would be.
    tomb.entry.dependent = true;
    view.set(tomb.slot, tomb.entry);
    ++undeletions_;
  }
  return to_revive;
}

void SendForgetExt::on_initiate(Rng& rng, Transport& transport) {
  auto& view = mutable_view();
  auto& metrics = mutable_metrics();
  ++metrics.actions_initiated;

  const std::size_t batch = 2 * config_.pairs_per_message;
  const auto slots = rng.sample_without_replacement(view.capacity(), batch);
  for (const std::size_t slot : slots) {
    if (view.slot_empty(slot)) {
      ++metrics.self_loop_actions;
      return;
    }
  }

  const NodeId target = view.entry(slots.front()).id;

  // Decide between clearing (possibly as tombstones) and duplication.
  bool duplicate = view.degree() < config_.min_degree + batch;
  if (duplicate && config_.mark_instead_of_clear) {
    // Optimization 1: revive tombstones instead of duplicating.
    undelete(batch);
    duplicate = view.degree() < config_.min_degree + batch;
  }

  Message message;
  message.from = self();
  message.to = target;
  message.kind = MessageKind::kPush;
  message.payload.reserve(batch);
  message.payload.push_back(ViewEntry{self(), duplicate});
  for (std::size_t k = 1; k < slots.size(); ++k) {
    message.payload.push_back(
        ViewEntry{view.entry(slots[k]).id, duplicate});
  }

  if (duplicate) {
    ++metrics.duplications;
  } else {
    for (const std::size_t slot : slots) {
      if (config_.mark_instead_of_clear) {
        tombstones_.push_back(Tombstone{slot, view.entry(slot)});
      }
      view.clear(slot);
    }
  }

  transport.send(std::move(message));
  ++metrics.messages_sent;
}

void SendForgetExt::on_message(const Message& message, Rng& rng,
                               Transport& /*transport*/) {
  auto& metrics = mutable_metrics();
  ++metrics.messages_received;
  // Trust boundary: ignore malformed input — wrong kind, empty or
  // odd-sized payloads (which would break the even-degree invariant), or
  // payloads with empty entries.
  if (message.kind != MessageKind::kPush || message.payload.empty() ||
      message.payload.size() % 2 != 0) {
    return;
  }
  for (const auto& entry : message.payload) {
    if (entry.empty()) return;
  }
  store_received(message.payload, rng);
}

void SendForgetExt::store_received(const std::vector<ViewEntry>& entries,
                                   Rng& rng) {
  auto& view = mutable_view();
  auto& metrics = mutable_metrics();
  bool dropped = false;
  for (ViewEntry entry : entries) {
    assert(!entry.empty());
    if (entry.id == self()) entry.dependent = true;  // self-edge (§2)
    if (!view.full()) {
      const std::size_t slot = view.random_empty_slot(rng);
      // A tombstone stashed on this slot is gone for good: its space has
      // been reused.
      std::erase_if(tombstones_,
                    [slot](const Tombstone& t) { return t.slot == slot; });
      view.set(slot, entry);
      ++metrics.ids_accepted;
      continue;
    }
    if (config_.replace_when_full) {
      // Optimization 2: evict a random existing entry instead of dropping
      // the fresh id.
      view.set(view.random_nonempty_slot(rng), entry);
      ++replacements_;
      ++metrics.ids_accepted;
      continue;
    }
    dropped = true;
    break;
  }
  if (dropped) ++metrics.deletions;
}

}  // namespace gossip
