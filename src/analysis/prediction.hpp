// Bridge from the analysis solvers to the obs-layer TheoryPrediction: the
// obs library cannot link analysis (the dependency points the other way),
// so the oracle's input is produced here — one §6.2 degree-MC solve plus
// the Lemma 7.9 closed-form bound, packed into plain data.
#pragma once

#include "analysis/degree_mc.hpp"
#include "obs/oracle/prediction.hpp"

namespace gossip::analysis {

// Solves the degree MC at `params` and packages the stationary marginals,
// action-outcome probabilities, and the α ≥ 1 − 2(ℓ+δ) bound for the
// TheoryOracle. Propagates the solver's exceptions on bad parameters.
[[nodiscard]] obs::TheoryPrediction make_theory_prediction(
    const DegreeMcParams& params, double delta = 0.01);

}  // namespace gossip::analysis
