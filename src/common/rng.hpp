// Deterministic pseudo-random number generation for simulations.
//
// All stochastic components in this library draw randomness through `Rng`, a
// xoshiro256** generator seeded via splitmix64. Results therefore do not
// depend on standard-library distribution internals and are reproducible
// across platforms given the same seed.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace gossip {

namespace detail {
constexpr std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace detail

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
// Satisfies the C++ UniformRandomBitGenerator requirements.
//
// The single-step draws (operator(), uniform, bernoulli, distinct_pair) are
// defined inline in this header: the flat S&F hot path makes several draws
// per action and the build does not use LTO, so an out-of-line definition
// would cost a cross-TU call per draw.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the full 256-bit state from a single 64-bit seed using splitmix64,
  // as recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = detail::rotl64(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = detail::rotl64(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  // nearly-divisionless rejection method, so the result is exactly uniform.
  std::uint64_t uniform(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's method: multiply-shift with rejection of the biased low
    // range.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1) with 53 bits of precision.
  double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial: true with probability p (clamped to [0, 1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform_double() < p;
  }

  // Pareto(minimum, shape) variate: minimum * U^(-1/shape), U ~ (0, 1].
  // Heavy-tailed; mean exists only for shape > 1. Requires minimum > 0,
  // shape > 0.
  double pareto(double minimum, double shape);

  // Two distinct indices drawn uniformly at random from [0, count).
  // Requires count >= 2. This is the slot-pair selection primitive of the
  // S&F protocol (Fig 5.1, line 2).
  std::pair<std::size_t, std::size_t> distinct_pair(std::size_t count) {
    assert(count >= 2);
    const std::size_t first = uniform(count);
    std::size_t second = uniform(count - 1);
    if (second >= first) ++second;
    return {first, second};
  }

  // k distinct indices sampled uniformly from [0, count) (order random).
  // Requires k <= count. O(k) expected time via partial Fisher-Yates on a
  // sparse map for small k, or full shuffle when k is close to count.
  std::vector<std::size_t> sample_without_replacement(std::size_t count,
                                                      std::size_t k);

  // Fisher-Yates shuffle of an index permutation [0, count).
  std::vector<std::size_t> permutation(std::size_t count);

  // Derives an independent child generator; used to give each simulated
  // node / subsystem its own stream.
  Rng split();

  // Deterministic independent stream derivation: the generator for
  // (root_seed, stream_index) depends only on those two values, not on any
  // generator state. Used to give each shard of a parallel simulation its
  // own decorrelated stream so results are reproducible regardless of
  // thread scheduling.
  [[nodiscard]] static Rng stream(std::uint64_t root_seed,
                                  std::uint64_t stream_index);

 private:
  std::array<std::uint64_t, 4> state_;
};

// splitmix64 step, exposed for seeding utilities and tests.
std::uint64_t splitmix64_next(std::uint64_t& state);

}  // namespace gossip
