#include "gossip.hpp"
#include "gossip.hpp"
