#include "obs/oracle/drift_monitor.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace gossip::obs {

namespace {
constexpr std::size_t kChecks =
    static_cast<std::size_t>(DriftCheck::kCheckCount);
}  // namespace

const char* drift_check_name(DriftCheck check) {
  switch (check) {
    case DriftCheck::kDegreeOut: return "degree_out";
    case DriftCheck::kDegreeIn: return "degree_in";
    case DriftCheck::kDuplicationRate: return "duplication_rate";
    case DriftCheck::kDeletionRate: return "deletion_rate";
    case DriftCheck::kUniformity: return "uniformity";
    case DriftCheck::kIndependence: return "independence";
    case DriftCheck::kCheckCount: break;
  }
  return "unknown";
}

const char* drift_state_name(DriftState state) {
  switch (state) {
    case DriftState::kOk: return "ok";
    case DriftState::kWarn: return "warn";
    case DriftState::kViolation: return "violation";
  }
  return "unknown";
}

DriftMonitor::DriftMonitor(DriftMonitorConfig config) : config_(config) {
  config_.violation_ratio = std::max(1.0, config_.violation_ratio);
  config_.violation_streak = std::max<std::size_t>(1, config_.violation_streak);
  config_.clear_streak = std::max<std::size_t>(1, config_.clear_streak);
}

void DriftMonitor::begin_probe(std::uint64_t round, bool expected) {
  current_ = DriftSample{};
  current_.round = round;
  current_.expected = expected;
  in_probe_ = true;
  if (expected) ++expected_probes_;
  if (expected != last_expected_) {
    // Crossing the declared-window boundary resets the per-lane streaks:
    // an excursion that began inside the window must re-earn its streak
    // from scratch before it can escalate, and stale ok-streaks from
    // before the window don't count toward clearing after it.
    for (Lane& lane : lanes_) {
      lane.candidate_streak = 0;
      lane.ok_streak = 0;
    }
    last_expected_ = expected;
  }
}

void DriftMonitor::transition(Lane& lane, DriftCheck check, DriftState to,
                              double score) {
  const DriftTransition t{current_.round, check, lane.state, to, score};
  lane.state = to;
  if (log_.size() < config_.max_logged) log_.push_back(t);
  if (to == DriftState::kWarn) ++warns_;
  if (to == DriftState::kViolation) {
    ++violations_;
    if (on_violation_) on_violation_(t);
  }
}

void DriftMonitor::record(DriftCheck check, double score) {
  const auto i = static_cast<std::size_t>(check);
  current_.score[i] = score;
  Lane& lane = lanes_[i];
  if (current_.expected) {
    // Declared fault window: account the drift, don't escalate on it.
    lane.expected_peak = std::max(lane.expected_peak, score);
    return;
  }
  lane.peak = std::max(lane.peak, score);

  if (score <= 1.0) {
    lane.candidate_streak = 0;
    if (lane.state != DriftState::kOk &&
        ++lane.ok_streak >= config_.clear_streak) {
      transition(lane, check, DriftState::kOk, score);
      lane.ok_streak = 0;
    }
    return;
  }
  lane.ok_streak = 0;
  if (lane.state == DriftState::kOk) {
    transition(lane, check, DriftState::kWarn, score);
  }
  if (score >= config_.violation_ratio) {
    if (++lane.candidate_streak >= config_.violation_streak &&
        lane.state != DriftState::kViolation) {
      transition(lane, check, DriftState::kViolation, score);
    }
  } else {
    lane.candidate_streak = 0;
  }
}

void DriftMonitor::end_probe() {
  if (!in_probe_) return;
  if (current_.expected) {
    for (const double s : current_.score) {
      if (s > 1.0) {
        ++accounted_excursions_;
        break;
      }
    }
  }
  samples_.push_back(current_);
  in_probe_ = false;
}

DriftState DriftMonitor::overall_state() const {
  DriftState worst = DriftState::kOk;
  for (const Lane& lane : lanes_) {
    if (static_cast<int>(lane.state) > static_cast<int>(worst)) {
      worst = lane.state;
    }
  }
  return worst;
}

std::string DriftMonitor::report() const {
  std::ostringstream out;
  out << "drift monitor: " << samples_.size() << " probes, " << warns_
      << " warn transitions, " << violations_ << " violation transitions";
  if (expected_probes_ > 0) {
    out << ", " << expected_probes_ << " expected probes ("
        << accounted_excursions_ << " accounted excursions)";
  }
  out << '\n';
  for (std::size_t i = 0; i < kChecks; ++i) {
    out << "  " << drift_check_name(static_cast<DriftCheck>(i)) << ": "
        << drift_state_name(lanes_[i].state) << " (peak score "
        << lanes_[i].peak;
    if (lanes_[i].expected_peak > 0.0) {
      out << ", expected peak " << lanes_[i].expected_peak;
    }
    out << ")\n";
  }
  return out.str();
}

void DriftMonitor::write_json(std::ostream& out) const {
  out << "{\"violations\":" << violations_ << ",\"warns\":" << warns_
      << ",\"expected_probes\":" << expected_probes_
      << ",\"accounted_excursions\":" << accounted_excursions_
      << ",\"overall\":\"" << drift_state_name(overall_state()) << '"'
      << ",\"states\":{";
  for (std::size_t i = 0; i < kChecks; ++i) {
    if (i != 0) out << ',';
    out << '"' << drift_check_name(static_cast<DriftCheck>(i)) << "\":{"
        << "\"state\":\"" << drift_state_name(lanes_[i].state)
        << "\",\"peak_score\":" << lanes_[i].peak
        << ",\"expected_peak\":" << lanes_[i].expected_peak << '}';
  }
  out << "},\"transitions\":[";
  for (std::size_t i = 0; i < log_.size(); ++i) {
    if (i != 0) out << ',';
    const DriftTransition& t = log_[i];
    out << "{\"round\":" << t.round << ",\"check\":\""
        << drift_check_name(t.check) << "\",\"from\":\""
        << drift_state_name(t.from) << "\",\"to\":\""
        << drift_state_name(t.to) << "\",\"score\":" << t.score << '}';
  }
  out << "],\"samples\":[";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (i != 0) out << ',';
    const DriftSample& s = samples_[i];
    out << "{\"round\":" << s.round
        << ",\"expected\":" << (s.expected ? "true" : "false");
    for (std::size_t c = 0; c < kChecks; ++c) {
      out << ",\"" << drift_check_name(static_cast<DriftCheck>(c))
          << "\":" << s.score[c];
    }
    out << '}';
  }
  out << "]}";
}

void DriftMonitor::write_samples_csv(std::ostream& out) const {
  out << "round";
  for (std::size_t c = 0; c < kChecks; ++c) {
    out << ',' << drift_check_name(static_cast<DriftCheck>(c));
  }
  out << '\n';
  for (const DriftSample& s : samples_) {
    out << s.round;
    for (std::size_t c = 0; c < kChecks; ++c) out << ',' << s.score[c];
    out << '\n';
  }
}

}  // namespace gossip::obs
