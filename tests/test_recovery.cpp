// RecoveryTracker lane detection and episode bookkeeping, plus the
// DriftMonitor's expected-probe mode and the TheoryOracle's declared fault
// windows — the accounting that lets scripted chaos read as "expected
// degradation to recover from" rather than an alarm.
#include "obs/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/flat_send_forget.hpp"
#include "obs/oracle/drift_monitor.hpp"
#include "obs/oracle/theory_oracle.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "obs/watchdog.hpp"

namespace gossip::obs {
namespace {

constexpr std::uint32_t kDegreeBit =
    1u << static_cast<std::uint32_t>(RecoveryLane::kDegree);
constexpr std::uint32_t kConnectivityBit =
    1u << static_cast<std::uint32_t>(RecoveryLane::kConnectivity);
constexpr std::uint32_t kWatchdogBit =
    1u << static_cast<std::uint32_t>(RecoveryLane::kWatchdog);
constexpr std::uint32_t kOracleBit =
    1u << static_cast<std::uint32_t>(RecoveryLane::kOracle);

RecoveryConfig test_config() {
  RecoveryConfig config;
  config.min_degree = 4;
  config.view_size = 8;
  config.warmup_rounds = 0;  // unit tests drive probes by hand
  return config;
}

// A probe with `live` nodes all at even outdegree `degree` (in band).
FlatClusterProbe calm_probe(std::size_t live, std::size_t degree,
                            std::size_t view_size = 8) {
  FlatClusterProbe probe;
  probe.live_nodes = live;
  probe.outdegree.mean = static_cast<double>(degree);
  probe.outdegree_hist.assign(std::max(view_size, degree) + 1, 0);
  probe.outdegree_hist[degree] = live;
  return probe;
}

TEST(RecoveryLanes, Names) {
  EXPECT_STREQ(recovery_lane_name(RecoveryLane::kDegree), "degree");
  EXPECT_STREQ(recovery_lane_name(RecoveryLane::kConnectivity),
               "connectivity");
  EXPECT_STREQ(recovery_lane_name(RecoveryLane::kWatchdog), "watchdog");
  EXPECT_STREQ(recovery_lane_name(RecoveryLane::kOracle), "oracle");
}

TEST(RecoveryTracker, StructuralDegreeViolationTripsDegreeLane) {
  RecoveryTracker tracker(test_config());
  tracker.observe(1, calm_probe(100, 6), nullptr, nullptr, nullptr);
  EXPECT_TRUE(tracker.in_band());

  // 5% of nodes at odd outdegree breaches max_structural_fraction = 1%.
  FlatClusterProbe probe = calm_probe(100, 6);
  probe.outdegree_hist[6] = 95;
  probe.outdegree_hist[5] = 5;
  tracker.observe(2, probe, nullptr, nullptr, nullptr);
  EXPECT_EQ(tracker.degraded_lanes(), kDegreeBit);

  // Below dL counts too (warmup is 0 here).
  probe = calm_probe(100, 6);
  probe.outdegree_hist[6] = 95;
  probe.outdegree_hist[2] = 5;
  tracker.observe(3, probe, nullptr, nullptr, nullptr);
  EXPECT_EQ(tracker.degraded_lanes(), kDegreeBit);
}

TEST(RecoveryTracker, MeanDipUsesHysteresis) {
  RecoveryTracker tracker(test_config());
  tracker.observe(1, calm_probe(100, 26), nullptr, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(tracker.baseline_mean_degree(), 26.0);

  // Dip past degree_drop = 1.0 below baseline: out of band.
  FlatClusterProbe dipped = calm_probe(100, 26);
  dipped.outdegree.mean = 24.5;
  tracker.observe(2, dipped, nullptr, nullptr, nullptr);
  EXPECT_EQ(tracker.degraded_lanes(), kDegreeBit);

  // Climbing back to baseline - 0.8 is NOT enough (recover band is 0.6).
  dipped.outdegree.mean = 25.2;
  tracker.observe(3, dipped, nullptr, nullptr, nullptr);
  EXPECT_EQ(tracker.degraded_lanes(), kDegreeBit);

  // baseline - 0.5 clears the hysteresis.
  dipped.outdegree.mean = 25.5;
  tracker.observe(4, dipped, nullptr, nullptr, nullptr);
  EXPECT_TRUE(tracker.in_band());

  // A fresh dip of only 0.9 does not re-trip (drop band is 1.0).
  dipped.outdegree.mean = 25.1;
  tracker.observe(5, dipped, nullptr, nullptr, nullptr);
  EXPECT_TRUE(tracker.in_band());
}

TEST(RecoveryTracker, CalmBaselineNeverUpdatesDuringFaultWindows) {
  RecoveryTracker tracker(test_config());
  tracker.declare_window(10, 20, "w");
  tracker.observe(1, calm_probe(100, 26), nullptr, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(tracker.baseline_mean_degree(), 26.0);
  // In-band probe *inside* the window must not poison the baseline.
  tracker.observe(12, calm_probe(100, 20), nullptr, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(tracker.baseline_mean_degree(), 26.0);
}

TEST(RecoveryTracker, DeclaredWindowMeasuresRecoveryFromHeal) {
  RecoveryTracker tracker(test_config());
  RoundTimeSeries series(1);
  tracker.attach_series(&series);
  tracker.declare_window(10, 20, "cut");

  tracker.observe(5, calm_probe(100, 26), nullptr, nullptr, nullptr);
  FlatClusterProbe dipped = calm_probe(100, 26);
  dipped.outdegree.mean = 22.0;
  tracker.observe(12, dipped, nullptr, nullptr, nullptr);  // inside window
  tracker.observe(25, dipped, nullptr, nullptr, nullptr);  // healed, still out
  dipped.outdegree.mean = 25.8;
  tracker.observe(30, dipped, nullptr, nullptr, nullptr);  // back in band

  const RecoveryEpisode* e = tracker.episode("cut");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->declared);
  EXPECT_TRUE(e->degraded);
  EXPECT_TRUE(e->recovered);
  EXPECT_EQ(e->recovered_round, 30u);
  EXPECT_EQ(e->recovery_rounds(), 10u);  // heal 20 -> recovered 30
  EXPECT_EQ(e->lanes, kDegreeBit);
  EXPECT_EQ(tracker.unrecovered(), 0u);

  std::vector<std::string> labels;
  for (const SeriesAnnotation& a : series.annotations()) {
    labels.push_back(a.label);
  }
  EXPECT_EQ(labels, (std::vector<std::string>{
                        "fault:cut:begin", "fault:cut:heal",
                        "recovered:cut"}));
}

TEST(RecoveryTracker, OutOfBandOutsideWindowsOpensUndeclaredEpisode) {
  RecoveryTracker tracker(test_config());
  tracker.observe(1, calm_probe(100, 26), nullptr, nullptr, nullptr);
  FlatClusterProbe dipped = calm_probe(100, 26);
  dipped.outdegree.mean = 20.0;
  tracker.observe(50, dipped, nullptr, nullptr, nullptr);
  const RecoveryEpisode* e = tracker.episode("undeclared");
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->declared);
  EXPECT_EQ(e->begin, 50u);
  EXPECT_TRUE(e->degraded);
  EXPECT_FALSE(e->recovered);
  EXPECT_EQ(tracker.unrecovered(), 1u);

  tracker.observe(60, calm_probe(100, 26), nullptr, nullptr, nullptr);
  EXPECT_TRUE(tracker.episode("undeclared")->recovered);
  EXPECT_EQ(tracker.episode("undeclared")->recovered_round, 60u);
  EXPECT_EQ(tracker.unrecovered(), 0u);
}

TEST(RecoveryTracker, CoveredExcursionsNeverOpenUndeclaredEpisodes) {
  RecoveryTracker tracker(test_config());
  tracker.declare_window(10, 20, "cut");
  tracker.observe(1, calm_probe(100, 26), nullptr, nullptr, nullptr);
  FlatClusterProbe dipped = calm_probe(100, 26);
  dipped.outdegree.mean = 20.0;
  // Out of band at round 40: past the window's heal but the episode has
  // not recovered yet, so the window still owns the excursion.
  tracker.observe(40, dipped, nullptr, nullptr, nullptr);
  EXPECT_EQ(tracker.episode("undeclared"), nullptr);
  EXPECT_EQ(tracker.episodes().size(), 1u);
}

TEST(RecoveryTracker, UnreachedWindowStaysNeverDegraded) {
  RecoveryTracker tracker(test_config());
  tracker.declare_window(1000, 1100, "future");
  tracker.observe(1, calm_probe(100, 26), nullptr, nullptr, nullptr);
  const RecoveryEpisode* e = tracker.episode("future");
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->degraded);
  EXPECT_FALSE(e->recovered);
  EXPECT_EQ(tracker.unrecovered(), 0u);  // never degraded => not unrecovered
  EXPECT_NE(tracker.report().find("never degraded"), std::string::npos);
}

TEST(RecoveryTracker, ConnectivityLaneSeesSplitViewGraph) {
  // Two 4-node islands: each node's view points inside its own half only.
  FlatSendForgetCluster cluster(8, SendForgetConfig{.view_size = 8,
                                                    .min_degree = 0});
  for (NodeId u = 0; u < 8; ++u) {
    const NodeId base = u < 4 ? 0 : 4;
    cluster.install_view(u, {base + (u + 1) % 4, base + (u + 2) % 4});
  }
  RecoveryConfig config = test_config();
  config.min_degree = 0;
  RecoveryTracker tracker(config);
  const FlatClusterProbe probe = probe_cluster(cluster);
  tracker.observe(1, probe, &cluster, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(tracker.component_fraction(), 0.5);
  EXPECT_NE(tracker.degraded_lanes() & kConnectivityBit, 0u);

  // Bridge the halves: one cross edge makes the graph weakly connected.
  cluster.install_view(0, {1, 2, 5, 6});
  tracker.observe(2, probe_cluster(cluster), &cluster, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(tracker.component_fraction(), 1.0);
  EXPECT_EQ(tracker.degraded_lanes() & kConnectivityBit, 0u);
}

TEST(RecoveryTracker, WatchdogLaneFiresOnNewViolationsOnly) {
  InvariantWatchdog watchdog(WatchdogConfig{.min_degree = 4, .view_size = 8});
  watchdog.check_degree(200, 0, 0, 3);  // odd AND below dL: violation
  ASSERT_GT(watchdog.violation_count(), 0u);

  RecoveryTracker tracker(test_config());
  tracker.observe(1, calm_probe(100, 26), nullptr, &watchdog, nullptr);
  EXPECT_NE(tracker.degraded_lanes() & kWatchdogBit, 0u);
  // No new violations since: the lane clears.
  tracker.observe(2, calm_probe(100, 26), nullptr, &watchdog, nullptr);
  EXPECT_EQ(tracker.degraded_lanes(), 0u);
}

TEST(RecoveryTracker, OracleLaneSeesExpectedProbeScores) {
  DriftMonitor monitor;
  // An *expected* probe with a breaching score: no state transition, but
  // the tracker still reads the raw sample as degradation.
  monitor.begin_probe(100, /*expected=*/true);
  monitor.record(DriftCheck::kDuplicationRate, 3.0);
  monitor.end_probe();
  ASSERT_EQ(monitor.overall_state(), DriftState::kOk);

  RecoveryTracker tracker(test_config());
  tracker.observe(100, calm_probe(100, 26), nullptr, nullptr, &monitor);
  EXPECT_NE(tracker.degraded_lanes() & kOracleBit, 0u);

  monitor.begin_probe(110, /*expected=*/true);
  monitor.record(DriftCheck::kDuplicationRate, 0.4);
  monitor.end_probe();
  tracker.observe(110, calm_probe(100, 26), nullptr, nullptr, &monitor);
  EXPECT_EQ(tracker.degraded_lanes(), 0u);
}

TEST(RecoveryTracker, GaugesExported) {
  MetricsRegistry registry(1);
  RecoveryTracker tracker(test_config());
  tracker.bind_registry(&registry, 0);
  tracker.observe(1, calm_probe(100, 26), nullptr, nullptr, nullptr);
  FlatClusterProbe dipped = calm_probe(100, 26);
  dipped.outdegree.mean = 20.0;
  tracker.observe(10, dipped, nullptr, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(registry.gauge_value(registry.gauge(
                       "recovery_degraded_lanes")), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value(registry.gauge("recovery_episodes")),
                   1.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge_value(registry.gauge("recovery_unrecovered")), 1.0);
  tracker.observe(20, calm_probe(100, 26), nullptr, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(
      registry.gauge_value(registry.gauge("recovery_unrecovered")), 0.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge_value(registry.gauge("recovery_last_rounds")), 10.0);
}

TEST(RecoveryTracker, WriteJsonRoundTripsEpisodeFields) {
  RecoveryTracker tracker(test_config());
  tracker.declare_window(10, 20, "cut");
  tracker.observe(1, calm_probe(100, 26), nullptr, nullptr, nullptr);
  std::ostringstream out;
  tracker.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"label\":\"cut\""), std::string::npos);
  EXPECT_NE(json.find("\"declared\":true"), std::string::npos);
  EXPECT_NE(json.find("\"unrecovered\":0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// DriftMonitor expected-probe mode.
// ---------------------------------------------------------------------------

void probe_with_score(DriftMonitor& monitor, std::uint64_t round, double score,
                      bool expected) {
  monitor.begin_probe(round, expected);
  monitor.record(DriftCheck::kDuplicationRate, score);
  monitor.end_probe();
}

TEST(DriftMonitorExpected, ExpectedProbesAccountButNeverEscalate) {
  DriftMonitor monitor;
  for (std::uint64_t r = 0; r < 5; ++r) {
    probe_with_score(monitor, 100 + 10 * r, 5.0, /*expected=*/true);
  }
  EXPECT_EQ(monitor.overall_state(), DriftState::kOk);
  EXPECT_EQ(monitor.warn_transitions(), 0u);
  EXPECT_EQ(monitor.violation_transitions(), 0u);
  EXPECT_EQ(monitor.expected_probes(), 5u);
  EXPECT_EQ(monitor.accounted_excursions(), 5u);
  // The excursion lands in the expected peak, not the normal peak.
  EXPECT_DOUBLE_EQ(
      monitor.expected_peak_score(DriftCheck::kDuplicationRate), 5.0);
  EXPECT_DOUBLE_EQ(monitor.peak_score(DriftCheck::kDuplicationRate), 0.0);
}

TEST(DriftMonitorExpected, InBandExpectedProbesAreNotExcursions) {
  DriftMonitor monitor;
  probe_with_score(monitor, 100, 0.5, /*expected=*/true);
  EXPECT_EQ(monitor.expected_probes(), 1u);
  EXPECT_EQ(monitor.accounted_excursions(), 0u);
}

TEST(DriftMonitorExpected, UndeclaredDriftStillTrips) {
  DriftMonitor monitor;  // violation_ratio 2.0, violation_streak 2
  probe_with_score(monitor, 100, 5.0, /*expected=*/false);
  EXPECT_EQ(monitor.overall_state(), DriftState::kWarn);
  probe_with_score(monitor, 110, 5.0, /*expected=*/false);
  EXPECT_EQ(monitor.overall_state(), DriftState::kViolation);
  EXPECT_EQ(monitor.violation_transitions(), 1u);
}

TEST(DriftMonitorExpected, StreaksResetAcrossTheExpectedBoundary) {
  DriftMonitor monitor;
  probe_with_score(monitor, 100, 5.0, /*expected=*/false);  // warn, streak 1
  probe_with_score(monitor, 110, 5.0, /*expected=*/true);   // boundary
  probe_with_score(monitor, 120, 5.0, /*expected=*/false);  // streak restarts
  EXPECT_EQ(monitor.overall_state(), DriftState::kWarn)
      << "an excursion straddling a declared window must not fire on the "
         "first probe after it";
  probe_with_score(monitor, 130, 5.0, /*expected=*/false);
  EXPECT_EQ(monitor.overall_state(), DriftState::kViolation);
}

TEST(TheoryOracleWindows, RoundExpectedCoversWindowPlusGrace) {
  TheoryPrediction pred;
  pred.view_size = 8;
  pred.min_degree = 4;
  pred.out_pmf.assign(9, 1.0 / 9.0);
  pred.in_pmf.assign(9, 1.0 / 9.0);
  TheoryOracle oracle(pred);
  oracle.declare_fault_window(100, 200, /*grace_rounds=*/40);
  EXPECT_FALSE(oracle.round_expected(99));
  EXPECT_TRUE(oracle.round_expected(100));
  EXPECT_TRUE(oracle.round_expected(199));
  EXPECT_TRUE(oracle.round_expected(239));  // grace period
  EXPECT_FALSE(oracle.round_expected(240));
}

// --- absolute degree floor (the boiling-frog regression) ---
//
// A slow decay — smaller than degree_drop per probe — lets the chasing
// calm baseline follow the mean down, so the relative dip signal never
// trips however far the overlay sinks. The 20% mass-kill washout is
// exactly this regime. These tests pin both halves: the blind spot exists
// with the floor disabled, and the floor (pinned at the FIRST calm
// baseline, not the chasing one) closes it.

TEST(RecoveryTracker, SlowDecayNeverTripsWithoutFloor) {
  RecoveryTracker tracker(test_config());  // degree_floor_fraction = 0
  double mean = 6.0;
  std::uint64_t round = 1;
  tracker.observe(round++, calm_probe(100, 6), nullptr, nullptr, nullptr);
  // Decay 0.05/probe, far below degree_drop = 1.0: 6.0 -> 4.0.
  while (mean > 4.0) {
    mean -= 0.05;
    FlatClusterProbe probe = calm_probe(100, 6);
    probe.outdegree.mean = mean;
    tracker.observe(round++, probe, nullptr, nullptr, nullptr);
    ASSERT_TRUE(tracker.in_band())
        << "the chasing baseline followed the decay down; a trip here "
           "means the blind spot this test documents was closed by the "
           "relative signal (update SlowDecayTripsTheFloor instead)";
  }
  EXPECT_TRUE(tracker.episodes().empty());
  // The baseline chased the decay all the way down.
  EXPECT_LT(tracker.baseline_mean_degree(), 4.1);
}

TEST(RecoveryTracker, SlowDecayTripsTheFloor) {
  RecoveryConfig config = test_config();
  config.degree_floor_fraction = 0.9;  // floor = 5.4 off the 6.0 baseline
  RecoveryTracker tracker(config);
  std::uint64_t round = 1;
  tracker.observe(round++, calm_probe(100, 6), nullptr, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(tracker.degree_floor(), 5.4);

  double mean = 6.0;
  std::uint64_t tripped_round = 0;
  while (mean > 4.0) {
    mean -= 0.05;
    FlatClusterProbe probe = calm_probe(100, 6);
    probe.outdegree.mean = mean;
    tracker.observe(round, probe, nullptr, nullptr, nullptr);
    if (tripped_round == 0 && !tracker.in_band()) {
      tripped_round = round;
      EXPECT_EQ(tracker.degraded_lanes(), kDegreeBit);
      EXPECT_LT(mean, 5.4);
      EXPECT_GT(mean, 5.3);  // trips at the floor, not rounds later
    }
    ++round;
  }
  ASSERT_NE(tripped_round, 0u) << "floor never tripped during the decay";
  ASSERT_EQ(tracker.episodes().size(), 1u);
  EXPECT_FALSE(tracker.episodes()[0].declared);
  EXPECT_TRUE(tracker.episodes()[0].degraded);
  EXPECT_FALSE(tracker.episodes()[0].recovered);

  // The floor is pinned: it did NOT chase the decay. Recovery demands the
  // mean climb back above floor + (degree_drop - degree_recover) = 5.8.
  FlatClusterProbe probe = calm_probe(100, 6);
  probe.outdegree.mean = 5.7;
  tracker.observe(round++, probe, nullptr, nullptr, nullptr);
  EXPECT_FALSE(tracker.in_band()) << "hysteresis: 5.7 < 5.8 stays out";
  probe.outdegree.mean = 5.9;
  tracker.observe(round++, probe, nullptr, nullptr, nullptr);
  EXPECT_TRUE(tracker.in_band());
  EXPECT_TRUE(tracker.episodes()[0].recovered);
}

}  // namespace
}  // namespace gossip::obs
