#include "sampling/health.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "sim/round_driver.hpp"

namespace gossip::sampling {
namespace {

sim::Cluster::ProtocolFactory sf_factory() {
  return [](NodeId id) {
    return std::make_unique<SendForget>(
        id, SendForgetConfig{.view_size = 16, .min_degree = 6});
  };
}

TEST(Health, FreshClusterReport) {
  Rng rng(1);
  sim::Cluster cluster(100, sf_factory());
  cluster.install_graph(permutation_regular(100, 4, rng));
  const auto report = measure_health(cluster);
  EXPECT_EQ(report.nodes, 100u);
  EXPECT_EQ(report.live, 100u);
  EXPECT_EQ(report.edges, 400u);
  EXPECT_DOUBLE_EQ(report.out_mean, 4.0);
  EXPECT_DOUBLE_EQ(report.in_mean, 4.0);
  EXPECT_TRUE(report.connected);
  EXPECT_DOUBLE_EQ(report.dead_reference_fraction, 0.0);
  // permutation_regular may assign the same target twice (different
  // permutations), creating a few intra-view duplicates.
  EXPECT_GT(report.independence, 0.95);
  EXPECT_DOUBLE_EQ(report.spectral_gap, 0.0);  // not requested
}

TEST(Health, SteadyStateWithSpectral) {
  Rng rng(2);
  sim::Cluster cluster(200, sf_factory());
  cluster.install_graph(permutation_regular(200, 4, rng));
  sim::UniformLoss loss(0.02);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(200);
  const auto report = measure_health(cluster, /*with_spectral=*/true);
  EXPECT_TRUE(report.connected);
  EXPECT_GT(report.out_mean, 6.0);
  EXPECT_GT(report.duplication_rate, 0.0);
  EXPECT_GT(report.spectral_gap, 0.1);
  EXPECT_GT(report.independence, 0.8);
}

TEST(Health, DeadNodesAccounted) {
  Rng rng(3);
  sim::Cluster cluster(50, sf_factory());
  cluster.install_graph(permutation_regular(50, 4, rng));
  for (NodeId v = 0; v < 10; ++v) cluster.kill(v);
  const auto report = measure_health(cluster, /*with_spectral=*/true);
  EXPECT_EQ(report.live, 40u);
  // 40 live nodes hold 160 refs; on average 20% point at the dead.
  EXPECT_NEAR(report.dead_reference_fraction, 0.2, 0.08);
  // Spectral skipped when not all nodes are live.
  EXPECT_DOUBLE_EQ(report.spectral_gap, 0.0);
}

TEST(Health, ToStringMentionsKeyFields) {
  Rng rng(4);
  sim::Cluster cluster(20, sf_factory());
  cluster.install_graph(permutation_regular(20, 4, rng));
  const auto text = measure_health(cluster).to_string();
  EXPECT_NE(text.find("connected"), std::string::npos);
  EXPECT_NE(text.find("outdegree"), std::string::npos);
  EXPECT_NE(text.find("independent entries"), std::string::npos);
}

TEST(Health, PartitionedReported) {
  sim::Cluster cluster(4, sf_factory());
  // Two disconnected pairs.
  cluster.node(0).install_view({1, 1});
  cluster.node(1).install_view({0, 0});
  cluster.node(2).install_view({3, 3});
  cluster.node(3).install_view({2, 2});
  const auto report = measure_health(cluster);
  EXPECT_FALSE(report.connected);
  EXPECT_NE(report.to_string().find("PARTITIONED"), std::string::npos);
}

}  // namespace
}  // namespace gossip::sampling
