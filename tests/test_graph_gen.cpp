#include "graph/graph_gen.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/connectivity.hpp"
#include "graph/graph_stats.hpp"

namespace gossip {
namespace {

TEST(GraphGen, RandomOutRegularDegrees) {
  Rng rng(1);
  const auto g = random_out_regular(100, 7, rng);
  for (NodeId u = 0; u < 100; ++u) {
    EXPECT_EQ(g.out_degree(u), 7u);
    EXPECT_EQ(g.edge_multiplicity(u, u), 0u) << "self-edge at " << u;
  }
  EXPECT_EQ(g.edge_count(), 700u);
}

TEST(GraphGen, RandomOutRegularDistinctNeighbors) {
  Rng rng(2);
  const auto g = random_out_regular(50, 10, rng);
  EXPECT_EQ(g.parallel_edge_count(), 0u);
}

TEST(GraphGen, RandomOutRegularRejectsTooLargeDegree) {
  Rng rng(3);
  EXPECT_THROW(random_out_regular(5, 5, rng), std::invalid_argument);
}

TEST(GraphGen, RingWithChordsConnected) {
  Rng rng(4);
  const auto g = ring_with_chords(200, 2, rng);
  EXPECT_TRUE(is_weakly_connected(g));
  for (NodeId u = 0; u < 200; ++u) {
    EXPECT_EQ(g.out_degree(u), 3u);
    EXPECT_EQ(g.edge_multiplicity(u, u), 0u);
  }
}

TEST(GraphGen, PermutationRegularExactDegrees) {
  Rng rng(5);
  constexpr std::size_t kK = 30;
  const auto g = permutation_regular(300, kK, rng);
  for (NodeId u = 0; u < 300; ++u) {
    EXPECT_EQ(g.out_degree(u), kK);
    EXPECT_EQ(g.in_degree(u), kK);
    EXPECT_EQ(g.edge_multiplicity(u, u), 0u) << "fixed point at " << u;
  }
  // Sum degree ds(u) = k + 2k = 3k for every node (the §6.1 init).
  const auto sums = sum_degree_histogram(g);
  EXPECT_EQ(sums.max_value(), 3 * kK);
  EXPECT_EQ(sums.count(3 * kK), 300u);
  EXPECT_DOUBLE_EQ(sums.variance(), 0.0);
}

TEST(GraphGen, PermutationRegularSmallSystems) {
  Rng rng(6);
  const auto g = permutation_regular(2, 3, rng);
  EXPECT_EQ(g.out_degree(0), 3u);
  EXPECT_EQ(g.edge_multiplicity(0, 0), 0u);
  EXPECT_EQ(g.edge_multiplicity(1, 1), 0u);
  EXPECT_THROW(permutation_regular(1, 3, rng), std::invalid_argument);
}

TEST(GraphGen, LineGraphShape) {
  const auto g = line_graph(4);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.out_degree(3), 0u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(GraphGen, StarGraphShape) {
  const auto g = star_graph(10);
  EXPECT_EQ(g.in_degree(0), 9u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(GraphGen, GeneratorsAreSeedDeterministic) {
  Rng rng1(77);
  Rng rng2(77);
  EXPECT_TRUE(random_out_regular(40, 4, rng1) ==
              random_out_regular(40, 4, rng2));
}

}  // namespace
}  // namespace gossip
