// Gossip-based aggregation (push-sum averaging) using S&F views as the
// peer sampler — one of the applications the paper lists for independent
// uniform samples ("gathering statistics, gossip-based aggregation", §1).
//
// Every node holds a private value; the system computes the global average
// with only local exchanges: each round a node sends half its (sum,
// weight) mass to a peer drawn from its S&F view. Convergence of push-sum
// requires the peer choices to behave like fresh uniform samples — which
// is exactly what temporal independence (M5) provides. The demo reports
// the relative error per round and the true average for comparison.
//
//   $ ./aggregation [nodes] [loss]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "sim/round_driver.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1000;
  const double loss_rate = argc > 2 ? std::strtod(argv[2], nullptr) : 0.01;

  // Membership substrate: a mixed S&F overlay.
  Rng rng(4242);
  sim::Cluster cluster(n, [](NodeId id) {
    return std::make_unique<SendForget>(id, default_send_forget_config());
  });
  cluster.install_graph(permutation_regular(n, 10, rng));
  sim::UniformLoss loss(loss_rate);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(200);

  // Private values: node u holds u (so the true average is (n-1)/2).
  std::vector<double> sum(n);
  std::vector<double> weight(n, 1.0);
  double true_average = 0.0;
  for (std::size_t u = 0; u < n; ++u) {
    sum[u] = static_cast<double>(u);
    true_average += sum[u];
  }
  true_average /= static_cast<double>(n);

  std::printf("push-sum averaging over the S&F overlay, n=%zu, loss=%.0f%%\n",
              n, loss_rate * 100.0);
  std::printf("true average: %.2f\n\n%8s  %16s\n", true_average, "round",
              "max rel. error");

  for (int round = 1; round <= 40; ++round) {
    // The membership protocol keeps running underneath, so each round's
    // peer choices are (nearly) fresh samples.
    driver.run_rounds(1);
    std::vector<double> in_sum(n, 0.0);
    std::vector<double> in_weight(n, 0.0);
    for (NodeId u = 0; u < n; ++u) {
      const auto& view = cluster.node(u).view();
      // Keep half, push half to a sampled peer. A lost push loses mass in
      // push-sum; real deployments pair it with acknowledgments, so the
      // demo models the peer-sampling loss only on the membership layer.
      NodeId peer = u;
      if (view.degree() > 0) {
        peer = view.entry(view.random_nonempty_slot(rng)).id;
      }
      in_sum[u] += sum[u] / 2.0;
      in_weight[u] += weight[u] / 2.0;
      in_sum[peer] += sum[u] / 2.0;
      in_weight[peer] += weight[u] / 2.0;
    }
    sum = std::move(in_sum);
    weight = std::move(in_weight);

    double worst = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      const double estimate = weight[u] > 0.0 ? sum[u] / weight[u] : 0.0;
      worst = std::max(worst,
                       std::abs(estimate - true_average) / true_average);
    }
    if (round <= 10 || round % 5 == 0) {
      std::printf("%8d  %16.6f\n", round, worst);
    }
    if (worst < 1e-10) {
      std::printf("converged to machine precision at round %d\n", round);
      break;
    }
  }
  std::printf("\npush-sum converges geometrically because S&F supplies "
              "fresh, nearly uniform peers each round (Properties M3-M5).\n");
  return 0;
}
