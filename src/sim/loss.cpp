#include "sim/loss.hpp"

#include <cassert>
#include <stdexcept>

namespace gossip::sim {

UniformLoss::UniformLoss(double rate) : rate_(rate) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("loss rate must be in [0, 1]");
  }
}

bool UniformLoss::drop(Rng& rng) { return rng.bernoulli(rate_); }

GilbertElliottLoss::GilbertElliottLoss(double p_good_to_bad,
                                       double r_bad_to_good, double good_loss,
                                       double bad_loss)
    : p_(p_good_to_bad), r_(r_bad_to_good), good_loss_(good_loss),
      bad_loss_(bad_loss) {
  for (const double x : {p_, r_, good_loss_, bad_loss_}) {
    if (x < 0.0 || x > 1.0) {
      throw std::invalid_argument("Gilbert-Elliott parameters must be in [0,1]");
    }
  }
  if (p_ + r_ <= 0.0) {
    throw std::invalid_argument("Gilbert-Elliott chain must be able to move");
  }
}

bool GilbertElliottLoss::drop(Rng& rng) {
  // Advance the channel state, then sample loss in the new state.
  if (bad_) {
    if (rng.bernoulli(r_)) bad_ = false;
  } else {
    if (rng.bernoulli(p_)) bad_ = true;
  }
  return rng.bernoulli(bad_ ? bad_loss_ : good_loss_);
}

double GilbertElliottLoss::average_rate() const {
  // Stationary probability of BAD is p / (p + r).
  const double pi_bad = p_ / (p_ + r_);
  return pi_bad * bad_loss_ + (1.0 - pi_bad) * good_loss_;
}

std::unique_ptr<GilbertElliottLoss> bursty_loss(double target_rate,
                                                double mean_burst_length) {
  if (target_rate <= 0.0 || target_rate >= 1.0) {
    throw std::invalid_argument("target rate must be in (0, 1)");
  }
  if (mean_burst_length < 1.0) {
    throw std::invalid_argument("mean burst length must be >= 1");
  }
  // In-burst loss is total: pi_bad = target_rate. Mean sojourn in BAD is
  // 1/r = mean_burst_length, and p solves p/(p+r) = target_rate.
  const double r = 1.0 / mean_burst_length;
  const double p = r * target_rate / (1.0 - target_rate);
  if (p > 1.0) {
    throw std::invalid_argument("infeasible burst parameters");
  }
  return std::make_unique<GilbertElliottLoss>(p, r, 0.0, 1.0);
}

}  // namespace gossip::sim
