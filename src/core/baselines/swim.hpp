// SWIM failure detector (Das, Gupta, Motivala; refs the arena compares
// against S&F's no-timeout design).
//
// Round-based probing: every round each node pings one random non-faulty
// member; a missing ack escalates to k indirect ping-req probes through
// random helpers, then to local suspicion, and after a suspicion timeout to
// a confirmed failure. Membership assertions (alive / suspect / faulty,
// each stamped with the subject's incarnation number) are piggybacked on
// every ping / ping-req / ack and spread epidemically; a node that learns
// it is suspected refutes by bumping its own incarnation. Two deliberate
// extensions over the original protocol, both standard in production
// implementations (e.g. memberlist):
//
//   * a direct ack from a locally-suspected member downgrades the local
//     suspicion immediately (the prober has first-hand evidence), and
//   * confirmed-faulty members are still probed at a low duty cycle
//     (`faulty_probe_interval`), carrying the faulty assertion so a
//     wrongly-confirmed member learns of it and can refute with a higher
//     incarnation — without this, a healed partition leaves the two sides
//     permanently deadlocked on each other's confirms.
//
// Determinism contract: the protocol owns no clock and draws no
// randomness of its own. All timing comes from the round number handed to
// on_round (deadlines are plain round comparisons) and every random choice
// (probe target, helpers, piggyback fill) comes from the caller's RNG — the
// per-shard streams under the arena driver — so a run is bit-identical for
// a fixed (seed, shard_count) regardless of thread count or wall-clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/protocol.hpp"

namespace gossip {

struct SwimConfig {
  // Vestigial LocalView capacity (SWIM is a full-membership detector; the
  // member table, not the view, is its state). Kept > 0 so generic view
  // probes see the installed seed entries.
  std::size_t view_size = 16;
  // Rounds from a ping until the missing ack escalates to indirect probes.
  // Under the arena's one-round delivery latency an ack takes 2 rounds to
  // come back, so 2 is the minimum that never times out at zero loss.
  std::uint64_t ack_timeout = 2;
  // Helpers per indirect escalation (the protocol's k).
  std::size_t indirect_probes = 3;
  // Rounds from the indirect escalation until suspicion. The relayed ack
  // path takes 4 rounds under the arena's latency; 5 leaves one round of
  // slack.
  std::uint64_t indirect_timeout = 5;
  // Rounds a member stays suspected before it is confirmed faulty.
  std::uint64_t suspicion_timeout = 12;
  // Piggybacked updates per outgoing message.
  std::size_t piggyback_limit = 6;
  // Per-update retransmit budget: transmit_factor * (floor(log2 m) + 1)
  // transmissions, m = current member count (the protocol's lambda log n).
  std::size_t transmit_factor = 3;
  // Every this many rounds, one confirmed-faulty member is probed in
  // addition to the regular target (the reclaim path above). 0 disables.
  std::uint64_t faulty_probe_interval = 4;
};

class Swim final : public PeerProtocol {
 public:
  enum class Status : std::uint8_t { kAlive = 0, kSuspect = 1, kFaulty = 2 };

  struct Member {
    Status status = Status::kAlive;
    std::uint32_t incarnation = 0;
    std::uint64_t suspect_since = 0;  // round the current suspicion began
  };

  Swim(NodeId self, const SwimConfig& config);

  [[nodiscard]] const SwimConfig& config() const { return config_; }

  // Seeds the member table (everyone alive, incarnation 0) and announces
  // this node so joiners disseminate themselves.
  void install_view(const std::vector<NodeId>& ids) override;

  void on_round(std::uint64_t round, Rng& rng, Transport& transport) override;
  // Fallback for round-less drivers: one probe step on an internal clock.
  void on_initiate(Rng& rng, Transport& transport) override;
  void on_message(const Message& message, Rng& rng,
                  Transport& transport) override;

  [[nodiscard]] MemberVerdict member_verdict(NodeId id) const override;
  [[nodiscard]] std::uint64_t state_digest() const override;

  // Test / observer access.
  [[nodiscard]] const Member* member(NodeId id) const;
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }
  [[nodiscard]] std::size_t member_count() const { return member_count_; }
  [[nodiscard]] std::size_t faulty_count() const { return faulty_count_; }
  [[nodiscard]] std::size_t pending_probes() const { return pending_.size(); }

 private:
  struct PendingProbe {
    NodeId target = kNilNode;
    std::uint64_t deadline = 0;
    bool indirect = false;  // already escalated to ping-req
  };
  struct PendingRelay {
    NodeId target = kNilNode;
    NodeId origin = kNilNode;
    std::uint64_t deadline = 0;
  };
  struct OutUpdate {
    MembershipUpdate update;
    std::uint32_t transmits = 0;
  };

  [[nodiscard]] Member* find_member(NodeId id);
  [[nodiscard]] const Member* find_member(NodeId id) const;
  // Adds `id` (unknown ids only) and returns its entry.
  Member& add_member(NodeId id, Status status, std::uint32_t incarnation);
  void set_status(Member& m, NodeId id, Status status, std::uint64_t round);

  // True when `update` carries strictly newer information than (status,
  // incarnation): higher incarnation, or same incarnation and higher status.
  [[nodiscard]] static bool overrides(Status status, std::uint32_t incarnation,
                                      const MembershipUpdate& update);

  void apply_updates(const Message& message, std::uint64_t round);
  void enqueue_update(MembershipUpdate update);
  void fill_piggyback(Message& message, Rng& rng);
  [[nodiscard]] std::size_t transmit_budget() const;

  // Uniformly random member with the wanted faulty-ness, excluding self and
  // `exclude`; kNilNode when none qualifies. Rejection sampling with a
  // deterministic scan fallback.
  [[nodiscard]] NodeId random_member(Rng& rng, bool faulty, NodeId exclude);

  void send_ping(NodeId target, std::uint64_t round, Rng& rng,
                 Transport& transport);
  void start_probe(NodeId target, std::uint64_t round, Rng& rng,
                   Transport& transport);
  void expire_timers(std::uint64_t round, Rng& rng, Transport& transport);

  SwimConfig config_;
  std::uint64_t round_ = 0;           // last round ticked (message stamps)
  std::uint32_t incarnation_ = 0;     // this node's own incarnation
  std::uint64_t seq_ = 0;             // probe sequence numbers

  // Member table indexed by id (grown on demand); `present_` marks known
  // ids. Dense `ids_` lists present members for O(1) random selection.
  std::vector<Member> table_;
  std::vector<std::uint8_t> present_;
  std::vector<NodeId> ids_;
  std::size_t member_count_ = 0;
  std::size_t faulty_count_ = 0;

  std::vector<PendingProbe> pending_;
  std::vector<PendingRelay> relays_;
  std::vector<OutUpdate> outbox_;
};

}  // namespace gossip
