#include "analysis/global_mc.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/graph_gen.hpp"

namespace gossip::analysis {
namespace {

// A 3-node directed 2-cycle graph: every node has out = in = 2, ds = 6.
Digraph tiny_fixed_sum() {
  Digraph g(3);
  for (NodeId u = 0; u < 3; ++u) {
    g.add_edge(u, (u + 1) % 3);
    g.add_edge(u, (u + 2) % 3);
  }
  return g;
}

TEST(GlobalMc, StateRoundTrip) {
  const Digraph g = tiny_fixed_sum();
  const auto state = state_from_graph(g);
  ASSERT_EQ(state.size(), 3u);
  EXPECT_EQ(state[0], (std::vector<NodeId>{1, 2}));
  EXPECT_TRUE(graph_from_state(state) == g);
}

TEST(GlobalMc, Validation) {
  GlobalMcParams p;
  p.initial = tiny_fixed_sum();
  p.loss = 1.0;
  EXPECT_THROW(build_global_mc(p), std::invalid_argument);

  p = GlobalMcParams{};
  p.initial = Digraph(1);
  EXPECT_THROW(build_global_mc(p), std::invalid_argument);

  p = GlobalMcParams{};
  p.initial = Digraph(3);
  p.initial.add_edge(0, 1);  // odd outdegree
  EXPECT_THROW(build_global_mc(p), std::invalid_argument);

  p = GlobalMcParams{};
  p.config = SendForgetConfig{.view_size = 6, .min_degree = 0};
  p.initial = Digraph(2);
  for (int i = 0; i < 8; ++i) p.initial.add_edge(0, 1);  // beyond capacity
  EXPECT_THROW(build_global_mc(p), std::invalid_argument);
}

TEST(GlobalMc, NoLossFixedSumChainStructure) {
  GlobalMcParams p;
  p.config = SendForgetConfig{.view_size = 6, .min_degree = 0};
  p.loss = 0.0;
  p.initial = tiny_fixed_sum();
  const auto r = build_global_mc(p);
  ASSERT_TRUE(r.exploration_complete);
  EXPECT_GT(r.states.size(), 10u);
  // Lemma A.2: the fixed-sum chain is irreducible.
  EXPECT_TRUE(r.strongly_connected);
  // Lemma 6.2: the sum-degree invariant holds in every reachable state.
  for (const auto& state : r.states) {
    const Digraph g = graph_from_state(state);
    for (NodeId u = 0; u < 3; ++u) {
      EXPECT_EQ(g.out_degree(u) + 2 * g.in_degree(u), 6u);
    }
  }
}

TEST(GlobalMc, NoLossStationaryUniformOnSimpleStates) {
  // Lemma 7.5, exact form: the stationary distribution is uniform across
  // the states without self- or parallel edges (the equal-transformation-
  // weight argument is exact there); multiplicity-bearing states deviate.
  GlobalMcParams p;
  p.config = SendForgetConfig{.view_size = 6, .min_degree = 0};
  p.loss = 0.0;
  p.initial = tiny_fixed_sum();
  const auto r = build_global_mc(p);
  ASSERT_TRUE(r.stationary.converged);
  EXPECT_GT(r.simple_state_count, 0u);
  EXPECT_LT(r.simple_state_uniformity_deviation, 1e-6);
}

TEST(GlobalMc, NoLossEdgePresenceUniform) {
  // Lemma 7.6: P(v in u.lv) identical for all ordered pairs u != v.
  GlobalMcParams p;
  p.config = SendForgetConfig{.view_size = 6, .min_degree = 0};
  p.loss = 0.0;
  p.initial = tiny_fixed_sum();
  const auto r = build_global_mc(p);
  ASSERT_TRUE(r.stationary.converged);
  EXPECT_LT(r.edge_presence_spread, 1e-9);
}

TEST(GlobalMc, LossyChainIsStronglyConnected) {
  // Lemma 7.1: with 0 < loss < 1, every reachable state can reach every
  // other. Two nodes keep the state space small enough for exhaustive
  // verification.
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 0);
  GlobalMcParams p;
  // dL > 0 is required under loss (§6.2): with dL = 0 the no-duplication
  // dynamics drain degrees to zero and the drained states are absorbing.
  p.config = SendForgetConfig{.view_size = 8, .min_degree = 2};
  p.loss = 0.25;
  p.initial = g;
  const auto r = build_global_mc(p);
  ASSERT_TRUE(r.exploration_complete);
  EXPECT_TRUE(r.strongly_connected);
  EXPECT_TRUE(r.stationary.converged);
}

TEST(GlobalMc, LossyChainUniformEdgePresenceBySymmetry) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 0);
  GlobalMcParams p;
  p.config = SendForgetConfig{.view_size = 8, .min_degree = 2};
  p.loss = 0.2;
  p.initial = g;
  const auto r = build_global_mc(p);
  ASSERT_TRUE(r.exploration_complete);
  ASSERT_TRUE(r.stationary.converged);
  // Lemma 7.6 under loss: uniform presence of every v != u (here, both
  // ordered pairs by the node symmetry of the chain).
  EXPECT_LT(r.edge_presence_spread, 1e-6);
}

TEST(GlobalMc, LossChangesStateSpaceButKeepsDegreesEvenAndBounded) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 0);
  GlobalMcParams p;
  p.config = SendForgetConfig{.view_size = 8, .min_degree = 2};
  p.loss = 0.1;
  p.initial = g;
  const auto r = build_global_mc(p);
  ASSERT_TRUE(r.exploration_complete);
  for (const auto& state : r.states) {
    for (const auto& view : state) {
      EXPECT_EQ(view.size() % 2, 0u);
      EXPECT_GE(view.size(), 2u);  // dL = 2, started at 2
      EXPECT_LE(view.size(), 8u);
    }
  }
}

TEST(GlobalMc, ExplorationCapIsRespected) {
  Digraph g(3);
  for (NodeId u = 0; u < 3; ++u) {
    g.add_edge(u, (u + 1) % 3);
    g.add_edge(u, (u + 2) % 3);
  }
  GlobalMcParams p;
  p.config = SendForgetConfig{.view_size = 8, .min_degree = 2};
  p.loss = 0.1;
  p.initial = g;
  p.max_states = 500;
  const auto r = build_global_mc(p);
  EXPECT_FALSE(r.exploration_complete);
  // The cap is checked between state expansions, so the final count can
  // exceed it by at most one state's out-neighborhood.
  EXPECT_LE(r.states.size(), 600u);
}

}  // namespace
}  // namespace gossip::analysis
