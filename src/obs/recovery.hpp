// RecoveryTracker: degradation-window detection and time-to-recover
// measurement for chaos runs.
//
// The paper's guarantees are steady-state statements; a fault plane (or a
// real outage) pushes the overlay out of that steady state on purpose. The
// tracker watches four *lanes* at every quiescent probe and classifies the
// overlay as in or out of band:
//
//   degree        the mean outdegree collapses more than `degree_drop`
//                 below its last calm baseline (loss spikes push the
//                 degree distribution down toward dL — §6.2's stationary
//                 mean falls with ℓ), or the structural Obs 5.1 band
//                 [dL, s] / even-ness is violated for more than a sliver
//                 of live nodes.
//   connectivity  the largest weakly-connected component of the view
//                 graph covers less than `min_component_fraction` of live
//                 nodes (partition isolation). Note this is a *lagging*
//                 indicator: a group cut keeps stale cross-edges until
//                 S&F washes them out, and a fully decoupled overlay
//                 cannot re-merge (S&F has no discovery), so scenarios
//                 must heal cuts before washout completes.
//   watchdog      the InvariantWatchdog logged new violations since the
//                 previous probe.
//   oracle        the DriftMonitor's worst state is not OK, or its latest
//                 probe carries a score past the warn threshold (this
//                 also sees *expected* probes, so declared fault windows
//                 still register as degradation to be recovered from).
//
// Declared fault windows ([begin, end) + label, mirroring the
// FaultSchedule) anchor the measurement: for each window the tracker
// reports whether the overlay degraded and the number of rounds from the
// heal point (`end`) to the first probe with every lane back in band —
// the recovery time bench_report --chaos gates on. Out-of-band probes not
// covered by any declared window open an *undeclared* episode (measured
// from its own first degraded probe).
//
// Pure observer: draws no RNG, mutates no protocol state. Exports
// recovery_* registry gauges and stamps fault/recovery annotations onto an
// attached RoundTimeSeries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/node_id.hpp"
#include "core/flat_send_forget.hpp"
#include "obs/oracle/drift_monitor.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "obs/watchdog.hpp"

namespace gossip::obs {

enum class RecoveryLane : std::uint8_t {
  kDegree = 0,
  kConnectivity,
  kWatchdog,
  kOracle,
  kLaneCount,
};

[[nodiscard]] const char* recovery_lane_name(RecoveryLane lane);

struct RecoveryConfig {
  std::size_t min_degree = 0;  // dL
  std::size_t view_size = 0;   // s
  // Degree lane trips when more than this fraction of live nodes violates
  // the structural Obs 5.1 band (odd outdegree, or below dL post-warmup).
  double max_structural_fraction = 0.01;
  // Degree lane trips when the mean outdegree falls more than degree_drop
  // below the last calm baseline; it re-enters band within degree_recover
  // of the baseline (hysteresis so a hovering mean does not flap).
  double degree_drop = 1.0;
  double degree_recover = 0.6;
  // Absolute degradation floor for the mean outdegree, as a fraction of the
  // FIRST calm baseline (0 disables). The relative dip signal above chases
  // the calm baseline between excursions, so a decay slow enough to stay
  // within degree_drop of the moving baseline — a 20% mass kill bleeding
  // stale ids out over hundreds of rounds — never trips it (the
  // boiling-frog blind spot). The floor is pinned once, at the first
  // baseline-eligible probe, and trips whenever the mean falls below
  // floor_fraction * that value, however slowly it got there. Re-enters
  // band (degree_drop - degree_recover) above the floor (same hysteresis
  // gap as the dip signal).
  double degree_floor_fraction = 0.0;
  // Connectivity lane trips when the largest weak component of the view
  // graph covers less than this fraction of live nodes.
  double min_component_fraction = 0.995;
  // Probes before this round never trip (bootstrap transient) and never
  // update the calm baseline.
  std::uint64_t warmup_rounds = 100;
};

// One degradation episode: a declared fault window, or an undeclared
// out-of-band excursion.
struct RecoveryEpisode {
  std::string label;     // declared window label, or "undeclared"
  bool declared = false;
  std::uint64_t begin = 0;  // window begin / first degraded probe
  std::uint64_t heal = 0;   // window end (first healed round) / == begin
  bool degraded = false;    // any lane left band during the episode
  std::uint32_t lanes = 0;  // bitmask over RecoveryLane of lanes that tripped
  bool recovered = false;
  std::uint64_t recovered_round = 0;  // first fully in-band probe >= heal

  // Rounds from the heal point to the first fully in-band probe; 0 when
  // the overlay never left band or was back by the first post-heal probe.
  [[nodiscard]] std::uint64_t recovery_rounds() const {
    return recovered && recovered_round > heal ? recovered_round - heal : 0;
  }
};

class RecoveryTracker {
 public:
  explicit RecoveryTracker(RecoveryConfig config);

  [[nodiscard]] const RecoveryConfig& config() const { return config_; }

  // Declares a scripted fault window (call before the run; typically one
  // per FaultPhase). Windows may overlap.
  void declare_window(std::uint64_t begin, std::uint64_t end,
                      std::string label);

  // Mirrors episode transitions ("fault:<label>:begin", ":heal",
  // "recovered:<label>", "degraded:undeclared") onto the series.
  void attach_series(RoundTimeSeries* series) { series_ = series; }

  // Exports recovery_degraded_lanes / recovery_episodes /
  // recovery_unrecovered / recovery_last_rounds gauges, written on `shard`.
  // Same registration-ordering caveat as TheoryOracle::bind_registry.
  void bind_registry(MetricsRegistry* registry, std::size_t shard);

  // One quiescent probe. `cluster` may be null (connectivity lane stays in
  // band); `watchdog` / `monitor` likewise gate their lanes. Draws no RNG.
  void observe(std::uint64_t round, const FlatClusterProbe& probe,
               const FlatSendForgetCluster* cluster,
               const InvariantWatchdog* watchdog, const DriftMonitor* monitor);

  // Bitmask over RecoveryLane of lanes out of band at the last probe.
  [[nodiscard]] std::uint32_t degraded_lanes() const {
    return degraded_lanes_;
  }
  [[nodiscard]] bool in_band() const { return degraded_lanes_ == 0; }
  // Episodes in declaration order (declared windows first, then undeclared
  // excursions as they opened). Windows the run never reached stay
  // !degraded && !recovered.
  [[nodiscard]] const std::vector<RecoveryEpisode>& episodes() const {
    return episodes_;
  }
  [[nodiscard]] const RecoveryEpisode* episode(const std::string& label) const;
  // Episodes past their heal point whose lanes never returned to band.
  [[nodiscard]] std::size_t unrecovered() const;
  // Largest-component fraction at the last probe (1.0 before any).
  [[nodiscard]] double component_fraction() const {
    return component_fraction_;
  }
  [[nodiscard]] double baseline_mean_degree() const { return baseline_mean_; }
  // The pinned absolute floor (0.0 until the first calm baseline, or when
  // degree_floor_fraction is 0).
  [[nodiscard]] double degree_floor() const {
    return have_floor_ ? floor_value_ : 0.0;
  }

  [[nodiscard]] std::string report() const;
  // {"episodes":[{...}],"degraded_lanes":..,"unrecovered":..}
  void write_json(std::ostream& out) const;

 private:
  [[nodiscard]] std::uint32_t evaluate_lanes(
      std::uint64_t round, const FlatClusterProbe& probe,
      const FlatSendForgetCluster* cluster, const InvariantWatchdog* watchdog,
      const DriftMonitor* monitor);
  [[nodiscard]] double largest_component_fraction(
      const FlatSendForgetCluster& cluster);
  void annotate(std::uint64_t round, std::string label);

  RecoveryConfig config_;
  std::vector<RecoveryEpisode> episodes_;
  std::size_t declared_count_ = 0;
  // Per-declared-window probe bookkeeping (parallel to episodes_ prefix).
  std::vector<std::uint8_t> window_begun_;   // begin annotation emitted
  std::vector<std::uint8_t> window_healed_;  // heal annotation emitted
  std::int64_t open_undeclared_ = -1;        // index into episodes_, -1 none

  std::uint32_t degraded_lanes_ = 0;
  bool degree_mean_out_ = false;  // hysteresis state of the mean-dip signal
  double baseline_mean_ = 0.0;
  bool have_baseline_ = false;
  bool floor_out_ = false;  // hysteresis state of the absolute-floor signal
  double floor_value_ = 0.0;
  bool have_floor_ = false;
  double component_fraction_ = 1.0;
  std::uint64_t last_watchdog_violations_ = 0;

  // Union-find scratch for the connectivity lane.
  std::vector<std::uint32_t> uf_parent_;
  std::vector<std::uint32_t> uf_size_;

  RoundTimeSeries* series_ = nullptr;
  MetricsRegistry* registry_ = nullptr;
  std::size_t registry_shard_ = 0;
  GaugeId degraded_gauge_{};
  GaugeId episodes_gauge_{};
  GaugeId unrecovered_gauge_{};
  GaugeId last_rounds_gauge_{};
};

}  // namespace gossip::obs
