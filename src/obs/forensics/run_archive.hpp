// RunArchive: one run's post-mortem artifacts, loaded back into memory.
//
// A chaos (or simulate) run leaves up to three artifacts behind:
//
//   *.sffr    the flight recorder's per-shard event rings (FlightTrace)
//   *.jsonl   the sfgossip.snapshot/v1 delta-encoded metric stream
//   *.json    the `sfgossip chaos --json` report (recovery episodes,
//             drift-monitor transitions, oracle prediction)
//
// The readers here reverse each writer exactly: SnapshotSurface re-applies
// the JSONL deltas onto the first full record to rebuild a time-indexed
// metric surface (cumulative counter values, gauge values, and histogram
// quantiles per snapshot round), and ChaosLog pulls the episode list and
// the monitor's VIOLATION transitions out of the report JSON. RunArchive
// bundles all three for the CausalIndex / RootCauseAttributor downstream.
// Everything is read-only and deterministic: iteration order is source
// order, never a hash map walk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/forensics/json.hpp"
#include "obs/oracle/flight_recorder.hpp"

namespace gossip::obs::forensics {

struct SurfaceHistogram {
  double total = 0.0;
  double delta = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// The snapshot stream rebuilt as a dense (snapshot x metric) surface.
class SnapshotSurface {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // Parses a sfgossip.snapshot/v1 JSONL stream (header line + snapshot
  // records). Returns false and leaves *this empty on malformed input;
  // see last_error().
  bool load(std::istream& in);
  bool load_file(const std::string& path);
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

  [[nodiscard]] std::uint64_t snapshot_stride() const { return stride_; }
  [[nodiscard]] std::size_t size() const { return rounds_.size(); }
  [[nodiscard]] bool empty() const { return rounds_.empty(); }
  [[nodiscard]] std::uint64_t round_at(std::size_t i) const {
    return rounds_[i];
  }
  [[nodiscard]] std::uint64_t first_round() const {
    return rounds_.empty() ? 0 : rounds_.front();
  }
  [[nodiscard]] std::uint64_t last_round() const {
    return rounds_.empty() ? 0 : rounds_.back();
  }

  [[nodiscard]] const std::vector<std::string>& counter_names() const {
    return counter_names_;
  }
  [[nodiscard]] const std::vector<std::string>& gauge_names() const {
    return gauge_names_;
  }
  [[nodiscard]] const std::vector<std::string>& histogram_names() const {
    return histogram_names_;
  }

  [[nodiscard]] bool has_counter(std::string_view name) const;
  [[nodiscard]] bool has_gauge(std::string_view name) const;

  // Cumulative counter / gauge value at snapshot `i` (carry-forward across
  // delta-encoded records that omitted the metric); 0 for unknown names.
  [[nodiscard]] double counter_at(std::size_t i, std::string_view name) const;
  [[nodiscard]] double gauge_at(std::size_t i, std::string_view name) const;
  // nullptr for unknown names.
  [[nodiscard]] const SurfaceHistogram* histogram_at(
      std::size_t i, std::string_view name) const;

  // Index of the last snapshot with round <= `round`; npos when the stream
  // starts after it.
  [[nodiscard]] std::size_t index_at_round(std::uint64_t round) const;
  // Index of the first snapshot with round >= `round`; npos when the
  // stream ends before it.
  [[nodiscard]] std::size_t index_from_round(std::uint64_t round) const;

  // Counter increase between the snapshots bracketing [begin, end]: value
  // at the last snapshot <= end minus value at the last snapshot <= begin
  // (0 when the window misses the stream).
  [[nodiscard]] double counter_window_delta(std::string_view name,
                                            std::uint64_t begin,
                                            std::uint64_t end) const;
  // Min / max gauge value over snapshots with round in [begin, end]
  // (fallback when the window misses the stream).
  [[nodiscard]] double gauge_window_min(std::string_view name,
                                        std::uint64_t begin,
                                        std::uint64_t end,
                                        double fallback = 0.0) const;
  [[nodiscard]] double gauge_window_max(std::string_view name,
                                        std::uint64_t begin,
                                        std::uint64_t end,
                                        double fallback = 0.0) const;

 private:
  bool fail(const std::string& message);
  [[nodiscard]] std::size_t counter_index(std::string_view name) const;
  [[nodiscard]] std::size_t gauge_index(std::string_view name) const;
  [[nodiscard]] std::size_t histogram_index(std::string_view name) const;

  std::uint64_t stride_ = 1;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<std::uint64_t> rounds_;  // per snapshot, ascending
  std::vector<std::uint64_t> seqs_;
  // Row-major surfaces: snapshot i x metric j.
  std::vector<std::vector<double>> counter_rows_;
  std::vector<std::vector<double>> gauge_rows_;
  std::vector<std::vector<SurfaceHistogram>> histogram_rows_;
  std::string last_error_;
};

// One recovery episode from the chaos report.
struct EpisodeRecord {
  std::string label;
  bool declared = false;
  std::uint64_t begin = 0;
  std::uint64_t heal = 0;
  bool degraded = false;
  std::vector<std::string> lanes;
  bool recovered = false;
  std::uint64_t recovered_round = 0;
  std::uint64_t recovery_rounds = 0;
};

// One DriftMonitor escalation to VIOLATION.
struct OracleViolationRecord {
  std::uint64_t round = 0;
  std::string check;  // drift_check_name: "degree_out", ...
  std::string from;   // prior state
  double score = 0.0;
};

// One InvariantWatchdog log entry (optional "watchdog" report section).
struct WatchdogTripRecord {
  std::string kind;
  std::uint64_t round = 0;
  std::int64_t node = -1;
};

// The `sfgossip chaos --json` report, reduced to what attribution needs.
class ChaosLog {
 public:
  // Accepts the chaos top-level shape ({"recovery": ..., "oracle": ...})
  // or a bare RecoveryTracker JSON ({"episodes": [...]}).
  bool load(std::istream& in);
  bool load_file(const std::string& path);
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

  [[nodiscard]] const std::string& scenario() const { return scenario_; }
  [[nodiscard]] const std::vector<EpisodeRecord>& episodes() const {
    return episodes_;
  }
  [[nodiscard]] std::size_t unrecovered() const { return unrecovered_; }
  [[nodiscard]] double baseline_mean_degree() const { return baseline_mean_; }

  [[nodiscard]] bool has_oracle() const { return has_oracle_; }
  // The oracle's configured loss rate (the declared baseline the drift
  // checks judge against); 0 without an oracle section.
  [[nodiscard]] double predicted_loss() const { return predicted_loss_; }
  [[nodiscard]] const std::vector<OracleViolationRecord>& violations() const {
    return violations_;
  }
  [[nodiscard]] const std::vector<WatchdogTripRecord>& watchdog_trips() const {
    return watchdog_trips_;
  }

 private:
  bool fail(const std::string& message);
  bool load_value(const JsonValue& root);

  std::string scenario_;
  std::vector<EpisodeRecord> episodes_;
  std::size_t unrecovered_ = 0;
  double baseline_mean_ = 0.0;
  bool has_oracle_ = false;
  double predicted_loss_ = 0.0;
  std::vector<OracleViolationRecord> violations_;
  std::vector<WatchdogTripRecord> watchdog_trips_;
  std::string last_error_;
};

// The unified archive: any subset of the three artifacts may be present.
class RunArchive {
 public:
  [[nodiscard]] bool has_trace() const { return has_trace_; }
  [[nodiscard]] bool has_snapshots() const { return has_snapshots_; }
  [[nodiscard]] bool has_chaos() const { return has_chaos_; }

  [[nodiscard]] const FlightTrace& trace() const { return trace_; }
  [[nodiscard]] const SnapshotSurface& snapshots() const { return surface_; }
  [[nodiscard]] const ChaosLog& chaos() const { return chaos_; }

  // Each loader returns false and sets *error (when non-null) on failure;
  // previously loaded artifacts are unaffected.
  bool load_trace(std::istream& in, std::string* error);
  bool load_trace_file(const std::string& path, std::string* error);
  bool load_snapshots(std::istream& in, std::string* error);
  bool load_snapshots_file(const std::string& path, std::string* error);
  bool load_chaos(std::istream& in, std::string* error);
  bool load_chaos_file(const std::string& path, std::string* error);

 private:
  FlightTrace trace_;
  SnapshotSurface surface_;
  ChaosLog chaos_;
  bool has_trace_ = false;
  bool has_snapshots_ = false;
  bool has_chaos_ = false;
};

}  // namespace gossip::obs::forensics
