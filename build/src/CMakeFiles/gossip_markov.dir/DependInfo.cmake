
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/dtmc.cpp" "src/CMakeFiles/gossip_markov.dir/markov/dtmc.cpp.o" "gcc" "src/CMakeFiles/gossip_markov.dir/markov/dtmc.cpp.o.d"
  "/root/repo/src/markov/matrix.cpp" "src/CMakeFiles/gossip_markov.dir/markov/matrix.cpp.o" "gcc" "src/CMakeFiles/gossip_markov.dir/markov/matrix.cpp.o.d"
  "/root/repo/src/markov/sparse_chain.cpp" "src/CMakeFiles/gossip_markov.dir/markov/sparse_chain.cpp.o" "gcc" "src/CMakeFiles/gossip_markov.dir/markov/sparse_chain.cpp.o.d"
  "/root/repo/src/markov/stationary.cpp" "src/CMakeFiles/gossip_markov.dir/markov/stationary.cpp.o" "gcc" "src/CMakeFiles/gossip_markov.dir/markov/stationary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gossip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
