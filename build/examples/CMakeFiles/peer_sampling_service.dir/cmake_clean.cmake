file(REMOVE_RECURSE
  "CMakeFiles/peer_sampling_service.dir/peer_sampling_service.cpp.o"
  "CMakeFiles/peer_sampling_service.dir/peer_sampling_service.cpp.o.d"
  "peer_sampling_service"
  "peer_sampling_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_sampling_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
