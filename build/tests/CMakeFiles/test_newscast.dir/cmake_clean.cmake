file(REMOVE_RECURSE
  "CMakeFiles/test_newscast.dir/test_newscast.cpp.o"
  "CMakeFiles/test_newscast.dir/test_newscast.cpp.o.d"
  "test_newscast"
  "test_newscast.pdb"
  "test_newscast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_newscast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
