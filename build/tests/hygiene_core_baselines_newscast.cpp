#include "core/baselines/newscast.hpp"
#include "core/baselines/newscast.hpp"
