// Reproduces §6.5.3 / Corollary 6.14: a node joining a steady-state system
// with outdegree dL and indegree 0 is expected to create at least
// (dL/s)^2 * Din instances of its id within s^2/((1-l-d) dL) rounds —
// for s/dL ≈ 2, that is ≈ Din/4 within ≈ 2s rounds.
//
// The bench prints the analytical floor and the measured joiner indegree
// trajectory from simulation, per loss rate.
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/decay.hpp"
#include "analysis/degree_mc.hpp"
#include "bench_util.hpp"
#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "graph/graph_stats.hpp"
#include "sim/churn.hpp"
#include "sim/round_driver.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::bench;

  print_header("§6.5 / Corollary 6.14 — integration of joining nodes "
               "(dL=18, s=40)");

  const std::vector<double> losses = {0.0, 0.01, 0.05, 0.1};
  for (const double l : losses) {
    analysis::DecayParams decay{
        .view_size = 40, .min_degree = 18, .loss = l, .delta = 0.01};
    const double window = analysis::joiner_integration_rounds(decay);

    Rng rng(500 + static_cast<std::uint64_t>(l * 1000));
    constexpr std::size_t kN = 1000;
    auto factory = [](NodeId id) {
      return std::make_unique<SendForget>(id, default_send_forget_config());
    };
    sim::Cluster cluster(kN, factory);
    cluster.install_graph(permutation_regular(kN, 10, rng));
    sim::UniformLoss loss(l);
    sim::RoundDriver driver(cluster, loss, rng);
    driver.run_rounds(400);
    const double din = degree_summary(cluster.snapshot()).in_mean;

    constexpr int kJoiners = 40;
    std::vector<NodeId> joiners;
    for (int j = 0; j < kJoiners; ++j) {
      joiners.push_back(sim::join_node(cluster, factory, 18, rng));
    }
    print_subheader("loss = " + std::to_string(l).substr(0, 4));
    print_kv("steady-state mean indegree Din", din);
    print_kv("integration window (rounds, Lemma 6.13)", window);
    print_kv("paper floor (dL/s)^2 * Din",
             analysis::joiner_instances_fraction(decay) * din);

    // Transient degree-MC prediction from state (dL, 0), §6.5.
    analysis::DegreeMcParams mc_params;
    mc_params.view_size = 40;
    mc_params.min_degree = 18;
    mc_params.loss = l;
    const auto trajectory = analysis::joiner_degree_trajectory(
        mc_params, static_cast<std::size_t>(window * 2) + 1);

    std::printf("  %10s  %14s %14s  %14s %14s\n", "round", "sim indeg",
                "MC indeg", "sim outdeg", "MC outdeg");
    std::uint64_t done = 0;
    for (const double frac : {0.25, 0.5, 1.0, 2.0}) {
      const auto target = static_cast<std::uint64_t>(window * frac);
      driver.run_rounds(target - done);
      done = target;
      const auto g = cluster.snapshot();
      double in_total = 0.0;
      double out_total = 0.0;
      for (const NodeId j : joiners) {
        in_total += static_cast<double>(g.in_degree(j));
        out_total += static_cast<double>(g.out_degree(j));
      }
      const auto idx = std::min<std::size_t>(target,
                                             trajectory.expected_in.size() - 1);
      std::printf("  %10llu  %14.2f %14.2f  %14.2f %14.2f\n",
                  static_cast<unsigned long long>(target),
                  in_total / kJoiners, trajectory.expected_in[idx],
                  out_total / kJoiners, trajectory.expected_out[idx]);
    }
  }
  print_note("paper: within ~2s = 80-90 rounds the joiner creates >= Din/4 "
             "id instances, after which it engages efficiently (outdegree "
             "rises above dL).");
  return 0;
}
