
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/churn.cpp" "src/CMakeFiles/gossip_sim.dir/sim/churn.cpp.o" "gcc" "src/CMakeFiles/gossip_sim.dir/sim/churn.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/CMakeFiles/gossip_sim.dir/sim/cluster.cpp.o" "gcc" "src/CMakeFiles/gossip_sim.dir/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/event_driver.cpp" "src/CMakeFiles/gossip_sim.dir/sim/event_driver.cpp.o" "gcc" "src/CMakeFiles/gossip_sim.dir/sim/event_driver.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/gossip_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/gossip_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/loss.cpp" "src/CMakeFiles/gossip_sim.dir/sim/loss.cpp.o" "gcc" "src/CMakeFiles/gossip_sim.dir/sim/loss.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/gossip_sim.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/gossip_sim.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/round_driver.cpp" "src/CMakeFiles/gossip_sim.dir/sim/round_driver.cpp.o" "gcc" "src/CMakeFiles/gossip_sim.dir/sim/round_driver.cpp.o.d"
  "/root/repo/src/sim/session_churn.cpp" "src/CMakeFiles/gossip_sim.dir/sim/session_churn.cpp.o" "gcc" "src/CMakeFiles/gossip_sim.dir/sim/session_churn.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/gossip_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/gossip_sim.dir/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gossip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gossip_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gossip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
