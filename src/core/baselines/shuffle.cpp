#include "core/baselines/shuffle.hpp"

#include <cassert>

namespace gossip {

Shuffle::Shuffle(NodeId self, const ShuffleConfig& config)
    : PeerProtocol(self, config.view_size), config_(config) {}

void Shuffle::on_initiate(Rng& rng, Transport& transport) {
  auto& view = mutable_view();
  auto& metrics = mutable_metrics();
  ++metrics.actions_initiated;

  if (view.degree() == 0) {
    ++metrics.self_loop_actions;
    return;
  }

  // Partner: the id in a random nonempty slot. That slot is always part of
  // the exchanged batch (the edge to the partner is consumed).
  const std::size_t partner_slot = view.random_nonempty_slot(rng);
  const NodeId partner = view.entry(partner_slot).id;

  Message request;
  request.from = self();
  request.to = partner;
  request.kind = MessageKind::kShuffleRequest;

  request.payload.push_back(view.entry(partner_slot));
  view.clear(partner_slot);
  while (request.payload.size() < config_.shuffle_length &&
         view.degree() > 0) {
    const std::size_t slot = view.random_nonempty_slot(rng);
    request.payload.push_back(view.entry(slot));
    view.clear(slot);
  }
  if (config_.send_self && !request.payload.empty()) {
    // Replace the consumed edge-to-partner with the initiator's own id
    // (reinforcement): the partner learns about u, not about itself.
    request.payload.front() = ViewEntry{self(), false};
  }

  transport.send(std::move(request));
  ++metrics.messages_sent;
}

void Shuffle::on_message(const Message& message, Rng& rng,
                         Transport& transport) {
  auto& metrics = mutable_metrics();
  ++metrics.messages_received;
  auto& view = mutable_view();

  // Trust boundary: ignore kinds this protocol does not speak.
  if (message.kind != MessageKind::kShuffleRequest &&
      message.kind != MessageKind::kShuffleReply) {
    return;
  }
  if (message.kind == MessageKind::kShuffleReply) {
    absorb(message.payload, rng);
    return;
  }
  // Remove an equally sized batch from our view and send it back, then
  // store what we received. Entries sent in the reply are deleted here —
  // if the reply is lost, they are gone (the baseline's weakness).
  Message reply;
  reply.from = self();
  reply.to = message.from;
  reply.kind = MessageKind::kShuffleReply;
  for (std::size_t k = 0; k < message.payload.size() && view.degree() > 0;
       ++k) {
    const std::size_t slot = view.random_nonempty_slot(rng);
    reply.payload.push_back(view.entry(slot));
    view.clear(slot);
  }
  absorb(message.payload, rng);
  transport.send(std::move(reply));
  ++metrics.messages_sent;
}

void Shuffle::absorb(const std::vector<ViewEntry>& entries, Rng& rng) {
  // The exchange is an exact swap ([26, 27] operate on multigraphs where
  // self-loops are legal): every received entry is stored, so with no
  // loss the total number of id instances in the system is conserved —
  // the property the paper contrasts against loss-induced decay.
  auto& view = mutable_view();
  auto& metrics = mutable_metrics();
  bool dropped = false;
  for (ViewEntry entry : entries) {
    if (entry.empty()) continue;  // malformed input: skip
    if (view.full()) {
      dropped = true;
      break;
    }
    if (entry.id == self()) entry.dependent = true;  // self-edge (§2)
    view.set(view.random_empty_slot(rng), entry);
    ++metrics.ids_accepted;
  }
  if (dropped) ++metrics.deletions;
}

}  // namespace gossip
