#include "sampling/random_walk.hpp"

#include <cmath>

namespace gossip::sampling {

RandomWalkSampler::RandomWalkSampler(const sim::Cluster& cluster,
                                     sim::LossModel& loss,
                                     RandomWalkConfig config)
    : cluster_(cluster), loss_(loss), config_(config) {}

std::optional<NodeId> RandomWalkSampler::sample(NodeId origin, Rng& rng) {
  ++stats_.attempted;
  NodeId holder = origin;
  for (std::size_t hop = 0; hop < config_.walk_length; ++hop) {
    const auto& view = cluster_.node(holder).view();
    if (view.degree() == 0) {
      ++stats_.stalled;
      return std::nullopt;
    }
    const NodeId next = view.entry(view.random_nonempty_slot(rng)).id;
    // The token is one message; a drop kills the whole walk — there is no
    // retransmission without bookkeeping (§4.1).
    if (loss_.drop(rng)) return std::nullopt;
    if (next >= cluster_.size() || !cluster_.live(next)) return std::nullopt;
    holder = next;
  }
  if (config_.reply_required && loss_.drop(rng)) return std::nullopt;
  ++stats_.completed;
  return holder;
}

double walk_success_probability(std::size_t walk_length, bool reply_required,
                                double loss) {
  const auto messages =
      static_cast<double>(walk_length + (reply_required ? 1 : 0));
  return std::pow(1.0 - loss, messages);
}

}  // namespace gossip::sampling
