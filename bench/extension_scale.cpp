// Extension: scale check. The analysis holds for "arbitrary n >> s"; this
// bench runs the full simulator with loss and churn and reports wall-clock
// throughput plus the same health metrics as the small benches.
//
// Part 1 is the serialized RoundDriver (the paper's analysis model) at
// 10k-50k nodes. Part 2 is the sharded flat-storage driver at 50k-1M nodes,
// single- and multi-threaded — demonstrating that mean-field-scale studies
// (n >= 10^5-10^6, where refined mean-field analyses become checkable
// against simulation) are within reach of this implementation.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/flat_send_forget.hpp"
#include "core/send_forget.hpp"
#include "graph/connectivity.hpp"
#include "graph/digraph.hpp"
#include "graph/graph_gen.hpp"
#include "graph/graph_stats.hpp"
#include "sim/churn.hpp"
#include "sim/round_driver.hpp"
#include "sim/sharded_driver.hpp"

namespace {

using namespace gossip;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Live-only indegree mean/sd over a snapshot's edges.
struct InDegreeStats {
  double mean = 0.0;
  double sd = 0.0;
};

InDegreeStats live_indegree_stats(const std::vector<std::size_t>& live_in,
                                  const std::vector<NodeId>& live) {
  double mean = 0.0;
  double m2 = 0.0;
  std::size_t count = 0;
  for (const NodeId u : live) {
    const double x = static_cast<double>(live_in[u]);
    ++count;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
  }
  return {mean, std::sqrt(m2 / static_cast<double>(count))};
}

double run_sequential(std::size_t n) {
  using namespace gossip::bench;
  Rng rng(7 + n);
  const auto factory = [](NodeId id) {
    return std::make_unique<SendForget>(id, default_send_forget_config());
  };
  sim::Cluster cluster(n, factory);
  cluster.install_graph(permutation_regular(n, 10, rng));
  sim::UniformLoss loss(0.02);
  sim::RoundDriver driver(cluster, loss, rng);
  sim::ChurnProcess churn(cluster, factory, 18, /*join_rate=*/1.0,
                          /*leave_rate=*/1.0, /*min_live=*/n / 2);

  const std::size_t rounds = 200;
  const auto start = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    churn.maybe_churn(rng);
    driver.run_rounds(1);
  }
  const double elapsed = seconds_since(start);

  std::vector<std::size_t> live_in(cluster.size(), 0);
  const auto live = cluster.live_nodes();
  for (const NodeId u : live) {
    for (const NodeId v : cluster.node(u).view().ids()) {
      if (v < live_in.size()) ++live_in[v];
    }
  }
  const auto stats = live_indegree_stats(live_in, live);
  const auto snap = cluster.snapshot();
  const double aps =
      static_cast<double>(driver.actions_executed()) / elapsed;
  std::printf("%8zu %8zu %7s | %10.2f %9.2f %7zu%% %6s | %14.3g\n", n, rounds,
              "seq", stats.mean, stats.sd,
              100 * (churn.total_joins() + churn.total_leaves()) / (2 * rounds),
              is_weakly_connected_among(snap, cluster.liveness()) ? "yes"
                                                                  : "NO",
              aps);
  return aps;
}

double run_sharded(std::size_t n, std::size_t shards, std::size_t threads,
                   std::size_t rounds) {
  using namespace gossip::bench;
  Rng rng(7 + n);
  FlatSendForgetCluster cluster(n, default_send_forget_config(),
                                FlatClusterOptions{.init_threads = threads});
  {
    const Digraph g = permutation_regular(n, 10, rng);
    for (NodeId u = 0; u < n; ++u) {
      cluster.install_view(u, g.out_neighbors(u));
    }
  }
  // Logical shards are the determinism unit; threads are an execution knob.
  // shards > threads is the cache-residency configuration: each shard's
  // slab slice stays L2-resident through its initiate/drain phases.
  sim::ShardedDriver driver(
      cluster, sim::ShardedDriverConfig{.shard_count = shards,
                                        .thread_count = threads,
                                        .loss_rate = 0.02,
                                        .seed = 7 + n});

  // Rate-matched churn: ~1 leave + 1 rejoin per round, as in part 1.
  std::size_t churn_events = 0;
  std::vector<NodeId> dead;
  const auto start = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    Rng& crng = driver.churn_rng();
    const auto victim = static_cast<NodeId>(crng.uniform(n));
    if (cluster.live(victim) && cluster.live_count() > n / 2) {
      driver.kill(victim);
      dead.push_back(victim);
      ++churn_events;
    }
    if (!dead.empty() && crng.bernoulli(0.5)) {
      driver.revive(dead.back());
      dead.pop_back();
      ++churn_events;
    }
    driver.run_rounds(1);
  }
  const double elapsed = seconds_since(start);

  std::vector<std::size_t> live_in(n, 0);
  std::vector<NodeId> live;
  live.reserve(cluster.live_count());
  std::vector<bool> liveness(n, false);
  for (NodeId u = 0; u < n; ++u) {
    if (!cluster.live(u)) continue;
    live.push_back(u);
    liveness[u] = true;
    for (const NodeId v : cluster.view_ids(u)) ++live_in[v];
  }
  const auto stats = live_indegree_stats(live_in, live);

  Digraph snap(n);
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : cluster.view_ids(u)) snap.add_edge(u, v);
  }
  const double aps =
      static_cast<double>(driver.actions_executed()) / elapsed;
  std::printf("%8zu %8zu %4zus/%zut | %10.2f %9.2f %7zu%% %6s | %12.3g\n", n,
              rounds, shards, threads, stats.mean, stats.sd,
              100 * churn_events / (2 * rounds),
              is_weakly_connected_among(snap, liveness) ? "yes" : "NO", aps);
  return aps;
}

// Part 3: the 10M-node operating point. Seeded slot-by-slot from a
// circulant family (slot j of u = (u + j + 1) mod n — each offset a
// permutation, so the overlay starts dL-regular) because a Digraph's
// vector-of-vectors adjacency would dwarf the packed slab itself here.
// No snapshot either, for the same reason: health is summarized from a
// linear degree scan.
void run_sharded_huge(std::size_t n, std::size_t shards, std::size_t threads,
                      std::size_t rounds) {
  using namespace gossip::bench;
  const SendForgetConfig cfg = default_send_forget_config();
  FlatSendForgetCluster cluster(n, cfg,
                                FlatClusterOptions{.init_threads = threads});
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t j = 0; j < cfg.min_degree; ++j) {
      cluster.install_slot(u, j, static_cast<NodeId>((u + j + 1) % n));
    }
  }
  sim::ShardedDriver driver(
      cluster, sim::ShardedDriverConfig{.shard_count = shards,
                                        .thread_count = threads,
                                        .loss_rate = 0.02,
                                        .seed = 7 + n});
  const auto start = Clock::now();
  driver.run_rounds(rounds);
  const double elapsed = seconds_since(start);
  double mean = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    mean += static_cast<double>(cluster.degree(u));
  }
  mean /= static_cast<double>(n);
  const double aps =
      static_cast<double>(driver.actions_executed()) / elapsed;
  std::printf("%8zu %8zu %4zus/%zut | out-mean %6.2f | %12.3g actions/s\n", n,
              rounds, shards, threads, mean, aps);
}

}  // namespace

int main() {
  using namespace gossip::bench;

  print_header("Extension — scale 1: serialized driver at 10k-50k nodes");
  std::printf("%8s %8s %7s | %10s %9s %8s %6s | %14s\n", "n", "rounds", "drv",
              "in-mean", "in-sd", "churn", "conn", "actions/sec");
  double seq_50k = 0.0;
  for (const std::size_t n : {10'000u, 20'000u, 50'000u}) {
    seq_50k = run_sequential(n);
  }

  print_header("Extension — scale 2: sharded flat driver at 50k-1M nodes");
  std::printf("%8s %8s %9s | %10s %9s %8s %6s | %12s\n", "n", "rounds",
              "sh/thr", "in-mean", "in-sd", "churn", "conn", "actions/sec");
  const double flat_1t = run_sharded(50'000, 1, 1, 200);
  const double flat_32sh = run_sharded(50'000, 32, 1, 200);
  const double flat_4t = run_sharded(50'000, 4, 4, 200);
  run_sharded(200'000, 4, 4, 100);
  run_sharded(1'000'000, 64, 4, 30);

  std::printf("\n  sharded vs sequential at n=50k: 1 shard/1 thread %.2fx, "
              "32 shards/1 thread %.2fx, 4 shards/4 threads %.2fx\n",
              flat_1t / seq_50k, flat_32sh / seq_50k, flat_4t / seq_50k);

  print_header("Extension — scale 3: packed slab at 10M nodes");
  run_sharded_huge(10'000'000, 64, 4, 3);

  print_note("the flat-storage sharded driver removes per-action heap "
             "allocation, virtual dispatch and O(s) slot scans; 4-byte "
             "packed view entries halve the slab; runs are bit-reproducible "
             "for a fixed (seed, shard_count) at any thread count, and the "
             "overlay keeps the paper's shape up to n = 10^6 (M2 holds, "
             "live overlay connected, churned ids washed out).");
  return 0;
}
