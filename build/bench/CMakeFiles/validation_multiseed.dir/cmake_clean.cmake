file(REMOVE_RECURSE
  "CMakeFiles/validation_multiseed.dir/validation_multiseed.cpp.o"
  "CMakeFiles/validation_multiseed.dir/validation_multiseed.cpp.o.d"
  "validation_multiseed"
  "validation_multiseed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_multiseed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
