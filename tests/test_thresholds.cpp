#include "analysis/thresholds.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace gossip::analysis {
namespace {

TEST(Thresholds, PaperExample) {
  // §6.3: "for d_hat = 30 and delta = 0.01, dL should be set to 18 and s
  // to 40". Under eq. (6.1) exactly, P(d >= 40) = 0.025 > delta while
  // P(d >= 42) = 0.0086 <= delta, so the strict rule lands on s = 42; the
  // paper's s = 40 sits right at the tail boundary of its (slightly
  // lighter-tailed) numeric distribution. We accept the boundary pair.
  const auto sel = select_thresholds(30, 0.01);
  EXPECT_EQ(sel.min_degree, 18u);
  EXPECT_GE(sel.view_size, 40u);
  EXPECT_LE(sel.view_size, 42u);
  EXPECT_LE(sel.prob_at_or_below_min, 0.01);
  EXPECT_LE(sel.prob_at_or_above_max, 0.01);
  EXPECT_DOUBLE_EQ(sel.expected_out, 30.0);
}

TEST(Thresholds, ProtocolConstraintsFeasible) {
  // The selected pair must satisfy the protocol's requirements: even, and
  // dL <= s - 6.
  for (const std::size_t d_hat : {10u, 20u, 30u, 50u}) {
    const auto sel = select_thresholds(d_hat, 0.01);
    EXPECT_EQ(sel.min_degree % 2, 0u);
    EXPECT_EQ(sel.view_size % 2, 0u);
    EXPECT_LE(sel.min_degree + 6, sel.view_size) << "d_hat=" << d_hat;
    EXPECT_LT(sel.min_degree, d_hat + 1);
    EXPECT_GE(sel.view_size, d_hat);
  }
}

TEST(Thresholds, TighterDeltaWidensTheBand) {
  const auto loose = select_thresholds(30, 0.05);
  const auto tight = select_thresholds(30, 0.001);
  EXPECT_GE(loose.min_degree, tight.min_degree);
  EXPECT_LE(loose.view_size, tight.view_size);
  EXPECT_LT(tight.min_degree, loose.view_size);
}

TEST(Thresholds, TailProbabilitiesAreTight) {
  // Choosing dL + 2 or s - 2 would violate delta (maximality/minimality).
  const auto sel = select_thresholds(30, 0.01);
  // The reported tail at dL is the tail at the *chosen* threshold; pushing
  // the threshold inward by one even step must overshoot delta.
  EXPECT_GT(sel.prob_at_or_below_min, 0.0);
  EXPECT_GT(sel.prob_at_or_above_max, 0.0);
}

TEST(Thresholds, InvalidArguments) {
  EXPECT_THROW((void)(select_thresholds(0, 0.01)), std::invalid_argument);
  EXPECT_THROW((void)(select_thresholds(31, 0.01)), std::invalid_argument);
  EXPECT_THROW((void)(select_thresholds(30, 0.0)), std::invalid_argument);
  EXPECT_THROW((void)(select_thresholds(30, 0.5)), std::invalid_argument);
}

TEST(Thresholds, VerySmallDeltaMayBeInfeasible) {
  // For tiny systems the tails cannot go below extreme deltas.
  EXPECT_THROW((void)(select_thresholds(2, 1e-12)), std::runtime_error);
}

TEST(Thresholds, ValidationUnderLossCertifiesPaperSelection) {
  // The §6.3 selection is made from the *no-loss* analytical distribution;
  // Lemma 6.7 claims it keeps duplication within [ℓ, ℓ+δ] for every loss
  // rate. Certify that against the full §6.2 chain.
  const double delta = 0.01;
  // The paper's operating point. (select_thresholds(30, 0.01) lands on
  // s = 42 under eq. (6.1) exactly — see PaperExample above — so pin the
  // published pair here; the certificate is about the pair, not about the
  // selector.)
  ThresholdSelection sel;
  sel.min_degree = 18;
  sel.view_size = 40;
  const std::vector<double> losses{0.0, 0.05};
  const auto checks = validate_thresholds_under_loss(sel, delta, losses);
  ASSERT_EQ(checks.size(), losses.size());
  for (std::size_t i = 0; i < checks.size(); ++i) {
    EXPECT_DOUBLE_EQ(checks[i].loss, losses[i]);
    EXPECT_TRUE(checks[i].within_bound) << "loss=" << losses[i];
    // Lemma 6.6: dup = ℓ + del holds tightly in the steady state.
    EXPECT_LT(checks[i].balance_gap, 1e-4) << "loss=" << losses[i];
    EXPECT_GE(checks[i].deletion_probability, 0.0);
  }
}

TEST(Thresholds, ValidationAtTheLossBoundary) {
  // ℓ + δ < 1 is the chain's validity region. Exactly at the boundary the
  // sweep must refuse; just inside it must still produce a solution (the
  // Lemma 6.7 band is long gone at such ℓ, but the chain itself is fine).
  ThresholdSelection sel;
  sel.min_degree = 18;
  sel.view_size = 40;
  const double delta = 0.01;
  const std::vector<double> at_boundary{0.99};  // ℓ + δ == 1
  EXPECT_THROW((void)validate_thresholds_under_loss(sel, delta, at_boundary),
               std::invalid_argument);
  // The near-boundary chain mixes glacially (its drift vanishes as
  // ℓ + δ → 1), so solve the inside point on the reduced box to keep the
  // suite fast; the validity region does not depend on (s, dL).
  sel.min_degree = 8;
  sel.view_size = 20;
  const std::vector<double> inside{0.98};  // ℓ + δ = 0.99 < 1
  const auto checks = validate_thresholds_under_loss(sel, delta, inside);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_DOUBLE_EQ(checks[0].loss, 0.98);
  EXPECT_GE(checks[0].duplication_probability, 0.0);
  EXPECT_LE(checks[0].duplication_probability, 1.0);
  // Lemma 6.6 still balances even out here.
  EXPECT_LT(checks[0].balance_gap, 1e-3);
}

TEST(Thresholds, DegenerateMinDegreeEqualToViewSizeIsRejected) {
  // dL = s leaves no slack for the protocol's replacement moves; the §6.2
  // chain requires dL <= s - 6 and the validator must surface that rather
  // than silently solving a malformed chain.
  ThresholdSelection degenerate;
  degenerate.min_degree = 40;
  degenerate.view_size = 40;
  const std::vector<double> losses{0.05};
  EXPECT_THROW(
      (void)validate_thresholds_under_loss(degenerate, 0.01, losses),
      std::invalid_argument);
  // Just under the slack floor is equally malformed.
  degenerate.min_degree = 36;  // s - 4
  EXPECT_THROW(
      (void)validate_thresholds_under_loss(degenerate, 0.01, losses),
      std::invalid_argument);
  // The boundary itself (dL = s - 6) is a legal chain.
  degenerate.min_degree = 34;
  const auto checks =
      validate_thresholds_under_loss(degenerate, 0.01, losses);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_GE(checks[0].duplication_probability, 0.0);
}

TEST(Thresholds, SinglePointSweepMatchesTheMultiPointWarmStart) {
  // The validator warm-starts each loss point from the previous one. The
  // fixed point must not depend on that path: a single-ℓ sweep and the
  // matching entry of a multi-ℓ sweep agree to solver tolerance.
  ThresholdSelection sel;
  sel.min_degree = 18;
  sel.view_size = 40;
  const double delta = 0.01;
  const std::vector<double> multi{0.0, 0.02, 0.05, 0.10};
  const std::vector<double> single{0.05};
  const auto swept = validate_thresholds_under_loss(sel, delta, multi);
  const auto solo = validate_thresholds_under_loss(sel, delta, single);
  ASSERT_EQ(swept.size(), multi.size());
  ASSERT_EQ(solo.size(), 1u);
  const auto& warm = swept[2];
  EXPECT_NEAR(solo[0].duplication_probability, warm.duplication_probability,
              1e-9);
  EXPECT_NEAR(solo[0].deletion_probability, warm.deletion_probability, 1e-9);
  EXPECT_EQ(solo[0].within_bound, warm.within_bound);
}

TEST(Thresholds, ValidationUnderLossRejectsBadInput) {
  const auto sel = select_thresholds(30, 0.01);
  const std::vector<double> bad{0.995};  // ℓ + δ >= 1
  EXPECT_THROW((void)validate_thresholds_under_loss(sel, 0.01, bad),
               std::invalid_argument);
  ThresholdSelection broken;  // view_size = 0
  const std::vector<double> ok{0.0};
  EXPECT_THROW((void)validate_thresholds_under_loss(broken, 0.01, ok),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip::analysis
