#include "sim/network.hpp"
#include "sim/network.hpp"
