file(REMOVE_RECURSE
  "CMakeFiles/test_global_mc.dir/test_global_mc.cpp.o"
  "CMakeFiles/test_global_mc.dir/test_global_mc.cpp.o.d"
  "test_global_mc"
  "test_global_mc.pdb"
  "test_global_mc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_global_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
