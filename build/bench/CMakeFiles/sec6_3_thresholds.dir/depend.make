# Empty dependencies file for sec6_3_thresholds.
# This may be replaced when dependencies are built.
