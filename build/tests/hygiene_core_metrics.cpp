#include "core/metrics.hpp"
#include "core/metrics.hpp"
