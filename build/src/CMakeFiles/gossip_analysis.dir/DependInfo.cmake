
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/decay.cpp" "src/CMakeFiles/gossip_analysis.dir/analysis/decay.cpp.o" "gcc" "src/CMakeFiles/gossip_analysis.dir/analysis/decay.cpp.o.d"
  "/root/repo/src/analysis/degree_analytical.cpp" "src/CMakeFiles/gossip_analysis.dir/analysis/degree_analytical.cpp.o" "gcc" "src/CMakeFiles/gossip_analysis.dir/analysis/degree_analytical.cpp.o.d"
  "/root/repo/src/analysis/degree_mc.cpp" "src/CMakeFiles/gossip_analysis.dir/analysis/degree_mc.cpp.o" "gcc" "src/CMakeFiles/gossip_analysis.dir/analysis/degree_mc.cpp.o.d"
  "/root/repo/src/analysis/global_mc.cpp" "src/CMakeFiles/gossip_analysis.dir/analysis/global_mc.cpp.o" "gcc" "src/CMakeFiles/gossip_analysis.dir/analysis/global_mc.cpp.o.d"
  "/root/repo/src/analysis/independence.cpp" "src/CMakeFiles/gossip_analysis.dir/analysis/independence.cpp.o" "gcc" "src/CMakeFiles/gossip_analysis.dir/analysis/independence.cpp.o.d"
  "/root/repo/src/analysis/mixing.cpp" "src/CMakeFiles/gossip_analysis.dir/analysis/mixing.cpp.o" "gcc" "src/CMakeFiles/gossip_analysis.dir/analysis/mixing.cpp.o.d"
  "/root/repo/src/analysis/temporal.cpp" "src/CMakeFiles/gossip_analysis.dir/analysis/temporal.cpp.o" "gcc" "src/CMakeFiles/gossip_analysis.dir/analysis/temporal.cpp.o.d"
  "/root/repo/src/analysis/thresholds.cpp" "src/CMakeFiles/gossip_analysis.dir/analysis/thresholds.cpp.o" "gcc" "src/CMakeFiles/gossip_analysis.dir/analysis/thresholds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gossip_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gossip_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gossip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gossip_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
