# Empty compiler generated dependencies file for sec7_4_spatial_independence.
# This may be replaced when dependencies are built.
