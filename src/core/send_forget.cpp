#include "core/send_forget.hpp"

#include <cassert>
#include <stdexcept>

namespace gossip {

void SendForgetConfig::validate() const {
  if (view_size < 6) {
    throw std::invalid_argument("S&F requires view size s >= 6");
  }
  if (view_size % 2 != 0) {
    throw std::invalid_argument("S&F requires even view size s");
  }
  if (min_degree % 2 != 0) {
    throw std::invalid_argument("S&F requires even min degree dL");
  }
  if (min_degree + 6 > view_size) {
    throw std::invalid_argument("S&F requires dL <= s - 6");
  }
}

SendForgetConfig default_send_forget_config() {
  return SendForgetConfig{.view_size = 40, .min_degree = 18};
}

SendForget::SendForget(NodeId self, const SendForgetConfig& config)
    : PeerProtocol(self, config.view_size), config_(config) {
  config_.validate();
}

void SendForget::on_initiate(Rng& rng, Transport& transport) {
  auto& view = mutable_view();
  auto& metrics = mutable_metrics();
  ++metrics.actions_initiated;

  const auto [i, j] = rng.distinct_pair(view.capacity());
  if (view.slot_empty(i) || view.slot_empty(j)) {
    // "If either of them is empty, nothing happens" — a self-loop
    // transformation in the MC model.
    ++metrics.self_loop_actions;
    return;
  }

  const NodeId target = view.entry(i).id;  // v
  const ViewEntry carried = view.entry(j); // w

  const bool duplicate = view.degree() <= config_.min_degree;
  if (duplicate) {
    ++metrics.duplications;
  } else {
    view.clear(i);
    view.clear(j);
  }

  // The message [u, w]. Dependence tags implement the dependence MC of
  // Fig 7.1: ids sent *with* duplication are the newly created dependent
  // instances; ids sent *without* duplication move (and become/remain
  // representative, i.e. independent).
  Message message;
  message.from = self();
  message.to = target;
  message.kind = MessageKind::kPush;
  message.payload = {ViewEntry{self(), duplicate},
                     ViewEntry{carried.id, duplicate}};
  transport.send(std::move(message));
  ++metrics.messages_sent;
}

void SendForget::on_message(const Message& message, Rng& rng,
                            Transport& /*transport*/) {
  auto& metrics = mutable_metrics();
  ++metrics.messages_received;
  // Trust boundary: a malformed message (wrong kind, or a payload whose
  // size would break the even-degree invariant) is ignored outright.
  if (message.kind != MessageKind::kPush || message.payload.size() != 2 ||
      message.payload[0].empty() || message.payload[1].empty()) {
    return;
  }
  auto& view = mutable_view();

  if (view.full()) {
    // d(u) = s: the received ids are deleted.
    ++metrics.deletions;
    return;
  }
  // Outdegree is even (Obs 5.1) and capacity is even, so a non-full view
  // has at least two empty slots; stay robust anyway if a caller installed
  // an odd-degree initial view.
  assert(view.empty_slots() >= 2);
  for (ViewEntry entry : message.payload) {
    assert(!entry.empty());
    if (view.full()) {
      ++metrics.deletions;
      break;
    }
    // A received copy of our own id forms a self-edge; the paper labels all
    // self-edges dependent (§2).
    if (entry.id == self()) entry.dependent = true;
    view.set(view.random_empty_slot(rng), entry);
    ++metrics.ids_accepted;
  }
}

}  // namespace gossip
