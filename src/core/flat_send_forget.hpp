// Flat-storage Send & Forget cluster — the hot path of large-scale runs.
//
// Semantically this is `n` copies of the S&F state machine of Fig 5.1, the
// same protocol as `SendForget`; representationally it is one object: all
// views live in a single contiguous slab of 4-byte `PackedViewEntry` slots
// (capacity s per node, dependence tag folded into the id's top bit), with
// flat degree/liveness side arrays in struct-of-arrays layout. There is no
// per-node heap allocation, no virtual dispatch, and no std::vector message
// payload on the action path — a push fits in a fixed-size POD (`FlatPush`).
// A 40-slot view row is 160 bytes (3 cache lines instead of the unpacked
// layout's 5), which is what lets the sharded driver sustain n = 10^7 nodes
// at memory-bandwidth-limited speeds where the pointer-chasing `Cluster` of
// small objects cannot.
//
// Batched messages (§5): with `pairs_per_message` = p > 1 the cluster runs
// the paper's batched-messages variant (the flat counterpart of
// `SendForgetExt`): one initiate-action samples 2p distinct slots and sends
// the initiator's id plus 2p-1 view ids in a single message. p = 1 is the
// plain Fig 5.1 protocol and reproduces the unpacked engine's RNG draw
// sequence exactly — bit-identical trajectories, pinned by the
// packed-vs-unpacked equivalence test in tests/test_packed_view.cpp.
//
// Thread-safety contract (relied on by ShardedDriver): distinct nodes' state
// is disjoint, so initiate(u)/receive(u) for different `u` may run
// concurrently as long as no two threads touch the same node; liveness reads
// during a round race with nothing because churn (kill/revive/install_*) is
// only legal at a synchronization point between rounds.
//
// The hot-path members (initiate / receive / store / random_empty_slot) are
// defined inline in this header: the build has no LTO, and at ~100ns per
// action a cross-TU call per step is measurable.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/first_touch.hpp"
#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "core/packed_view.hpp"
#include "core/send_forget.hpp"
#include "core/view.hpp"

namespace gossip {

// Upper bound on `pairs_per_message`, fixed so FlatPush stays a fixed-size
// POD the mailbox frames can hold by value.
inline constexpr std::size_t kMaxPairsPerMessage = 4;

// A S&F push message in flat form. `ids[0]` carries the initiator's own id,
// `ids[1..count-1]` the ids lifted from the initiator's view; dependence
// tags as in the dependence MC of Fig 7.1. `count` is 2 for the plain
// protocol and 2p for the §5 batched variant.
struct FlatPush {
  NodeId to = kNilNode;
  std::uint32_t count = 0;
  PackedViewEntry ids[2 * kMaxPairsPerMessage];
  // Flight-recorder correlation id threading a send to its delivery across
  // shards; 0 when no recorder is attached. Not protocol state: receive()
  // ignores it and it is invisible to the cluster fingerprint.
  std::uint64_t message_id = 0;

  // The [u, w] naming of Fig 5.1 (valid for every p >= 1).
  [[nodiscard]] PackedViewEntry sender() const { return ids[0]; }
  [[nodiscard]] PackedViewEntry carried() const { return ids[1]; }
};

enum class FlatInitiateResult : std::uint8_t {
  kSelfLoop,        // a selected slot was empty; no message produced
  kSent,            // message produced, selected slots cleared
  kSentDuplicated,  // message produced, slots kept (low degree)
};

// Construction-time knobs orthogonal to the protocol parameters.
struct FlatClusterOptions {
  // §5 batched messages: ids per message = 2 * pairs_per_message. 1 = the
  // plain Fig 5.1 protocol (bit-identical to the unpacked engine).
  std::size_t pairs_per_message = 1;
  // Stripes the slab zero-fill across this many threads so each contiguous
  // node range is first-touched — and hence NUMA-placed — near the worker
  // that will own it. Purely a placement hint; 1 = plain serial fill.
  std::size_t init_threads = 1;
};

class FlatSendForgetCluster {
 public:
  FlatSendForgetCluster(std::size_t node_count, SendForgetConfig config,
                        FlatClusterOptions options = {});

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] const SendForgetConfig& config() const { return config_; }
  [[nodiscard]] const FlatClusterOptions& options() const { return options_; }
  [[nodiscard]] std::size_t pairs_per_message() const { return pairs_; }
  [[nodiscard]] std::size_t live_count() const { return live_count_; }
  [[nodiscard]] bool live(NodeId u) const { return live_[u] != 0; }
  [[nodiscard]] std::size_t degree(NodeId u) const { return degree_[u]; }

  // InitiateAction(u), Fig 5.1 (p = 1) or its §5 batched generalization.
  // On kSelfLoop `out` is untouched; otherwise `out` holds the message to
  // deliver (or lose — that's the caller's call).
  FlatInitiateResult initiate(NodeId u, Rng& rng, FlatPush& out) {
    assert(u < n_ && live_[u]);
    if (pairs_ == 1) {
      // Plain Fig 5.1. This path must reproduce the unpacked engine's
      // exact draw sequence: one distinct_pair, nothing else.
      PackedViewEntry* v = view(u);
      const auto [i, j] = rng.distinct_pair(view_size_);
      const PackedViewEntry target = v[i];
      const PackedViewEntry carried = v[j];
      if (target.empty() || carried.empty()) {
        // "If either of them is empty, nothing happens" — a self-loop
        // transformation in the MC model.
        return FlatInitiateResult::kSelfLoop;
      }
      const bool duplicate = degree_[u] <= config_.min_degree;
      if (!duplicate) {
        v[i] = PackedViewEntry{};
        v[j] = PackedViewEntry{};
        degree_[u] = static_cast<std::uint16_t>(degree_[u] - 2);
      }
      out.to = target.id_unchecked();
      out.count = 2;
      out.ids[0] = PackedViewEntry::pack(u, duplicate);
      out.ids[1] = carried.with_dependent(duplicate);
      return duplicate ? FlatInitiateResult::kSentDuplicated
                       : FlatInitiateResult::kSent;
    }
    return initiate_batched(u, rng, out);
  }

  // Receive(u, [v1, .., v2p]), Fig 5.1 / §5. Returns the number of ids
  // accepted into the view: all of them, or — when the view fills — the
  // prefix that fit (0 on an already-full view). Any shortfall is one
  // deletion event, exactly as in `SendForgetExt`.
  std::size_t receive(NodeId u, const FlatPush& message, Rng& rng) {
    assert(u < n_ && live_[u]);
    assert(message.count >= 2 && message.count <= 2 * kMaxPairsPerMessage);
    const std::size_t d = degree_[u];
    if (d == view_size_) {
      // d(u) = s: the received ids are deleted.
      return 0;
    }
    if (message.count == 2) {
      // Outdegree is even (Obs 5.1) and capacity is even, so a non-full
      // view has at least two empty slots.
      assert(view_size_ - d >= 2);
      store(u, message.ids[0], rng);
      store(u, message.ids[1], rng);
      return 2;
    }
    std::size_t accepted = 0;
    for (std::uint32_t i = 0; i < message.count; ++i) {
      if (degree_[u] == view_size_) break;  // remainder deleted
      store(u, message.ids[i], rng);
      ++accepted;
    }
    return accepted;
  }

  // --- churn (only between rounds; see thread-safety contract above) ---

  // Marks u dead; its view is left frozen, ids referencing it wash out.
  void kill(NodeId u);

  // Rejoins a dead node per §5/§6.5: fresh view seeded with min_degree ids
  // of live nodes bootstrapped from a random live contact's view (topped up
  // from further random live nodes). Requires at least one live node.
  void revive(NodeId u, Rng& rng);

  // Installs a new duplication threshold dL (the §6.3 online retuning
  // actuator). Takes effect at the next initiate-action; all other state —
  // views, degrees, liveness — is untouched, and no RNG is drawn. The new
  // value must satisfy the protocol constraints (even, dL + 6 <= s);
  // throws std::invalid_argument otherwise.
  void set_min_degree(std::size_t min_degree);

  // --- topology loading / inspection (not hot paths) ---

  // Installs up to s out-neighbors into u's first slots, tagged independent.
  void install_view(NodeId u, const std::vector<NodeId>& ids);

  // Installs `id` (tagged independent) into slot `slot` of u, which must be
  // empty. Lets callers seed huge clusters slot-by-slot — e.g. from a family
  // of permutations — without ever materializing a Digraph whose
  // vector-of-vectors adjacency would dwarf the packed slab at n = 10^7.
  void install_slot(NodeId u, std::size_t slot, NodeId id);

  // Ids of u's nonempty slots, in slot order (multiset semantics).
  [[nodiscard]] std::vector<NodeId> view_ids(NodeId u) const;

  // Nonempty entries of u's view, in slot order (unpacked).
  [[nodiscard]] std::vector<ViewEntry> view_entries(NodeId u) const;

  // Raw slot row of u: view_size() packed entries, empty slots included.
  // Zero-copy inspection path for the observability probes
  // (obs::probe_cluster), which must walk every view without allocating.
  [[nodiscard]] const PackedViewEntry* slots(NodeId u) const {
    return view(u);
  }
  [[nodiscard]] std::size_t view_size() const { return view_size_; }

  // Hints a node's liveness byte, degree, and first slot-row line toward
  // cache. The driver issues this for a message's receiver as soon as the
  // destination is known, so the (random-access) fetch overlaps the loss
  // draw / frame walk instead of stalling delivery. No architectural effect.
  void prefetch_node(NodeId u) const {
    __builtin_prefetch(&live_[u]);
    __builtin_prefetch(&degree_[u]);
    __builtin_prefetch(view(u));
  }

  // Uniformly random live node; requires live_count() > 0.
  [[nodiscard]] NodeId random_live_node(Rng& rng) const;

  // FNV-1a hash over every slot (id + dependence tag), degree and liveness
  // array — two runs are bit-identical iff their fingerprints match. Used
  // to assert the sharded driver's determinism contract. Computed over the
  // *unpacked* slot values, so the definition (and the value for any given
  // state) is unchanged from the unpacked engine.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  [[nodiscard]] PackedViewEntry* view(NodeId u) {
    return slots_.data() + static_cast<std::size_t>(u) * view_size_;
  }
  [[nodiscard]] const PackedViewEntry* view(NodeId u) const {
    return slots_.data() + static_cast<std::size_t>(u) * view_size_;
  }

  // Uniform over u's empty slots: rejection sampling against the contiguous
  // slot row (expected s/(s-d) probes, all within the row's few cache
  // lines), with an exact k-th-empty scan fallback so the draw terminates
  // and stays exactly uniform.
  [[nodiscard]] std::size_t random_empty_slot(NodeId u, Rng& rng) const {
    const PackedViewEntry* v = view(u);
    const std::size_t empties = view_size_ - degree_[u];
    assert(empties > 0);
    // Each accepted probe is uniform over empty slots, and so is the
    // fallback; a mixture of uniforms over the same set stays uniform.
    for (int probes = 0; probes < 64; ++probes) {
      const std::size_t i = rng.uniform(view_size_);
      if (v[i].empty()) return i;
    }
    std::size_t k = rng.uniform(empties);
    for (std::size_t i = 0;; ++i) {
      assert(i < view_size_);
      if (v[i].empty() && k-- == 0) return i;
    }
  }

  void store(NodeId u, PackedViewEntry entry, Rng& rng) {
    // A received copy of our own id forms a self-edge; the paper labels
    // all self-edges dependent (§2).
    if (entry.id_unchecked() == u) entry = entry.as_dependent();
    const std::size_t slot = random_empty_slot(u, rng);
    view(u)[slot] = entry;
    degree_[u] = static_cast<std::uint16_t>(degree_[u] + 1);
  }

  // §5 batched variant (p >= 2); out-of-line, it is not the default path.
  FlatInitiateResult initiate_batched(NodeId u, Rng& rng, FlatPush& out);

  SendForgetConfig config_;
  FlatClusterOptions options_;
  std::size_t n_;
  std::size_t view_size_;
  std::size_t pairs_;
  FirstTouchSlab<PackedViewEntry> slots_;  // n * s contiguous, SoA
  FirstTouchSlab<std::uint16_t> degree_;   // outdegree d(u)
  FirstTouchSlab<std::uint8_t> live_;
  std::size_t live_count_;
};

}  // namespace gossip
