// RetuneController: the §6.3 online retuning loop. Pins the determinism
// contract (a disabled or dry-run controller leaves sharded fingerprints
// bit-identical — the controller draws no RNG from any shard stream), the
// closed loop itself (a sustained loss spike that trips the oracle's
// monitor in an unattended run is survived with zero violations when the
// controller re-solves and installs a compliant dL), the oracle's
// prediction swap, and the set_min_degree actuator.
#include "sim/retune.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "analysis/prediction.hpp"
#include "common/rng.hpp"
#include "core/flat_send_forget.hpp"
#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "obs/oracle/theory_oracle.hpp"
#include "obs/timeseries.hpp"
#include "sim/fault_plane.hpp"
#include "sim/sharded_driver.hpp"

namespace gossip {
namespace {

using obs::DriftState;
using sim::RetuneConfig;
using sim::RetuneController;

// The solver callback wired the same way the tools wire it: the mean-field
// fast path through the prediction cache.
obs::TheoryPrediction mean_field_solver(std::size_t view_size,
                                        std::size_t min_degree, double loss,
                                        double delta) {
  analysis::DegreeMcParams params;
  params.view_size = view_size;
  params.min_degree = min_degree;
  params.loss = loss;
  return analysis::make_theory_prediction(
      params, delta, analysis::PredictionSource::kMeanField);
}

RetuneConfig test_retune_config() {
  RetuneConfig config;
  config.loss_window_probes = 6;
  config.min_probes = 3;
  config.window_rounds = 150;
  config.grace_rounds = 50;
  config.extend_headroom = 30;
  config.extend_rounds = 80;
  config.cooldown_rounds = 100;
  return config;
}

enum class Controller { kNone, kDryRun, kLive };

struct SpikeRunResult {
  std::uint64_t fingerprint = 0;
  std::uint64_t violations = 0;
  std::uint64_t warns = 0;
  std::size_t retunes_applied = 0;
  std::size_t events = 0;
  std::size_t installed_min_degree = 0;
  double final_mean_out = 0.0;
  double predicted_out = 0.0;
};

// n nodes under ambient ℓ = 0.01 with a sustained 12% loss spike from
// round 400 to the end of the run — the oracle is primed at ℓ = 0.01, so
// an unattended run drifts out of every rate band and ends in VIOLATION.
// The oracle warms up for 300 rounds: the regular initial topology needs
// ~250 rounds to mix into the ℓ = 0.01 stationary distribution, and the
// monitor must judge the spike, not the warm-in transient.
SpikeRunResult spike_run(Controller mode, std::uint64_t seed = 33,
                         std::uint64_t rounds = 1200) {
  constexpr std::size_t kNodes = 2000;
  const SendForgetConfig cfg = default_send_forget_config();
  FlatSendForgetCluster cluster(kNodes, cfg);
  Rng graph_rng(seed * 5 + 3);
  const Digraph g = permutation_regular(kNodes, cfg.min_degree, graph_rng);
  for (NodeId u = 0; u < kNodes; ++u) {
    cluster.install_view(u, g.out_neighbors(u));
  }

  sim::FaultSchedule schedule;
  sim::FaultPhase spike;
  spike.kind = sim::FaultKind::kLossSpike;
  spike.begin = 400;
  spike.end = rounds + 1;  // sustained to the end
  spike.rate = 0.12;
  spike.label = "sustained-spike";
  schedule.phases.push_back(spike);
  const sim::FaultPlane plane(schedule, kNodes, 2);

  sim::ShardedDriver driver(
      cluster, sim::ShardedDriverConfig{
                   .shard_count = 2, .loss_rate = 0.01, .seed = seed});
  driver.attach_fault_plane(&plane);
  driver.set_observation_stride(5);

  obs::OracleConfig oracle_config;
  oracle_config.warmup_rounds = 300;
  oracle_config.min_sent_for_rates = 10'000;
  obs::TheoryOracle oracle(mean_field_solver(cfg.view_size, cfg.min_degree,
                                             0.01, 0.01),
                           oracle_config);
  driver.attach_oracle(&oracle);

  RetuneConfig retune_config = test_retune_config();
  retune_config.dry_run = mode == Controller::kDryRun;
  RetuneController controller(
      retune_config, mean_field_solver,
      [&cluster](std::size_t dl) { cluster.set_min_degree(dl); });
  if (mode != Controller::kNone) {
    controller.bind_oracle(&oracle);
    driver.attach_retune(&controller);
  }

  driver.run_rounds(rounds);

  SpikeRunResult result;
  result.fingerprint = cluster.fingerprint() ^
                       (driver.actions_executed() * 0x9E37ULL) ^
                       driver.network_metrics().delivered;
  result.violations = oracle.monitor().violation_transitions();
  result.warns = oracle.monitor().warn_transitions();
  result.retunes_applied = controller.retunes_applied();
  result.events = controller.events().size();
  result.installed_min_degree = cluster.config().min_degree;
  result.predicted_out = oracle.prediction().expected_out;
  const obs::FlatClusterProbe probe = obs::probe_cluster(cluster, nullptr);
  result.final_mean_out = probe.outdegree.mean;
  return result;
}

TEST(RetuneController, UnattendedSpikeTripsTheMonitor) {
  // The control leg: without the controller the sustained spike drags the
  // windowed rates out of the Lemma 6.7 band and the monitor escalates.
  const SpikeRunResult run = spike_run(Controller::kNone);
  EXPECT_GT(run.violations, 0u);
  EXPECT_EQ(run.installed_min_degree, 18u);
}

TEST(RetuneController, RetuningSurvivesTheSpikeWithZeroViolations) {
  const SpikeRunResult run = spike_run(Controller::kLive);
  EXPECT_EQ(run.violations, 0u);
  EXPECT_GE(run.retunes_applied, 1u);
  // The §6.3 rule raised dL to compensate the degree sag at ℓ̂ ≈ 0.13.
  EXPECT_GT(run.installed_min_degree, 18u);
  // Degree restored to within the controller's margin of the re-solved
  // prediction (itself near the original ℓ=0.01 target).
  EXPECT_GE(run.final_mean_out, run.predicted_out - 2.0);
}

TEST(RetuneController, DryRunIsBitIdenticalToNoController) {
  // The zero-RNG proof: a dry-run controller evaluates estimates,
  // triggers, and solver calls but perturbs nothing — the sharded
  // fingerprint is bit-identical to a run with no controller at all.
  const SpikeRunResult bare = spike_run(Controller::kNone);
  const SpikeRunResult dry = spike_run(Controller::kDryRun);
  EXPECT_EQ(bare.fingerprint, dry.fingerprint);
  EXPECT_EQ(bare.violations, dry.violations);
  // It did decide to act — the decisions were recorded, not applied.
  EXPECT_GE(dry.events, 1u);
  EXPECT_EQ(dry.retunes_applied, 0u);
  EXPECT_EQ(dry.installed_min_degree, 18u);
}

TEST(RetuneController, LiveControllerIsDeterministic) {
  const SpikeRunResult a = spike_run(Controller::kLive);
  const SpikeRunResult b = spike_run(Controller::kLive);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.retunes_applied, b.retunes_applied);
  EXPECT_EQ(a.installed_min_degree, b.installed_min_degree);
  // And a different seed diverges (guards a degenerate fingerprint).
  EXPECT_NE(a.fingerprint, spike_run(Controller::kLive, 34).fingerprint);
}

TEST(TheoryOracle, UpdatePredictionSwapsAndRestartsTheRateWindow) {
  obs::OracleConfig config;
  config.warmup_rounds = 0;
  config.min_sent_for_rates = 1000;
  obs::TheoryPrediction before;
  before.loss = 0.02;
  before.delta = 0.01;
  before.alpha_lower_bound = 0.0;
  obs::TheoryOracle oracle(before, config);
  obs::FlatClusterProbe probe;
  probe.occupied_slots = 100;

  obs::CumulativeCounters counters;
  counters.sent = 10'000;
  oracle.observe(1, probe, {}, counters);  // pins the rate baseline
  counters.sent += 2000;
  counters.duplications += 50;  // 0.025 ∈ [0.02, 0.03]
  oracle.observe(2, probe, {}, counters);
  ASSERT_TRUE(oracle.last().rates_checked);
  EXPECT_EQ(oracle.monitor().state(obs::DriftCheck::kDuplicationRate),
            DriftState::kOk);

  obs::TheoryPrediction after = before;
  after.loss = 0.10;
  oracle.update_prediction(after);
  EXPECT_DOUBLE_EQ(oracle.prediction().loss, 0.10);

  // The old window is gone: the next probe re-pins the baseline instead
  // of judging pre-swap counts against the new band.
  counters.sent += 2000;
  oracle.observe(3, probe, {}, counters);
  EXPECT_FALSE(oracle.last().rates_checked);

  // Post-swap deltas are judged against the new prediction's band.
  counters.sent += 2000;
  counters.duplications += 210;  // 0.105 ∈ [0.10, 0.11]
  oracle.observe(4, probe, {}, counters);
  ASSERT_TRUE(oracle.last().rates_checked);
  EXPECT_NEAR(oracle.last().duplication_rate, 0.105, 1e-12);
  EXPECT_EQ(oracle.monitor().state(obs::DriftCheck::kDuplicationRate),
            DriftState::kOk);
}

TEST(FlatCluster, SetMinDegreeValidatesAndInstalls) {
  FlatSendForgetCluster cluster(64, default_send_forget_config());
  EXPECT_THROW(cluster.set_min_degree(19), std::invalid_argument);  // odd
  EXPECT_THROW(cluster.set_min_degree(36), std::invalid_argument);  // > s-6
  cluster.set_min_degree(24);
  EXPECT_EQ(cluster.config().min_degree, 24u);
  EXPECT_EQ(cluster.config().view_size, 40u);
}

TEST(RetuneController, RequiresASolver) {
  EXPECT_THROW(RetuneController(RetuneConfig{}, nullptr, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip
