#include "core/protocol.hpp"
#include "core/protocol.hpp"
