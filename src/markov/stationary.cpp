#include "markov/stationary.hpp"

#include <cassert>
#include <stdexcept>

namespace gossip::markov {

StationaryResult stationary_distribution(const Matrix& transition,
                                         const StationaryOptions& options) {
  const std::size_t n = transition.rows();
  if (n == 0 || transition.cols() != n) {
    throw std::invalid_argument("transition matrix must be square, nonempty");
  }
  StationaryResult result;
  std::vector<double> pi = options.initial;
  if (pi.empty()) {
    pi.assign(n, 1.0 / static_cast<double>(n));
  } else if (pi.size() != n) {
    throw std::invalid_argument("initial distribution has wrong size");
  }
  std::vector<double> next;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    transition.left_multiply_into(pi, next);
    // Re-normalize to counteract floating-point drift over many iterations.
    normalize(next);
    const double diff = l1_diff(pi, next);
    std::swap(pi, next);
    result.iterations = it + 1;
    result.residual = diff;
    if (diff < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.distribution = std::move(pi);
  return result;
}

bool is_stationary(const Matrix& transition, const std::vector<double>& pi,
                   double tolerance) {
  if (pi.size() != transition.rows()) return false;
  const auto next = transition.left_multiply(pi);
  return l1_diff(pi, next) <= tolerance;
}

std::vector<double> tv_trajectory(const Matrix& transition,
                                  std::vector<double> initial,
                                  const std::vector<double>& pi,
                                  std::size_t steps) {
  assert(initial.size() == transition.rows());
  assert(pi.size() == transition.rows());
  std::vector<double> tv;
  tv.reserve(steps + 1);
  tv.push_back(0.5 * l1_diff(initial, pi));
  std::vector<double> next;
  for (std::size_t t = 0; t < steps; ++t) {
    transition.left_multiply_into(initial, next);
    std::swap(initial, next);
    tv.push_back(0.5 * l1_diff(initial, pi));
  }
  return tv;
}

}  // namespace gossip::markov
