#include "sim/arena_driver.hpp"

#include <algorithm>
#include <cassert>

#include "sim/cluster_probe.hpp"

namespace gossip::sim {

namespace {

// ceil(n / shards), with both normalized to >= 1.
std::size_t per_shard(std::size_t n, std::size_t shards) {
  if (n == 0) n = 1;
  return (n + shards - 1) / shards;
}

}  // namespace

ArenaDriver::ArenaDriver(Cluster& cluster, ArenaDriverConfig config)
    : cluster_(cluster),
      config_([&] {
        ArenaDriverConfig c = config;
        if (c.shards == 0) c.shards = 1;
        if (c.threads == 0) c.threads = 1;
        if (c.observation_stride == 0) c.observation_stride = 1;
        return c;
      }()),
      nodes_per_shard_(per_shard(cluster.size(), config_.shards)),
      pool_(config_.threads),
      // The churn stream sits past every shard stream, so churn decisions
      // never perturb protocol randomness.
      churn_rng_(Rng::stream(config_.seed, config_.shards)) {
  shard_rngs_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shard_rngs_.push_back(Rng::stream(config_.seed, s));
  }
  shard_metrics_.resize(config_.shards);
  const auto make_frame = [this] {
    return std::vector<std::vector<std::vector<Message>>>(
        config_.shards, std::vector<std::vector<Message>>(config_.shards));
  };
  outbox_ = make_frame();
  inflight_ = make_frame();
  next_inflight_ = make_frame();
}

void ArenaDriver::attach_fault_plane(const FaultPlane* plane) {
  fault_plane_ = plane;
  fault_ctxs_.clear();
  if (plane == nullptr) return;
  fault_ctxs_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    fault_ctxs_.push_back(plane->make_context());
  }
}

void ArenaDriver::ShardTransport::send(Message message) {
  ArenaDriver& d = *driver;
  NetworkMetrics& metrics = d.shard_metrics_[shard];
  ++metrics.sent;
  Rng& rng = d.shard_rngs_[shard];
  // Fault plane first (scripted faults), then ambient loss — the same
  // composition as DirectNetwork. Nodes spawned past the plane's blocking
  // (late joins) are outside every scripted phase.
  if (d.fault_plane_ != nullptr &&
      message.from < d.fault_plane_->node_count() &&
      message.to < d.fault_plane_->node_count() &&
      d.fault_plane_->drop(message.from, message.to, round, rng,
                           d.fault_ctxs_[shard])) {
    ++metrics.faulted;
    return;
  }
  if (d.config_.loss_rate > 0.0 && rng.bernoulli(d.config_.loss_rate)) {
    ++metrics.lost;
    return;
  }
  const std::size_t dst = d.shard_of(message.to);
  (*outbox)[dst].push_back(std::move(message));
}

void ArenaDriver::run_phase_a(std::uint64_t round) {
  const std::size_t n = cluster_.size();
  pool_.parallel_for(
      config_.shards, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          ShardTransport transport;
          transport.driver = this;
          transport.shard = s;
          transport.round = round;
          transport.outbox = &outbox_[s];
          const std::size_t lo = s * nodes_per_shard_;
          // The last shard also owns ids spawned after construction.
          const std::size_t hi =
              s + 1 == config_.shards ? n
                                      : std::min(n, lo + nodes_per_shard_);
          for (std::size_t u = lo; u < hi; ++u) {
            const NodeId id = static_cast<NodeId>(u);
            if (!cluster_.live(id)) continue;
            cluster_.node(id).on_round(round, shard_rngs_[s], transport);
          }
        }
      });
}

void ArenaDriver::run_phase_b(std::uint64_t round) {
  pool_.parallel_for(
      config_.shards, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t q = begin; q < end; ++q) {
          ShardTransport transport;
          transport.driver = this;
          transport.shard = q;
          transport.round = round;
          transport.outbox = &next_inflight_[q];
          NetworkMetrics& metrics = shard_metrics_[q];
          const auto deliver = [&](std::vector<Message>& queue) {
            for (Message& message : queue) {
              if (message.to >= cluster_.size() ||
                  !cluster_.live(message.to)) {
                ++metrics.to_dead;
                continue;
              }
              cluster_.node(message.to).on_message(message, shard_rngs_[q],
                                                   transport);
              ++metrics.delivered;
            }
          };
          // Source-shard-major FIFO: last round's phase B replies, then
          // this round's phase A traffic — a fixed function of the shard
          // count, independent of worker scheduling.
          for (std::size_t p = 0; p < config_.shards; ++p) {
            deliver(inflight_[p][q]);
            deliver(outbox_[p][q]);
          }
        }
      });
  // Advance the frames: drained queues are recycled as the next round's
  // reply frame.
  for (std::size_t p = 0; p < config_.shards; ++p) {
    for (std::size_t q = 0; q < config_.shards; ++q) {
      inflight_[p][q].clear();
      outbox_[p][q].clear();
    }
  }
  std::swap(inflight_, next_inflight_);
  (void)round;
}

void ArenaDriver::observe_round(std::uint64_t round) {
  const obs::FlatClusterProbe probe = probe_cluster(cluster_);
  if (series_ != nullptr) {
    const obs::CumulativeCounters counters = cumulative_counters(
        cluster_.aggregate_metrics(), network_metrics());
    series_->record(round, probe.outdegree, probe.indegree, probe.live_nodes,
                    probe.empty_slot_fraction, counters);
  }
  if (recovery_ != nullptr) {
    // The polymorphic cluster has no flat view graph: the connectivity
    // lane stays in band, as under RoundDriver.
    recovery_->observe(round, probe, /*cluster=*/nullptr,
                       /*watchdog=*/nullptr, /*monitor=*/nullptr);
  }
  if (detection_ != nullptr) {
    detection_->observe(
        round, cluster_.size(),
        [this](NodeId u) { return cluster_.live(u); },
        [this](NodeId u, NodeId w) {
          return cluster_.node(u).member_verdict(w);
        });
  }
}

void ArenaDriver::run_rounds(std::uint64_t rounds) {
  const bool observing =
      series_ != nullptr || recovery_ != nullptr || detection_ != nullptr;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const std::uint64_t round = ++round_;
    actions_ += cluster_.live_count();
    run_phase_a(round);
    run_phase_b(round);
    if (observing && round % config_.observation_stride == 0) {
      observe_round(round);
    }
  }
}

void ArenaDriver::kill(NodeId id) {
  cluster_.kill(id);
  if (detection_ != nullptr) detection_->record_kill(round_, id);
}

void ArenaDriver::rejoin(NodeId id, const Cluster::ProtocolFactory& factory,
                         const std::vector<NodeId>& seed_view) {
  cluster_.revive(id, factory);
  cluster_.node(id).install_view(seed_view);
  if (detection_ != nullptr) detection_->record_join(round_, id);
}

NetworkMetrics ArenaDriver::network_metrics() const {
  NetworkMetrics total;
  for (const NetworkMetrics& m : shard_metrics_) {
    total.sent += m.sent;
    total.lost += m.lost;
    total.delivered += m.delivered;
    total.to_dead += m.to_dead;
    total.duplicated += m.duplicated;
    total.faulted += m.faulted;
  }
  return total;
}

std::uint64_t ArenaDriver::fingerprint() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(round_);
  mix(actions_);
  const NetworkMetrics net = network_metrics();
  mix(net.sent);
  mix(net.lost);
  mix(net.delivered);
  mix(net.to_dead);
  mix(net.faulted);
  const std::size_t n = cluster_.size();
  for (NodeId u = 0; u < n; ++u) {
    mix(cluster_.live(u) ? 0x9E3779B97F4A7C15ULL : u);
    const PeerProtocol& node = cluster_.node(u);
    const LocalView& view = node.view();
    for (std::size_t i = 0; i < view.capacity(); ++i) {
      const ViewEntry& entry = view.entry(i);
      mix(entry.empty() ? 0xFFFFFFFFULL
                        : (static_cast<std::uint64_t>(entry.id) << 1 |
                           (entry.dependent ? 1 : 0)));
    }
    mix(node.state_digest());
  }
  return h;
}

}  // namespace gossip::sim
