#include "graph/graph_io.hpp"
#include "graph/graph_io.hpp"
