file(REMOVE_RECURSE
  "CMakeFiles/extension_expander.dir/extension_expander.cpp.o"
  "CMakeFiles/extension_expander.dir/extension_expander.cpp.o.d"
  "extension_expander"
  "extension_expander.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
