#include "obs/forensics/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string_view>

namespace gossip::obs::forensics {

namespace {

void write_double(std::ostream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out << buf;
}

void write_escaped(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

struct CauseCounts {
  std::size_t declared = 0;
  std::size_t loss = 0;
  std::size_t churn = 0;
  std::size_t unknown = 0;
};

CauseCounts count_causes(const std::vector<Incident>& incidents) {
  CauseCounts counts;
  for (const Incident& incident : incidents) {
    switch (incident.cause) {
      case IncidentCause::kDeclaredFault: ++counts.declared; break;
      case IncidentCause::kLossDrift: ++counts.loss; break;
      case IncidentCause::kChurnWashout: ++counts.churn; break;
      case IncidentCause::kUnknown: ++counts.unknown; break;
    }
  }
  return counts;
}

void diff_surface_entries(const SnapshotSurface& baseline,
                          const SnapshotSurface& current, bool counters,
                          double threshold,
                          std::vector<SnapshotDiffEntry>* out,
                          std::size_t* regressions) {
  const auto& cur_names =
      counters ? current.counter_names() : current.gauge_names();
  const auto& base_names =
      counters ? baseline.counter_names() : baseline.gauge_names();
  const auto value_of = [counters](const SnapshotSurface& s,
                                   const std::string& name) {
    if (s.empty()) return 0.0;
    const std::size_t last = s.size() - 1;
    return counters ? s.counter_at(last, name) : s.gauge_at(last, name);
  };
  const auto push = [&](const std::string& name) {
    SnapshotDiffEntry entry;
    entry.name = name;
    entry.baseline = value_of(baseline, name);
    entry.current = value_of(current, name);
    entry.relative = (entry.current - entry.baseline) /
                     std::max(std::fabs(entry.baseline), 1.0);
    if (std::fabs(entry.relative) > threshold) ++*regressions;
    out->push_back(std::move(entry));
  };
  for (const std::string& name : cur_names) push(name);
  for (const std::string& name : base_names) {
    bool seen = false;
    for (const std::string& have : cur_names) {
      if (have == name) {
        seen = true;
        break;
      }
    }
    if (!seen) push(name);
  }
}

void write_diff_json(std::ostream& out, const SnapshotDiff& diff) {
  out << "{\"threshold\":";
  write_double(out, diff.threshold);
  out << ",\"regressions\":" << diff.regressions << ",\"counters\":[";
  const auto write_entries =
      [&out](const std::vector<SnapshotDiffEntry>& entries) {
        for (std::size_t i = 0; i < entries.size(); ++i) {
          if (i != 0) out << ',';
          out << "{\"name\":\"";
          write_escaped(out, entries[i].name);
          out << "\",\"baseline\":";
          write_double(out, entries[i].baseline);
          out << ",\"current\":";
          write_double(out, entries[i].current);
          out << ",\"relative\":";
          write_double(out, entries[i].relative);
          out << '}';
        }
      };
  write_entries(diff.counters);
  out << "],\"gauges\":[";
  write_entries(diff.gauges);
  out << "]}";
}

}  // namespace

SnapshotDiff SnapshotDiff::compare(const SnapshotSurface& baseline,
                                   const SnapshotSurface& current,
                                   double threshold) {
  SnapshotDiff diff;
  diff.threshold = threshold;
  diff_surface_entries(baseline, current, /*counters=*/true, threshold,
                       &diff.counters, &diff.regressions);
  diff_surface_entries(baseline, current, /*counters=*/false, threshold,
                       &diff.gauges, &diff.regressions);
  return diff;
}

void write_report_json(std::ostream& out, const RunArchive& archive,
                       const std::vector<Incident>& incidents,
                       const SnapshotDiff* diff) {
  out << "{\"schema\":\"sfgossip.forensics\",\"version\":1,\"artifacts\":{";
  out << "\"trace\":{\"present\":"
      << (archive.has_trace() ? "true" : "false");
  if (archive.has_trace()) {
    out << ",\"events\":" << archive.trace().events().size()
        << ",\"shards\":" << archive.trace().shard_count()
        << ",\"dropped\":" << archive.trace().total_dropped();
  }
  out << "},\"snapshots\":{\"present\":"
      << (archive.has_snapshots() ? "true" : "false");
  if (archive.has_snapshots()) {
    const SnapshotSurface& s = archive.snapshots();
    out << ",\"records\":" << s.size() << ",\"first_round\":"
        << s.first_round() << ",\"last_round\":" << s.last_round()
        << ",\"stride\":" << s.snapshot_stride();
  }
  out << "},\"chaos\":{\"present\":"
      << (archive.has_chaos() ? "true" : "false");
  if (archive.has_chaos()) {
    const ChaosLog& c = archive.chaos();
    out << ",\"scenario\":\"";
    write_escaped(out, c.scenario());
    out << "\",\"episodes\":" << c.episodes().size()
        << ",\"violations\":" << c.violations().size()
        << ",\"watchdog_trips\":" << c.watchdog_trips().size()
        << ",\"unrecovered\":" << c.unrecovered();
  }
  const CauseCounts counts = count_causes(incidents);
  out << "}},\"summary\":{\"incidents\":" << incidents.size()
      << ",\"unknown\":" << counts.unknown << ",\"causes\":{"
      << "\"declared-fault\":" << counts.declared
      << ",\"loss-drift\":" << counts.loss
      << ",\"churn-washout\":" << counts.churn
      << ",\"unknown\":" << counts.unknown << "}},\"incidents\":[";
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    const Incident& incident = incidents[i];
    if (i != 0) out << ',';
    out << "{\"source\":\"";
    write_escaped(out, incident.source);
    out << "\",\"label\":\"";
    write_escaped(out, incident.label);
    out << "\",\"round\":" << incident.round << ",\"window\":["
        << incident.window_begin << ',' << incident.window_end
        << "],\"cause\":\"" << incident_cause_name(incident.cause)
        << "\",\"confidence\":";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.2f", incident.confidence);
    out << buf << ",\"evidence\":[";
    for (std::size_t e = 0; e < incident.evidence.size(); ++e) {
      if (e != 0) out << ',';
      out << "{\"kind\":\"";
      write_escaped(out, incident.evidence[e].kind);
      out << "\",\"detail\":\"";
      write_escaped(out, incident.evidence[e].detail);
      out << "\"}";
    }
    out << "]}";
  }
  out << ']';
  if (diff != nullptr) {
    out << ",\"diff\":";
    write_diff_json(out, *diff);
  }
  out << "}\n";
}

void write_report_markdown(std::ostream& out, const RunArchive& archive,
                           const std::vector<Incident>& incidents,
                           const SnapshotDiff* diff) {
  out << "# sfgossip forensics report\n\n## Artifacts\n\n";
  if (archive.has_trace()) {
    out << "- flight trace: " << archive.trace().events().size()
        << " events across " << archive.trace().shard_count()
        << " shard(s), " << archive.trace().total_dropped()
        << " overwritten before the dump\n";
  } else {
    out << "- flight trace: not provided\n";
  }
  if (archive.has_snapshots()) {
    const SnapshotSurface& s = archive.snapshots();
    out << "- snapshot stream: " << s.size() << " snapshot(s), rounds "
        << s.first_round() << ".." << s.last_round() << " (stride "
        << s.snapshot_stride() << ")\n";
  } else {
    out << "- snapshot stream: not provided\n";
  }
  if (archive.has_chaos()) {
    const ChaosLog& c = archive.chaos();
    out << "- chaos report: " << c.episodes().size() << " episode(s), "
        << c.violations().size() << " oracle violation(s), "
        << c.watchdog_trips().size() << " watchdog trip(s)";
    if (!c.scenario().empty()) out << " (scenario " << c.scenario() << ')';
    out << '\n';
  } else {
    out << "- chaos report: not provided\n";
  }

  const CauseCounts counts = count_causes(incidents);
  out << "\n## Summary\n\n" << incidents.size() << " incident(s): "
      << counts.declared << " declared-fault, " << counts.loss
      << " loss-drift, " << counts.churn << " churn-washout, "
      << counts.unknown << " unknown.\n";
  if (counts.unknown != 0) {
    out << "\n**" << counts.unknown
        << " incident(s) remain unattributed** — the artifacts do not "
           "explain them; widen the lookback window or capture a deeper "
           "flight ring.\n";
  }

  out << "\n## Incidents\n";
  if (incidents.empty()) {
    out << "\nNone: the run never left the paper's band.\n";
  }
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    const Incident& incident = incidents[i];
    char confidence[16];
    std::snprintf(confidence, sizeof(confidence), "%.2f",
                  incident.confidence);
    out << "\n### " << (i + 1) << ". " << incident.source << " `"
        << incident.label << "` @ round " << incident.round << " — **"
        << incident_cause_name(incident.cause) << "** (confidence "
        << confidence << ")\n\n";
    out << "Window: rounds [" << incident.window_begin << ", "
        << incident.window_end << ")\n\nEvidence timeline:\n\n";
    if (incident.evidence.empty()) {
      out << "- (none)\n";
    }
    for (const IncidentEvidence& evidence : incident.evidence) {
      out << "- *" << evidence.kind << "*: " << evidence.detail << '\n';
    }
  }

  if (diff != nullptr) {
    out << "\n## Snapshot diff vs baseline\n\n"
        << diff->regressions << " metric(s) moved more than "
        << static_cast<int>(diff->threshold * 100.0)
        << "% against the baseline run.\n\n"
        << "| metric | baseline | current | relative |\n"
        << "|---|---:|---:|---:|\n";
    const auto write_rows =
        [&out](const std::vector<SnapshotDiffEntry>& entries) {
          for (const SnapshotDiffEntry& entry : entries) {
            char base[32];
            char cur[32];
            char rel[32];
            std::snprintf(base, sizeof(base), "%.6g", entry.baseline);
            std::snprintf(cur, sizeof(cur), "%.6g", entry.current);
            std::snprintf(rel, sizeof(rel), "%+.1f%%",
                          entry.relative * 100.0);
            out << "| " << entry.name << " | " << base << " | " << cur
                << " | " << rel << " |\n";
          }
        };
    write_rows(diff->counters);
    write_rows(diff->gauges);
  }
}

}  // namespace gossip::obs::forensics
