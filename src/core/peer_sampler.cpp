#include "core/peer_sampler.hpp"

#include <cassert>

namespace gossip {

FreshPeerSampler::FreshPeerSampler(const PeerProtocol& protocol)
    : protocol_(protocol),
      served_ids_(protocol.view().capacity(), kNilNode) {}

bool FreshPeerSampler::eligible(std::size_t slot) const {
  const auto& view = protocol_.view();
  if (view.slot_empty(slot)) return false;
  const NodeId id = view.entry(slot).id;
  if (id == protocol_.self()) return false;
  // Serving the same id from the same slot twice would correlate samples;
  // a *different* id in the slot means the protocol replaced the entry.
  return served_ids_[slot] != id;
}

std::optional<NodeId> FreshPeerSampler::sample(Rng& rng) {
  const auto& view = protocol_.view();
  // Reservoir selection over eligible slots (views are small).
  std::size_t chosen = view.capacity();
  std::size_t seen = 0;
  for (std::size_t slot = 0; slot < view.capacity(); ++slot) {
    if (!eligible(slot)) continue;
    ++seen;
    if (rng.uniform(seen) == 0) chosen = slot;
  }
  if (chosen == view.capacity()) return std::nullopt;
  const NodeId id = view.entry(chosen).id;
  served_ids_[chosen] = id;
  ++served_;
  return id;
}

std::vector<NodeId> FreshPeerSampler::sample_batch(std::size_t count,
                                                   Rng& rng) {
  std::vector<NodeId> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const auto peer = sample(rng);
    if (!peer) break;
    out.push_back(*peer);
  }
  return out;
}

double FreshPeerSampler::freshness() const {
  const auto& view = protocol_.view();
  if (view.degree() == 0) return 0.0;
  std::size_t fresh = 0;
  std::size_t nonempty = 0;
  for (std::size_t slot = 0; slot < view.capacity(); ++slot) {
    if (view.slot_empty(slot)) continue;
    ++nonempty;
    if (eligible(slot)) ++fresh;
  }
  return static_cast<double>(fresh) / static_cast<double>(nonempty);
}

void FreshPeerSampler::reset() {
  served_ids_.assign(served_ids_.size(), kNilNode);
}

}  // namespace gossip
