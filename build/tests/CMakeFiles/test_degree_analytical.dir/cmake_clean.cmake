file(REMOVE_RECURSE
  "CMakeFiles/test_degree_analytical.dir/test_degree_analytical.cpp.o"
  "CMakeFiles/test_degree_analytical.dir/test_degree_analytical.cpp.o.d"
  "test_degree_analytical"
  "test_degree_analytical.pdb"
  "test_degree_analytical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_degree_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
