#include "analysis/independence.hpp"
#include "analysis/independence.hpp"
