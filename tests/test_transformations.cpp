#include "graph/transformations.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/graph_stats.hpp"

namespace gossip::graph_ops {
namespace {

// 4-node graph where 0 -> {1, 2}, 1 -> {0, 3}, 2 -> {3, 0}, 3 -> {1, 2}.
Digraph fixture() {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 0);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(2, 0);
  g.add_edge(3, 1);
  g.add_edge(3, 2);
  return g;
}

std::vector<std::size_t> sum_degrees(const Digraph& g) {
  std::vector<std::size_t> ds;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    ds.push_back(g.out_degree(u) + 2 * g.in_degree(u));
  }
  return ds;
}

constexpr TransformLimits kLimits{.view_size = 6, .min_degree = 0};

TEST(EdgeExchange, PrerequisiteChecks) {
  const Digraph g = fixture();
  // Exchange (0,2) and (1,3) across the edge (0,1): all edges exist.
  EXPECT_TRUE(can_edge_exchange(g, 0, 2, 1, 3, kLimits));
  // Missing (u, v) edge: node 0 has no edge to 3.
  EXPECT_FALSE(can_edge_exchange(g, 0, 2, 3, 1, kLimits));
  // Missing (u, w): node 0 has no edge to 3.
  EXPECT_FALSE(can_edge_exchange(g, 0, 3, 1, 0, kLimits));
  // dL prerequisite: with dL = 2, d(0) = 2 is not > dL.
  EXPECT_FALSE(can_edge_exchange(
      g, 0, 2, 1, 3, TransformLimits{.view_size = 6, .min_degree = 2}));
  // Capacity prerequisite: with s = 2, v cannot absorb mid-sequence.
  EXPECT_FALSE(can_edge_exchange(
      g, 0, 2, 1, 3, TransformLimits{.view_size = 2, .min_degree = 0}));
}

TEST(EdgeExchange, SwapsTheTwoEdges) {
  Digraph g = fixture();
  const Digraph before = g;
  edge_exchange(g, 0, 2, 1, 3, kLimits);
  // (0,2) replaced by (0,3); (1,3) replaced by (1,2).
  EXPECT_EQ(g.edge_multiplicity(0, 2), 0u);
  EXPECT_EQ(g.edge_multiplicity(0, 3), 1u);
  EXPECT_EQ(g.edge_multiplicity(1, 3), 0u);
  EXPECT_EQ(g.edge_multiplicity(1, 2), 1u);
  EXPECT_TRUE(is_edge_exchange_of(before, g, 0, 2, 1, 3));
}

TEST(EdgeExchange, PreservesSumDegrees) {
  Digraph g = fixture();
  const auto before = sum_degrees(g);
  edge_exchange(g, 0, 2, 1, 3, kLimits);
  EXPECT_EQ(sum_degrees(g), before);
  EXPECT_EQ(g.edge_count(), 8u);
}

TEST(EdgeExchange, ThrowsWithoutPrerequisites) {
  Digraph g = fixture();
  EXPECT_THROW(edge_exchange(g, 0, 3, 1, 0, kLimits), std::logic_error);
}

TEST(EdgeExchange, ReverseExchangeRestoresGraph) {
  Digraph g = fixture();
  const Digraph original = g;
  edge_exchange(g, 0, 2, 1, 3, kLimits);
  // Reversal: exchange (0,3) and (1,2) back.
  edge_exchange(g, 0, 3, 1, 2, kLimits);
  EXPECT_TRUE(g == original);
}

TEST(DegreeBorrow, MovesTwoDegreesAcross) {
  Digraph g = fixture();
  const auto ds_before = sum_degrees(g);
  ASSERT_TRUE(can_degree_borrow(g, 0, 1, kLimits));
  degree_borrow(g, 0, 1, 2, kLimits);
  // d(0): 2 -> 0; d(1): 2 -> 4. Sum degrees unchanged.
  EXPECT_EQ(g.out_degree(0), 0u);
  EXPECT_EQ(g.out_degree(1), 4u);
  EXPECT_EQ(sum_degrees(g), ds_before);
  // The carried edge moved: (0,2) became (1,2); reinforcement (1,0) added.
  EXPECT_EQ(g.edge_multiplicity(1, 2), 1u);
  EXPECT_EQ(g.edge_multiplicity(1, 0), 2u);
}

TEST(DegreeBorrow, Prerequisites) {
  const Digraph g = fixture();
  EXPECT_TRUE(can_degree_borrow(g, 0, 1, kLimits));
  // No edge 0 -> 3.
  EXPECT_FALSE(can_degree_borrow(g, 0, 3, kLimits));
  // dL blocks clearing.
  EXPECT_FALSE(can_degree_borrow(
      g, 0, 1, TransformLimits{.view_size = 6, .min_degree = 2}));
  // Receiver has no room.
  EXPECT_FALSE(can_degree_borrow(
      g, 0, 1, TransformLimits{.view_size = 2, .min_degree = 0}));
}

TEST(DegreeBorrow, CarriedMustBeAvailable) {
  Digraph g = fixture();
  EXPECT_THROW(degree_borrow(g, 0, 1, 3, kLimits), std::logic_error);
  // Carried == target needs multiplicity 2.
  EXPECT_THROW(degree_borrow(g, 0, 1, 1, kLimits), std::logic_error);
  Digraph multi(2);
  multi.add_edge(0, 1);
  multi.add_edge(0, 1);
  degree_borrow(multi, 0, 1, 1, kLimits);
  EXPECT_EQ(multi.out_degree(0), 0u);
  EXPECT_EQ(multi.out_degree(1), 2u);
  // Node 1 now holds {0, 1}: a reinforcement edge and a self-edge.
  EXPECT_EQ(multi.edge_multiplicity(1, 0), 1u);
  EXPECT_EQ(multi.edge_multiplicity(1, 1), 1u);
}

TEST(IsEdgeExchangeOf, RejectsUnrelatedGraphs) {
  const Digraph before = fixture();
  Digraph other = fixture();
  other.add_edge(0, 3);
  EXPECT_FALSE(is_edge_exchange_of(before, other, 0, 2, 1, 3));
}

}  // namespace
}  // namespace gossip::graph_ops
