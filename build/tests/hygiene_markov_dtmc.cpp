#include "markov/dtmc.hpp"
#include "markov/dtmc.hpp"
