# Empty dependencies file for validation_sim_vs_mc.
# This may be replaced when dependencies are built.
