// Baseline comparison (§3.1's qualitative claims, made quantitative):
//
//   * Shuffle (Cyclon-style, delete-on-send): cannot withstand loss —
//     every lost request/reply permanently removes ids; edge count and
//     outdegrees collapse over time, at a rate growing with l.
//   * Push-pull keep (Lpbcast/Jelasity-style): immune to loss, but
//     keeping gossiped ids induces heavy spatial dependence (copies,
//     mutual edges).
//   * S&F: loses edges to loss but regenerates them via duplication;
//     degrees stay near the operating point and dependence stays ~2(l+d).
//
// Rows: per-protocol mean outdegree, edge count relative to start,
// connectivity, and dependence measures, per loss rate.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/baselines/newscast.hpp"
#include "core/baselines/push_pull.hpp"
#include "core/baselines/shuffle.hpp"
#include "core/send_forget.hpp"
#include "graph/connectivity.hpp"
#include "graph/graph_gen.hpp"
#include "graph/graph_stats.hpp"
#include "sampling/spatial.hpp"
#include "sim/round_driver.hpp"

namespace {

using namespace gossip;

struct Row {
  double out_mean = 0.0;
  double edge_ratio = 0.0;
  bool connected = false;
  double dependent = 0.0;
  double reciprocity = 0.0;
};

Row run(const sim::Cluster::ProtocolFactory& factory, const Digraph& start,
        double loss_rate, std::uint64_t seed, std::uint64_t rounds) {
  Rng rng(seed);
  sim::Cluster cluster(start.node_count(), factory);
  cluster.install_graph(start);
  const auto initial_edges = static_cast<double>(start.edge_count());
  sim::UniformLoss loss(loss_rate);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(rounds);
  const auto g = cluster.snapshot();
  const auto dep = sampling::measure_spatial_dependence(cluster);
  Row row;
  row.out_mean = degree_summary(g).out_mean;
  row.edge_ratio = static_cast<double>(g.edge_count()) / initial_edges;
  row.connected = is_weakly_connected(g);
  row.dependent = dep.dependent_fraction_upper();
  row.reciprocity = dep.reciprocity_fraction();
  return row;
}

}  // namespace

int main() {
  using namespace gossip::bench;
  constexpr std::size_t kN = 600;
  constexpr std::uint64_t kRounds = 400;

  print_header("Baselines — S&F vs Shuffle vs Push-pull keep (n=600, 400 rounds)");

  const sim::Cluster::ProtocolFactory sf = [](NodeId id) {
    return std::make_unique<SendForget>(
        id, SendForgetConfig{.view_size = 24, .min_degree = 8});
  };
  const sim::Cluster::ProtocolFactory shuffle = [](NodeId id) {
    return std::make_unique<Shuffle>(
        id, ShuffleConfig{.view_size = 24, .shuffle_length = 4});
  };
  const sim::Cluster::ProtocolFactory push_pull = [](NodeId id) {
    return std::make_unique<PushPullKeep>(
        id, PushPullConfig{.view_size = 24, .exchange_length = 4});
  };
  const sim::Cluster::ProtocolFactory newscast = [](NodeId id) {
    return std::make_unique<Newscast>(id, NewscastConfig{.view_size = 24});
  };

  std::printf("%10s %6s | %9s %10s %6s | %10s %12s\n", "protocol", "loss",
              "out-mean", "edge-ratio", "conn", "dependent", "reciprocity");
  std::uint64_t seed = 1;
  for (const double l : {0.0, 0.01, 0.05, 0.1}) {
    Rng graph_rng(40 + static_cast<std::uint64_t>(l * 100));
    const auto start = permutation_regular(kN, 8, graph_rng);
    const struct {
      const char* name;
      const sim::Cluster::ProtocolFactory* factory;
    } protocols[] = {{"S&F", &sf},
                     {"shuffle", &shuffle},
                     {"push-pull", &push_pull},
                     {"newscast", &newscast}};
    for (const auto& p : protocols) {
      const auto row = run(*p.factory, start, l, seed++, kRounds);
      std::printf("%10s %6.2f | %9.2f %10.3f %6s | %10.3f %12.3f\n", p.name,
                  l, row.out_mean, row.edge_ratio,
                  row.connected ? "yes" : "NO", row.dependent,
                  row.reciprocity);
    }
    std::printf("\n");
  }
  print_note("expected: shuffle's edge-ratio collapses as loss grows "
             "(eventually partitioning); push-pull keeps full views under "
             "any loss but with dependence near 1; S&F holds degrees near "
             "its operating point with dependence ~ 2(l+delta).");

  print_subheader("Shuffle decay over time (l = 0.05)");
  {
    Rng graph_rng(99);
    const auto start = permutation_regular(kN, 8, graph_rng);
    Rng rng(7);
    sim::Cluster cluster(kN, shuffle);
    cluster.install_graph(start);
    sim::UniformLoss loss(0.05);
    sim::RoundDriver driver(cluster, loss, rng);
    std::printf("%10s  %12s\n", "round", "edge-ratio");
    for (int chunk = 0; chunk <= 10; ++chunk) {
      if (chunk > 0) driver.run_rounds(40);
      std::printf("%10d  %12.3f\n", chunk * 40,
                  static_cast<double>(cluster.snapshot().edge_count()) /
                      static_cast<double>(start.edge_count()));
    }
  }
  print_note("the leak is roughly geometric: each lost message removes "
             "shuffle_length ids forever (§3.1: such protocols 'are unable "
             "to withstand message loss').");
  return 0;
}
