// All-to-all heartbeat detector: counter fan-out, the TFAIL/TREMOVE
// timeout ladder, resurrection on resumed heartbeats, and the join grace
// period. The protocol is zero-RNG; every test drives the round clock by
// hand.
#include "core/baselines/all_to_all.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_support.hpp"

namespace gossip {
namespace {

AllToAllConfig small_config() {
  AllToAllConfig config;
  config.view_size = 8;
  config.fail_timeout = 3;
  config.remove_timeout = 4;
  return config;
}

Message beat_from(NodeId from, NodeId to, std::uint64_t counter) {
  Message m;
  m.from = from;
  m.to = to;
  m.kind = MessageKind::kHeartbeat;
  m.subject = from;
  m.stamp = counter;
  return m;
}

TEST(AllToAll, HeartbeatsFanOutWithIncreasingCounter) {
  AllToAll node(0, small_config());
  node.install_view({1, 2, 3});
  Rng rng(1);
  testing::CaptureTransport cap;

  node.on_round(1, rng, cap);
  ASSERT_EQ(cap.sent.size(), 3u);
  std::vector<NodeId> targets;
  for (const Message& m : cap.sent) {
    EXPECT_EQ(m.kind, MessageKind::kHeartbeat);
    EXPECT_EQ(m.subject, 0u);
    EXPECT_EQ(m.stamp, 1u);
    targets.push_back(m.to);
  }
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(targets, (std::vector<NodeId>{1, 2, 3}));

  cap.sent.clear();
  node.on_round(2, rng, cap);
  ASSERT_EQ(cap.sent.size(), 3u);
  EXPECT_EQ(cap.sent[0].stamp, 2u);
}

TEST(AllToAll, StallMarksFaultyThenRemovesFromFanOut) {
  AllToAll node(0, small_config());
  node.install_view({1, 2});
  Rng rng(1);
  testing::CaptureTransport cap;

  // Member 2 keeps beating; member 1 never does. install arms the timers
  // at round 0, so 1 is overdue at round fail_timeout = 3.
  std::uint64_t counter = 0;
  for (std::uint64_t r = 1; r <= 2; ++r) {
    node.on_round(r, rng, cap);
    node.on_message(beat_from(2, 0, ++counter), rng, cap);
    EXPECT_EQ(node.member_verdict(1), MemberVerdict::kAlive);
  }
  cap.sent.clear();
  node.on_round(3, rng, cap);
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kFaulty);
  EXPECT_EQ(node.member_verdict(2), MemberVerdict::kAlive);
  // Faulty members still receive heartbeats (they may disagree about us).
  EXPECT_TRUE(std::any_of(cap.sent.begin(), cap.sent.end(),
                          [](const Message& m) { return m.to == 1; }));

  // After fail + remove = 7 rounds the member leaves the fan-out but the
  // verdict stays faulty (removal is bandwidth hygiene, not forgetting).
  for (std::uint64_t r = 4; r <= 6; ++r) {
    node.on_message(beat_from(2, 0, ++counter), rng, cap);
    node.on_round(r, rng, cap);
  }
  cap.sent.clear();
  node.on_round(7, rng, cap);
  EXPECT_FALSE(std::any_of(cap.sent.begin(), cap.sent.end(),
                           [](const Message& m) { return m.to == 1; }));
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kFaulty);
}

TEST(AllToAll, ResurrectionOnHigherCounter) {
  AllToAll node(0, small_config());
  node.install_view({1});
  Rng rng(1);
  testing::CaptureTransport cap;

  node.on_message(beat_from(1, 0, 5), rng, cap);
  node.on_round(10, rng, cap);  // long stall: faulty
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kFaulty);

  // A stale (replayed) counter must not resurrect.
  node.on_message(beat_from(1, 0, 5), rng, cap);
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kFaulty);

  node.on_message(beat_from(1, 0, 6), rng, cap);
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kAlive);
}

TEST(AllToAll, UnknownSenderJoinsWithGrace) {
  AllToAll node(0, small_config());
  node.install_view({1});
  Rng rng(1);
  testing::CaptureTransport cap;

  node.on_round(5, rng, cap);
  EXPECT_EQ(node.member_verdict(9), MemberVerdict::kUnknown);
  node.on_message(beat_from(9, 0, 1), rng, cap);
  EXPECT_EQ(node.member_verdict(9), MemberVerdict::kAlive);

  // The grace arms at first sight: not instantly overdue on the next tick.
  cap.sent.clear();
  node.on_round(6, rng, cap);
  EXPECT_EQ(node.member_verdict(9), MemberVerdict::kAlive);
  EXPECT_TRUE(std::any_of(cap.sent.begin(), cap.sent.end(),
                          [](const Message& m) { return m.to == 9; }));
}

TEST(AllToAll, StateDigestSeesCountersAndStatus) {
  AllToAll a(0, small_config());
  AllToAll b(0, small_config());
  a.install_view({1, 2});
  b.install_view({1, 2});
  EXPECT_EQ(a.state_digest(), b.state_digest());

  Rng rng(1);
  testing::CaptureTransport cap;
  a.on_message(beat_from(1, 0, 1), rng, cap);
  EXPECT_NE(a.state_digest(), b.state_digest());
  b.on_message(beat_from(1, 0, 1), rng, cap);
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

}  // namespace
}  // namespace gossip
