#include "sampling/random_walk.hpp"
#include "sampling/random_walk.hpp"
