// Ablation (beyond the paper): the analysis assumes uniform i.i.d. loss
// (§4.1), noting that "nonuniform loss occurs in practice [33]". This
// bench keeps the long-run loss rate fixed and varies the burstiness
// (Gilbert-Elliott mean burst length), measuring how far the steady state
// drifts from the i.i.d. prediction.
//
// Expected shape: S&F's steady-state degrees and dependence depend on the
// average loss rate, not its correlation structure — the duplication
// mechanism reacts per-node and per-action, so moderate burstiness barely
// moves the operating point.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/degree_mc.hpp"
#include "bench_util.hpp"
#include "core/send_forget.hpp"
#include "graph/connectivity.hpp"
#include "graph/graph_gen.hpp"
#include "graph/graph_stats.hpp"
#include "sampling/spatial.hpp"
#include "sim/round_driver.hpp"

namespace {

using namespace gossip;

struct Row {
  double out_mean = 0.0;
  double in_sd = 0.0;
  double dup_rate = 0.0;
  double dependent = 0.0;
  bool connected = false;
};

Row run(sim::LossModel& loss, std::uint64_t seed) {
  Rng rng(seed);
  constexpr std::size_t kN = 1000;
  sim::Cluster cluster(kN, [](NodeId id) {
    return std::make_unique<SendForget>(id, default_send_forget_config());
  });
  cluster.install_graph(permutation_regular(kN, 10, rng));
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(400);
  const auto m0 = cluster.aggregate_metrics();
  driver.run_rounds(400);
  const auto m1 = cluster.aggregate_metrics();
  const auto g = cluster.snapshot();
  const auto summary = degree_summary(g);
  Row row;
  row.out_mean = summary.out_mean;
  row.in_sd = std::sqrt(summary.in_variance);
  const double actions = static_cast<double>(
      (m1.actions_initiated - m0.actions_initiated) -
      (m1.self_loop_actions - m0.self_loop_actions));
  row.dup_rate =
      static_cast<double>(m1.duplications - m0.duplications) / actions;
  row.dependent =
      sampling::measure_spatial_dependence(cluster).dependent_fraction_upper();
  row.connected = is_weakly_connected(g);
  return row;
}

}  // namespace

int main() {
  using namespace gossip::bench;

  print_header("Ablation — bursty (Gilbert-Elliott) vs uniform i.i.d. loss "
               "(average rate fixed at 5%)");

  analysis::DegreeMcParams mc_params;
  mc_params.view_size = 40;
  mc_params.min_degree = 18;
  mc_params.loss = 0.05;
  const auto mc = analysis::solve_degree_mc(mc_params);
  print_kv("degree MC prediction E[out] (i.i.d. model)", mc.expected_out);

  std::printf("\n%22s | %9s %8s %9s %10s %6s\n", "loss model", "out-mean",
              "in-sd", "dup-rate", "dependent", "conn");
  {
    sim::UniformLoss uniform(0.05);
    const auto row = run(uniform, 11);
    std::printf("%22s | %9.2f %8.2f %9.4f %10.4f %6s\n", "uniform i.i.d.",
                row.out_mean, row.in_sd, row.dup_rate, row.dependent,
                row.connected ? "yes" : "NO");
  }
  for (const double burst : {2.0, 8.0, 32.0, 128.0}) {
    auto ge = sim::bursty_loss(0.05, burst);
    const auto row = run(*ge, 20 + static_cast<std::uint64_t>(burst));
    std::printf("%14s burst=%-4.0f | %9.2f %8.2f %9.4f %10.4f %6s\n",
                "Gilbert-Elliott", burst, row.out_mean, row.in_sd,
                row.dup_rate, row.dependent, row.connected ? "yes" : "NO");
  }
  print_note("burstiness leaves the operating point essentially unchanged: "
             "S&F reacts to the average loss rate. Only extreme bursts "
             "(comparable to whole rounds) begin to widen degree spread.");
  return 0;
}
