#include "graph/graph_stats.hpp"
#include "graph/graph_stats.hpp"
