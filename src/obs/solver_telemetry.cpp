#include "obs/solver_telemetry.hpp"

#include <limits>
#include <ostream>

namespace gossip::obs {

void RecordingSolverSink::on_iteration(std::string_view solver,
                                       std::size_t iteration,
                                       double residual) {
  iterations_.push_back(Iteration{std::string(solver), iteration, residual});
}

void RecordingSolverSink::on_event(std::string_view solver,
                                   std::string_view event,
                                   std::size_t iteration) {
  events_.push_back(Event{std::string(solver), std::string(event), iteration});
}

std::size_t RecordingSolverSink::iteration_count(
    std::string_view solver) const {
  std::size_t count = 0;
  for (const Iteration& it : iterations_) {
    if (it.solver == solver) ++count;
  }
  return count;
}

std::size_t RecordingSolverSink::event_count(std::string_view solver,
                                             std::string_view event) const {
  std::size_t count = 0;
  for (const Event& e : events_) {
    if (e.solver == solver && e.event == event) ++count;
  }
  return count;
}

double RecordingSolverSink::last_residual(std::string_view solver) const {
  double residual = std::numeric_limits<double>::quiet_NaN();
  for (const Iteration& it : iterations_) {
    if (it.solver == solver) residual = it.residual;
  }
  return residual;
}

void RecordingSolverSink::clear() {
  iterations_.clear();
  events_.clear();
}

void RecordingSolverSink::write_json(std::ostream& out) const {
  out << "{\"iterations\":[";
  for (std::size_t i = 0; i < iterations_.size(); ++i) {
    if (i != 0) out << ',';
    const Iteration& it = iterations_[i];
    out << "{\"solver\":\"" << it.solver << "\",\"i\":" << it.iteration
        << ",\"residual\":" << it.residual << '}';
  }
  out << "],\"events\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i != 0) out << ',';
    const Event& e = events_[i];
    out << "{\"solver\":\"" << e.solver << "\",\"event\":\"" << e.event
        << "\",\"i\":" << e.iteration << '}';
  }
  out << "]}";
}

}  // namespace gossip::obs
