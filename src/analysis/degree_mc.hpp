// The two-dimensional degree Markov chain of §6.2.
//
// One tagged node's (outdegree, indegree) pair evolves as a Markov chain
// whose transition probabilities depend on population-level quantities
// (how likely a message's receiver has room, how likely an initiator is at
// its duplication threshold, ...), which in turn depend on the stationary
// degree distribution. Following the paper, the chain is solved by a
// fixed-point iteration: start from an arbitrary degree distribution,
// derive transition probabilities, compute the stationary distribution,
// and repeat until the distribution and the transition probabilities match.
//
// The state space is truncated at sum degree ds = d + 2*din <= 3s (states
// beyond have negligible stationary mass; transitions leading out of the
// truncated space become self-loops) — exactly the paper's device.
//
// Mean-field assumptions (valid for n >> s, as assumed throughout §6):
//  * the receiver of a message sent by the tagged node is a random node
//    sampled proportionally to indegree;
//  * the initiator holding an edge to the tagged node has outdegree
//    distributed proportionally to pi(d) * d, and fires an action using
//    that particular edge with probability proportional to d - 1.
//
// Solver architecture (performance): the transition *structure* — which
// (state, state) pairs can ever carry mass — depends only on (s, dL, cap),
// so it is compiled once into a CSR `markov::SparseChain`; each outer
// iteration only rewrites the per-edge probability values. The outer loop
// is accelerated with Anderson mixing (small least-squares over the last m
// residuals, falling back to the classic damped step whenever the
// extrapolation degenerates), the inner power iteration is warm-started
// from the previous outer iterate (and itself Anderson-accelerated, see
// markov::SparseChain::stationary), and ℓ-sweeps reuse both the structure
// and the previous point's solution (solve_degree_mc_sweep).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "obs/solver_telemetry.hpp"

namespace gossip::analysis {

// Outer fixed-point update rule.
enum class DegreeMcAcceleration {
  kDamped,    // x += 0.5 * (G(x) - x), the paper-faithful baseline
  kAnderson,  // Anderson mixing with damped fallback on non-decrease
};

struct DegreeMcParams {
  std::size_t view_size = 40;   // s
  std::size_t min_degree = 18;  // dL
  double loss = 0.0;            // ℓ

  // Sum-degree truncation; defaults to 3s when 0 (§6.2).
  std::size_t sum_degree_cap = 0;

  // When set, restricts the state space to the line d + 2*din == value
  // (requires an even value <= sum cap). This is the §6.1 setting used for
  // Fig 6.1: no loss, dL = 0, ds(u) = dm invariant.
  std::optional<std::size_t> fixed_sum_degree;

  // Outer fixed-point loop.
  double fixed_point_tolerance = 1e-11;
  std::size_t max_fixed_point_iterations = 300;
  DegreeMcAcceleration acceleration = DegreeMcAcceleration::kAnderson;
  // Anderson history depth m (>= 1; ignored for kDamped).
  std::size_t anderson_depth = 4;

  // Inner (Anderson-accelerated) power iteration. Setting
  // accelerated_stationary = false runs classic power iteration — the
  // seed-faithful baseline configuration for benchmarks.
  double stationary_tolerance = 1e-13;
  std::size_t max_stationary_iterations = 500'000;
  bool accelerated_stationary = true;

  // Optional telemetry sink (borrowed; may be null). The outer loop
  // reports per-iteration residuals as "degree_mc_outer" (with mixer
  // events under the same name and "damped_step" fallbacks), the inner
  // stationary solves as "degree_mc_inner". Feeds the same numbers the
  // DegreeMcResult diagnostics summarize; never influences the solve.
  obs::SolverSink* telemetry = nullptr;
};

struct DegreeState {
  std::uint32_t out = 0;
  std::uint32_t in = 0;
  [[nodiscard]] bool operator==(const DegreeState&) const = default;
};

struct DegreeMcResult {
  std::vector<DegreeState> states;
  std::vector<double> stationary;  // aligned with `states`

  // Marginals indexed by degree value.
  std::vector<double> out_pmf;
  std::vector<double> in_pmf;

  double expected_out = 0.0;
  double expected_in = 0.0;

  // P(a non-self-loop action performs duplication) in steady state
  // (Lemma 6.7 predicts this lies in [ℓ, ℓ+δ]).
  double duplication_probability = 0.0;
  // P(a non-self-loop action ends in deletion at the receiver):
  // (1-ℓ) * P(receiver full). Lemma 6.6: dup = ℓ + del in steady state.
  double deletion_probability = 0.0;
  // P(receiver has room), receiver sampled proportionally to indegree.
  double receiver_room_probability = 1.0;

  // Convergence diagnostics: outer fixed-point iterations, the total
  // number of inner power-iteration steps across all outer iterations
  // (the real cost driver), and the final residuals of both loops, so
  // benches can assert convergence instead of trusting tolerances.
  std::size_t fixed_point_iterations = 0;
  std::size_t stationary_iterations = 0;
  double fixed_point_residual = 0.0;  // L1(pi, G(pi)) at the last iteration
  double stationary_residual = 0.0;   // L1 step change of the final solve
  bool converged = false;
};

// Solves the chain. Throws std::invalid_argument on inconsistent
// parameters; throws std::runtime_error if the state space degenerates
// (e.g. all mass escapes).
[[nodiscard]] DegreeMcResult solve_degree_mc(const DegreeMcParams& params);

// Solves the chain for each loss value in `losses` with one solver: the
// state space and CSR sparsity pattern are built once, and each point is
// warm-started from the previous point's stationary distribution and
// population statistics. Equivalent to calling solve_degree_mc per point
// (same fixed points, same tolerances), only faster. `params.loss` is
// ignored.
[[nodiscard]] std::vector<DegreeMcResult> solve_degree_mc_sweep(
    const DegreeMcParams& params, std::span<const double> losses);

// Transient §6.5 analysis: the expected degree trajectory of a node that
// joins a steady-state system with outdegree dL and indegree 0, obtained
// by evolving the degree MC (with the steady-state population parameters
// frozen) from the state (dL, 0). Index r of each series is the expected
// value after r rounds. Requires min_degree >= 2 (a joiner with an empty
// view can never act) and no fixed_sum_degree.
struct JoinerTrajectory {
  std::vector<double> expected_out;
  std::vector<double> expected_in;
};
[[nodiscard]] JoinerTrajectory joiner_degree_trajectory(
    const DegreeMcParams& params, std::size_t rounds);

}  // namespace gossip::analysis
