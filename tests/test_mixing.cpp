#include "analysis/mixing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "analysis/global_mc.hpp"
#include "graph/graph_gen.hpp"

namespace gossip::analysis {
namespace {

markov::SparseChain two_state(double a, double b) {
  markov::SparseChain chain(2);
  chain.add(0, 1, a);
  chain.add(1, 0, b);
  chain.finalize();
  return chain;
}

TEST(Mixing, TwoStateChainDecaysGeometrically) {
  const auto chain = two_state(0.3, 0.3);
  const std::vector<double> pi = {0.5, 0.5};
  const auto r = measure_mixing(chain, pi, 30, 0.01);
  ASSERT_EQ(r.expected_tv.size(), 31u);
  EXPECT_NEAR(r.expected_tv[0], 0.5, 1e-12);
  // The two-state chain has second eigenvalue 1 - a - b = 0.4:
  // d(t) = 0.5 * 0.4^t exactly.
  EXPECT_NEAR(r.expected_tv[1], 0.5 * 0.4, 1e-12);
  EXPECT_NEAR(r.expected_tv[5], 0.5 * std::pow(0.4, 5), 1e-12);
  EXPECT_NEAR(r.decay_rate, 0.4, 0.02);
  // 0.5 * 0.4^t < 0.01 at t = 5 (0.00512).
  EXPECT_EQ(r.tau_epsilon, 5u);
}

TEST(Mixing, EpsilonNotReachedReportsSentinel) {
  const auto chain = two_state(0.001, 0.001);
  const std::vector<double> pi = {0.5, 0.5};
  const auto r = measure_mixing(chain, pi, 5, 0.01);
  EXPECT_EQ(r.tau_epsilon, std::numeric_limits<std::size_t>::max());
}

TEST(Mixing, Validation) {
  const auto chain = two_state(0.3, 0.3);
  EXPECT_THROW(measure_mixing(chain, {1.0}, 5, 0.01), std::invalid_argument);
  EXPECT_THROW(measure_mixing(chain, {0.5, 0.5}, 5, 0.0),
               std::invalid_argument);
  EXPECT_THROW(measure_mixing(chain, {0.5, 0.5}, 5, 1.0),
               std::invalid_argument);
}

TEST(Mixing, GlobalChainMixesOrdersBelowLemma715Bound) {
  // Exact τ_ε on the n=3 no-loss fixed-sum chain: tiny, as expected —
  // Lemma 7.15's bound is deliberately loose.
  GlobalMcParams p;
  p.config = SendForgetConfig{.view_size = 6, .min_degree = 0};
  p.loss = 0.0;
  Digraph g(3);
  for (NodeId u = 0; u < 3; ++u) {
    g.add_edge(u, (u + 1) % 3);
    g.add_edge(u, (u + 2) % 3);
  }
  p.initial = g;
  const auto mc = build_global_mc(p);
  ASSERT_TRUE(mc.stationary.converged);
  const auto r =
      measure_mixing(mc.chain, mc.stationary.distribution, 400, 0.01);
  EXPECT_NE(r.tau_epsilon, std::numeric_limits<std::size_t>::max());
  EXPECT_LT(r.tau_epsilon, 400u);
  EXPECT_LT(r.decay_rate, 1.0);
  // Monotone decay.
  for (std::size_t t = 1; t < r.expected_tv.size(); ++t) {
    EXPECT_LE(r.expected_tv[t], r.expected_tv[t - 1] + 1e-12);
  }
}

}  // namespace
}  // namespace gossip::analysis
