#include "markov/dtmc.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "markov/stationary.hpp"

namespace gossip::markov {
namespace {

TEST(DtmcBuilder, InternsStates) {
  DtmcBuilder b;
  EXPECT_FALSE(b.has_state(7));
  const auto i = b.state_index(7);
  EXPECT_TRUE(b.has_state(7));
  EXPECT_EQ(b.state_index(7), i);
  EXPECT_EQ(b.state_count(), 1u);
}

TEST(DtmcBuilder, BuildAddsSelfLoopRemainder) {
  DtmcBuilder b;
  b.add_transition(0, 1, 0.3);
  const auto chain = b.build();
  ASSERT_EQ(chain.keys.size(), 2u);
  EXPECT_TRUE(chain.transition.is_row_stochastic());
  const auto i0 = chain.index.at(0);
  const auto i1 = chain.index.at(1);
  EXPECT_DOUBLE_EQ(chain.transition.at(i0, i1), 0.3);
  EXPECT_DOUBLE_EQ(chain.transition.at(i0, i0), 0.7);
  EXPECT_DOUBLE_EQ(chain.transition.at(i1, i1), 1.0);
}

TEST(DtmcBuilder, AccumulatesParallelTransitions) {
  DtmcBuilder b;
  b.add_transition(0, 1, 0.2);
  b.add_transition(0, 1, 0.3);
  const auto chain = b.build();
  EXPECT_DOUBLE_EQ(chain.transition.at(chain.index.at(0), chain.index.at(1)),
                   0.5);
}

TEST(DtmcBuilder, RejectsNegativeWeight) {
  DtmcBuilder b;
  EXPECT_THROW(b.add_transition(0, 1, -0.1), std::invalid_argument);
}

TEST(DtmcBuilder, RejectsOverflowingRow) {
  DtmcBuilder b;
  b.add_transition(0, 1, 0.8);
  b.add_transition(0, 2, 0.5);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(DtmcBuilder, ZeroWeightIgnored) {
  DtmcBuilder b;
  b.add_transition(0, 1, 0.0);
  // State 0 was interned by add_transition's interning path only when
  // weight > 0; zero weight is a no-op.
  EXPECT_EQ(b.state_count(), 0u);
}

TEST(DtmcBuilder, DependenceMcOfFig71) {
  // The paper's dependence MC (Fig 7.1) as a two-state chain:
  // independent --(3/2)(l+d)--> dependent --(5/6)(1-(l+d))--> independent.
  const double x = 0.02;  // l + delta
  const double p_in = 1.5 * x;
  const double p_out = (5.0 / 6.0) * (1.0 - x);
  DtmcBuilder b;
  constexpr std::uint64_t kIndependent = 0;
  constexpr std::uint64_t kDependent = 1;
  b.add_transition(kIndependent, kDependent, p_in);
  b.add_transition(kDependent, kIndependent, p_out);
  const auto chain = b.build();
  const auto pi = stationary_distribution(chain.transition).distribution;
  const double dependent_mass = pi[chain.index.at(kDependent)];
  // Lemma 7.9: stationary dependent fraction = x / (5/9 + (4/9)x) <= 2x.
  EXPECT_NEAR(dependent_mass, x / (5.0 / 9.0 + (4.0 / 9.0) * x), 1e-9);
  EXPECT_LE(dependent_mass, 2.0 * x);
}

TEST(DtmcBuilder, SparseBuildMatchesDenseBuild) {
  // build_sparse() must encode the same chain as build(): same interning,
  // same accumulated off-diagonal mass, same stationary distribution —
  // only the storage (CSR with implicit self-loops vs dense matrix)
  // differs.
  DtmcBuilder b;
  b.add_transition(10, 20, 0.3);
  b.add_transition(20, 10, 0.1);
  b.add_transition(20, 30, 0.2);
  b.add_transition(30, 10, 0.6);
  b.add_transition(10, 20, 0.2);  // parallel: accumulates to 0.5
  b.add_transition(30, 30, 0.4);  // explicit self-loop mass

  const auto dense = b.build();
  const auto sparse = b.build_sparse();
  ASSERT_EQ(sparse.keys, dense.keys);
  ASSERT_EQ(sparse.chain.state_count(), dense.keys.size());
  EXPECT_EQ(sparse.index.at(10), dense.index.at(10));

  // Off-diagonal entries agree; diagonal is implicit in the sparse form.
  const auto i10 = sparse.index.at(10);
  const auto i20 = sparse.index.at(20);
  EXPECT_DOUBLE_EQ(sparse.chain.row_sum(i10), 0.5);
  EXPECT_DOUBLE_EQ(dense.transition.at(i10, i20), 0.5);
  EXPECT_DOUBLE_EQ(dense.transition.at(i10, i10), 0.5);

  const auto pi_dense = stationary_distribution(dense.transition).distribution;
  const auto pi_sparse = sparse.chain.stationary();
  ASSERT_TRUE(pi_sparse.converged);
  for (std::size_t i = 0; i < pi_dense.size(); ++i) {
    EXPECT_NEAR(pi_sparse.distribution[i], pi_dense[i], 1e-9) << "i=" << i;
  }
}

TEST(DtmcBuilder, SparseBuildRejectsOverflowingRow) {
  DtmcBuilder b;
  b.add_transition(0, 1, 0.8);
  b.add_transition(0, 2, 0.5);
  EXPECT_THROW(b.build_sparse(), std::invalid_argument);
}

TEST(PackHelpers, RoundTrip) {
  const auto key = pack_pair(123u, 456u);
  EXPECT_EQ(unpack_first(key), 123u);
  EXPECT_EQ(unpack_second(key), 456u);
}

}  // namespace
}  // namespace gossip::markov
