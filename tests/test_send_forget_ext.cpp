#include "core/variants/send_forget_ext.hpp"

#include "core/send_forget.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/degree_mc.hpp"
#include "graph/graph_gen.hpp"
#include "graph/graph_stats.hpp"
#include "sim/round_driver.hpp"

#include "test_support.hpp"

namespace gossip {
namespace {

using testing::CaptureTransport;

SendForgetExtConfig base_config() {
  return SendForgetExtConfig{.view_size = 8, .min_degree = 2};
}

TEST(SendForgetExtConfig, Validation) {
  EXPECT_NO_THROW(base_config().validate());
  auto cfg = base_config();
  cfg.view_size = 7;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base_config();
  cfg.pairs_per_message = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base_config();
  cfg.pairs_per_message = 5;  // 10 ids > s = 8
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base_config();
  cfg.min_degree = 4;  // dL <= s - 6 violated
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SendForgetExt, BaseConfigurationMatchesSendForgetSemantics) {
  // p = 1, no flags: one action clears two slots and sends [u, w].
  SendForgetExt node(5, base_config());
  node.install_view({1, 2, 3, 4});
  Rng rng(1);
  CaptureTransport transport;
  while (transport.sent.empty()) node.on_initiate(rng, transport);
  const Message& m = transport.sent.front();
  ASSERT_EQ(m.payload.size(), 2u);
  EXPECT_EQ(m.payload.front().id, 5u);
  EXPECT_EQ(node.view().degree(), 2u);
  EXPECT_EQ(node.tombstone_count(), 0u);
}

TEST(SendForgetExt, BatchedMessageCarriesMoreIds) {
  auto cfg = base_config();
  cfg.pairs_per_message = 2;  // 4 ids per message
  SendForgetExt node(9, cfg);
  node.install_view({1, 2, 3, 4, 5, 6});
  Rng rng(2);
  CaptureTransport transport;
  while (transport.sent.empty()) node.on_initiate(rng, transport);
  const Message& m = transport.sent.front();
  ASSERT_EQ(m.payload.size(), 4u);
  EXPECT_EQ(m.payload.front().id, 9u);
  // 4 slots consumed.
  EXPECT_EQ(node.view().degree(), 2u);
}

TEST(SendForgetExt, BatchedDuplicationAtThreshold) {
  auto cfg = base_config();
  cfg.pairs_per_message = 2;
  SendForgetExt node(9, cfg);
  node.install_view({1, 2, 3, 4});  // 4 - 4 < dL=2 -> duplicate
  Rng rng(3);
  CaptureTransport transport;
  while (transport.sent.empty()) node.on_initiate(rng, transport);
  EXPECT_EQ(node.view().degree(), 4u);
  EXPECT_EQ(node.metrics().duplications, 1u);
  EXPECT_TRUE(transport.sent.front().payload.front().dependent);
}

TEST(SendForgetExt, MarkModeCreatesTombstones) {
  auto cfg = base_config();
  cfg.mark_instead_of_clear = true;
  SendForgetExt node(7, cfg);
  node.install_view({1, 2, 3, 4});
  Rng rng(4);
  CaptureTransport transport;
  while (transport.sent.empty()) node.on_initiate(rng, transport);
  EXPECT_EQ(node.view().degree(), 2u);
  EXPECT_EQ(node.tombstone_count(), 2u);
  EXPECT_EQ(node.metrics().duplications, 0u);
}

TEST(SendForgetExt, MarkModeUndeletesInsteadOfDuplicating) {
  auto cfg = base_config();
  cfg.mark_instead_of_clear = true;
  SendForgetExt node(7, cfg);
  node.install_view({1, 2, 3, 4});
  Rng rng(5);
  CaptureTransport transport;
  // First effective action: degree 4 -> 2, two tombstones.
  while (transport.sent.empty()) node.on_initiate(rng, transport);
  ASSERT_EQ(node.tombstone_count(), 2u);
  // Second effective action from degree 2 (= dL): would duplicate, but
  // mark mode revives the two tombstones first, then clears.
  transport.sent.clear();
  while (transport.sent.empty()) node.on_initiate(rng, transport);
  EXPECT_EQ(node.undeletions(), 2u);
  EXPECT_EQ(node.metrics().duplications, 0u);
  EXPECT_EQ(node.view().degree(), 2u);
  EXPECT_EQ(node.tombstone_count(), 2u);  // the newly sent pair
  // Revived entries are labeled dependent.
  EXPECT_GE(node.view().dependent_count() + 2u, 2u);
}

TEST(SendForgetExt, MarkModeFallsBackToDuplicationWithoutTombstones) {
  auto cfg = base_config();
  cfg.mark_instead_of_clear = true;
  SendForgetExt node(7, cfg);
  node.install_view({1, 2});  // at dL, no tombstones available
  Rng rng(6);
  CaptureTransport transport;
  while (transport.sent.empty()) node.on_initiate(rng, transport);
  EXPECT_EQ(node.metrics().duplications, 1u);
  EXPECT_EQ(node.view().degree(), 2u);
  EXPECT_EQ(node.undeletions(), 0u);
}

TEST(SendForgetExt, ReceiveReusesTombstonedSlots) {
  auto cfg = base_config();
  cfg.mark_instead_of_clear = true;
  SendForgetExt node(7, cfg);
  node.install_view({1, 2, 3, 4, 5, 6, 8, 9});  // full (8 slots)
  Rng rng(7);
  CaptureTransport transport;
  while (transport.sent.empty()) node.on_initiate(rng, transport);
  ASSERT_EQ(node.tombstone_count(), 2u);
  ASSERT_EQ(node.view().degree(), 6u);
  // Receiving reclaims the tombstoned slots; the stashes die.
  Message m;
  m.from = 3;
  m.to = 7;
  m.kind = MessageKind::kPush;
  m.payload = {ViewEntry{30, false}, ViewEntry{31, false}};
  node.on_message(m, rng, transport);
  EXPECT_EQ(node.view().degree(), 8u);
  EXPECT_EQ(node.tombstone_count(), 0u);
  EXPECT_TRUE(node.view().contains(30));
}

TEST(SendForgetExt, ReplaceWhenFullEvictsInsteadOfDeleting) {
  auto cfg = base_config();
  cfg.replace_when_full = true;
  SendForgetExt node(7, cfg);
  node.install_view({1, 2, 3, 4, 5, 6, 8, 9});
  ASSERT_TRUE(node.view().full());
  Rng rng(8);
  CaptureTransport transport;
  Message m;
  m.from = 3;
  m.to = 7;
  m.kind = MessageKind::kPush;
  m.payload = {ViewEntry{30, false}, ViewEntry{31, false}};
  node.on_message(m, rng, transport);
  EXPECT_TRUE(node.view().contains(30));
  EXPECT_TRUE(node.view().contains(31));
  EXPECT_EQ(node.replacements(), 2u);
  EXPECT_EQ(node.metrics().deletions, 0u);
  EXPECT_TRUE(node.view().full());
}

TEST(SendForgetExt, DegreeInvariantAcrossRandomTraffic) {
  for (const bool mark : {false, true}) {
    for (const bool replace : {false, true}) {
      auto cfg = SendForgetExtConfig{.view_size = 12,
                                     .min_degree = 4,
                                     .pairs_per_message = 2,
                                     .mark_instead_of_clear = mark,
                                     .replace_when_full = replace};
      SendForgetExt node(0, cfg);
      node.install_view({1, 2, 3, 4, 5, 6});
      Rng rng(100 + (mark ? 1 : 0) + (replace ? 2 : 0));
      CaptureTransport transport;
      for (int i = 0; i < 3000; ++i) {
        if (rng.bernoulli(0.5)) {
          node.on_initiate(rng, transport);
        } else {
          Message m;
          m.from = static_cast<NodeId>(1 + rng.uniform(40));
          m.to = 0;
          m.kind = MessageKind::kPush;
          m.payload = {
              ViewEntry{m.from, false},
              ViewEntry{static_cast<NodeId>(1 + rng.uniform(40)), false}};
          node.on_message(m, rng, transport);
        }
        const auto d = node.view().degree();
        ASSERT_EQ(d % 2, 0u) << "mark=" << mark << " replace=" << replace;
        ASSERT_LE(d, cfg.view_size);
      }
    }
  }
}


TEST(SendForgetExt, BaseConfigStatisticallyMatchesSendForget) {
  // With p = 1 and both flags off, the variant IS the base protocol; the
  // two implementations must land on the same steady state.
  auto run = [](bool ext) {
    Rng rng(321);
    sim::Cluster cluster(600, [ext](NodeId id) -> std::unique_ptr<PeerProtocol> {
      if (ext) {
        return std::make_unique<SendForgetExt>(
            id, SendForgetExtConfig{.view_size = 24, .min_degree = 8});
      }
      return std::make_unique<SendForget>(
          id, SendForgetConfig{.view_size = 24, .min_degree = 8});
    });
    cluster.install_graph(permutation_regular(600, 6, rng));
    sim::UniformLoss loss(0.05);
    sim::RoundDriver driver(cluster, loss, rng);
    driver.run_rounds(400);
    return degree_summary(cluster.snapshot());
  };
  const auto base = run(false);
  const auto ext = run(true);
  EXPECT_NEAR(base.out_mean, ext.out_mean, 0.4);
  EXPECT_NEAR(base.in_variance, ext.in_variance, base.in_variance * 0.3);
}

TEST(SendForgetExt, MarkVariantDegreesMatchBaseDegreeMc) {
  // Undeletion replaces duplication one-for-one in the edge balance, so
  // the *degree* steady state of the mark variant is predicted by the
  // base chain of §6.2.
  analysis::DegreeMcParams params;
  params.view_size = 24;
  params.min_degree = 8;
  params.loss = 0.05;
  const auto mc = analysis::solve_degree_mc(params);

  Rng rng(654);
  sim::Cluster cluster(800, [](NodeId id) {
    return std::make_unique<SendForgetExt>(
        id, SendForgetExtConfig{.view_size = 24,
                                .min_degree = 8,
                                .mark_instead_of_clear = true});
  });
  cluster.install_graph(permutation_regular(800, 6, rng));
  sim::UniformLoss loss(0.05);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(600);
  const auto summary = degree_summary(cluster.snapshot());
  EXPECT_NEAR(summary.out_mean, mc.expected_out, 0.5);
}

}  // namespace
}  // namespace gossip
