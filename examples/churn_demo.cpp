// Churn demo: a long-lived overlay where nodes continuously join and
// leave (fail) while messages are being lost. Demonstrates §6.5: ids of
// departed nodes wash out of views at a geometric rate, joiners integrate
// within ~2s rounds, and the live overlay stays connected throughout.
//
//   $ ./churn_demo [rounds]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "analysis/decay.hpp"
#include "core/send_forget.hpp"
#include "graph/connectivity.hpp"
#include "graph/graph_gen.hpp"
#include "graph/graph_stats.hpp"
#include "sim/churn.hpp"
#include "sim/round_driver.hpp"

int main(int argc, char** argv) {
  using namespace gossip;

  const std::uint64_t total_rounds =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 600;
  constexpr std::size_t kInitialNodes = 600;
  constexpr double kLoss = 0.02;

  const SendForgetConfig config{.view_size = 24, .min_degree = 8};
  const auto factory = [&](NodeId id) {
    return std::make_unique<SendForget>(id, config);
  };

  Rng rng(7);
  sim::Cluster cluster(kInitialNodes, factory);
  cluster.install_graph(permutation_regular(kInitialNodes, 6, rng));
  sim::UniformLoss loss(kLoss);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(100);  // settle before churn starts

  // Per round: ~0.5 joins + ~0.5 leaves in expectation — aggressive churn
  // for a 600-node system. Joiners bootstrap dL ids from a random
  // contact's view (§5).
  sim::ChurnProcess churn(cluster, factory, config.min_degree,
                          /*join_rate=*/0.5, /*leave_rate=*/0.5,
                          /*min_live=*/200);

  std::printf("%8s %8s %8s %10s %10s %10s %6s\n", "round", "live", "dead",
              "E[outdeg]", "in-sd", "dead-refs", "conn");
  for (std::uint64_t round = 0; round < total_rounds; ++round) {
    churn.maybe_churn(rng);
    driver.run_rounds(1);
    if ((round + 1) % 100 != 0) continue;

    const auto snap = cluster.snapshot();
    const auto live = cluster.live_nodes();
    // Fraction of live nodes' view entries naming dead nodes, and live
    // indegrees (counting only edges held by live nodes — dead nodes'
    // frozen views send no traffic).
    std::size_t dead_refs = 0;
    std::size_t refs = 0;
    double out_sum = 0.0;
    std::vector<std::size_t> live_in(cluster.size(), 0);
    for (const NodeId u : live) {
      for (const NodeId v : cluster.node(u).view().ids()) {
        ++refs;
        if (!cluster.live(v)) ++dead_refs;
        if (v < live_in.size()) ++live_in[v];
      }
      out_sum += static_cast<double>(cluster.node(u).view().degree());
    }
    double in_mean = 0.0;
    double in_m2 = 0.0;
    std::size_t count = 0;
    for (const NodeId u : live) {
      const double x = static_cast<double>(live_in[u]);
      ++count;
      const double delta = x - in_mean;
      in_mean += delta / static_cast<double>(count);
      in_m2 += delta * (x - in_mean);
    }
    const double in_sd = std::sqrt(in_m2 / static_cast<double>(count));
    std::printf("%8llu %8zu %8zu %10.2f %10.2f %9.1f%% %6s\n",
                static_cast<unsigned long long>(round + 1), live.size(),
                cluster.size() - live.size(),
                out_sum / static_cast<double>(live.size()), in_sd,
                100.0 * static_cast<double>(dead_refs) /
                    static_cast<double>(refs),
                is_weakly_connected_among(snap, cluster.liveness()) ? "yes"
                                                                    : "NO");
  }

  std::printf("\n%zu joins, %zu leaves processed.\n", churn.total_joins(),
              churn.total_leaves());
  analysis::DecayParams decay{.view_size = config.view_size,
                              .min_degree = config.min_degree,
                              .loss = kLoss,
                              .delta = 0.01};
  std::printf("Lemma 6.10: a leaver's ids halve every ~%zu rounds; "
              "Lemma 6.13: a joiner integrates within ~%.0f rounds.\n",
              analysis::rounds_until_survival_below(decay, 0.5),
              analysis::joiner_integration_rounds(decay));
  return 0;
}
