#include "obs/recovery.hpp"

#include <algorithm>
#include <bit>
#include <ostream>
#include <sstream>
#include <utility>

namespace gossip::obs {

namespace {

constexpr std::uint32_t lane_bit(RecoveryLane lane) {
  return 1u << static_cast<std::uint32_t>(lane);
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// JSON array of lane names for a lane bitmask: 5 -> ["degree","watchdog"].
void write_lane_names(std::ostream& out, std::uint32_t lanes) {
  out << '[';
  bool first = true;
  for (std::size_t l = 0;
       l < static_cast<std::size_t>(RecoveryLane::kLaneCount); ++l) {
    if ((lanes & (1u << l)) == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << recovery_lane_name(static_cast<RecoveryLane>(l)) << '"';
  }
  out << ']';
}

}  // namespace

const char* recovery_lane_name(RecoveryLane lane) {
  switch (lane) {
    case RecoveryLane::kDegree: return "degree";
    case RecoveryLane::kConnectivity: return "connectivity";
    case RecoveryLane::kWatchdog: return "watchdog";
    case RecoveryLane::kOracle: return "oracle";
    case RecoveryLane::kLaneCount: break;
  }
  return "unknown";
}

RecoveryTracker::RecoveryTracker(RecoveryConfig config) : config_(config) {}

void RecoveryTracker::declare_window(std::uint64_t begin, std::uint64_t end,
                                     std::string label) {
  RecoveryEpisode e;
  e.label = std::move(label);
  e.declared = true;
  e.begin = begin;
  e.heal = end;
  // Declared windows occupy the episodes_ prefix; undeclared excursions
  // are appended behind them as they open.
  episodes_.insert(episodes_.begin() +
                       static_cast<std::ptrdiff_t>(declared_count_),
                   std::move(e));
  ++declared_count_;
  window_begun_.insert(window_begun_.begin() +
                           static_cast<std::ptrdiff_t>(declared_count_ - 1),
                       0);
  window_healed_.insert(window_healed_.begin() +
                            static_cast<std::ptrdiff_t>(declared_count_ - 1),
                        0);
  if (open_undeclared_ >= 0) ++open_undeclared_;
}

void RecoveryTracker::bind_registry(MetricsRegistry* registry,
                                    std::size_t shard) {
  registry_ = registry;
  registry_shard_ = shard;
  if (registry_ == nullptr) return;
  degraded_gauge_ = registry_->gauge("recovery_degraded_lanes");
  episodes_gauge_ = registry_->gauge("recovery_episodes");
  unrecovered_gauge_ = registry_->gauge("recovery_unrecovered");
  last_rounds_gauge_ = registry_->gauge("recovery_last_rounds");
}

void RecoveryTracker::annotate(std::uint64_t round, std::string label) {
  if (series_ != nullptr) series_->annotate(round, std::move(label));
}

double RecoveryTracker::largest_component_fraction(
    const FlatSendForgetCluster& cluster) {
  const std::size_t n = cluster.size();
  const std::size_t s = cluster.view_size();
  uf_parent_.resize(n);
  uf_size_.assign(n, 1);
  for (std::uint32_t u = 0; u < n; ++u) uf_parent_[u] = u;
  const auto find = [this](std::uint32_t x) {
    while (uf_parent_[x] != x) {
      uf_parent_[x] = uf_parent_[uf_parent_[x]];  // path halving
      x = uf_parent_[x];
    }
    return x;
  };
  const auto unite = [this, &find](std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (uf_size_[a] < uf_size_[b]) std::swap(a, b);
    uf_parent_[b] = a;
    uf_size_[a] += uf_size_[b];
  };
  std::size_t live = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (!cluster.live(u)) continue;
    ++live;
    const PackedViewEntry* row = cluster.slots(u);
    for (std::size_t i = 0; i < s; ++i) {
      if (row[i].empty()) continue;
      const NodeId v = row[i].id_unchecked();
      if (v < n && cluster.live(v)) unite(u, static_cast<std::uint32_t>(v));
    }
  }
  if (live == 0) return 1.0;
  std::uint32_t largest = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (!cluster.live(u)) continue;
    const std::uint32_t root = find(static_cast<std::uint32_t>(u));
    largest = std::max(largest, uf_size_[root]);
  }
  // uf_size_ counts dead singletons too, but dead nodes are never united
  // with anything, so a live root's size counts live members only... except
  // the root of a live node is always live-reachable; sizes only grow by
  // unite calls, which involve live endpoints plus each node's initial 1.
  // Dead nodes keep their own singleton sets and never inflate a live
  // component.
  return static_cast<double>(largest) / static_cast<double>(live);
}

std::uint32_t RecoveryTracker::evaluate_lanes(
    std::uint64_t round, const FlatClusterProbe& probe,
    const FlatSendForgetCluster* cluster, const InvariantWatchdog* watchdog,
    const DriftMonitor* monitor) {
  std::uint32_t lanes = 0;

  // --- degree lane ---
  bool degree_out = false;
  if (probe.live_nodes > 0) {
    std::uint64_t structural = 0;
    for (std::size_t d = 0; d < probe.outdegree_hist.size(); ++d) {
      const bool below =
          round >= config_.warmup_rounds && d < config_.min_degree;
      const bool odd = (d % 2) != 0;
      if (below || odd) structural += probe.outdegree_hist[d];
    }
    if (static_cast<double>(structural) /
            static_cast<double>(probe.live_nodes) >
        config_.max_structural_fraction) {
      degree_out = true;
    }
    if (have_baseline_) {
      const double mean = probe.outdegree.mean;
      if (degree_mean_out_) {
        if (mean >= baseline_mean_ - config_.degree_recover) {
          degree_mean_out_ = false;
        }
      } else if (mean < baseline_mean_ - config_.degree_drop) {
        degree_mean_out_ = true;
      }
      if (degree_mean_out_) degree_out = true;
    }
    if (have_floor_) {
      const double mean = probe.outdegree.mean;
      if (floor_out_) {
        if (mean >= floor_value_ +
                        (config_.degree_drop - config_.degree_recover)) {
          floor_out_ = false;
        }
      } else if (mean < floor_value_) {
        floor_out_ = true;
      }
      if (floor_out_) degree_out = true;
    }
  }
  if (degree_out) lanes |= lane_bit(RecoveryLane::kDegree);

  // --- connectivity lane ---
  component_fraction_ = 1.0;
  if (cluster != nullptr && probe.live_nodes > 0) {
    component_fraction_ = largest_component_fraction(*cluster);
    if (component_fraction_ < config_.min_component_fraction) {
      lanes |= lane_bit(RecoveryLane::kConnectivity);
    }
  }

  // --- watchdog lane (new violations since the previous probe) ---
  if (watchdog != nullptr) {
    const std::uint64_t v = watchdog->violation_count();
    if (v > last_watchdog_violations_) {
      lanes |= lane_bit(RecoveryLane::kWatchdog);
    }
    last_watchdog_violations_ = v;
  }

  // --- oracle lane ---
  if (monitor != nullptr) {
    bool out = monitor->overall_state() != DriftState::kOk;
    if (!out && !monitor->samples().empty()) {
      // Expected probes never transition states, so also read the raw
      // scores of the latest sample — a declared fault still counts as
      // degradation the overlay must recover from.
      for (const double score : monitor->samples().back().score) {
        if (score > 1.0) {
          out = true;
          break;
        }
      }
    }
    if (out) lanes |= lane_bit(RecoveryLane::kOracle);
  }
  return lanes;
}

void RecoveryTracker::observe(std::uint64_t round,
                              const FlatClusterProbe& probe,
                              const FlatSendForgetCluster* cluster,
                              const InvariantWatchdog* watchdog,
                              const DriftMonitor* monitor) {
  const std::uint32_t lanes =
      evaluate_lanes(round, probe, cluster, watchdog, monitor);
  degraded_lanes_ = lanes;

  // Is this round covered by a declared window (active, or healed but not
  // yet recovered)? Covered out-of-band probes never open undeclared
  // episodes — the window owns them.
  bool covered = false;
  for (std::size_t i = 0; i < declared_count_; ++i) {
    if (round >= episodes_[i].begin && !episodes_[i].recovered) {
      covered = true;
      break;
    }
  }

  // Calm-baseline update for the degree lane: only while fully in band
  // and outside every window, so faulted probes never poison it.
  if (round >= config_.warmup_rounds && !covered && lanes == 0 &&
      open_undeclared_ < 0) {
    baseline_mean_ = probe.outdegree.mean;
    have_baseline_ = true;
    // The floor is pinned at the FIRST calm baseline and never chases:
    // that is the whole point (see RecoveryConfig::degree_floor_fraction).
    if (!have_floor_ && config_.degree_floor_fraction > 0.0) {
      floor_value_ = config_.degree_floor_fraction * probe.outdegree.mean;
      have_floor_ = true;
    }
  }

  // --- declared windows ---
  for (std::size_t i = 0; i < declared_count_; ++i) {
    RecoveryEpisode& e = episodes_[i];
    if (round < e.begin || e.recovered) continue;
    if (window_begun_[i] == 0) {
      window_begun_[i] = 1;
      annotate(round, "fault:" + e.label + ":begin");
    }
    if (round >= e.heal && window_healed_[i] == 0) {
      window_healed_[i] = 1;
      annotate(round, "fault:" + e.label + ":heal");
    }
    if (lanes != 0) {
      e.degraded = true;
      e.lanes |= lanes;
    }
    if (round >= e.heal && lanes == 0) {
      e.recovered = true;
      e.recovered_round = round;
      annotate(round, "recovered:" + e.label);
    }
  }

  // --- undeclared excursions ---
  if (open_undeclared_ >= 0) {
    RecoveryEpisode& e =
        episodes_[static_cast<std::size_t>(open_undeclared_)];
    if (lanes != 0) {
      e.lanes |= lanes;
    } else {
      e.recovered = true;
      e.recovered_round = round;
      annotate(round, "recovered:undeclared");
      open_undeclared_ = -1;
    }
  } else if (lanes != 0 && !covered && round >= config_.warmup_rounds) {
    RecoveryEpisode e;
    e.label = "undeclared";
    e.begin = round;
    e.heal = round;
    e.degraded = true;
    e.lanes = lanes;
    episodes_.push_back(std::move(e));
    open_undeclared_ = static_cast<std::int64_t>(episodes_.size()) - 1;
    annotate(round, "degraded:undeclared");
  }

  if (registry_ != nullptr) {
    registry_->set(degraded_gauge_, registry_shard_,
                   static_cast<double>(std::popcount(lanes)));
    registry_->set(episodes_gauge_, registry_shard_,
                   static_cast<double>(episodes_.size()));
    registry_->set(unrecovered_gauge_, registry_shard_,
                   static_cast<double>(unrecovered()));
    std::uint64_t last_rounds = 0;
    for (const RecoveryEpisode& e : episodes_) {
      if (e.recovered) last_rounds = e.recovery_rounds();
    }
    registry_->set(last_rounds_gauge_, registry_shard_,
                   static_cast<double>(last_rounds));
  }
}

const RecoveryEpisode* RecoveryTracker::episode(
    const std::string& label) const {
  for (const RecoveryEpisode& e : episodes_) {
    if (e.label == label) return &e;
  }
  return nullptr;
}

std::size_t RecoveryTracker::unrecovered() const {
  std::size_t count = 0;
  for (const RecoveryEpisode& e : episodes_) {
    if (e.degraded && !e.recovered) ++count;
  }
  return count;
}

std::string RecoveryTracker::report() const {
  std::ostringstream out;
  out << "recovery tracker: " << episodes_.size() << " episode(s), "
      << unrecovered() << " unrecovered";
  if (have_baseline_) out << ", calm mean degree " << baseline_mean_;
  out << '\n';
  for (const RecoveryEpisode& e : episodes_) {
    out << "  '" << e.label << "' [" << e.begin << ", " << e.heal << ") ";
    if (!e.degraded) {
      out << "never degraded";
      if (e.recovered) out << " (in band at round " << e.recovered_round << ")";
    } else if (e.recovered) {
      out << "recovered in " << e.recovery_rounds() << " round(s) at round "
          << e.recovered_round;
    } else {
      out << "NOT recovered";
    }
    if (e.lanes != 0) {
      out << " [lanes:";
      for (std::size_t l = 0;
           l < static_cast<std::size_t>(RecoveryLane::kLaneCount); ++l) {
        if ((e.lanes & (1u << l)) != 0) {
          out << ' ' << recovery_lane_name(static_cast<RecoveryLane>(l));
        }
      }
      out << ']';
    }
    out << '\n';
  }
  return out.str();
}

void RecoveryTracker::write_json(std::ostream& out) const {
  out << "{\"degraded_lanes\":" << degraded_lanes_
      << ",\"degraded_lane_names\":";
  write_lane_names(out, degraded_lanes_);
  out << ",\"unrecovered\":" << unrecovered()
      << ",\"component_fraction\":" << component_fraction_
      << ",\"baseline_mean_degree\":" << baseline_mean_
      << ",\"episodes\":[";
  for (std::size_t i = 0; i < episodes_.size(); ++i) {
    if (i != 0) out << ',';
    const RecoveryEpisode& e = episodes_[i];
    out << "{\"label\":\"" << json_escape(e.label) << "\",\"declared\":"
        << (e.declared ? "true" : "false") << ",\"begin\":" << e.begin
        << ",\"heal\":" << e.heal
        << ",\"degraded\":" << (e.degraded ? "true" : "false")
        << ",\"lanes\":" << e.lanes << ",\"lane_names\":";
    write_lane_names(out, e.lanes);
    out << ",\"recovered\":" << (e.recovered ? "true" : "false")
        << ",\"recovered_round\":" << e.recovered_round
        << ",\"recovery_rounds\":" << e.recovery_rounds() << '}';
  }
  out << "]}";
}

}  // namespace gossip::obs
