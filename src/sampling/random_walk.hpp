// Random-walk sampling on the membership graph — the alternative §3.1
// argues against.
//
// A node obtains a "random" peer by launching a token that takes L hops,
// each hop forwarding to a uniform entry of the current holder's view; the
// endpoint is returned to the origin. Every hop and the final reply are
// messages, so under loss rate ℓ a walk succeeds with probability about
// (1-ℓ)^(L+1) — exponentially decaying in L, the paper's first objection.
// The second objection is bias: on a non-regular membership graph the
// walk's endpoint follows the degree-biased stationary distribution, not
// the uniform one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "sim/loss.hpp"

namespace gossip::sampling {

struct RandomWalkConfig {
  // Number of forwarding hops before the token stops.
  std::size_t walk_length = 10;
  // Whether the endpoint must be reported back to the origin with one
  // additional (lossy) message.
  bool reply_required = true;
};

struct RandomWalkStats {
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;  // token survived all hops (+ reply)
  std::uint64_t stalled = 0;    // a holder had an empty view

  [[nodiscard]] double success_rate() const {
    return attempted == 0
               ? 0.0
               : static_cast<double>(completed) /
                     static_cast<double>(attempted);
  }
};

class RandomWalkSampler {
 public:
  RandomWalkSampler(const sim::Cluster& cluster, sim::LossModel& loss,
                    RandomWalkConfig config = {});

  // Runs one walk from `origin` over the cluster's *current* views.
  // Returns the sampled id on success, nullopt if any message was lost,
  // the walk entered a dead node, or a holder had no entries to forward
  // to. Statistics accumulate across calls.
  std::optional<NodeId> sample(NodeId origin, Rng& rng);

  [[nodiscard]] const RandomWalkStats& stats() const { return stats_; }

 private:
  const sim::Cluster& cluster_;
  sim::LossModel& loss_;
  RandomWalkConfig config_;
  RandomWalkStats stats_;
};

// Analytical success probability of a walk under i.i.d. loss:
// (1 - loss)^(hops + reply).
[[nodiscard]] double walk_success_probability(std::size_t walk_length,
                                              bool reply_required,
                                              double loss);

}  // namespace gossip::sampling
