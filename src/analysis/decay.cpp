#include "analysis/decay.hpp"

#include <cmath>
#include <stdexcept>

namespace gossip::analysis {

namespace {

void validate(const DecayParams& p) {
  if (p.view_size == 0) throw std::invalid_argument("view size must be > 0");
  if (p.min_degree > p.view_size) {
    throw std::invalid_argument("dL must be <= s");
  }
  if (p.loss < 0.0 || p.loss >= 1.0) {
    throw std::invalid_argument("loss must be in [0, 1)");
  }
  if (p.delta < 0.0 || p.loss + p.delta >= 1.0) {
    throw std::invalid_argument("need ℓ + δ < 1");
  }
}

}  // namespace

double survival_factor(const DecayParams& p) {
  validate(p);
  const double s = static_cast<double>(p.view_size);
  const double removal =
      (1.0 - p.loss - p.delta) * static_cast<double>(p.min_degree) / (s * s);
  return 1.0 - removal;
}

std::vector<double> leave_survival_bound(const DecayParams& p,
                                         std::size_t rounds) {
  const double factor = survival_factor(p);
  std::vector<double> bound(rounds + 1);
  double value = 1.0;
  for (std::size_t r = 0; r <= rounds; ++r) {
    bound[r] = value;
    value *= factor;
  }
  return bound;
}

std::size_t rounds_until_survival_below(const DecayParams& p,
                                        double threshold) {
  if (threshold <= 0.0 || threshold > 1.0) {
    throw std::invalid_argument("threshold must be in (0, 1]");
  }
  const double factor = survival_factor(p);
  if (factor >= 1.0) {
    throw std::runtime_error("no decay: dL = 0 or ℓ + δ = 1");
  }
  // Smallest r with factor^r < threshold.
  const double r = std::log(threshold) / std::log(factor);
  return static_cast<std::size_t>(std::ceil(r + 1e-12));
}

double veteran_creation_rate(const DecayParams& p) {
  validate(p);
  const double s = static_cast<double>(p.view_size);
  return (1.0 - p.loss - p.delta) * static_cast<double>(p.min_degree) /
         (s * s);
}

double joiner_creation_ratio(const DecayParams& p) {
  validate(p);
  const double ratio =
      static_cast<double>(p.min_degree) / static_cast<double>(p.view_size);
  return ratio * ratio;
}

double joiner_integration_rounds(const DecayParams& p) {
  const double rate = veteran_creation_rate(p);
  if (rate <= 0.0) throw std::runtime_error("dL = 0: joiner never integrates");
  return 1.0 / rate;
}

double joiner_instances_fraction(const DecayParams& p) {
  return joiner_creation_ratio(p);
}

std::vector<DecaySweepPoint> decay_sweep(DecayParams params,
                                         std::span<const double> losses,
                                         double threshold) {
  std::vector<DecaySweepPoint> out(losses.size());
  for (std::size_t i = 0; i < losses.size(); ++i) {
    params.loss = losses[i];
    DecaySweepPoint& p = out[i];
    p.loss = losses[i];
    p.survival_factor = survival_factor(params);
    p.rounds_until_below = rounds_until_survival_below(params, threshold);
    p.joiner_integration_rounds = joiner_integration_rounds(params);
  }
  return out;
}

}  // namespace gossip::analysis
