#include "common/histogram.hpp"
#include "common/histogram.hpp"
