# Empty dependencies file for sec7_2_global_mc.
# This may be replaced when dependencies are built.
