#include "core/send_forget.hpp"
#include "core/send_forget.hpp"
