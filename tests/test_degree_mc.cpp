#include "analysis/degree_mc.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/stats.hpp"

namespace gossip::analysis {
namespace {

DegreeMcParams paper_params(double loss) {
  DegreeMcParams p;
  p.view_size = 40;
  p.min_degree = 18;
  p.loss = loss;
  return p;
}

TEST(DegreeMc, ValidatesParameters) {
  DegreeMcParams p;
  p.view_size = 5;
  EXPECT_THROW(solve_degree_mc(p), std::invalid_argument);
  p = DegreeMcParams{};
  p.min_degree = 17;
  EXPECT_THROW(solve_degree_mc(p), std::invalid_argument);
  p = DegreeMcParams{};
  p.min_degree = 36;  // > s - 6
  EXPECT_THROW(solve_degree_mc(p), std::invalid_argument);
  p = DegreeMcParams{};
  p.loss = 1.0;
  EXPECT_THROW(solve_degree_mc(p), std::invalid_argument);
  p = DegreeMcParams{};
  p.fixed_sum_degree = 30;  // requires dL = 0
  EXPECT_THROW(solve_degree_mc(p), std::invalid_argument);
  p = DegreeMcParams{};
  p.min_degree = 0;
  p.fixed_sum_degree = 42;  // > s
  EXPECT_THROW(solve_degree_mc(p), std::invalid_argument);
}

TEST(DegreeMc, StationaryIsNormalizedAndMarginalsMatch) {
  const auto r = solve_degree_mc(paper_params(0.01));
  EXPECT_TRUE(r.converged);
  double total = 0.0;
  for (const double x : r.stationary) total += x;
  EXPECT_NEAR(total, 1.0, 1e-9);
  double out_total = 0.0;
  for (const double x : r.out_pmf) out_total += x;
  EXPECT_NEAR(out_total, 1.0, 1e-9);
  const auto out_m = pmf_moments(r.out_pmf);
  EXPECT_NEAR(out_m.mean, r.expected_out, 1e-9);
}

TEST(DegreeMc, OutdegreeSupportRespectsThresholds) {
  // Observation 5.1: outdegree even, within [dL, s].
  const auto r = solve_degree_mc(paper_params(0.05));
  for (std::size_t d = 0; d < r.out_pmf.size(); ++d) {
    if (d % 2 == 1 || d < 18 || d > 40) {
      EXPECT_DOUBLE_EQ(r.out_pmf[d], 0.0) << "d=" << d;
    }
  }
  EXPECT_GE(r.expected_out, 18.0);
  EXPECT_LE(r.expected_out, 40.0);
}

TEST(DegreeMc, NoLossSteadyStateIsBalanced) {
  const auto r = solve_degree_mc(paper_params(0.0));
  // Mean-field consistency: E[in] = E[out] (every edge has a head and a
  // tail).
  EXPECT_NEAR(r.expected_in, r.expected_out, 0.05);
  // Lemma 6.6 with l = 0: dup = del.
  EXPECT_NEAR(r.duplication_probability, r.deletion_probability, 1e-6);
  // §6.3: with these thresholds the no-loss duplication probability is the
  // tolerance delta = 0.01 (approximately).
  EXPECT_LT(r.duplication_probability, 0.012);
}

TEST(DegreeMc, Lemma66DupEqualsLossPlusDeletion) {
  for (const double loss : {0.01, 0.05, 0.1}) {
    const auto r = solve_degree_mc(paper_params(loss));
    EXPECT_NEAR(r.duplication_probability,
                loss + r.deletion_probability, 1e-4)
        << "loss=" << loss;
  }
}

TEST(DegreeMc, Lemma67DuplicationWithinBand) {
  // dup in [l, l + delta] with delta ~ the no-loss duplication prob.
  const double delta = solve_degree_mc(paper_params(0.0)).duplication_probability;
  for (const double loss : {0.01, 0.05, 0.1}) {
    const auto r = solve_degree_mc(paper_params(loss));
    EXPECT_GE(r.duplication_probability, loss - 1e-6);
    EXPECT_LE(r.duplication_probability, loss + delta + 1e-3);
  }
}

TEST(DegreeMc, Lemma64ExpectedOutdegreeDecreasesWithLoss) {
  double prev = 41.0;
  for (const double loss : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    const auto r = solve_degree_mc(paper_params(loss));
    EXPECT_LT(r.expected_out, prev) << "loss=" << loss;
    EXPECT_GT(r.expected_out, 18.0);  // stays above dL
    prev = r.expected_out;
  }
}

TEST(DegreeMc, Observation65DeletionDecreasesWithLoss) {
  double prev = 1.0;
  for (const double loss : {0.0, 0.01, 0.05, 0.1}) {
    const auto r = solve_degree_mc(paper_params(loss));
    EXPECT_LE(r.deletion_probability, prev + 1e-9) << "loss=" << loss;
    prev = r.deletion_probability;
  }
}

TEST(DegreeMc, PaperFig63IndegreeMeans) {
  // §6.4: indegree means 28, 27, 24, 23 for l = 0, .01, .05, .1.
  const double expected[] = {28.0, 27.0, 24.0, 23.0};
  const double losses[] = {0.0, 0.01, 0.05, 0.1};
  for (int k = 0; k < 4; ++k) {
    const auto r = solve_degree_mc(paper_params(losses[k]));
    EXPECT_NEAR(r.expected_in, expected[k], 0.6) << "loss=" << losses[k];
  }
}

TEST(DegreeMc, FixedSumLineConservesSumDegree) {
  DegreeMcParams p;
  p.view_size = 30;
  p.min_degree = 0;
  p.loss = 0.0;
  p.fixed_sum_degree = 30;
  const auto r = solve_degree_mc(p);
  EXPECT_TRUE(r.converged);
  // All states sit on the line out + 2*in = 30.
  for (const auto& st : r.states) {
    EXPECT_EQ(st.out + 2 * st.in, 30u);
  }
  // Lemma 6.3: mean degree dm/3 = 10.
  EXPECT_NEAR(r.expected_out, 10.0, 0.3);
  EXPECT_NEAR(r.expected_in, 10.0, 0.3);
  // No loss, dL = 0: no duplications; no deletions on the line.
  EXPECT_DOUBLE_EQ(r.duplication_probability, 0.0);
  EXPECT_NEAR(r.deletion_probability, 0.0, 1e-9);
}

TEST(DegreeMc, FixedSumMatchesAnalyticalApproximation) {
  DegreeMcParams p;
  p.view_size = 90;
  p.min_degree = 0;
  p.loss = 0.0;
  p.fixed_sum_degree = 90;
  const auto r = solve_degree_mc(p);
  // The paper's Fig 6.1: analytical and MC distributions have similar form;
  // means agree at dm/3 = 30.
  EXPECT_NEAR(pmf_moments(r.out_pmf).mean, 30.0, 0.2);
  EXPECT_NEAR(pmf_moments(r.in_pmf).mean, 30.0, 0.1);
}

TEST(DegreeMc, SumDegreeCapDoesNotAffectResults) {
  // §6.2: the 3s truncation is purely computational. Doubling it must not
  // change the answer measurably.
  auto p = paper_params(0.05);
  const auto base = solve_degree_mc(p);
  p.sum_degree_cap = 6 * p.view_size;
  const auto wide = solve_degree_mc(p);
  EXPECT_NEAR(base.expected_in, wide.expected_in, 0.02);
  EXPECT_NEAR(base.expected_out, wide.expected_out, 0.02);
  EXPECT_NEAR(base.duplication_probability, wide.duplication_probability,
              1e-3);
}


TEST(DegreeMc, ConvergenceDiagnosticsArePopulated) {
  const auto r = solve_degree_mc(paper_params(0.05));
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.fixed_point_iterations, 0u);
  EXPECT_LE(r.fixed_point_iterations, DegreeMcParams{}.max_fixed_point_iterations);
  // Inner power-iteration steps accumulate across outer iterations, so
  // there are strictly more of them than outer steps.
  EXPECT_GT(r.stationary_iterations, r.fixed_point_iterations);
  EXPECT_LE(r.fixed_point_residual, DegreeMcParams{}.fixed_point_tolerance);
  EXPECT_LE(r.stationary_residual, DegreeMcParams{}.stationary_tolerance);
}

TEST(DegreeMc, SweepMatchesPerPointSolves) {
  const std::vector<double> losses{0.0, 0.02, 0.08};
  auto p = paper_params(0.0);
  const auto swept = solve_degree_mc_sweep(p, losses);
  ASSERT_EQ(swept.size(), losses.size());
  for (std::size_t i = 0; i < losses.size(); ++i) {
    p.loss = losses[i];
    const auto single = solve_degree_mc(p);
    ASSERT_TRUE(swept[i].converged) << "loss=" << losses[i];
    EXPECT_NEAR(swept[i].expected_in, single.expected_in, 1e-8)
        << "loss=" << losses[i];
    EXPECT_NEAR(swept[i].expected_out, single.expected_out, 1e-8)
        << "loss=" << losses[i];
    EXPECT_NEAR(swept[i].duplication_probability,
                single.duplication_probability, 1e-8)
        << "loss=" << losses[i];
  }
}

TEST(DegreeMc, SweepValidatesLosses) {
  const std::vector<double> bad{0.0, 1.0};
  EXPECT_THROW(solve_degree_mc_sweep(paper_params(0.0), bad),
               std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_TRUE(solve_degree_mc_sweep(paper_params(0.0), empty).empty());
}

TEST(DegreeMc, DampedAndAndersonFindTheSameFixedPoint) {
  auto p = paper_params(0.05);
  p.acceleration = DegreeMcAcceleration::kAnderson;
  const auto anderson = solve_degree_mc(p);
  p.acceleration = DegreeMcAcceleration::kDamped;
  const auto damped = solve_degree_mc(p);
  ASSERT_TRUE(anderson.converged);
  ASSERT_TRUE(damped.converged);
  EXPECT_NEAR(anderson.expected_in, damped.expected_in, 1e-8);
  EXPECT_NEAR(anderson.expected_out, damped.expected_out, 1e-8);
  // The point of Anderson mixing: materially fewer outer iterations.
  EXPECT_LT(anderson.fixed_point_iterations, damped.fixed_point_iterations);
}

TEST(JoinerTrajectoryTest, StartsAtJoinStateAndRisesTowardSteadyState) {
  // §6.5: the joiner starts at (dL, 0); indegree rises monotonically
  // toward the steady-state mean, outdegree stays within [dL, s].
  auto p = paper_params(0.01);
  const auto steady = solve_degree_mc(p);
  // The approach to veteran status is exponential with a time constant of
  // a few hundred rounds, so give it a long horizon.
  const auto traj = joiner_degree_trajectory(p, 1500);
  ASSERT_EQ(traj.expected_in.size(), 1501u);
  EXPECT_DOUBLE_EQ(traj.expected_in[0], 0.0);
  EXPECT_DOUBLE_EQ(traj.expected_out[0], 18.0);
  for (std::size_t r = 1; r < traj.expected_in.size(); ++r) {
    EXPECT_GE(traj.expected_in[r], traj.expected_in[r - 1] - 1e-9);
    EXPECT_GE(traj.expected_out[r], 18.0 - 1e-9);
    EXPECT_LE(traj.expected_out[r], 40.0 + 1e-9);
  }
  // The tail time constant is ~700 rounds; by 1500 rounds the residual
  // gap to the steady state is under 2 and still closing monotonically.
  EXPECT_NEAR(traj.expected_in.back(), steady.expected_in, 2.0);
  EXPECT_NEAR(traj.expected_out.back(), steady.expected_out, 2.0);
}

TEST(JoinerTrajectoryTest, ReachesPaperFloorWithinIntegrationWindow) {
  // Lemma 6.13 / Cor 6.14: within s^2/((1-l-d) dL) rounds the joiner
  // accumulates at least (dL/s)^2 * Din ~ 0.2 * Din in-instances.
  auto p = paper_params(0.01);
  const auto steady = solve_degree_mc(p);
  const auto traj = joiner_degree_trajectory(p, 100);
  const double floor = 0.2025 * steady.expected_in;
  EXPECT_GE(traj.expected_in[91], floor);
}

TEST(JoinerTrajectoryTest, Validation) {
  auto p = paper_params(0.0);
  p.min_degree = 0;
  EXPECT_THROW(joiner_degree_trajectory(p, 10), std::invalid_argument);
  p = DegreeMcParams{};
  p.view_size = 30;
  p.min_degree = 0;
  p.fixed_sum_degree = 30;
  EXPECT_THROW(joiner_degree_trajectory(p, 10), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::analysis
