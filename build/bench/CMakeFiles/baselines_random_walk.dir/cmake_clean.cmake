file(REMOVE_RECURSE
  "CMakeFiles/baselines_random_walk.dir/baselines_random_walk.cpp.o"
  "CMakeFiles/baselines_random_walk.dir/baselines_random_walk.cpp.o.d"
  "baselines_random_walk"
  "baselines_random_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_random_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
