// Framework conformance: contracts every PeerProtocol implementation must
// honor, run over all five protocols (S&F, the §5 variant, and the three
// baselines) under a common battery — random traffic, loss, churn of
// message interleavings.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "core/baselines/newscast.hpp"
#include "core/baselines/push_pull.hpp"
#include "core/baselines/shuffle.hpp"
#include "core/send_forget.hpp"
#include "core/variants/send_forget_ext.hpp"
#include "graph/graph_gen.hpp"
#include "sim/round_driver.hpp"
#include "test_support.hpp"

namespace gossip {
namespace {

using testing::CaptureTransport;

struct ProtocolUnderTest {
  std::string name;
  sim::Cluster::ProtocolFactory factory;
};

class ProtocolConformance
    : public ::testing::TestWithParam<ProtocolUnderTest> {};

TEST_P(ProtocolConformance, MessagesAreWellFormed) {
  const auto& put = GetParam();
  auto node = put.factory(0);
  node->install_view({1, 2, 3, 4});
  Rng rng(1);
  CaptureTransport transport;
  for (int k = 0; k < 200; ++k) {
    node->on_initiate(rng, transport);
  }
  for (const Message& m : transport.sent) {
    EXPECT_EQ(m.from, 0u) << put.name;
    EXPECT_NE(m.to, kNilNode) << put.name;
    EXPECT_FALSE(m.payload.empty()) << put.name;
    for (const auto& entry : m.payload) {
      EXPECT_FALSE(entry.empty()) << put.name;
    }
  }
}

TEST_P(ProtocolConformance, ViewNeverExceedsCapacityNorStoresEmpties) {
  const auto& put = GetParam();
  Rng rng(2);
  constexpr std::size_t kN = 80;
  sim::Cluster cluster(kN, put.factory);
  cluster.install_graph(permutation_regular(kN, 4, rng));
  sim::UniformLoss loss(0.05);
  sim::RoundDriver driver(cluster, loss, rng);
  const std::size_t capacity = cluster.node(0).view().capacity();
  for (int chunk = 0; chunk < 10; ++chunk) {
    driver.run_rounds(20);
    for (NodeId u = 0; u < kN; ++u) {
      const auto& view = cluster.node(u).view();
      ASSERT_LE(view.degree(), capacity) << put.name;
      for (const auto& entry : view.entries()) {
        ASSERT_FALSE(entry.empty()) << put.name;
      }
    }
  }
}

TEST_P(ProtocolConformance, MetricsAreConsistent) {
  const auto& put = GetParam();
  Rng rng(3);
  constexpr std::size_t kN = 60;
  sim::Cluster cluster(kN, put.factory);
  cluster.install_graph(permutation_regular(kN, 4, rng));
  sim::UniformLoss loss(0.02);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(150);
  const auto m = cluster.aggregate_metrics();
  EXPECT_GT(m.actions_initiated, 0u) << put.name;
  EXPECT_LE(m.self_loop_actions, m.actions_initiated) << put.name;
  EXPECT_GT(m.messages_sent, 0u) << put.name;
  // Messages delivered are <= sent (loss, dead nodes); received counts
  // only what arrived.
  EXPECT_LE(m.messages_received, driver.network_metrics().sent) << put.name;
  EXPECT_EQ(m.messages_received, driver.network_metrics().delivered)
      << put.name;
}

TEST_P(ProtocolConformance, SurvivesHostileInterleavings) {
  // Random initiate/receive interleavings with arbitrary (well-formed)
  // payloads must never corrupt the view.
  const auto& put = GetParam();
  auto node = put.factory(0);
  node->install_view({1, 2});
  Rng rng(4);
  CaptureTransport transport;
  const std::size_t capacity = node->view().capacity();
  for (int k = 0; k < 3000; ++k) {
    if (rng.bernoulli(0.5)) {
      node->on_initiate(rng, transport);
    } else {
      Message m;
      m.from = static_cast<NodeId>(1 + rng.uniform(30));
      m.to = 0;
      // Cycle through every message kind, including ones the protocol
      // does not speak (it must not crash; S&F-family ignores them).
      m.kind = static_cast<MessageKind>(rng.uniform(7));
      const std::size_t len = 1 + rng.uniform(4);
      for (std::size_t i = 0; i < len; ++i) {
        m.payload.push_back(
            ViewEntry{static_cast<NodeId>(1 + rng.uniform(30)), false});
      }
      node->on_message(m, rng, transport);
    }
    ASSERT_LE(node->view().degree(), capacity) << put.name;
  }
}

TEST_P(ProtocolConformance, DeterministicForFixedSeed) {
  const auto& put = GetParam();
  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    sim::Cluster cluster(40, put.factory);
    cluster.install_graph(permutation_regular(40, 4, rng));
    sim::UniformLoss loss(0.03);
    sim::RoundDriver driver(cluster, loss, rng);
    driver.run_rounds(60);
    return cluster.snapshot();
  };
  EXPECT_TRUE(run(11) == run(11)) << put.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolConformance,
    ::testing::Values(
        ProtocolUnderTest{"send_forget",
                          [](NodeId id) {
                            return std::make_unique<SendForget>(
                                id, SendForgetConfig{.view_size = 16,
                                                     .min_degree = 6});
                          }},
        ProtocolUnderTest{"send_forget_ext",
                          [](NodeId id) {
                            return std::make_unique<SendForgetExt>(
                                id,
                                SendForgetExtConfig{
                                    .view_size = 16,
                                    .min_degree = 6,
                                    .pairs_per_message = 2,
                                    .mark_instead_of_clear = true,
                                    .replace_when_full = true});
                          }},
        ProtocolUnderTest{"shuffle",
                          [](NodeId id) {
                            return std::make_unique<Shuffle>(
                                id, ShuffleConfig{.view_size = 16,
                                                  .shuffle_length = 3});
                          }},
        ProtocolUnderTest{"push_pull",
                          [](NodeId id) {
                            return std::make_unique<PushPullKeep>(
                                id, PushPullConfig{.view_size = 16,
                                                   .exchange_length = 3});
                          }},
        ProtocolUnderTest{"newscast",
                          [](NodeId id) {
                            return std::make_unique<Newscast>(
                                id, NewscastConfig{.view_size = 16});
                          }}),
    [](const ::testing::TestParamInfo<ProtocolUnderTest>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace gossip
