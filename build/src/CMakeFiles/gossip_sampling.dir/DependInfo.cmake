
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/health.cpp" "src/CMakeFiles/gossip_sampling.dir/sampling/health.cpp.o" "gcc" "src/CMakeFiles/gossip_sampling.dir/sampling/health.cpp.o.d"
  "/root/repo/src/sampling/random_walk.cpp" "src/CMakeFiles/gossip_sampling.dir/sampling/random_walk.cpp.o" "gcc" "src/CMakeFiles/gossip_sampling.dir/sampling/random_walk.cpp.o.d"
  "/root/repo/src/sampling/size_estimator.cpp" "src/CMakeFiles/gossip_sampling.dir/sampling/size_estimator.cpp.o" "gcc" "src/CMakeFiles/gossip_sampling.dir/sampling/size_estimator.cpp.o.d"
  "/root/repo/src/sampling/spatial.cpp" "src/CMakeFiles/gossip_sampling.dir/sampling/spatial.cpp.o" "gcc" "src/CMakeFiles/gossip_sampling.dir/sampling/spatial.cpp.o.d"
  "/root/repo/src/sampling/temporal_overlap.cpp" "src/CMakeFiles/gossip_sampling.dir/sampling/temporal_overlap.cpp.o" "gcc" "src/CMakeFiles/gossip_sampling.dir/sampling/temporal_overlap.cpp.o.d"
  "/root/repo/src/sampling/uniformity.cpp" "src/CMakeFiles/gossip_sampling.dir/sampling/uniformity.cpp.o" "gcc" "src/CMakeFiles/gossip_sampling.dir/sampling/uniformity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gossip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gossip_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gossip_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gossip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
