
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build/tests/hygiene_analysis_decay.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_decay.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_decay.cpp.o.d"
  "/root/repo/build/tests/hygiene_analysis_degree_analytical.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_degree_analytical.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_degree_analytical.cpp.o.d"
  "/root/repo/build/tests/hygiene_analysis_degree_mc.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_degree_mc.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_degree_mc.cpp.o.d"
  "/root/repo/build/tests/hygiene_analysis_global_mc.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_global_mc.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_global_mc.cpp.o.d"
  "/root/repo/build/tests/hygiene_analysis_independence.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_independence.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_independence.cpp.o.d"
  "/root/repo/build/tests/hygiene_analysis_mixing.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_mixing.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_mixing.cpp.o.d"
  "/root/repo/build/tests/hygiene_analysis_temporal.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_temporal.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_temporal.cpp.o.d"
  "/root/repo/build/tests/hygiene_analysis_thresholds.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_thresholds.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_analysis_thresholds.cpp.o.d"
  "/root/repo/build/tests/hygiene_common_binomial.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_binomial.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_binomial.cpp.o.d"
  "/root/repo/build/tests/hygiene_common_cli.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_cli.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_cli.cpp.o.d"
  "/root/repo/build/tests/hygiene_common_csv.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_csv.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_csv.cpp.o.d"
  "/root/repo/build/tests/hygiene_common_discrete_distribution.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_discrete_distribution.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_discrete_distribution.cpp.o.d"
  "/root/repo/build/tests/hygiene_common_histogram.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_histogram.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_histogram.cpp.o.d"
  "/root/repo/build/tests/hygiene_common_node_id.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_node_id.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_node_id.cpp.o.d"
  "/root/repo/build/tests/hygiene_common_rng.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_rng.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_rng.cpp.o.d"
  "/root/repo/build/tests/hygiene_common_stats.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_stats.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_common_stats.cpp.o.d"
  "/root/repo/build/tests/hygiene_core_baselines_newscast.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_baselines_newscast.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_baselines_newscast.cpp.o.d"
  "/root/repo/build/tests/hygiene_core_baselines_push_pull.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_baselines_push_pull.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_baselines_push_pull.cpp.o.d"
  "/root/repo/build/tests/hygiene_core_baselines_shuffle.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_baselines_shuffle.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_baselines_shuffle.cpp.o.d"
  "/root/repo/build/tests/hygiene_core_messages.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_messages.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_messages.cpp.o.d"
  "/root/repo/build/tests/hygiene_core_metrics.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_metrics.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_metrics.cpp.o.d"
  "/root/repo/build/tests/hygiene_core_peer_sampler.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_peer_sampler.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_peer_sampler.cpp.o.d"
  "/root/repo/build/tests/hygiene_core_protocol.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_protocol.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_protocol.cpp.o.d"
  "/root/repo/build/tests/hygiene_core_send_forget.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_send_forget.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_send_forget.cpp.o.d"
  "/root/repo/build/tests/hygiene_core_variants_send_forget_ext.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_variants_send_forget_ext.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_variants_send_forget_ext.cpp.o.d"
  "/root/repo/build/tests/hygiene_core_view.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_view.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_core_view.cpp.o.d"
  "/root/repo/build/tests/hygiene_gossip.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_gossip.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_gossip.cpp.o.d"
  "/root/repo/build/tests/hygiene_graph_connectivity.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_connectivity.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_connectivity.cpp.o.d"
  "/root/repo/build/tests/hygiene_graph_digraph.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_digraph.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_digraph.cpp.o.d"
  "/root/repo/build/tests/hygiene_graph_graph_gen.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_graph_gen.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_graph_gen.cpp.o.d"
  "/root/repo/build/tests/hygiene_graph_graph_io.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_graph_io.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_graph_io.cpp.o.d"
  "/root/repo/build/tests/hygiene_graph_graph_stats.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_graph_stats.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_graph_stats.cpp.o.d"
  "/root/repo/build/tests/hygiene_graph_reachability.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_reachability.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_reachability.cpp.o.d"
  "/root/repo/build/tests/hygiene_graph_spectral.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_spectral.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_spectral.cpp.o.d"
  "/root/repo/build/tests/hygiene_graph_transformations.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_transformations.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_graph_transformations.cpp.o.d"
  "/root/repo/build/tests/hygiene_markov_dtmc.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_markov_dtmc.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_markov_dtmc.cpp.o.d"
  "/root/repo/build/tests/hygiene_markov_matrix.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_markov_matrix.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_markov_matrix.cpp.o.d"
  "/root/repo/build/tests/hygiene_markov_sparse_chain.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_markov_sparse_chain.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_markov_sparse_chain.cpp.o.d"
  "/root/repo/build/tests/hygiene_markov_stationary.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_markov_stationary.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_markov_stationary.cpp.o.d"
  "/root/repo/build/tests/hygiene_sampling_health.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sampling_health.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sampling_health.cpp.o.d"
  "/root/repo/build/tests/hygiene_sampling_random_walk.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sampling_random_walk.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sampling_random_walk.cpp.o.d"
  "/root/repo/build/tests/hygiene_sampling_size_estimator.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sampling_size_estimator.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sampling_size_estimator.cpp.o.d"
  "/root/repo/build/tests/hygiene_sampling_spatial.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sampling_spatial.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sampling_spatial.cpp.o.d"
  "/root/repo/build/tests/hygiene_sampling_temporal_overlap.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sampling_temporal_overlap.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sampling_temporal_overlap.cpp.o.d"
  "/root/repo/build/tests/hygiene_sampling_uniformity.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sampling_uniformity.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sampling_uniformity.cpp.o.d"
  "/root/repo/build/tests/hygiene_sim_churn.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_churn.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_churn.cpp.o.d"
  "/root/repo/build/tests/hygiene_sim_cluster.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_cluster.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_cluster.cpp.o.d"
  "/root/repo/build/tests/hygiene_sim_event_driver.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_event_driver.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_event_driver.cpp.o.d"
  "/root/repo/build/tests/hygiene_sim_event_queue.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_event_queue.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_event_queue.cpp.o.d"
  "/root/repo/build/tests/hygiene_sim_loss.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_loss.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_loss.cpp.o.d"
  "/root/repo/build/tests/hygiene_sim_network.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_network.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_network.cpp.o.d"
  "/root/repo/build/tests/hygiene_sim_round_driver.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_round_driver.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_round_driver.cpp.o.d"
  "/root/repo/build/tests/hygiene_sim_session_churn.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_session_churn.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_session_churn.cpp.o.d"
  "/root/repo/build/tests/hygiene_sim_trace.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_trace.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene_sim_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
