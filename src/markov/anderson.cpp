#include "markov/anderson.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gossip::markov {

namespace {

// Solves the small dense system G x = b in place (Gaussian elimination
// with partial pivoting); G is m×m row-major. Returns false on
// (numerical) singularity.
bool solve_dense(std::vector<double>& g, std::vector<double>& b,
                 std::size_t m) {
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < m; ++r) {
      if (std::abs(g[r * m + col]) > std::abs(g[pivot * m + col])) pivot = r;
    }
    if (std::abs(g[pivot * m + col]) < 1e-300) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < m; ++c) {
        std::swap(g[col * m + c], g[pivot * m + c]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / g[col * m + col];
    for (std::size_t r = col + 1; r < m; ++r) {
      const double factor = g[r * m + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < m; ++c) {
        g[r * m + c] -= factor * g[col * m + c];
      }
      b[r] -= factor * b[col];
    }
  }
  for (std::size_t col = m; col-- > 0;) {
    double acc = b[col];
    for (std::size_t c = col + 1; c < m; ++c) {
      acc -= g[col * m + c] * b[c];
    }
    b[col] = acc / g[col * m + col];
  }
  return true;
}

}  // namespace

AndersonMixer::AndersonMixer(std::size_t depth) : depth_(depth) {
  if (depth == 0) throw std::invalid_argument("Anderson depth must be >= 1");
}

void AndersonMixer::set_telemetry(obs::SolverSink* sink,
                                  std::string_view solver_name) {
  telemetry_ = sink;
  telemetry_name_.assign(solver_name);
}

void AndersonMixer::push(const std::vector<double>& x,
                         const std::vector<double>& f, double residual_norm) {
  ++pushes_;
  if (has_last_ && residual_norm >= last_residual_norm_) {
    // The previous step overshot; its secant information is poison.
    history_x_.clear();
    history_f_.clear();
    if (telemetry_ != nullptr) {
      telemetry_->on_event(telemetry_name_, "history_reset", pushes_);
    }
  }
  last_residual_norm_ = residual_norm;
  has_last_ = true;
  history_x_.push_back(x);
  history_f_.push_back(f);
  if (history_x_.size() > depth_ + 1) {
    history_x_.erase(history_x_.begin());
    history_f_.erase(history_f_.begin());
  }
}

bool AndersonMixer::extrapolate(std::vector<double>& next) const {
  // Cooldown: a single secant pair right after a reset reproduces the
  // overshoot that caused the reset — require at least two.
  if (history_x_.size() < 3) {
    if (telemetry_ != nullptr) {
      telemetry_->on_event(telemetry_name_, "cooldown", pushes_);
    }
    return false;
  }
  const std::size_t m = history_x_.size() - 1;
  const std::vector<double>& f = history_f_.back();
  const std::size_t n = f.size();

  // Columns: dF_j = f_{j+1} - f_j, dX_j = x_{j+1} - x_j.
  auto df = [&](std::size_t j, std::size_t k) {
    return history_f_[j + 1][k] - history_f_[j][k];
  };
  std::vector<double> gram(m * m, 0.0);
  std::vector<double> rhs(m, 0.0);
  double trace = 0.0;
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a; b < m; ++b) {
      double dot = 0.0;
      for (std::size_t k = 0; k < n; ++k) dot += df(a, k) * df(b, k);
      gram[a * m + b] = dot;
      gram[b * m + a] = dot;
    }
    trace += gram[a * m + a];
    double dot = 0.0;
    for (std::size_t k = 0; k < n; ++k) dot += df(a, k) * f[k];
    rhs[a] = dot;
  }
  if (trace <= 0.0) {
    if (telemetry_ != nullptr) {
      telemetry_->on_event(telemetry_name_, "degenerate", pushes_);
    }
    return false;
  }
  // Scale-relative Tikhonov regularization. It must NOT have an absolute
  // floor: near convergence ||dF||^2 is far below any fixed constant, and
  // a floor would zero out gamma, silently turning every extrapolation
  // into a no-op.
  for (std::size_t a = 0; a < m; ++a) {
    gram[a * m + a] += 1e-12 * trace;
  }
  if (!solve_dense(gram, rhs, m)) {
    if (telemetry_ != nullptr) {
      telemetry_->on_event(telemetry_name_, "degenerate", pushes_);
    }
    return false;
  }

  // next = x_k + f_k - sum_j gamma_j (dX_j + dF_j).
  const std::vector<double>& x = history_x_.back();
  next.resize(n);
  for (std::size_t k = 0; k < n; ++k) next[k] = x[k] + f[k];
  for (std::size_t j = 0; j < m; ++j) {
    const double gamma = rhs[j];
    if (gamma == 0.0) continue;
    for (std::size_t k = 0; k < n; ++k) {
      next[k] -=
          gamma * (history_x_[j + 1][k] - history_x_[j][k] + df(j, k));
    }
  }
  return true;
}

void AndersonMixer::reset() {
  history_x_.clear();
  history_f_.clear();
  has_last_ = false;
}

bool project_to_simplex(std::vector<double>& v) {
  double total = 0.0;
  for (double& x : v) {
    if (x < 0.0) x = 0.0;
    total += x;
  }
  if (total <= 1e-12) return false;
  const double inv = 1.0 / total;
  for (double& x : v) x *= inv;
  return true;
}

}  // namespace gossip::markov
