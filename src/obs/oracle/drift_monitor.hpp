// Drift-score state machine fed by the TheoryOracle.
//
// Every oracle check normalizes its deviation into a *drift score*: a
// score <= 1 means the empirical run is inside the check's tolerance, a
// score > 1 breaches the warn threshold, and a score >= violation_ratio
// is a violation candidate. The monitor keeps one state machine per check
// with hysteresis:
//
//   kOk -> kWarn        immediately on a score > 1;
//   kWarn -> kViolation after `violation_streak` consecutive probes with a
//                       candidate score (a single noisy probe never fires
//                       the alarm);
//   any -> kOk          after `clear_streak` consecutive probes back at
//                       score <= 1 (so a flapping statistic does not
//                       toggle WARN on and off every sample).
//
// Transitions into kViolation are counted, logged (bounded) and forwarded
// to an optional callback — the TheoryOracle uses it to trigger a
// FlightRecorder dump. Scores are also retained per probe so the whole
// drift trajectory can be dumped next to the time series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace gossip::obs {

enum class DriftCheck : std::uint8_t {
  kDegreeOut = 0,   // TVD/χ² of the outdegree distribution vs §6.2
  kDegreeIn,        // same for indegree
  kDuplicationRate, // windowed dup rate vs the Lemma 6.7 band
  kDeletionRate,    // windowed del rate vs Lemma 6.6 (dup = ℓ + del)
  kUniformity,      // streaming §7.3 occurrence uniformity
  kIndependence,    // α̂ vs the Lemma 7.9 lower bound
  kCheckCount,
};

[[nodiscard]] const char* drift_check_name(DriftCheck check);

enum class DriftState : std::uint8_t { kOk = 0, kWarn, kViolation };

[[nodiscard]] const char* drift_state_name(DriftState state);

struct DriftMonitorConfig {
  // score >= violation_ratio is a violation candidate (score > 1 warns).
  double violation_ratio = 2.0;
  // Consecutive candidate probes required to escalate kWarn -> kViolation.
  std::size_t violation_streak = 2;
  // Consecutive in-tolerance probes required to fall back to kOk.
  std::size_t clear_streak = 3;
  // State transitions beyond this many are counted but not logged.
  std::size_t max_logged = 64;
};

struct DriftSample {
  std::uint64_t round = 0;
  double score[static_cast<std::size_t>(DriftCheck::kCheckCount)] = {};
  // The probe fell inside a declared fault window: scores are recorded but
  // never escalate the state machines.
  bool expected = false;
};

struct DriftTransition {
  std::uint64_t round = 0;
  DriftCheck check = DriftCheck::kDegreeOut;
  DriftState from = DriftState::kOk;
  DriftState to = DriftState::kOk;
  double score = 0.0;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftMonitorConfig config = {});

  [[nodiscard]] const DriftMonitorConfig& config() const { return config_; }

  // Called once per check per probe by the oracle; `score` is the
  // normalized deviation (<= 1 in tolerance). Finishing a probe requires a
  // matching end_probe() so per-probe streak accounting stays aligned.
  //
  // An *expected* probe (the round sits inside a declared fault window,
  // plus its grace period) records scores into the sample trail and the
  // expected-peak statistic but drives no state transitions: scripted
  // drift is accounted, not escalated, while undeclared drift still trips
  // VIOLATION. Streaks never span the expected/normal boundary, so an
  // excursion that started inside a window cannot fire the alarm on the
  // first probe after it.
  void begin_probe(std::uint64_t round, bool expected = false);
  void record(DriftCheck check, double score);
  void end_probe();

  [[nodiscard]] DriftState state(DriftCheck check) const {
    return lanes_[static_cast<std::size_t>(check)].state;
  }
  // Worst state over all checks.
  [[nodiscard]] DriftState overall_state() const;
  [[nodiscard]] std::uint64_t warn_transitions() const { return warns_; }
  [[nodiscard]] std::uint64_t violation_transitions() const {
    return violations_;
  }
  // Expected probes seen / expected probes whose worst score breached the
  // warn threshold (drift that a declared fault window accounted for).
  [[nodiscard]] std::uint64_t expected_probes() const {
    return expected_probes_;
  }
  [[nodiscard]] std::uint64_t accounted_excursions() const {
    return accounted_excursions_;
  }
  [[nodiscard]] const std::vector<DriftTransition>& log() const {
    return log_;
  }
  [[nodiscard]] const std::vector<DriftSample>& samples() const {
    return samples_;
  }
  // Peak score seen on a check over the whole run (normal probes only).
  [[nodiscard]] double peak_score(DriftCheck check) const {
    return lanes_[static_cast<std::size_t>(check)].peak;
  }
  // Peak score seen during expected (declared-window) probes.
  [[nodiscard]] double expected_peak_score(DriftCheck check) const {
    return lanes_[static_cast<std::size_t>(check)].expected_peak;
  }

  // Invoked on every transition *into* kViolation.
  void set_violation_callback(
      std::function<void(const DriftTransition&)> callback) {
    on_violation_ = std::move(callback);
  }

  [[nodiscard]] std::string report() const;
  // {"violations":..,"warns":..,"states":{...},"transitions":[...],
  //  "samples":[...]}
  void write_json(std::ostream& out) const;
  void write_samples_csv(std::ostream& out) const;

 private:
  struct Lane {
    DriftState state = DriftState::kOk;
    std::size_t candidate_streak = 0;
    std::size_t ok_streak = 0;
    double peak = 0.0;
    double expected_peak = 0.0;
  };

  void transition(Lane& lane, DriftCheck check, DriftState to, double score);

  DriftMonitorConfig config_;
  Lane lanes_[static_cast<std::size_t>(DriftCheck::kCheckCount)];
  DriftSample current_{};
  bool in_probe_ = false;
  bool last_expected_ = false;
  std::uint64_t warns_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t expected_probes_ = 0;
  std::uint64_t accounted_excursions_ = 0;
  std::vector<DriftTransition> log_;
  std::vector<DriftSample> samples_;
  std::function<void(const DriftTransition&)> on_violation_;
};

}  // namespace gossip::obs
