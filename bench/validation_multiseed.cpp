// Statistical rigor check: the headline simulated quantities with error
// bars over 10 independent seeds, against the degree-MC predictions and
// the paper's reported values. One seed could flatter the reproduction;
// ten show the spread.
#include <cmath>
#include <cstdio>
#include <memory>

#include "analysis/degree_mc.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/send_forget.hpp"
#include "graph/connectivity.hpp"
#include "graph/graph_gen.hpp"
#include "graph/graph_stats.hpp"
#include "sampling/spatial.hpp"
#include "sim/round_driver.hpp"

namespace {

using namespace gossip;

struct SeedResult {
  double in_mean = 0.0;
  double out_mean = 0.0;
  double dup_rate = 0.0;
  double dependent = 0.0;
  bool connected = false;
};

SeedResult run_one(double loss_rate, std::uint64_t seed) {
  Rng rng(seed);
  constexpr std::size_t kN = 1000;
  sim::Cluster cluster(kN, [](NodeId id) {
    return std::make_unique<SendForget>(id, default_send_forget_config());
  });
  cluster.install_graph(permutation_regular(kN, 10, rng));
  sim::UniformLoss loss(loss_rate);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(500);
  const auto m0 = cluster.aggregate_metrics();
  driver.run_rounds(300);
  const auto m1 = cluster.aggregate_metrics();

  SeedResult r;
  const auto summary = degree_summary(cluster.snapshot());
  r.in_mean = summary.in_mean;
  r.out_mean = summary.out_mean;
  const double actions = static_cast<double>(
      (m1.actions_initiated - m0.actions_initiated) -
      (m1.self_loop_actions - m0.self_loop_actions));
  r.dup_rate =
      static_cast<double>(m1.duplications - m0.duplications) / actions;
  r.dependent =
      sampling::measure_spatial_dependence(cluster).dependent_fraction_upper();
  r.connected = is_weakly_connected(cluster.snapshot());
  return r;
}

}  // namespace

int main() {
  using namespace gossip::bench;
  constexpr int kSeeds = 10;

  print_header(
      "Validation — 10-seed error bars at the paper's operating point "
      "(n=1000, dL=18, s=40)");
  std::printf("%6s | %18s %10s | %18s | %18s | %5s\n", "loss",
              "indegree (±sd)", "MC", "dup rate (±sd)", "dependent (±sd)",
              "conn");
  const double paper_in[] = {28.0, 27.0, 24.0, 23.0};
  const double losses[] = {0.0, 0.01, 0.05, 0.1};
  for (int k = 0; k < 4; ++k) {
    RunningStats in_mean;
    RunningStats dup;
    RunningStats dep;
    int connected = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      const auto r = run_one(losses[k], 9000 + 17 * seed + k);
      in_mean.add(r.in_mean);
      dup.add(r.dup_rate);
      dep.add(r.dependent);
      connected += r.connected ? 1 : 0;
    }
    analysis::DegreeMcParams params;
    params.view_size = 40;
    params.min_degree = 18;
    params.loss = losses[k];
    const auto mc = analysis::solve_degree_mc(params);
    std::printf(
        "%6.2f | %9.3f ± %6.3f %10.3f | %9.4f ± %7.4f | %9.4f ± %7.4f | "
        "%2d/%2d\n",
        losses[k], in_mean.mean(), std::sqrt(in_mean.sample_variance()),
        mc.expected_in, dup.mean(), std::sqrt(dup.sample_variance()),
        dep.mean(), std::sqrt(dep.sample_variance()), connected, kSeeds);
    std::printf("        paper indegree: %g\n", paper_in[k]);
  }
  print_note("per-seed spread of the mean indegree is a few hundredths — "
             "the agreement with the degree MC (and the paper) is not a "
             "lucky seed.");
  return 0;
}
