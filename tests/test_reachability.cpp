#include "graph/reachability.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "sim/round_driver.hpp"

namespace gossip::graph_ops {
namespace {

constexpr TransformLimits kLimits{.view_size = 64, .min_degree = 0};

// Two snapshots of the same no-loss S&F system share the sum-degree
// vector exactly (Lemma 6.2) — the planner's natural inputs.
std::pair<Digraph, Digraph> sf_snapshot_pair(std::size_t n, std::size_t k,
                                             std::uint64_t seed) {
  Rng rng(seed);
  sim::Cluster cluster(n, [](NodeId id) {
    return std::make_unique<SendForget>(
        id, SendForgetConfig{.view_size = 64, .min_degree = 0});
  });
  cluster.install_graph(permutation_regular(n, k, rng));
  sim::UniformLoss loss(0.0);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(50);
  Digraph a = cluster.snapshot();
  driver.run_rounds(200);
  Digraph b = cluster.snapshot();
  return {std::move(a), std::move(b)};
}

std::pair<Digraph, Digraph> sf_snapshot_pair_sparse(std::size_t n,
                                                    std::size_t k,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  sim::Cluster cluster(n, [](NodeId id) {
    return std::make_unique<SendForget>(
        id, SendForgetConfig{.view_size = 12, .min_degree = 0});
  });
  cluster.install_graph(permutation_regular(n, k, rng));
  sim::UniformLoss loss(0.0);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(60);
  Digraph a = cluster.snapshot();
  driver.run_rounds(240);
  Digraph b = cluster.snapshot();
  return {std::move(a), std::move(b)};
}

TEST(Reachability, IdentityNeedsNoMoves) {
  Rng rng(1);
  const auto g = permutation_regular(10, 2, rng);
  const auto moves = plan_transformation(g, g, kLimits);
  EXPECT_TRUE(moves.empty());
}

TEST(Reachability, HandCraftedSwap) {
  // Two 4-cycles over the same nodes differing by one edge exchange.
  Digraph from(4);
  from.add_edge(0, 1);
  from.add_edge(0, 2);
  from.add_edge(1, 2);
  from.add_edge(1, 3);
  from.add_edge(2, 3);
  from.add_edge(2, 0);
  from.add_edge(3, 0);
  from.add_edge(3, 1);
  Digraph to = from;
  to.remove_edge(0, 2);
  to.remove_edge(1, 3);
  to.add_edge(0, 3);
  to.add_edge(1, 2);
  // Sum degrees: exchange of (0,2) and (1,3) into (0,3),(1,2) changes
  // indegrees of 2 and 3... verify the fixture first.
  ASSERT_EQ(from.out_degree(0) + 2 * from.in_degree(0),
            to.out_degree(0) + 2 * to.in_degree(0));

  const auto moves = plan_transformation(from, to, kLimits);
  Digraph work = from;
  apply_moves(work, moves, kLimits);
  EXPECT_TRUE(work == to);
  EXPECT_FALSE(moves.empty());
}

TEST(Reachability, SfSnapshotPairsAreMutuallyReachable) {
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    const auto [from, to] = sf_snapshot_pair(24, 4, seed);
    const auto moves = plan_transformation(from, to, kLimits);
    Digraph work = from;
    apply_moves(work, moves, kLimits);
    EXPECT_TRUE(work == to) << "seed " << seed;

    // And the reverse direction (Lemma 7.3's reversibility, made
    // constructive).
    const auto back = plan_transformation(to, from, kLimits);
    Digraph undo = to;
    apply_moves(undo, back, kLimits);
    EXPECT_TRUE(undo == from) << "seed " << seed;
  }
}

TEST(Reachability, LargerSystems) {
  const auto [from, to] = sf_snapshot_pair(80, 6, 9);
  const auto moves = plan_transformation(from, to, kLimits);
  Digraph work = from;
  apply_moves(work, moves, kLimits);
  EXPECT_TRUE(work == to);
  // Sanity: the plan is not absurdly long (each relocation costs O(path)
  // primitives; the total stays near-linear in the edge count).
  EXPECT_LT(moves.size(), 40u * from.edge_count());
}

TEST(Reachability, MovesPreserveSumDegreesThroughout) {
  const auto [from, to] = sf_snapshot_pair(20, 4, 11);
  const auto moves = plan_transformation(from, to, kLimits);
  Digraph work = from;
  auto sums = [](const Digraph& g) {
    std::vector<std::size_t> ds;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      ds.push_back(g.out_degree(u) + 2 * g.in_degree(u));
    }
    return ds;
  };
  const auto expected = sums(from);
  for (const Move& move : moves) {
    apply_moves(work, {move}, kLimits);
    ASSERT_EQ(sums(work), expected);
  }
  EXPECT_TRUE(work == to);
}

TEST(Reachability, Validation) {
  Rng rng(13);
  const auto a = permutation_regular(10, 2, rng);
  const auto b = permutation_regular(12, 2, rng);
  EXPECT_THROW(plan_transformation(a, b, kLimits), std::invalid_argument);

  // Different sum degrees.
  Digraph c = a;
  c.add_edge(0, 1);
  c.add_edge(0, 2);
  EXPECT_THROW(plan_transformation(a, c, kLimits), std::invalid_argument);

  // dL must be zero, s must leave slack.
  EXPECT_THROW(plan_transformation(
                   a, a, TransformLimits{.view_size = 64, .min_degree = 2}),
               std::invalid_argument);
  EXPECT_THROW(plan_transformation(
                   a, a, TransformLimits{.view_size = 2, .min_degree = 0}),
               std::invalid_argument);
}

TEST(Reachability, RefusesToPartitionSparseOverlays) {
  // On a near-tree overlay (mean outdegree 2) almost every edge is a
  // bridge; the planner must refuse (mirroring §7.1's exclusion of
  // partitioned states) rather than strand a node.
  const auto [from, to] = sf_snapshot_pair_sparse(60, 2, 21);
  try {
    const auto moves = plan_transformation(
        from, to, TransformLimits{.view_size = 24, .min_degree = 0});
    // Some sparse pairs are still plannable; if so the plan must be exact.
    Digraph work = from;
    apply_moves(work, moves, TransformLimits{.view_size = 24, .min_degree = 0});
    EXPECT_TRUE(work == to);
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("sparse"), std::string::npos);
  }
}

TEST(Reachability, PlanSerializationRoundTrip) {
  const auto [from, to] = sf_snapshot_pair(24, 4, 3);
  const auto moves = plan_transformation(from, to, kLimits);
  const auto text = serialize_moves(moves);
  const auto parsed = parse_moves(text);
  ASSERT_EQ(parsed.size(), moves.size());
  Digraph work = from;
  apply_moves(work, parsed, kLimits);
  EXPECT_TRUE(work == to);
}

TEST(Reachability, ParseMovesValidation) {
  EXPECT_TRUE(parse_moves("").empty());
  EXPECT_EQ(parse_moves("exchange 1 2 3 4\nborrow 5 6 7\n").size(), 2u);
  EXPECT_THROW(parse_moves("exchange 1 2 3\n"), std::invalid_argument);
  EXPECT_THROW(parse_moves("borrow 1 2 3 4\n"), std::invalid_argument);
  EXPECT_THROW(parse_moves("teleport 1 2\n"), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::graph_ops
