#include "sim/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gossip::sim {

Cluster::Cluster(std::size_t node_count, const ProtocolFactory& factory) {
  nodes_.reserve(node_count);
  live_ids_.reserve(node_count);
  live_pos_.reserve(node_count);
  for (NodeId id = 0; id < node_count; ++id) {
    nodes_.push_back(factory(id));
    assert(nodes_.back()->self() == id);
    live_ids_.push_back(id);
    live_pos_.push_back(id);
  }
  live_.assign(node_count, true);
  live_count_ = node_count;
}

PeerProtocol& Cluster::node(NodeId id) {
  assert(id < nodes_.size());
  return *nodes_[id];
}

const PeerProtocol& Cluster::node(NodeId id) const {
  assert(id < nodes_.size());
  return *nodes_[id];
}

bool Cluster::live(NodeId id) const {
  assert(id < live_.size());
  return live_[id];
}

void Cluster::kill(NodeId id) {
  assert(id < live_.size());
  if (!live_[id]) return;
  live_[id] = false;
  // Swap-remove from the dense live-id array.
  const std::size_t p = live_pos_[id];
  const NodeId last = live_ids_.back();
  live_ids_[p] = last;
  live_pos_[last] = p;
  live_ids_.pop_back();
  --live_count_;
}

void Cluster::revive(NodeId id, const ProtocolFactory& factory) {
  assert(id < live_.size());
  if (live_[id]) throw std::logic_error("node already live");
  nodes_[id] = factory(id);
  assert(nodes_[id]->self() == id);
  live_[id] = true;
  live_pos_[id] = live_ids_.size();
  live_ids_.push_back(id);
  ++live_count_;
}

NodeId Cluster::spawn(const ProtocolFactory& factory) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(factory(id));
  assert(nodes_.back()->self() == id);
  live_.push_back(true);
  live_pos_.push_back(live_ids_.size());
  live_ids_.push_back(id);
  ++live_count_;
  return id;
}

NodeId Cluster::random_live_node(Rng& rng) const {
  assert(live_count_ > 0);
  return live_ids_[rng.uniform(live_ids_.size())];
}

std::vector<NodeId> Cluster::live_nodes() const {
  std::vector<NodeId> out = live_ids_;
  std::sort(out.begin(), out.end());
  return out;
}

void Cluster::install_graph(const Digraph& graph) {
  if (graph.node_count() != nodes_.size()) {
    throw std::invalid_argument("graph size does not match cluster size");
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    nodes_[id]->install_view(graph.out_neighbors(id));
  }
}

Digraph Cluster::snapshot() const {
  Digraph g(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (const NodeId v : nodes_[id]->view().ids()) {
      g.add_edge(id, v);
    }
  }
  return g;
}

ProtocolMetrics Cluster::aggregate_metrics() const {
  ProtocolMetrics total;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (live_[id]) total += nodes_[id]->metrics();
  }
  return total;
}

}  // namespace gossip::sim
