#include "obs/oracle/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace gossip::obs {

namespace {

constexpr char kMagic[4] = {'S', 'F', 'F', 'R'};
constexpr std::uint32_t kVersion = 1;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSelfLoop: return "self_loop";
    case FlightEventKind::kSend: return "send";
    case FlightEventKind::kDuplicate: return "duplicate";
    case FlightEventKind::kLose: return "lose";
    case FlightEventKind::kDeliver: return "deliver";
    case FlightEventKind::kDelete: return "delete";
    case FlightEventKind::kToDead: return "to_dead";
    case FlightEventKind::kKill: return "kill";
    case FlightEventKind::kRevive: return "revive";
    case FlightEventKind::kFaultDrop: return "fault_drop";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t shard_count, std::size_t capacity)
    : capacity_(round_up_pow2(std::max<std::size_t>(8, capacity))),
      mask_(capacity_ - 1),
      shards_(std::max<std::size_t>(1, shard_count)) {
  for (Shard& sh : shards_) sh.ring.resize(capacity_);
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::uint64_t total = 0;
  for (const Shard& sh : shards_) total += sh.total;
  return total;
}

std::vector<FlightEvent> FlightRecorder::shard_events(
    std::size_t shard) const {
  const Shard& sh = shards_[shard];
  const std::uint64_t stored = std::min<std::uint64_t>(sh.total, capacity_);
  std::vector<FlightEvent> out;
  out.reserve(stored);
  // Oldest retained event first: when the ring has wrapped, that is the
  // cell the next write would overwrite.
  const std::uint64_t begin = sh.total - stored;
  for (std::uint64_t i = 0; i < stored; ++i) {
    out.push_back(sh.ring[(begin + i) & mask_]);
  }
  return out;
}

void FlightRecorder::clear() {
  for (Shard& sh : shards_) {
    sh.total = 0;
    sh.sequence = 0;
  }
}

void FlightRecorder::dump(std::ostream& out) const {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint32_t>(shards_.size()));
  write_pod(out, static_cast<std::uint64_t>(capacity_));
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::vector<FlightEvent> events = shard_events(s);
    write_pod(out, shards_[s].total);
    write_pod(out, shards_[s].sequence);
    write_pod(out, static_cast<std::uint64_t>(events.size()));
    if (!events.empty()) {
      out.write(reinterpret_cast<const char*>(events.data()),
                static_cast<std::streamsize>(events.size() *
                                             sizeof(FlightEvent)));
    }
  }
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  dump(out);
  return static_cast<bool>(out);
}

bool FlightTrace::fail(const std::string& message) {
  events_.clear();
  dropped_.clear();
  last_error_ = message;
  return false;
}

bool FlightTrace::load(std::istream& in) {
  events_.clear();
  dropped_.clear();
  last_error_.clear();
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in) return fail("truncated header: missing SFFR magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic: not an SFFR flight dump");
  }
  std::uint32_t version = 0;
  std::uint32_t shard_count = 0;
  std::uint64_t capacity = 0;
  if (!read_pod(in, version)) return fail("truncated header: missing version");
  if (version != kVersion) {
    return fail("unsupported SFFR version " + std::to_string(version) +
                " (expected " + std::to_string(kVersion) + ")");
  }
  if (!read_pod(in, shard_count)) {
    return fail("truncated header: missing shard count");
  }
  if (shard_count == 0 || shard_count > 4096) {
    return fail("implausible shard count " + std::to_string(shard_count) +
                " (expected 1..4096)");
  }
  if (!read_pod(in, capacity)) {
    return fail("truncated header: missing ring capacity");
  }
  // The writer rounds capacity up to a power of two with a floor of 8; a
  // corrupt header outside that envelope would otherwise drive the stored
  // bound below and a multi-GiB resize here.
  constexpr std::uint64_t kMaxCapacity = std::uint64_t{1} << 30;
  if (capacity < 8 || capacity > kMaxCapacity ||
      (capacity & (capacity - 1)) != 0) {
    return fail("implausible ring capacity " + std::to_string(capacity));
  }
  dropped_.assign(shard_count, 0);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    const std::string where = "shard " + std::to_string(s);
    std::uint64_t total = 0;
    std::uint64_t sequence = 0;
    std::uint64_t stored = 0;
    if (!read_pod(in, total) || !read_pod(in, sequence) ||
        !read_pod(in, stored)) {
      return fail("truncated at " + where + " header");
    }
    if (stored > capacity) {
      return fail(where + ": stored count " + std::to_string(stored) +
                  " exceeds ring capacity " + std::to_string(capacity));
    }
    if (stored > total) {
      return fail(where + ": stored count " + std::to_string(stored) +
                  " exceeds total recorded " + std::to_string(total));
    }
    dropped_[s] = total - stored;
    const std::size_t offset = events_.size();
    events_.resize(offset + stored);
    if (stored != 0) {
      const std::streamsize want =
          static_cast<std::streamsize>(stored * sizeof(FlightEvent));
      in.read(reinterpret_cast<char*>(events_.data() + offset), want);
      if (in.gcount() != want) {
        return fail("truncated at " + where + " events: wanted " +
                    std::to_string(want) + " bytes, got " +
                    std::to_string(in.gcount()));
      }
    }
  }
  // A well-formed dump ends exactly after the last shard's events.
  in.peek();
  if (!in.eof()) return fail("trailing bytes after last shard");
  // Global order: by round, then shard, preserving each shard's own
  // chronology (stable sort over per-shard-ordered input).
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     if (a.round != b.round) return a.round < b.round;
                     return a.shard < b.shard;
                   });
  return true;
}

bool FlightTrace::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open " + path);
  return load(in);
}

std::uint64_t FlightTrace::total_dropped() const {
  std::uint64_t total = 0;
  for (const std::uint64_t d : dropped_) total += d;
  return total;
}

std::vector<FlightEvent> FlightTrace::message_lifecycle(
    std::uint64_t message_id) const {
  std::vector<FlightEvent> out;
  for (const FlightEvent& e : events_) {
    if (e.message_id == message_id && message_id != 0) out.push_back(e);
  }
  return out;
}

std::vector<FlightEvent> FlightTrace::node_history(NodeId node) const {
  std::vector<FlightEvent> out;
  for (const FlightEvent& e : events_) {
    if (e.node == node || e.peer == node) out.push_back(e);
  }
  return out;
}

std::string FlightTrace::format_event(const FlightEvent& event) {
  char buf[160];
  if (event.message_id != 0) {
    std::snprintf(buf, sizeof(buf),
                  "round %u shard %u: %-9s msg %llx node %u peer %u",
                  event.round, event.shard,
                  flight_event_kind_name(event.kind),
                  static_cast<unsigned long long>(event.message_id),
                  event.node, event.peer);
  } else {
    std::snprintf(buf, sizeof(buf), "round %u shard %u: %-9s node %u",
                  event.round, event.shard,
                  flight_event_kind_name(event.kind), event.node);
  }
  return buf;
}

}  // namespace gossip::obs
