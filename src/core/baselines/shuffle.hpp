// Shuffle baseline (Cyclon-style view exchange; refs [1, 26, 27] in the
// paper).
//
// The initiator removes a batch of entries from its view (the first names
// the exchange partner) and sends them; the partner removes an equally
// sized batch, sends it back, and stores the received entries; the
// initiator stores the reply. Sent ids are *deleted at send time*, so — as
// §3.1 observes — the protocol cannot withstand message loss: every lost
// request or reply permanently removes ids from the system, and outdegrees
// collapse over time. This baseline exists to demonstrate exactly that
// failure mode next to S&F.
#pragma once

#include <cstddef>

#include "core/protocol.hpp"

namespace gossip {

struct ShuffleConfig {
  std::size_t view_size = 40;
  // Number of entries exchanged per action (including the edge to the
  // partner itself). Clamped to the current degree.
  std::size_t shuffle_length = 4;
  // When true the initiator inserts its own id into the batch it sends
  // (Cyclon's reinforcement step).
  bool send_self = true;
};

class Shuffle final : public PeerProtocol {
 public:
  Shuffle(NodeId self, const ShuffleConfig& config);

  [[nodiscard]] const ShuffleConfig& config() const { return config_; }

  void on_initiate(Rng& rng, Transport& transport) override;
  void on_message(const Message& message, Rng& rng,
                  Transport& transport) override;

 private:
  // Stores every entry into empty slots (exact swap — self-edges are
  // stored, not discarded); drops overflow (counted as deletions).
  void absorb(const std::vector<ViewEntry>& entries, Rng& rng);

  ShuffleConfig config_;
};

}  // namespace gossip
