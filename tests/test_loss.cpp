#include "sim/loss.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gossip::sim {
namespace {

TEST(UniformLossTest, ZeroAndOneAreDeterministic) {
  Rng rng(1);
  UniformLoss never(0.0);
  UniformLoss always(1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.drop(rng));
    EXPECT_TRUE(always.drop(rng));
  }
}

TEST(UniformLossTest, EmpiricalRateMatches) {
  Rng rng(2);
  UniformLoss loss(0.05);
  int drops = 0;
  constexpr int kTrials = 200'000;
  for (int i = 0; i < kTrials; ++i) {
    if (loss.drop(rng)) ++drops;
  }
  EXPECT_NEAR(drops / static_cast<double>(kTrials), 0.05, 0.003);
  EXPECT_DOUBLE_EQ(loss.average_rate(), 0.05);
}

TEST(UniformLossTest, RejectsOutOfRange) {
  EXPECT_THROW(UniformLoss(-0.1), std::invalid_argument);
  EXPECT_THROW(UniformLoss(1.1), std::invalid_argument);
}

TEST(GilbertElliott, AverageRateFormula) {
  // pi_bad = p/(p+r) = 0.2/(0.2+0.8) = 0.2; avg = 0.2*0.5 + 0.8*0.01.
  GilbertElliottLoss ge(0.2, 0.8, 0.01, 0.5);
  EXPECT_NEAR(ge.average_rate(), 0.2 * 0.5 + 0.8 * 0.01, 1e-12);
}

TEST(GilbertElliott, EmpiricalRateMatchesStationary) {
  Rng rng(3);
  GilbertElliottLoss ge(0.05, 0.45, 0.0, 1.0);
  int drops = 0;
  constexpr int kTrials = 400'000;
  for (int i = 0; i < kTrials; ++i) {
    if (ge.drop(rng)) ++drops;
  }
  EXPECT_NEAR(drops / static_cast<double>(kTrials), ge.average_rate(), 0.005);
}

TEST(GilbertElliott, EmpiricalRateMatchesStationaryGeneralCase) {
  // Nonzero loss in BOTH states: exercises the full two-level mixture that
  // average_rate() promises, not just the 0/1 corner bursty_loss uses.
  Rng rng(6);
  GilbertElliottLoss ge(0.05, 0.45, 0.02, 0.6);
  // pi_bad = 0.05/0.50 = 0.1; avg = 0.1*0.6 + 0.9*0.02 = 0.078.
  EXPECT_NEAR(ge.average_rate(), 0.078, 1e-12);
  int drops = 0;
  constexpr int kTrials = 400'000;
  for (int i = 0; i < kTrials; ++i) {
    if (ge.drop(rng)) ++drops;
  }
  EXPECT_NEAR(drops / static_cast<double>(kTrials), ge.average_rate(), 0.005);
}

TEST(GilbertElliott, BurstsSpanInterleavedCallers) {
  // One instance is ONE shared channel: drop() has no notion of sender, so
  // a burst seen by one "link" is visible to whoever sends next. With the
  // stream split across two alternating links, P(B drops | A just dropped)
  // must track the in-burst rate, not the 5% long-run average.
  const auto loss = bursty_loss(0.05, 8.0);
  Rng rng(7);
  int a_drops = 0;
  int b_after_a = 0;
  constexpr int kTrials = 200'000;
  for (int i = 0; i < kTrials; ++i) {
    const bool a = loss->drop(rng);  // link A's message
    const bool b = loss->drop(rng);  // link B's message, same channel
    if (a) {
      ++a_drops;
      if (b) ++b_after_a;
    }
  }
  EXPECT_GT(b_after_a / static_cast<double>(a_drops), 0.5);
}

TEST(GilbertElliott, ParameterValidation) {
  EXPECT_THROW(GilbertElliottLoss(-0.1, 0.5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GilbertElliottLoss(0.1, 1.5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GilbertElliottLoss(0.0, 0.0, 0.0, 1.0), std::invalid_argument);
}

TEST(BurstyLoss, MatchesTargetRate) {
  const auto loss = bursty_loss(0.05, 4.0);
  EXPECT_NEAR(loss->average_rate(), 0.05, 1e-12);
  Rng rng(4);
  int drops = 0;
  constexpr int kTrials = 400'000;
  for (int i = 0; i < kTrials; ++i) {
    if (loss->drop(rng)) ++drops;
  }
  EXPECT_NEAR(drops / static_cast<double>(kTrials), 0.05, 0.005);
}

TEST(BurstyLoss, LossesAreBursty) {
  // Consecutive-drop probability should far exceed the i.i.d. rate.
  const auto loss = bursty_loss(0.05, 8.0);
  Rng rng(5);
  int drops = 0;
  int consecutive = 0;
  bool prev = false;
  constexpr int kTrials = 400'000;
  for (int i = 0; i < kTrials; ++i) {
    const bool d = loss->drop(rng);
    if (d) {
      ++drops;
      if (prev) ++consecutive;
    }
    prev = d;
  }
  const double p_next_given_drop = consecutive / static_cast<double>(drops);
  EXPECT_GT(p_next_given_drop, 0.5);  // i.i.d. would give ~0.05
}

TEST(BurstyLoss, ValidatesParameters) {
  EXPECT_THROW(bursty_loss(0.0, 4.0), std::invalid_argument);
  EXPECT_THROW(bursty_loss(1.0, 4.0), std::invalid_argument);
  EXPECT_THROW(bursty_loss(0.05, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::sim
