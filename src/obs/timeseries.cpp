#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace gossip::obs {

namespace {

// Counter deltas can go backwards only through misuse (e.g. a registry
// reset between samples); clamp so a glitch cannot underflow to 2^64.
std::uint64_t delta(std::uint64_t now, std::uint64_t before) {
  return now >= before ? now - before : 0;
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// RFC 4180 quoting: fields containing a comma, quote, or newline are
// wrapped in quotes with embedded quotes doubled.
std::string csv_escape(const std::string& in) {
  const bool needs_quoting =
      in.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return in;
  std::string out;
  out.reserve(in.size() + 2);
  out.push_back('"');
  for (char c : in) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

DegreeSummary summarize(const std::vector<std::uint32_t>& degrees) {
  DegreeSummary s;
  if (degrees.empty()) return s;
  s.min = UINT32_MAX;
  double sum = 0.0;
  for (const std::uint32_t d : degrees) {
    sum += d;
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
  }
  s.mean = sum / static_cast<double>(degrees.size());
  double sq = 0.0;
  for (const std::uint32_t d : degrees) {
    const double c = static_cast<double>(d) - s.mean;
    sq += c * c;
  }
  s.sd = degrees.size() > 1
             ? std::sqrt(sq / static_cast<double>(degrees.size() - 1))
             : 0.0;
  return s;
}

}  // namespace

FlatClusterProbe probe_cluster(const FlatSendForgetCluster& cluster,
                               std::vector<std::uint32_t>* occurrences) {
  const std::size_t n = cluster.size();
  const std::size_t s = cluster.view_size();
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::uint32_t> out_live;
  out_live.reserve(cluster.live_count());
  FlatClusterProbe probe;
  probe.outdegree_hist.assign(s + 1, 0);
  probe.indegree_hist.assign(2 * s + 1, 0);
  std::size_t occupied = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (!cluster.live(u)) continue;
    const std::size_t d = cluster.degree(u);
    out_live.push_back(static_cast<std::uint32_t>(d));
    ++probe.outdegree_hist[std::min(d, s)];
    occupied += d;
    const PackedViewEntry* row = cluster.slots(u);
    for (std::size_t i = 0; i < s; ++i) {
      if (!row[i].empty()) {
        ++indegree[row[i].id_unchecked()];
        if (row[i].dependent()) ++probe.dependent_entries;
      }
    }
  }
  std::vector<std::uint32_t> in_live;
  in_live.reserve(out_live.size());
  for (NodeId u = 0; u < n; ++u) {
    if (cluster.live(u)) {
      in_live.push_back(indegree[u]);
      ++probe.indegree_hist[std::min<std::size_t>(indegree[u], 2 * s)];
    }
  }
  if (occurrences != nullptr) {
    occurrences->assign(n, UINT32_MAX);
    for (NodeId u = 0; u < n; ++u) {
      if (cluster.live(u)) (*occurrences)[u] = indegree[u];
    }
  }
  probe.live_nodes = out_live.size();
  probe.outdegree = summarize(out_live);
  probe.indegree = summarize(in_live);
  probe.occupied_slots = occupied;
  const std::size_t total_slots = out_live.size() * s;
  probe.empty_slot_fraction =
      total_slots == 0
          ? 0.0
          : 1.0 - static_cast<double>(occupied) /
                      static_cast<double>(total_slots);
  return probe;
}

RoundTimeSeries::RoundTimeSeries(std::uint64_t stride)
    : stride_(std::max<std::uint64_t>(1, stride)) {}

void RoundTimeSeries::record(std::uint64_t round,
                             const DegreeSummary& outdegree,
                             const DegreeSummary& indegree,
                             std::size_t live_nodes,
                             double empty_slot_fraction,
                             const CumulativeCounters& cumulative) {
  RoundSample sample;
  sample.round = round;
  sample.live_nodes = live_nodes;
  sample.outdegree = outdegree;
  sample.indegree = indegree;
  sample.empty_slot_fraction = empty_slot_fraction;
  const std::uint64_t actions = delta(cumulative.actions, prev_.actions);
  const std::uint64_t sent = delta(cumulative.sent, prev_.sent);
  sample.duplication_rate =
      ratio(delta(cumulative.duplications, prev_.duplications), sent);
  sample.deletion_rate =
      ratio(delta(cumulative.deletions, prev_.deletions), sent);
  sample.self_loop_rate =
      ratio(delta(cumulative.self_loops, prev_.self_loops), actions);
  sample.loss_rate = ratio(delta(cumulative.lost, prev_.lost) +
                               delta(cumulative.to_dead, prev_.to_dead),
                           sent);
  sample.fault_rate =
      ratio(delta(cumulative.faulted, prev_.faulted), sent);
  prev_ = cumulative;
  samples_.push_back(sample);
}

void RoundTimeSeries::clear() {
  samples_.clear();
  annotations_.clear();
  prev_ = CumulativeCounters{};
}

void RoundTimeSeries::annotate(std::uint64_t round, std::string label) {
  annotations_.push_back({round, std::move(label)});
}

void RoundTimeSeries::write_csv(std::ostream& out) const {
  out << "round,live_nodes,out_mean,out_sd,out_min,out_max,"
         "in_mean,in_sd,in_min,in_max,empty_slot_fraction,"
         "duplication_rate,deletion_rate,self_loop_rate,loss_rate,"
         "fault_rate\n";
  for (const RoundSample& s : samples_) {
    out << s.round << ',' << s.live_nodes << ',' << s.outdegree.mean << ','
        << s.outdegree.sd << ',' << s.outdegree.min << ',' << s.outdegree.max
        << ',' << s.indegree.mean << ',' << s.indegree.sd << ','
        << s.indegree.min << ',' << s.indegree.max << ','
        << s.empty_slot_fraction << ',' << s.duplication_rate << ','
        << s.deletion_rate << ',' << s.self_loop_rate << ',' << s.loss_rate
        << ',' << s.fault_rate << '\n';
  }
}

void RoundTimeSeries::write_json(std::ostream& out) const {
  out << '[';
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (i != 0) out << ',';
    const RoundSample& s = samples_[i];
    out << "{\"round\":" << s.round << ",\"live_nodes\":" << s.live_nodes
        << ",\"outdegree\":{\"mean\":" << s.outdegree.mean
        << ",\"sd\":" << s.outdegree.sd << ",\"min\":" << s.outdegree.min
        << ",\"max\":" << s.outdegree.max << '}'
        << ",\"indegree\":{\"mean\":" << s.indegree.mean
        << ",\"sd\":" << s.indegree.sd << ",\"min\":" << s.indegree.min
        << ",\"max\":" << s.indegree.max << '}'
        << ",\"empty_slot_fraction\":" << s.empty_slot_fraction
        << ",\"duplication_rate\":" << s.duplication_rate
        << ",\"deletion_rate\":" << s.deletion_rate
        << ",\"self_loop_rate\":" << s.self_loop_rate
        << ",\"loss_rate\":" << s.loss_rate
        << ",\"fault_rate\":" << s.fault_rate << '}';
  }
  out << ']';
}

void RoundTimeSeries::write_annotations_json(std::ostream& out) const {
  out << '[';
  for (std::size_t i = 0; i < annotations_.size(); ++i) {
    if (i != 0) out << ',';
    out << "{\"round\":" << annotations_[i].round << ",\"label\":\""
        << json_escape(annotations_[i].label) << "\"}";
  }
  out << ']';
}

void RoundTimeSeries::write_annotations_csv(std::ostream& out) const {
  out << "round,label\n";
  for (const SeriesAnnotation& a : annotations_) {
    out << a.round << ',' << csv_escape(a.label) << '\n';
  }
}

}  // namespace gossip::obs
