#include "obs/forensics/run_archive.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>

namespace gossip::obs::forensics {

namespace {

std::size_t name_index(const std::vector<std::string>& names,
                       std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return SnapshotSurface::npos;
}

std::uint64_t as_u64(double value) {
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotSurface

bool SnapshotSurface::fail(const std::string& message) {
  *this = SnapshotSurface{};
  last_error_ = message;
  return false;
}

bool SnapshotSurface::load(std::istream& in) {
  *this = SnapshotSurface{};
  std::string line;
  if (!std::getline(in, line)) {
    return fail("empty stream: missing schema header");
  }
  std::string error;
  JsonValue header;
  if (!parse_json(line, &header, &error)) {
    return fail("line 1: " + error);
  }
  if (header.get_string("schema") != "sfgossip.snapshot") {
    return fail("line 1: not a sfgossip.snapshot stream");
  }
  if (header.get_number("version", 0.0) != 1.0) {
    return fail("line 1: unsupported snapshot schema version");
  }
  stride_ = std::max<std::uint64_t>(1, as_u64(header.get_number(
                                           "snapshot_stride", 1.0)));
  if (const JsonValue* names = header.find("counters");
      names != nullptr && names->is_array()) {
    for (const JsonValue& n : names->items) {
      if (!n.is_string()) return fail("line 1: counter name not a string");
      counter_names_.push_back(n.string);
    }
  }
  if (const JsonValue* names = header.find("gauges");
      names != nullptr && names->is_array()) {
    for (const JsonValue& n : names->items) {
      if (!n.is_string()) return fail("line 1: gauge name not a string");
      gauge_names_.push_back(n.string);
    }
  }
  if (const JsonValue* hists = header.find("histograms");
      hists != nullptr && hists->is_array()) {
    for (const JsonValue& h : hists->items) {
      const std::string name = h.get_string("name");
      if (name.empty()) return fail("line 1: histogram without a name");
      histogram_names_.push_back(name);
    }
  }

  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string at = "line " + std::to_string(line_no) + ": ";
    JsonValue record;
    if (!parse_json(line, &record, &error)) return fail(at + error);
    const JsonValue* round_v = record.find("round");
    if (round_v == nullptr || !round_v->is_number()) {
      return fail(at + "snapshot record without a round");
    }
    const auto round = as_u64(round_v->number);
    if (!rounds_.empty() && round < rounds_.back()) {
      return fail(at + "snapshot rounds not ascending");
    }
    // Carry the previous row forward; delta-encoded records only name
    // metrics that changed since the last capture. The first (full) record
    // starts from zeros: metrics it omits genuinely are zero.
    std::vector<double> counters =
        counter_rows_.empty() ? std::vector<double>(counter_names_.size(), 0.0)
                              : counter_rows_.back();
    std::vector<double> gauges =
        gauge_rows_.empty() ? std::vector<double>(gauge_names_.size(), 0.0)
                            : gauge_rows_.back();
    std::vector<SurfaceHistogram> hists =
        histogram_rows_.empty()
            ? std::vector<SurfaceHistogram>(histogram_names_.size())
            : histogram_rows_.back();
    // A histogram omitted from this record saw no observations since the
    // previous one.
    for (SurfaceHistogram& h : hists) h.delta = 0.0;
    if (const JsonValue* cs = record.find("counters");
        cs != nullptr && cs->is_object()) {
      for (const auto& [name, entry] : cs->members) {
        const std::size_t j = counter_index(name);
        if (j == npos) return fail(at + "unknown counter '" + name + "'");
        counters[j] = entry.get_number("value", entry.number);
      }
    }
    if (const JsonValue* gs = record.find("gauges");
        gs != nullptr && gs->is_object()) {
      for (const auto& [name, entry] : gs->members) {
        const std::size_t j = gauge_index(name);
        if (j == npos) return fail(at + "unknown gauge '" + name + "'");
        if (!entry.is_number()) return fail(at + "gauge not a number");
        gauges[j] = entry.number;
      }
    }
    if (const JsonValue* hs = record.find("histograms");
        hs != nullptr && hs->is_object()) {
      for (const auto& [name, entry] : hs->members) {
        const std::size_t j = histogram_index(name);
        if (j == npos) return fail(at + "unknown histogram '" + name + "'");
        SurfaceHistogram& h = hists[j];
        h.total = entry.get_number("total", h.total);
        h.delta = entry.get_number("delta", 0.0);
        h.p50 = entry.get_number("p50", h.p50);
        h.p90 = entry.get_number("p90", h.p90);
        h.p99 = entry.get_number("p99", h.p99);
      }
    }
    rounds_.push_back(round);
    seqs_.push_back(as_u64(record.get_number("seq", 0.0)));
    counter_rows_.push_back(std::move(counters));
    gauge_rows_.push_back(std::move(gauges));
    histogram_rows_.push_back(std::move(hists));
  }
  if (rounds_.empty()) return fail("stream carries no snapshot records");
  return true;
}

bool SnapshotSurface::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return fail("cannot open " + path);
  return load(in);
}

std::size_t SnapshotSurface::counter_index(std::string_view name) const {
  return name_index(counter_names_, name);
}
std::size_t SnapshotSurface::gauge_index(std::string_view name) const {
  return name_index(gauge_names_, name);
}
std::size_t SnapshotSurface::histogram_index(std::string_view name) const {
  return name_index(histogram_names_, name);
}

bool SnapshotSurface::has_counter(std::string_view name) const {
  return counter_index(name) != npos;
}
bool SnapshotSurface::has_gauge(std::string_view name) const {
  return gauge_index(name) != npos;
}

double SnapshotSurface::counter_at(std::size_t i,
                                   std::string_view name) const {
  const std::size_t j = counter_index(name);
  return j == npos ? 0.0 : counter_rows_[i][j];
}

double SnapshotSurface::gauge_at(std::size_t i, std::string_view name) const {
  const std::size_t j = gauge_index(name);
  return j == npos ? 0.0 : gauge_rows_[i][j];
}

const SurfaceHistogram* SnapshotSurface::histogram_at(
    std::size_t i, std::string_view name) const {
  const std::size_t j = histogram_index(name);
  return j == npos ? nullptr : &histogram_rows_[i][j];
}

std::size_t SnapshotSurface::index_at_round(std::uint64_t round) const {
  const auto it = std::upper_bound(rounds_.begin(), rounds_.end(), round);
  if (it == rounds_.begin()) return npos;
  return static_cast<std::size_t>(it - rounds_.begin()) - 1;
}

std::size_t SnapshotSurface::index_from_round(std::uint64_t round) const {
  const auto it = std::lower_bound(rounds_.begin(), rounds_.end(), round);
  if (it == rounds_.end()) return npos;
  return static_cast<std::size_t>(it - rounds_.begin());
}

double SnapshotSurface::counter_window_delta(std::string_view name,
                                             std::uint64_t begin,
                                             std::uint64_t end) const {
  const std::size_t j = counter_index(name);
  if (j == npos || rounds_.empty()) return 0.0;
  const std::size_t hi = index_at_round(end);
  if (hi == npos) return 0.0;
  const std::size_t lo = index_at_round(begin);
  const double before = lo == npos ? 0.0 : counter_rows_[lo][j];
  return counter_rows_[hi][j] - before;
}

double SnapshotSurface::gauge_window_min(std::string_view name,
                                         std::uint64_t begin,
                                         std::uint64_t end,
                                         double fallback) const {
  const std::size_t j = gauge_index(name);
  if (j == npos) return fallback;
  double best = fallback;
  bool any = false;
  for (std::size_t i = 0; i < rounds_.size(); ++i) {
    if (rounds_[i] < begin || rounds_[i] > end) continue;
    const double v = gauge_rows_[i][j];
    best = any ? std::min(best, v) : v;
    any = true;
  }
  return best;
}

double SnapshotSurface::gauge_window_max(std::string_view name,
                                         std::uint64_t begin,
                                         std::uint64_t end,
                                         double fallback) const {
  const std::size_t j = gauge_index(name);
  if (j == npos) return fallback;
  double best = fallback;
  bool any = false;
  for (std::size_t i = 0; i < rounds_.size(); ++i) {
    if (rounds_[i] < begin || rounds_[i] > end) continue;
    const double v = gauge_rows_[i][j];
    best = any ? std::max(best, v) : v;
    any = true;
  }
  return best;
}

// ---------------------------------------------------------------------------
// ChaosLog

bool ChaosLog::fail(const std::string& message) {
  *this = ChaosLog{};
  last_error_ = message;
  return false;
}

bool ChaosLog::load_value(const JsonValue& root) {
  if (!root.is_object()) return fail("chaos report is not a JSON object");
  scenario_ = root.get_string("scenario");
  const JsonValue* recovery = root.find("recovery");
  if (recovery == nullptr && root.find("episodes") != nullptr) {
    recovery = &root;  // bare RecoveryTracker JSON
  }
  if (recovery == nullptr) {
    return fail("chaos report carries no recovery section");
  }
  unrecovered_ = static_cast<std::size_t>(
      as_u64(recovery->get_number("unrecovered", 0.0)));
  baseline_mean_ = recovery->get_number("baseline_mean_degree", 0.0);
  if (const JsonValue* eps = recovery->find("episodes");
      eps != nullptr && eps->is_array()) {
    for (const JsonValue& e : eps->items) {
      EpisodeRecord rec;
      rec.label = e.get_string("label", "unlabeled");
      rec.declared = e.get_bool("declared");
      rec.begin = as_u64(e.get_number("begin"));
      rec.heal = as_u64(e.get_number("heal"));
      rec.degraded = e.get_bool("degraded");
      rec.recovered = e.get_bool("recovered");
      rec.recovered_round = as_u64(e.get_number("recovered_round"));
      rec.recovery_rounds = as_u64(e.get_number("recovery_rounds"));
      if (const JsonValue* lanes = e.find("lane_names");
          lanes != nullptr && lanes->is_array()) {
        for (const JsonValue& lane : lanes->items) {
          if (lane.is_string()) rec.lanes.push_back(lane.string);
        }
      }
      episodes_.push_back(std::move(rec));
    }
  }
  if (const JsonValue* oracle = root.find("oracle"); oracle != nullptr) {
    has_oracle_ = true;
    if (const JsonValue* prediction = oracle->find("prediction");
        prediction != nullptr) {
      predicted_loss_ = prediction->get_number("loss", 0.0);
    }
    const JsonValue* monitor = oracle->find("monitor");
    if (monitor == nullptr) monitor = oracle;  // bare monitor JSON
    if (const JsonValue* transitions = monitor->find("transitions");
        transitions != nullptr && transitions->is_array()) {
      for (const JsonValue& t : transitions->items) {
        if (t.get_string("to") != "violation") continue;
        OracleViolationRecord rec;
        rec.round = as_u64(t.get_number("round"));
        rec.check = t.get_string("check", "unknown");
        rec.from = t.get_string("from", "ok");
        rec.score = t.get_number("score", 0.0);
        violations_.push_back(std::move(rec));
      }
    }
  }
  if (const JsonValue* watchdog = root.find("watchdog"); watchdog != nullptr) {
    if (const JsonValue* log = watchdog->find("log");
        log != nullptr && log->is_array()) {
      for (const JsonValue& v : log->items) {
        WatchdogTripRecord rec;
        rec.kind = v.get_string("kind", "unknown");
        rec.round = as_u64(v.get_number("round"));
        rec.node = static_cast<std::int64_t>(v.get_number("node", -1.0));
        watchdog_trips_.push_back(std::move(rec));
      }
    }
  }
  return true;
}

bool ChaosLog::load(std::istream& in) {
  *this = ChaosLog{};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  std::string error;
  if (!parse_json(buffer.str(), &root, &error)) return fail(error);
  return load_value(root);
}

bool ChaosLog::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return fail("cannot open " + path);
  return load(in);
}

// ---------------------------------------------------------------------------
// RunArchive

namespace {

bool propagate(bool ok, const std::string& detail, std::string* error) {
  if (!ok && error != nullptr) *error = detail;
  return ok;
}

}  // namespace

bool RunArchive::load_trace(std::istream& in, std::string* error) {
  has_trace_ = trace_.load(in);
  return propagate(has_trace_, trace_.last_error(), error);
}

bool RunArchive::load_trace_file(const std::string& path, std::string* error) {
  has_trace_ = trace_.load_file(path);
  return propagate(has_trace_, trace_.last_error(), error);
}

bool RunArchive::load_snapshots(std::istream& in, std::string* error) {
  has_snapshots_ = surface_.load(in);
  return propagate(has_snapshots_, surface_.last_error(), error);
}

bool RunArchive::load_snapshots_file(const std::string& path,
                                     std::string* error) {
  has_snapshots_ = surface_.load_file(path);
  return propagate(has_snapshots_, surface_.last_error(), error);
}

bool RunArchive::load_chaos(std::istream& in, std::string* error) {
  has_chaos_ = chaos_.load(in);
  return propagate(has_chaos_, chaos_.last_error(), error);
}

bool RunArchive::load_chaos_file(const std::string& path, std::string* error) {
  has_chaos_ = chaos_.load_file(path);
  return propagate(has_chaos_, chaos_.last_error(), error);
}

}  // namespace gossip::obs::forensics
