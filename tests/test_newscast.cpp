#include "core/baselines/newscast.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "graph/connectivity.hpp"
#include "graph/graph_gen.hpp"
#include "sim/round_driver.hpp"
#include "test_support.hpp"

namespace gossip {
namespace {

using testing::CaptureTransport;

TEST(Newscast, EmptyViewIsSelfLoop) {
  Newscast node(0, NewscastConfig{.view_size = 8});
  Rng rng(1);
  CaptureTransport transport;
  node.on_initiate(rng, transport);
  EXPECT_TRUE(transport.sent.empty());
  EXPECT_EQ(node.metrics().self_loop_actions, 1u);
}

TEST(Newscast, ExchangeCarriesSelfDescriptorFirst) {
  Newscast node(9, NewscastConfig{.view_size = 8});
  node.install_view({1, 2, 3});
  Rng rng(2);
  CaptureTransport transport;
  node.on_initiate(rng, transport);
  ASSERT_EQ(transport.sent.size(), 1u);
  const Message& m = transport.sent.front();
  EXPECT_EQ(m.kind, MessageKind::kNewscastExchange);
  ASSERT_EQ(m.payload.size(), 4u);  // self + 3 copies
  EXPECT_EQ(m.payload.front().id, 9u);
  EXPECT_FALSE(m.payload.front().dependent);
  for (std::size_t k = 1; k < m.payload.size(); ++k) {
    EXPECT_TRUE(m.payload[k].dependent);  // copies, originals kept
  }
  // Nothing deleted at send time.
  EXPECT_EQ(node.view().degree(), 3u);
}

TEST(Newscast, ExchangeTriggersReplyAndMerge) {
  Newscast replier(5, NewscastConfig{.view_size = 8});
  replier.install_view({10, 11});
  Rng rng(3);
  CaptureTransport transport;
  Message exchange;
  exchange.from = 2;
  exchange.to = 5;
  exchange.kind = MessageKind::kNewscastExchange;
  exchange.payload = {ViewEntry{2, false}, ViewEntry{20, true}};
  replier.on_message(exchange, rng, transport);
  ASSERT_EQ(transport.sent.size(), 1u);
  EXPECT_EQ(transport.sent.front().kind, MessageKind::kNewscastReply);
  EXPECT_EQ(transport.sent.front().to, 2u);
  // Merged: old {10, 11} plus incoming {2, 20}.
  EXPECT_TRUE(replier.view().contains(2));
  EXPECT_TRUE(replier.view().contains(20));
  EXPECT_TRUE(replier.view().contains(10));
  EXPECT_EQ(replier.view().degree(), 4u);
}

TEST(Newscast, MergeKeepsYoungestPerIdAndCapsAtCapacity) {
  Newscast node(0, NewscastConfig{.view_size = 6});
  node.install_view({1, 2, 3, 4, 5, 6});
  Rng rng(4);
  CaptureTransport transport;
  // Age the residents by initiating a few times (clock advances).
  for (int k = 0; k < 5; ++k) node.on_initiate(rng, transport);
  Message exchange;
  exchange.from = 7;
  exchange.to = 0;
  exchange.kind = MessageKind::kNewscastExchange;
  exchange.payload = {ViewEntry{7, false}, ViewEntry{8, true},
                      ViewEntry{9, true}};
  node.on_message(exchange, rng, transport);
  // Capacity 6: the three young arrivals displace three aged residents.
  EXPECT_EQ(node.view().degree(), 6u);
  EXPECT_TRUE(node.view().contains(7));
  EXPECT_TRUE(node.view().contains(8));
  EXPECT_TRUE(node.view().contains(9));
  // No duplicates within the view.
  EXPECT_EQ(node.view().intra_view_duplicates(), 0u);
}

TEST(Newscast, NeverStoresOwnId) {
  Newscast node(3, NewscastConfig{.view_size = 6});
  Rng rng(5);
  CaptureTransport transport;
  Message exchange;
  exchange.from = 1;
  exchange.to = 3;
  exchange.kind = MessageKind::kNewscastExchange;
  exchange.payload = {ViewEntry{1, false}, ViewEntry{3, true}};
  node.on_message(exchange, rng, transport);
  EXPECT_FALSE(node.view().contains(3));
  EXPECT_TRUE(node.view().contains(1));
}

TEST(Newscast, AgesAdvanceWithInitiations) {
  Newscast node(0, NewscastConfig{.view_size = 6});
  node.install_view({1, 2});
  Rng rng(6);
  CaptureTransport transport;
  EXPECT_EQ(node.max_age(), 0u);
  for (int k = 0; k < 4; ++k) node.on_initiate(rng, transport);
  EXPECT_EQ(node.max_age(), 4u);
}

TEST(Newscast, LossImmuneAndConnectedUnderLoss) {
  Rng rng(7);
  constexpr std::size_t kN = 300;
  sim::Cluster cluster(kN, [](NodeId id) {
    return std::make_unique<Newscast>(id, NewscastConfig{.view_size = 12});
  });
  cluster.install_graph(permutation_regular(kN, 6, rng));
  sim::UniformLoss loss(0.10);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(300);
  const auto snap = cluster.snapshot();
  // Views stay full: copies are never deleted at send time.
  double total = 0.0;
  for (NodeId u = 0; u < kN; ++u) {
    total += static_cast<double>(cluster.node(u).view().degree());
  }
  EXPECT_GT(total / kN, 11.0);
  EXPECT_TRUE(is_weakly_connected(snap));
}

TEST(Newscast, DeadNodesAgeOutOfViews) {
  Rng rng(8);
  constexpr std::size_t kN = 300;
  sim::Cluster cluster(kN, [](NodeId id) {
    return std::make_unique<Newscast>(id, NewscastConfig{.view_size = 12});
  });
  cluster.install_graph(permutation_regular(kN, 6, rng));
  sim::UniformLoss loss(0.01);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(200);
  for (NodeId v = 0; v < 30; ++v) cluster.kill(v);
  driver.run_rounds(300);
  std::size_t dead_refs = 0;
  std::size_t refs = 0;
  for (const NodeId u : cluster.live_nodes()) {
    for (const NodeId v : cluster.node(u).view().ids()) {
      ++refs;
      if (!cluster.live(v)) ++dead_refs;
    }
  }
  // The age discipline washes dead descriptors out (they stop being
  // refreshed and lose every youngest-first merge).
  EXPECT_LT(static_cast<double>(dead_refs) / static_cast<double>(refs),
            0.05);
}

}  // namespace
}  // namespace gossip
