// DetectionTracker: failure/join detection scoring for the protocol arena.
//
// The arena compares protocols on what the paper's S&F deliberately does
// NOT buy — timely, explicit failure detection — so the tracker scores
// every contender on the same three currencies:
//
//   completeness   every injected kill (join) is eventually detected at
//                  every live observer that believed the subject alive
//                  (resp. did not yet know it). Observers that die before
//                  detecting leave the denominator — a dead node holds no
//                  belief to correct.
//   latency        rounds from the injection to the first and the last
//                  detection across the observer set.
//   false positives ordered live pairs (u, w) where u's verdict on the
//                  live node w is suspect or faulty. Counted as pair
//                  spells: entering the state is one event, leaving it
//                  resolves it; spells still open at the end of the run
//                  are the unresolved count the gates care about.
//
// Verdicts come through a callback (MemberVerdict of core/protocol.hpp),
// so the tracker is agnostic to cluster representation and protocol — S&F
// "detects" by washing an id out of views (kUnknown), SWIM by suspicion
// and confirmation, heartbeats by counter stall. Pure observer: draws no
// RNG and mutates nothing; all scans run at probe boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <unordered_set>
#include <vector>

#include "common/node_id.hpp"
#include "core/protocol.hpp"

namespace gossip::obs {

struct DetectionConfig {
  // The O(n^2) false-positive pair scan runs every `fp_stride`-th observe
  // call (1 = every probe). 0 disables the scan.
  std::uint64_t fp_stride = 1;
};

struct DetectionEvent {
  NodeId subject = kNilNode;
  std::uint64_t round = 0;  // injection round
  bool kill = false;        // kill event (else join)
  bool initialized = false; // observer set captured (first probe after)
  bool abandoned = false;   // join subject died before completion
  std::size_t observers = 0;  // current completeness denominator
  std::size_t detected = 0;
  bool any_detected = false;
  std::uint64_t first_latency = 0;  // rounds to the first detection
  bool complete = false;
  std::uint64_t last_latency = 0;  // rounds to the last detection

  // Observers still holding the pre-event belief.
  std::vector<NodeId> pending;
};

class DetectionTracker {
 public:
  using VerdictFn =
      std::function<MemberVerdict(NodeId observer, NodeId subject)>;
  using LiveFn = std::function<bool(NodeId)>;

  explicit DetectionTracker(DetectionConfig config = {});

  // Injection notifications (call when the driver kills / joins a node;
  // the observer set is captured lazily at the next observe()).
  void record_kill(std::uint64_t round, NodeId subject);
  void record_join(std::uint64_t round, NodeId subject);

  // One probe: advances every open event and (on fp_stride) rescans the
  // live-pair false-positive state. `node_count` bounds the id space.
  void observe(std::uint64_t round, std::size_t node_count,
               const LiveFn& live, const VerdictFn& verdict);

  [[nodiscard]] const std::vector<DetectionEvent>& events() const {
    return events_;
  }

  // Aggregates over kill (join) events: fraction of observers that
  // detected, 1.0 when there are no events.
  [[nodiscard]] double completeness(bool kills) const;
  [[nodiscard]] std::size_t event_count(bool kills) const;
  [[nodiscard]] std::size_t complete_count(bool kills) const;
  // Mean/max of first/last detection latency over events with detections;
  // incomplete events contribute no last latency (see complete_count).
  [[nodiscard]] double mean_first_latency(bool kills) const;
  [[nodiscard]] double mean_last_latency(bool kills) const;
  [[nodiscard]] std::uint64_t max_last_latency(bool kills) const;

  // False-positive pair spells: total opened, and still open now.
  [[nodiscard]] std::uint64_t fp_events() const { return fp_events_; }
  [[nodiscard]] std::size_t fp_unresolved() const {
    return fp_active_.size();
  }

  void write_json(std::ostream& out) const;

 private:
  void initialize_event(DetectionEvent& event, std::size_t node_count,
                        const LiveFn& live, const VerdictFn& verdict);
  [[nodiscard]] static bool detected(const DetectionEvent& event,
                                     MemberVerdict verdict);

  DetectionConfig config_;
  std::vector<DetectionEvent> events_;
  std::uint64_t observe_calls_ = 0;
  std::uint64_t fp_events_ = 0;
  std::unordered_set<std::uint64_t> fp_active_;  // (u << 32) | w
  std::unordered_set<std::uint64_t> fp_scratch_;
};

}  // namespace gossip::obs
