#include "analysis/mixing.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace gossip::analysis {

MixingResult measure_mixing(const markov::SparseChain& chain,
                            const std::vector<double>& pi, std::size_t steps,
                            double epsilon) {
  const std::size_t n = chain.state_count();
  if (pi.size() != n) {
    throw std::invalid_argument("pi size does not match chain");
  }
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    throw std::invalid_argument("epsilon must be in (0, 1)");
  }

  // rows[x] = P^t(x, ·), evolved jointly.
  std::vector<std::vector<double>> rows(n);
  for (std::size_t x = 0; x < n; ++x) {
    rows[x].assign(n, 0.0);
    rows[x][x] = 1.0;
  }

  MixingResult result;
  result.epsilon = epsilon;
  result.tau_epsilon = std::numeric_limits<std::size_t>::max();

  // Per-row TV contributions, summed in index order afterwards so the
  // total does not depend on how rows were distributed over threads.
  std::vector<double> tv_term(n, 0.0);
  auto row_tv = [&](std::size_t x) {
    if (pi[x] == 0.0) {
      tv_term[x] = 0.0;
      return;
    }
    double tv = 0.0;
    for (std::size_t y = 0; y < n; ++y) {
      tv += std::abs(rows[x][y] - pi[y]);
    }
    tv_term[x] = pi[x] * 0.5 * tv;
  };
  auto total_tv = [&] {
    double total = 0.0;
    for (std::size_t x = 0; x < n; ++x) total += tv_term[x];
    return total;
  };

  // Rows evolve independently: distribute them over the pool, one sparse
  // step plus one TV evaluation per row. The chunk grain is a pure
  // function of n (determinism), and the nested parallelism inside
  // step_into collapses to the inline path on worker threads.
  const std::size_t grain = std::max<std::size_t>(16, n / 64);
  auto evolve_rows = [&](std::size_t begin, std::size_t end) {
    std::vector<double> scratch;
    for (std::size_t x = begin; x < end; ++x) {
      chain.step_into(rows[x], scratch);
      rows[x].swap(scratch);
      row_tv(x);
    }
  };

  for (std::size_t x = 0; x < n; ++x) row_tv(x);
  result.expected_tv.push_back(total_tv());
  for (std::size_t t = 1; t <= steps; ++t) {
    ThreadPool::global().parallel_for(n, grain, evolve_rows);
    const double d = total_tv();
    result.expected_tv.push_back(d);
    if (d < epsilon &&
        result.tau_epsilon == std::numeric_limits<std::size_t>::max()) {
      result.tau_epsilon = t;
      // Keep going to fill the decay curve.
    }
  }

  // Fit the geometric decay rate over the second half of the curve,
  // ignoring values too small for a stable ratio.
  double log_ratio_sum = 0.0;
  std::size_t ratios = 0;
  for (std::size_t t = result.expected_tv.size() / 2;
       t + 1 < result.expected_tv.size(); ++t) {
    const double a = result.expected_tv[t];
    const double b = result.expected_tv[t + 1];
    if (a > 1e-12 && b > 1e-12 && b < a) {
      log_ratio_sum += std::log(b / a);
      ++ratios;
    }
  }
  result.decay_rate =
      ratios > 0 ? std::exp(log_ratio_sum / static_cast<double>(ratios)) : 1.0;
  return result;
}

}  // namespace gossip::analysis
