// Statistical utilities: running moments, distribution distances, and
// goodness-of-fit tests used to compare measured distributions against the
// paper's analytical predictions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gossip {

// Welford's online algorithm for mean / variance; numerically stable.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  // Population variance (divides by n).
  [[nodiscard]] double variance() const;
  // Sample variance (divides by n - 1); 0 when fewer than 2 observations.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  void merge(const RunningStats& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Total variation distance between two pmfs: (1/2) * sum |p_i - q_i|.
// Vectors of different lengths are zero-padded.
[[nodiscard]] double total_variation_distance(std::span<const double> p,
                                              std::span<const double> q);

// Kolmogorov-Smirnov statistic between two pmfs over the integers:
// max_k |CDF_p(k) - CDF_q(k)|.
[[nodiscard]] double ks_statistic(std::span<const double> p,
                                  std::span<const double> q);

// L1 distance: sum |p_i - q_i|.
[[nodiscard]] double l1_distance(std::span<const double> p,
                                 std::span<const double> q);

// Pearson's chi-square statistic of observed counts against expected
// probabilities. Buckets with expected probability 0 must have 0 observed
// count (asserted). Returns the statistic; degrees of freedom is
// (#buckets with nonzero expectation - 1).
[[nodiscard]] double chi_square_statistic(std::span<const std::uint64_t> observed,
                                          std::span<const double> expected_probs);

// Upper-tail probability of the chi-square distribution with k degrees of
// freedom evaluated at x: P(X >= x). Computed via the regularized upper
// incomplete gamma function Q(k/2, x/2).
[[nodiscard]] double chi_square_upper_tail(double x, double degrees_of_freedom);

// Mean and (population) variance of a pmf over {0, 1, 2, ...}.
struct PmfMoments {
  double mean = 0.0;
  double variance = 0.0;
};
[[nodiscard]] PmfMoments pmf_moments(std::span<const double> p);

// Pearson correlation coefficient of two equal-length samples.
// Returns 0 when either sample has zero variance.
[[nodiscard]] double pearson_correlation(std::span<const double> x,
                                         std::span<const double> y);

// Least-squares fit y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

}  // namespace gossip
