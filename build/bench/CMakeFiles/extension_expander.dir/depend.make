# Empty dependencies file for extension_expander.
# This may be replaced when dependencies are built.
