file(REMOVE_RECURSE
  "libgossip_common.a"
)
