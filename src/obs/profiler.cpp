#include "obs/profiler.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace gossip::obs {

PhaseProfiler::PhaseProfiler(std::size_t shard_count)
    : slabs_(std::max<std::size_t>(1, shard_count)) {}

PhaseId PhaseProfiler::phase(std::string_view name, bool coordinator) {
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return PhaseId{i};
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  coordinator_.push_back(coordinator ? 1 : 0);
  const std::size_t want = padded(names_.size());
  for (Slab& slab : slabs_) {
    if (slab.cells.size() < want) slab.cells.resize(want);
  }
  return PhaseId{id};
}

std::vector<PhaseProfiler::PhaseTotal> PhaseProfiler::totals() const {
  std::vector<PhaseTotal> out(names_.size());
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    out[i].name = names_[i];
    for (const Slab& slab : slabs_) {
      out[i].nanos += slab.cells[i].nanos;
      out[i].count += slab.cells[i].count;
    }
  }
  return out;
}

std::vector<PhaseProfiler::PhaseTotal> PhaseProfiler::shard_totals(
    std::size_t shard) const {
  std::vector<PhaseTotal> out(names_.size());
  const Slab& slab = slabs_[shard];
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    out[i].name = names_[i];
    out[i].nanos = slab.cells[i].nanos;
    out[i].count = slab.cells[i].count;
  }
  return out;
}

void PhaseProfiler::reset() {
  for (Slab& slab : slabs_) {
    std::fill(slab.cells.begin(), slab.cells.end(), Cell{});
  }
}

std::string PhaseProfiler::report() const {
  std::ostringstream out;
  const auto phase_totals = totals();
  for (std::uint32_t i = 0; i < phase_totals.size(); ++i) {
    const PhaseTotal& t = phase_totals[i];
    out << t.name << (coordinator_[i] != 0 ? " [coordinator]" : "") << ": "
        << static_cast<double>(t.nanos) / 1e6 << " ms over " << t.count
        << " scopes\n";
  }
  return out.str();
}

void PhaseProfiler::write_json(std::ostream& out) const {
  out << '[';
  bool first = true;
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (!first) out << ',';
    first = false;
    std::uint64_t nanos = 0;
    std::uint64_t count = 0;
    for (const Slab& slab : slabs_) {
      nanos += slab.cells[i].nanos;
      count += slab.cells[i].count;
    }
    out << "{\"phase\":\"" << names_[i] << "\",\"nanos\":" << nanos
        << ",\"count\":" << count << ",\"coordinator\":"
        << (coordinator_[i] != 0 ? "true" : "false");
    if (coordinator_[i] != 0) {
      // One thread worked for the whole cluster; a per-shard split would
      // just pin everything on whichever shard ran the coordinator.
      out << '}';
    } else {
      out << ",\"per_shard_nanos\":[";
      for (std::size_t s = 0; s < slabs_.size(); ++s) {
        if (s != 0) out << ',';
        out << slabs_[s].cells[i].nanos;
      }
      out << "]}";
    }
  }
  out << ']';
}

}  // namespace gossip::obs
