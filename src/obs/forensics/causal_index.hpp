// CausalIndex: random access into a loaded flight trace.
//
// FlightTrace answers "what happened to message m / node u" with a linear
// scan — fine for one trace-dump query, quadratic for an attributor that
// asks per incident. The index is built once over the trace's global
// (round, shard) order and hands back:
//
//   - per-message event lists keyed by the (shard << 48 | seq) id,
//   - per-node timelines (every event naming the node as actor or peer),
//   - the contiguous [first, last) event range of any round window, and
//   - per-kind counts inside a window (how many kills, fault drops, ...).
//
// Lookups return indices into trace().events() so callers keep the global
// ordering for free. Hash maps are used for storage only; no code path
// iterates one, so results are deterministic.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/node_id.hpp"
#include "obs/oracle/flight_recorder.hpp"

namespace gossip::obs::forensics {

inline constexpr std::size_t kFlightEventKindCount =
    static_cast<std::size_t>(FlightEventKind::kFaultDrop) + 1;

class CausalIndex {
 public:
  // The trace must outlive the index.
  explicit CausalIndex(const FlightTrace& trace);

  [[nodiscard]] const FlightTrace& trace() const { return *trace_; }
  [[nodiscard]] std::size_t message_count() const {
    return by_message_.size();
  }
  [[nodiscard]] std::size_t node_count() const { return by_node_.size(); }

  // Event indices (into trace().events(), global order) for one message /
  // node; a stable empty list when unseen.
  [[nodiscard]] const std::vector<std::uint32_t>& message_events(
      std::uint64_t message_id) const;
  [[nodiscard]] const std::vector<std::uint32_t>& node_events(
      NodeId node) const;

  // Half-open event-index range covering rounds [begin, end).
  [[nodiscard]] std::pair<std::size_t, std::size_t> round_range(
      std::uint64_t begin, std::uint64_t end) const;

  // Per-kind event counts inside rounds [begin, end).
  [[nodiscard]] std::array<std::uint64_t, kFlightEventKindCount>
  kind_counts(std::uint64_t begin, std::uint64_t end) const;

  // Walks the window backwards from `end` and returns up to `limit` event
  // indices of `kind`, most recent first — the evidence-chain sampler.
  [[nodiscard]] std::vector<std::uint32_t> last_events_of_kind(
      FlightEventKind kind, std::uint64_t begin, std::uint64_t end,
      std::size_t limit) const;

 private:
  const FlightTrace* trace_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_message_;
  std::unordered_map<NodeId, std::vector<std::uint32_t>> by_node_;
};

}  // namespace gossip::obs::forensics
