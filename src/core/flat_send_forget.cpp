#include "core/flat_send_forget.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gossip {

FlatSendForgetCluster::FlatSendForgetCluster(std::size_t node_count,
                                            SendForgetConfig config)
    : config_(config),
      n_(node_count),
      view_size_(config.view_size),
      slots_(node_count * config.view_size),
      degree_(node_count, 0),
      live_(node_count, 1),
      live_count_(node_count) {
  config_.validate();
  if (node_count == 0) {
    throw std::invalid_argument("flat cluster requires at least one node");
  }
}

FlatInitiateResult FlatSendForgetCluster::initiate(NodeId u, Rng& rng,
                                                   FlatPush& out) {
  assert(u < n_ && live_[u]);
  ViewEntry* v = view(u);
  const auto [i, j] = rng.distinct_pair(view_size_);
  const ViewEntry target = v[i];
  const ViewEntry carried = v[j];
  if (target.empty() || carried.empty()) {
    // "If either of them is empty, nothing happens" — a self-loop
    // transformation in the MC model.
    return FlatInitiateResult::kSelfLoop;
  }

  const bool duplicate = degree_[u] <= config_.min_degree;
  if (!duplicate) {
    v[i] = ViewEntry{};
    v[j] = ViewEntry{};
    degree_[u] -= 2;
  }

  out.to = target.id;
  out.sender = ViewEntry{u, duplicate};
  out.carried = ViewEntry{carried.id, duplicate};
  return duplicate ? FlatInitiateResult::kSentDuplicated
                   : FlatInitiateResult::kSent;
}

std::size_t FlatSendForgetCluster::receive(NodeId u, const FlatPush& message,
                                           Rng& rng) {
  assert(u < n_ && live_[u]);
  assert(!message.sender.empty() && !message.carried.empty());
  if (degree_[u] == view_size_) {
    // d(u) = s: the received ids are deleted.
    return 0;
  }
  // Outdegree is even (Obs 5.1) and capacity is even, so a non-full view
  // has at least two empty slots.
  assert(view_size_ - degree_[u] >= 2);
  store(u, message.sender, rng);
  store(u, message.carried, rng);
  return 2;
}

void FlatSendForgetCluster::store(NodeId u, ViewEntry entry, Rng& rng) {
  // A received copy of our own id forms a self-edge; the paper labels all
  // self-edges dependent (§2).
  if (entry.id == u) entry.dependent = true;
  const std::size_t slot = random_empty_slot(u, rng);
  view(u)[slot] = entry;
  ++degree_[u];
}

std::size_t FlatSendForgetCluster::random_empty_slot(NodeId u,
                                                     Rng& rng) const {
  const ViewEntry* v = view(u);
  const std::size_t empties = view_size_ - degree_[u];
  assert(empties > 0);
  // Each accepted probe is uniform over empty slots, and so is the
  // fallback; a mixture of uniforms over the same set stays uniform.
  for (int probes = 0; probes < 64; ++probes) {
    const std::size_t i = rng.uniform(view_size_);
    if (v[i].empty()) return i;
  }
  std::size_t k = rng.uniform(empties);
  for (std::size_t i = 0;; ++i) {
    assert(i < view_size_);
    if (v[i].empty() && k-- == 0) return i;
  }
}

void FlatSendForgetCluster::kill(NodeId u) {
  assert(u < n_);
  if (!live_[u]) return;
  live_[u] = 0;
  --live_count_;
}

void FlatSendForgetCluster::revive(NodeId u, Rng& rng) {
  assert(u < n_);
  if (live_[u]) throw std::logic_error("node already live");
  if (live_count_ == 0) {
    throw std::logic_error("cannot bootstrap a joiner into an empty cluster");
  }

  // Collect min_degree distinct ids of live nodes: the contact plus live
  // entries of its view, topping up from further random live nodes' views.
  // A bounded number of attempts keeps this deterministic-time; if the
  // cluster is too depleted to offer enough distinct ids we top up with
  // repeats of live ids (the view is a multiset, so this is legal and keeps
  // the joiner at outdegree dL as §6.5 requires).
  const std::size_t want = config_.min_degree;
  std::vector<NodeId> boot;
  boot.reserve(want);
  const auto add_distinct = [&](NodeId id) {
    if (id == u || !live_[id]) return;
    if (std::find(boot.begin(), boot.end(), id) != boot.end()) return;
    boot.push_back(id);
  };
  NodeId contact = random_live_node(rng);
  for (int attempts = 0; boot.size() < want && attempts < 64; ++attempts) {
    add_distinct(contact);
    const ViewEntry* cv = view(contact);
    for (std::size_t i = 0; i < view_size_ && boot.size() < want; ++i) {
      if (!cv[i].empty()) add_distinct(cv[i].id);
    }
    contact = random_live_node(rng);
  }
  while (boot.size() < want) {
    const NodeId id = random_live_node(rng);
    if (id != u) boot.push_back(id);
  }

  ViewEntry* v = view(u);
  for (std::size_t i = 0; i < view_size_; ++i) v[i] = ViewEntry{};
  for (std::size_t i = 0; i < boot.size(); ++i) {
    v[i] = ViewEntry{boot[i], /*dependent=*/false};
  }
  degree_[u] = static_cast<std::uint32_t>(boot.size());
  live_[u] = 1;
  ++live_count_;
}

void FlatSendForgetCluster::install_view(NodeId u,
                                         const std::vector<NodeId>& ids) {
  assert(u < n_);
  ViewEntry* v = view(u);
  for (std::size_t i = 0; i < view_size_; ++i) v[i] = ViewEntry{};
  const std::size_t count = std::min(ids.size(), view_size_);
  for (std::size_t i = 0; i < count; ++i) {
    assert(ids[i] != kNilNode);
    v[i] = ViewEntry{ids[i], /*dependent=*/false};
  }
  degree_[u] = static_cast<std::uint32_t>(count);
}

std::vector<NodeId> FlatSendForgetCluster::view_ids(NodeId u) const {
  const ViewEntry* v = view(u);
  std::vector<NodeId> out;
  out.reserve(degree_[u]);
  for (std::size_t i = 0; i < view_size_; ++i) {
    if (!v[i].empty()) out.push_back(v[i].id);
  }
  return out;
}

std::vector<ViewEntry> FlatSendForgetCluster::view_entries(NodeId u) const {
  const ViewEntry* v = view(u);
  std::vector<ViewEntry> out;
  out.reserve(degree_[u]);
  for (std::size_t i = 0; i < view_size_; ++i) {
    if (!v[i].empty()) out.push_back(v[i]);
  }
  return out;
}

NodeId FlatSendForgetCluster::random_live_node(Rng& rng) const {
  assert(live_count_ > 0);
  // Churn call sites only; rejection sampling suffices off the hot path.
  for (;;) {
    const auto id = static_cast<NodeId>(rng.uniform(n_));
    if (live_[id]) return id;
  }
}

std::uint64_t FlatSendForgetCluster::fingerprint() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t value) {
    h ^= value;
    h *= 0x100000001B3ULL;
  };
  for (const ViewEntry& e : slots_) {
    mix(e.id);
    mix(e.dependent ? 2 : 1);
  }
  for (NodeId u = 0; u < n_; ++u) {
    mix(degree_[u]);
    mix(live_[u]);
  }
  return h;
}

}  // namespace gossip
