file(REMOVE_RECURSE
  "CMakeFiles/sec7_5_temporal_independence.dir/sec7_5_temporal_independence.cpp.o"
  "CMakeFiles/sec7_5_temporal_independence.dir/sec7_5_temporal_independence.cpp.o.d"
  "sec7_5_temporal_independence"
  "sec7_5_temporal_independence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_5_temporal_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
