file(REMOVE_RECURSE
  "CMakeFiles/extension_size_estimation.dir/extension_size_estimation.cpp.o"
  "CMakeFiles/extension_size_estimation.dir/extension_size_estimation.cpp.o.d"
  "extension_size_estimation"
  "extension_size_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_size_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
