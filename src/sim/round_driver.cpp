#include "sim/round_driver.hpp"

namespace gossip::sim {

RoundDriver::RoundDriver(Cluster& cluster, LossModel& loss, Rng& rng)
    : cluster_(cluster), rng_(rng), network_(cluster, loss, rng) {}

void RoundDriver::step() {
  const NodeId initiator = cluster_.random_live_node(rng_);
  cluster_.node(initiator).on_initiate(rng_, network_);
  ++actions_;
}

void RoundDriver::run_actions(std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) step();
}

void RoundDriver::run_rounds(std::uint64_t rounds) {
  for (std::uint64_t r = 0; r < rounds; ++r) {
    run_actions(cluster_.live_count());
  }
}

}  // namespace gossip::sim
