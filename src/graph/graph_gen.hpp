// Initial membership-topology generators.
//
// The paper's correctness properties must hold "starting from any
// sufficiently connected initial state" (§2); these generators produce the
// benign and adversarial starting topologies used by tests and benches.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "graph/digraph.hpp"

namespace gossip {

// Every node gets `out_degree` distinct random out-neighbors (never itself).
// Requires out_degree < n. Weak connectivity is overwhelmingly likely for
// out_degree >= 3 but not guaranteed; callers that require it should check.
[[nodiscard]] Digraph random_out_regular(std::size_t n, std::size_t out_degree,
                                         Rng& rng);

// Directed ring 0->1->...->n-1->0 plus `chords_per_node` random extra edges
// per node. Weakly connected by construction.
[[nodiscard]] Digraph ring_with_chords(std::size_t n,
                                       std::size_t chords_per_node, Rng& rng);

// Union of `k` random fixed-point-free permutations: every node has
// outdegree k AND indegree k, hence sum degree ds(u) = 3k for all u.
// This is the initialization required by §6.1 (ds(u) = dm with dm = 3k).
// Requires n >= 2.
[[nodiscard]] Digraph permutation_regular(std::size_t n, std::size_t k,
                                          Rng& rng);

// Adversarial chain u -> u+1 (weakly connected, maximally stretched).
[[nodiscard]] Digraph line_graph(std::size_t n);

// Adversarial star: every node points at node 0 (maximal in-degree
// imbalance). Node 0 points at node 1 so that it is not a sink.
[[nodiscard]] Digraph star_graph(std::size_t n);

}  // namespace gossip
