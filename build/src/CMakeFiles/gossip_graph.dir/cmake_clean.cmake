file(REMOVE_RECURSE
  "CMakeFiles/gossip_graph.dir/graph/connectivity.cpp.o"
  "CMakeFiles/gossip_graph.dir/graph/connectivity.cpp.o.d"
  "CMakeFiles/gossip_graph.dir/graph/digraph.cpp.o"
  "CMakeFiles/gossip_graph.dir/graph/digraph.cpp.o.d"
  "CMakeFiles/gossip_graph.dir/graph/graph_gen.cpp.o"
  "CMakeFiles/gossip_graph.dir/graph/graph_gen.cpp.o.d"
  "CMakeFiles/gossip_graph.dir/graph/graph_io.cpp.o"
  "CMakeFiles/gossip_graph.dir/graph/graph_io.cpp.o.d"
  "CMakeFiles/gossip_graph.dir/graph/graph_stats.cpp.o"
  "CMakeFiles/gossip_graph.dir/graph/graph_stats.cpp.o.d"
  "CMakeFiles/gossip_graph.dir/graph/reachability.cpp.o"
  "CMakeFiles/gossip_graph.dir/graph/reachability.cpp.o.d"
  "CMakeFiles/gossip_graph.dir/graph/spectral.cpp.o"
  "CMakeFiles/gossip_graph.dir/graph/spectral.cpp.o.d"
  "CMakeFiles/gossip_graph.dir/graph/transformations.cpp.o"
  "CMakeFiles/gossip_graph.dir/graph/transformations.cpp.o.d"
  "libgossip_graph.a"
  "libgossip_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
