file(REMOVE_RECURSE
  "CMakeFiles/test_degree_mc.dir/test_degree_mc.cpp.o"
  "CMakeFiles/test_degree_mc.dir/test_degree_mc.cpp.o.d"
  "test_degree_mc"
  "test_degree_mc.pdb"
  "test_degree_mc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_degree_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
