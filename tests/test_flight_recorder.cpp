// Flight recorder: ring semantics, message-id threading, the binary dump
// round-trip, and the non-perturbation contract — attaching a recorder to
// any driver must leave the run bit-identical (it draws no RNG).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/flat_send_forget.hpp"
#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "obs/oracle/flight_recorder.hpp"
#include "sim/event_driver.hpp"
#include "sim/round_driver.hpp"
#include "sim/sharded_driver.hpp"

namespace gossip {
namespace {

using obs::FlightEvent;
using obs::FlightEventKind;
using obs::FlightRecorder;
using obs::FlightTrace;

FlightEvent make_event(std::uint64_t id, std::uint32_t round, NodeId node,
                       NodeId peer, FlightEventKind kind) {
  return FlightEvent{id, round, node, peer, kind, 0, 0};
}

TEST(FlightRecorder, RingKeepsLastCapacityEvents) {
  FlightRecorder recorder(1, /*capacity=*/8);
  ASSERT_EQ(recorder.capacity(), 8u);
  for (std::uint32_t i = 0; i < 20; ++i) {
    recorder.record(0, make_event(0, i, i, kNilNode,
                                  FlightEventKind::kSelfLoop));
  }
  EXPECT_EQ(recorder.recorded(0), 20u);
  EXPECT_EQ(recorder.dropped(0), 12u);
  const std::vector<FlightEvent> kept = recorder.shard_events(0);
  ASSERT_EQ(kept.size(), 8u);
  // Oldest retained first: rounds 12..19.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].round, 12u + i);
  }
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder recorder(2, /*capacity=*/100);
  EXPECT_EQ(recorder.capacity(), 128u);
}

TEST(FlightRecorder, MessageIdsArePerShardAndNeverZero) {
  FlightRecorder recorder(3);
  const std::uint64_t a = recorder.begin_message(0);
  const std::uint64_t b = recorder.begin_message(0);
  const std::uint64_t c = recorder.begin_message(2);
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(FlightRecorder::message_shard(a), 0u);
  EXPECT_EQ(FlightRecorder::message_shard(c), 2u);
  // Deterministic: a fresh recorder reissues the same sequence.
  FlightRecorder again(3);
  EXPECT_EQ(again.begin_message(0), a);
}

TEST(FlightTrace, DumpLoadRoundTripPreservesEventsAndDrops) {
  FlightRecorder recorder(2, /*capacity=*/8);
  for (std::uint32_t i = 0; i < 12; ++i) {  // shard 0 wraps (4 dropped)
    recorder.record(0, make_event(i + 1, i, 10, 20, FlightEventKind::kSend));
  }
  recorder.record(1, make_event(3, 2, 20, 10, FlightEventKind::kDeliver));

  std::stringstream buffer;
  recorder.dump(buffer);
  FlightTrace trace;
  ASSERT_TRUE(trace.load(buffer));
  EXPECT_EQ(trace.shard_count(), 2u);
  EXPECT_EQ(trace.dropped(0), 4u);
  EXPECT_EQ(trace.dropped(1), 0u);
  EXPECT_EQ(trace.total_dropped(), 4u);
  ASSERT_EQ(trace.events().size(), 9u);  // 8 kept on shard 0 + 1 on shard 1
  // Global order is (round, shard, intra-shard order).
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_LE(trace.events()[i - 1].round, trace.events()[i].round);
  }
  // Round order puts shard 1's round-2 delivery first, ahead of shard 0's
  // retained sends (rounds 4..11).
  EXPECT_EQ(trace.events().front().kind, FlightEventKind::kDeliver);
  const std::string first = FlightTrace::format_event(trace.events().front());
  EXPECT_NE(first.find("deliver"), std::string::npos);
  const std::string last = FlightTrace::format_event(trace.events().back());
  EXPECT_NE(last.find("send"), std::string::npos);
}

TEST(FlightTrace, RejectsMalformedDumps) {
  std::stringstream garbage("not a flight dump at all");
  FlightTrace trace;
  EXPECT_FALSE(trace.load(garbage));
  EXPECT_TRUE(trace.events().empty());
  EXPECT_FALSE(trace.last_error().empty());
}

TEST(FlightTrace, EveryByteChoppedPrefixFailsCleanly) {
  // Regression for the hardened loader: a dump truncated at ANY byte
  // offset must load() == false with a diagnostic in last_error(), leave
  // no partial events behind, and never crash — not just the
  // garbage-magic case above.
  FlightRecorder recorder(2, /*capacity=*/8);
  for (std::uint32_t i = 0; i < 12; ++i) {
    recorder.record(0, make_event(i + 1, i, 10, 20, FlightEventKind::kSend));
  }
  recorder.record(1, make_event(3, 2, 20, 10, FlightEventKind::kDeliver));
  std::stringstream buffer;
  recorder.dump(buffer);
  const std::string full = buffer.str();
  ASSERT_GT(full.size(), 16u);

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream chopped(full.substr(0, cut));
    FlightTrace trace;
    EXPECT_FALSE(trace.load(chopped)) << "prefix of " << cut << " bytes";
    EXPECT_TRUE(trace.events().empty()) << "prefix of " << cut << " bytes";
    EXPECT_FALSE(trace.last_error().empty())
        << "prefix of " << cut << " bytes";
  }
  // The untruncated dump still loads (the loop above didn't poison
  // anything global).
  std::stringstream intact(full);
  FlightTrace trace;
  ASSERT_TRUE(trace.load(intact));
  EXPECT_TRUE(trace.last_error().empty());
  EXPECT_EQ(trace.events().size(), 9u);
}

TEST(FlightTrace, TrailingGarbageAfterDumpIsRejected) {
  FlightRecorder recorder(1, /*capacity=*/8);
  recorder.record(0, make_event(1, 4, 10, 20, FlightEventKind::kSend));
  std::stringstream buffer;
  recorder.dump(buffer);
  const std::string padded = buffer.str() + "extra bytes";
  std::stringstream in(padded);
  FlightTrace trace;
  EXPECT_FALSE(trace.load(in));
  EXPECT_FALSE(trace.last_error().empty());
}

TEST(FlightTrace, MessageLifecycleThreadsAcrossShards) {
  FlightRecorder recorder(2);
  const std::uint64_t id = recorder.begin_message(0);
  recorder.record(0, make_event(id, 5, 1, 9, FlightEventKind::kSend));
  // Delivery lands on the receiver's shard but names the sender's id.
  recorder.record(1, make_event(id, 5, 9, 1, FlightEventKind::kDeliver));
  recorder.record(1, make_event(0, 5, 9, kNilNode,
                                FlightEventKind::kSelfLoop));

  std::stringstream buffer;
  recorder.dump(buffer);
  FlightTrace trace;
  ASSERT_TRUE(trace.load(buffer));
  const std::vector<FlightEvent> life = trace.message_lifecycle(id);
  ASSERT_EQ(life.size(), 2u);
  EXPECT_EQ(life[0].kind, FlightEventKind::kSend);
  EXPECT_EQ(life[1].kind, FlightEventKind::kDeliver);
  EXPECT_EQ(life[1].shard, 1u);
  // message_lifecycle(0) must not sweep up no-message events.
  EXPECT_TRUE(trace.message_lifecycle(0).empty());
}

TEST(FlightTrace, NodeHistoryNamesActorAndPeer) {
  FlightRecorder recorder(1);
  recorder.record(0, make_event(1, 1, 7, 3, FlightEventKind::kSend));
  recorder.record(0, make_event(2, 2, 4, 7, FlightEventKind::kSend));
  recorder.record(0, make_event(0, 3, 5, kNilNode, FlightEventKind::kKill));
  std::stringstream buffer;
  recorder.dump(buffer);
  FlightTrace trace;
  ASSERT_TRUE(trace.load(buffer));
  EXPECT_EQ(trace.node_history(7).size(), 2u);  // actor once, peer once
  EXPECT_EQ(trace.node_history(5).size(), 1u);
  EXPECT_TRUE(trace.node_history(6).empty());
}

// ---------------------------------------------------------------------------
// Non-perturbation: recording draws no RNG, so the run is bit-identical.
// ---------------------------------------------------------------------------

// One sharded run with loss and churn (the test_sharded_driver schedule);
// with `recorder` non-null it is attached before the rounds run.
std::uint64_t sharded_fingerprint(std::size_t n, std::size_t shards,
                                  std::uint64_t seed,
                                  FlightRecorder* recorder) {
  FlatSendForgetCluster cluster(n, default_send_forget_config());
  Rng graph_rng(21);
  const Digraph g = permutation_regular(n, 18, graph_rng);
  for (NodeId u = 0; u < n; ++u) cluster.install_view(u, g.out_neighbors(u));
  sim::ShardedDriver driver(
      cluster, sim::ShardedDriverConfig{
                   .shard_count = shards, .loss_rate = 0.05, .seed = seed});
  driver.attach_flight_recorder(recorder);
  Rng churn_picks(seed ^ 0xABCD);
  std::vector<NodeId> dead;
  for (int batch = 0; batch < 8; ++batch) {
    driver.run_rounds(3);
    const auto victim =
        static_cast<NodeId>(churn_picks.uniform(cluster.size()));
    if (cluster.live(victim) && cluster.live_count() > n / 2) {
      driver.kill(victim);
      dead.push_back(victim);
    }
    if (!dead.empty()) {
      driver.revive(dead.back());
      dead.pop_back();
    }
  }
  return cluster.fingerprint() ^ (driver.actions_executed() * 0x9E37ULL) ^
         driver.network_metrics().delivered;
}

TEST(FlightRecorderIntegration, ShardedRunBitIdenticalWithRecorderAttached) {
  const std::uint64_t bare = sharded_fingerprint(1024, 4, 77, nullptr);
  FlightRecorder recorder(4);
  const std::uint64_t recorded = sharded_fingerprint(1024, 4, 77, &recorder);
  EXPECT_EQ(bare, recorded);
  EXPECT_GT(recorder.total_recorded(), 0u);
}

TEST(FlightRecorderIntegration, ShardedRunCapturesProtocolAndChurnEvents) {
  FlightRecorder recorder(2, /*capacity=*/1u << 18);  // no wrap
  sharded_fingerprint(512, 2, 5, &recorder);
  std::stringstream buffer;
  recorder.dump(buffer);
  FlightTrace trace;
  ASSERT_TRUE(trace.load(buffer));
  ASSERT_EQ(trace.total_dropped(), 0u);

  // The sharded driver resolves fates inline, so it emits no kSend (and no
  // kSelfLoop) events — only message fates and churn reach the ring.
  bool saw_kill = false;
  std::uint64_t fate_id = 0;
  for (const FlightEvent& e : trace.events()) {
    if (e.kind == FlightEventKind::kKill) saw_kill = true;
    EXPECT_NE(e.kind, FlightEventKind::kSend);
    EXPECT_NE(e.kind, FlightEventKind::kSelfLoop);
    if (fate_id == 0 && (e.kind == FlightEventKind::kDeliver ||
                         e.kind == FlightEventKind::kLose ||
                         e.kind == FlightEventKind::kToDead)) {
      fate_id = e.message_id;
    }
  }
  EXPECT_TRUE(saw_kill);
  ASSERT_NE(fate_id, 0u);
  // A message's lifecycle is its fate events: exactly one terminal network
  // outcome, optionally preceded by a duplicate / followed by a delete.
  const std::vector<FlightEvent> life = trace.message_lifecycle(fate_id);
  ASSERT_GE(life.size(), 1u);
  std::size_t terminal = 0;
  for (const FlightEvent& e : life) {
    if (e.kind == FlightEventKind::kDeliver ||
        e.kind == FlightEventKind::kLose ||
        e.kind == FlightEventKind::kToDead) {
      ++terminal;
    } else {
      EXPECT_TRUE(e.kind == FlightEventKind::kDuplicate ||
                  e.kind == FlightEventKind::kDelete);
    }
  }
  EXPECT_EQ(terminal, 1u);
}

TEST(FlightRecorderIntegration, RoundDriverEventsMatchNetworkMetrics) {
  const std::size_t n = 100;
  Rng rng(13);
  sim::Cluster cluster(n, [](NodeId id) {
    return std::make_unique<SendForget>(id, default_send_forget_config());
  });
  cluster.install_graph(permutation_regular(n, 18, rng));
  sim::UniformLoss loss(0.1);
  sim::RoundDriver driver(cluster, loss, rng);
  FlightRecorder recorder(1, /*capacity=*/1u << 16);  // no wrap
  driver.attach_flight_recorder(&recorder);
  driver.run_rounds(20);

  std::uint64_t losses = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t to_dead = 0;
  std::uint32_t max_round = 0;
  for (const FlightEvent& e : recorder.shard_events(0)) {
    switch (e.kind) {
      // Inline drivers emit no kSend: the fate events below carry the same
      // fields, so fates must partition the sent count exactly.
      case FlightEventKind::kSend: ADD_FAILURE() << "unexpected kSend"; break;
      case FlightEventKind::kLose: ++losses; break;
      case FlightEventKind::kDeliver: ++deliveries; break;
      case FlightEventKind::kToDead: ++to_dead; break;
      default: break;
    }
    max_round = std::max(max_round, e.round);
  }
  EXPECT_EQ(losses + deliveries + to_dead, driver.network_metrics().sent);
  EXPECT_EQ(losses, driver.network_metrics().lost);
  EXPECT_EQ(deliveries, driver.network_metrics().delivered);
  EXPECT_EQ(to_dead, driver.network_metrics().to_dead);
  // Events carry the live round counter, not a constant.
  EXPECT_EQ(max_round, 20u);
}

TEST(FlightRecorderIntegration, EventDriverRecordingLeavesMetricsUnchanged) {
  const auto run = [](FlightRecorder* recorder) {
    Rng rng(31);
    sim::Cluster cluster(64, [](NodeId id) {
      return std::make_unique<SendForget>(id, default_send_forget_config());
    });
    Rng graph_rng(7);
    cluster.install_graph(permutation_regular(64, 10, graph_rng));
    sim::UniformLoss loss(0.05);
    sim::EventDriver driver(cluster, loss, rng);
    driver.attach_flight_recorder(recorder);
    driver.run_rounds(30);
    return driver.network_metrics();
  };
  const sim::NetworkMetrics bare = run(nullptr);
  FlightRecorder recorder(1, /*capacity=*/1u << 16);
  const sim::NetworkMetrics recorded = run(&recorder);
  // Recording forces the stepped per-round schedule, which for the default
  // binary-representable period is bit-identical to the fast path.
  EXPECT_EQ(bare.sent, recorded.sent);
  EXPECT_EQ(bare.lost, recorded.lost);
  EXPECT_EQ(bare.delivered, recorded.delivered);
  EXPECT_EQ(bare.to_dead, recorded.to_dead);
  // Delivery events are stamped with the round current at delivery time.
  std::uint32_t max_round = 0;
  for (const FlightEvent& e : recorder.shard_events(0)) {
    max_round = std::max(max_round, e.round);
  }
  EXPECT_GT(max_round, 1u);
}

}  // namespace
}  // namespace gossip
