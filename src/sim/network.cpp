#include "sim/network.hpp"

#include <utility>

namespace gossip::sim {

DirectNetwork::DirectNetwork(Cluster& cluster, LossModel& loss, Rng& rng)
    : cluster_(cluster), loss_(loss), rng_(rng) {}

void DirectNetwork::send(Message message) {
  ++metrics_.sent;
  if (message.to >= cluster_.size() || !cluster_.live(message.to)) {
    ++metrics_.to_dead;
    return;
  }
  if (loss_.drop(rng_)) {
    ++metrics_.lost;
    return;
  }
  ++metrics_.delivered;
  cluster_.node(message.to).on_message(message, rng_, *this);
}

QueuedNetwork::QueuedNetwork(Cluster& cluster, LossModel& loss, Rng& rng,
                             EventQueue& queue, LatencyModel latency)
    : cluster_(cluster), loss_(loss), rng_(rng), queue_(queue),
      latency_(latency) {}

void QueuedNetwork::send(Message message) {
  ++metrics_.sent;
  if (message.to >= cluster_.size() || !cluster_.live(message.to)) {
    ++metrics_.to_dead;
    return;
  }
  if (loss_.drop(rng_)) {
    ++metrics_.lost;
    return;
  }
  if (latency_.duplicate_rate > 0.0 &&
      rng_.bernoulli(latency_.duplicate_rate)) {
    ++metrics_.duplicated;
    schedule_delivery(message);
  }
  schedule_delivery(std::move(message));
}

void QueuedNetwork::schedule_delivery(Message message) {
  const SimTime arrival = queue_.now() + latency_.sample(rng_);
  queue_.schedule(arrival, [this, msg = std::move(message)]() {
    if (msg.to >= cluster_.size() || !cluster_.live(msg.to)) {
      ++metrics_.to_dead;
      return;
    }
    ++metrics_.delivered;
    cluster_.node(msg.to).on_message(msg, rng_, *this);
  });
}

}  // namespace gossip::sim
