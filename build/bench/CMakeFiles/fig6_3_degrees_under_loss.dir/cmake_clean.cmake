file(REMOVE_RECURSE
  "CMakeFiles/fig6_3_degrees_under_loss.dir/fig6_3_degrees_under_loss.cpp.o"
  "CMakeFiles/fig6_3_degrees_under_loss.dir/fig6_3_degrees_under_loss.cpp.o.d"
  "fig6_3_degrees_under_loss"
  "fig6_3_degrees_under_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_3_degrees_under_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
