# Empty dependencies file for test_sparse_chain.
# This may be replaced when dependencies are built.
