#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>

#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"

namespace gossip::sim {
namespace {

Cluster::ProtocolFactory sf_factory(std::size_t s = 12, std::size_t dl = 4) {
  return [s, dl](NodeId id) {
    return std::make_unique<SendForget>(
        id, SendForgetConfig{.view_size = s, .min_degree = dl});
  };
}

Cluster seeded_cluster(std::size_t n, Rng& rng) {
  Cluster cluster(n, sf_factory());
  cluster.install_graph(random_out_regular(n, 4, rng));
  return cluster;
}

TEST(Bootstrap, ReturnsDistinctLiveIds) {
  Rng rng(1);
  Cluster cluster = seeded_cluster(30, rng);
  cluster.kill(3);
  cluster.kill(7);
  const auto ids = bootstrap_ids(cluster, 0, 6, rng);
  EXPECT_EQ(ids.size(), 6u);
  std::set<NodeId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 6u);
  for (const NodeId id : ids) {
    EXPECT_TRUE(cluster.live(id)) << id;
  }
}

TEST(Bootstrap, ThrowsWhenNotEnoughLiveIds) {
  Rng rng(2);
  Cluster cluster(3, sf_factory());
  cluster.kill(1);
  cluster.kill(2);
  EXPECT_THROW(bootstrap_ids(cluster, 0, 2, rng), std::runtime_error);
}

TEST(Bootstrap, HarvestsFromContactViewFirst) {
  Rng rng(3);
  Cluster cluster(10, sf_factory());
  cluster.node(0).install_view({4, 5});
  const auto ids = bootstrap_ids(cluster, 0, 3, rng);
  // Contact + its view suffice: {0, 4, 5}.
  const std::set<NodeId> got(ids.begin(), ids.end());
  EXPECT_TRUE(got.contains(0));
  EXPECT_TRUE(got.contains(4));
  EXPECT_TRUE(got.contains(5));
}

TEST(JoinNode, StartsWithRequestedDegreeAndZeroIndegree) {
  Rng rng(4);
  Cluster cluster = seeded_cluster(30, rng);
  const NodeId joiner = join_node(cluster, sf_factory(), 4, rng);
  EXPECT_EQ(joiner, 30u);
  EXPECT_EQ(cluster.node(joiner).view().degree(), 4u);
  // Nobody knows the joiner yet (indegree 0).
  const auto g = cluster.snapshot();
  EXPECT_EQ(g.in_degree(joiner), 0u);
  // All view entries are live nodes.
  for (const NodeId v : cluster.node(joiner).view().ids()) {
    EXPECT_TRUE(cluster.live(v));
    EXPECT_NE(v, joiner);
  }
}

TEST(ChurnProcessTest, RespectsMinLive) {
  Rng rng(5);
  Cluster cluster = seeded_cluster(10, rng);
  ChurnProcess churn(cluster, sf_factory(), 4, /*join_rate=*/0.0,
                     /*leave_rate=*/1.0, /*min_live=*/8);
  for (int i = 0; i < 50; ++i) churn.maybe_churn(rng);
  EXPECT_EQ(cluster.live_count(), 8u);
  EXPECT_EQ(churn.total_leaves(), 2u);
}

TEST(ChurnProcessTest, JoinsGrowTheSystem) {
  Rng rng(6);
  Cluster cluster = seeded_cluster(10, rng);
  ChurnProcess churn(cluster, sf_factory(), 4, /*join_rate=*/1.0,
                     /*leave_rate=*/0.0);
  for (int i = 0; i < 5; ++i) {
    const auto outcome = churn.maybe_churn(rng);
    EXPECT_NE(outcome.joined, kNilNode);
    EXPECT_EQ(outcome.left, kNilNode);
  }
  EXPECT_EQ(cluster.size(), 15u);
  EXPECT_EQ(churn.total_joins(), 5u);
}

TEST(ChurnProcessTest, RatesAreApproximatelyRespected) {
  Rng rng(7);
  Cluster cluster = seeded_cluster(200, rng);
  ChurnProcess churn(cluster, sf_factory(), 4, /*join_rate=*/0.3,
                     /*leave_rate=*/0.3, /*min_live=*/8);
  for (int i = 0; i < 1000; ++i) churn.maybe_churn(rng);
  EXPECT_NEAR(static_cast<double>(churn.total_joins()), 300.0, 60.0);
  EXPECT_NEAR(static_cast<double>(churn.total_leaves()), 300.0, 60.0);
}


TEST(RejoinNode, ProbesOldViewAndReusesSurvivors) {
  Rng rng(8);
  Cluster cluster = seeded_cluster(20, rng);
  // Give node 0 a known view, then fail it and one of its contacts.
  cluster.node(0).install_view({1, 2, 3, 4});
  cluster.kill(0);
  cluster.kill(2);
  rejoin_node(cluster, 0, sf_factory(), 4, rng);
  EXPECT_TRUE(cluster.live(0));
  const auto& view = cluster.node(0).view();
  EXPECT_EQ(view.degree(), 4u);
  // Survivors 1, 3, 4 are retained; dead 2 is not; one fresh id tops up.
  EXPECT_TRUE(view.contains(1));
  EXPECT_TRUE(view.contains(3));
  EXPECT_TRUE(view.contains(4));
  EXPECT_FALSE(view.contains(2));
  EXPECT_FALSE(view.contains(0));
  for (const NodeId v : view.ids()) EXPECT_TRUE(cluster.live(v));
}

TEST(RejoinNode, LostProbesFallBackToBootstrap) {
  Rng rng(9);
  Cluster cluster = seeded_cluster(20, rng);
  cluster.node(0).install_view({1, 2, 3, 4});
  cluster.kill(0);
  UniformLoss all_lost(1.0);
  rejoin_node(cluster, 0, sf_factory(), 4, rng, &all_lost);
  EXPECT_TRUE(cluster.live(0));
  EXPECT_EQ(cluster.node(0).view().degree(), 4u);
  for (const NodeId v : cluster.node(0).view().ids()) {
    EXPECT_TRUE(cluster.live(v));
    EXPECT_NE(v, 0u);
  }
}

TEST(RejoinNode, BurstSpanningProbesForcesFullBootstrap) {
  // All probes go through one shared channel, so a burst that opens on the
  // first probe (p=1, r=0: lossless GOOD, total BAD) eats the whole probe
  // batch and forces the same full-bootstrap fallback as UniformLoss(1);
  // the identical channel pinned GOOD (p=0, r=1) loses nothing and every
  // live old-view member is retained.
  for (const bool burst : {true, false}) {
    Rng rng(11);
    Cluster cluster = seeded_cluster(30, rng);
    cluster.node(0).install_view({1, 2, 3, 4});
    cluster.kill(0);
    cluster.kill(2);
    GilbertElliottLoss channel(burst ? 1.0 : 0.0, burst ? 0.0 : 1.0,
                               /*good_loss=*/0.0, /*bad_loss=*/1.0);
    rejoin_node(cluster, 0, sf_factory(), 4, rng, &channel);
    EXPECT_TRUE(cluster.live(0));
    const auto& view = cluster.node(0).view();
    EXPECT_EQ(view.degree(), 4u);
    EXPECT_FALSE(view.contains(2)) << "dead node retained, burst=" << burst;
    for (const NodeId v : view.ids()) {
      EXPECT_TRUE(cluster.live(v));
      EXPECT_NE(v, 0u);
    }
    if (burst) {
      // Every live probe (1, 3, 4) consumed a draw inside the burst.
      EXPECT_TRUE(channel.in_bad_state());
    } else {
      EXPECT_TRUE(view.contains(1));
      EXPECT_TRUE(view.contains(3));
      EXPECT_TRUE(view.contains(4));
    }
  }
}

TEST(RejoinNode, BurstyProbeLossRetainsSurvivorsAtChannelRate) {
  // Averaged over many independent rejoins through a 50% bursty channel,
  // live old-view members survive probing at roughly the channel's pass
  // rate. Bootstrap top-up can re-add a lost member by chance, so the band
  // is wide — but it excludes both keep-everything and lose-everything.
  const std::vector<NodeId> old_view{1, 2, 3, 4, 5, 6};
  std::size_t retained = 0;
  constexpr std::size_t kRuns = 300;
  for (std::size_t run = 0; run < kRuns; ++run) {
    Rng rng(1000 + run);
    Cluster cluster = seeded_cluster(40, rng);
    cluster.node(0).install_view(old_view);
    cluster.kill(0);
    const auto channel = bursty_loss(0.5, 3.0);
    rejoin_node(cluster, 0, sf_factory(), 6, rng, channel.get());
    ASSERT_EQ(cluster.node(0).view().degree(), 6u);
    for (const NodeId v : old_view) {
      if (cluster.node(0).view().contains(v)) ++retained;
    }
  }
  const double rate =
      retained / static_cast<double>(kRuns * old_view.size());
  EXPECT_GT(rate, 0.30);
  EXPECT_LT(rate, 0.85);
}

TEST(RejoinNode, ThrowsForLiveNode) {
  Rng rng(10);
  Cluster cluster = seeded_cluster(10, rng);
  EXPECT_THROW(rejoin_node(cluster, 0, sf_factory(), 4, rng),
               std::logic_error);
}

}  // namespace
}  // namespace gossip::sim
