// Degree and structure statistics of membership graphs.
#pragma once

#include <cstddef>

#include "common/histogram.hpp"
#include "graph/digraph.hpp"

namespace gossip {

struct DegreeSummary {
  double out_mean = 0.0;
  double out_variance = 0.0;
  double in_mean = 0.0;
  double in_variance = 0.0;
  std::size_t out_min = 0;
  std::size_t out_max = 0;
  std::size_t in_min = 0;
  std::size_t in_max = 0;
};

[[nodiscard]] DegreeSummary degree_summary(const Digraph& g);

// Histogram of out-degrees over all vertices.
[[nodiscard]] Histogram out_degree_histogram(const Digraph& g);

// Histogram of in-degrees over all vertices.
[[nodiscard]] Histogram in_degree_histogram(const Digraph& g);

// Histogram of sum degrees ds(u) = d(u) + 2*din(u) (Definition 6.1).
[[nodiscard]] Histogram sum_degree_histogram(const Digraph& g);

// Fraction of edges that are self-edges or redundant parallel edges —
// the structurally dependent edges per the paper's labeling in §2.
[[nodiscard]] double structural_dependence_fraction(const Digraph& g);

}  // namespace gossip
