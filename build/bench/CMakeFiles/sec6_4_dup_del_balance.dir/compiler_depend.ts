# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sec6_4_dup_del_balance.
