#include "analysis/decay.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace gossip::analysis {
namespace {

DecayParams paper_params(double loss) {
  return DecayParams{
      .view_size = 40, .min_degree = 18, .loss = loss, .delta = 0.01};
}

TEST(Decay, SurvivalFactorFormula) {
  // 1 - (1-l-d) dL / s^2 with l=0, d=0.01, dL=18, s=40:
  // 1 - 0.99 * 18/1600 = 1 - 0.0111375.
  EXPECT_NEAR(survival_factor(paper_params(0.0)), 1.0 - 0.99 * 18.0 / 1600.0,
              1e-12);
}

TEST(Decay, CurveIsMonotoneGeometric) {
  const auto curve = leave_survival_bound(paper_params(0.01), 100);
  ASSERT_EQ(curve.size(), 101u);
  EXPECT_DOUBLE_EQ(curve[0], 1.0);
  const double f = survival_factor(paper_params(0.01));
  for (std::size_t r = 1; r < curve.size(); ++r) {
    EXPECT_LT(curve[r], curve[r - 1]);
    EXPECT_NEAR(curve[r], curve[r - 1] * f, 1e-12);
  }
}

TEST(Decay, PaperHalfLifeAbout70Rounds) {
  // §6.5.2: "after merely 70 rounds ... fewer than 50% of the id instances
  // ... are expected to remain".
  const auto rounds = rounds_until_survival_below(paper_params(0.0), 0.5);
  EXPECT_GE(rounds, 60u);
  EXPECT_LE(rounds, 70u);
}

TEST(Decay, DecayAlmostUnaffectedByLoss) {
  // Fig 6.4's curves for l = 0..0.1 nearly coincide.
  const auto r0 = rounds_until_survival_below(paper_params(0.0), 0.5);
  const auto r10 = rounds_until_survival_below(paper_params(0.1), 0.5);
  EXPECT_LE(r10, r0 + 10);
  EXPECT_GE(r10, r0);  // more loss -> (slightly) slower removal
}

TEST(Decay, VeteranCreationRate) {
  // (1-l-d) dL / s^2.
  EXPECT_NEAR(veteran_creation_rate(paper_params(0.05)),
              0.94 * 18.0 / 1600.0, 1e-12);
}

TEST(Decay, JoinerRatioAndIntegration) {
  const auto p = paper_params(0.0);
  // (dL/s)^2 = (18/40)^2.
  EXPECT_NEAR(joiner_creation_ratio(p), 0.2025, 1e-12);
  EXPECT_NEAR(joiner_instances_fraction(p), 0.2025, 1e-12);
  // s^2 / ((1-l-d) dL) = 1600 / (0.99*18) ~ 89.8 rounds.
  EXPECT_NEAR(joiner_integration_rounds(p), 1600.0 / (0.99 * 18.0), 1e-9);
}

TEST(Decay, Corollary614ShapeForHalfRatio) {
  // For s/dL = 2 and l+d << 1: integration in ~2s rounds, creating at
  // least Din/4 id instances.
  DecayParams p{.view_size = 40, .min_degree = 20, .loss = 0.0, .delta = 0.0};
  EXPECT_DOUBLE_EQ(joiner_instances_fraction(p), 0.25);
  EXPECT_DOUBLE_EQ(joiner_integration_rounds(p), 2.0 * 40.0);
}

TEST(Decay, InvalidParameters) {
  EXPECT_THROW((void)(survival_factor(DecayParams{.view_size = 0})),
               std::invalid_argument);
  EXPECT_THROW((void)(survival_factor(DecayParams{
                   .view_size = 10, .min_degree = 12, .loss = 0, .delta = 0})),
               std::invalid_argument);
  EXPECT_THROW((void)(survival_factor(DecayParams{
                   .view_size = 10, .min_degree = 2, .loss = 1.0, .delta = 0})),
               std::invalid_argument);
  EXPECT_THROW((void)(rounds_until_survival_below(paper_params(0.0), 0.0)),
               std::invalid_argument);
  EXPECT_THROW((void)(rounds_until_survival_below(paper_params(0.0), 1.5)),
               std::invalid_argument);
}

TEST(Decay, NoDecayWithZeroMinDegree) {
  DecayParams p{.view_size = 10, .min_degree = 0, .loss = 0.0, .delta = 0.0};
  EXPECT_DOUBLE_EQ(survival_factor(p), 1.0);
  EXPECT_THROW((void)(rounds_until_survival_below(p, 0.5)), std::runtime_error);
  EXPECT_THROW((void)(joiner_integration_rounds(p)), std::runtime_error);
}

TEST(Decay, SweepIsMonotoneInLoss) {
  // Higher loss slows both the decay of leavers and the integration of
  // joiners: the survival factor, half-life, and integration window all
  // rise monotonically along the sweep.
  const std::vector<double> losses{0.0, 0.05, 0.1, 0.2};
  const auto points = decay_sweep(paper_params(0.0), losses, 0.5);
  ASSERT_EQ(points.size(), losses.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(points[i].loss, losses[i]);
    const auto single = leave_survival_bound(
        DecayParams{.view_size = 40,
                    .min_degree = 18,
                    .loss = losses[i],
                    .delta = 0.01},
        1);
    EXPECT_DOUBLE_EQ(points[i].survival_factor, single[1]);
    if (i > 0) {
      EXPECT_GT(points[i].survival_factor, points[i - 1].survival_factor);
      EXPECT_GE(points[i].rounds_until_below, points[i - 1].rounds_until_below);
      EXPECT_GT(points[i].joiner_integration_rounds,
                points[i - 1].joiner_integration_rounds);
    }
  }
  // Paper headline at ℓ = 0: half-life in the 60s.
  EXPECT_GE(points[0].rounds_until_below, 60u);
  EXPECT_LT(points[0].rounds_until_below, 70u);
}

}  // namespace
}  // namespace gossip::analysis
