#include "sampling/uniformity.hpp"
#include "sampling/uniformity.hpp"
