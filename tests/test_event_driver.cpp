#include "sim/event_driver.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"

namespace gossip::sim {
namespace {

Cluster::ProtocolFactory sf_factory(std::size_t s, std::size_t dl) {
  return [s, dl](NodeId id) {
    return std::make_unique<SendForget>(
        id, SendForgetConfig{.view_size = s, .min_degree = dl});
  };
}

TEST(EventDriverTest, NodesInitiateAtConfiguredRate) {
  Cluster cluster(20, sf_factory(6, 0));
  UniformLoss loss(0.0);
  Rng rng(1);
  EventDriverConfig config;
  config.period = 10.0;
  EventDriver driver(cluster, loss, rng, config);
  driver.run_for(1000.0);  // ~100 rounds
  for (NodeId id = 0; id < 20; ++id) {
    EXPECT_NEAR(
        static_cast<double>(cluster.node(id).metrics().actions_initiated),
        100.0, 15.0);
  }
}

TEST(EventDriverTest, RunRoundsApproximatesPeriods) {
  Cluster cluster(5, sf_factory(6, 0));
  UniformLoss loss(0.0);
  Rng rng(2);
  EventDriver driver(cluster, loss, rng);
  driver.run_rounds(7);
  EXPECT_DOUBLE_EQ(driver.now(), 70.0);
}

TEST(EventDriverTest, DeadNodesStopInitiating) {
  Cluster cluster(4, sf_factory(6, 0));
  UniformLoss loss(0.0);
  Rng rng(3);
  EventDriver driver(cluster, loss, rng);
  driver.run_rounds(5);
  const auto before = cluster.node(0).metrics().actions_initiated;
  EXPECT_GT(before, 0u);
  cluster.kill(0);
  driver.run_rounds(5);
  EXPECT_LE(cluster.node(0).metrics().actions_initiated, before + 1);
}

TEST(EventDriverTest, SpawnedNodeJoinsAfterStart) {
  Cluster cluster(3, sf_factory(6, 0));
  UniformLoss loss(0.0);
  Rng rng(4);
  EventDriver driver(cluster, loss, rng);
  const NodeId novel = cluster.spawn(sf_factory(6, 0));
  driver.start_node(novel);
  driver.run_rounds(10);
  EXPECT_GT(cluster.node(novel).metrics().actions_initiated, 3u);
}

TEST(EventDriverTest, ConcurrentActionsPreserveProtocolInvariants) {
  // With latency comparable to the action period, actions genuinely
  // overlap; Observation 5.1 must still hold at every node (steps are
  // atomic per node).
  Rng graph_rng(5);
  Cluster cluster(60, sf_factory(12, 4));
  cluster.install_graph(permutation_regular(60, 4, graph_rng));
  UniformLoss loss(0.05);
  Rng rng(6);
  EventDriverConfig config;
  config.period = 2.0;
  config.latency = LatencyModel{.min_latency = 0.5, .max_latency = 3.0};
  EventDriver driver(cluster, loss, rng, config);
  for (int chunk = 0; chunk < 20; ++chunk) {
    driver.run_for(10.0);
    for (NodeId id = 0; id < cluster.size(); ++id) {
      const auto d = cluster.node(id).view().degree();
      ASSERT_EQ(d % 2, 0u) << "odd degree at node " << id;
      ASSERT_LE(d, 12u);
    }
  }
  EXPECT_GT(driver.network_metrics().delivered, 0u);
  EXPECT_GT(driver.network_metrics().lost, 0u);
}

TEST(EventDriverTest, InvariantsSurvivePacketDuplication) {
  // Beyond the paper's loss-only model: duplicated packets deliver the
  // same ids twice. S&F simply stores them again (or deletes when full);
  // Observation 5.1 must keep holding.
  Rng graph_rng(7);
  Cluster cluster(100, sf_factory(16, 6));
  cluster.install_graph(permutation_regular(100, 6, graph_rng));
  UniformLoss loss(0.02);
  Rng rng(8);
  EventDriverConfig config;
  config.period = 2.0;
  config.latency = LatencyModel{.min_latency = 0.5,
                                .max_latency = 3.0,
                                .duplicate_rate = 0.10};
  EventDriver driver(cluster, loss, rng, config);
  driver.run_rounds(200);
  EXPECT_GT(driver.network_metrics().duplicated, 0u);
  for (NodeId id = 0; id < cluster.size(); ++id) {
    const auto d = cluster.node(id).view().degree();
    ASSERT_EQ(d % 2, 0u);
    ASSERT_LE(d, 16u);
  }
}

TEST(EventDriverTest, Observation51HoldsUnderDuplicationAndLoss) {
  // Obs 5.1 in full — even outdegree in [dL, s] — at every node and every
  // checkpoint, with the queued network duplicating packets on top of
  // ambient loss. Duplicate deliveries must neither push a view past s nor
  // let the shuffle accounting dip below dL mid-run.
  Rng graph_rng(9);
  constexpr std::size_t kViewSize = 12;
  constexpr std::size_t kMinDegree = 4;
  Cluster cluster(80, sf_factory(kViewSize, kMinDegree));
  cluster.install_graph(permutation_regular(80, kMinDegree, graph_rng));
  UniformLoss loss(0.05);
  Rng rng(10);
  EventDriverConfig config;
  config.period = 2.0;
  config.latency = LatencyModel{.min_latency = 0.5,
                                .max_latency = 3.0,
                                .duplicate_rate = 0.15};
  EventDriver driver(cluster, loss, rng, config);
  for (int chunk = 0; chunk < 10; ++chunk) {
    driver.run_rounds(20);
    for (NodeId id = 0; id < cluster.size(); ++id) {
      const auto d = cluster.node(id).view().degree();
      ASSERT_EQ(d % 2, 0u) << "odd degree at node " << id;
      ASSERT_GE(d, kMinDegree) << "node " << id << " below dL";
      ASSERT_LE(d, kViewSize) << "node " << id << " above s";
    }
  }
  // The run must actually have exercised both hazards.
  EXPECT_GT(driver.network_metrics().duplicated, 0u);
  EXPECT_GT(driver.network_metrics().lost, 0u);
}

}  // namespace
}  // namespace gossip::sim
