// Concurrent discrete-event driver.
//
// Unlike the serialized round driver, nodes here fire on their own periodic
// timers (with jitter) and messages take nonzero latency, so protocol
// actions genuinely overlap in time — the regime the paper argues S&F
// handles by construction (§4.1: every S&F step is atomic at one node).
// Benches compare steady-state statistics under this driver against the
// serialized model to validate that the analysis carries over.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "obs/export/snapshot.hpp"
#include "obs/oracle/flight_recorder.hpp"
#include "obs/oracle/theory_oracle.hpp"
#include "obs/recovery.hpp"
#include "obs/timeseries.hpp"
#include "obs/watchdog.hpp"
#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_plane.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"

namespace gossip::sim {

struct EventDriverConfig {
  // Mean period between a node's action initiations (one simulated round
  // per period). Each gap is jittered uniformly in [period*(1-jitter),
  // period*(1+jitter)].
  double period = 10.0;
  double jitter = 0.2;
  LatencyModel latency{};
};

class EventDriver {
 public:
  EventDriver(Cluster& cluster, LossModel& loss, Rng& rng,
              EventDriverConfig config = {});

  // Runs simulated time forward by `duration`.
  void run_for(double duration);

  // Runs approximately `rounds` rounds (rounds * period time units).
  // With observers attached, time advances one period at a time and the
  // observers sample at stride boundaries. run_until pins now() to its
  // target, so for a binary-representable period (the 10.0 default) the
  // stepped schedule is bit-identical to the single run_for; otherwise the
  // round boundaries may differ by float rounding.
  void run_rounds(std::uint64_t rounds);

  // --- observability (attach before run_rounds; borrowed, may be null).
  // Samples are taken mid-flight (messages may be queued), so the watchdog
  // runs its structural degree checks and statistical rate checks but NOT
  // mailbox conservation, which only holds at quiescent points. ---
  void attach_time_series(obs::RoundTimeSeries* series);
  void attach_watchdog(obs::InvariantWatchdog* watchdog);
  // Theory-oracle drift detection. Samples here are mid-flight, so the
  // oracle's rate window sees send-time counters slightly ahead of
  // delivery-time ones — the same caveat as the watchdog above.
  void attach_oracle(obs::TheoryOracle* oracle);
  // Transport-level flight recording (QueuedNetwork; delivery events are
  // stamped with the round current at delivery time).
  void attach_flight_recorder(obs::FlightRecorder* recorder);
  // Scripted link-level fault injection. Forces the stepped run_rounds
  // schedule (like recording) so the network's round clock — which the
  // plane's phase windows read — actually advances.
  void attach_fault_plane(const FaultPlane* plane);
  // Degradation-window tracking; connectivity lane skipped (no flat view
  // graph behind the polymorphic cluster).
  void attach_recovery(obs::RecoveryTracker* tracker);
  // Streaming telemetry export (externally-fed registry, as in
  // RoundDriver::attach_streamer). Forces the stepped run_rounds schedule
  // so the capture clock actually ticks.
  void attach_streamer(obs::SnapshotStreamer* streamer);
  [[nodiscard]] std::uint64_t rounds_completed() const {
    return rounds_completed_;
  }

  // Starts the periodic timer of a node (used after spawn/revive).
  void start_node(NodeId id);

  [[nodiscard]] SimTime now() const { return queue_.now(); }
  [[nodiscard]] const NetworkMetrics& network_metrics() const {
    return network_.metrics();
  }
  [[nodiscard]] Cluster& cluster() { return cluster_; }
  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  void schedule_tick(NodeId id);
  void observe_round(std::uint64_t round);

  Cluster& cluster_;
  Rng& rng_;
  EventDriverConfig config_;
  EventQueue queue_;
  QueuedNetwork network_;
  std::uint64_t rounds_completed_ = 0;
  obs::RoundTimeSeries* series_ = nullptr;
  obs::InvariantWatchdog* watchdog_ = nullptr;
  obs::TheoryOracle* oracle_ = nullptr;
  obs::RecoveryTracker* recovery_ = nullptr;
  obs::SnapshotStreamer* streamer_ = nullptr;
  std::vector<std::uint32_t> occurrence_scratch_;
  bool recording_ = false;
  bool faulting_ = false;
  std::uint64_t observe_stride_ = 1;
};

}  // namespace gossip::sim
