# Empty compiler generated dependencies file for gossip_sampling.
# This may be replaced when dependencies are built.
