// Abstract membership-protocol interface.
//
// A protocol instance is a pure per-node state machine: it owns its local
// view and counters, and performs I/O only through the Transport handed to
// each step. The same protocol code therefore runs under the serialized
// round driver used for analysis (§4.1's "central entity" model) and under
// the concurrent discrete-event simulator.
//
// Each call into the protocol corresponds to one *step* in the paper's sense
// (§4.1): it executes atomically at a single node, may consume one message,
// may modify the view, and may send messages. Nonatomicity of multi-step
// actions arises from the network layer, which may drop any sent message.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "core/view.hpp"

namespace gossip {

// Outbound message sink provided by the driver/network layer.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send(Message message) = 0;
};

// A node's local failure-detection opinion about another id. View-exchange
// protocols only distinguish "in my view" (kAlive) from "not" (kUnknown);
// detector protocols (SWIM, all-to-all heartbeats) add the suspicion
// ladder. Observers (obs::DetectionTracker) treat anything other than
// kAlive as "no longer believed alive".
enum class MemberVerdict : std::uint8_t {
  kAlive = 0,
  kSuspect,
  kFaulty,
  kUnknown,
};

class PeerProtocol {
 public:
  virtual ~PeerProtocol() = default;

  PeerProtocol(const PeerProtocol&) = delete;
  PeerProtocol& operator=(const PeerProtocol&) = delete;

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] const LocalView& view() const { return view_; }
  [[nodiscard]] const ProtocolMetrics& metrics() const { return metrics_; }

  // One protocol action initiated at this node (a step; any messages it
  // sends go through `transport` and may be lost).
  virtual void on_initiate(Rng& rng, Transport& transport) = 0;

  // Delivery of one message addressed to this node (a receive step).
  virtual void on_message(const Message& message, Rng& rng,
                          Transport& transport) = 0;

  // One tick of the round clock (the arena driver's schedule unit). The
  // default runs one initiated action per round — the paper's §6.5 pacing —
  // which makes every view-exchange protocol arena-compatible unchanged.
  // Timer-driven detectors (SWIM, all-to-all) override this to advance
  // their ack/suspicion deadlines; all randomness must come from `rng` and
  // all timing from `round` (zero wall-clock) so runs replay bit-identically.
  virtual void on_round(std::uint64_t round, Rng& rng, Transport& transport) {
    (void)round;
    on_initiate(rng, transport);
  }

  // Local liveness opinion about `id`. Default: view membership (partial-
  // view protocols hold no opinion about ids outside the view). Detectors
  // override with their member tables.
  [[nodiscard]] virtual MemberVerdict member_verdict(NodeId id) const {
    return view_.contains(id) ? MemberVerdict::kAlive
                              : MemberVerdict::kUnknown;
  }

  // Order-insensitive digest of protocol-private state not visible through
  // the view (timer wheels, incarnations, heartbeat counters). Folded into
  // the arena driver's run fingerprint so determinism gates see detector
  // timer state, not just view contents. 0 for protocols whose whole state
  // is the view.
  [[nodiscard]] virtual std::uint64_t state_digest() const { return 0; }

  // Installs an initial view: up to capacity ids are written into the first
  // slots, tagged independent. Used to load generated topologies. Virtual:
  // full-membership detectors also seed their member tables from `ids`.
  virtual void install_view(const std::vector<NodeId>& ids) {
    view_.clear_all();
    const std::size_t count = std::min(ids.size(), view_.capacity());
    for (std::size_t i = 0; i < count; ++i) {
      view_.set(i, ViewEntry{ids[i], /*dependent=*/false});
    }
  }

 protected:
  PeerProtocol(NodeId self, std::size_t view_capacity)
      : self_(self), view_(view_capacity) {}

  LocalView& mutable_view() { return view_; }
  ProtocolMetrics& mutable_metrics() { return metrics_; }

 private:
  NodeId self_;
  LocalView view_;
  ProtocolMetrics metrics_;
};

}  // namespace gossip
