// SWIM failure detector: the deterministic timeout machinery (ack ->
// indirect ping-req -> suspicion -> confirmed failure), incarnation
// precedence, refutation, the memberlist-style extensions (ack downgrade,
// faulty reclaim probes), and the piggyback budget.
#include "core/baselines/swim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_support.hpp"

namespace gossip {
namespace {

constexpr std::uint8_t kAliveWire = 0;
constexpr std::uint8_t kSuspectWire = 1;
constexpr std::uint8_t kFaultyWire = 2;

SwimConfig small_config() {
  SwimConfig config;
  config.view_size = 8;
  return config;
}

std::vector<Message> of_kind(const std::vector<Message>& sent,
                             MessageKind kind) {
  std::vector<Message> out;
  for (const Message& m : sent) {
    if (m.kind == kind) out.push_back(m);
  }
  return out;
}

Message ping_from(NodeId from, NodeId to,
                  std::vector<MembershipUpdate> updates = {}) {
  Message m;
  m.from = from;
  m.to = to;
  m.kind = MessageKind::kSwimPing;
  m.subject = to;
  m.stamp = 1;
  m.updates = std::move(updates);
  return m;
}

Message ack_from(NodeId from, NodeId to, std::uint64_t stamp = 1) {
  Message m;
  m.from = from;
  m.to = to;
  m.kind = MessageKind::kSwimAck;
  m.subject = from;
  m.stamp = stamp;
  return m;
}

TEST(Swim, InstallSeedsTableAllAlive) {
  Swim node(0, small_config());
  node.install_view({1, 2, 3});
  EXPECT_EQ(node.member_count(), 3u);
  EXPECT_EQ(node.faulty_count(), 0u);
  EXPECT_EQ(node.member_verdict(0), MemberVerdict::kAlive);  // self
  EXPECT_EQ(node.member_verdict(2), MemberVerdict::kAlive);
  EXPECT_EQ(node.member_verdict(9), MemberVerdict::kUnknown);
}

TEST(Swim, PingAckRoundTripClearsThePendingProbe) {
  Swim node(0, small_config());
  node.install_view({1});
  Rng rng(7);
  testing::CaptureTransport cap;

  node.on_round(1, rng, cap);
  const auto pings = of_kind(cap.sent, MessageKind::kSwimPing);
  ASSERT_EQ(pings.size(), 1u);
  EXPECT_EQ(pings[0].to, 1u);
  EXPECT_EQ(pings[0].subject, 1u);
  EXPECT_EQ(node.pending_probes(), 1u);

  node.on_message(ack_from(1, 0, pings[0].stamp), rng, cap);
  EXPECT_EQ(node.pending_probes(), 0u);
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kAlive);
}

TEST(Swim, AckTimeoutEscalatesToIndirectProbes) {
  Swim node(0, small_config());
  node.install_view({1, 2, 3, 4});
  Rng rng(11);
  testing::CaptureTransport cap;

  node.on_round(1, rng, cap);
  const auto pings = of_kind(cap.sent, MessageKind::kSwimPing);
  ASSERT_EQ(pings.size(), 1u);
  const NodeId target = pings[0].to;
  cap.sent.clear();

  // ack_timeout = 2: the deadline is round 3.
  node.on_round(2, rng, cap);
  EXPECT_TRUE(of_kind(cap.sent, MessageKind::kSwimPingReq).empty());
  cap.sent.clear();

  node.on_round(3, rng, cap);
  const auto reqs = of_kind(cap.sent, MessageKind::kSwimPingReq);
  ASSERT_FALSE(reqs.empty());
  EXPECT_LE(reqs.size(), small_config().indirect_probes);
  for (const Message& req : reqs) {
    EXPECT_EQ(req.subject, target) << "ping-req must name the probe target";
    EXPECT_NE(req.to, target) << "helpers exclude the target";
    EXPECT_NE(req.to, 0u) << "helpers exclude self";
  }
  // Still alive until the indirect stage also times out.
  EXPECT_EQ(node.member_verdict(target), MemberVerdict::kAlive);
}

TEST(Swim, TimeoutLadderSuspectsThenConfirms) {
  // A single member leaves no helpers, so the ack timeout escalates
  // straight to suspicion; the suspicion timeout then confirms.
  Swim node(0, small_config());
  node.install_view({1});
  Rng rng(3);
  testing::CaptureTransport cap;

  node.on_round(1, rng, cap);  // ping, deadline 3
  node.on_round(3, rng, cap);  // no helpers -> suspect at round 3
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kSuspect);

  // suspicion_timeout = 12: confirmed at round 15.
  node.on_round(14, rng, cap);
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kSuspect);
  node.on_round(15, rng, cap);
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kFaulty);
  EXPECT_EQ(node.faulty_count(), 1u);
}

TEST(Swim, PingReqRelaysTheAckToTheOrigin) {
  // Node 0 is the helper: 2 asks it to probe 1.
  Swim node(0, small_config());
  node.install_view({1, 2});
  Rng rng(5);
  testing::CaptureTransport cap;

  Message req;
  req.from = 2;
  req.to = 0;
  req.kind = MessageKind::kSwimPingReq;
  req.subject = 1;
  req.stamp = 9;
  node.on_message(req, rng, cap);
  const auto pings = of_kind(cap.sent, MessageKind::kSwimPing);
  ASSERT_EQ(pings.size(), 1u);
  EXPECT_EQ(pings[0].to, 1u);
  cap.sent.clear();

  node.on_message(ack_from(1, 0, pings[0].stamp), rng, cap);
  const auto acks = of_kind(cap.sent, MessageKind::kSwimAck);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].to, 2u) << "attestation must flow back to the origin";
  EXPECT_EQ(acks[0].subject, 1u);
}

TEST(Swim, SuspicionAssertionAboutSelfBumpsIncarnation) {
  Swim node(0, small_config());
  node.install_view({1});
  Rng rng(5);
  testing::CaptureTransport cap;

  node.on_message(
      ping_from(1, 0, {MembershipUpdate{0, kSuspectWire, 0}}), rng, cap);
  EXPECT_EQ(node.incarnation(), 1u);
  // The refutation rides the ack the ping triggered.
  const auto acks = of_kind(cap.sent, MessageKind::kSwimAck);
  ASSERT_EQ(acks.size(), 1u);
  const bool refuted = std::any_of(
      acks[0].updates.begin(), acks[0].updates.end(),
      [](const MembershipUpdate& u) {
        return u.subject == 0 && u.status == kAliveWire &&
               u.incarnation == 1;
      });
  EXPECT_TRUE(refuted);
}

TEST(Swim, IncarnationPrecedence) {
  Swim node(0, small_config());
  node.install_view({1, 2});
  Rng rng(5);
  testing::CaptureTransport cap;

  // Confirmed faulty at incarnation 0.
  node.on_message(
      ping_from(2, 0, {MembershipUpdate{1, kFaultyWire, 0}}), rng, cap);
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kFaulty);

  // Same-incarnation alive does NOT override faulty (faulty > alive).
  node.on_message(
      ping_from(2, 0, {MembershipUpdate{1, kAliveWire, 0}}), rng, cap);
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kFaulty);

  // A higher incarnation does — the rejoin/refutation path.
  node.on_message(
      ping_from(2, 0, {MembershipUpdate{1, kAliveWire, 1}}), rng, cap);
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kAlive);
  EXPECT_EQ(node.faulty_count(), 0u);
}

TEST(Swim, DirectAckDowngradesLocalSuspicion) {
  Swim node(0, small_config());
  node.install_view({1, 2});
  Rng rng(5);
  testing::CaptureTransport cap;

  node.on_message(
      ping_from(2, 0, {MembershipUpdate{1, kSuspectWire, 0}}), rng, cap);
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kSuspect);

  // First-hand evidence beats the gossiped suspicion.
  node.on_message(ack_from(1, 0), rng, cap);
  EXPECT_EQ(node.member_verdict(1), MemberVerdict::kAlive);
}

TEST(Swim, ProbeToNonAliveTargetCarriesTheAssertion) {
  // The reclaim ping to a confirmed-faulty member must carry the faulty
  // assertion (outside the piggyback budget) so the target can refute.
  SwimConfig config = small_config();
  config.faulty_probe_interval = 1;
  Swim node(0, config);
  node.install_view({1, 2});
  Rng rng(5);
  testing::CaptureTransport cap;
  node.on_message(
      ping_from(2, 0, {MembershipUpdate{1, kFaultyWire, 3}}), rng, cap);
  cap.sent.clear();

  node.on_round(1, rng, cap);
  const auto pings = of_kind(cap.sent, MessageKind::kSwimPing);
  bool notified = false;
  for (const Message& ping : pings) {
    if (ping.to != 1) continue;
    for (const MembershipUpdate& u : ping.updates) {
      if (u.subject == 1 && u.status == kFaultyWire && u.incarnation == 3) {
        notified = true;
      }
    }
  }
  EXPECT_TRUE(notified)
      << "the faulty member never learns it was confirmed";
}

TEST(Swim, PiggybackRespectsLimitAndBudget) {
  SwimConfig config = small_config();
  config.piggyback_limit = 2;
  config.transmit_factor = 1;
  // Pings here are never acked; park the timeout ladder so no suspicion
  // assertions refill the outbox mid-test.
  config.ack_timeout = 1000;
  Swim node(0, config);
  node.install_view({1});
  Rng rng(5);
  testing::CaptureTransport cap;

  // Five foreign assertions queue for dissemination.
  node.on_message(ping_from(1, 0,
                            {MembershipUpdate{10, kAliveWire, 1},
                             MembershipUpdate{11, kAliveWire, 1},
                             MembershipUpdate{12, kAliveWire, 1},
                             MembershipUpdate{13, kAliveWire, 1},
                             MembershipUpdate{14, kAliveWire, 1}}),
                  rng, cap);
  cap.sent.clear();

  std::size_t rounds_with_updates = 0;
  for (std::uint64_t r = 1; r < 40; ++r) {
    node.on_round(r, rng, cap);
    for (const Message& m : cap.sent) {
      EXPECT_LE(m.updates.size(), config.piggyback_limit);
      if (!m.updates.empty()) ++rounds_with_updates;
    }
    cap.sent.clear();
  }
  EXPECT_GT(rounds_with_updates, 0u);
  // transmit_factor = 1 with a small table bounds each update to a handful
  // of transmissions; 40 rounds is far past exhaustion.
  node.on_round(40, rng, cap);
  for (const Message& m : cap.sent) {
    EXPECT_TRUE(m.updates.empty()) << "budget-exhausted updates must stop";
  }
}

TEST(Swim, StateDigestTracksDetectorState) {
  Swim a(0, small_config());
  Swim b(0, small_config());
  a.install_view({1, 2, 3});
  b.install_view({1, 2, 3});
  EXPECT_EQ(a.state_digest(), b.state_digest());

  Rng rng_a(9);
  Rng rng_b(9);
  testing::CaptureTransport cap;
  a.on_round(1, rng_a, cap);
  b.on_round(1, rng_b, cap);
  EXPECT_EQ(a.state_digest(), b.state_digest());

  // A divergent assertion shows up in the digest even though the view
  // (vestigial for SWIM) is identical.
  Rng rng(1);
  a.on_message(
      ping_from(1, 0, {MembershipUpdate{2, kSuspectWire, 0}}), rng, cap);
  EXPECT_NE(a.state_digest(), b.state_digest());
}

}  // namespace
}  // namespace gossip
