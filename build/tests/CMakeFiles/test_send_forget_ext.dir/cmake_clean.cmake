file(REMOVE_RECURSE
  "CMakeFiles/test_send_forget_ext.dir/test_send_forget_ext.cpp.o"
  "CMakeFiles/test_send_forget_ext.dir/test_send_forget_ext.cpp.o.d"
  "test_send_forget_ext"
  "test_send_forget_ext.pdb"
  "test_send_forget_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_send_forget_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
