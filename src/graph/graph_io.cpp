#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gossip {

namespace {
constexpr const char* kHeader = "membership-graph v1";
}

void write_graph(std::ostream& out, const Digraph& graph) {
  out << kHeader << '\n';
  out << "nodes " << graph.node_count() << '\n';
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (const NodeId v : graph.out_neighbors(u)) {
      out << u << ' ' << v << '\n';
    }
  }
}

std::string serialize_graph(const Digraph& graph) {
  std::ostringstream out;
  write_graph(out, graph);
  return out.str();
}

Digraph read_graph(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::invalid_argument("bad membership-graph header");
  }
  std::size_t n = 0;
  {
    if (!std::getline(in, line)) {
      throw std::invalid_argument("missing node count");
    }
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword >> n) || keyword != "nodes") {
      throw std::invalid_argument("malformed node count line: " + line);
    }
  }
  Digraph graph(n);
  std::size_t line_number = 2;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(fields >> u >> v)) {
      throw std::invalid_argument("malformed edge at line " +
                                  std::to_string(line_number));
    }
    std::string trailing;
    if (fields >> trailing) {
      throw std::invalid_argument("trailing data at line " +
                                  std::to_string(line_number));
    }
    if (u >= n || v >= n) {
      throw std::invalid_argument("edge endpoint out of range at line " +
                                  std::to_string(line_number));
    }
    graph.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return graph;
}

Digraph parse_graph(const std::string& text) {
  std::istringstream in(text);
  return read_graph(in);
}

void save_graph(const Digraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for write");
  write_graph(out, graph);
  if (!out) throw std::runtime_error("write to '" + path + "' failed");
}

Digraph load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "' for read");
  return read_graph(in);
}

}  // namespace gossip
