#include "common/discrete_distribution.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gossip {

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights)
    : probs_(std::move(weights)) {
  double total = 0.0;
  for (const double w : probs_) {
    if (w < 0.0) throw std::invalid_argument("negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("all weights zero");
  cdf_.resize(probs_.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    probs_[i] /= total;
    cum += probs_[i];
    cdf_[i] = cum;
  }
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

double DiscreteDistribution::prob(std::size_t i) const {
  return i < probs_.size() ? probs_[i] : 0.0;
}

double DiscreteDistribution::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    m += static_cast<double>(i) * probs_[i];
  }
  return m;
}

double DiscreteDistribution::variance() const {
  const double mu = mean();
  double v = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    const double d = static_cast<double>(i) - mu;
    v += d * d * probs_[i];
  }
  return v;
}

double DiscreteDistribution::second_factorial_moment() const {
  double m = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    m += static_cast<double>(i) * (static_cast<double>(i) - 1.0) * probs_[i];
  }
  return m;
}

std::size_t DiscreteDistribution::sample(Rng& rng) const {
  assert(!probs_.empty());
  const double u = rng.uniform_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

}  // namespace gossip
