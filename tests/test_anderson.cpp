#include "markov/anderson.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

namespace gossip::markov {
namespace {

// A linear fixed-point map G(x) = M x + b with spectral radius < 1.
// Anderson acceleration with enough history solves linear problems in
// (roughly) as many steps as there are distinct eigenvalues, far faster
// than the plain iteration's geometric crawl.
struct LinearMap {
  std::vector<double> diag;  // M is diagonal: easy spectrum control
  std::vector<double> b;

  [[nodiscard]] std::vector<double> apply(
      const std::vector<double>& x) const {
    std::vector<double> g(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) g[i] = diag[i] * x[i] + b[i];
    return g;
  }
  [[nodiscard]] std::vector<double> fixed_point() const {
    std::vector<double> star(diag.size());
    for (std::size_t i = 0; i < diag.size(); ++i) {
      star[i] = b[i] / (1.0 - diag[i]);
    }
    return star;
  }
};

double residual_l1(const std::vector<double>& x, const LinearMap& map) {
  const auto g = map.apply(x);
  double r = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) r += std::abs(g[i] - x[i]);
  return r;
}

TEST(AndersonMixer, AcceleratesLinearContraction) {
  const LinearMap map{{0.99, 0.9, 0.5, 0.1}, {0.01, 0.2, 1.0, 0.9}};
  std::vector<double> x(4, 0.0);

  AndersonMixer mixer(4);
  std::size_t iterations = 0;
  for (; iterations < 100; ++iterations) {
    const auto g = map.apply(x);
    std::vector<double> f(4);
    double res = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      f[i] = g[i] - x[i];
      res += std::abs(f[i]);
    }
    if (res < 1e-12) break;
    mixer.push(x, f, res);
    std::vector<double> next;
    if (mixer.extrapolate(next)) {
      x = std::move(next);
    } else {
      x = g;  // plain fallback
    }
  }
  // The slowest mode contracts at 0.99/step: the plain iteration needs
  // ~2700 steps for 1e-12. Anderson gets there in a handful.
  EXPECT_LT(iterations, 30u);
  const auto star = map.fixed_point();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x[i], star[i], 1e-9) << "i=" << i;
  }
}

TEST(AndersonMixer, ExtrapolationNeedsTwoSecantPairs) {
  AndersonMixer mixer(4);
  std::vector<double> next;
  EXPECT_FALSE(mixer.extrapolate(next));
  mixer.push({1.0, 0.0}, {0.1, -0.1}, 0.2);
  EXPECT_FALSE(mixer.extrapolate(next));
  mixer.push({1.1, -0.1}, {0.05, -0.05}, 0.1);
  // One secant pair: still in the cooldown window.
  EXPECT_FALSE(mixer.extrapolate(next));
  mixer.push({1.15, -0.15}, {0.02, -0.02}, 0.04);
  EXPECT_TRUE(mixer.extrapolate(next));
  EXPECT_EQ(next.size(), 2u);
}

TEST(AndersonMixer, ResetsHistoryOnResidualIncrease) {
  AndersonMixer mixer(4);
  mixer.push({1.0, 0.0}, {0.1, -0.1}, 0.2);
  mixer.push({1.1, -0.1}, {0.05, -0.05}, 0.1);
  mixer.push({1.15, -0.15}, {0.02, -0.02}, 0.04);
  EXPECT_EQ(mixer.pairs(), 3u);
  // Non-decreasing residual: stale history is discarded (only the new
  // point survives), so the next extrapolation cannot mix in pre-jump
  // iterates.
  mixer.push({1.2, -0.2}, {0.5, -0.5}, 1.0);
  EXPECT_EQ(mixer.pairs(), 1u);
  std::vector<double> next;
  EXPECT_FALSE(mixer.extrapolate(next));
}

TEST(AndersonMixer, ResetClearsState) {
  AndersonMixer mixer(2);
  mixer.push({1.0}, {0.1}, 0.1);
  mixer.push({1.1}, {0.05}, 0.05);
  mixer.reset();
  EXPECT_EQ(mixer.pairs(), 0u);
  // After reset an *increasing* residual push must not be compared against
  // the pre-reset history.
  mixer.push({1.0}, {0.2}, 0.2);
  EXPECT_EQ(mixer.pairs(), 1u);
}

TEST(ProjectToSimplex, ClipsAndNormalizes) {
  std::vector<double> v{0.5, -0.1, 0.7};
  ASSERT_TRUE(project_to_simplex(v));
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  double total = 0.0;
  for (const double x : v) total += x;
  EXPECT_NEAR(total, 1.0, 1e-15);
  EXPECT_NEAR(v[0] / v[2], 0.5 / 0.7, 1e-12);
}

TEST(ProjectToSimplex, RejectsDegenerateMass) {
  std::vector<double> v{-1.0, -2.0, 0.0};
  EXPECT_FALSE(project_to_simplex(v));
  std::vector<double> ok{0.25, 0.75};
  EXPECT_TRUE(project_to_simplex(ok));
  EXPECT_DOUBLE_EQ(ok[0], 0.25);
  EXPECT_DOUBLE_EQ(ok[1], 0.75);
}

}  // namespace
}  // namespace gossip::markov
