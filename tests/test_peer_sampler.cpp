#include "core/peer_sampler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "sim/round_driver.hpp"

namespace gossip {
namespace {

std::unique_ptr<SendForget> make_node(const std::vector<NodeId>& ids) {
  auto node = std::make_unique<SendForget>(
      0, SendForgetConfig{.view_size = 8, .min_degree = 0});
  node->install_view(ids);
  return node;
}

TEST(FreshPeerSampler, ServesEachOccupancyOnce) {
  const auto node = make_node({1, 2, 3, 4});
  FreshPeerSampler sampler(*node);
  Rng rng(1);
  std::set<NodeId> served;
  for (int k = 0; k < 4; ++k) {
    const auto peer = sampler.sample(rng);
    ASSERT_TRUE(peer.has_value());
    EXPECT_TRUE(served.insert(*peer).second) << "repeated peer " << *peer;
  }
  // Exhausted: every occupancy has been handed out.
  EXPECT_FALSE(sampler.sample(rng).has_value());
  EXPECT_EQ(sampler.served_count(), 4u);
  EXPECT_DOUBLE_EQ(sampler.freshness(), 0.0);
}

TEST(FreshPeerSampler, SkipsSelfIds) {
  const auto node = make_node({0, 5});
  FreshPeerSampler sampler(*node);
  Rng rng(2);
  const auto first = sampler.sample(rng);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 5u);
  EXPECT_FALSE(sampler.sample(rng).has_value());
}

TEST(FreshPeerSampler, EmptyViewYieldsNothing) {
  SendForget node(0, SendForgetConfig{.view_size = 8, .min_degree = 0});
  FreshPeerSampler sampler(node);
  Rng rng(3);
  EXPECT_FALSE(sampler.sample(rng).has_value());
  EXPECT_DOUBLE_EQ(sampler.freshness(), 0.0);
}

TEST(FreshPeerSampler, SlotBecomesEligibleWhenContentChanges) {
  SendForget node(0, SendForgetConfig{.view_size = 8, .min_degree = 0});
  node.install_view({7});
  FreshPeerSampler sampler(node);
  Rng rng(4);
  ASSERT_EQ(sampler.sample(rng), std::optional<NodeId>(7));
  ASSERT_FALSE(sampler.sample(rng).has_value());
  // Same slot, same id re-installed: still stale.
  node.install_view({7});
  EXPECT_FALSE(sampler.sample(rng).has_value());
  // Different id in the slot: fresh again.
  node.install_view({9});
  EXPECT_EQ(sampler.sample(rng), std::optional<NodeId>(9));
}

TEST(FreshPeerSampler, ResetForgetsHistory) {
  const auto node = make_node({1, 2});
  FreshPeerSampler sampler(*node);
  Rng rng(5);
  (void)sampler.sample(rng);
  (void)sampler.sample(rng);
  ASSERT_FALSE(sampler.sample(rng).has_value());
  sampler.reset();
  EXPECT_TRUE(sampler.sample(rng).has_value());
}

TEST(FreshPeerSampler, BatchStopsWhenExhausted) {
  const auto node = make_node({1, 2, 3});
  FreshPeerSampler sampler(*node);
  Rng rng(6);
  const auto batch = sampler.sample_batch(10, rng);
  EXPECT_EQ(batch.size(), 3u);
}

TEST(FreshPeerSampler, ProtocolTurnoverReplenishesFreshness) {
  // Integration: with the protocol running, a sampler that drains its
  // view keeps receiving fresh peers round after round (Property M5 in
  // action).
  Rng rng(7);
  constexpr std::size_t kN = 300;
  sim::Cluster cluster(kN, [](NodeId id) {
    return std::make_unique<SendForget>(
        id, SendForgetConfig{.view_size = 16, .min_degree = 6});
  });
  cluster.install_graph(permutation_regular(kN, 4, rng));
  sim::UniformLoss loss(0.01);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(100);

  FreshPeerSampler sampler(cluster.node(0));
  std::size_t total_served = 0;
  for (int round = 0; round < 60; ++round) {
    while (sampler.sample(rng).has_value()) {
      ++total_served;
    }
    driver.run_rounds(2);
  }
  // Dozens of rounds of turnover must supply far more fresh samples than
  // one static view could (16 slots).
  EXPECT_GT(total_served, 60u);
}

}  // namespace
}  // namespace gossip
