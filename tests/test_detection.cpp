// DetectionTracker: observer-set capture, completeness accounting,
// first/last latency, dying observers, join abandonment, and the
// false-positive pair-spell scan.
#include "obs/detection.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace gossip::obs {
namespace {

// A scriptable world: liveness flags plus a verdict matrix.
struct World {
  std::vector<bool> live;
  // verdict[u][w]: u's opinion about w.
  std::vector<std::vector<MemberVerdict>> verdict;

  explicit World(std::size_t n)
      : live(n, true),
        verdict(n, std::vector<MemberVerdict>(n, MemberVerdict::kAlive)) {}

  [[nodiscard]] DetectionTracker::LiveFn live_fn() const {
    return [this](NodeId u) { return live[u]; };
  }
  [[nodiscard]] DetectionTracker::VerdictFn verdict_fn() const {
    return [this](NodeId u, NodeId w) { return verdict[u][w]; };
  }
  void observe(DetectionTracker& tracker, std::uint64_t round) const {
    tracker.observe(round, live.size(), live_fn(), verdict_fn());
  }
};

TEST(DetectionTracker, KillObserverSetIsBelieversAtFirstProbe) {
  World world(4);
  DetectionTracker tracker;
  world.live[3] = false;
  // Node 1 never believed 3 alive (partial view): not an observer.
  world.verdict[1][3] = MemberVerdict::kUnknown;
  tracker.record_kill(10, 3);

  world.observe(tracker, 11);
  ASSERT_EQ(tracker.events().size(), 1u);
  EXPECT_EQ(tracker.events()[0].observers, 2u);  // nodes 0 and 2
  EXPECT_EQ(tracker.completeness(true), 0.0);

  world.verdict[0][3] = MemberVerdict::kSuspect;  // suspicion counts
  world.observe(tracker, 12);
  EXPECT_DOUBLE_EQ(tracker.completeness(true), 0.5);
  EXPECT_DOUBLE_EQ(tracker.mean_first_latency(true), 2.0);
  EXPECT_EQ(tracker.complete_count(true), 0u);

  world.verdict[2][3] = MemberVerdict::kFaulty;
  world.observe(tracker, 15);
  EXPECT_DOUBLE_EQ(tracker.completeness(true), 1.0);
  EXPECT_EQ(tracker.complete_count(true), 1u);
  EXPECT_DOUBLE_EQ(tracker.mean_last_latency(true), 5.0);
  EXPECT_EQ(tracker.max_last_latency(true), 5u);
}

TEST(DetectionTracker, DyingObserverLeavesTheDenominator) {
  World world(3);
  DetectionTracker tracker;
  world.live[2] = false;
  tracker.record_kill(5, 2);
  world.observe(tracker, 6);  // observers: 0 and 1

  world.verdict[0][2] = MemberVerdict::kFaulty;
  world.live[1] = false;  // dies still believing 2 alive
  world.observe(tracker, 7);
  EXPECT_EQ(tracker.events()[0].observers, 1u);
  EXPECT_DOUBLE_EQ(tracker.completeness(true), 1.0);
  EXPECT_TRUE(tracker.events()[0].complete);
}

TEST(DetectionTracker, JoinDetectedWhenObserversBelieveAlive) {
  World world(3);
  DetectionTracker tracker;
  // Node 2 joins at round 4; nobody knows it yet.
  world.verdict[0][2] = MemberVerdict::kUnknown;
  world.verdict[1][2] = MemberVerdict::kUnknown;
  tracker.record_join(4, 2);

  world.observe(tracker, 5);
  EXPECT_EQ(tracker.events()[0].observers, 2u);
  world.verdict[0][2] = MemberVerdict::kAlive;
  world.verdict[1][2] = MemberVerdict::kAlive;
  world.observe(tracker, 9);
  EXPECT_DOUBLE_EQ(tracker.completeness(false), 1.0);
  EXPECT_DOUBLE_EQ(tracker.mean_last_latency(false), 5.0);
}

TEST(DetectionTracker, JoinAbandonedWhenTheSubjectDies) {
  World world(3);
  DetectionTracker tracker;
  world.verdict[0][2] = MemberVerdict::kUnknown;
  world.verdict[1][2] = MemberVerdict::kUnknown;
  tracker.record_join(4, 2);
  world.observe(tracker, 5);

  world.live[2] = false;
  world.observe(tracker, 6);
  EXPECT_TRUE(tracker.events()[0].abandoned);
  EXPECT_EQ(tracker.event_count(false), 0u);
  // Abandoned events drop out of completeness entirely.
  EXPECT_DOUBLE_EQ(tracker.completeness(false), 1.0);
}

TEST(DetectionTracker, FalsePositivePairSpells) {
  World world(3);
  DetectionTracker tracker;

  world.observe(tracker, 1);
  EXPECT_EQ(tracker.fp_events(), 0u);

  // 0 wrongly suspects 1 (both live): one spell opens.
  world.verdict[0][1] = MemberVerdict::kSuspect;
  world.observe(tracker, 2);
  EXPECT_EQ(tracker.fp_events(), 1u);
  EXPECT_EQ(tracker.fp_unresolved(), 1u);

  // Escalating the same pair to faulty is the same spell, not a new one.
  world.verdict[0][1] = MemberVerdict::kFaulty;
  world.observe(tracker, 3);
  EXPECT_EQ(tracker.fp_events(), 1u);

  // Refuted: the spell resolves.
  world.verdict[0][1] = MemberVerdict::kAlive;
  world.observe(tracker, 4);
  EXPECT_EQ(tracker.fp_unresolved(), 0u);

  // Re-entering opens a second spell; still open at the end = unresolved.
  world.verdict[0][1] = MemberVerdict::kSuspect;
  world.observe(tracker, 5);
  EXPECT_EQ(tracker.fp_events(), 2u);
  EXPECT_EQ(tracker.fp_unresolved(), 1u);
}

TEST(DetectionTracker, SuspectingADeadNodeIsNotAFalsePositive) {
  World world(3);
  DetectionTracker tracker;
  world.live[2] = false;
  world.verdict[0][2] = MemberVerdict::kFaulty;  // correct detection
  world.observe(tracker, 1);
  EXPECT_EQ(tracker.fp_events(), 0u);
}

TEST(DetectionTracker, FpStrideSkipsScans) {
  World world(2);
  DetectionTracker tracker(DetectionConfig{.fp_stride = 2});
  world.verdict[0][1] = MemberVerdict::kSuspect;
  world.observe(tracker, 1);  // observe #1: not a scan round
  EXPECT_EQ(tracker.fp_events(), 0u);
  world.observe(tracker, 2);  // observe #2: scans
  EXPECT_EQ(tracker.fp_events(), 1u);
}

TEST(DetectionTracker, WriteJsonEmitsBothSidesAndFpCounts) {
  World world(2);
  DetectionTracker tracker;
  world.live[1] = false;
  tracker.record_kill(1, 1);
  world.verdict[0][1] = MemberVerdict::kFaulty;
  world.observe(tracker, 2);

  std::ostringstream out;
  tracker.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"kills\":{\"events\":1"), std::string::npos);
  EXPECT_NE(json.find("\"joins\":{\"events\":0"), std::string::npos);
  EXPECT_NE(json.find("\"fp_events\":0"), std::string::npos);
}

}  // namespace
}  // namespace gossip::obs
