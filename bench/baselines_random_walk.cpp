// Quantifies §3.1's case against random-walk sampling:
//   (1) success probability under loss decays exponentially in walk
//       length — measured against (1-l)^(L+1);
//   (2) endpoint distribution is degree-biased on irregular topologies,
//       while S&F views converge to uniform regardless;
//   (3) cost: a walk spends L+1 messages per sample; S&F amortizes ~1
//       message per 2 fresh ids.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "sampling/random_walk.hpp"
#include "sampling/uniformity.hpp"
#include "sim/round_driver.hpp"

int main() {
  using namespace gossip;
  using namespace gossip::bench;

  print_header("Baselines — random-walk sampling vs S&F views (§3.1)");

  constexpr std::size_t kN = 1000;
  Rng rng(31);
  sim::Cluster cluster(kN, [](NodeId id) {
    return std::make_unique<SendForget>(id, default_send_forget_config());
  });
  cluster.install_graph(permutation_regular(kN, 10, rng));
  {
    sim::UniformLoss mix_loss(0.01);
    sim::RoundDriver driver(cluster, mix_loss, rng);
    driver.run_rounds(300);
  }

  print_subheader("(1) Walk success rate vs length (measured / predicted)");
  std::printf("%8s", "length");
  const std::vector<double> losses = {0.01, 0.05, 0.1};
  for (const double l : losses) std::printf("     loss=%.2f", l);
  std::printf("\n");
  for (const std::size_t length : {5u, 10u, 20u, 40u}) {
    std::printf("%8zu", length);
    for (const double l : losses) {
      sim::UniformLoss loss(l);
      sampling::RandomWalkSampler sampler(
          cluster, loss, sampling::RandomWalkConfig{.walk_length = length});
      for (int i = 0; i < 4000; ++i) {
        sampler.sample(static_cast<NodeId>(i % kN), rng);
      }
      std::printf("  %.3f/%.3f", sampler.stats().success_rate(),
                  sampling::walk_success_probability(length, true, l));
    }
    std::printf("\n");
  }
  print_note("success decays as (1-l)^(L+1): at 10% loss a 40-hop walk "
             "succeeds ~1% of the time, while every S&F action remains "
             "useful (its steps are atomic).");

  print_subheader("(2) Endpoint bias on an irregular overlay (no loss)");
  {
    // Hub-heavy topology: everyone also points at node 0.
    sim::Cluster skewed(kN, [](NodeId id) {
      return std::make_unique<SendForget>(id, default_send_forget_config());
    });
    Rng g_rng(5);
    Digraph g = permutation_regular(kN, 10, g_rng);
    for (NodeId u = 1; u < kN; ++u) g.add_edge(u, 0);
    skewed.install_graph(g);

    sim::UniformLoss no_loss(0.0);
    sampling::RandomWalkSampler sampler(
        skewed, no_loss, sampling::RandomWalkConfig{.walk_length = 30});
    std::vector<std::uint64_t> hits(kN, 0);
    constexpr int kTrials = 100'000;
    for (int i = 0; i < kTrials; ++i) {
      const auto s = sampler.sample(static_cast<NodeId>(i % kN), rng);
      if (s) ++hits[*s];
    }
    const double uniform = static_cast<double>(kTrials) / kN;
    print_kv("RW hits on hub / uniform share",
             static_cast<double>(hits[0]) / uniform);

    // Meanwhile S&F, run on the same start, repairs the skew (M2/M3).
    sim::RoundDriver driver(skewed, no_loss, rng);
    driver.run_rounds(400);
    sampling::UniformityTester tester(kN);
    for (int snap = 0; snap < 50; ++snap) {
      driver.run_rounds(20);
      tester.record_snapshot(skewed);
    }
    const auto occupancy = tester.test_uniform();
    print_kv("S&F occupancy max relative deviation",
             occupancy.max_relative_deviation);
  }
  print_note("the walk samples the hub ~an order of magnitude too often "
             "(degree bias); S&F evolves the same topology back to uniform "
             "representation.");

  print_subheader("(3) Messages per fresh sample");
  print_kv("random walk (L=20, reply)", 21.0);
  print_kv("S&F (1 message delivers 2 ids)", 0.5);
  return 0;
}
