#include "graph/connectivity.hpp"
#include "graph/connectivity.hpp"
