// The global Markov chain over membership graphs (§7.1-§7.3).
//
// For small systems, the chain G(s, dL, ℓ) can be built *exhaustively*:
// states are global view configurations (each node's view as a multiset of
// ids), and every S&F transformation — initiator choice, slot-pair choice,
// loss outcome, duplication, deletion — is enumerated with its exact
// probability. This machinery lets the paper's structural lemmas be
// checked directly rather than trusted:
//
//   * Lemma 7.1: with 0 < ℓ < 1 the chain is strongly connected
//     (irreducible);
//   * Lemmas 7.3/7.4: with no loss and preserved sum degrees the chain is
//     doubly stochastic;
//   * Lemma 7.5: its stationary distribution is uniform over the
//     reachable states;
//   * Lemma 7.6: under the stationary distribution, every v != u is
//     equally likely to appear in u's view.
//
// State counts grow combinatorially, so this is exact verification for
// n <= ~5 with small views — the regime where exhaustiveness is possible
// at all.
#pragma once

#include <cstddef>
#include <vector>

#include "common/node_id.hpp"
#include "core/send_forget.hpp"
#include "graph/digraph.hpp"
#include "markov/sparse_chain.hpp"

namespace gossip::analysis {

// One global state: views[u] is node u's view as a sorted multiset of ids.
using GlobalState = std::vector<std::vector<NodeId>>;

struct GlobalMcParams {
  SendForgetConfig config{.view_size = 6, .min_degree = 2};
  double loss = 0.0;
  // The initial membership graph; exploration covers everything reachable
  // from it. Out-degrees must be even and fit within the view size.
  Digraph initial{0};
  // Abort exploration beyond this many states.
  std::size_t max_states = 500'000;
  // Compute the stationary distribution (can be skipped for large chains
  // when only structure is needed).
  bool compute_stationary = true;
  double stationary_tolerance = 1e-12;
  std::size_t max_stationary_iterations = 200'000;
};

struct GlobalMcResult {
  std::size_t node_count = 0;
  std::vector<GlobalState> states;
  markov::SparseChain chain;
  bool exploration_complete = true;

  // Lemma 7.1 (or Lemma A.2 for the no-loss subchain).
  bool strongly_connected = false;
  // Lemmas 7.3/7.4 (no-loss fixed-sum chains only; false otherwise).
  bool doubly_stochastic = false;

  markov::SparseChain::StationaryResult stationary;
  // max over states of |pi_i * N - 1| — 0 iff stationary is exactly
  // uniform over the reachable states (Lemma 7.5).
  double uniformity_deviation = 0.0;
  // The same deviation restricted to *simple* states (no self-edges, no
  // parallel edges), measured against their own mean mass. Lemma 7.5's
  // equal-weight argument is exact on this subspace; multiplicity-bearing
  // states (rare when n >> s) break the symmetry of the outcome chain.
  double simple_state_uniformity_deviation = 0.0;
  std::size_t simple_state_count = 0;
  // Lemma 7.6: over ordered pairs u != v, the spread
  // (max - min) / mean of P(v in u.lv) under the stationary distribution.
  double edge_presence_spread = 0.0;
};

// Builds the chain by breadth-first exploration of S&F transformations.
// Throws std::invalid_argument for inconsistent parameters (odd initial
// outdegrees, views exceeding capacity, loss outside [0, 1)).
[[nodiscard]] GlobalMcResult build_global_mc(const GlobalMcParams& params);

// Converts between a membership graph and the state representation.
[[nodiscard]] GlobalState state_from_graph(const Digraph& graph);
[[nodiscard]] Digraph graph_from_state(const GlobalState& state);

}  // namespace gossip::analysis
