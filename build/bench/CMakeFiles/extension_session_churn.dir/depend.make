# Empty dependencies file for extension_session_churn.
# This may be replaced when dependencies are built.
