// Forensics plane: the embedded JSON reader, artifact loaders
// (SnapshotSurface, ChaosLog, RunArchive), the CausalIndex over flight
// traces, root-cause attribution for all four verdicts, and the report
// renderers' determinism contract.
#include "obs/forensics/attribution.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/forensics/causal_index.hpp"
#include "obs/forensics/json.hpp"
#include "obs/forensics/report.hpp"
#include "obs/forensics/run_archive.hpp"
#include "obs/oracle/flight_recorder.hpp"

namespace gossip::obs::forensics {
namespace {

FlightEvent make_event(std::uint64_t id, std::uint32_t round, NodeId node,
                       NodeId peer, FlightEventKind kind) {
  return FlightEvent{id, round, node, peer, kind, 0, 0};
}

// ---------------------------------------------------------------------------
// JsonValue parser.
// ---------------------------------------------------------------------------

TEST(ForensicsJson, ParsesNestedDocument) {
  JsonValue root;
  std::string error;
  ASSERT_TRUE(parse_json(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "t": true, "z": null})",
      &root, &error))
      << error;
  ASSERT_TRUE(root.is_object());
  const JsonValue* a = root.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_EQ(a->items[0].number, 1.0);
  EXPECT_EQ(a->items[2].number, -300.0);
  const JsonValue* b = root.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->get_string("c"), "x\ny");
  EXPECT_TRUE(root.get_bool("t"));
  const JsonValue* z = root.find("z");
  ASSERT_NE(z, nullptr);
  EXPECT_TRUE(z->is_null());
}

TEST(ForensicsJson, ReportsByteOffsetOnError) {
  JsonValue root;
  std::string error;
  EXPECT_FALSE(parse_json(R"({"a": })", &root, &error));
  EXPECT_NE(error.find("at byte"), std::string::npos);
}

TEST(ForensicsJson, RejectsTrailingBytes) {
  JsonValue root;
  std::string error;
  EXPECT_FALSE(parse_json("{} extra", &root, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(ForensicsJson, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  JsonValue root;
  std::string error;
  EXPECT_FALSE(parse_json(deep, &root, &error));
  EXPECT_NE(error.find("deep"), std::string::npos);
}

TEST(ForensicsJson, DecodesUnicodeEscapes) {
  JsonValue root;
  std::string error;
  ASSERT_TRUE(parse_json("[\"A\\u00e9\\t\"]", &root, &error)) << error;
  EXPECT_EQ(root.items[0].string, "A\xC3\xA9\t");
}

// ---------------------------------------------------------------------------
// SnapshotSurface: delta carry-forward and window queries.
// ---------------------------------------------------------------------------

constexpr const char* kSnapshotHeader =
    R"({"schema":"sfgossip.snapshot","version":1,"snapshot_stride":10,)"
    R"("counters":["messages_sent","messages_lost","messages_faulted"],)"
    R"("gauges":["live_nodes"],"histograms":[{"name":"outdegree"}]})";

std::string snapshot_stream_fixture() {
  std::string s(kSnapshotHeader);
  s += "\n";
  // Full first record, then delta records: round 20 omits live_nodes
  // (carry-forward), round 30 drops it plus spikes the loss counters.
  s += R"({"round":10,"seq":1,"counters":{"messages_sent":1000,)"
       R"("messages_lost":10},"gauges":{"live_nodes":500},)"
       R"("histograms":{"outdegree":{"total":500,"delta":500,"p50":24,)"
       R"("p90":28,"p99":30}}})";
  s += "\n";
  s += R"({"round":20,"seq":2,"counters":{"messages_sent":2000,)"
       R"("messages_lost":20}})";
  s += "\n";
  s += R"({"round":30,"seq":3,"counters":{"messages_sent":3000,)"
       R"("messages_lost":220,"messages_faulted":100},)"
       R"("gauges":{"live_nodes":400}})";
  s += "\n";
  return s;
}

TEST(SnapshotSurface, RebuildsCarryForwardValues) {
  std::istringstream in(snapshot_stream_fixture());
  SnapshotSurface surface;
  ASSERT_TRUE(surface.load(in)) << surface.last_error();
  EXPECT_EQ(surface.size(), 3u);
  EXPECT_EQ(surface.snapshot_stride(), 10u);
  EXPECT_EQ(surface.first_round(), 10u);
  EXPECT_EQ(surface.last_round(), 30u);
  // Carry-forward: round 20 never named live_nodes.
  EXPECT_EQ(surface.gauge_at(1, "live_nodes"), 500.0);
  EXPECT_EQ(surface.gauge_at(2, "live_nodes"), 400.0);
  // Omitted counters stay at their previous cumulative value.
  EXPECT_EQ(surface.counter_at(1, "messages_faulted"), 0.0);
  EXPECT_EQ(surface.counter_at(2, "messages_faulted"), 100.0);
  const SurfaceHistogram* h = surface.histogram_at(2, "outdegree");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->p50, 24.0);   // carried forward
  EXPECT_EQ(h->delta, 0.0);  // no observations since round 10
}

TEST(SnapshotSurface, WindowQueries) {
  std::istringstream in(snapshot_stream_fixture());
  SnapshotSurface surface;
  ASSERT_TRUE(surface.load(in)) << surface.last_error();
  EXPECT_EQ(surface.index_at_round(25), 1u);
  EXPECT_EQ(surface.index_at_round(5), SnapshotSurface::npos);
  EXPECT_EQ(surface.index_from_round(25), 2u);
  EXPECT_EQ(surface.index_from_round(31), SnapshotSurface::npos);
  // Bracketing delta: value at round<=30 minus value at round<=10.
  EXPECT_EQ(surface.counter_window_delta("messages_lost", 10, 30), 210.0);
  EXPECT_EQ(surface.gauge_window_min("live_nodes", 10, 30, -1.0), 400.0);
  EXPECT_EQ(surface.gauge_window_max("live_nodes", 10, 30, -1.0), 500.0);
  // A window missing the stream entirely returns the fallback.
  EXPECT_EQ(surface.gauge_window_max("live_nodes", 100, 200, -1.0), -1.0);
}

TEST(SnapshotSurface, RejectsMalformedStreams) {
  {
    std::istringstream in("");
    SnapshotSurface surface;
    EXPECT_FALSE(surface.load(in));
    EXPECT_NE(surface.last_error().find("header"), std::string::npos);
  }
  {
    std::istringstream in(std::string(kSnapshotHeader) + "\n" +
                          R"({"round":10,"counters":{"bogus":1}})" + "\n");
    SnapshotSurface surface;
    EXPECT_FALSE(surface.load(in));
    EXPECT_NE(surface.last_error().find("unknown counter"),
              std::string::npos);
  }
  {
    std::istringstream in(std::string(kSnapshotHeader) + "\n" +
                          R"({"round":20})" + "\n" + R"({"round":10})" +
                          "\n");
    SnapshotSurface surface;
    EXPECT_FALSE(surface.load(in));
    EXPECT_NE(surface.last_error().find("ascending"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// ChaosLog: chaos-shaped and bare-recovery JSON.
// ---------------------------------------------------------------------------

constexpr const char* kChaosFixture = R"({
  "scenario": "fixture",
  "recovery": {
    "unrecovered": 1,
    "baseline_mean_degree": 26.5,
    "episodes": [
      {"label": "split", "declared": true, "begin": 150, "heal": 170,
       "degraded": true, "recovered": true, "recovered_round": 310,
       "recovery_rounds": 140, "lane_names": ["degree"]},
      {"label": "undeclared", "declared": false, "begin": 400, "heal": 401,
       "degraded": true, "recovered": false, "lane_names": ["oracle"]}
    ]
  },
  "oracle": {
    "prediction": {"loss": 0.02},
    "monitor": {"transitions": [
      {"round": 200, "check": "degree_in", "from": "ok", "to": "warn",
       "score": 2.0},
      {"round": 405, "check": "degree_in", "from": "warn",
       "to": "violation", "score": 6.0}
    ]}
  },
  "watchdog": {"log": [
    {"kind": "stuck-degree", "round": 99, "node": 7}
  ]}
})";

TEST(ChaosLog, LoadsChaosShapedReport) {
  std::istringstream in(kChaosFixture);
  ChaosLog log;
  ASSERT_TRUE(log.load(in)) << log.last_error();
  EXPECT_EQ(log.scenario(), "fixture");
  EXPECT_EQ(log.unrecovered(), 1u);
  EXPECT_EQ(log.baseline_mean_degree(), 26.5);
  ASSERT_EQ(log.episodes().size(), 2u);
  EXPECT_TRUE(log.episodes()[0].declared);
  EXPECT_EQ(log.episodes()[0].begin, 150u);
  EXPECT_EQ(log.episodes()[1].lanes, std::vector<std::string>{"oracle"});
  EXPECT_TRUE(log.has_oracle());
  EXPECT_EQ(log.predicted_loss(), 0.02);
  // Only violation transitions are kept; the warn at round 200 is not.
  ASSERT_EQ(log.violations().size(), 1u);
  EXPECT_EQ(log.violations()[0].round, 405u);
  EXPECT_EQ(log.violations()[0].from, "warn");
  ASSERT_EQ(log.watchdog_trips().size(), 1u);
  EXPECT_EQ(log.watchdog_trips()[0].node, 7);
}

TEST(ChaosLog, LoadsBareRecoveryJson) {
  std::istringstream in(
      R"({"episodes": [{"label": "x", "begin": 5, "heal": 9,)"
      R"( "degraded": true}], "unrecovered": 0})");
  ChaosLog log;
  ASSERT_TRUE(log.load(in)) << log.last_error();
  ASSERT_EQ(log.episodes().size(), 1u);
  EXPECT_FALSE(log.has_oracle());
}

TEST(ChaosLog, RejectsReportsWithoutRecovery) {
  std::istringstream in(R"({"scenario": "nope"})");
  ChaosLog log;
  EXPECT_FALSE(log.load(in));
  EXPECT_NE(log.last_error().find("recovery"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CausalIndex over a synthetic flight trace.
// ---------------------------------------------------------------------------

FlightTrace make_trace() {
  FlightRecorder recorder(2, /*capacity=*/16);
  const std::uint64_t m1 = recorder.begin_message(0);
  recorder.record(0, make_event(m1, 100, 1, 2, FlightEventKind::kSend));
  recorder.record(1, make_event(m1, 101, 2, 1, FlightEventKind::kDeliver));
  const std::uint64_t m2 = recorder.begin_message(0);
  recorder.record(0, make_event(m2, 102, 1, 3, FlightEventKind::kSend));
  recorder.record(1, make_event(m2, 103, 3, 1, FlightEventKind::kLose));
  recorder.record(0, make_event(0, 110, 5, kNilNode,
                                FlightEventKind::kKill));
  recorder.record(0, make_event(0, 111, 6, kNilNode,
                                FlightEventKind::kKill));
  std::stringstream buffer;
  recorder.dump(buffer);
  FlightTrace trace;
  EXPECT_TRUE(trace.load(buffer));
  return trace;
}

TEST(CausalIndex, ThreadsMessagesAndNodes) {
  const FlightTrace trace = make_trace();
  const CausalIndex index(trace);
  EXPECT_EQ(index.message_count(), 2u);
  const std::uint64_t m1 = trace.events().front().message_id;
  const auto& lifecycle = index.message_events(m1);
  ASSERT_EQ(lifecycle.size(), 2u);
  EXPECT_EQ(trace.events()[lifecycle[0]].kind, FlightEventKind::kSend);
  EXPECT_EQ(trace.events()[lifecycle[1]].kind, FlightEventKind::kDeliver);
  // Node 1 initiated both sends and was named as peer of both replies.
  EXPECT_EQ(index.node_events(1).size(), 4u);
  EXPECT_TRUE(index.message_events(0xdeadbeef).empty());
  EXPECT_TRUE(index.node_events(999).empty());
}

TEST(CausalIndex, WindowsAndKindCounts) {
  const FlightTrace trace = make_trace();
  const CausalIndex index(trace);
  const auto [lo, hi] = index.round_range(101, 111);
  EXPECT_EQ(hi - lo, 4u);  // deliver, send, lose, first kill
  const auto counts = index.kind_counts(100, 120);
  EXPECT_EQ(counts[static_cast<std::size_t>(FlightEventKind::kKill)], 2u);
  EXPECT_EQ(counts[static_cast<std::size_t>(FlightEventKind::kSend)], 2u);
  const auto kills = index.last_events_of_kind(FlightEventKind::kKill, 100,
                                               120, /*limit=*/8);
  ASSERT_EQ(kills.size(), 2u);
  // Most recent first.
  EXPECT_EQ(trace.events()[kills[0]].round, 111u);
  EXPECT_EQ(trace.events()[kills[1]].round, 110u);
}

// ---------------------------------------------------------------------------
// Root-cause attribution: all four verdicts.
// ---------------------------------------------------------------------------

void load_chaos(RunArchive* archive, const std::string& text) {
  std::istringstream in(text);
  std::string error;
  ASSERT_TRUE(archive->load_chaos(in, &error)) << error;
}

void load_snapshots(RunArchive* archive, const std::string& text) {
  std::istringstream in(text);
  std::string error;
  ASSERT_TRUE(archive->load_snapshots(in, &error)) << error;
}

TEST(Attribution, DeclaredEpisodeMatchesItselfNotAnEarlierGraceTail) {
  // Two declared windows; the second episode must attribute to its own
  // window (0.97), not the first window's grace tail (0.85).
  RunArchive archive;
  load_chaos(&archive,
             R"({"recovery": {"episodes": [
    {"label": "a", "declared": true, "begin": 100, "heal": 120,
     "degraded": true},
    {"label": "b", "declared": true, "begin": 150, "heal": 175,
     "degraded": true}
  ]}})");
  const RootCauseAttributor attributor(archive, nullptr, {});
  const std::vector<Incident> incidents = attributor.attribute();
  ASSERT_EQ(incidents.size(), 2u);
  for (const Incident& incident : incidents) {
    EXPECT_EQ(incident.cause, IncidentCause::kDeclaredFault);
    EXPECT_DOUBLE_EQ(incident.confidence, 0.97);
  }
  EXPECT_EQ(unknown_incidents(incidents), 0u);
}

TEST(Attribution, StatisticalTripsGetTheLongerGraceReach) {
  // A violation 150 rounds after heal: outside fault_grace_rounds (60)
  // but inside oracle_grace_rounds (200) — statistical drift relaxes on
  // the stationary-mixing timescale, so it still pins on the fault.
  RunArchive archive;
  load_chaos(&archive,
             R"({"recovery": {"episodes": [
    {"label": "cut", "declared": true, "begin": 150, "heal": 175,
     "degraded": true}
  ]},
  "oracle": {"prediction": {"loss": 0.02}, "monitor": {"transitions": [
    {"round": 325, "check": "degree_in", "from": "warn",
     "to": "violation", "score": 5.0}
  ]}}})");
  const RootCauseAttributor attributor(archive, nullptr, {});
  const std::vector<Incident> incidents = attributor.attribute();
  ASSERT_EQ(incidents.size(), 2u);
  const Incident& violation = incidents[1];
  EXPECT_EQ(violation.source, "oracle-violation");
  EXPECT_TRUE(violation.statistical);
  EXPECT_EQ(violation.cause, IncidentCause::kDeclaredFault);
  EXPECT_DOUBLE_EQ(violation.confidence, 0.85);

  // The same trip from a *non*-statistical source would be out of reach:
  // a watchdog trip at the same round stays unknown.
  RunArchive archive2;
  load_chaos(&archive2,
             R"({"recovery": {"episodes": [
    {"label": "cut", "declared": true, "begin": 150, "heal": 175,
     "degraded": false}
  ]},
  "watchdog": {"log": [{"kind": "stuck", "round": 325, "node": 3}]}})");
  const RootCauseAttributor attributor2(archive2, nullptr, {});
  const std::vector<Incident> incidents2 = attributor2.attribute();
  ASSERT_EQ(incidents2.size(), 1u);
  EXPECT_EQ(incidents2[0].cause, IncidentCause::kUnknown);
}

TEST(Attribution, ChurnFromFlightEventsThenGaugeFallback) {
  const std::string chaos =
      R"({"recovery": {"episodes": [
    {"label": "undeclared", "declared": false, "begin": 112, "heal": 130,
     "degraded": true}
  ]}})";
  // With a trace: the kill events in the lookback window win (0.92).
  {
    RunArchive archive;
    load_chaos(&archive, chaos);
    const FlightTrace trace = make_trace();
    const CausalIndex index(trace);
    const RootCauseAttributor attributor(archive, &index, {});
    const std::vector<Incident> incidents = attributor.attribute();
    ASSERT_EQ(incidents.size(), 1u);
    EXPECT_EQ(incidents[0].cause, IncidentCause::kChurnWashout);
    EXPECT_DOUBLE_EQ(incidents[0].confidence, 0.92);
  }
  // Without a trace: the live_nodes gauge drop is the fallback (0.75).
  {
    RunArchive archive;
    load_chaos(&archive, chaos);
    load_snapshots(&archive,
                   std::string(kSnapshotHeader) + "\n" +
                       R"({"round":110,"gauges":{"live_nodes":500}})" +
                       "\n" +
                       R"({"round":120,"gauges":{"live_nodes":400}})" +
                       "\n");
    const RootCauseAttributor attributor(archive, nullptr, {});
    const std::vector<Incident> incidents = attributor.attribute();
    ASSERT_EQ(incidents.size(), 1u);
    EXPECT_EQ(incidents[0].cause, IncidentCause::kChurnWashout);
    EXPECT_DOUBLE_EQ(incidents[0].confidence, 0.75);
  }
}

TEST(Attribution, LossDriftFromSnapshotStream) {
  // Ambient loss 1%; the interval [20, 30) spikes to 30% — far past
  // max(loss_drift_min, 2 x baseline). live_nodes stays flat so the
  // (higher-priority) churn matcher must not fire.
  RunArchive archive;
  load_chaos(&archive,
             R"({"recovery": {"episodes": [
    {"label": "undeclared", "declared": false, "begin": 31, "heal": 35,
     "degraded": true}
  ]}})");
  std::string stream(kSnapshotHeader);
  stream += "\n";
  stream += R"({"round":10,"counters":{"messages_sent":1000,)"
            R"("messages_lost":10},"gauges":{"live_nodes":500}})";
  stream += "\n";
  stream += R"({"round":20,"counters":{"messages_sent":2000,)"
            R"("messages_lost":20}})";
  stream += "\n";
  stream += R"({"round":30,"counters":{"messages_sent":3000,)"
            R"("messages_lost":220,"messages_faulted":100}})";
  stream += "\n";
  load_snapshots(&archive, stream);
  const RootCauseAttributor attributor(archive, nullptr, {});
  const std::vector<Incident> incidents = attributor.attribute();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].cause, IncidentCause::kLossDrift);
  EXPECT_GE(incidents[0].confidence, 0.7);
  bool has_loss_evidence = false;
  for (const IncidentEvidence& e : incidents[0].evidence) {
    if (e.kind == "loss-rate") has_loss_evidence = true;
  }
  EXPECT_TRUE(has_loss_evidence);
}

TEST(Attribution, UnexplainedIncidentStaysUnknown) {
  RunArchive archive;
  load_chaos(&archive,
             R"({"recovery": {"episodes": [
    {"label": "mystery", "declared": false, "begin": 300, "heal": 310,
     "degraded": true},
    {"label": "calm", "declared": false, "begin": 50, "heal": 60,
     "degraded": false}
  ]}})");
  const RootCauseAttributor attributor(archive, nullptr, {});
  const std::vector<Incident> incidents = attributor.attribute();
  // The never-degraded episode produces no incident at all.
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].cause, IncidentCause::kUnknown);
  EXPECT_EQ(incidents[0].confidence, 0.0);
  EXPECT_EQ(unknown_incidents(incidents), 1u);
}

// ---------------------------------------------------------------------------
// Report rendering + snapshot diff.
// ---------------------------------------------------------------------------

TEST(Report, JsonIsDeterministicAndWellFormed) {
  RunArchive archive;
  load_chaos(&archive, kChaosFixture);
  load_snapshots(&archive, snapshot_stream_fixture());
  const RootCauseAttributor attributor(archive, nullptr, {});
  const std::vector<Incident> incidents = attributor.attribute();
  ASSERT_FALSE(incidents.empty());

  std::ostringstream first;
  write_report_json(first, archive, incidents, nullptr);
  std::ostringstream second;
  write_report_json(second, archive, incidents, nullptr);
  EXPECT_EQ(first.str(), second.str());

  // The report must parse with the same reader the analyzer uses.
  JsonValue root;
  std::string error;
  ASSERT_TRUE(parse_json(first.str(), &root, &error)) << error;
  EXPECT_EQ(root.get_string("schema"), "sfgossip.forensics");
  const JsonValue* parsed = root.find("incidents");
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->items.size(), incidents.size());
}

TEST(Report, MarkdownNamesEveryIncident) {
  RunArchive archive;
  load_chaos(&archive, kChaosFixture);
  const RootCauseAttributor attributor(archive, nullptr, {});
  const std::vector<Incident> incidents = attributor.attribute();
  std::ostringstream out;
  write_report_markdown(out, archive, incidents, nullptr);
  const std::string md = out.str();
  EXPECT_NE(md.find("# sfgossip forensics report"), std::string::npos);
  for (const Incident& incident : incidents) {
    EXPECT_NE(md.find(incident.label), std::string::npos);
    EXPECT_NE(md.find(incident_cause_name(incident.cause)),
              std::string::npos);
  }
}

TEST(Report, SnapshotDiffFlagsRegressions) {
  SnapshotSurface baseline;
  SnapshotSurface current;
  {
    std::istringstream in(snapshot_stream_fixture());
    ASSERT_TRUE(baseline.load(in));
  }
  {
    // Same stream shape, but the final loss count triples.
    std::string text = snapshot_stream_fixture();
    const std::size_t at = text.rfind("\"messages_lost\":220");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 19, "\"messages_lost\":660");
    std::istringstream in(text);
    ASSERT_TRUE(current.load(in)) << current.last_error();
  }
  const SnapshotDiff diff = SnapshotDiff::compare(baseline, current, 0.10);
  EXPECT_GT(diff.regressions, 0u);
  bool found = false;
  for (const SnapshotDiffEntry& entry : diff.counters) {
    if (entry.name != "messages_lost") continue;
    found = true;
    EXPECT_EQ(entry.baseline, 220.0);
    EXPECT_EQ(entry.current, 660.0);
    EXPECT_GT(entry.relative, 0.10);
  }
  EXPECT_TRUE(found);
  // Identical surfaces diff clean.
  const SnapshotDiff same = SnapshotDiff::compare(baseline, baseline, 0.10);
  EXPECT_EQ(same.regressions, 0u);
}

}  // namespace
}  // namespace gossip::obs::forensics
