// Sparse row-stochastic Markov chains.
//
// The global MC over membership graphs (§7.1) has up to hundreds of
// thousands of states with a handful of transitions each; this container
// stores only the nonzero off-diagonal entries (self-loop mass is implied
// by the row remainder) and provides stationary-distribution and
// structure queries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gossip::markov {

class SparseChain {
 public:
  explicit SparseChain(std::size_t state_count = 0);

  [[nodiscard]] std::size_t state_count() const { return row_sum_.size(); }

  // Ensures the chain has at least `count` states.
  void resize(std::size_t count);

  // Accumulates probability mass `prob` on the transition from -> to.
  // Self-transitions are ignored (they are implicit). Total outgoing mass
  // of a row must stay <= 1 (checked in finalize()).
  void add(std::size_t from, std::size_t to, double prob);

  // Outgoing (non-self) probability mass of a row.
  [[nodiscard]] double row_sum(std::size_t state) const {
    return row_sum_[state];
  }

  // Validates rows (throws std::runtime_error if any row exceeds 1 beyond
  // tolerance) and sorts transition storage. Must be called before the
  // queries below.
  void finalize(double tolerance = 1e-9);

  // pi' = pi P, exploiting sparsity. Requires finalize().
  [[nodiscard]] std::vector<double> step(const std::vector<double>& pi) const;

  struct StationaryResult {
    std::vector<double> distribution;
    std::size_t iterations = 0;
    bool converged = false;
    double residual = 0.0;
  };
  // Power iteration from `initial` (uniform when empty).
  [[nodiscard]] StationaryResult stationary(
      std::vector<double> initial = {}, double tolerance = 1e-12,
      std::size_t max_iterations = 200'000) const;

  // True if every state can reach every other along positive-probability
  // transitions (self-loops ignored) — irreducibility (Lemma 7.1 checks).
  [[nodiscard]] bool strongly_connected() const;

  // True if, in addition to rows, all *columns* also sum to 1 (counting
  // implied self-loops) — the doubly stochastic property of the no-loss
  // fixed-sum chain (Lemmas 7.3/7.4 imply it; Lemma 7.5 follows).
  [[nodiscard]] bool doubly_stochastic(double tolerance = 1e-9) const;

  // Number of stored (off-diagonal) transitions.
  [[nodiscard]] std::size_t transition_count() const { return to_.size(); }

 private:
  std::vector<std::uint32_t> from_;
  std::vector<std::uint32_t> to_;
  std::vector<double> prob_;
  std::vector<double> row_sum_;
  bool finalized_ = false;
};

}  // namespace gossip::markov
