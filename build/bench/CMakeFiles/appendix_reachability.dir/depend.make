# Empty dependencies file for appendix_reachability.
# This may be replaced when dependencies are built.
