// Reproduces Figure 6.4: the upper bound on the probability that an id
// instance of a left/failed node remains in the system, as a function of
// rounds since the leave, for loss rates ℓ = 0, 0.01, 0.05, 0.1
// (δ = 0.01, dL = 18, s = 40) — plus a simulated measurement of the actual
// decay, which must stay below the bound.
//
// Expected shapes: the four bound curves nearly coincide (decay almost
// unaffected by loss) and cross 50% at ~70 rounds (§6.5.2).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/decay.hpp"
#include "bench_util.hpp"
#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "sim/round_driver.hpp"

namespace {

using namespace gossip;

// Measured survival fraction of leaver ids at kProbeRounds checkpoints.
std::vector<double> simulate_decay(double loss_rate,
                                   const std::vector<std::size_t>& probes,
                                   std::uint64_t seed) {
  Rng rng(seed);
  constexpr std::size_t kN = 1200;
  sim::Cluster cluster(kN, [](NodeId id) {
    return std::make_unique<SendForget>(id, default_send_forget_config());
  });
  cluster.install_graph(permutation_regular(kN, 10, rng));
  sim::UniformLoss loss(loss_rate);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(400);  // steady state

  std::vector<NodeId> victims;
  for (NodeId v = 0; v < 30; ++v) {
    victims.push_back(v);
    cluster.kill(v);
  }
  auto remaining = [&] {
    std::size_t count = 0;
    const auto g = cluster.snapshot();
    for (const NodeId v : victims) count += g.in_degree(v);
    return static_cast<double>(count);
  };
  const double initial = remaining();
  std::vector<double> series;
  std::size_t done = 0;
  for (const std::size_t probe : probes) {
    driver.run_rounds(probe - done);
    done = probe;
    series.push_back(remaining() / initial);
  }
  return series;
}

}  // namespace

int main() {
  using namespace gossip::bench;
  constexpr std::size_t kRounds = 500;
  const std::vector<double> losses = {0.0, 0.01, 0.05, 0.1};

  print_header(
      "Figure 6.4 — survival bound for ids of left nodes (delta=0.01, dL=18, "
      "s=40)");

  std::vector<std::vector<double>> curves;
  std::vector<std::string> names;
  std::vector<double> axis;
  for (std::size_t r = 0; r <= kRounds; r += 25) axis.push_back(static_cast<double>(r));

  for (const double l : losses) {
    analysis::DecayParams params{
        .view_size = 40, .min_degree = 18, .loss = l, .delta = 0.01};
    const auto full = analysis::leave_survival_bound(params, kRounds);
    std::vector<double> sampled;
    for (std::size_t r = 0; r <= kRounds; r += 25) sampled.push_back(full[r]);
    curves.push_back(std::move(sampled));
    names.push_back("l=" + std::to_string(l).substr(0, 4));
  }
  print_series_table("round", names, axis, curves);

  print_subheader("Half-life of leaver ids (bound)");
  for (const double l : losses) {
    analysis::DecayParams params{
        .view_size = 40, .min_degree = 18, .loss = l, .delta = 0.01};
    std::printf("  l=%.2f: <50%% of instances remain after %zu rounds\n", l,
                analysis::rounds_until_survival_below(params, 0.5));
  }
  print_note("paper: after merely ~70 rounds, fewer than 50% remain; curves "
             "almost unaffected by loss.");

  print_subheader("Simulated decay vs bound (l=0.01, n=1200)");
  const std::vector<std::size_t> probes = {25, 50, 75, 100, 150, 200, 300};
  const auto measured = simulate_decay(0.01, probes, 42);
  analysis::DecayParams params{
      .view_size = 40, .min_degree = 18, .loss = 0.01, .delta = 0.01};
  const auto bound = analysis::leave_survival_bound(params, 300);
  std::printf("%8s  %12s  %12s\n", "round", "measured", "bound");
  for (std::size_t k = 0; k < probes.size(); ++k) {
    std::printf("%8zu  %12.4f  %12.4f%s\n", probes[k], measured[k],
                bound[probes[k]],
                measured[k] <= bound[probes[k]] + 0.05 ? "" : "  (!)");
  }
  return 0;
}
