#include "sim/session_churn.hpp"

#include <utility>

#include "sim/churn.hpp"

namespace gossip::sim {

SessionChurn::SessionChurn(Cluster& cluster, Cluster::ProtocolFactory factory,
                           SessionChurnConfig config, Rng& rng,
                           LossModel* probe_loss)
    : cluster_(cluster), factory_(std::move(factory)), config_(config),
      probe_loss_(probe_loss) {
  deadline_.resize(cluster_.size());
  for (NodeId u = 0; u < cluster_.size(); ++u) {
    deadline_[u] = cluster_.live(u)
                       ? rng.pareto(config_.session_min, config_.session_shape)
                       : rng.pareto(config_.gap_min, config_.gap_shape);
  }
}

void SessionChurn::tick(Rng& rng) {
  // New nodes spawned by other mechanisms get a fresh session.
  if (deadline_.size() < cluster_.size()) {
    const std::size_t old_size = deadline_.size();
    deadline_.resize(cluster_.size());
    for (std::size_t u = old_size; u < deadline_.size(); ++u) {
      deadline_[u] = rng.pareto(config_.session_min, config_.session_shape);
    }
  }

  for (NodeId u = 0; u < cluster_.size(); ++u) {
    deadline_[u] -= 1.0;
    if (deadline_[u] > 0.0) continue;
    if (cluster_.live(u)) {
      if (cluster_.live_count() <= config_.min_live) {
        // Postpone the departure; the floor protects the experiment, not
        // the protocol.
        deadline_[u] = 1.0;
        continue;
      }
      cluster_.kill(u);
      ++departures_;
      deadline_[u] = rng.pareto(config_.gap_min, config_.gap_shape);
    } else {
      try {
        rejoin_node(cluster_, u, factory_, config_.rejoin_degree, rng,
                    probe_loss_);
        ++rejoins_;
        deadline_[u] = rng.pareto(config_.session_min, config_.session_shape);
      } catch (const std::exception&) {
        // Not enough live contacts right now; retry shortly.
        deadline_[u] = 1.0;
      }
    }
  }
}

}  // namespace gossip::sim
