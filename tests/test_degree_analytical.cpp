#include "analysis/degree_analytical.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/stats.hpp"

namespace gossip::analysis {
namespace {

TEST(DegreeAnalytical, PmfIsNormalized) {
  for (const std::size_t dm : {2u, 6u, 30u, 90u, 270u}) {
    const auto pmf = analytical_outdegree_pmf(dm);
    ASSERT_EQ(pmf.size(), dm + 1);
    double total = 0.0;
    for (const double p : pmf) total += p;
    EXPECT_NEAR(total, 1.0, 1e-10) << "dm=" << dm;
  }
}

TEST(DegreeAnalytical, OddOutdegreesImpossible) {
  const auto pmf = analytical_outdegree_pmf(30);
  for (std::size_t d = 1; d <= 30; d += 2) {
    EXPECT_DOUBLE_EQ(pmf[d], 0.0);
  }
}

TEST(DegreeAnalytical, MeanIsOneThirdOfSumDegree) {
  // Lemma 6.3: average in/outdegree is dm / 3.
  for (const std::size_t dm : {30u, 90u, 150u}) {
    const auto out = pmf_moments(analytical_outdegree_pmf(dm));
    EXPECT_NEAR(out.mean, static_cast<double>(dm) / 3.0, 0.35) << "dm=" << dm;
    const auto in = pmf_moments(analytical_indegree_pmf(dm));
    EXPECT_NEAR(in.mean, static_cast<double>(dm) / 3.0, 0.2) << "dm=" << dm;
    EXPECT_DOUBLE_EQ(analytical_mean_degree(dm),
                     static_cast<double>(dm) / 3.0);
  }
}

TEST(DegreeAnalytical, IndegreeIsMirroredOutdegree) {
  constexpr std::size_t kDm = 30;
  const auto out = analytical_outdegree_pmf(kDm);
  const auto in = analytical_indegree_pmf(kDm);
  ASSERT_EQ(in.size(), kDm / 2 + 1);
  for (std::size_t i = 0; i <= kDm / 2; ++i) {
    EXPECT_DOUBLE_EQ(in[i], out[kDm - 2 * i]);
  }
}

TEST(DegreeAnalytical, SmallCaseByHand) {
  // dm = 2: a(0) = C(2,0)*C(2,1) = 2; a(2) = C(2,2)*C(0,0) = 1.
  const auto pmf = analytical_outdegree_pmf(2);
  EXPECT_NEAR(pmf[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pmf[2], 1.0 / 3.0, 1e-12);
}

TEST(DegreeAnalytical, IndegreeVarianceBelowBinomial) {
  // The Fig 6.1 claim: S&F indegree is more concentrated than a binomial
  // with the same mean over the same support.
  constexpr std::size_t kDm = 90;
  const auto in = pmf_moments(analytical_indegree_pmf(kDm));
  // Matching binomial over 0..45 with the same mean has variance
  // n p (1-p) with n=45, p = mean/45.
  const double p = in.mean / 45.0;
  EXPECT_LT(in.variance, 45.0 * p * (1.0 - p));
}

TEST(DegreeAnalytical, RejectsInvalidSumDegree) {
  EXPECT_THROW(analytical_outdegree_pmf(0), std::invalid_argument);
  EXPECT_THROW(analytical_outdegree_pmf(7), std::invalid_argument);
  EXPECT_THROW(analytical_indegree_pmf(1), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::analysis
