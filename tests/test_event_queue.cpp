#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gossip::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (q.run_next()) {
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int executed = 0;
  q.schedule(1.0, [&] { ++executed; });
  q.schedule(2.0, [&] { ++executed; });
  q.schedule(3.0, [&] { ++executed; });
  EXPECT_EQ(q.run_until(2.0), 2u);
  EXPECT_EQ(executed, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWithoutEvents) {
  EventQueue q;
  EXPECT_EQ(q.run_until(10.0), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule(q.now() + 1.0, [&] { ++fired; });
  });
  q.run_until(5.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PeekTime) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.peek_time(), 0.0);
  q.schedule(4.5, [] {});
  EXPECT_DOUBLE_EQ(q.peek_time(), 4.5);
}

TEST(EventQueue, Clear) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, RunNextOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.run_next());
}

}  // namespace
}  // namespace gossip::sim
