// bench_report — benchmark-trajectory harness.
//
// Several modes, each emitting a machine-readable JSON baseline so every
// future PR has a perf trajectory to diff against:
//
//   ./bench_report [output.json]            # scale: BENCH_scale.json
//   ./bench_report --analysis [out.json]    # solvers: BENCH_analysis.json
//   ./bench_report --telemetry [out.json]   # obs: BENCH_telemetry.json
//   ./bench_report --drift [out.json]       # oracle: BENCH_drift.json
//   ./bench_report --chaos [out.json]       # faults: BENCH_chaos.json
//   ./bench_report --forensics [out.json]   # analyze: BENCH_forensics.json
//   ./bench_report --arena [out.json]       # detectors: BENCH_arena.json
//   ./bench_report [--mode] --quick         # reduced sizes, for smoke tests
//
// Every output carries a schema_version / tool / git header so baselines
// are traceable to the tree that produced them. Writing a BENCH_* baseline
// from a dirty tree is refused (the header would record "…-dirty", which
// tools/check_bench.py rejects); pass --allow-dirty to override for local
// experiments.
//
// Scale mode runs the simulation drivers (sequential RoundDriver vs the
// sharded flat driver at several n / thread counts) and records
// actions/sec and RSS. Runs with more shards than hardware threads are
// flagged "oversubscribed": their speedups measure scheduling overlap,
// not parallel hardware, and must not be read as core-scaling numbers.
//
// Analysis mode benchmarks the §6/§7 solver stack: the §6.2 degree-MC
// ℓ-sweep solved twice — once with the seed-faithful baseline
// configuration (damped outer fixed point, classic inner power iteration,
// cold start per point) and once with the accelerated pipeline (Anderson
// outer + Anderson inner + warm-started sweep) — plus the exhaustive §7
// global MC build, the §7.5 mixing measurement, and the spectral-gap
// power iteration. Solutions of the two degree-MC configurations are
// cross-checked in-process (max mean-indegree difference is part of the
// report).
//
// Telemetry mode exercises the full observability stack on a sharded run
// (round time-series, invariant watchdog, per-phase profiler) plus an
// instrumented degree-MC + spectral solve, and dumps everything as JSON.
// Scale mode additionally re-runs the largest sharded configuration with
// observers attached and records the overhead as obs_overhead_pct, and the
// single-thread gate pair with the flight recorder attached
// (recorder_overhead_pct, gated < 2% like the registry).
//
// Drift mode runs the TheoryOracle against two sharded simulations: one
// correctly parameterized (predictions and simulation both at ℓ = 0.02 —
// must finish with zero drift violations) and one deliberately
// mis-parameterized (simulating ℓ = 0.10 against ℓ = 0.02 predictions —
// must escalate the DriftMonitor to VIOLATION and dump the armed flight
// recorder). Both outcomes are gates in BENCH_drift.json.
//
// Chaos mode drives the deterministic fault plane through four sharded
// legs and gates on the RecoveryTracker's measured time-to-recover: a
// symmetric 20-round partition that must heal within budget, a 20% mass
// kill that must recover within budget, a regional Gilbert-Elliott burst
// the overlay must ride out without ending degraded, and an *undeclared*
// loss spike under an attached TheoryOracle that must still trip the
// DriftMonitor (the fault plane must not blunt drift detection).
//
// Forensics mode runs three chaos legs with known injected causes, records
// the full artifact set in memory (flight dump, snapshot stream, chaos
// report), and gates the post-mortem engine: the RootCauseAttributor must
// pin every incident on the injected cause with zero unknowns, the JSON
// report must render bit-identically twice, and the analysis must fit a
// wall-clock budget.
//
// Arena mode runs the failure-detector competition (S&F washout vs SWIM vs
// all-to-all heartbeats) through the ArenaDriver across a protocol ×
// scenario × loss matrix, each leg twice back-to-back, and gates on SWIM's
// detection completeness / false-positive budget, S&F's recovery budgets
// (the same round counts BENCH_chaos.json commits), and per-leg
// fingerprint determinism.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/degree_mc.hpp"
#include "analysis/global_mc.hpp"
#include "analysis/mean_field.hpp"
#include "analysis/mixing.hpp"
#include "analysis/prediction.hpp"
#include "core/baselines/all_to_all.hpp"
#include "core/baselines/swim.hpp"
#include "core/flat_send_forget.hpp"
#include "core/send_forget.hpp"
#include "graph/digraph.hpp"
#include "graph/graph_gen.hpp"
#include "graph/spectral.hpp"
#include "obs/detection.hpp"
#include "obs/export/snapshot.hpp"
#include "obs/forensics/attribution.hpp"
#include "obs/forensics/causal_index.hpp"
#include "obs/forensics/report.hpp"
#include "obs/forensics/run_archive.hpp"
#include "obs/oracle/flight_recorder.hpp"
#include "obs/oracle/theory_oracle.hpp"
#include "obs/profiler.hpp"
#include "obs/recovery.hpp"
#include "obs/solver_telemetry.hpp"
#include "obs/timeseries.hpp"
#include "obs/watchdog.hpp"
#include "sim/arena_driver.hpp"
#include "sim/churn.hpp"
#include "sim/cluster.hpp"
#include "sim/fault_plane.hpp"
#include "sim/retune.hpp"
#include "sim/round_driver.hpp"
#include "sim/sharded_driver.hpp"

#ifndef GOSSIP_GIT_DESCRIBE
#define GOSSIP_GIT_DESCRIBE "unknown"
#endif

namespace {

using namespace gossip;
using Clock = std::chrono::steady_clock;

constexpr int kSchemaVersion = 2;

// Shared JSON header: identifies the schema, the tool, and the tree that
// produced the baseline. `benchmark` distinguishes the three modes.
void emit_header(std::ofstream& out, const char* benchmark) {
  out << "{\n";
  out << "  \"benchmark\": \"" << benchmark << "\",\n";
  out << "  \"schema_version\": " << kSchemaVersion << ",\n";
  out << "  \"tool\": \"bench_report\",\n";
  out << "  \"git\": \"" << GOSSIP_GIT_DESCRIBE << "\",\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
}

// Current resident set size in MiB, from /proc/self/status (0 elsewhere).
double rss_mib() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::stod(line.substr(6)) / 1024.0;  // value is in kB
    }
  }
#endif
  return 0.0;
}

struct BenchResult {
  std::string driver;
  std::size_t n = 0;
  std::size_t shards = 0;   // logical shards (determinism unit)
  std::size_t threads = 0;  // worker threads executing them
  std::size_t rounds = 0;
  std::uint64_t actions = 0;
  double seconds = 0.0;
  double actions_per_sec = 0.0;
  double rss_mb = 0.0;
  // RSS growth across cluster+driver construction and the run, per node.
  // The footprint gate for the 10M leg (<= 220 B/node in check_bench.py);
  // measured as a delta so earlier legs' allocator noise is excluded.
  double bytes_per_node = 0.0;
};

// One sharded-leg configuration. Logical shards are the determinism unit
// (fingerprints depend on them); threads only decide how many workers
// execute the shard blocks. Running many shards on one thread is the packed
// engine's fast path: each shard's slab slice is small enough to stay
// cache-resident through its initiate/drain phases, and cross-shard traffic
// moves through the batch-frame mailboxes in destination-major runs.
struct ShardedLegSpec {
  std::size_t n = 0;
  std::size_t shards = 1;
  std::size_t threads = 1;
  std::size_t rounds = 0;
  std::size_t pairs = 1;     // §5 batched messages (2p ids per push)
  bool cyclic_seed = false;  // install_slot circulant seeding (no Digraph)
};

BenchResult run_sequential(std::size_t n, std::size_t rounds) {
  Rng rng(7 + n);
  const auto factory = [](NodeId id) {
    return std::make_unique<SendForget>(id, default_send_forget_config());
  };
  sim::Cluster cluster(n, factory);
  // Seed at dL, the paper's join outdegree (§6.5): the overlay then starts
  // inside the Obs 5.1 envelope and reaches its steady state quickly.
  cluster.install_graph(
      permutation_regular(n, default_send_forget_config().min_degree, rng));
  sim::UniformLoss loss(0.02);
  sim::RoundDriver driver(cluster, loss, rng);
  sim::ChurnProcess churn(cluster, factory, 18, 1.0, 1.0, n / 2);

  const auto start = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    churn.maybe_churn(rng);
    driver.run_rounds(1);
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  BenchResult result;
  result.driver = "sequential";
  result.n = n;
  result.shards = 1;
  result.threads = 1;
  result.rounds = rounds;
  result.actions = driver.actions_executed();
  result.seconds = elapsed;
  result.actions_per_sec =
      static_cast<double>(driver.actions_executed()) / elapsed;
  result.rss_mb = rss_mib();
  return result;
}

// Four variants of the identical simulation (neither counting, recording,
// nor observation draws any RNG, so all four execute the same action
// sequence):
//   kNoopCounters  counter writes compiled out of the hot path — the
//                  no-op-sink baseline;
//   kBare          registry counting on (the default everywhere);
//   kRecorder      counting plus the flight recorder's per-event ring
//                  append on every protocol event;
//   kObserved      counting plus time-series recorder, watchdog, and phase
//                  profiler at stride 10.
// bare-vs-noop is the registry hot-path overhead and recorder-vs-bare the
// flight-recorder hot-path overhead (each gated < 2% in BENCH_scale.json);
// observed-vs-bare is the strided sampling cost, reported for transparency
// and amortizable by raising the stride.
enum class ShardedMode { kNoopCounters, kBare, kRecorder, kObserved };

BenchResult run_sharded(const ShardedLegSpec& leg,
                        ShardedMode mode = ShardedMode::kBare,
                        std::uint64_t actions_hint = 0) {
  const bool observed = mode == ShardedMode::kObserved;
  const std::size_t n = leg.n;
  const double rss_before = rss_mib();
  Rng rng(7 + n);
  const SendForgetConfig cfg = default_send_forget_config();
  FlatSendForgetCluster cluster(
      n, cfg,
      FlatClusterOptions{.pairs_per_message = leg.pairs,
                         .init_threads = leg.threads});
  if (leg.cyclic_seed) {
    // Circulant seeding at dL: slot j of node u holds (u + j + 1) mod n.
    // Each offset is a permutation of the id space, so the overlay starts
    // dL-regular exactly like the permutation_regular seeding — but with no
    // Digraph materialized, whose vector-of-vectors adjacency would dwarf
    // the packed slab itself at n = 10^7.
    for (NodeId u = 0; u < n; ++u) {
      for (std::size_t j = 0; j < cfg.min_degree; ++j) {
        cluster.install_slot(
            u, j, static_cast<NodeId>((u + j + 1) % n));
      }
    }
  } else {
    // dL-seeded like run_sequential: Obs 5.1 holds from round 0.
    const Digraph g = permutation_regular(n, cfg.min_degree, rng);
    for (NodeId u = 0; u < n; ++u) {
      cluster.install_view(u, g.out_neighbors(u));
    }
  }
  sim::ShardedDriver driver(
      cluster,
      sim::ShardedDriverConfig{
          .shard_count = leg.shards,
          .thread_count = leg.threads,
          .loss_rate = 0.02,
          .seed = 7 + n,
          .count_metrics = mode != ShardedMode::kNoopCounters});
  obs::RoundTimeSeries series(10);
  obs::InvariantWatchdog watchdog(obs::WatchdogConfig{
      .min_degree = cfg.min_degree, .view_size = cfg.view_size});
  obs::PhaseProfiler profiler(leg.shards);
  obs::FlightRecorder recorder(leg.shards);
  if (observed) {
    driver.attach_time_series(&series);
    driver.attach_watchdog(&watchdog);
    driver.attach_profiler(&profiler);
  }
  if (mode == ShardedMode::kRecorder) {
    driver.attach_flight_recorder(&recorder);
  }
  std::vector<NodeId> dead;
  const auto start = Clock::now();
  for (std::size_t r = 0; r < leg.rounds; ++r) {
    Rng& crng = driver.churn_rng();
    const auto victim = static_cast<NodeId>(crng.uniform(n));
    if (cluster.live(victim) && cluster.live_count() > n / 2) {
      driver.kill(victim);
      dead.push_back(victim);
    }
    if (!dead.empty() && crng.bernoulli(0.5)) {
      driver.revive(dead.back());
      dead.pop_back();
    }
    driver.run_rounds(1);
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (observed && watchdog.violation_count() > 0) {
    std::fprintf(stderr, "%s", watchdog.report().c_str());
  }
  // The no-op run counts nothing; its twin bare run supplies the action
  // count (identical schedule).
  const std::uint64_t actions = mode == ShardedMode::kNoopCounters
                                    ? actions_hint
                                    : driver.actions_executed();
  std::string name = observed ? "sharded_flat_observed"
                     : mode == ShardedMode::kNoopCounters
                         ? "sharded_flat_noop_counters"
                     : mode == ShardedMode::kRecorder
                         ? "sharded_flat_recorder"
                         : "sharded_flat";
  if (leg.pairs > 1) name += "_p" + std::to_string(leg.pairs);
  const double rss_after = rss_mib();
  BenchResult result{std::move(name),
                     n,
                     leg.shards,
                     leg.threads,
                     leg.rounds,
                     actions,
                     elapsed,
                     static_cast<double>(actions) / elapsed,
                     rss_after,
                     std::max(0.0, rss_after - rss_before) * 1024.0 * 1024.0 /
                         static_cast<double>(n)};
  return result;
}

// Gate overheads measured by the paired/median protocol (see
// gate_overhead_run below); the per-result table alone cannot reproduce
// them, so they arrive precomputed.
struct GateOverheads {
  double registry_pct = 0.0;
  double recorder_pct = 0.0;
  std::size_t ref_n = 0;
};

bool emit_json(const std::vector<BenchResult>& results,
               const std::string& path, const GateOverheads& gates) {
  const std::size_t hw = std::thread::hardware_concurrency();
  std::ofstream out(path);
  emit_header(out, "scale_trajectory");
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    char buf[640];
    std::snprintf(buf, sizeof(buf),
                  "    {\"driver\": \"%s\", \"n\": %zu, \"shards\": %zu, "
                  "\"threads\": %zu, "
                  "\"rounds\": %zu, \"actions\": %llu, \"seconds\": %.3f, "
                  "\"actions_per_sec\": %.4g, \"rss_mb\": %.1f, "
                  "\"bytes_per_node\": %.1f, "
                  "\"oversubscribed\": %s}%s\n",
                  r.driver.c_str(), r.n, r.shards, r.threads, r.rounds,
                  static_cast<unsigned long long>(r.actions), r.seconds,
                  r.actions_per_sec, r.rss_mb, r.bytes_per_node,
                  r.threads > hw ? "true" : "false",
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";

  // Headline ratio: sharded (max threads benched) vs sequential at the
  // largest n both drivers ran. Always the *measured* value from this run
  // — never hand-edited — with the shard count and oversubscription state
  // of the winning configuration recorded next to it.
  double seq = 0.0;
  double sharded = 0.0;
  std::size_t ref_n = 0;
  std::size_t best_threads = 0;
  double sharded_1t = 0.0;  // best single-worker leg at ref_n
  for (const BenchResult& r : results) {
    if (r.driver == "sequential" && r.n >= ref_n) {
      ref_n = r.n;
      seq = r.actions_per_sec;
    }
  }
  for (const BenchResult& r : results) {
    if (r.driver != "sharded_flat" || r.n != ref_n) continue;
    if (r.actions_per_sec > sharded) {
      sharded = r.actions_per_sec;
      best_threads = r.threads;
    }
    if (r.threads == 1 && r.actions_per_sec > sharded_1t) {
      sharded_1t = r.actions_per_sec;
    }
  }
  // Instrumentation overheads. All variants execute the identical action
  // sequence (neither counting nor observation draws RNG):
  //   registry_overhead_pct  counting vs no-op-sink baseline — the
  //                          hot-path cost of the registry. Gate: < 2%.
  //   recorder_overhead_pct  flight recorder attached vs bare — one ring
  //                          store per message fate. Gate: < 2%.
  //   obs_overhead_pct       observed (stride-10 sampling: O(n*s) probe,
  //                          watchdog scan) vs bare — reported for
  //                          transparency, amortized by raising the stride.
  // The two gated values come from the paired/median protocol in
  // gate_overhead_run; obs is informational and computed from the table.
  const auto overhead_vs = [&results](const char* base_name,
                                      const char* variant_name,
                                      std::size_t& out_ref_n) {
    double pct = 0.0;
    out_ref_n = 0;
    for (const BenchResult& a : results) {
      if (a.driver != base_name) continue;
      for (const BenchResult& b : results) {
        if (b.driver == variant_name && b.n == a.n && b.shards == a.shards &&
            b.threads == a.threads && a.n >= out_ref_n &&
            a.actions_per_sec > 0.0) {
          out_ref_n = a.n;
          pct = 100.0 * (1.0 - b.actions_per_sec / a.actions_per_sec);
        }
      }
    }
    return pct;
  };
  const std::size_t reg_ref_n = gates.ref_n;
  const std::size_t rec_ref_n = gates.ref_n;
  std::size_t obs_ref_n = 0;
  const double registry_overhead_pct = gates.registry_pct;
  const double recorder_overhead_pct = gates.recorder_pct;
  const double obs_overhead_pct =
      overhead_vs("sharded_flat", "sharded_flat_observed", obs_ref_n);

  char tail[1024];
  std::snprintf(tail, sizeof(tail),
                "  \"registry_overhead_pct\": %.2f,\n"
                "  \"registry_overhead_ref_n\": %zu,\n"
                "  \"recorder_overhead_pct\": %.2f,\n"
                "  \"recorder_overhead_ref_n\": %zu,\n"
                "  \"obs_overhead_pct\": %.2f,\n"
                "  \"obs_overhead_ref_n\": %zu,\n"
                "  \"speedup_vs_sequential_at_n%zu\": %.2f,\n"
                "  \"speedup_threads\": %zu,\n"
                "  \"speedup_oversubscribed\": %s",
                registry_overhead_pct, reg_ref_n, recorder_overhead_pct,
                rec_ref_n, obs_overhead_pct, obs_ref_n,
                ref_n, seq > 0.0 ? sharded / seq : 0.0, best_threads,
                best_threads > hw ? "true" : "false");
  out << tail;
  if (best_threads > hw && sharded_1t > 0.0) {
    // The winning configuration is oversubscribed (scheduling overlap, not
    // core scaling) — also emit the single-worker pair, which measures real
    // per-thread throughput and is directly comparable across machines.
    std::snprintf(tail, sizeof(tail),
                  ",\n  \"speedup_vs_sequential_at_n%zu_1t\": %.2f",
                  ref_n, seq > 0.0 ? sharded_1t / seq : 0.0);
    out << tail;
  }
  out << "\n}\n";
  return static_cast<bool>(out);
}

// --------------------------------------------------------------------------
// Analysis-pipeline benchmarks (--analysis).

struct DegreePoint {
  double loss = 0.0;
  double seconds = 0.0;
  std::size_t outer = 0;
  std::size_t inner = 0;
  double mean_in = 0.0;
  double sd_in = 0.0;
};

struct DegreeRun {
  std::string solver;
  double seconds = 0.0;
  std::vector<DegreePoint> points;
  [[nodiscard]] std::size_t total_outer() const {
    std::size_t sum = 0;
    for (const DegreePoint& p : points) sum += p.outer;
    return sum;
  }
  [[nodiscard]] std::size_t total_inner() const {
    std::size_t sum = 0;
    for (const DegreePoint& p : points) sum += p.inner;
    return sum;
  }
};

DegreePoint degree_point(double loss, double seconds,
                         const analysis::DegreeMcResult& r) {
  double var = 0.0;
  for (std::size_t i = 0; i < r.in_pmf.size(); ++i) {
    const double d = static_cast<double>(i) - r.expected_in;
    var += r.in_pmf[i] * d * d;
  }
  return DegreePoint{loss,       seconds,          r.fixed_point_iterations,
                     r.stationary_iterations, r.expected_in,
                     std::sqrt(var)};
}

// The seed-faithful baseline: damped outer fixed point, classic inner
// power iteration, every loss point solved cold.
DegreeRun run_degree_baseline(analysis::DegreeMcParams params,
                              const std::vector<double>& losses) {
  params.acceleration = analysis::DegreeMcAcceleration::kDamped;
  params.accelerated_stationary = false;
  DegreeRun run;
  run.solver = "damped_outer+power_inner+cold_start";
  for (const double loss : losses) {
    params.loss = loss;
    const auto start = Clock::now();
    const auto r = analysis::solve_degree_mc(params);
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    run.points.push_back(degree_point(loss, elapsed, r));
    run.seconds += elapsed;
  }
  return run;
}

// The accelerated pipeline: Anderson outer + Anderson inner, one solver,
// warm-started across the sweep.
DegreeRun run_degree_accelerated(const analysis::DegreeMcParams& params,
                                 const std::vector<double>& losses) {
  DegreeRun run;
  run.solver = "anderson_outer+anderson_inner+warm_sweep";
  const auto start = Clock::now();
  const auto results = analysis::solve_degree_mc_sweep(params, losses);
  run.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  for (std::size_t i = 0; i < losses.size(); ++i) {
    run.points.push_back(degree_point(losses[i], 0.0, results[i]));
  }
  return run;
}

bool emit_analysis_json(bool quick, const std::string& path) {
  // Degree MC ℓ-sweep at the paper's running example (reduced for --quick).
  analysis::DegreeMcParams dp;
  dp.view_size = quick ? 20 : 40;
  dp.min_degree = quick ? 8 : 18;
  const std::vector<double> losses =
      quick ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.01, 0.05, 0.1};

  std::printf("degree MC baseline (damped, power, cold)...\n");
  const DegreeRun before = run_degree_baseline(dp, losses);
  std::printf("  %.3f s, outer %zu, inner %zu\n", before.seconds,
              before.total_outer(), before.total_inner());
  std::printf("degree MC accelerated (anderson, warm sweep)...\n");
  const DegreeRun after = run_degree_accelerated(dp, losses);
  std::printf("  %.3f s, outer %zu, inner %zu\n", after.seconds,
              after.total_outer(), after.total_inner());

  double max_mean_diff = 0.0;
  for (std::size_t i = 0; i < losses.size(); ++i) {
    max_mean_diff = std::max(
        max_mean_diff,
        std::abs(before.points[i].mean_in - after.points[i].mean_in));
  }

  // Mean-field fast path: same box, same ℓ points, timed against the
  // accelerated exact sweep above and validated per point (degree-marginal
  // TVD, dup/del relative error) against exact solves.
  std::printf("mean-field fast path...\n");
  const analysis::MeanFieldParams mf_params = analysis::mean_field_params(dp);
  const auto mf_start = Clock::now();
  const auto mf_results = analysis::solve_mean_field_sweep(mf_params, losses);
  const double mf_seconds =
      std::chrono::duration<double>(Clock::now() - mf_start).count();
  const double mf_speedup =
      mf_seconds > 0.0 ? after.seconds / mf_seconds : 0.0;

  struct MfPoint {
    double loss = 0.0;
    double tvd_out = 0.0;
    double tvd_in = 0.0;
    double dup_rel_err = 0.0;
    double del_rel_err = 0.0;
    bool converged = false;
    std::size_t closure_iterations = 0;
    std::size_t refinement_iterations = 0;
  };
  const auto tvd = [](const std::vector<double>& a,
                      const std::vector<double>& b) {
    double t = 0.0;
    const std::size_t m = std::max(a.size(), b.size());
    for (std::size_t k = 0; k < m; ++k) {
      const double av = k < a.size() ? a[k] : 0.0;
      const double bv = k < b.size() ? b[k] : 0.0;
      t += std::abs(av - bv);
    }
    return 0.5 * t;
  };
  const auto rel_err = [](double approx, double exact) {
    return exact > 0.0 ? std::abs(approx - exact) / exact
                       : std::abs(approx - exact);
  };
  std::vector<MfPoint> mf_points;
  {
    const auto exact = analysis::solve_degree_mc_sweep(dp, losses);
    for (std::size_t i = 0; i < losses.size(); ++i) {
      MfPoint p;
      p.loss = losses[i];
      p.tvd_out = tvd(mf_results[i].out_pmf, exact[i].out_pmf);
      p.tvd_in = tvd(mf_results[i].in_pmf, exact[i].in_pmf);
      p.dup_rel_err = rel_err(mf_results[i].duplication_probability,
                              exact[i].duplication_probability);
      p.del_rel_err = rel_err(mf_results[i].deletion_probability,
                              exact[i].deletion_probability);
      p.converged = mf_results[i].converged;
      p.closure_iterations = mf_results[i].closure_iterations;
      p.refinement_iterations = mf_results[i].refinement_iterations;
      mf_points.push_back(p);
    }
  }
  double mf_max_tvd = 0.0;
  for (const MfPoint& p : mf_points) {
    mf_max_tvd = std::max(mf_max_tvd, std::max(p.tvd_out, p.tvd_in));
  }
  std::printf("  %.4f s (%.1fx vs exact sweep), max TVD %.2g\n", mf_seconds,
              mf_speedup, mf_max_tvd);

  // Prediction-cache demonstration: the first kMeanField call per (params,
  // delta) solves, the repeat is served from the cache.
  analysis::clear_prediction_cache();
  {
    analysis::DegreeMcParams cp = dp;
    cp.loss = losses.front();
    (void)analysis::make_theory_prediction(
        cp, 0.01, analysis::PredictionSource::kMeanField);
    (void)analysis::make_theory_prediction(
        cp, 0.01, analysis::PredictionSource::kMeanField);
  }
  const analysis::PredictionCacheStats cache_stats =
      analysis::prediction_cache_stats();

  // Exhaustive global MC: n = 4 ring + reverse-ring, no loss (the
  // Lemma 7.5 chain). Quick mode shrinks to n = 3.
  const std::size_t gn = quick ? 3 : 4;
  analysis::GlobalMcParams gp;
  gp.config = SendForgetConfig{.view_size = 6, .min_degree = 0};
  gp.loss = 0.0;
  Digraph init(gn);
  for (NodeId u = 0; u < gn; ++u) {
    init.add_edge(u, static_cast<NodeId>((u + 1) % gn));
    init.add_edge(u, static_cast<NodeId>((u + gn - 1) % gn));
  }
  gp.initial = init;
  std::printf("global MC (n=%zu)...\n", gn);
  auto g_start = Clock::now();
  const auto gr = analysis::build_global_mc(gp);
  const double g_seconds =
      std::chrono::duration<double>(Clock::now() - g_start).count();
  std::printf("  %.3f s, %zu states, %zu transitions\n", g_seconds,
              gr.states.size(), gr.chain.transition_count());

  // Mixing measurement on the same chain.
  const std::size_t mixing_steps = quick ? 50 : 200;
  auto m_start = Clock::now();
  const auto mr = analysis::measure_mixing(gr.chain, gr.stationary.distribution,
                                           mixing_steps, 0.01);
  const double m_seconds =
      std::chrono::duration<double>(Clock::now() - m_start).count();
  std::printf("mixing: %.3f s, tau_eps=%zu\n", m_seconds, mr.tau_epsilon);

  // Spectral gap of a random permutation-regular overlay.
  const std::size_t sn = quick ? 20'000 : 200'000;
  Rng rng(11);
  const Digraph overlay = permutation_regular(sn, 10, rng);
  auto s_start = Clock::now();
  const auto sr = estimate_spectral_gap(overlay);
  const double s_seconds =
      std::chrono::duration<double>(Clock::now() - s_start).count();
  std::printf("spectral (n=%zu): %.3f s, lambda2=%.4f, %zu iters\n", sn,
              s_seconds, sr.lambda2, sr.iterations);

  std::ofstream out(path);
  emit_header(out, "analysis_pipeline");
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";

  auto emit_run = [&out](const char* key, const DegreeRun& run,
                         bool per_point_seconds) {
    out << "    \"" << key << "\": {\n";
    out << "      \"solver\": \"" << run.solver << "\",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf), "      \"seconds\": %.3f,\n", run.seconds);
    out << buf;
    out << "      \"outer_iterations\": " << run.total_outer() << ",\n";
    out << "      \"inner_iterations\": " << run.total_inner() << ",\n";
    out << "      \"points\": [\n";
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      const DegreePoint& p = run.points[i];
      if (per_point_seconds) {
        std::snprintf(buf, sizeof(buf),
                      "        {\"loss\": %g, \"seconds\": %.3f, "
                      "\"outer\": %zu, \"inner\": %zu, "
                      "\"mean_in\": %.12f, \"sd_in\": %.12f}%s\n",
                      p.loss, p.seconds, p.outer, p.inner, p.mean_in, p.sd_in,
                      i + 1 < run.points.size() ? "," : "");
      } else {
        std::snprintf(buf, sizeof(buf),
                      "        {\"loss\": %g, \"outer\": %zu, \"inner\": %zu, "
                      "\"mean_in\": %.12f, \"sd_in\": %.12f}%s\n",
                      p.loss, p.outer, p.inner, p.mean_in, p.sd_in,
                      i + 1 < run.points.size() ? "," : "");
      }
      out << buf;
    }
    out << "      ]\n";
    out << "    }";
  };

  out << "  \"degree_mc\": {\n";
  out << "    \"view_size\": " << dp.view_size << ",\n";
  out << "    \"min_degree\": " << dp.min_degree << ",\n";
  emit_run("before", before, true);
  out << ",\n";
  emit_run("after", after, false);
  out << ",\n";
  char buf[512];
  const double wall_speedup =
      after.seconds > 0.0 ? before.seconds / after.seconds : 0.0;
  const double outer_ratio =
      after.total_outer() > 0
          ? static_cast<double>(before.total_outer()) /
                static_cast<double>(after.total_outer())
          : 0.0;
  const double inner_ratio =
      after.total_inner() > 0
          ? static_cast<double>(before.total_inner()) /
                static_cast<double>(after.total_inner())
          : 0.0;
  std::snprintf(buf, sizeof(buf),
                "    \"wall_speedup\": %.2f,\n"
                "    \"outer_iteration_ratio\": %.2f,\n"
                "    \"inner_iteration_ratio\": %.2f,\n"
                "    \"max_mean_indegree_diff\": %.3g\n  },\n",
                wall_speedup, outer_ratio, inner_ratio, max_mean_diff);
  out << buf;

  out << "  \"mean_field\": {\n";
  out << "    \"view_size\": " << dp.view_size << ",\n";
  out << "    \"min_degree\": " << dp.min_degree << ",\n";
  std::snprintf(buf, sizeof(buf),
                "    \"seconds\": %.6f,\n"
                "    \"exact_seconds\": %.6f,\n"
                "    \"speedup_vs_exact\": %.2f,\n",
                mf_seconds, after.seconds, mf_speedup);
  out << buf;
  out << "    \"points\": [\n";
  for (std::size_t i = 0; i < mf_points.size(); ++i) {
    const MfPoint& p = mf_points[i];
    std::snprintf(buf, sizeof(buf),
                  "      {\"loss\": %g, \"tvd_out\": %.3g, "
                  "\"tvd_in\": %.3g, \"dup_rel_err\": %.3g, "
                  "\"del_rel_err\": %.3g, \"converged\": %s, "
                  "\"closure_iterations\": %zu, "
                  "\"refinement_iterations\": %zu}%s\n",
                  p.loss, p.tvd_out, p.tvd_in, p.dup_rel_err, p.del_rel_err,
                  p.converged ? "true" : "false", p.closure_iterations,
                  p.refinement_iterations,
                  i + 1 < mf_points.size() ? "," : "");
    out << buf;
  }
  out << "    ],\n";
  std::snprintf(buf, sizeof(buf),
                "    \"cache\": {\"hits\": %llu, \"misses\": %llu}\n  },\n",
                static_cast<unsigned long long>(cache_stats.hits),
                static_cast<unsigned long long>(cache_stats.misses));
  out << buf;

  std::snprintf(buf, sizeof(buf),
                "  \"global_mc\": {\"n\": %zu, \"states\": %zu, "
                "\"transitions\": %zu, \"seconds\": %.3f, "
                "\"stationary_iterations\": %zu, "
                "\"simple_state_uniformity_deviation\": %.3g},\n",
                gn, gr.states.size(), gr.chain.transition_count(), g_seconds,
                gr.stationary.iterations,
                gr.simple_state_uniformity_deviation);
  out << buf;
  char tau[32];
  if (mr.tau_epsilon == static_cast<std::size_t>(-1)) {
    std::snprintf(tau, sizeof(tau), "null");  // not reached within steps
  } else {
    std::snprintf(tau, sizeof(tau), "%zu", mr.tau_epsilon);
  }
  std::snprintf(buf, sizeof(buf),
                "  \"mixing\": {\"states\": %zu, \"steps\": %zu, "
                "\"seconds\": %.3f, \"tau_epsilon\": %s, "
                "\"decay_rate\": %.4f},\n",
                gr.states.size(), mixing_steps, m_seconds, tau,
                mr.decay_rate);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"spectral\": {\"n\": %zu, \"seconds\": %.3f, "
                "\"lambda2\": %.6f, \"iterations\": %zu, "
                "\"converged\": %s}\n",
                sn, s_seconds, sr.lambda2, sr.iterations,
                sr.converged ? "true" : "false");
  out << buf << "}\n";
  std::printf("degree MC: %.2fx wall, %.2fx outer, %.2fx inner, "
              "max mean diff %.2g\n",
              wall_speedup, outer_ratio, inner_ratio, max_mean_diff);
  return static_cast<bool>(out);
}

// --------------------------------------------------------------------------
// Telemetry mode (--telemetry): exercise the full observability stack and
// dump it. One sharded run with series/watchdog/profiler attached, then an
// instrumented degree-MC solve and spectral power iteration through a
// recording solver sink.

// Exporter-overhead leg: one observed sharded run (time series attached,
// exactly like the main telemetry leg) with or without a SnapshotStreamer
// draining to a JSONL sink. Both variants share seed and schedule, so the
// fingerprints must match bit-for-bit — attaching the export plane may cost
// time but must never perturb the simulation.
struct ExportLeg {
  double actions_per_sec = 0.0;
  std::uint64_t fingerprint = 0;
  std::uint64_t snapshots = 0;
  std::size_t jsonl_bytes = 0;
  obs::HistogramQuantiles outdegree;  // from the final snapshot
};

ExportLeg run_export_leg(std::size_t n, std::size_t threads,
                         std::size_t rounds, bool with_streamer) {
  const SendForgetConfig cfg = default_send_forget_config();
  Rng rng(7 + n);
  FlatSendForgetCluster cluster(n, cfg);
  {
    const Digraph g = permutation_regular(n, cfg.min_degree, rng);
    for (NodeId u = 0; u < n; ++u) {
      cluster.install_view(u, g.out_neighbors(u));
    }
  }
  sim::ShardedDriver driver(
      cluster, sim::ShardedDriverConfig{
                   .shard_count = threads, .loss_rate = 0.02, .seed = 7 + n});
  driver.set_observation_stride(10);
  obs::RoundTimeSeries series(10);
  driver.attach_time_series(&series);

  ExportLeg leg;
  std::ostringstream jsonl;
  std::unique_ptr<obs::SnapshotStreamer> streamer;
  if (with_streamer) {
    streamer = std::make_unique<obs::SnapshotStreamer>(
        driver.metrics_registry(), obs::ExportConfig{.snapshot_stride = 1});
    streamer->add_sink(std::make_unique<obs::JsonlSnapshotSink>(jsonl));
    streamer->add_sink(std::make_unique<obs::CallbackSnapshotSink>(
        [&leg](const obs::RegistrySnapshot& snap) {
          for (const obs::SnapshotHistogram& h : snap.histograms) {
            if (h.name == "outdegree") leg.outdegree = h.quantiles;
          }
        }));
    driver.attach_streamer(streamer.get());
  }

  const auto start = Clock::now();
  driver.run_rounds(rounds);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  leg.actions_per_sec =
      seconds > 0.0 ? static_cast<double>(driver.actions_executed()) / seconds
                    : 0.0;
  leg.fingerprint = cluster.fingerprint();
  if (streamer) {
    streamer->finish();
    leg.snapshots = streamer->snapshots_taken();
    leg.jsonl_bytes = jsonl.str().size();
  }
  return leg;
}

bool emit_telemetry_json(bool quick, const std::string& path) {
  const std::size_t n = quick ? 5'000 : 50'000;
  const std::size_t threads = 4;
  // Past the 100-round watchdog warmup in both modes, so the Lemma 6.6/6.7
  // rate checks run against a steady-state window.
  const std::size_t rounds = quick ? 150 : 250;
  const std::uint64_t stride = 10;
  const SendForgetConfig cfg = default_send_forget_config();

  Rng rng(7 + n);
  FlatSendForgetCluster cluster(n, cfg);
  {
    // dL-seeded (§6.5 join outdegree): Obs 5.1 holds from round 0 and the
    // rate lemmas apply once the post-warmup window accumulates mass.
    const Digraph g = permutation_regular(n, cfg.min_degree, rng);
    for (NodeId u = 0; u < n; ++u) {
      cluster.install_view(u, g.out_neighbors(u));
    }
  }
  sim::ShardedDriver driver(
      cluster, sim::ShardedDriverConfig{
                   .shard_count = threads, .loss_rate = 0.02, .seed = 7 + n});
  obs::RoundTimeSeries series(stride);
  obs::InvariantWatchdog watchdog(obs::WatchdogConfig{
      .min_degree = cfg.min_degree, .view_size = cfg.view_size});
  obs::PhaseProfiler profiler(threads);
  driver.attach_time_series(&series);
  driver.attach_watchdog(&watchdog);
  driver.attach_profiler(&profiler);

  std::printf("telemetry: sharded n=%zu threads=%zu rounds=%zu stride=%llu\n",
              n, threads, rounds, static_cast<unsigned long long>(stride));
  std::vector<NodeId> dead;
  const auto sim_start = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    Rng& crng = driver.churn_rng();
    const auto victim = static_cast<NodeId>(crng.uniform(n));
    if (cluster.live(victim) && cluster.live_count() > n / 2) {
      driver.kill(victim);
      dead.push_back(victim);
    }
    if (!dead.empty() && crng.bernoulli(0.5)) {
      driver.revive(dead.back());
      dead.pop_back();
    }
    driver.run_rounds(1);
  }
  const double sim_seconds =
      std::chrono::duration<double>(Clock::now() - sim_start).count();
  std::printf("%s", profiler.report().c_str());
  std::printf("%s", watchdog.report().c_str());

  obs::RecordingSolverSink sink;
  analysis::DegreeMcParams dp;
  dp.view_size = quick ? 20 : 40;
  dp.min_degree = quick ? 8 : 18;
  dp.loss = 0.05;
  dp.telemetry = &sink;
  const auto d_start = Clock::now();
  const auto dr = analysis::solve_degree_mc(dp);
  const double d_seconds =
      std::chrono::duration<double>(Clock::now() - d_start).count();
  std::printf("degree MC: %zu outer, %zu inner iterations (%.3f s)\n",
              sink.iteration_count("degree_mc_outer"),
              sink.iteration_count("degree_mc_inner"), d_seconds);

  const std::size_t sn = quick ? 5'000 : 50'000;
  Rng srng(11);
  const Digraph overlay = permutation_regular(sn, 10, srng);
  SpectralOptions so;
  so.telemetry = &sink;
  const auto s_start = Clock::now();
  const auto sr = estimate_spectral_gap(overlay, so);
  const double s_seconds =
      std::chrono::duration<double>(Clock::now() - s_start).count();
  std::printf("spectral: lambda2=%.4f in %zu iterations (%.3f s)\n",
              sr.lambda2, sr.iterations, s_seconds);

  // Exporter overhead: per repetition run base then streamer-attached
  // strictly back-to-back, report the median of the per-pair percentage
  // deltas (same protocol as the scale-mode overhead gates).
  const std::size_t ex_n = quick ? 5'000 : 20'000;
  const std::size_t ex_rounds = quick ? 200 : 160;
  const std::size_t ex_reps = quick ? 5 : 5;
  std::vector<double> ex_pcts;
  ExportLeg ex_base;
  ExportLeg ex_var;
  // Discarded warmup pair: the first run pays cold caches and first-touch
  // page faults that would otherwise bias the base leg.
  (void)run_export_leg(ex_n, threads, ex_rounds, false);
  (void)run_export_leg(ex_n, threads, ex_rounds, true);
  for (std::size_t i = 0; i < ex_reps; ++i) {
    // Alternate which leg runs first so a monotone machine-speed drift
    // (thermal, noisy neighbours) cannot bias one side of every pair.
    if (i % 2 == 0) {
      ex_base = run_export_leg(ex_n, threads, ex_rounds, false);
      ex_var = run_export_leg(ex_n, threads, ex_rounds, true);
    } else {
      ex_var = run_export_leg(ex_n, threads, ex_rounds, true);
      ex_base = run_export_leg(ex_n, threads, ex_rounds, false);
    }
    if (ex_base.actions_per_sec > 0.0) {
      ex_pcts.push_back(
          100.0 * (1.0 - ex_var.actions_per_sec / ex_base.actions_per_sec));
    }
  }
  std::sort(ex_pcts.begin(), ex_pcts.end());
  const double ex_pct =
      ex_pcts.empty() ? 0.0
      : ex_pcts.size() % 2 == 1
          ? ex_pcts[ex_pcts.size() / 2]
          : 0.5 * (ex_pcts[ex_pcts.size() / 2 - 1] +
                   ex_pcts[ex_pcts.size() / 2]);
  const bool ex_fp_match = ex_base.fingerprint == ex_var.fingerprint;
  std::printf(
      "export: streamer overhead %.2f%% (n=%zu rounds=%zu reps=%zu), "
      "%llu snapshots, fingerprint %s\n",
      ex_pct, ex_n, ex_rounds, ex_reps,
      static_cast<unsigned long long>(ex_var.snapshots),
      ex_fp_match ? "match" : "MISMATCH");

  std::ofstream out(path);
  emit_header(out, "telemetry");
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"simulation\": {\n    \"driver\": \"sharded_flat\", "
                "\"n\": %zu, \"threads\": %zu, \"rounds\": %zu, "
                "\"loss\": 0.02, \"stride\": %llu, \"actions\": %llu, "
                "\"seconds\": %.3f,\n",
                n, threads, rounds, static_cast<unsigned long long>(stride),
                static_cast<unsigned long long>(driver.actions_executed()),
                sim_seconds);
  out << buf;
  out << "    \"series\": ";
  series.write_json(out);
  out << ",\n    \"watchdog\": ";
  watchdog.write_json(out);
  out << ",\n    \"phases\": ";
  profiler.write_json(out);
  out << ",\n    \"registry\": ";
  driver.metrics_registry().write_json(out);
  out << "\n  },\n";

  std::snprintf(
      buf, sizeof(buf),
      "  \"export\": {\n"
      "    \"snapshot_schema\": {\"name\": \"%.*s\", \"version\": %d, "
      "\"delta_encoded\": true},\n"
      "    \"n\": %zu, \"rounds\": %zu, \"reps\": %zu, "
      "\"snapshots\": %llu, \"jsonl_bytes\": %zu,\n"
      "    \"exporter_overhead_pct\": %.2f, \"fingerprint_match\": %s,\n"
      "    \"outdegree_quantiles\": {\"p50\": %.3f, \"p90\": %.3f, "
      "\"p99\": %.3f}\n"
      "  },\n",
      static_cast<int>(obs::kSnapshotSchemaName.size()),
      obs::kSnapshotSchemaName.data(), obs::kSnapshotSchemaVersion, ex_n,
      ex_rounds, ex_reps, static_cast<unsigned long long>(ex_var.snapshots),
      ex_var.jsonl_bytes, ex_pct, ex_fp_match ? "true" : "false",
      ex_var.outdegree.p50, ex_var.outdegree.p90, ex_var.outdegree.p99);
  out << buf;

  // Full residual trajectory for the (small) outer loop; the inner power
  // iterations are summarized as counts to keep the file bounded.
  auto json_finite = [](double v) { return std::isfinite(v) ? v : 0.0; };
  std::snprintf(
      buf, sizeof(buf),
      "  \"solvers\": {\n"
      "    \"degree_mc\": {\"loss\": %g, \"converged\": %s, "
      "\"outer_iterations\": %zu, \"inner_iterations\": %zu, "
      "\"history_resets\": %zu, \"cooldowns\": %zu, \"damped_steps\": %zu, "
      "\"final_outer_residual\": %.3g, \"seconds\": %.3f,\n",
      dp.loss, dr.converged ? "true" : "false",
      sink.iteration_count("degree_mc_outer"),
      sink.iteration_count("degree_mc_inner"),
      sink.event_count("degree_mc_outer", "history_reset") +
          sink.event_count("degree_mc_inner", "history_reset"),
      sink.event_count("degree_mc_outer", "cooldown") +
          sink.event_count("degree_mc_inner", "cooldown"),
      sink.event_count("degree_mc_outer", "damped_step"),
      json_finite(sink.last_residual("degree_mc_outer")), d_seconds);
  out << buf;
  out << "      \"outer_residuals\": [";
  bool first = true;
  for (const obs::RecordingSolverSink::Iteration& it : sink.iterations()) {
    if (it.solver != "degree_mc_outer") continue;
    if (!first) out << ", ";
    first = false;
    std::snprintf(buf, sizeof(buf), "%.6g", json_finite(it.residual));
    out << buf;
  }
  out << "]\n    },\n";
  std::snprintf(buf, sizeof(buf),
                "    \"spectral\": {\"n\": %zu, \"lambda2\": %.6f, "
                "\"iterations\": %zu, \"converged\": %s, "
                "\"last_residual\": %.3g, \"seconds\": %.3f}\n",
                sn, sr.lambda2, sr.iterations, sr.converged ? "true" : "false",
                json_finite(sink.last_residual("spectral_power")), s_seconds);
  out << buf;
  out << "  }\n}\n";
  if (watchdog.violation_count() > 0) {
    std::fprintf(stderr, "error: watchdog reported %llu violations\n",
                 static_cast<unsigned long long>(watchdog.violation_count()));
  }
  return static_cast<bool>(out) && watchdog.violation_count() == 0;
}

// --------------------------------------------------------------------------
// Drift mode (--drift): the TheoryOracle's end-to-end gates. One correctly
// parameterized run that must stay clean, one deliberately mis-parameterized
// run that must trip the DriftMonitor and dump the armed flight recorder.

struct DriftRun {
  std::size_t n = 0;
  std::size_t threads = 0;
  std::size_t rounds = 0;
  double sim_loss = 0.0;
  double seconds = 0.0;
  std::uint64_t actions = 0;
  std::uint64_t probes = 0;
  std::uint64_t warns = 0;
  std::uint64_t violations = 0;
  obs::OracleSnapshot snap;
  double peak[static_cast<std::size_t>(obs::DriftCheck::kCheckCount)] = {};
  bool dump_written = false;
  std::uint64_t dump_events = 0;
  std::uint64_t dump_dropped = 0;
};

// One sharded run (same churn schedule as telemetry mode) with the oracle
// and flight recorder attached. `sim_loss` is what the network actually
// drops; `pred` is what the oracle expects — the two differ only in the
// mis-parameterized leg.
DriftRun run_drift(std::size_t n, std::size_t threads, std::size_t rounds,
                   double sim_loss, const obs::TheoryPrediction& pred,
                   const std::string& dump_path) {
  DriftRun run;
  run.n = n;
  run.threads = threads;
  run.rounds = rounds;
  run.sim_loss = sim_loss;

  Rng rng(7 + n);
  const SendForgetConfig cfg = default_send_forget_config();
  FlatSendForgetCluster cluster(n, cfg);
  {
    // dL-seeded (§6.5 join outdegree), like every other sharded bench.
    const Digraph g = permutation_regular(n, cfg.min_degree, rng);
    for (NodeId u = 0; u < n; ++u) {
      cluster.install_view(u, g.out_neighbors(u));
    }
  }
  sim::ShardedDriver driver(
      cluster, sim::ShardedDriverConfig{.shard_count = threads,
                                        .loss_rate = sim_loss,
                                        .seed = 7 + n});
  obs::TheoryOracle oracle(pred);
  obs::FlightRecorder recorder(threads);
  driver.attach_oracle(&oracle);
  driver.attach_flight_recorder(&recorder);
  driver.set_observation_stride(10);
  oracle.arm_flight_dump(&recorder, dump_path);

  std::vector<NodeId> dead;
  const auto start = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    Rng& crng = driver.churn_rng();
    const auto victim = static_cast<NodeId>(crng.uniform(n));
    if (cluster.live(victim) && cluster.live_count() > n / 2) {
      driver.kill(victim);
      dead.push_back(victim);
    }
    if (!dead.empty() && crng.bernoulli(0.5)) {
      driver.revive(dead.back());
      dead.pop_back();
    }
    driver.run_rounds(1);
  }
  run.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  run.actions = driver.actions_executed();
  run.probes = oracle.probes();
  run.warns = oracle.monitor().warn_transitions();
  run.violations = oracle.monitor().violation_transitions();
  run.snap = oracle.last();
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(obs::DriftCheck::kCheckCount); ++c) {
    run.peak[c] = oracle.monitor().peak_score(static_cast<obs::DriftCheck>(c));
  }
  run.dump_written = oracle.flight_dumped();
  if (run.dump_written) {
    obs::FlightTrace trace;
    if (trace.load_file(dump_path)) {
      run.dump_events = trace.events().size();
      run.dump_dropped = trace.total_dropped();
    } else {
      run.dump_written = false;  // unreadable dump is a failed dump
    }
  }
  std::printf("%s", oracle.report().c_str());
  return run;
}

void emit_drift_run(std::ofstream& out, const char* key, const DriftRun& r,
                    const obs::TheoryPrediction& pred) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\n"
      "    \"n\": %zu, \"threads\": %zu, \"rounds\": %zu,\n"
      "    \"sim_loss\": %g, \"predicted_loss\": %g, \"seconds\": %.3f,\n"
      "    \"actions\": %llu, \"probes\": %llu,\n"
      "    \"warn_transitions\": %llu, \"violation_transitions\": %llu,\n",
      key, r.n, r.threads, r.rounds, r.sim_loss, pred.loss, r.seconds,
      static_cast<unsigned long long>(r.actions),
      static_cast<unsigned long long>(r.probes),
      static_cast<unsigned long long>(r.warns),
      static_cast<unsigned long long>(r.violations));
  out << buf;
  out << "    \"peak_scores\": {";
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(obs::DriftCheck::kCheckCount); ++c) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.3f",
                  c == 0 ? "" : ", ",
                  obs::drift_check_name(static_cast<obs::DriftCheck>(c)),
                  r.peak[c]);
    out << buf;
  }
  out << "},\n";
  const obs::OracleSnapshot& s = r.snap;
  std::snprintf(
      buf, sizeof(buf),
      "    \"last_probe\": {\n"
      "      \"round\": %llu,\n"
      "      \"degree_checked\": %s, \"tvd_out\": %.5f, "
      "\"tvd_out_limit\": %.5f, \"tvd_in\": %.5f, \"tvd_in_limit\": %.5f,\n"
      "      \"chi2_out\": %.1f, \"chi2_out_limit\": %.1f, "
      "\"chi2_in\": %.1f, \"chi2_in_limit\": %.1f,\n"
      "      \"rates_checked\": %s, \"duplication_rate\": %.5f, "
      "\"deletion_rate\": %.5f, \"window_sent\": %llu,\n"
      "      \"uniformity_checked\": %s, \"uniformity_z\": %.3f, "
      "\"uniformity_limit\": %.3f, \"uniformity_ids\": %llu,\n"
      "      \"alpha_checked\": %s, \"alpha_hat\": %.5f, "
      "\"alpha_lower_bound\": %.5f\n    },\n",
      static_cast<unsigned long long>(s.round),
      s.degree_checked ? "true" : "false", s.tvd_out, s.tvd_out_limit,
      s.tvd_in, s.tvd_in_limit, s.chi2_out, s.chi2_out_limit, s.chi2_in,
      s.chi2_in_limit, s.rates_checked ? "true" : "false",
      s.duplication_rate, s.deletion_rate,
      static_cast<unsigned long long>(s.window_sent),
      s.uniformity_checked ? "true" : "false", s.uniformity_z,
      s.uniformity_limit, static_cast<unsigned long long>(s.uniformity_ids),
      s.alpha_checked ? "true" : "false", s.alpha_hat,
      pred.alpha_lower_bound);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "    \"dump_written\": %s, \"dump_events\": %llu, "
                "\"dump_dropped\": %llu\n  }",
                r.dump_written ? "true" : "false",
                static_cast<unsigned long long>(r.dump_events),
                static_cast<unsigned long long>(r.dump_dropped));
  out << buf;
}

bool emit_drift_json(bool quick, const std::string& path) {
  // Predictions at the paper's running example (s=40, dL=18) and ℓ = 0.02
  // — the same configuration every sharded bench simulates.
  analysis::DegreeMcParams dp;
  dp.view_size = default_send_forget_config().view_size;
  dp.min_degree = default_send_forget_config().min_degree;
  dp.loss = 0.02;
  const obs::TheoryPrediction pred = analysis::make_theory_prediction(dp);

  // The clean leg needs to clear the oracle's 400-round statistical warmup
  // with enough post-warmup probes for the streaming checks.
  const std::size_t clean_n = quick ? 10'000 : 50'000;
  const std::size_t clean_rounds = quick ? 520 : 600;
  // The mis-parameterized leg trips on the first few post-warmup probes,
  // so it barely needs to outlive the warmup.
  const std::size_t mis_n = quick ? 8'000 : 20'000;
  const std::size_t mis_rounds = 480;
  const std::size_t threads = 4;

  std::printf("drift: clean run n=%zu rounds=%zu loss=%.2f (predicted %.2f)\n",
              clean_n, clean_rounds, 0.02, pred.loss);
  const DriftRun clean = run_drift(clean_n, threads, clean_rounds, 0.02, pred,
                                   path + ".clean.trace");
  std::printf("drift: mis-parameterized run n=%zu rounds=%zu loss=%.2f "
              "(predicted %.2f)\n",
              mis_n, mis_rounds, 0.10, pred.loss);
  const DriftRun mis = run_drift(mis_n, threads, mis_rounds, 0.10, pred,
                                 path + ".misparam.trace");

  const bool clean_ok = clean.violations == 0;
  const bool mis_ok =
      mis.violations > 0 && mis.dump_written && mis.dump_events > 0;

  std::ofstream out(path);
  emit_header(out, "drift_oracle");
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"prediction\": {\"loss\": %g, \"delta\": %g, "
                "\"view_size\": %zu, \"min_degree\": %zu, "
                "\"expected_out\": %.4f, \"expected_in\": %.4f, "
                "\"duplication_probability\": %.5f, "
                "\"deletion_probability\": %.5f, "
                "\"alpha_lower_bound\": %.4f},\n",
                pred.loss, pred.delta, pred.view_size, pred.min_degree,
                pred.expected_out, pred.expected_in,
                pred.duplication_probability, pred.deletion_probability,
                pred.alpha_lower_bound);
  out << buf;
  emit_drift_run(out, "clean", clean, pred);
  out << ",\n";
  emit_drift_run(out, "misparam", mis, pred);
  out << ",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"gates\": {\"clean_zero_violations\": %s, "
                "\"misparam_tripped\": %s}\n}\n",
                clean_ok ? "true" : "false", mis_ok ? "true" : "false");
  out << buf;
  if (!clean_ok) {
    std::fprintf(stderr,
                 "error: clean run reported %llu drift violations\n",
                 static_cast<unsigned long long>(clean.violations));
  }
  if (!mis_ok) {
    std::fprintf(stderr,
                 "error: mis-parameterized run failed to trip the monitor "
                 "(violations=%llu dump=%d events=%llu)\n",
                 static_cast<unsigned long long>(mis.violations),
                 mis.dump_written ? 1 : 0,
                 static_cast<unsigned long long>(mis.dump_events));
  }
  return static_cast<bool>(out) && clean_ok && mis_ok;
}

// ---------------------------------------------------------------------------
// Chaos mode (--chaos): fault-plane recovery gates. Each leg runs the
// sharded driver with a scripted FaultSchedule (or a mass kill) and a
// RecoveryTracker; the committed gates bound the measured time-to-recover.
// Calibration (n=4000, ℓ=0.01, stride 5): a 20-round symmetric cut dips
// the mean outdegree ~4 below baseline and the post-heal mean climbs back
// ~0.05–0.07/round, so the partition leg measures ~140 recovery rounds —
// budgets below carry ~2x headroom over that, not tuned to the seed.

struct ChaosSpec {
  std::size_t n = 0;
  std::size_t threads = 4;
  std::size_t rounds = 0;
  double loss = 0.01;
  sim::FaultSchedule schedule;  // may be empty (mass-kill leg)
  double kill_fraction = 0.0;   // fraction of nodes killed at kill_round
  std::uint64_t kill_round = 0;
  // Absolute degree floor handed to the RecoveryTracker (0 = disabled).
  // Nonzero only on legs probing the boiling-frog regime, so every other
  // leg's episodes — and the committed chaos gates — are untouched.
  double degree_floor_fraction = 0.0;
  bool declare = true;          // declare windows to the tracker (and oracle)
  bool with_oracle = false;
  // Attach the §6.3 retune controller (requires with_oracle). The oracle
  // prediction and the controller's candidate solves both go through the
  // mean-field fast path — the whole point of retuning live.
  bool with_retune = false;
  std::size_t oracle_warmup = 0;  // 0 = the oracle's default
};

struct ChaosRun {
  ChaosSpec spec;
  double seconds = 0.0;
  std::uint64_t actions = 0;
  std::uint64_t sent = 0;
  std::uint64_t faulted = 0;
  std::size_t killed = 0;
  std::vector<obs::RecoveryEpisode> episodes;
  std::size_t unrecovered = 0;
  std::uint32_t final_lanes = 0;
  double component_fraction = 1.0;
  std::uint64_t warns = 0;       // oracle legs only
  std::uint64_t violations = 0;  // oracle legs only
  bool degree_in_band = true;    // oracle legs: degree lanes kOk at the end
  std::size_t retunes = 0;       // retune legs only
  std::size_t installed_min_degree = 0;
  double loss_estimate = 0.0;
};

ChaosRun run_chaos(const ChaosSpec& spec) {
  ChaosRun run;
  run.spec = spec;

  Rng rng(7 + spec.n);
  const SendForgetConfig cfg = default_send_forget_config();
  FlatSendForgetCluster cluster(spec.n, cfg);
  {
    // dL-seeded (§6.5 join outdegree), like every other sharded bench.
    const Digraph g = permutation_regular(spec.n, cfg.min_degree, rng);
    for (NodeId u = 0; u < spec.n; ++u) {
      cluster.install_view(u, g.out_neighbors(u));
    }
  }
  sim::ShardedDriver driver(
      cluster, sim::ShardedDriverConfig{.shard_count = spec.threads,
                                        .loss_rate = spec.loss,
                                        .seed = 7 + spec.n});
  const sim::FaultPlane plane(spec.schedule, spec.n, spec.threads);
  obs::RecoveryTracker tracker(obs::RecoveryConfig{
      .min_degree = cfg.min_degree,
      .view_size = cfg.view_size,
      .degree_floor_fraction = spec.degree_floor_fraction});
  if (spec.declare) {
    for (const sim::FaultPhase& p : spec.schedule.phases) {
      tracker.declare_window(p.begin, p.end, p.label);
    }
    if (spec.kill_fraction > 0.0) {
      // The fault window spans the to-dead washout transient (~4-round
      // half-life), not just the kill instant: the degree dip only shows
      // up once the dead references start washing out, and a window healed
      // before the dip arrives would close as a false "recovered".
      tracker.declare_window(spec.kill_round, spec.kill_round + 20,
                             "mass-kill");
    }
  }
  std::unique_ptr<obs::TheoryOracle> oracle;
  std::unique_ptr<sim::RetuneController> retune;
  if (spec.with_oracle) {
    // Retune legs prime through the mean-field fast path (the controller
    // re-solves live at candidate dL values); plain oracle legs keep the
    // exact solver. Both are served from the prediction cache.
    const auto source = spec.with_retune
                            ? analysis::PredictionSource::kMeanField
                            : analysis::PredictionSource::kExactMc;
    analysis::DegreeMcParams dp;
    dp.view_size = cfg.view_size;
    dp.min_degree = cfg.min_degree;
    dp.loss = spec.loss;
    obs::OracleConfig ocfg;
    if (spec.oracle_warmup > 0) ocfg.warmup_rounds = spec.oracle_warmup;
    oracle = std::make_unique<obs::TheoryOracle>(
        analysis::make_theory_prediction(dp, /*delta=*/0.01, source), ocfg);
    if (spec.declare) {
      for (const sim::FaultPhase& p : spec.schedule.phases) {
        oracle->declare_fault_window(p.begin, p.end, /*grace_rounds=*/40);
      }
    }
    driver.attach_oracle(oracle.get());
    if (spec.with_retune) {
      retune = std::make_unique<sim::RetuneController>(
          sim::RetuneConfig{},
          [](std::size_t s, std::size_t dl, double loss, double delta) {
            analysis::DegreeMcParams p;
            p.view_size = s;
            p.min_degree = dl;
            p.loss = loss;
            return analysis::make_theory_prediction(
                p, delta, analysis::PredictionSource::kMeanField);
          },
          [&cluster](std::size_t dl) { cluster.set_min_degree(dl); });
      retune->bind_oracle(oracle.get());
      driver.attach_retune(retune.get());
    }
  }
  if (!spec.schedule.empty()) driver.attach_fault_plane(&plane);
  driver.attach_recovery(&tracker);  // last: re-caches the counter slabs
  driver.set_observation_stride(5);

  const auto start = Clock::now();
  if (spec.kill_fraction > 0.0) {
    driver.run_rounds(spec.kill_round);
    const auto to_kill =
        static_cast<std::size_t>(spec.kill_fraction *
                                 static_cast<double>(spec.n));
    Rng& crng = driver.churn_rng();
    while (run.killed < to_kill) {
      const auto victim = static_cast<NodeId>(crng.uniform(spec.n));
      if (cluster.live(victim)) {
        driver.kill(victim);
        ++run.killed;
      }
    }
    driver.run_rounds(spec.rounds - spec.kill_round);
  } else {
    driver.run_rounds(spec.rounds);
  }
  run.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  run.actions = driver.actions_executed();
  run.sent = driver.network_metrics().sent;
  run.faulted = driver.network_metrics().faulted;
  run.episodes = tracker.episodes();
  run.unrecovered = tracker.unrecovered();
  run.final_lanes = tracker.degraded_lanes();
  run.component_fraction = tracker.component_fraction();
  if (oracle != nullptr) {
    run.warns = oracle->monitor().warn_transitions();
    run.violations = oracle->monitor().violation_transitions();
    run.degree_in_band =
        oracle->monitor().state(obs::DriftCheck::kDegreeOut) ==
            obs::DriftState::kOk &&
        oracle->monitor().state(obs::DriftCheck::kDegreeIn) ==
            obs::DriftState::kOk;
  }
  if (retune != nullptr) {
    run.retunes = retune->retunes_applied();
    run.installed_min_degree = cluster.config().min_degree;
    run.loss_estimate = retune->last_loss_estimate();
    std::printf("%s", retune->report().c_str());
  }
  std::printf("%s", tracker.report().c_str());
  return run;
}

const obs::RecoveryEpisode* chaos_episode(const ChaosRun& run,
                                          const char* label) {
  for (const obs::RecoveryEpisode& e : run.episodes) {
    if (e.label == label) return &e;
  }
  return nullptr;
}

// Gate: the labelled episode degraded, recovered, and the measured
// time-to-recover fits the budget — and no episode in the leg is left
// unrecovered.
bool chaos_recovered(const ChaosRun& run, const char* label,
                     std::uint64_t budget) {
  const obs::RecoveryEpisode* e = chaos_episode(run, label);
  return e != nullptr && e->degraded && e->recovered &&
         e->recovery_rounds() <= budget && run.unrecovered == 0;
}

void emit_chaos_run(std::ofstream& out, const char* key, const ChaosRun& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\n"
      "    \"n\": %zu, \"threads\": %zu, \"rounds\": %zu, \"loss\": %g,\n"
      "    \"seconds\": %.3f, \"actions\": %llu, \"sent\": %llu, "
      "\"faulted\": %llu, \"killed\": %zu,\n"
      "    \"unrecovered\": %zu, \"final_degraded_lanes\": %u, "
      "\"component_fraction\": %.4f,\n",
      key, r.spec.n, r.spec.threads, r.spec.rounds, r.spec.loss, r.seconds,
      static_cast<unsigned long long>(r.actions),
      static_cast<unsigned long long>(r.sent),
      static_cast<unsigned long long>(r.faulted), r.killed, r.unrecovered,
      r.final_lanes, r.component_fraction);
  out << buf;
  if (r.spec.with_oracle) {
    std::snprintf(buf, sizeof(buf),
                  "    \"warn_transitions\": %llu, "
                  "\"violation_transitions\": %llu, "
                  "\"degree_in_band\": %s,\n",
                  static_cast<unsigned long long>(r.warns),
                  static_cast<unsigned long long>(r.violations),
                  r.degree_in_band ? "true" : "false");
    out << buf;
  }
  if (r.spec.with_retune) {
    std::snprintf(buf, sizeof(buf),
                  "    \"retunes_applied\": %zu, "
                  "\"installed_min_degree\": %zu, "
                  "\"loss_estimate\": %.4f,\n",
                  r.retunes, r.installed_min_degree, r.loss_estimate);
    out << buf;
  }
  out << "    \"episodes\": [";
  for (std::size_t i = 0; i < r.episodes.size(); ++i) {
    const obs::RecoveryEpisode& e = r.episodes[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n      {\"label\": \"%s\", \"declared\": %s, "
                  "\"begin\": %llu, \"heal\": %llu, \"degraded\": %s, "
                  "\"recovered\": %s, \"recovery_rounds\": %llu, "
                  "\"lanes\": [",
                  i == 0 ? "" : ",", e.label.c_str(),
                  e.declared ? "true" : "false",
                  static_cast<unsigned long long>(e.begin),
                  static_cast<unsigned long long>(e.heal),
                  e.degraded ? "true" : "false",
                  e.recovered ? "true" : "false",
                  static_cast<unsigned long long>(e.recovery_rounds()));
    out << buf;
    bool first = true;
    for (std::size_t lane = 0;
         lane < static_cast<std::size_t>(obs::RecoveryLane::kLaneCount);
         ++lane) {
      if ((e.lanes & (1u << lane)) == 0) continue;
      out << (first ? "\"" : ", \"")
          << obs::recovery_lane_name(static_cast<obs::RecoveryLane>(lane))
          << "\"";
      first = false;
    }
    out << "]}";
  }
  out << "\n    ]\n  }";
}

bool emit_chaos_json(bool quick, const std::string& path) {
  // Recovery budgets are round counts and mean-field (n-independent), so
  // quick mode only shrinks n; the fault windows and budgets stay fixed.
  const std::size_t n = quick ? 2'000 : 4'000;
  const std::size_t threads = 4;
  // Measured at n=4000: partition 90, mass kill ~205, burst 50 recovery
  // rounds; budgets carry ~2x headroom so they bound regressions without
  // being tuned to one seed.
  constexpr std::uint64_t kPartitionBudget = 200;
  constexpr std::uint64_t kMassKillBudget = 360;
  constexpr std::uint64_t kBurstBudget = 150;

  // Leg 1: symmetric 20-round partition of the id space's two halves.
  // Short on purpose — S&F has no discovery, so a cut held past cross-edge
  // washout (~4-round half-life) can never re-merge.
  ChaosSpec partition;
  partition.n = n;
  partition.threads = threads;
  partition.rounds = 480;
  {
    sim::FaultPhase cut;
    cut.kind = sim::FaultKind::kPartition;
    cut.begin = 150;
    cut.end = 170;
    cut.a_lo = 0;
    cut.a_hi = static_cast<NodeId>(n / 2 - 1);
    cut.b_lo = static_cast<NodeId>(n / 2);
    cut.b_hi = static_cast<NodeId>(n - 1);
    cut.label = "split";
    partition.schedule.phases.push_back(cut);
  }

  // Leg 2: kill 20% of the cluster at round 150, no fault plane — the
  // recovery tracker must see the to-dead loss transient and measure the
  // overlay's climb back into band.
  ChaosSpec mass;
  mass.n = n;
  mass.threads = threads;
  mass.rounds = 520;
  mass.kill_fraction = 0.20;
  mass.kill_round = 150;

  // Leg 3: 40 rounds of Gilbert-Elliott bursts (50% average loss, mean
  // burst length 8) for senders in one of four regions. Gate: the overlay
  // rides it out — nothing left degraded at the end of the run.
  ChaosSpec burst;
  burst.n = n;
  burst.threads = threads;
  burst.rounds = 420;
  burst.schedule.regions = 4;
  {
    sim::FaultPhase b;
    b.kind = sim::FaultKind::kBurst;
    b.begin = 150;
    b.end = 190;
    b.region = 1;
    b.rate = 0.5;
    b.burst_len = 8.0;
    b.label = "rack-burst";
    burst.schedule.phases.push_back(b);
  }

  // Leg 4: a loss spike the oracle was NOT told about, landing after its
  // 400-round statistical warmup. The fault plane must not blunt drift
  // detection: the DriftMonitor has to trip, and the tracker has to open
  // an undeclared episode.
  ChaosSpec spike;
  spike.n = n;
  spike.threads = threads;
  spike.rounds = 520;
  spike.declare = false;
  spike.with_oracle = true;
  {
    sim::FaultPhase s;
    s.kind = sim::FaultKind::kLossSpike;
    s.begin = 440;
    s.end = 480;
    s.rate = 0.15;
    s.label = "undeclared-spike";
    spike.schedule.phases.push_back(s);
  }

  // Legs 5 and 6: a sustained 12% loss spike from round 400 to the end of
  // the run — far too long to ride out. Unattended (loss_retune_off) the
  // drift monitor must escalate to VIOLATION; with the §6.3 controller
  // closing the loop (loss_retune) the run must end with zero violations,
  // at least one applied retune, and the degree lanes back in band. The
  // oracle warms up 300 rounds (enough for the regular seed topology to
  // mix into the ℓ-stationary distribution) so the monitor judges the
  // spike, not the warm-in transient.
  ChaosSpec retune_on;
  retune_on.n = n;
  retune_on.threads = threads;
  retune_on.rounds = 1200;
  retune_on.declare = false;
  retune_on.with_oracle = true;
  retune_on.with_retune = true;
  retune_on.oracle_warmup = 300;
  {
    sim::FaultPhase s;
    s.kind = sim::FaultKind::kLossSpike;
    s.begin = 400;
    s.end = retune_on.rounds + 1;
    s.rate = 0.12;
    s.label = "sustained-spike";
    retune_on.schedule.phases.push_back(s);
  }
  ChaosSpec retune_off = retune_on;
  retune_off.with_retune = false;

  std::printf("chaos: partition leg n=%zu rounds=%zu cut=[150,170)\n", n,
              partition.rounds);
  const ChaosRun part_run = run_chaos(partition);
  std::printf("chaos: mass-failure leg n=%zu rounds=%zu kill=20%%@150\n", n,
              mass.rounds);
  const ChaosRun mass_run = run_chaos(mass);
  std::printf("chaos: burst leg n=%zu rounds=%zu region=1 rate=0.5\n", n,
              burst.rounds);
  const ChaosRun burst_run = run_chaos(burst);
  std::printf("chaos: undeclared-spike leg n=%zu rounds=%zu "
              "spike=[440,480) rate=0.15 (oracle attached)\n",
              n, spike.rounds);
  const ChaosRun spike_run = run_chaos(spike);
  std::printf("chaos: sustained-spike leg n=%zu rounds=%zu "
              "spike=[400,end) rate=0.12 (retune ON)\n",
              n, retune_on.rounds);
  const ChaosRun retune_run = run_chaos(retune_on);
  std::printf("chaos: sustained-spike leg n=%zu rounds=%zu "
              "spike=[400,end) rate=0.12 (retune OFF)\n",
              n, retune_off.rounds);
  const ChaosRun retune_off_run = run_chaos(retune_off);

  const bool part_ok = chaos_recovered(part_run, "split", kPartitionBudget) &&
                       part_run.faulted > 0;
  const bool mass_ok = chaos_recovered(mass_run, "mass-kill", kMassKillBudget);
  const bool burst_ok =
      chaos_recovered(burst_run, "rack-burst", kBurstBudget) &&
      burst_run.final_lanes == 0 && burst_run.faulted > 0;
  const obs::RecoveryEpisode* undeclared =
      chaos_episode(spike_run, "undeclared");
  const bool spike_ok = spike_run.violations > 0 && undeclared != nullptr &&
                        undeclared->degraded && spike_run.faulted > 0;
  const bool retune_ok = retune_run.violations == 0 &&
                         retune_run.retunes >= 1 &&
                         retune_run.degree_in_band &&
                         retune_run.unrecovered == 0 &&
                         retune_run.faulted > 0;
  const bool retune_off_ok =
      retune_off_run.violations > 0 && retune_off_run.faulted > 0;

  std::ofstream out(path);
  emit_header(out, "chaos_faults");
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"budgets\": {\"partition_rounds\": %llu, "
                "\"mass_kill_rounds\": %llu, \"burst_rounds\": %llu},\n",
                static_cast<unsigned long long>(kPartitionBudget),
                static_cast<unsigned long long>(kMassKillBudget),
                static_cast<unsigned long long>(kBurstBudget));
  out << buf;
  emit_chaos_run(out, "partition_heal", part_run);
  out << ",\n";
  emit_chaos_run(out, "mass_failure", mass_run);
  out << ",\n";
  emit_chaos_run(out, "burst_survival", burst_run);
  out << ",\n";
  emit_chaos_run(out, "undeclared_spike", spike_run);
  out << ",\n";
  emit_chaos_run(out, "loss_retune", retune_run);
  out << ",\n";
  emit_chaos_run(out, "loss_retune_off", retune_off_run);
  out << ",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"gates\": {\"partition_recovered\": %s, "
                "\"mass_failure_recovered\": %s, \"burst_survived\": %s, "
                "\"undeclared_tripped\": %s, \"retune_survived\": %s, "
                "\"retune_off_tripped\": %s}\n}\n",
                part_ok ? "true" : "false", mass_ok ? "true" : "false",
                burst_ok ? "true" : "false", spike_ok ? "true" : "false",
                retune_ok ? "true" : "false",
                retune_off_ok ? "true" : "false");
  out << buf;

  if (!part_ok) {
    const obs::RecoveryEpisode* e = chaos_episode(part_run, "split");
    std::fprintf(stderr,
                 "error: partition leg failed its recovery gate "
                 "(degraded=%d recovered=%d rounds=%llu budget=%llu "
                 "unrecovered=%zu)\n",
                 e != nullptr && e->degraded, e != nullptr && e->recovered,
                 static_cast<unsigned long long>(
                     e != nullptr ? e->recovery_rounds() : 0),
                 static_cast<unsigned long long>(kPartitionBudget),
                 part_run.unrecovered);
  }
  if (!mass_ok) {
    const obs::RecoveryEpisode* e = chaos_episode(mass_run, "mass-kill");
    std::fprintf(stderr,
                 "error: mass-failure leg failed its recovery gate "
                 "(degraded=%d recovered=%d rounds=%llu budget=%llu "
                 "unrecovered=%zu)\n",
                 e != nullptr && e->degraded, e != nullptr && e->recovered,
                 static_cast<unsigned long long>(
                     e != nullptr ? e->recovery_rounds() : 0),
                 static_cast<unsigned long long>(kMassKillBudget),
                 mass_run.unrecovered);
  }
  if (!burst_ok) {
    const obs::RecoveryEpisode* e = chaos_episode(burst_run, "rack-burst");
    std::fprintf(stderr,
                 "error: burst leg failed its recovery gate (recovered=%d "
                 "rounds=%llu budget=%llu final_lanes=%u unrecovered=%zu)\n",
                 e != nullptr && e->recovered,
                 static_cast<unsigned long long>(
                     e != nullptr ? e->recovery_rounds() : 0),
                 static_cast<unsigned long long>(kBurstBudget),
                 burst_run.final_lanes, burst_run.unrecovered);
  }
  if (!spike_ok) {
    std::fprintf(stderr,
                 "error: undeclared spike failed to trip the monitor "
                 "(violations=%llu undeclared_episode=%d)\n",
                 static_cast<unsigned long long>(spike_run.violations),
                 undeclared != nullptr && undeclared->degraded);
  }
  if (!retune_ok) {
    std::fprintf(stderr,
                 "error: retune leg failed its gate (violations=%llu "
                 "retunes=%zu degree_in_band=%d unrecovered=%zu)\n",
                 static_cast<unsigned long long>(retune_run.violations),
                 retune_run.retunes, retune_run.degree_in_band,
                 retune_run.unrecovered);
  }
  if (!retune_off_ok) {
    std::fprintf(stderr,
                 "error: retune-off leg failed to trip the monitor "
                 "(violations=%llu)\n",
                 static_cast<unsigned long long>(retune_off_run.violations));
  }
  return static_cast<bool>(out) && part_ok && mass_ok && burst_ok &&
         spike_ok && retune_ok && retune_off_ok;
}

// Forensics mode (--forensics): the post-mortem engine gated end to end.
// Three chaos legs whose root cause is known by construction — a declared
// partition, an undeclared 20% mass kill, an undeclared loss spike — each
// run with the full artifact set attached (flight recorder, snapshot
// streamer, chaos-style report JSON, all captured in memory). The
// artifacts then go through the same RunArchive → CausalIndex →
// RootCauseAttributor → report path as `sfgossip analyze`, and the gates
// demand: every incident attributed to the injected cause, zero incidents
// left unknown, the JSON report byte-identical across two renders, and the
// whole analysis inside a wall-clock budget.

struct ForensicsArtifacts {
  std::string trace;      // SFFR dump bytes
  std::string snapshots;  // sfgossip.snapshot/v1 JSONL
  std::string chaos;      // chaos-shaped report JSON
  double run_seconds = 0.0;
};

ForensicsArtifacts run_forensics_leg(const ChaosSpec& spec,
                                     const char* scenario_label) {
  ForensicsArtifacts artifacts;

  Rng rng(7 + spec.n);
  const SendForgetConfig cfg = default_send_forget_config();
  FlatSendForgetCluster cluster(spec.n, cfg);
  {
    const Digraph g = permutation_regular(spec.n, cfg.min_degree, rng);
    for (NodeId u = 0; u < spec.n; ++u) {
      cluster.install_view(u, g.out_neighbors(u));
    }
  }
  sim::ShardedDriver driver(
      cluster, sim::ShardedDriverConfig{.shard_count = spec.threads,
                                        .loss_rate = spec.loss,
                                        .seed = 7 + spec.n});
  const sim::FaultPlane plane(spec.schedule, spec.n, spec.threads);
  obs::RecoveryTracker tracker(obs::RecoveryConfig{
      .min_degree = cfg.min_degree,
      .view_size = cfg.view_size,
      .degree_floor_fraction = spec.degree_floor_fraction});
  if (spec.declare) {
    for (const sim::FaultPhase& p : spec.schedule.phases) {
      tracker.declare_window(p.begin, p.end, p.label);
    }
  }
  std::unique_ptr<obs::TheoryOracle> oracle;
  if (spec.with_oracle) {
    analysis::DegreeMcParams dp;
    dp.view_size = cfg.view_size;
    dp.min_degree = cfg.min_degree;
    dp.loss = spec.loss;
    obs::OracleConfig ocfg;
    if (spec.oracle_warmup > 0) ocfg.warmup_rounds = spec.oracle_warmup;
    oracle = std::make_unique<obs::TheoryOracle>(
        analysis::make_theory_prediction(dp, /*delta=*/0.01,
                                         analysis::PredictionSource::kExactMc),
        ocfg);
    if (spec.declare) {
      for (const sim::FaultPhase& p : spec.schedule.phases) {
        oracle->declare_fault_window(p.begin, p.end, /*grace_rounds=*/40);
      }
    }
    driver.attach_oracle(oracle.get());
  }
  if (!spec.schedule.empty()) driver.attach_fault_plane(&plane);
  obs::FlightRecorder recorder(spec.threads, /*capacity=*/1u << 12);
  driver.attach_flight_recorder(&recorder);
  driver.attach_recovery(&tracker);  // last: re-caches the counter slabs
  driver.set_observation_stride(5);

  std::ostringstream snapshot_stream;
  obs::ExportConfig ecfg;
  ecfg.snapshot_stride = 5;
  obs::SnapshotStreamer streamer(driver.metrics_registry(), ecfg);
  streamer.add_sink(
      std::make_unique<obs::JsonlSnapshotSink>(snapshot_stream));
  driver.attach_streamer(&streamer);  // after every other observer

  const auto start = Clock::now();
  if (spec.kill_fraction > 0.0) {
    driver.run_rounds(spec.kill_round);
    const auto to_kill = static_cast<std::size_t>(
        spec.kill_fraction * static_cast<double>(spec.n));
    Rng& crng = driver.churn_rng();
    std::size_t killed = 0;
    while (killed < to_kill) {
      const auto victim = static_cast<NodeId>(crng.uniform(spec.n));
      if (cluster.live(victim)) {
        driver.kill(victim);
        ++killed;
      }
    }
    driver.run_rounds(spec.rounds - spec.kill_round);
  } else {
    driver.run_rounds(spec.rounds);
  }
  artifacts.run_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  streamer.finish();

  std::ostringstream trace_stream;
  recorder.dump(trace_stream);
  artifacts.trace = trace_stream.str();
  artifacts.snapshots = snapshot_stream.str();

  std::ostringstream chaos_stream;
  chaos_stream << "{\"scenario\": \"" << scenario_label
               << "\", \"recovery\": ";
  tracker.write_json(chaos_stream);
  if (oracle != nullptr) {
    chaos_stream << ", \"oracle\": ";
    oracle->write_json(chaos_stream);
  }
  chaos_stream << "}";
  artifacts.chaos = chaos_stream.str();
  return artifacts;
}

struct ForensicsAnalysis {
  bool loaded = false;
  std::size_t incidents = 0;
  std::size_t unknown = 0;
  std::size_t matched = 0;  // incidents attributed to the expected cause
  std::size_t trace_events = 0;
  std::size_t snapshots = 0;
  bool deterministic = false;
  double analyze_seconds = 0.0;
  std::string report;  // the rendered JSON report
  std::string error;
};

ForensicsAnalysis analyze_forensics(const ForensicsArtifacts& artifacts,
                                    const char* expected_cause) {
  namespace fx = obs::forensics;
  ForensicsAnalysis result;
  const auto start = Clock::now();

  fx::RunArchive archive;
  std::istringstream trace_in(artifacts.trace);
  std::istringstream snapshot_in(artifacts.snapshots);
  std::istringstream chaos_in(artifacts.chaos);
  std::string error;
  if (!archive.load_trace(trace_in, &error) ||
      !archive.load_snapshots(snapshot_in, &error) ||
      !archive.load_chaos(chaos_in, &error)) {
    result.error = error;
    return result;
  }
  result.loaded = true;
  result.trace_events = archive.trace().events().size();
  result.snapshots = archive.snapshots().size();

  const fx::CausalIndex index(archive.trace());
  const fx::RootCauseAttributor attributor(archive, &index, {});
  const std::vector<fx::Incident> incidents = attributor.attribute();
  result.incidents = incidents.size();
  result.unknown = fx::unknown_incidents(incidents);
  for (const fx::Incident& incident : incidents) {
    if (std::strcmp(fx::incident_cause_name(incident.cause),
                    expected_cause) == 0) {
      ++result.matched;
    }
  }

  std::ostringstream first;
  fx::write_report_json(first, archive, incidents, nullptr);
  std::ostringstream second;
  fx::write_report_json(second, archive, incidents, nullptr);
  result.report = first.str();
  result.deterministic = first.str() == second.str();
  result.analyze_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

bool emit_forensics_json(bool quick, const std::string& path) {
  const std::size_t n = quick ? 2'000 : 4'000;
  const std::size_t threads = 4;
  // The whole load→index→attribute→render path on one leg's artifacts.
  // Measured ~0.1 s; the budget bounds regressions, not the mean.
  constexpr double kAnalyzeBudgetSeconds = 10.0;

  // Leg 1: the declared partition from the chaos suite — every incident
  // must come back declared-fault.
  ChaosSpec partition;
  partition.n = n;
  partition.threads = threads;
  partition.rounds = 480;
  {
    sim::FaultPhase cut;
    cut.kind = sim::FaultKind::kPartition;
    cut.begin = 150;
    cut.end = 170;
    cut.a_lo = 0;
    cut.a_hi = static_cast<NodeId>(n / 2 - 1);
    cut.b_lo = static_cast<NodeId>(n / 2);
    cut.b_hi = static_cast<NodeId>(n - 1);
    cut.label = "split";
    partition.schedule.phases.push_back(cut);
  }

  // Leg 2: an *undeclared* 20% mass kill — the tracker opens an undeclared
  // episode and the attributor must pin it on churn (kill flight events
  // when the ring still holds them, the live_nodes gauge drop otherwise).
  // A 20% kill is the boiling-frog regime: the dead references bleed out
  // slower than RecoveryConfig.degree_drop per probe interval, so the
  // chasing calm baseline follows the decay down and the relative dip
  // signal never trips. The absolute degree floor (pinned at the first calm
  // baseline) is what opens the episode here — this leg is its end-to-end
  // regression: drop the floor and the leg fails with zero incidents.
  ChaosSpec mass;
  mass.n = n;
  mass.threads = threads;
  mass.rounds = 520;
  mass.kill_fraction = 0.20;
  mass.kill_round = 150;
  mass.declare = false;
  // The floor is pinned at the FIRST post-warmup probe (~25.0 mean, while
  // the overlay is still climbing off its dL-regular install), not at the
  // higher settled mean; the 20% kill bottoms out near 22.7-22.9. 0.93
  // puts the floor at ~23.3: under every calm probe by > 1.5, above the
  // dip trough by ~0.5 at both bench sizes.
  mass.degree_floor_fraction = 0.93;

  // Leg 3: an *undeclared* loss spike after the oracle's statistical
  // warmup — drift violations plus the mirrored episode, all loss-drift.
  ChaosSpec spike;
  spike.n = n;
  spike.threads = threads;
  spike.rounds = 520;
  spike.declare = false;
  spike.with_oracle = true;
  spike.oracle_warmup = 400;
  {
    sim::FaultPhase s;
    s.kind = sim::FaultKind::kLossSpike;
    s.begin = 440;
    s.end = 480;
    s.rate = 0.15;
    s.label = "undeclared-spike";
    spike.schedule.phases.push_back(s);
  }

  std::printf("forensics: declared-partition leg n=%zu rounds=%zu\n", n,
              partition.rounds);
  const ForensicsArtifacts part_art =
      run_forensics_leg(partition, "bench:declared-partition");
  const ForensicsAnalysis part =
      analyze_forensics(part_art, "declared-fault");
  std::printf("forensics: mass-kill leg n=%zu rounds=%zu kill=%.0f%%@%zu\n",
              n, mass.rounds, mass.kill_fraction * 100.0,
              static_cast<std::size_t>(mass.kill_round));
  const ForensicsArtifacts mass_art =
      run_forensics_leg(mass, "bench:undeclared-mass-kill");
  const ForensicsAnalysis churn =
      analyze_forensics(mass_art, "churn-washout");
  std::printf("forensics: loss-spike leg n=%zu rounds=%zu spike=[440,480) "
              "rate=0.15 (oracle attached)\n",
              n, spike.rounds);
  const ForensicsArtifacts spike_art =
      run_forensics_leg(spike, "bench:undeclared-loss-spike");
  const ForensicsAnalysis drift = analyze_forensics(spike_art, "loss-drift");

  const auto leg_ok = [](const ForensicsAnalysis& a) {
    return a.loaded && a.incidents > 0 && a.unknown == 0 &&
           a.matched == a.incidents && a.deterministic;
  };
  const bool part_ok = leg_ok(part);
  const bool churn_ok = leg_ok(churn);
  const bool drift_ok = leg_ok(drift);
  const bool budget_ok = part.analyze_seconds < kAnalyzeBudgetSeconds &&
                         churn.analyze_seconds < kAnalyzeBudgetSeconds &&
                         drift.analyze_seconds < kAnalyzeBudgetSeconds;

  std::ofstream out(path);
  emit_header(out, "forensics");
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"analyze_budget_seconds\": %g,\n",
                kAnalyzeBudgetSeconds);
  out << buf;
  const auto emit_leg = [&out, &buf, n](const char* key,
                                        const ChaosSpec& spec,
                                        const ForensicsArtifacts& art,
                                        const ForensicsAnalysis& a,
                                        const char* expected) {
    std::snprintf(
        buf, sizeof(buf),
        "  \"%s\": {\n"
        "    \"n\": %zu, \"rounds\": %zu, \"expected_cause\": \"%s\",\n"
        "    \"run_seconds\": %.3f, \"analyze_seconds\": %.4f,\n"
        "    \"trace_events\": %zu, \"snapshots\": %zu, "
        "\"report_bytes\": %zu,\n"
        "    \"incidents\": %zu, \"matched\": %zu, \"unknown\": %zu, "
        "\"deterministic\": %s\n  }",
        key, n, spec.rounds, expected, art.run_seconds, a.analyze_seconds,
        a.trace_events, a.snapshots, a.report.size(), a.incidents,
        a.matched, a.unknown, a.deterministic ? "true" : "false");
    out << buf;
  };
  emit_leg("declared_partition", partition, part_art, part,
           "declared-fault");
  out << ",\n";
  emit_leg("undeclared_mass_kill", mass, mass_art, churn, "churn-washout");
  out << ",\n";
  emit_leg("undeclared_loss_spike", spike, spike_art, drift, "loss-drift");
  out << ",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"gates\": {\"declared_attributed\": %s, "
                "\"churn_attributed\": %s, \"loss_attributed\": %s, "
                "\"analyze_within_budget\": %s}\n}\n",
                part_ok ? "true" : "false", churn_ok ? "true" : "false",
                drift_ok ? "true" : "false", budget_ok ? "true" : "false");
  out << buf;

  const auto report_leg = [](const char* key, const ForensicsAnalysis& a,
                             bool ok) {
    std::printf("forensics %-22s incidents=%zu matched=%zu unknown=%zu "
                "deterministic=%d analyze=%.3fs %s\n",
                key, a.incidents, a.matched, a.unknown, a.deterministic,
                a.analyze_seconds, ok ? "ok" : "FAIL");
    if (!a.error.empty()) {
      std::fprintf(stderr, "error: %s leg: %s\n", key, a.error.c_str());
    }
  };
  report_leg("declared_partition", part, part_ok);
  report_leg("undeclared_mass_kill", churn, churn_ok);
  report_leg("undeclared_loss_spike", drift, drift_ok);
  if (!budget_ok) {
    std::fprintf(stderr, "error: analyzer exceeded its %.1fs budget\n",
                 kAnalyzeBudgetSeconds);
  }
  return static_cast<bool>(out) && part_ok && churn_ok && drift_ok &&
         budget_ok;
}

}  // namespace

// The interleaved gate run: per-repetition, the three legs (bare /
// no-op-counter sink / flight recorder) run back to back, each repetition
// yields one *paired* overhead ratio per gate, and the reported overhead
// is the median of those ratios. Rationale: run-to-run variance on shared
// 1-core hardware is several percent — an order of magnitude above the
// effect being measured — and the noise arrives in bursts (CPU steal,
// frequency phases) that corrupt whole runs, so best-of-N of legs timed
// minutes apart has measured ±5% swings on a pair whose true difference
// is under 1%. Pairing confines a burst to the one repetition it lands
// in; the median then discards that repetition entirely. The per-leg
// throughput results (for the results table) keep each leg's fastest
// repetition. kBare runs first within a repetition: the action count it
// measures (deterministic for fixed n/threads/rounds) seeds the
// no-op-counter leg, which cannot count its own.
// ---------------------------------------------------------------------------
// Arena mode (--arena): the protocol × scenario × loss detection matrix.
// Every cell runs the round-synchronous ArenaDriver with a DetectionTracker
// (and, for S&F, a RecoveryTracker) attached: {S&F, SWIM, all-to-all} ×
// {partition-heal, 20% mass-kill, regional burst} × {ℓ = 0, 0.02, 0.10},
// each leg executed TWICE back to back so the committed baseline proves the
// fingerprint determinism contract, not just asserts it. The gates pin the
// paper's trade: SWIM detects every mass-kill victim at every live observer
// (completeness = 100%) with false positives under budget at ℓ ≤ 0.02,
// while S&F — which buys no acks and no timeouts — must still recover its
// overlay within the same round budgets the chaos baseline commits.

// SWIM false-positive pair-spell budget at gated loss (<= 2%), as a
// multiple of n. FP spells are counted per ordered live (observer,
// subject) pair, and one false suspicion *disseminates*: a single lost
// ack whose indirect probes also fail gossips the suspicion to up to
// n - 1 observers before the refutation catches up. The budget therefore
// admits a few amplified origin events per run — not the thousands of
// pair-spells a wedged detector would rack up (the measured 2% mass-kill
// leg sits near 3n; every spell must also be refuted by the horizon).
constexpr std::uint64_t kArenaSwimFpPerNode = 4;
// Deliberately the BENCH_chaos budgets: the arena's S&F legs must not need
// looser recovery gates than the chaos baseline already commits to.
constexpr std::uint64_t kArenaSfPartitionBudget = 200;
constexpr std::uint64_t kArenaSfMassKillBudget = 360;

struct ArenaSpec {
  const char* protocol = "sf";        // sf | swim | a2a
  const char* scenario = "mass_kill";  // partition_heal|mass_kill|regional_burst
  double loss = 0.0;
  std::size_t n = 0;
  std::size_t rounds = 0;
  sim::FaultSchedule schedule;  // empty for the mass-kill scenario
  double kill_fraction = 0.0;
  std::uint64_t kill_round = 0;
};

struct ArenaRun {
  ArenaSpec spec;
  double seconds = 0.0;
  std::uint64_t actions = 0;
  sim::NetworkMetrics net;
  std::uint64_t fingerprint = 0;
  bool deterministic = false;  // second run reproduced the fingerprint
  std::size_t killed = 0;
  // Detection aggregates (kill side).
  std::size_t events = 0;
  std::size_t complete_events = 0;
  double completeness = 1.0;
  double mean_first_latency = 0.0;
  double mean_last_latency = 0.0;
  std::uint64_t max_last_latency = 0;
  std::uint64_t fp_events = 0;
  std::size_t fp_unresolved = 0;
  // Recovery (S&F legs only).
  std::vector<obs::RecoveryEpisode> episodes;
  std::size_t unrecovered = 0;
};

sim::Cluster::ProtocolFactory arena_factory(const std::string& protocol) {
  if (protocol == "swim") {
    return [](NodeId id) { return std::make_unique<Swim>(id, SwimConfig{}); };
  }
  if (protocol == "a2a") {
    return [](NodeId id) {
      return std::make_unique<AllToAll>(id, AllToAllConfig{});
    };
  }
  return [](NodeId id) {
    return std::make_unique<SendForget>(id, default_send_forget_config());
  };
}

// One arena execution; called twice per leg for the determinism gate.
ArenaRun run_arena_once(const ArenaSpec& spec) {
  ArenaRun run;
  run.spec = spec;
  const bool is_sf = std::strcmp(spec.protocol, "sf") == 0;

  sim::Cluster cluster(spec.n, arena_factory(spec.protocol));
  if (is_sf) {
    // dL-seeded like every S&F bench; the detectors get full membership —
    // SWIM and the heartbeat fan-out track the member table, not a view.
    Rng graph_rng(11 + spec.n);
    const SendForgetConfig cfg = default_send_forget_config();
    cluster.install_graph(
        permutation_regular(spec.n, cfg.min_degree, graph_rng));
  } else {
    std::vector<NodeId> ids(spec.n);
    for (NodeId u = 0; u < spec.n; ++u) ids[u] = u;
    for (NodeId u = 0; u < spec.n; ++u) cluster.node(u).install_view(ids);
  }

  sim::ArenaDriver driver(cluster, sim::ArenaDriverConfig{
                                       .shards = 4,
                                       .threads = 4,
                                       .loss_rate = spec.loss,
                                       .seed = 42});
  const sim::FaultPlane plane(spec.schedule, spec.n, 4);
  if (!spec.schedule.empty()) driver.attach_fault_plane(&plane);

  // The O(n^2) false-positive pair scan runs every 5th probe: spell entry
  // and exit round off by < 5 rounds, which the FP gate does not resolve.
  obs::DetectionTracker detection(obs::DetectionConfig{.fp_stride = 5});
  driver.attach_detection(&detection);

  std::unique_ptr<obs::RecoveryTracker> recovery;
  if (is_sf) {
    const SendForgetConfig cfg = default_send_forget_config();
    recovery = std::make_unique<obs::RecoveryTracker>(obs::RecoveryConfig{
        .min_degree = cfg.min_degree, .view_size = cfg.view_size});
    for (const sim::FaultPhase& p : spec.schedule.phases) {
      recovery->declare_window(p.begin, p.end, p.label);
    }
    if (spec.kill_fraction > 0.0) {
      // Same washout-transient window the chaos mass-kill leg declares.
      recovery->declare_window(spec.kill_round, spec.kill_round + 20,
                               "mass-kill");
    }
    driver.attach_recovery(recovery.get());
  }

  const auto start = Clock::now();
  if (spec.kill_fraction > 0.0) {
    driver.run_rounds(spec.kill_round);
    const auto to_kill = static_cast<std::size_t>(
        spec.kill_fraction * static_cast<double>(spec.n));
    Rng& crng = driver.churn_rng();
    while (run.killed < to_kill) {
      const auto victim = static_cast<NodeId>(crng.uniform(spec.n));
      if (cluster.live(victim)) {
        driver.kill(victim);
        ++run.killed;
      }
    }
    driver.run_rounds(spec.rounds - spec.kill_round);
  } else {
    driver.run_rounds(spec.rounds);
  }
  run.seconds = std::chrono::duration<double>(Clock::now() - start).count();

  run.actions = driver.actions_executed();
  run.net = driver.network_metrics();
  run.fingerprint = driver.fingerprint();
  run.events = detection.event_count(true);
  run.complete_events = detection.complete_count(true);
  run.completeness = detection.completeness(true);
  run.mean_first_latency = detection.mean_first_latency(true);
  run.mean_last_latency = detection.mean_last_latency(true);
  run.max_last_latency = detection.max_last_latency(true);
  run.fp_events = detection.fp_events();
  run.fp_unresolved = detection.fp_unresolved();
  if (recovery != nullptr) {
    run.episodes = recovery->episodes();
    run.unrecovered = recovery->unrecovered();
  }
  return run;
}

ArenaRun run_arena_leg(const ArenaSpec& spec) {
  ArenaRun first = run_arena_once(spec);
  const ArenaRun second = run_arena_once(spec);
  first.deterministic = first.fingerprint == second.fingerprint &&
                        first.net.sent == second.net.sent &&
                        first.net.delivered == second.net.delivered &&
                        first.fp_events == second.fp_events;
  return first;
}

const obs::RecoveryEpisode* arena_episode(const ArenaRun& run,
                                          const char* label) {
  for (const obs::RecoveryEpisode& e : run.episodes) {
    if (e.label == label) return &e;
  }
  return nullptr;
}

void emit_arena_leg(std::ofstream& out, const ArenaRun& r, bool last) {
  char buf[640];
  const double msgs_per_action =
      r.actions > 0
          ? static_cast<double>(r.net.sent) / static_cast<double>(r.actions)
          : 0.0;
  std::snprintf(
      buf, sizeof(buf),
      "    {\"protocol\": \"%s\", \"scenario\": \"%s\", \"loss\": %g,\n"
      "     \"n\": %zu, \"rounds\": %zu, \"seconds\": %.3f, "
      "\"killed\": %zu,\n"
      "     \"sent\": %llu, \"delivered\": %llu, \"lost\": %llu, "
      "\"faulted\": %llu, \"to_dead\": %llu,\n"
      "     \"msgs_per_node_round\": %.2f,\n"
      "     \"fingerprint\": \"0x%llx\", \"deterministic\": %s,\n"
      "     \"detection\": {\"events\": %zu, \"complete\": %zu, "
      "\"completeness\": %.4f,\n"
      "       \"mean_first_latency\": %.1f, \"mean_last_latency\": %.1f, "
      "\"max_last_latency\": %llu,\n"
      "       \"fp_events\": %llu, \"fp_unresolved\": %zu}",
      r.spec.protocol, r.spec.scenario, r.spec.loss, r.spec.n, r.spec.rounds,
      r.seconds, r.killed, static_cast<unsigned long long>(r.net.sent),
      static_cast<unsigned long long>(r.net.delivered),
      static_cast<unsigned long long>(r.net.lost),
      static_cast<unsigned long long>(r.net.faulted),
      static_cast<unsigned long long>(r.net.to_dead), msgs_per_action,
      static_cast<unsigned long long>(r.fingerprint),
      r.deterministic ? "true" : "false", r.events, r.complete_events,
      r.completeness, r.mean_first_latency, r.mean_last_latency,
      static_cast<unsigned long long>(r.max_last_latency),
      static_cast<unsigned long long>(r.fp_events), r.fp_unresolved);
  out << buf;
  if (std::strcmp(r.spec.protocol, "sf") == 0) {
    std::snprintf(buf, sizeof(buf), ",\n     \"unrecovered\": %zu, "
                  "\"episodes\": [", r.unrecovered);
    out << buf;
    for (std::size_t i = 0; i < r.episodes.size(); ++i) {
      const obs::RecoveryEpisode& e = r.episodes[i];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"label\": \"%s\", \"degraded\": %s, "
                    "\"recovered\": %s, \"recovery_rounds\": %llu}",
                    i == 0 ? "" : ", ", e.label.c_str(),
                    e.degraded ? "true" : "false",
                    e.recovered ? "true" : "false",
                    static_cast<unsigned long long>(e.recovery_rounds()));
      out << buf;
    }
    out << "]";
  }
  out << "}" << (last ? "\n" : ",\n");
}

bool emit_arena_json(bool quick, const std::string& path) {
  const std::size_t n = quick ? 128 : 256;
  const double losses[] = {0.0, 0.02, 0.10};
  const char* protocols[] = {"sf", "swim", "a2a"};

  // The three scenarios, instantiated per (protocol, loss) below.
  const auto make_spec = [n](const char* protocol, const char* scenario,
                             double loss) {
    ArenaSpec spec;
    spec.protocol = protocol;
    spec.scenario = scenario;
    spec.loss = loss;
    spec.n = n;
    // The same fault geometry as the chaos legs: every window begins at
    // round 150 so the RecoveryTracker gets 50 calm post-warmup probes to
    // pin its baseline before the overlay is pushed out of band.
    if (std::strcmp(scenario, "partition_heal") == 0) {
      spec.rounds = 480;
      sim::FaultPhase cut;
      cut.kind = sim::FaultKind::kPartition;
      cut.begin = 150;
      cut.end = 170;
      cut.a_lo = 0;
      cut.a_hi = static_cast<NodeId>(n / 2 - 1);
      cut.b_lo = static_cast<NodeId>(n / 2);
      cut.b_hi = static_cast<NodeId>(n - 1);
      cut.label = "split";
      spec.schedule.phases.push_back(cut);
    } else if (std::strcmp(scenario, "mass_kill") == 0) {
      spec.rounds = 520;
      spec.kill_fraction = 0.20;
      spec.kill_round = 150;
    } else {  // regional_burst
      spec.rounds = 420;
      spec.schedule.regions = 4;
      sim::FaultPhase b;
      b.kind = sim::FaultKind::kBurst;
      b.begin = 150;
      b.end = 190;
      b.region = 1;
      b.rate = 0.5;
      b.burst_len = 8.0;
      b.label = "rack-burst";
      spec.schedule.phases.push_back(b);
    }
    return spec;
  };

  const char* scenarios[] = {"partition_heal", "mass_kill", "regional_burst"};
  std::vector<ArenaRun> runs;
  for (const char* protocol : protocols) {
    for (const char* scenario : scenarios) {
      for (const double loss : losses) {
        std::printf("arena: %s x %s @ loss=%.2f (n=%zu, two runs)\n",
                    protocol, scenario, loss, n);
        runs.push_back(run_arena_leg(make_spec(protocol, scenario, loss)));
      }
    }
  }

  // Gates over the matrix.
  bool matrix_complete = runs.size() == 27;
  bool deterministic = true;
  bool swim_complete = true;
  bool swim_fp_ok = true;
  bool sf_partition_ok = true;
  bool sf_mass_ok = true;
  for (const ArenaRun& r : runs) {
    if (r.net.sent == 0) matrix_complete = false;
    if (!r.deterministic) deterministic = false;
    const bool gated_loss = r.spec.loss <= 0.02;
    if (std::strcmp(r.spec.protocol, "swim") == 0 &&
        std::strcmp(r.spec.scenario, "mass_kill") == 0 && gated_loss) {
      if (r.events == 0 || r.complete_events != r.events ||
          r.completeness < 1.0) {
        swim_complete = false;
        std::fprintf(stderr,
                     "error: swim mass_kill loss=%g completeness %.4f "
                     "(%zu/%zu events complete)\n",
                     r.spec.loss, r.completeness, r.complete_events,
                     r.events);
      }
      const std::uint64_t fp_budget = kArenaSwimFpPerNode * r.spec.n;
      if (r.fp_events > fp_budget || r.fp_unresolved != 0) {
        swim_fp_ok = false;
        std::fprintf(stderr,
                     "error: swim mass_kill loss=%g fp_events %llu over "
                     "budget %llu (or %zu spells never refuted)\n",
                     r.spec.loss,
                     static_cast<unsigned long long>(r.fp_events),
                     static_cast<unsigned long long>(fp_budget),
                     r.fp_unresolved);
      }
    }
    if (std::strcmp(r.spec.protocol, "sf") == 0 && gated_loss) {
      if (std::strcmp(r.spec.scenario, "partition_heal") == 0) {
        const obs::RecoveryEpisode* e = arena_episode(r, "split");
        if (e == nullptr || !e->degraded || !e->recovered ||
            e->recovery_rounds() > kArenaSfPartitionBudget ||
            r.unrecovered != 0) {
          sf_partition_ok = false;
          std::fprintf(stderr,
                       "error: sf partition_heal loss=%g failed its recovery "
                       "gate (degraded=%d recovered=%d rounds=%llu "
                       "unrecovered=%zu)\n",
                       r.spec.loss, e != nullptr && e->degraded,
                       e != nullptr && e->recovered,
                       static_cast<unsigned long long>(
                           e != nullptr ? e->recovery_rounds() : 0),
                       r.unrecovered);
        }
      } else if (std::strcmp(r.spec.scenario, "mass_kill") == 0) {
        const obs::RecoveryEpisode* e = arena_episode(r, "mass-kill");
        if (e == nullptr || !e->degraded || !e->recovered ||
            e->recovery_rounds() > kArenaSfMassKillBudget ||
            r.unrecovered != 0) {
          sf_mass_ok = false;
          std::fprintf(stderr,
                       "error: sf mass_kill loss=%g failed its recovery gate "
                       "(degraded=%d recovered=%d rounds=%llu "
                       "unrecovered=%zu)\n",
                       r.spec.loss, e != nullptr && e->degraded,
                       e != nullptr && e->recovered,
                       static_cast<unsigned long long>(
                           e != nullptr ? e->recovery_rounds() : 0),
                       r.unrecovered);
        }
      }
    }
  }

  std::ofstream out(path);
  emit_header(out, "arena");
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "  \"n\": %zu, \"seed\": 42, \"shards\": 4,\n"
                "  \"budgets\": {\"swim_fp_events\": %llu, "
                "\"sf_partition_rounds\": %llu, "
                "\"sf_mass_kill_rounds\": %llu},\n"
                "  \"legs\": [\n",
                n, static_cast<unsigned long long>(kArenaSwimFpPerNode * n),
                static_cast<unsigned long long>(kArenaSfPartitionBudget),
                static_cast<unsigned long long>(kArenaSfMassKillBudget));
  out << buf;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    emit_arena_leg(out, runs[i], i + 1 == runs.size());
  }
  out << "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"gates\": {\"matrix_complete\": %s, "
                "\"deterministic\": %s, \"swim_complete\": %s, "
                "\"swim_fp_under_budget\": %s, "
                "\"sf_partition_recovered\": %s, "
                "\"sf_mass_kill_recovered\": %s}\n}\n",
                matrix_complete ? "true" : "false",
                deterministic ? "true" : "false",
                swim_complete ? "true" : "false",
                swim_fp_ok ? "true" : "false",
                sf_partition_ok ? "true" : "false",
                sf_mass_ok ? "true" : "false");
  out << buf;
  if (!deterministic) {
    std::fprintf(stderr,
                 "error: at least one arena leg was not bit-identical "
                 "across its two runs\n");
  }
  return static_cast<bool>(out) && matrix_complete && deterministic &&
         swim_complete && swim_fp_ok && sf_partition_ok && sf_mass_ok;
}

struct GateRun {
  std::vector<BenchResult> best;  // fastest repetition per leg
  GateOverheads overheads;        // median paired ratios
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

GateRun gate_overhead_run(std::size_t reps, std::size_t n, std::size_t threads,
                          std::size_t rounds) {
  GateRun gate;
  gate.overheads.ref_n = n;
  // Gate legs keep the seed's single-shard configuration: the instrumented
  // and bare runs then differ only in counting/recording cost, on the same
  // schedule the overhead budgets were originally calibrated against.
  const ShardedLegSpec leg{
      .n = n, .shards = threads, .threads = threads, .rounds = rounds};
  // Calibration run: warms caches before any timed pair and supplies the
  // action count (deterministic for fixed n/threads/rounds) that the
  // no-op-counter leg cannot measure for itself.
  BenchResult bare_best = run_sharded(leg, ShardedMode::kBare);
  const std::uint64_t actions = bare_best.actions;

  // One pair block per gate: base and variant strictly back to back, so
  // each ratio compares runs with zero gap between them — even a 2-second
  // separation (a third leg in between) has measured percent-level drift
  // on this hardware.
  BenchResult noop_best;
  BenchResult rec_best;
  const auto keep = [](BenchResult& best, BenchResult r) {
    if (best.driver.empty() || r.actions_per_sec > best.actions_per_sec) {
      best = std::move(r);
    }
  };
  // Each pair: the reference (denominator) mode, then the variant whose
  // slowdown relative to it is the gate value.
  const auto pair_block = [&](ShardedMode ref, BenchResult& ref_best,
                              ShardedMode variant, BenchResult& variant_best) {
    std::vector<double> pcts;
    for (std::size_t i = 0; i < reps; ++i) {
      BenchResult base = run_sharded(leg, ref, actions);
      BenchResult var = run_sharded(leg, variant, actions);
      if (base.actions_per_sec > 0.0 && var.actions_per_sec > 0.0) {
        pcts.push_back(
            100.0 * (1.0 - var.actions_per_sec / base.actions_per_sec));
      }
      keep(ref_best, std::move(base));
      keep(variant_best, std::move(var));
    }
    return median(std::move(pcts));
  };
  // Registry gate: the counted run (bare) measured against the no-op sink.
  gate.overheads.registry_pct = pair_block(
      ShardedMode::kNoopCounters, noop_best, ShardedMode::kBare, bare_best);
  // Recorder gate: recording measured against the counted default.
  gate.overheads.recorder_pct = pair_block(
      ShardedMode::kBare, bare_best, ShardedMode::kRecorder, rec_best);
  gate.best.push_back(std::move(bare_best));
  gate.best.push_back(std::move(noop_best));
  gate.best.push_back(std::move(rec_best));
  return gate;
}

// True when the configure-time git-describe stamp marks an untracked or
// modified tree. The stamp is captured at configure time: a clean rebuild
// after committing is required before regenerating baselines.
bool tree_is_dirty() {
  const std::string git = GOSSIP_GIT_DESCRIBE;
  return git == "unknown" ||
         (git.size() >= 6 && git.compare(git.size() - 6, 6, "-dirty") == 0);
}

// Baseline outputs are the committed BENCH_*.json files the regression gate
// (tools/check_bench.py) validates; ad-hoc output names are exempt from the
// dirty-tree refusal.
bool is_baseline_output(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return base.rfind("BENCH_", 0) == 0;
}

int main(int argc, char** argv) {
  bool quick = false;
  bool analysis_mode = false;
  bool telemetry_mode = false;
  bool drift_mode = false;
  bool chaos_mode = false;
  bool forensics_mode = false;
  bool arena_mode = false;
  bool allow_dirty = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      // Scale is the default mode; the explicit flag lets CI name the leg
      // it runs (`bench_report --scale --quick`) without relying on that.
    } else if (std::strcmp(argv[i], "--analysis") == 0) {
      analysis_mode = true;
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      telemetry_mode = true;
    } else if (std::strcmp(argv[i], "--drift") == 0) {
      drift_mode = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos_mode = true;
    } else if (std::strcmp(argv[i], "--forensics") == 0) {
      forensics_mode = true;
    } else if (std::strcmp(argv[i], "--arena") == 0) {
      arena_mode = true;
    } else if (std::strcmp(argv[i], "--allow-dirty") == 0) {
      allow_dirty = true;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    path = telemetry_mode ? "BENCH_telemetry.json"
           : analysis_mode ? "BENCH_analysis.json"
           : drift_mode    ? "BENCH_drift.json"
           : chaos_mode    ? "BENCH_chaos.json"
           : forensics_mode ? "BENCH_forensics.json"
           : arena_mode    ? "BENCH_arena.json"
                           : "BENCH_scale.json";
  }

  if (is_baseline_output(path) && tree_is_dirty()) {
    if (!allow_dirty) {
      std::fprintf(
          stderr,
          "error: refusing to write baseline %s from a dirty tree "
          "(git: %s).\ncommit first and reconfigure so the header records a "
          "clean revision, or pass --allow-dirty for a local experiment.\n",
          path.c_str(), GOSSIP_GIT_DESCRIBE);
      return 2;
    }
    std::fprintf(stderr,
                 "warning: writing baseline %s from a dirty tree (git: %s); "
                 "tools/check_bench.py will reject it if committed.\n",
                 path.c_str(), GOSSIP_GIT_DESCRIBE);
  }

  if (arena_mode) {
    if (!emit_arena_json(quick, path)) {
      std::fprintf(stderr, "error: arena run failed (%s)\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
  }

  if (forensics_mode) {
    if (!emit_forensics_json(quick, path)) {
      std::fprintf(stderr, "error: forensics run failed (%s)\n",
                   path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
  }

  if (chaos_mode) {
    if (!emit_chaos_json(quick, path)) {
      std::fprintf(stderr, "error: chaos run failed (%s)\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
  }

  if (drift_mode) {
    if (!emit_drift_json(quick, path)) {
      std::fprintf(stderr, "error: drift run failed (%s)\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
  }

  if (telemetry_mode) {
    if (!emit_telemetry_json(quick, path)) {
      std::fprintf(stderr, "error: telemetry run failed (%s)\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
  }

  if (analysis_mode) {
    if (!emit_analysis_json(quick, path)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
  }

  std::vector<BenchResult> results;
  const auto record = [&results](BenchResult r) {
    std::printf("%-22s n=%-8zu shards=%-3zu threads=%zu rounds=%-4zu "
                "%10.3g actions/s rss=%.0f MiB\n",
                r.driver.c_str(), r.n, r.shards, r.threads, r.rounds,
                r.actions_per_sec, r.rss_mb);
    results.push_back(std::move(r));
  };

  // The registry- and recorder-overhead gate legs run single-threaded
  // (oversubscribed multi-thread timing, common in CI containers, is
  // barrier-scheduling noise, not counting cost) under the paired/median
  // protocol of gate_overhead_run.
  GateOverheads gates;
  if (quick) {
    record(run_sequential(5'000, 50));
    GateRun gate = gate_overhead_run(5, 5'000, 1, 50);
    gates = gate.overheads;
    for (BenchResult& r : gate.best) record(std::move(r));
    // Headline configuration at CI size: many cache-resident shards on one
    // worker, plus the §5 batched-message variant on the same layout.
    record(run_sharded({.n = 5'000, .shards = 8, .threads = 1, .rounds = 50}));
    record(run_sharded(
        {.n = 5'000, .shards = 8, .threads = 1, .rounds = 50, .pairs = 2}));
    record(run_sharded({.n = 5'000, .shards = 4, .threads = 4, .rounds = 50}));
    record(run_sharded({.n = 5'000, .shards = 4, .threads = 4, .rounds = 50},
                       ShardedMode::kObserved));
    // The 10M leg's code path (circulant install_slot seeding, first-touch
    // init, run-to-completion at scale) stubbed to a CI-sized n.
    record(run_sharded({.n = 100'000,
                        .shards = 64,
                        .threads = 4,
                        .rounds = 3,
                        .cyclic_seed = true}));
  } else {
    record(run_sequential(50'000, 200));
    // Gate legs run 2x the table's round count: a ~2-second timed region
    // averages over the sub-second noise bursts that corrupt shorter runs.
    GateRun gate = gate_overhead_run(7, 50'000, 1, 400);
    gates = gate.overheads;
    for (BenchResult& r : gate.best) record(std::move(r));
    // Headline single-worker leg: 32 logical shards on 1 thread. Each
    // shard's slab slice (~250 KiB) stays L2-resident through its phases;
    // cross-shard messages batch through the frame mailboxes. Gated in
    // check_bench.py at >= 1.5x the seed engine's committed 8.93M a/s.
    record(run_sharded({.n = 50'000, .shards = 32, .threads = 1,
                        .rounds = 200}));
    record(run_sharded({.n = 50'000, .shards = 32, .threads = 1,
                        .rounds = 200, .pairs = 2}));
    record(run_sharded({.n = 50'000, .shards = 4, .threads = 4,
                        .rounds = 200}));
    record(run_sharded({.n = 50'000, .shards = 4, .threads = 4,
                        .rounds = 200},
                       ShardedMode::kObserved));
    record(run_sharded({.n = 200'000, .shards = 4, .threads = 4,
                        .rounds = 100}));
    record(run_sharded({.n = 1'000'000, .shards = 4, .threads = 4,
                        .rounds = 30}));
    // The 10M-node leg: circulant install_slot seeding (no Digraph),
    // first-touch slab init, 64 shards. bytes_per_node is gated <= 220 in
    // check_bench.py — the packed layout budgets ~171 B/node (160 slab +
    // side arrays + live lists).
    record(run_sharded({.n = 10'000'000,
                        .shards = 64,
                        .threads = 4,
                        .rounds = 3,
                        .cyclic_seed = true}));
  }
  if (!emit_json(results, path, gates)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
