# Empty compiler generated dependencies file for test_peer_sampler.
# This may be replaced when dependencies are built.
