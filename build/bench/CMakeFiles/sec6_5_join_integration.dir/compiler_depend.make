# Empty compiler generated dependencies file for sec6_5_join_integration.
# This may be replaced when dependencies are built.
