// A cluster of protocol instances plus liveness bookkeeping.
//
// The cluster is the "world" the drivers act on: it owns one PeerProtocol
// per node id, tracks which nodes are alive (churn), and converts between
// protocol views and membership graphs (§4's graph model) for analysis.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/node_id.hpp"
#include "core/protocol.hpp"
#include "graph/digraph.hpp"

namespace gossip::sim {

class Cluster {
 public:
  using ProtocolFactory =
      std::function<std::unique_ptr<PeerProtocol>(NodeId id)>;

  // Creates `node_count` protocol instances via `factory`, all alive.
  Cluster(std::size_t node_count, const ProtocolFactory& factory);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] std::size_t live_count() const { return live_count_; }

  [[nodiscard]] PeerProtocol& node(NodeId id);
  [[nodiscard]] const PeerProtocol& node(NodeId id) const;

  [[nodiscard]] bool live(NodeId id) const;

  // Marks a node dead (leave/failure: it simply stops participating, §5).
  // Its view is left untouched; other views keep referencing it until the
  // protocol washes the id out.
  void kill(NodeId id);

  // Revives a node with a fresh protocol instance (rejoin).
  void revive(NodeId id, const ProtocolFactory& factory);

  // Appends a brand-new node; returns its id.
  NodeId spawn(const ProtocolFactory& factory);

  // Uniformly random live node. Requires live_count() > 0. O(1): one draw
  // into the dense live-id array (kill/revive/spawn maintain it with
  // swap-remove), so churn-heavy runs don't degrade toward rejection or
  // scan costs as the live fraction shrinks.
  [[nodiscard]] NodeId random_live_node(Rng& rng) const;

  // Ids of all live nodes, ascending. O(live log live).
  [[nodiscard]] std::vector<NodeId> live_nodes() const;

  [[nodiscard]] const std::vector<bool>& liveness() const { return live_; }

  // Installs views from a membership graph: node u's view receives the
  // multiset of out-neighbors of u (truncated at capacity).
  void install_graph(const Digraph& graph);

  // Snapshot of all views (live and dead) as a membership graph over
  // size() vertices.
  [[nodiscard]] Digraph snapshot() const;

  // Aggregated metrics over live nodes.
  [[nodiscard]] ProtocolMetrics aggregate_metrics() const;

 private:
  std::vector<std::unique_ptr<PeerProtocol>> nodes_;
  std::vector<bool> live_;
  // Dense array of live ids (arbitrary order) plus each id's position in
  // it; kill() swap-removes, revive()/spawn() append. Powers O(1) uniform
  // live-node sampling.
  std::vector<NodeId> live_ids_;
  std::vector<std::size_t> live_pos_;
  std::size_t live_count_ = 0;
};

}  // namespace gossip::sim
