#include "analysis/prediction.hpp"

#include <utility>

#include "analysis/independence.hpp"

namespace gossip::analysis {

obs::TheoryPrediction make_theory_prediction(const DegreeMcParams& params,
                                             double delta) {
  DegreeMcResult mc = solve_degree_mc(params);
  obs::TheoryPrediction pred;
  pred.loss = params.loss;
  pred.delta = delta;
  pred.view_size = params.view_size;
  pred.min_degree = params.min_degree;
  pred.out_pmf = std::move(mc.out_pmf);
  pred.in_pmf = std::move(mc.in_pmf);
  pred.expected_out = mc.expected_out;
  pred.expected_in = mc.expected_in;
  pred.duplication_probability = mc.duplication_probability;
  pred.deletion_probability = mc.deletion_probability;
  pred.alpha_lower_bound =
      independence_lower_bound_simple(params.loss, delta);
  return pred;
}

}  // namespace gossip::analysis
