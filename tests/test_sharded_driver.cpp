#include "sim/sharded_driver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/flat_send_forget.hpp"
#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "sim/round_driver.hpp"

namespace gossip::sim {
namespace {

void install_regular_topology(FlatSendForgetCluster& cluster, std::size_t k,
                              std::uint64_t graph_seed) {
  Rng rng(graph_seed);
  const Digraph g = permutation_regular(cluster.size(), k, rng);
  for (NodeId u = 0; u < cluster.size(); ++u) {
    cluster.install_view(u, g.out_neighbors(u));
  }
}

// ---------------------------------------------------------------------------
// FlatSendForgetCluster unit behavior (must mirror SendForget, Fig 5.1).
// ---------------------------------------------------------------------------

TEST(FlatSendForget, InitiateOnEmptyViewIsSelfLoop) {
  FlatSendForgetCluster cluster(4, SendForgetConfig{.view_size = 6,
                                                    .min_degree = 0});
  Rng rng(1);
  FlatPush msg;
  EXPECT_EQ(cluster.initiate(0, rng, msg), FlatInitiateResult::kSelfLoop);
  EXPECT_EQ(cluster.degree(0), 0u);
}

TEST(FlatSendForget, InitiateClearsSlotsAboveMinDegree) {
  FlatSendForgetCluster cluster(8, SendForgetConfig{.view_size = 6,
                                                    .min_degree = 0});
  cluster.install_view(3, {1, 2});
  Rng rng(2);
  FlatPush msg;
  FlatInitiateResult result = FlatInitiateResult::kSelfLoop;
  while (result == FlatInitiateResult::kSelfLoop) {
    result = cluster.initiate(3, rng, msg);
  }
  ASSERT_EQ(result, FlatInitiateResult::kSent);
  EXPECT_EQ(cluster.degree(3), 0u);
  EXPECT_EQ(msg.count, 2u);
  EXPECT_EQ(msg.sender().id(), 3u);
  EXPECT_FALSE(msg.sender().dependent());
  EXPECT_FALSE(msg.carried().dependent());
  EXPECT_TRUE((msg.to == 1 && msg.carried().id() == 2) ||
              (msg.to == 2 && msg.carried().id() == 1));
}

TEST(FlatSendForget, InitiateDuplicatesAtMinDegree) {
  FlatSendForgetCluster cluster(8, SendForgetConfig{.view_size = 8,
                                                    .min_degree = 2});
  cluster.install_view(5, {1, 2});  // degree 2 == dL -> duplication
  Rng rng(3);
  FlatPush msg;
  FlatInitiateResult result = FlatInitiateResult::kSelfLoop;
  while (result == FlatInitiateResult::kSelfLoop) {
    result = cluster.initiate(5, rng, msg);
  }
  ASSERT_EQ(result, FlatInitiateResult::kSentDuplicated);
  EXPECT_EQ(cluster.degree(5), 2u);
  EXPECT_TRUE(msg.sender().dependent());
  EXPECT_TRUE(msg.carried().dependent());
}

TEST(FlatSendForget, ReceiveStoresBothIdsAndDeletesWhenFull) {
  FlatSendForgetCluster cluster(10, SendForgetConfig{.view_size = 6,
                                                     .min_degree = 0});
  Rng rng(4);
  FlatPush msg;
  msg.to = 0;
  msg.count = 2;
  msg.ids[0] = PackedViewEntry::pack(3, false);
  msg.ids[1] = PackedViewEntry::pack(7, true);
  EXPECT_EQ(cluster.receive(0, msg, rng), 2u);
  EXPECT_EQ(cluster.degree(0), 2u);
  const auto ids = cluster.view_ids(0);
  EXPECT_NE(std::find(ids.begin(), ids.end(), 3u), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), 7u), ids.end());

  cluster.install_view(1, {2, 3, 4, 5, 6, 7});
  msg.to = 1;
  EXPECT_EQ(cluster.receive(1, msg, rng), 0u);  // full: deletion
  EXPECT_EQ(cluster.degree(1), 6u);
}

TEST(FlatSendForget, ReceivingOwnIdCreatesDependentSelfEdge) {
  FlatSendForgetCluster cluster(10, SendForgetConfig{.view_size = 6,
                                                     .min_degree = 0});
  Rng rng(5);
  FlatPush msg;
  msg.to = 4;
  msg.count = 2;
  msg.ids[0] = PackedViewEntry::pack(1, false);
  msg.ids[1] = PackedViewEntry::pack(4, false);
  cluster.receive(4, msg, rng);
  for (const ViewEntry& e : cluster.view_entries(4)) {
    if (e.id == 4) EXPECT_TRUE(e.dependent);
  }
}

TEST(FlatSendForget, ReviveBootstrapsMinDegreeLiveIds) {
  FlatSendForgetCluster cluster(64, SendForgetConfig{.view_size = 12,
                                                     .min_degree = 4});
  install_regular_topology(cluster, 4, 11);
  Rng rng(6);
  cluster.kill(7);
  EXPECT_EQ(cluster.live_count(), 63u);
  cluster.revive(7, rng);
  EXPECT_TRUE(cluster.live(7));
  EXPECT_EQ(cluster.degree(7), 4u);
  for (const NodeId id : cluster.view_ids(7)) {
    EXPECT_NE(id, 7u);
    EXPECT_TRUE(cluster.live(id));
  }
}

// ---------------------------------------------------------------------------
// ShardedDriver: determinism, invariants, equivalence with RoundDriver.
// ---------------------------------------------------------------------------

// One full sharded run with loss and churn; returns the final fingerprint.
// `threads` = 0 keeps the historical one-worker-per-shard execution.
std::uint64_t churny_run(std::size_t n, std::size_t shards,
                         std::uint64_t seed, std::size_t threads = 0) {
  FlatSendForgetCluster cluster(n, default_send_forget_config());
  install_regular_topology(cluster, 18, 21);
  ShardedDriver driver(
      cluster, ShardedDriverConfig{.shard_count = shards,
                                   .thread_count = threads,
                                   .loss_rate = 0.05,
                                   .seed = seed});
  Rng churn_picks(seed ^ 0xABCD);
  std::vector<NodeId> dead;
  for (int batch = 0; batch < 8; ++batch) {
    driver.run_rounds(3);
    // Deterministic churn schedule: kill two nodes, revive one.
    for (int i = 0; i < 2; ++i) {
      const auto victim =
          static_cast<NodeId>(churn_picks.uniform(cluster.size()));
      if (cluster.live(victim) && cluster.live_count() > n / 2) {
        driver.kill(victim);
        dead.push_back(victim);
      }
    }
    if (!dead.empty()) {
      driver.revive(dead.back());
      dead.pop_back();
    }
  }
  return cluster.fingerprint() ^ (driver.actions_executed() * 0x9E37ULL) ^
         driver.network_metrics().delivered;
}

TEST(ShardedDriver, BitExactDeterminismForFixedSeedAndThreadCount) {
  // Same (seed, shard_count) => bit-identical final state and counters,
  // regardless of how the OS schedules the worker threads.
  const std::uint64_t a = churny_run(4096, 4, 77);
  const std::uint64_t b = churny_run(4096, 4, 77);
  EXPECT_EQ(a, b);
  // Different seed must (overwhelmingly) diverge — guards against the
  // fingerprint degenerating to a constant.
  EXPECT_NE(a, churny_run(4096, 4, 78));
}

TEST(ShardedDriver, SingleVsMultiShardAreBothDeterministic) {
  EXPECT_EQ(churny_run(1000, 1, 5), churny_run(1000, 1, 5));
  EXPECT_EQ(churny_run(1000, 3, 5), churny_run(1000, 3, 5));
}

TEST(ShardedDriver, FingerprintInvariantAcrossThreadCounts) {
  // The logical shard is the determinism unit: for a fixed (seed,
  // shard_count), the final state is bit-identical no matter how many
  // worker threads execute the shards.
  const std::uint64_t base = churny_run(4096, 8, 123, /*threads=*/1);
  EXPECT_EQ(base, churny_run(4096, 8, 123, /*threads=*/2));
  EXPECT_EQ(base, churny_run(4096, 8, 123, /*threads=*/3));
  EXPECT_EQ(base, churny_run(4096, 8, 123, /*threads=*/8));
  // ... while shard_count is part of the contract: changing it re-streams
  // the RNGs and must diverge.
  EXPECT_NE(base, churny_run(4096, 4, 123, /*threads=*/4));
}

TEST(ShardedDriver, BatchedPairsDeterministicAcrossThreadCounts) {
  // §5 batched messages (p = 2): 4-id payloads ride the same mailbox
  // frames; the determinism contract must hold for them too. Runs under
  // ThreadSanitizer via the suite's `tsan` label.
  const auto run = [](std::size_t threads) {
    FlatSendForgetCluster cluster(2048, default_send_forget_config(),
                                  FlatClusterOptions{.pairs_per_message = 2});
    install_regular_topology(cluster, 18, 5);
    ShardedDriver driver(cluster, ShardedDriverConfig{.shard_count = 4,
                                                      .thread_count = threads,
                                                      .loss_rate = 0.05,
                                                      .seed = 33});
    driver.run_rounds(40);
    return cluster.fingerprint() ^ driver.network_metrics().delivered ^
           (driver.protocol_metrics().ids_accepted * 0x9E37ULL);
  };
  const std::uint64_t base = run(1);
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(4));
}

TEST(ShardedDriver, BatchedPairsAcceptPartialPayloads) {
  // A 2p-id delivery into a view with fewer than 2p empty slots accepts
  // the prefix that fits and records exactly one deletion (§5 /
  // SendForgetExt semantics) — visible through ids_accepted < 2p * count.
  FlatSendForgetCluster cluster(512, default_send_forget_config(),
                                FlatClusterOptions{.pairs_per_message = 2});
  install_regular_topology(cluster, 36, 7);  // near-full views
  ShardedDriver driver(cluster, ShardedDriverConfig{.shard_count = 2,
                                                    .thread_count = 1,
                                                    .loss_rate = 0.0,
                                                    .seed = 11});
  driver.run_rounds(30);
  const auto m = driver.protocol_metrics();
  ASSERT_GT(m.messages_received, 0u);
  EXPECT_GT(m.ids_accepted, 0u);
  // Partial acceptance happened: accepted ids are not a whole multiple of
  // full 4-id payloads for every delivery.
  EXPECT_LT(m.ids_accepted, 4 * m.messages_received);
  EXPECT_GT(m.deletions, 0u);
}

TEST(ShardedDriver, RunToQuiescenceStopsEarlyAndIsDeterministic) {
  // dL = 0 with total loss: every action clears two slots and nothing is
  // ever delivered, so the cluster decays to all-empty views and the
  // quiescence predicate must fire long before the round budget.
  const auto run = [](std::size_t threads, std::uint64_t* ran_out) {
    FlatSendForgetCluster cluster(
        512, SendForgetConfig{.view_size = 16, .min_degree = 0});
    install_regular_topology(cluster, 8, 13);
    ShardedDriver driver(cluster, ShardedDriverConfig{.shard_count = 4,
                                                      .thread_count = threads,
                                                      .loss_rate = 1.0,
                                                      .seed = 3});
    const std::uint64_t ran = driver.run_to_quiescence(50'000);
    if (ran_out != nullptr) *ran_out = ran;
    for (NodeId u = 0; u < cluster.size(); ++u) {
      EXPECT_EQ(cluster.degree(u), 0u) << "node " << u;
    }
    return cluster.fingerprint() ^ (ran * 0x9E37ULL);
  };
  std::uint64_t ran1 = 0;
  std::uint64_t ran4 = 0;
  const std::uint64_t a = run(1, &ran1);
  EXPECT_LT(ran1, 50'000u);
  EXPECT_GT(ran1, 0u);
  // Same seed, same shard count: identical stopping round and final state,
  // single- or multi-threaded.
  EXPECT_EQ(a, run(1, nullptr));
  EXPECT_EQ(a, run(4, &ran4));
  EXPECT_EQ(ran1, ran4);
}

TEST(ShardedDriver, Obs51InvariantUnderParallelLossAndChurn) {
  // Observation 5.1: every outdegree stays even and within [dL, s] — after
  // >= 10k parallel actions under 5% loss with ongoing churn.
  const std::size_t n = 2000;
  const auto cfg = default_send_forget_config();
  FlatSendForgetCluster cluster(n, cfg);
  install_regular_topology(cluster, cfg.min_degree, 31);
  ShardedDriver driver(cluster, ShardedDriverConfig{.shard_count = 4,
                                                    .loss_rate = 0.05,
                                                    .seed = 9});
  Rng churn_picks(123);
  std::vector<NodeId> dead;
  for (int batch = 0; batch < 10; ++batch) {
    driver.run_rounds(1);
    for (int i = 0; i < 5; ++i) {
      const auto victim = static_cast<NodeId>(churn_picks.uniform(n));
      if (cluster.live(victim) && cluster.live_count() > n - 200) {
        driver.kill(victim);
        dead.push_back(victim);
      }
    }
    while (dead.size() > 3) {
      driver.revive(dead.back());
      dead.pop_back();
    }
  }
  ASSERT_GE(driver.actions_executed(), 10'000u);
  for (NodeId u = 0; u < n; ++u) {
    if (!cluster.live(u)) continue;
    const std::size_t d = cluster.degree(u);
    ASSERT_EQ(d % 2, 0u) << "node " << u;
    ASSERT_GE(d, cfg.min_degree) << "node " << u;
    ASSERT_LE(d, cfg.view_size) << "node " << u;
  }
  // Loss actually happened and messages actually crossed shards.
  EXPECT_GT(driver.network_metrics().lost, 0u);
  EXPECT_GT(driver.network_metrics().delivered, 0u);
}

TEST(ShardedDriver, OneShardMatchesRoundDriverStatistically) {
  // The sharded schedule (stratified initiations, barrier-drained
  // deliveries) must reproduce the serialized driver's steady state:
  // compare degree statistics at the paper's operating point under 5% loss.
  const std::size_t n = 2000;
  const std::size_t rounds = 300;
  const auto cfg = default_send_forget_config();

  FlatSendForgetCluster flat(n, cfg);
  install_regular_topology(flat, cfg.min_degree, 41);
  ShardedDriver sharded(flat, ShardedDriverConfig{.shard_count = 1,
                                                  .loss_rate = 0.05,
                                                  .seed = 17});
  sharded.run_rounds(rounds);

  Rng seq_rng(17);
  Rng graph_rng(41);
  Cluster cluster(n, [&cfg](NodeId id) {
    return std::make_unique<SendForget>(id, cfg);
  });
  cluster.install_graph(permutation_regular(n, cfg.min_degree, graph_rng));
  UniformLoss loss(0.05);
  RoundDriver driver(cluster, loss, seq_rng);
  driver.run_rounds(rounds);

  double flat_mean = 0.0;
  double seq_mean = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    flat_mean += static_cast<double>(flat.degree(u));
    seq_mean += static_cast<double>(cluster.node(u).view().degree());
  }
  flat_mean /= static_cast<double>(n);
  seq_mean /= static_cast<double>(n);
  // Same tolerance regime as test_send_forget.cpp's statistical checks
  // (4% of the quantity's scale).
  EXPECT_NEAR(flat_mean, seq_mean, 0.04 * static_cast<double>(cfg.view_size));

  const auto flat_m = sharded.protocol_metrics();
  const auto seq_m = cluster.aggregate_metrics();
  EXPECT_NEAR(flat_m.self_loop_rate(), seq_m.self_loop_rate(), 0.04);
  EXPECT_NEAR(flat_m.duplication_rate(), seq_m.duplication_rate(), 0.04);
}

}  // namespace
}  // namespace gossip::sim
