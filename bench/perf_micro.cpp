// Microbenchmarks (google-benchmark): throughput of the protocol's hot
// paths and of the supporting substrates. Not a paper figure — these
// document that the implementation is fast enough for large-scale
// simulation studies (millions of actions per second).
#include <benchmark/benchmark.h>

#include <memory>

#include "analysis/degree_analytical.hpp"
#include "common/rng.hpp"
#include "core/flat_send_forget.hpp"
#include "core/send_forget.hpp"
#include "graph/connectivity.hpp"
#include "graph/graph_gen.hpp"
#include "sim/round_driver.hpp"
#include "sim/sharded_driver.hpp"

namespace {

using namespace gossip;

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform(40));
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngDistinctPair(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.distinct_pair(40));
  }
}
BENCHMARK(BM_RngDistinctPair);

void BM_ViewRandomEmptySlot(benchmark::State& state) {
  LocalView view(40);
  for (std::size_t i = 0; i < 20; ++i) view.set(i, ViewEntry{1, false});
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.random_empty_slot(rng));
  }
}
BENCHMARK(BM_ViewRandomEmptySlot);

// One full protocol action including message delivery, at the paper's
// operating point.
void BM_SfProtocolAction(benchmark::State& state) {
  Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Cluster cluster(n, [](NodeId id) {
    return std::make_unique<SendForget>(id, default_send_forget_config());
  });
  cluster.install_graph(permutation_regular(n, 10, rng));
  sim::UniformLoss loss(0.01);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(50);  // reach steady state before timing
  for (auto _ : state) {
    driver.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SfProtocolAction)->Arg(1000)->Arg(10000);

// One round of the flat-storage sharded driver (sharded hot path: no
// per-action allocation, no virtual dispatch, O(1) slot selection).
// range(0) = n, range(1) = shard/thread count.
void BM_FlatShardedRound(benchmark::State& state) {
  Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  FlatSendForgetCluster cluster(n, default_send_forget_config());
  {
    const Digraph g = permutation_regular(n, 10, rng);
    for (NodeId u = 0; u < n; ++u) {
      cluster.install_view(u, g.out_neighbors(u));
    }
  }
  sim::ShardedDriver driver(
      cluster, sim::ShardedDriverConfig{
                   .shard_count = threads, .loss_rate = 0.01, .seed = 4});
  driver.run_rounds(50);  // reach steady state before timing
  for (auto _ : state) {
    driver.run_rounds(1);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FlatShardedRound)
    ->Args({10000, 1})
    ->Args({10000, 4})
    ->Args({100000, 1})
    ->Args({100000, 4});

void BM_SnapshotGraph(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Cluster cluster(n, [](NodeId id) {
    return std::make_unique<SendForget>(id, default_send_forget_config());
  });
  cluster.install_graph(permutation_regular(n, 10, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.snapshot());
  }
}
BENCHMARK(BM_SnapshotGraph)->Arg(1000);

void BM_WeakConnectivityCheck(benchmark::State& state) {
  Rng rng(6);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = random_out_regular(n, 10, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_weakly_connected(g));
  }
}
BENCHMARK(BM_WeakConnectivityCheck)->Arg(1000)->Arg(10000);

void BM_AnalyticalDegreePmf(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analytical_outdegree_pmf(90));
  }
}
BENCHMARK(BM_AnalyticalDegreePmf);

}  // namespace

BENCHMARK_MAIN();
