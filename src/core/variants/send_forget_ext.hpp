// Extended S&F: the three optimizations sketched (and deliberately left
// unanalyzed) at the end of §5:
//
//   1. *Mark & undelete* — instead of clearing sent ids, mark them as
//      tombstones; when the protocol would duplicate (d <= dL) it first
//      revives tombstones. If the message that carried the ids was lost,
//      undeletion restores exactly the lost instances, so compensation is
//      better targeted than blind duplication.
//   2. *Replace when full* — a full view replaces random existing entries
//      with the received ids instead of dropping the new ones, keeping
//      fresh information flowing.
//   3. *Batched messages* — one message carries the sender's id plus
//      2p - 1 view ids (p "pairs"), amortizing per-message overhead.
//
// The base protocol is the special case p = 1 with both flags off; the
// ablation bench quantifies what each optimization buys (and costs in
// dependence).
#pragma once

#include <cstddef>
#include <vector>

#include "core/protocol.hpp"

namespace gossip {

struct SendForgetExtConfig {
  std::size_t view_size = 40;   // s, even, >= 6
  std::size_t min_degree = 18;  // dL, even, <= s - 6
  // Optimization 3: ids per message = 2 * pairs_per_message (the sender's
  // own id plus 2p - 1 carried ids). p = 1 reproduces the base protocol.
  std::size_t pairs_per_message = 1;
  // Optimization 1.
  bool mark_instead_of_clear = false;
  // Optimization 2.
  bool replace_when_full = false;

  void validate() const;
};

class SendForgetExt final : public PeerProtocol {
 public:
  SendForgetExt(NodeId self, const SendForgetExtConfig& config);

  [[nodiscard]] const SendForgetExtConfig& config() const { return config_; }

  void on_initiate(Rng& rng, Transport& transport) override;
  void on_message(const Message& message, Rng& rng,
                  Transport& transport) override;

  // Extension metrics beyond the shared ProtocolMetrics.
  [[nodiscard]] std::uint64_t undeletions() const { return undeletions_; }
  [[nodiscard]] std::uint64_t replacements() const { return replacements_; }
  // Number of currently tombstoned slots (mark & undelete only).
  [[nodiscard]] std::size_t tombstone_count() const;

 private:
  // Revives up to `count` tombstones (oldest first); returns how many.
  std::size_t undelete(std::size_t count);
  // Drops all tombstones in the given slots (they were consumed).
  void store_received(const std::vector<ViewEntry>& entries, Rng& rng);

  SendForgetExtConfig config_;
  // Tombstones: slot indices whose entry was sent but kept revivable.
  // Invariant: a slot index appears at most once; tombstoned slots look
  // empty to the view (the entry is stashed here).
  struct Tombstone {
    std::size_t slot;
    ViewEntry entry;
  };
  std::vector<Tombstone> tombstones_;
  std::uint64_t undeletions_ = 0;
  std::uint64_t replacements_ = 0;
};

}  // namespace gossip
