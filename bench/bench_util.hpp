// Shared helpers for the figure/table reproduction benches.
//
// Each bench binary regenerates one of the paper's figures or in-text
// numeric results as an aligned text table (and optionally CSV), printing
// the paper's reported values alongside for comparison.
#pragma once

#include <cstdio>
#include <span>
#include <string>
#include <vector>

namespace gossip::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_subheader(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Prints aligned columns: first column from `labels`, remaining columns one
// per series. Rows where every series value is below `skip_below` in
// absolute value are skipped (keeps pmf tables readable).
inline void print_series_table(const std::string& x_header,
                               std::span<const std::string> series_names,
                               std::span<const double> x,
                               std::span<const std::vector<double>> series,
                               double skip_below = -1.0) {
  std::printf("%12s", x_header.c_str());
  for (const auto& name : series_names) std::printf("  %14s", name.c_str());
  std::printf("\n");
  for (std::size_t row = 0; row < x.size(); ++row) {
    if (skip_below >= 0.0) {
      bool keep = false;
      for (const auto& s : series) {
        if (row < s.size() && s[row] > skip_below) keep = true;
      }
      if (!keep) continue;
    }
    std::printf("%12.4g", x[row]);
    for (const auto& s : series) {
      if (row < s.size()) {
        std::printf("  %14.6g", s[row]);
      } else {
        std::printf("  %14s", "-");
      }
    }
    std::printf("\n");
  }
}

inline std::vector<double> index_axis(std::size_t count, std::size_t stride = 1) {
  std::vector<double> x;
  for (std::size_t i = 0; i < count; i += stride) {
    x.push_back(static_cast<double>(i));
  }
  return x;
}

inline void print_kv(const std::string& key, double value) {
  std::printf("  %-46s %g\n", key.c_str(), value);
}

inline void print_note(const std::string& note) {
  std::printf("  NOTE: %s\n", note.c_str());
}

}  // namespace gossip::bench
