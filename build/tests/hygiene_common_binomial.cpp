#include "common/binomial.hpp"
#include "common/binomial.hpp"
