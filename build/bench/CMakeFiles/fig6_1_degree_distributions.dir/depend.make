# Empty dependencies file for fig6_1_degree_distributions.
# This may be replaced when dependencies are built.
