// Robustness at trust boundaries and determinism guarantees.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/degree_mc.hpp"
#include "core/send_forget.hpp"
#include "core/variants/send_forget_ext.hpp"
#include "graph/graph_gen.hpp"
#include "sim/event_driver.hpp"
#include "sim/round_driver.hpp"
#include "test_support.hpp"

namespace gossip {
namespace {

using testing::CaptureTransport;

// --------------------------------------------------- malformed messages

TEST(Robustness, SfIgnoresWrongKind) {
  SendForget node(0, SendForgetConfig{.view_size = 6, .min_degree = 0});
  Rng rng(1);
  CaptureTransport transport;
  Message m;
  m.from = 1;
  m.to = 0;
  m.kind = MessageKind::kShuffleRequest;
  m.payload = {ViewEntry{1, false}, ViewEntry{2, false}};
  node.on_message(m, rng, transport);
  EXPECT_EQ(node.view().degree(), 0u);
  EXPECT_EQ(node.metrics().messages_received, 1u);
}

TEST(Robustness, SfIgnoresWrongPayloadSize) {
  SendForget node(0, SendForgetConfig{.view_size = 6, .min_degree = 0});
  Rng rng(2);
  CaptureTransport transport;
  for (const std::size_t size : {0u, 1u, 3u, 5u}) {
    Message m;
    m.from = 1;
    m.to = 0;
    m.kind = MessageKind::kPush;
    for (std::size_t k = 0; k < size; ++k) {
      m.payload.push_back(ViewEntry{static_cast<NodeId>(k + 1), false});
    }
    node.on_message(m, rng, transport);
  }
  EXPECT_EQ(node.view().degree(), 0u);
}

TEST(Robustness, SfIgnoresEmptyEntries) {
  SendForget node(0, SendForgetConfig{.view_size = 6, .min_degree = 0});
  Rng rng(3);
  CaptureTransport transport;
  Message m;
  m.from = 1;
  m.to = 0;
  m.kind = MessageKind::kPush;
  m.payload = {ViewEntry{}, ViewEntry{2, false}};
  node.on_message(m, rng, transport);
  EXPECT_EQ(node.view().degree(), 0u);
}

TEST(Robustness, SfExtIgnoresOddPayloads) {
  SendForgetExt node(0, SendForgetExtConfig{.view_size = 8, .min_degree = 2});
  Rng rng(4);
  CaptureTransport transport;
  Message m;
  m.from = 1;
  m.to = 0;
  m.kind = MessageKind::kPush;
  m.payload = {ViewEntry{1, false}, ViewEntry{2, false},
               ViewEntry{3, false}};
  node.on_message(m, rng, transport);
  EXPECT_EQ(node.view().degree(), 0u);
  // Valid payload still accepted afterwards.
  m.payload = {ViewEntry{1, false}, ViewEntry{2, false}};
  node.on_message(m, rng, transport);
  EXPECT_EQ(node.view().degree(), 2u);
}

// --------------------------------------------------------- determinism

TEST(Robustness, RoundDriverIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    sim::Cluster cluster(200, [](NodeId id) {
      return std::make_unique<SendForget>(
          id, SendForgetConfig{.view_size = 16, .min_degree = 6});
    });
    cluster.install_graph(permutation_regular(200, 4, rng));
    sim::UniformLoss loss(0.05);
    sim::RoundDriver driver(cluster, loss, rng);
    driver.run_rounds(100);
    return cluster.snapshot();
  };
  EXPECT_TRUE(run(42) == run(42));
  EXPECT_FALSE(run(42) == run(43));
}

TEST(Robustness, EventDriverIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    sim::Cluster cluster(100, [](NodeId id) {
      return std::make_unique<SendForget>(
          id, SendForgetConfig{.view_size = 16, .min_degree = 6});
    });
    cluster.install_graph(permutation_regular(100, 4, rng));
    sim::UniformLoss loss(0.02);
    sim::EventDriver driver(cluster, loss, rng);
    driver.run_rounds(60);
    return cluster.snapshot();
  };
  EXPECT_TRUE(run(7) == run(7));
}

TEST(Robustness, DegreeMcIsDeterministic) {
  // The numeric pipeline has no hidden RNG: repeated solves are identical.
  analysis::DegreeMcParams p;
  p.view_size = 40;
  p.min_degree = 18;
  p.loss = 0.05;
  const auto a = analysis::solve_degree_mc(p);
  const auto b = analysis::solve_degree_mc(p);
  ASSERT_EQ(a.stationary.size(), b.stationary.size());
  for (std::size_t k = 0; k < a.stationary.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.stationary[k], b.stationary[k]);
  }
}

}  // namespace
}  // namespace gossip
