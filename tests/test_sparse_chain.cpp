#include "markov/sparse_chain.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gossip::markov {
namespace {

TEST(SparseChainTest, TwoStateStationary) {
  SparseChain chain(2);
  chain.add(0, 1, 0.3);
  chain.add(1, 0, 0.1);
  chain.finalize();
  const auto result = chain.stationary();
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.distribution[0], 0.25, 1e-9);
  EXPECT_NEAR(result.distribution[1], 0.75, 1e-9);
}

TEST(SparseChainTest, SelfLoopsAreImplicit) {
  SparseChain chain(2);
  chain.add(0, 0, 0.4);  // ignored
  chain.add(0, 1, 0.5);
  chain.finalize();
  EXPECT_DOUBLE_EQ(chain.row_sum(0), 0.5);
  EXPECT_EQ(chain.transition_count(), 1u);
}

TEST(SparseChainTest, StepMatchesDenseSemantics) {
  SparseChain chain(3);
  chain.add(0, 1, 1.0);
  chain.add(1, 2, 0.5);
  chain.finalize();
  const auto out = chain.step({1.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  const auto out2 = chain.step(out);
  EXPECT_DOUBLE_EQ(out2[1], 0.5);
  EXPECT_DOUBLE_EQ(out2[2], 0.5);
}

TEST(SparseChainTest, RowOverflowThrows) {
  SparseChain chain(2);
  chain.add(0, 1, 0.8);
  chain.add(0, 1, 0.5);
  EXPECT_THROW(chain.finalize(), std::runtime_error);
}

TEST(SparseChainTest, ResizeOnDemand) {
  SparseChain chain;
  chain.add(5, 7, 0.1);
  EXPECT_EQ(chain.state_count(), 8u);
}

TEST(SparseChainTest, StronglyConnectedDetection) {
  SparseChain cycle(3);
  cycle.add(0, 1, 0.5);
  cycle.add(1, 2, 0.5);
  cycle.add(2, 0, 0.5);
  cycle.finalize();
  EXPECT_TRUE(cycle.strongly_connected());

  SparseChain chainlike(3);
  chainlike.add(0, 1, 0.5);
  chainlike.add(1, 2, 0.5);
  chainlike.finalize();
  EXPECT_FALSE(chainlike.strongly_connected());
}

TEST(SparseChainTest, DoublyStochasticDetection) {
  // Symmetric chain: rows and columns both sum to 1.
  SparseChain symmetric(2);
  symmetric.add(0, 1, 0.3);
  symmetric.add(1, 0, 0.3);
  symmetric.finalize();
  EXPECT_TRUE(symmetric.doubly_stochastic());

  SparseChain skewed(2);
  skewed.add(0, 1, 0.3);
  skewed.add(1, 0, 0.1);
  skewed.finalize();
  EXPECT_FALSE(skewed.doubly_stochastic());
}

TEST(SparseChainTest, DoublyStochasticImpliesUniformStationary) {
  SparseChain chain(4);
  for (std::size_t s = 0; s < 4; ++s) {
    chain.add(s, (s + 1) % 4, 0.25);
    chain.add(s, (s + 3) % 4, 0.25);
  }
  chain.finalize();
  ASSERT_TRUE(chain.doubly_stochastic());
  const auto result = chain.stationary();
  for (const double x : result.distribution) {
    EXPECT_NEAR(x, 0.25, 1e-9);
  }
}

TEST(SparseChainTest, EmptyChainThrowsOnStationary) {
  SparseChain chain;
  chain.finalize();
  EXPECT_THROW(chain.stationary(), std::runtime_error);
}

TEST(SparseChainTest, WarmStartValidation) {
  SparseChain chain(2);
  chain.add(0, 1, 0.5);
  chain.add(1, 0, 0.5);
  chain.finalize();
  EXPECT_THROW(chain.stationary({1.0}), std::invalid_argument);
  const auto r = chain.stationary({0.9, 0.1});
  EXPECT_NEAR(r.distribution[0], 0.5, 1e-9);
}

}  // namespace
}  // namespace gossip::markov
