file(REMOVE_RECURSE
  "CMakeFiles/sfgossip.dir/sfgossip.cpp.o"
  "CMakeFiles/sfgossip.dir/sfgossip.cpp.o.d"
  "sfgossip"
  "sfgossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfgossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
