#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <cassert>
#include <unordered_map>

namespace gossip {

using detail::rotl64;

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64_next(sm);
  // A zero state would be a fixed point of xoshiro; splitmix64 cannot emit
  // four zero words in a row, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::pareto(double minimum, double shape) {
  assert(minimum > 0.0);
  assert(shape > 0.0);
  // 1 - uniform_double() lies in (0, 1]; no log/pow domain issues.
  const double u = 1.0 - uniform_double();
  return minimum * std::pow(u, -1.0 / shape);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t count,
                                                         std::size_t k) {
  assert(k <= count);
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k * 3 >= count) {
    // Dense case: partial Fisher-Yates over an explicit permutation.
    std::vector<std::size_t> pool(count);
    for (std::size_t i = 0; i < count; ++i) pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(pool[i], pool[i + uniform(count - i)]);
      out.push_back(pool[i]);
    }
    return out;
  }
  // Sparse case: virtual Fisher-Yates using a displacement map.
  std::unordered_map<std::size_t, std::size_t> moved;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform(count - i);
    std::size_t value_j = j;
    if (auto it = moved.find(j); it != moved.end()) value_j = it->second;
    std::size_t value_i = i;
    if (auto it = moved.find(i); it != moved.end()) value_i = it->second;
    moved[j] = value_i;
    out.push_back(value_j);
  }
  return out;
}

std::vector<std::size_t> Rng::permutation(std::size_t count) {
  std::vector<std::size_t> perm(count);
  for (std::size_t i = 0; i < count; ++i) perm[i] = i;
  for (std::size_t i = count; i > 1; --i) {
    std::swap(perm[i - 1], perm[uniform(i)]);
  }
  return perm;
}

Rng Rng::stream(std::uint64_t root_seed, std::uint64_t stream_index) {
  // Hash root and index through independent splitmix64 chains before
  // combining, so nearby (root, index) pairs land on decorrelated seeds and
  // stream(r, i) never collides with the plain Rng(r) seeding path.
  std::uint64_t root_state = root_seed;
  std::uint64_t index_state = ~stream_index;
  const std::uint64_t seed =
      splitmix64_next(root_state) ^ rotl64(splitmix64_next(index_state), 17);
  return Rng(seed);
}

Rng Rng::split() {
  // Derive a child seed from two outputs; the child reseeds through
  // splitmix64, decorrelating it from this stream.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl64(b, 31));
}

}  // namespace gossip
