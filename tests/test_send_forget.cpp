#include "core/send_forget.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_support.hpp"

namespace gossip {
namespace {

using testing::CaptureTransport;

SendForgetConfig small_config() {
  return SendForgetConfig{.view_size = 6, .min_degree = 0};
}

TEST(SendForgetConfig, ValidationRules) {
  EXPECT_NO_THROW(default_send_forget_config().validate());
  EXPECT_NO_THROW((SendForgetConfig{.view_size = 6, .min_degree = 0}.validate()));
  // s must be >= 6 (§5 footnote).
  EXPECT_THROW((SendForgetConfig{.view_size = 4, .min_degree = 0}.validate()),
               std::invalid_argument);
  // s must be even.
  EXPECT_THROW((SendForgetConfig{.view_size = 7, .min_degree = 0}.validate()),
               std::invalid_argument);
  // dL must be even.
  EXPECT_THROW((SendForgetConfig{.view_size = 40, .min_degree = 17}.validate()),
               std::invalid_argument);
  // dL <= s - 6.
  EXPECT_THROW((SendForgetConfig{.view_size = 40, .min_degree = 36}.validate()),
               std::invalid_argument);
  EXPECT_NO_THROW((SendForgetConfig{.view_size = 40, .min_degree = 34}.validate()));
}

TEST(SendForget, DefaultConfigIsPapersExample) {
  const auto cfg = default_send_forget_config();
  EXPECT_EQ(cfg.view_size, 40u);   // s = 40
  EXPECT_EQ(cfg.min_degree, 18u);  // dL = 18
}

TEST(SendForget, EmptyViewActionIsSelfLoop) {
  SendForget node(0, small_config());
  Rng rng(1);
  CaptureTransport transport;
  node.on_initiate(rng, transport);
  EXPECT_TRUE(transport.sent.empty());
  EXPECT_EQ(node.metrics().actions_initiated, 1u);
  EXPECT_EQ(node.metrics().self_loop_actions, 1u);
  EXPECT_EQ(node.metrics().messages_sent, 0u);
}

TEST(SendForget, PartialViewCanSelfLoop) {
  // With 2 of 6 slots filled, most actions pick an empty slot.
  SendForget node(0, small_config());
  node.install_view({1, 2});
  Rng rng(2);
  CaptureTransport transport;
  int self_loops = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto before = node.metrics().self_loop_actions;
    node.on_initiate(rng, transport);
    if (node.metrics().self_loop_actions > before) ++self_loops;
    // Refill in case the action consumed the entries.
    node.install_view({1, 2});
  }
  // P(self-loop) = 1 - (2/6)(1/5) = 14/15.
  EXPECT_NEAR(self_loops / 1000.0, 14.0 / 15.0, 0.04);
}

TEST(SendForget, ActionSendsSelfAndCarriedIdAndClearsSlots) {
  // dL = 0 and degree 2 > 0: slots must be cleared (no duplication).
  SendForget node(5, small_config());
  node.install_view({1, 2});
  Rng rng(3);
  CaptureTransport transport;
  // Loop until a non-self-loop action happens.
  while (transport.sent.empty()) {
    node.on_initiate(rng, transport);
  }
  ASSERT_EQ(transport.sent.size(), 1u);
  const Message& m = transport.sent.front();
  EXPECT_EQ(m.from, 5u);
  EXPECT_EQ(m.kind, MessageKind::kPush);
  ASSERT_EQ(m.payload.size(), 2u);
  // Payload is [u, w]: the sender's own id plus the carried id.
  EXPECT_EQ(m.payload[0].id, 5u);
  // Target is one view id and the carried id is the other.
  EXPECT_TRUE((m.to == 1 && m.payload[1].id == 2) ||
              (m.to == 2 && m.payload[1].id == 1));
  // Both slots cleared: degree dropped to 0.
  EXPECT_EQ(node.view().degree(), 0u);
  // No duplication happened, so the payload is tagged independent.
  EXPECT_FALSE(m.payload[0].dependent);
  EXPECT_FALSE(m.payload[1].dependent);
  EXPECT_EQ(node.metrics().duplications, 0u);
}

TEST(SendForget, DuplicatesAtMinDegree) {
  SendForgetConfig cfg{.view_size = 8, .min_degree = 2};
  SendForget node(9, cfg);
  node.install_view({1, 2});  // degree 2 == dL -> duplication
  Rng rng(4);
  CaptureTransport transport;
  while (transport.sent.empty()) {
    node.on_initiate(rng, transport);
  }
  // Entries kept.
  EXPECT_EQ(node.view().degree(), 2u);
  EXPECT_EQ(node.metrics().duplications, 1u);
  // Duplication creates dependent instances in flight.
  EXPECT_TRUE(transport.sent.front().payload[0].dependent);
  EXPECT_TRUE(transport.sent.front().payload[1].dependent);
}

TEST(SendForget, ReceiveStoresBothIds) {
  SendForget node(0, small_config());
  Rng rng(5);
  CaptureTransport transport;
  Message m;
  m.from = 3;
  m.to = 0;
  m.kind = MessageKind::kPush;
  m.payload = {ViewEntry{3, false}, ViewEntry{7, true}};
  node.on_message(m, rng, transport);
  EXPECT_EQ(node.view().degree(), 2u);
  EXPECT_TRUE(node.view().contains(3));
  EXPECT_TRUE(node.view().contains(7));
  // Dependence tags preserved on arrival.
  EXPECT_EQ(node.view().dependent_count(), 1u);
  EXPECT_EQ(node.metrics().ids_accepted, 2u);
  EXPECT_EQ(node.metrics().deletions, 0u);
  EXPECT_TRUE(transport.sent.empty());  // S&F never replies
}

TEST(SendForget, ReceiveWhenFullDeletes) {
  SendForget node(0, small_config());
  node.install_view({1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(node.view().full());
  Rng rng(6);
  CaptureTransport transport;
  Message m;
  m.from = 7;
  m.to = 0;
  m.kind = MessageKind::kPush;
  m.payload = {ViewEntry{7, false}, ViewEntry{8, false}};
  node.on_message(m, rng, transport);
  EXPECT_EQ(node.view().degree(), 6u);
  EXPECT_FALSE(node.view().contains(7));
  EXPECT_EQ(node.metrics().deletions, 1u);
  EXPECT_EQ(node.metrics().ids_accepted, 0u);
}

TEST(SendForget, ReceivingOwnIdCreatesDependentSelfEdge) {
  SendForget node(4, small_config());
  Rng rng(7);
  CaptureTransport transport;
  Message m;
  m.from = 1;
  m.to = 4;
  m.kind = MessageKind::kPush;
  m.payload = {ViewEntry{1, false}, ViewEntry{4, false}};
  node.on_message(m, rng, transport);
  EXPECT_TRUE(node.view().contains(4));
  // Self-edges are labeled dependent (§2).
  for (const auto& e : node.view().entries()) {
    if (e.id == 4) {
      EXPECT_TRUE(e.dependent);
    }
  }
}

TEST(SendForget, OutdegreeInvariantUnderRandomChurnOfMessages) {
  // Observation 5.1: d(u) stays even and within [dL, s] — including under
  // arbitrary interleavings of initiate and receive.
  SendForgetConfig cfg{.view_size = 10, .min_degree = 4};
  SendForget node(0, cfg);
  node.install_view({1, 2, 3, 4});
  Rng rng(8);
  CaptureTransport transport;
  for (int i = 0; i < 5000; ++i) {
    if (rng.bernoulli(0.5)) {
      node.on_initiate(rng, transport);
    } else {
      Message m;
      m.from = static_cast<NodeId>(1 + rng.uniform(50));
      m.to = 0;
      m.kind = MessageKind::kPush;
      m.payload = {ViewEntry{m.from, false},
                   ViewEntry{static_cast<NodeId>(1 + rng.uniform(50)), false}};
      node.on_message(m, rng, transport);
    }
    const auto d = node.view().degree();
    ASSERT_EQ(d % 2, 0u);
    ASSERT_GE(d, cfg.min_degree);
    ASSERT_LE(d, cfg.view_size);
  }
  // Both modes were exercised.
  EXPECT_GT(node.metrics().duplications, 0u);
  EXPECT_GT(node.metrics().deletions, 0u);
}

TEST(SendForget, ConstructorRejectsBadConfig) {
  EXPECT_THROW(SendForget(0, SendForgetConfig{.view_size = 5, .min_degree = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip
