// Directed multigraph representing the membership graph (§4 of the paper).
//
// Vertices are nodes; an edge (u, v) exists for each occurrence of v in u's
// local view, with multiplicity. The graph is the object the paper's Markov
// chain evolves over; here it is used to snapshot simulations, to run
// connectivity checks, and to generate initial topologies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/node_id.hpp"

namespace gossip {

class Digraph {
 public:
  // Creates a graph with `node_count` vertices and no edges.
  explicit Digraph(std::size_t node_count = 0);

  [[nodiscard]] std::size_t node_count() const { return out_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  // Appends a new isolated vertex; returns its id.
  NodeId add_node();

  void add_edge(NodeId from, NodeId to);

  // Removes one occurrence of (from, to); returns false if absent.
  bool remove_edge(NodeId from, NodeId to);

  // Removes all out-edges of `node` and all in-edges pointing to it
  // (models a node failing while other views still reference it would keep
  // in-edges; this full removal models view cleanup for analysis purposes).
  void isolate(NodeId node);

  // Multiplicity of edge (from, to).
  [[nodiscard]] std::size_t edge_multiplicity(NodeId from, NodeId to) const;

  [[nodiscard]] std::size_t out_degree(NodeId node) const;
  [[nodiscard]] std::size_t in_degree(NodeId node) const;

  // Out-neighbors with multiplicity (the multiset u.lv restricted to
  // nonempty entries). Order is insertion order; not sorted.
  [[nodiscard]] const std::vector<NodeId>& out_neighbors(NodeId node) const;

  // Number of self-edges (u, u) summed over all nodes.
  [[nodiscard]] std::size_t self_edge_count() const;

  // Number of edges beyond the first between each ordered pair, i.e. the
  // count of redundant parallel edges.
  [[nodiscard]] std::size_t parallel_edge_count() const;

  [[nodiscard]] bool operator==(const Digraph& other) const;

 private:
  std::vector<std::vector<NodeId>> out_;  // adjacency with multiplicity
  std::vector<std::size_t> in_degree_;
  std::size_t edge_count_ = 0;
};

}  // namespace gossip
