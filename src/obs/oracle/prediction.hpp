// Precomputed paper predictions consumed by the TheoryOracle.
//
// A TheoryPrediction is a plain-data snapshot of what §6/§7 predict for a
// run at loss rate ℓ: the §6.2 degree-MC stationary marginals, the
// Lemma 6.7 duplication band [ℓ, ℓ+δ], and the Lemma 7.9 spatial-
// independence lower bound α ≥ 1 − 2(ℓ+δ). It deliberately lives in the
// obs layer as data only — the solver that *produces* it is
// analysis::make_theory_prediction (the analysis library links obs, not
// the other way around), and tests may also construct predictions by hand.
#pragma once

#include <cstddef>
#include <vector>

namespace gossip::obs {

struct TheoryPrediction {
  // Parameters the prediction was computed at. `loss` is the ℓ the run is
  // *believed* to experience; the oracle's whole point is to notice when
  // the empirical run disagrees.
  double loss = 0.0;
  double delta = 0.01;  // δ slack of Lemma 6.7 / Lemma 7.9
  std::size_t view_size = 0;   // s
  std::size_t min_degree = 0;  // dL

  // §6.2 stationary marginals, indexed by degree value.
  std::vector<double> out_pmf;
  std::vector<double> in_pmf;
  double expected_out = 0.0;
  double expected_in = 0.0;

  // Steady-state action outcome probabilities from the degree MC.
  // Lemma 6.7 predicts duplication_probability ∈ [ℓ, ℓ+δ]; Lemma 6.6
  // predicts duplication = ℓ + deletion.
  double duplication_probability = 0.0;
  double deletion_probability = 0.0;

  // Lemma 7.9: expected independence α ≥ 1 − 2(ℓ+δ).
  double alpha_lower_bound = 1.0;

  [[nodiscard]] bool valid() const {
    return view_size > 0 && !out_pmf.empty() && !in_pmf.empty();
  }
};

}  // namespace gossip::obs
