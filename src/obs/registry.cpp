#include "obs/registry.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/export/quantiles.hpp"

namespace gossip::obs {

namespace {

// Minimal JSON string escaping; metric names are identifiers, but be safe.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
  return out;
}

template <typename Names>
std::uint32_t find_name(const Names& names, std::string_view name) {
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return UINT32_MAX;
}

}  // namespace

MetricsRegistry::MetricsRegistry(std::size_t shard_count)
    : slabs_(std::max<std::size_t>(1, shard_count)) {}

CounterId MetricsRegistry::counter(std::string_view name) {
  std::uint32_t i = find_name(counter_names_, name);
  if (i == UINT32_MAX) {
    i = static_cast<std::uint32_t>(counter_names_.size());
    counter_names_.emplace_back(name);
    grow_slabs();
  }
  return CounterId{i};
}

GaugeId MetricsRegistry::gauge(std::string_view name) {
  std::uint32_t i = find_name(gauge_names_, name);
  if (i == UINT32_MAX) {
    i = static_cast<std::uint32_t>(gauge_names_.size());
    gauge_names_.emplace_back(name);
    grow_slabs();
  }
  return GaugeId{i};
}

HistogramId MetricsRegistry::histogram(std::string_view name,
                                       std::vector<double> upper_bounds) {
  for (std::uint32_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].name == name) return HistogramId{i};
  }
  if (!std::is_sorted(upper_bounds.begin(), upper_bounds.end()) ||
      std::adjacent_find(upper_bounds.begin(), upper_bounds.end()) !=
          upper_bounds.end()) {
    throw std::invalid_argument(
        "histogram upper_bounds must be strictly increasing");
  }
  HistogramMeta meta;
  meta.name = std::string(name);
  meta.buckets = upper_bounds.size() + 1;
  meta.upper_bounds = std::move(upper_bounds);
  meta.offset = hist_bucket_total_;
  hist_bucket_total_ += padded(meta.buckets);
  const auto id = static_cast<std::uint32_t>(histograms_.size());
  histograms_.push_back(std::move(meta));
  grow_slabs();
  return HistogramId{id};
}

void MetricsRegistry::grow_slabs() {
  const std::size_t nc = padded(counter_names_.size());
  const std::size_t ng = padded(gauge_names_.size());
  for (Slab& slab : slabs_) {
    if (slab.counters.size() < nc) slab.counters.resize(nc, 0);
    if (slab.gauges.size() < ng) slab.gauges.resize(ng, 0.0);
    if (slab.hist_buckets.size() < hist_bucket_total_) {
      slab.hist_buckets.resize(hist_bucket_total_, 0);
    }
  }
}

void MetricsRegistry::observe(HistogramId id, std::size_t shard, double value) {
  const HistogramMeta& meta = histograms_[id.index];
  // Bounds are inclusive (le=, Prometheus-style): the first bucket whose
  // upper bound is >= value.
  const auto it = std::lower_bound(meta.upper_bounds.begin(),
                                   meta.upper_bounds.end(), value);
  const auto bucket =
      static_cast<std::size_t>(it - meta.upper_bounds.begin());
  ++slabs_[shard].hist_buckets[meta.offset + bucket];
}

void MetricsRegistry::observe_n(HistogramId id, std::size_t shard,
                                double value, std::uint64_t count) {
  const HistogramMeta& meta = histograms_[id.index];
  const auto it = std::lower_bound(meta.upper_bounds.begin(),
                                   meta.upper_bounds.end(), value);
  const auto bucket =
      static_cast<std::size_t>(it - meta.upper_bounds.begin());
  slabs_[shard].hist_buckets[meta.offset + bucket] += count;
}

std::uint64_t MetricsRegistry::counter_value(CounterId id) const {
  std::uint64_t sum = 0;
  for (const Slab& slab : slabs_) sum += slab.counters[id.index];
  return sum;
}

double MetricsRegistry::gauge_value(GaugeId id) const {
  double sum = 0.0;
  for (const Slab& slab : slabs_) sum += slab.gauges[id.index];
  return sum;
}

std::vector<std::uint64_t> MetricsRegistry::histogram_counts(
    HistogramId id) const {
  const HistogramMeta& meta = histograms_[id.index];
  std::vector<std::uint64_t> counts(meta.buckets, 0);
  for (const Slab& slab : slabs_) {
    for (std::size_t b = 0; b < meta.buckets; ++b) {
      counts[b] += slab.hist_buckets[meta.offset + b];
    }
  }
  return counts;
}

void MetricsRegistry::reset() {
  for (Slab& slab : slabs_) {
    std::fill(slab.counters.begin(), slab.counters.end(), 0);
    std::fill(slab.gauges.begin(), slab.gauges.end(), 0.0);
    std::fill(slab.hist_buckets.begin(), slab.hist_buckets.end(), 0);
  }
}

void MetricsRegistry::reset_histogram(HistogramId id) {
  const HistogramMeta& meta = histograms_[id.index];
  for (Slab& slab : slabs_) {
    std::fill_n(slab.hist_buckets.begin() +
                    static_cast<std::ptrdiff_t>(meta.offset),
                meta.buckets, std::uint64_t{0});
  }
}

std::string MetricsRegistry::dump() const {
  std::ostringstream out;
  for (std::uint32_t i = 0; i < counter_names_.size(); ++i) {
    out << "counter " << counter_names_[i] << ' '
        << counter_value(CounterId{i}) << '\n';
  }
  for (std::uint32_t i = 0; i < gauge_names_.size(); ++i) {
    out << "gauge " << gauge_names_[i] << ' ' << gauge_value(GaugeId{i})
        << '\n';
  }
  for (std::uint32_t i = 0; i < histograms_.size(); ++i) {
    const HistogramMeta& meta = histograms_[i];
    const auto counts = histogram_counts(HistogramId{i});
    for (std::size_t b = 0; b < counts.size(); ++b) {
      out << "hist " << meta.name << ' ';
      if (b < meta.upper_bounds.size()) {
        out << "le=" << meta.upper_bounds[b];
      } else {
        out << "le=inf";
      }
      out << ' ' << counts[b] << '\n';
    }
  }
  return out.str();
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\"counters\":{";
  for (std::uint32_t i = 0; i < counter_names_.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << json_escape(counter_names_[i])
        << "\":" << counter_value(CounterId{i});
  }
  out << "},\"gauges\":{";
  for (std::uint32_t i = 0; i < gauge_names_.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << json_escape(gauge_names_[i])
        << "\":" << gauge_value(GaugeId{i});
  }
  out << "},\"histograms\":{";
  for (std::uint32_t i = 0; i < histograms_.size(); ++i) {
    if (i != 0) out << ',';
    const HistogramMeta& meta = histograms_[i];
    out << '"' << json_escape(meta.name) << "\":{\"upper_bounds\":[";
    for (std::size_t b = 0; b < meta.upper_bounds.size(); ++b) {
      if (b != 0) out << ',';
      out << meta.upper_bounds[b];
    }
    out << "],\"counts\":[";
    const auto counts = histogram_counts(HistogramId{i});
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (b != 0) out << ',';
      out << counts[b];
    }
    const HistogramQuantiles q =
        estimate_quantiles(meta.upper_bounds, counts);
    out << "],\"p50\":" << q.p50 << ",\"p90\":" << q.p90
        << ",\"p99\":" << q.p99 << '}';
  }
  out << "}}";
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  out << "kind,name,bucket,value\n";
  for (std::uint32_t i = 0; i < counter_names_.size(); ++i) {
    out << "counter," << counter_names_[i] << ",,"
        << counter_value(CounterId{i}) << '\n';
  }
  for (std::uint32_t i = 0; i < gauge_names_.size(); ++i) {
    out << "gauge," << gauge_names_[i] << ",," << gauge_value(GaugeId{i})
        << '\n';
  }
  for (std::uint32_t i = 0; i < histograms_.size(); ++i) {
    const HistogramMeta& meta = histograms_[i];
    const auto counts = histogram_counts(HistogramId{i});
    for (std::size_t b = 0; b < counts.size(); ++b) {
      out << "hist," << meta.name << ',';
      if (b < meta.upper_bounds.size()) {
        out << meta.upper_bounds[b];
      } else {
        out << "inf";
      }
      out << ',' << counts[b] << '\n';
    }
  }
}

}  // namespace gossip::obs
