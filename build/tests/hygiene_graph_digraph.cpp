#include "graph/digraph.hpp"
#include "graph/digraph.hpp"
