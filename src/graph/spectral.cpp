#include "graph/spectral.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace gossip {

namespace {

// Below this many adjacency entries a parallel dispatch costs more than
// the matvec itself.
constexpr std::size_t kParallelAdjacencyThreshold = 1 << 15;

// Undirected adjacency (with multiplicity) in CSR form, plus degrees.
// Flat storage keeps the power-iteration matvec cache-friendly and lets
// it be chunked over the thread pool without per-row indirection.
struct Undirected {
  std::vector<std::size_t> row_ptr;  // n + 1
  std::vector<NodeId> cols;
  std::vector<double> degree;
};

Undirected undirect(const Digraph& g) {
  const std::size_t n = g.node_count();
  Undirected u;
  u.degree.assign(n, 0.0);
  u.row_ptr.assign(n + 1, 0);
  for (NodeId a = 0; a < n; ++a) {
    for (const NodeId b : g.out_neighbors(a)) {
      ++u.row_ptr[a + 1];
      ++u.row_ptr[b + 1];
      u.degree[a] += 1.0;
      u.degree[b] += 1.0;
    }
  }
  for (std::size_t i = 0; i < n; ++i) u.row_ptr[i + 1] += u.row_ptr[i];
  u.cols.resize(u.row_ptr[n]);
  std::vector<std::size_t> cursor(u.row_ptr.begin(), u.row_ptr.end() - 1);
  for (NodeId a = 0; a < n; ++a) {
    for (const NodeId b : g.out_neighbors(a)) {
      u.cols[cursor[a]++] = b;
      u.cols[cursor[b]++] = a;
    }
  }
  return u;
}

}  // namespace

SpectralResult estimate_spectral_gap(const Digraph& graph,
                                     const SpectralOptions& options) {
  if (graph.edge_count() == 0) {
    throw std::invalid_argument("graph has no edges");
  }
  const std::size_t n = graph.node_count();
  const Undirected u = undirect(graph);

  // The lazy walk W = (I + D^{-1}A)/2 is similar to a symmetric matrix
  // via D^{1/2}; its top eigenvector in the D-inner-product is the
  // all-ones vector (stationary ∝ degree). Power-iterate a vector kept
  // D-orthogonal to it.
  const double total_degree = 2.0 * static_cast<double>(graph.edge_count());

  Rng rng(options.seed);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform_double() - 0.5;
  }

  auto deflate = [&](std::vector<double>& v) {
    // Remove the component along 1 with respect to the D-weighted inner
    // product: v -= (sum_i d_i v_i / sum_i d_i) * 1 (on non-isolated
    // vertices).
    double proj = 0.0;
    for (std::size_t i = 0; i < n; ++i) proj += u.degree[i] * v[i];
    proj /= total_degree;
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = u.degree[i] > 0.0 ? v[i] - proj : 0.0;
    }
  };
  auto norm = [&](const std::vector<double>& v) {
    // D-weighted norm, matching the symmetrized operator.
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += u.degree[i] * v[i] * v[i];
    return std::sqrt(s);
  };

  deflate(x);
  double x_norm = norm(x);
  if (x_norm == 0.0) {
    // Degenerate random start; perturb deterministically.
    x.assign(n, 0.0);
    x[0] = 1.0;
    deflate(x);
    x_norm = norm(x);
  }
  for (double& v : x) v /= x_norm;

  // One application of the lazy walk: y_i = x_i/2 + (sum_{j~i} x_j)/(2 d_i).
  // Each output entry is an independent fixed-order sum over its CSR row,
  // so the parallel version is bit-identical to the serial one for any
  // worker count (the grain depends only on n).
  auto matvec_rows = [&](std::vector<double>& y, std::size_t begin,
                         std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (u.degree[i] == 0.0) {
        y[i] = 0.0;
        continue;
      }
      double acc = 0.0;
      for (std::size_t k = u.row_ptr[i]; k < u.row_ptr[i + 1]; ++k) {
        acc += x[u.cols[k]];
      }
      y[i] = 0.5 * x[i] + 0.5 * acc / u.degree[i];
    }
  };
  const bool parallel = u.cols.size() >= kParallelAdjacencyThreshold;
  const std::size_t grain = std::max<std::size_t>(256, n / 64);

  SpectralResult result;
  double lambda = 0.0;
  std::vector<double> y(n, 0.0);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (parallel) {
      ThreadPool::global().parallel_for(
          n, grain,
          [&](std::size_t begin, std::size_t end) {
            matvec_rows(y, begin, end);
          });
    } else {
      matvec_rows(y, 0, n);
    }
    deflate(y);
    const double y_norm = norm(y);
    if (y_norm == 0.0) {
      // x was (numerically) in the kernel: lambda2 ~ 0.
      result.lambda2 = 0.0;
      result.spectral_gap = 1.0;
      result.converged = true;
      result.iterations = it + 1;
      return result;
    }
    const double next_lambda = y_norm;  // Rayleigh growth factor
    for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / y_norm;
    result.iterations = it + 1;
    if (options.telemetry != nullptr) {
      options.telemetry->on_iteration("spectral_power", it + 1,
                                      std::abs(next_lambda - lambda));
    }
    if (std::abs(next_lambda - lambda) < options.tolerance) {
      lambda = next_lambda;
      result.converged = true;
      break;
    }
    lambda = next_lambda;
  }
  result.lambda2 = std::min(1.0, lambda);
  result.spectral_gap = 1.0 - result.lambda2;
  return result;
}

}  // namespace gossip
