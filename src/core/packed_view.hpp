// Packed view-slot representation for the flat hot path.
//
// A `ViewEntry` is 8 bytes: a 4-byte NodeId plus a bool dependence tag that
// padding rounds up to another 4 bytes. Half of every view row is therefore
// air. `PackedViewEntry` folds the dependence tag of the dependence MC
// (Fig 7.1) into the top bit of the id word:
//
//   bits = id | (dependent << 31)        id < 2^31   (asserted at pack time)
//   bits = 0xFFFFFFFF                    empty slot
//
// so a slot is 4 bytes, a 40-slot view row is 160 bytes (3 cache lines
// instead of 5), and emptiness / id / tag checks are single masked compares
// that vectorize. The all-ones empty encoding is deliberate: it is the
// bottom 32 bits of `kNilNode`, it cannot collide with a packed live id
// because pack() rejects ids above 2^31 - 2, and a row of empty slots is a
// memset pattern.
//
// `unpack()` restores the exact unpacked semantics — an empty slot reads as
// {kNilNode, independent} just as a default `ViewEntry` does — which is what
// keeps the packed cluster's fingerprint definition bit-identical to the
// unpacked one.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/node_id.hpp"
#include "core/view.hpp"

namespace gossip {

class PackedViewEntry {
 public:
  static constexpr std::uint32_t kDependentBit = 0x8000'0000u;
  static constexpr std::uint32_t kIdMask = 0x7FFF'FFFFu;
  static constexpr std::uint32_t kEmptyBits = 0xFFFF'FFFFu;
  // Largest id that survives packing: bit 31 is the tag, and the all-ones
  // pattern (id 0x7FFFFFFF + dependent) is reserved for "empty".
  static constexpr NodeId kMaxId = 0x7FFF'FFFEu;

  constexpr PackedViewEntry() = default;

  [[nodiscard]] static constexpr PackedViewEntry pack(NodeId id,
                                                      bool dependent) {
    assert(id <= kMaxId);
    return PackedViewEntry(id | (dependent ? kDependentBit : 0u));
  }
  [[nodiscard]] static constexpr PackedViewEntry from_bits(
      std::uint32_t bits) {
    return PackedViewEntry(bits);
  }

  [[nodiscard]] constexpr bool empty() const { return bits_ == kEmptyBits; }
  // Sentinel-preserving: an empty slot reads back as kNilNode, exactly like
  // the unpacked ViewEntry's default id.
  [[nodiscard]] constexpr NodeId id() const {
    return empty() ? kNilNode : (bits_ & kIdMask);
  }
  [[nodiscard]] constexpr bool dependent() const {
    return !empty() && (bits_ & kDependentBit) != 0;
  }
  // Unchecked accessors for hot paths that already know the slot is live.
  [[nodiscard]] constexpr NodeId id_unchecked() const {
    return bits_ & kIdMask;
  }
  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }

  // Same id, tag forced to `dependent` (the §5 duplication relabel).
  [[nodiscard]] constexpr PackedViewEntry with_dependent(
      bool dependent) const {
    assert(!empty());
    return PackedViewEntry((bits_ & kIdMask) |
                           (dependent ? kDependentBit : 0u));
  }
  [[nodiscard]] constexpr PackedViewEntry as_dependent() const {
    assert(!empty());
    return PackedViewEntry(bits_ | kDependentBit);
  }

  [[nodiscard]] constexpr ViewEntry unpack() const {
    return empty() ? ViewEntry{} : ViewEntry{id_unchecked(), dependent()};
  }

  friend constexpr bool operator==(PackedViewEntry a, PackedViewEntry b) {
    return a.bits_ == b.bits_;
  }

 private:
  explicit constexpr PackedViewEntry(std::uint32_t bits) : bits_(bits) {}

  std::uint32_t bits_ = kEmptyBits;
};

static_assert(sizeof(PackedViewEntry) == 4);

}  // namespace gossip
