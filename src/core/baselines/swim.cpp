#include "core/baselines/swim.hpp"

#include <algorithm>
#include <cassert>

namespace gossip {

namespace {

constexpr std::uint8_t kUpdateAlive = 0;
constexpr std::uint8_t kUpdateSuspect = 1;
constexpr std::uint8_t kUpdateFaulty = 2;

std::uint8_t status_wire(Swim::Status status) {
  switch (status) {
    case Swim::Status::kAlive: return kUpdateAlive;
    case Swim::Status::kSuspect: return kUpdateSuspect;
    case Swim::Status::kFaulty: return kUpdateFaulty;
  }
  return kUpdateAlive;
}

Swim::Status status_from_wire(std::uint8_t wire) {
  switch (wire) {
    case kUpdateSuspect: return Swim::Status::kSuspect;
    case kUpdateFaulty: return Swim::Status::kFaulty;
    default: return Swim::Status::kAlive;
  }
}

}  // namespace

Swim::Swim(NodeId self, const SwimConfig& config)
    : PeerProtocol(self, config.view_size), config_(config) {}

void Swim::install_view(const std::vector<NodeId>& ids) {
  PeerProtocol::install_view(ids);
  table_.clear();
  present_.clear();
  ids_.clear();
  member_count_ = 0;
  faulty_count_ = 0;
  pending_.clear();
  relays_.clear();
  outbox_.clear();
  for (const NodeId id : ids) {
    if (id == self() || find_member(id) != nullptr) continue;
    add_member(id, Status::kAlive, 0);
  }
  // Self-announcement: rides the first outgoing piggybacks, so a joiner
  // introduced to a few seeds disseminates itself to the rest.
  enqueue_update(MembershipUpdate{self(), kUpdateAlive, incarnation_});
}

Swim::Member* Swim::find_member(NodeId id) {
  if (id >= present_.size() || present_[id] == 0) return nullptr;
  return &table_[id];
}

const Swim::Member* Swim::find_member(NodeId id) const {
  if (id >= present_.size() || present_[id] == 0) return nullptr;
  return &table_[id];
}

Swim::Member& Swim::add_member(NodeId id, Status status,
                               std::uint32_t incarnation) {
  if (id >= present_.size()) {
    present_.resize(id + 1, 0);
    table_.resize(id + 1);
  }
  present_[id] = 1;
  ids_.push_back(id);
  ++member_count_;
  Member& m = table_[id];
  m.status = status;
  m.incarnation = incarnation;
  m.suspect_since = round_;
  if (status == Status::kFaulty) ++faulty_count_;
  ++mutable_metrics().ids_accepted;
  return m;
}

void Swim::set_status(Member& m, NodeId id, Status status,
                      std::uint64_t round) {
  (void)id;
  if (m.status == status) return;
  if (m.status == Status::kFaulty) --faulty_count_;
  if (status == Status::kFaulty) {
    ++faulty_count_;
    ++mutable_metrics().deletions;  // the detector's washout analog
  }
  if (status == Status::kSuspect) m.suspect_since = round;
  m.status = status;
}

bool Swim::overrides(Status status, std::uint32_t incarnation,
                     const MembershipUpdate& update) {
  if (update.incarnation != incarnation) {
    return update.incarnation > incarnation;
  }
  return update.status > status_wire(status);
}

std::size_t Swim::transmit_budget() const {
  std::size_t bits = 1;
  for (std::size_t m = member_count_; m > 1; m >>= 1) ++bits;
  return config_.transmit_factor * bits;
}

void Swim::enqueue_update(MembershipUpdate update) {
  for (OutUpdate& out : outbox_) {
    if (out.update.subject != update.subject) continue;
    if (out.update == update) return;  // already spreading this assertion
    if (overrides(status_from_wire(out.update.status),
                  out.update.incarnation, update)) {
      out.update = update;
      out.transmits = 0;
    }
    return;
  }
  outbox_.push_back(OutUpdate{update, 0});
}

void Swim::fill_piggyback(Message& message, Rng& rng) {
  (void)rng;
  // Prune exhausted assertions, then take the least-transmitted ones
  // (ties in insertion order). The outbox stays small — budget-pruned —
  // so the partial selection scan is cheap.
  const std::uint32_t budget =
      static_cast<std::uint32_t>(transmit_budget());
  std::erase_if(outbox_,
                [budget](const OutUpdate& o) { return o.transmits >= budget; });
  // Targeted notifications already on the message ride outside the budget.
  const std::size_t target_size =
      message.updates.size() + config_.piggyback_limit;
  std::vector<std::uint8_t> taken(outbox_.size(), 0);
  while (message.updates.size() < target_size) {
    std::size_t best = outbox_.size();
    for (std::size_t i = 0; i < outbox_.size(); ++i) {
      if (taken[i] != 0) continue;
      if (best == outbox_.size() ||
          outbox_[i].transmits < outbox_[best].transmits) {
        best = i;
      }
    }
    if (best == outbox_.size()) break;
    taken[best] = 1;
    const bool duplicate =
        std::any_of(message.updates.begin(), message.updates.end(),
                    [&](const MembershipUpdate& u) {
                      return u.subject == outbox_[best].update.subject;
                    });
    if (duplicate) continue;
    ++outbox_[best].transmits;
    message.updates.push_back(outbox_[best].update);
  }
}

NodeId Swim::random_member(Rng& rng, bool faulty, NodeId exclude) {
  const std::size_t wanted = faulty ? faulty_count_ : member_count_ -
                                                          faulty_count_;
  if (ids_.empty() || wanted == 0) return kNilNode;
  const auto qualifies = [&](NodeId id) {
    const Member* m = find_member(id);
    return m != nullptr && id != self() && id != exclude &&
           (m->status == Status::kFaulty) == faulty;
  };
  for (int tries = 0; tries < 8; ++tries) {
    const NodeId id = ids_[rng.uniform(ids_.size())];
    if (qualifies(id)) return id;
  }
  // Deterministic fallback: scan from a random start.
  const std::size_t start = rng.uniform(ids_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    const NodeId id = ids_[(start + i) % ids_.size()];
    if (qualifies(id)) return id;
  }
  return kNilNode;
}

void Swim::send_ping(NodeId target, std::uint64_t round, Rng& rng,
                     Transport& transport) {
  Message ping;
  ping.from = self();
  ping.to = target;
  ping.kind = MessageKind::kSwimPing;
  ping.subject = target;
  ping.stamp = ++seq_;
  (void)round;
  // Targeted notification: a suspected or confirmed target learns of the
  // assertion against it from the probe itself and can refute with a
  // higher incarnation (rides free, outside the piggyback budget).
  if (const Member* m = find_member(target);
      m != nullptr && m->status != Status::kAlive) {
    ping.updates.push_back(MembershipUpdate{
        target, status_wire(m->status), m->incarnation});
  }
  fill_piggyback(ping, rng);
  transport.send(std::move(ping));
  ++mutable_metrics().messages_sent;
}

void Swim::start_probe(NodeId target, std::uint64_t round, Rng& rng,
                       Transport& transport) {
  pending_.push_back(
      PendingProbe{target, round + config_.ack_timeout, false});
  send_ping(target, round, rng, transport);
}

void Swim::expire_timers(std::uint64_t round, Rng& rng,
                         Transport& transport) {
  std::erase_if(relays_, [round](const PendingRelay& r) {
    return r.deadline <= round;
  });

  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingProbe p = pending_[i];
    if (p.deadline > round) {
      pending_[kept++] = p;
      continue;
    }
    if (!p.indirect) {
      // Escalate through k random helpers.
      std::size_t sent = 0;
      for (std::size_t k = 0; k < config_.indirect_probes; ++k) {
        const NodeId helper = random_member(rng, /*faulty=*/false, p.target);
        if (helper == kNilNode) break;
        Message req;
        req.from = self();
        req.to = helper;
        req.kind = MessageKind::kSwimPingReq;
        req.subject = p.target;
        req.stamp = ++seq_;
        fill_piggyback(req, rng);
        transport.send(std::move(req));
        ++mutable_metrics().messages_sent;
        ++sent;
      }
      if (sent > 0) {
        p.indirect = true;
        p.deadline = round + config_.indirect_timeout;
        pending_[kept++] = p;
        continue;
      }
    }
    // Indirect stage expired (or no helpers exist): suspect the target.
    if (Member* m = find_member(p.target);
        m != nullptr && m->status == Status::kAlive) {
      set_status(*m, p.target, Status::kSuspect, round);
      enqueue_update(
          MembershipUpdate{p.target, kUpdateSuspect, m->incarnation});
    }
  }
  pending_.resize(kept);

  // Suspicion timeouts -> confirmed failures.
  for (const NodeId id : ids_) {
    Member* m = find_member(id);
    if (m == nullptr || m->status != Status::kSuspect) continue;
    if (round >= m->suspect_since + config_.suspicion_timeout) {
      set_status(*m, id, Status::kFaulty, round);
      enqueue_update(MembershipUpdate{id, kUpdateFaulty, m->incarnation});
    }
  }
}

void Swim::on_round(std::uint64_t round, Rng& rng, Transport& transport) {
  round_ = round;
  ++mutable_metrics().actions_initiated;
  expire_timers(round, rng, transport);

  const NodeId target = random_member(rng, /*faulty=*/false, kNilNode);
  if (target == kNilNode) {
    ++mutable_metrics().self_loop_actions;
  } else {
    start_probe(target, round, rng, transport);
  }

  // Reclaim path: keep a trickle of probes flowing to confirmed-faulty
  // members so a wrongly-confirmed (but live) one can refute.
  if (config_.faulty_probe_interval > 0 && faulty_count_ > 0 &&
      round % config_.faulty_probe_interval == 0) {
    const NodeId dead = random_member(rng, /*faulty=*/true, kNilNode);
    if (dead != kNilNode) send_ping(dead, round, rng, transport);
  }
}

void Swim::on_initiate(Rng& rng, Transport& transport) {
  // Round-less drivers tick an internal clock: one initiate == one round.
  on_round(round_ + 1, rng, transport);
}

void Swim::apply_updates(const Message& message, std::uint64_t round) {
  // The sender itself is implicit alive evidence at least at incarnation 0.
  if (message.from != self() && find_member(message.from) == nullptr) {
    add_member(message.from, Status::kAlive, 0);
    enqueue_update(MembershipUpdate{message.from, kUpdateAlive, 0});
  }
  for (const MembershipUpdate& u : message.updates) {
    if (u.subject == self()) {
      // Refutation: any non-alive assertion about this node at a current
      // (or newer) incarnation bumps our incarnation and announces it.
      if (u.status != kUpdateAlive && u.incarnation >= incarnation_) {
        incarnation_ = u.incarnation + 1;
        enqueue_update(
            MembershipUpdate{self(), kUpdateAlive, incarnation_});
      }
      continue;
    }
    Member* m = find_member(u.subject);
    if (m == nullptr) {
      Member& added =
          add_member(u.subject, status_from_wire(u.status), u.incarnation);
      if (added.status == Status::kSuspect) added.suspect_since = round;
      enqueue_update(u);
      continue;
    }
    if (!overrides(m->status, m->incarnation, u)) continue;
    m->incarnation = u.incarnation;
    set_status(*m, u.subject, status_from_wire(u.status), round);
    enqueue_update(u);  // re-gossip what changed our mind
  }
}

void Swim::on_message(const Message& message, Rng& rng,
                      Transport& transport) {
  ++mutable_metrics().messages_received;
  switch (message.kind) {
    case MessageKind::kSwimPing: {
      apply_updates(message, round_);
      Message ack;
      ack.from = self();
      ack.to = message.from;
      ack.kind = MessageKind::kSwimAck;
      ack.subject = self();
      ack.stamp = message.stamp;
      fill_piggyback(ack, rng);
      transport.send(std::move(ack));
      ++mutable_metrics().messages_sent;
      break;
    }
    case MessageKind::kSwimPingReq: {
      apply_updates(message, round_);
      relays_.push_back(PendingRelay{message.subject, message.from,
                                     round_ + config_.indirect_timeout});
      send_ping(message.subject, round_, rng, transport);
      break;
    }
    case MessageKind::kSwimAck: {
      apply_updates(message, round_);
      const NodeId attested = message.subject;
      std::erase_if(pending_, [attested](const PendingProbe& p) {
        return p.target == attested;
      });
      // Relay the attestation back to indirect-probe origins.
      std::size_t kept = 0;
      for (std::size_t i = 0; i < relays_.size(); ++i) {
        const PendingRelay r = relays_[i];
        if (r.target != attested) {
          relays_[kept++] = r;
          continue;
        }
        Message relay;
        relay.from = self();
        relay.to = r.origin;
        relay.kind = MessageKind::kSwimAck;
        relay.subject = attested;
        relay.stamp = message.stamp;
        fill_piggyback(relay, rng);
        transport.send(std::move(relay));
        ++mutable_metrics().messages_sent;
      }
      relays_.resize(kept);
      // First-hand evidence: an ack from a locally-suspected member
      // downgrades the suspicion (same incarnation, local only — a
      // gossiped refutation needs the member's own incarnation bump).
      if (Member* m = find_member(attested);
          m != nullptr && m->status == Status::kSuspect) {
        set_status(*m, attested, Status::kAlive, round_);
      }
      break;
    }
    default:
      // Trust boundary: ignore kinds this protocol does not speak.
      break;
  }
}

MemberVerdict Swim::member_verdict(NodeId id) const {
  if (id == self()) return MemberVerdict::kAlive;
  const Member* m = find_member(id);
  if (m == nullptr) return MemberVerdict::kUnknown;
  switch (m->status) {
    case Status::kAlive: return MemberVerdict::kAlive;
    case Status::kSuspect: return MemberVerdict::kSuspect;
    case Status::kFaulty: return MemberVerdict::kFaulty;
  }
  return MemberVerdict::kUnknown;
}

std::uint64_t Swim::state_digest() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(incarnation_);
  mix(seq_);
  mix(pending_.size());
  mix(relays_.size());
  mix(outbox_.size());
  for (NodeId id = 0; id < present_.size(); ++id) {
    if (present_[id] == 0) continue;
    const Member& m = table_[id];
    mix(id);
    mix(static_cast<std::uint64_t>(m.status));
    mix(m.incarnation);
    if (m.status == Status::kSuspect) mix(m.suspect_since);
  }
  return h;
}

const Swim::Member* Swim::member(NodeId id) const { return find_member(id); }

}  // namespace gossip
