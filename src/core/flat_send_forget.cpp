#include "core/flat_send_forget.hpp"

#include <algorithm>
#include <stdexcept>

namespace gossip {

FlatSendForgetCluster::FlatSendForgetCluster(std::size_t node_count,
                                            SendForgetConfig config,
                                            FlatClusterOptions options)
    : config_(config),
      options_(options),
      n_(node_count),
      view_size_(config.view_size),
      pairs_(options.pairs_per_message),
      live_count_(node_count) {
  config_.validate();
  if (node_count == 0) {
    throw std::invalid_argument("flat cluster requires at least one node");
  }
  if (node_count > static_cast<std::size_t>(PackedViewEntry::kMaxId) + 1) {
    // The dependence tag lives in bit 31 of the packed id.
    throw std::invalid_argument(
        "flat cluster holds at most 2^31 - 1 nodes (packed id width)");
  }
  if (view_size_ > 0xFFFF) {
    throw std::invalid_argument(
        "view_size must fit the 16-bit packed degree array");
  }
  if (pairs_ < 1 || pairs_ > kMaxPairsPerMessage) {
    throw std::invalid_argument("pairs_per_message must be in [1, 4]");
  }
  if (2 * pairs_ > view_size_) {
    throw std::invalid_argument(
        "a batched message may not carry more ids than the view holds");
  }
  // First-touch: stripe every slab along the same contiguous node partition
  // the sharded driver uses (ceil(n / stripes) nodes per stripe).
  const std::size_t stripes = std::max<std::size_t>(1, options.init_threads);
  const std::size_t nodes_per_stripe =
      stripes <= 1 ? 0 : (node_count + stripes - 1) / stripes;
  slots_ = FirstTouchSlab<PackedViewEntry>(node_count * view_size_,
                                           PackedViewEntry{},
                                           nodes_per_stripe * view_size_);
  degree_ =
      FirstTouchSlab<std::uint16_t>(node_count, 0, nodes_per_stripe);
  live_ = FirstTouchSlab<std::uint8_t>(node_count, 1, nodes_per_stripe);
}

FlatInitiateResult FlatSendForgetCluster::initiate_batched(NodeId u,
                                                           Rng& rng,
                                                           FlatPush& out) {
  PackedViewEntry* v = view(u);
  const std::size_t want = 2 * pairs_;
  // 2p distinct slots, uniform, by rejection against a fixed-size scratch
  // (no allocation; want <= 8 keeps the duplicate scan trivial).
  std::size_t slots[2 * kMaxPairsPerMessage];
  std::size_t got = 0;
  while (got < want) {
    const std::size_t i = rng.uniform(view_size_);
    bool seen = false;
    for (std::size_t t = 0; t < got; ++t) {
      if (slots[t] == i) {
        seen = true;
        break;
      }
    }
    if (!seen) slots[got++] = i;
  }
  PackedViewEntry picked[2 * kMaxPairsPerMessage];
  for (std::size_t t = 0; t < want; ++t) {
    picked[t] = v[slots[t]];
    if (picked[t].empty()) {
      // Any empty selection aborts the action, exactly as in
      // SendForgetExt::initiate (the p-fold "nothing happens" case).
      return FlatInitiateResult::kSelfLoop;
    }
  }
  // SendForgetExt's duplication test: keep the slots while the view is
  // within `want` of the floor. (Equivalent to the p = 1 expression
  // `degree <= min_degree` at even degrees.)
  const bool duplicate = degree_[u] < config_.min_degree + want;
  if (!duplicate) {
    for (std::size_t t = 0; t < want; ++t) v[slots[t]] = PackedViewEntry{};
    degree_[u] = static_cast<std::uint16_t>(degree_[u] - want);
  }
  // picked[0] names the destination (as v[i] does in Fig 5.1); the message
  // payload is the sender's id plus the other 2p - 1 lifted ids, every
  // entry tagged with the duplication flag.
  out.to = picked[0].id_unchecked();
  out.count = static_cast<std::uint32_t>(want);
  out.ids[0] = PackedViewEntry::pack(u, duplicate);
  for (std::size_t t = 1; t < want; ++t) {
    out.ids[t] = picked[t].with_dependent(duplicate);
  }
  return duplicate ? FlatInitiateResult::kSentDuplicated
                   : FlatInitiateResult::kSent;
}

void FlatSendForgetCluster::set_min_degree(std::size_t min_degree) {
  SendForgetConfig candidate = config_;
  candidate.min_degree = min_degree;
  candidate.validate();
  config_.min_degree = min_degree;
}

void FlatSendForgetCluster::kill(NodeId u) {
  assert(u < n_);
  if (!live_[u]) return;
  live_[u] = 0;
  --live_count_;
}

void FlatSendForgetCluster::revive(NodeId u, Rng& rng) {
  assert(u < n_);
  if (live_[u]) throw std::logic_error("node already live");
  if (live_count_ == 0) {
    throw std::logic_error("cannot bootstrap a joiner into an empty cluster");
  }

  // Collect min_degree distinct ids of live nodes: the contact plus live
  // entries of its view, topping up from further random live nodes' views.
  // A bounded number of attempts keeps this deterministic-time; if the
  // cluster is too depleted to offer enough distinct ids we top up with
  // repeats of live ids (the view is a multiset, so this is legal and keeps
  // the joiner at outdegree dL as §6.5 requires).
  const std::size_t want = config_.min_degree;
  std::vector<NodeId> boot;
  boot.reserve(want);
  const auto add_distinct = [&](NodeId id) {
    if (id == u || !live_[id]) return;
    if (std::find(boot.begin(), boot.end(), id) != boot.end()) return;
    boot.push_back(id);
  };
  NodeId contact = random_live_node(rng);
  for (int attempts = 0; boot.size() < want && attempts < 64; ++attempts) {
    add_distinct(contact);
    const PackedViewEntry* cv = view(contact);
    for (std::size_t i = 0; i < view_size_ && boot.size() < want; ++i) {
      if (!cv[i].empty()) add_distinct(cv[i].id_unchecked());
    }
    contact = random_live_node(rng);
  }
  while (boot.size() < want) {
    const NodeId id = random_live_node(rng);
    if (id != u) boot.push_back(id);
  }

  PackedViewEntry* v = view(u);
  for (std::size_t i = 0; i < view_size_; ++i) v[i] = PackedViewEntry{};
  for (std::size_t i = 0; i < boot.size(); ++i) {
    v[i] = PackedViewEntry::pack(boot[i], /*dependent=*/false);
  }
  degree_[u] = static_cast<std::uint16_t>(boot.size());
  live_[u] = 1;
  ++live_count_;
}

void FlatSendForgetCluster::install_view(NodeId u,
                                         const std::vector<NodeId>& ids) {
  assert(u < n_);
  PackedViewEntry* v = view(u);
  for (std::size_t i = 0; i < view_size_; ++i) v[i] = PackedViewEntry{};
  const std::size_t count = std::min(ids.size(), view_size_);
  for (std::size_t i = 0; i < count; ++i) {
    assert(ids[i] != kNilNode);
    v[i] = PackedViewEntry::pack(ids[i], /*dependent=*/false);
  }
  degree_[u] = static_cast<std::uint16_t>(count);
}

void FlatSendForgetCluster::install_slot(NodeId u, std::size_t slot,
                                         NodeId id) {
  assert(u < n_ && slot < view_size_ && id != kNilNode);
  PackedViewEntry* v = view(u);
  assert(v[slot].empty());
  v[slot] = PackedViewEntry::pack(id, /*dependent=*/false);
  degree_[u] = static_cast<std::uint16_t>(degree_[u] + 1);
}

std::vector<NodeId> FlatSendForgetCluster::view_ids(NodeId u) const {
  const PackedViewEntry* v = view(u);
  std::vector<NodeId> out;
  out.reserve(degree_[u]);
  for (std::size_t i = 0; i < view_size_; ++i) {
    if (!v[i].empty()) out.push_back(v[i].id_unchecked());
  }
  return out;
}

std::vector<ViewEntry> FlatSendForgetCluster::view_entries(NodeId u) const {
  const PackedViewEntry* v = view(u);
  std::vector<ViewEntry> out;
  out.reserve(degree_[u]);
  for (std::size_t i = 0; i < view_size_; ++i) {
    if (!v[i].empty()) out.push_back(v[i].unpack());
  }
  return out;
}

NodeId FlatSendForgetCluster::random_live_node(Rng& rng) const {
  assert(live_count_ > 0);
  // Churn call sites only; rejection sampling suffices off the hot path.
  for (;;) {
    const auto id = static_cast<NodeId>(rng.uniform(n_));
    if (live_[id]) return id;
  }
}

std::uint64_t FlatSendForgetCluster::fingerprint() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t value) {
    h ^= value;
    h *= 0x100000001B3ULL;
  };
  // Mixed over unpacked values (empty slot = kNilNode, independent), so the
  // hash of any reachable state is identical to the unpacked engine's.
  const std::size_t total = n_ * view_size_;
  for (std::size_t i = 0; i < total; ++i) {
    const ViewEntry e = slots_[i].unpack();
    mix(e.id);
    mix(e.dependent ? 2 : 1);
  }
  for (NodeId u = 0; u < n_; ++u) {
    mix(degree_[u]);
    mix(live_[u]);
  }
  return h;
}

}  // namespace gossip
