// Invariant watchdog: a sampled continuous checker for the paper's
// structural and statistical guarantees.
//
// Structural (checked exactly, per node):
//   Obs 5.1   every live node's outdegree is even and in [dL, s].
//             Nodes seeded below dL climb monotonically to dL and never
//             drop below it again, so the below-dL check is suppressed for
//             the first `warmup_rounds` rounds; even-ness and the upper
//             bound hold from round 0.
// Accounting (checked exactly, per sample):
//   mailbox conservation: sent = lost + delivered + to_dead + faulted
//             (fault-plane drops are accounted separately). Only valid
//             when no messages are in flight at the sample point (round
//             and sharded drivers; the event driver samples mid-flight
//             and must not enable this check).
// Statistical (checked against tolerances, per sample):
//   Lemma 6.7 duplication rate in [l, l + delta] where l is the *measured*
//             loss rate (lost + to_dead per sent) — dead drops act as loss.
//   Lemma 6.6 dup = l + del (per sent message).
// The lemmas are steady-state statements, so rates are measured over the
// window since the first post-warmup sample (the bootstrap transient —
// where every send from a node at d <= dL duplicates — would otherwise
// poison the running rates for hundreds of rounds), and only once the
// window holds at least `min_sent_for_rates` messages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/node_id.hpp"
#include "core/flat_send_forget.hpp"
#include "obs/timeseries.hpp"

namespace gossip::obs {

enum class ViolationKind : std::uint8_t {
  kOddOutdegree,
  kOutdegreeBelowMin,
  kOutdegreeAboveMax,
  kMailboxConservation,
  kDuplicationRateBound,
  kDupDelBalance,
};

[[nodiscard]] const char* violation_kind_name(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::kOddOutdegree;
  std::uint64_t round = 0;
  NodeId node = kNilNode;  // kNilNode for cluster-global checks
  std::size_t shard = 0;
  double observed = 0.0;
  double bound_lo = 0.0;
  double bound_hi = 0.0;
};

struct WatchdogConfig {
  std::size_t min_degree = 0;  // dL
  std::size_t view_size = 0;   // s
  double delta = 0.01;         // Lemma 6.7 slack
  // Absolute tolerance on the statistical rate checks (finite-sample noise
  // plus churn transients).
  double rate_tolerance = 0.05;
  // Rounds during which outdegree-below-dL is not reported (bootstrap
  // topologies commonly seed below dL) and rate checks accumulate no
  // window. 100 rounds is enough for a dL-seeded overlay to equilibrate
  // its degree distribution (measured: dup rate settles by ~round 80).
  std::uint64_t warmup_rounds = 100;
  // Minimum sent messages in the post-warmup window before rate checks
  // apply.
  std::uint64_t min_sent_for_rates = 20'000;
  // Violations beyond this many are counted but not logged.
  std::size_t max_logged = 64;
};

class InvariantWatchdog {
 public:
  explicit InvariantWatchdog(WatchdogConfig config);

  [[nodiscard]] const WatchdogConfig& config() const { return config_; }

  // Obs 5.1 for a single node.
  void check_degree(std::uint64_t round, NodeId node, std::size_t shard,
                    std::size_t outdegree);

  // Obs 5.1 over every live node of a flat cluster. `nodes_per_shard`
  // attributes each node to the shard that owns it (ceil(n/shard_count) in
  // the sharded driver); pass 0 for unsharded drivers.
  void check_cluster(std::uint64_t round, const FlatSendForgetCluster& cluster,
                     std::size_t nodes_per_shard);

  // Mailbox conservation on cumulative counters.
  void check_conservation(std::uint64_t round, const CumulativeCounters& c);

  // Lemma 6.6 / 6.7 running-rate bounds on cumulative counters.
  void check_rates(std::uint64_t round, const CumulativeCounters& c);

  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  [[nodiscard]] std::uint64_t violation_count() const {
    return violation_count_;
  }
  // The first max_logged violations, in detection order.
  [[nodiscard]] const std::vector<Violation>& log() const { return log_; }

  [[nodiscard]] std::string report() const;
  // {"checks_run":..,"violations":..,"log":[{...},...]}
  void write_json(std::ostream& out) const;

 private:
  void record(const Violation& violation);

  WatchdogConfig config_;
  std::uint64_t checks_run_ = 0;
  std::uint64_t violation_count_ = 0;
  // Counter snapshot at the first post-warmup check_rates call; rates are
  // measured over the window since it.
  CumulativeCounters rate_baseline_{};
  bool have_rate_baseline_ = false;
  std::vector<Violation> log_;
};

}  // namespace gossip::obs
