#include "core/view.hpp"

#include <algorithm>
#include <cassert>

namespace gossip {

LocalView::LocalView(std::size_t capacity) : slots_(capacity) {
  assert(capacity > 0);
}

bool LocalView::slot_empty(std::size_t i) const {
  assert(i < slots_.size());
  return slots_[i].empty();
}

const ViewEntry& LocalView::entry(std::size_t i) const {
  assert(i < slots_.size());
  return slots_[i];
}

void LocalView::set(std::size_t i, ViewEntry entry) {
  assert(i < slots_.size());
  assert(!entry.empty());
  if (slots_[i].empty()) ++degree_;
  slots_[i] = entry;
}

void LocalView::clear(std::size_t i) {
  assert(i < slots_.size());
  if (!slots_[i].empty()) --degree_;
  slots_[i] = ViewEntry{};
}

std::size_t LocalView::random_empty_slot(Rng& rng) const {
  assert(empty_slots() > 0);
  // Views are small (s <= ~100); a reservoir scan is simple and exact.
  std::size_t chosen = slots_.size();
  std::size_t seen = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].empty()) continue;
    ++seen;
    if (rng.uniform(seen) == 0) chosen = i;
  }
  assert(chosen < slots_.size());
  return chosen;
}

std::size_t LocalView::random_nonempty_slot(Rng& rng) const {
  assert(degree_ > 0);
  std::size_t chosen = slots_.size();
  std::size_t seen = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].empty()) continue;
    ++seen;
    if (rng.uniform(seen) == 0) chosen = i;
  }
  assert(chosen < slots_.size());
  return chosen;
}

std::size_t LocalView::multiplicity(NodeId id) const {
  std::size_t count = 0;
  for (const auto& slot : slots_) {
    if (!slot.empty() && slot.id == id) ++count;
  }
  return count;
}

std::vector<ViewEntry> LocalView::entries() const {
  std::vector<ViewEntry> out;
  out.reserve(degree_);
  for (const auto& slot : slots_) {
    if (!slot.empty()) out.push_back(slot);
  }
  return out;
}

std::vector<NodeId> LocalView::ids() const {
  std::vector<NodeId> out;
  out.reserve(degree_);
  for (const auto& slot : slots_) {
    if (!slot.empty()) out.push_back(slot.id);
  }
  return out;
}

std::size_t LocalView::dependent_count() const {
  std::size_t count = 0;
  for (const auto& slot : slots_) {
    if (!slot.empty() && slot.dependent) ++count;
  }
  return count;
}

std::size_t LocalView::intra_view_duplicates() const {
  auto sorted = ids();
  std::sort(sorted.begin(), sorted.end());
  std::size_t duplicates = 0;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == sorted[i - 1]) ++duplicates;
  }
  return duplicates;
}

void LocalView::clear_all() {
  for (auto& slot : slots_) slot = ViewEntry{};
  degree_ = 0;
}

}  // namespace gossip
