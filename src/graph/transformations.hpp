// Appendix A transformations: edge exchange and degree borrowing.
//
// These are the loss-free composite moves the paper uses to prove
// reachability of the global MC (Lemmas A.1-A.3): both are implementable
// as short sequences of S&F actions and preserve every node's sum degree
// ds(u) = d(u) + 2 din(u).
//
//   * edge exchange of (u, w) and (v, z): removes those two edges and
//     creates (u, z) and (v, w) — realized by u pushing [u, w] to v and v
//     pushing [v, z] back to u (two S&F actions).
//   * degree borrowing from u to v: one S&F action from u to its
//     out-neighbor v; u's outdegree drops by 2, v's rises by 2, and both
//     sum degrees are unchanged.
#pragma once

#include "common/node_id.hpp"
#include "graph/digraph.hpp"

namespace gossip::graph_ops {

struct TransformLimits {
  std::size_t view_size = 6;   // s
  std::size_t min_degree = 0;  // dL
};

// Prerequisite for the *neighbor* edge exchange between u and v
// (Appendix A): edge (u, v) exists, u holds (u, w), v holds (v, z),
// d(u) > dL (u must be allowed to clear), and d(v) < s (v must have room).
[[nodiscard]] bool can_edge_exchange(const Digraph& g, NodeId u, NodeId w,
                                     NodeId v, NodeId z,
                                     const TransformLimits& limits);

// Applies the exchange: (u,w),(v,z) -> (u,z),(v,w). Requires
// can_edge_exchange. Sum degrees of every node are preserved.
void edge_exchange(Digraph& g, NodeId u, NodeId w, NodeId v, NodeId z,
                   const TransformLimits& limits);

// Prerequisite for degree borrowing from u by v: edge (u, v) exists,
// d(u) >= 2, d(u) > dL, and d(v) <= s - 2.
[[nodiscard]] bool can_degree_borrow(const Digraph& g, NodeId u, NodeId v,
                                     const TransformLimits& limits);

// One S&F action from u targeted at its out-neighbor v carrying `carried`
// (an id in u's view other than the consumed (u, v) instance; may equal v
// if the edge has multiplicity >= 2): removes (u, v) and (u, carried),
// adds (v, u) and (v, carried). d(u) -= 2, d(v) += 2; sum degrees
// unchanged.
void degree_borrow(Digraph& g, NodeId u, NodeId v, NodeId carried,
                   const TransformLimits& limits);

// Verifies that `after` differs from `before` exactly by the claimed edge
// exchange (used in tests and in the reachability walker).
[[nodiscard]] bool is_edge_exchange_of(const Digraph& before,
                                       const Digraph& after, NodeId u,
                                       NodeId w, NodeId v, NodeId z);

}  // namespace gossip::graph_ops
