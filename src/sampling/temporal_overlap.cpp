#include "sampling/temporal_overlap.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "common/stats.hpp"

namespace gossip::sampling {

namespace {

// Multiset intersection size of two sorted id vectors.
std::size_t intersection_size(const std::vector<NodeId>& a,
                              const std::vector<NodeId>& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

TemporalOverlapTracker::TemporalOverlapTracker(const sim::Cluster& cluster)
    : node_count_(cluster.size()) {
  snapshot_.resize(cluster.size());
  double degree_total = 0.0;
  for (NodeId u = 0; u < cluster.size(); ++u) {
    snapshot_[u] = cluster.node(u).view().ids();
    std::sort(snapshot_[u].begin(), snapshot_[u].end());
    degree_total += static_cast<double>(snapshot_[u].size());
  }
  snapshot_mean_degree_ =
      cluster.size() == 0 ? 0.0
                          : degree_total / static_cast<double>(cluster.size());
}

double TemporalOverlapTracker::overlap(const sim::Cluster& cluster) const {
  assert(cluster.size() >= snapshot_.size());
  double total = 0.0;
  std::size_t counted = 0;
  for (NodeId u = 0; u < snapshot_.size(); ++u) {
    if (!cluster.live(u)) continue;
    auto current = cluster.node(u).view().ids();
    if (current.empty()) continue;
    std::sort(current.begin(), current.end());
    total += static_cast<double>(intersection_size(current, snapshot_[u])) /
             static_cast<double>(current.size());
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double TemporalOverlapTracker::independent_baseline() const {
  if (node_count_ == 0) return 0.0;
  return snapshot_mean_degree_ / static_cast<double>(node_count_);
}

double TemporalOverlapTracker::edge_indicator_correlation(
    const sim::Cluster& cluster) const {
  // Build indicator vectors over all (u, v) pairs. Membership graphs are
  // sparse, so iterate edges and use dense vectors only logically: we
  // exploit correlation = covariance/sqrt(var*var) computed from counts.
  const std::size_t n = snapshot_.size();
  if (n == 0) return 0.0;
  std::uint64_t ones_old = 0;
  std::uint64_t ones_new = 0;
  std::uint64_t ones_both = 0;
  std::uint64_t pairs = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (!cluster.live(u)) continue;
    pairs += n;
    auto current = cluster.node(u).view().ids();
    std::sort(current.begin(), current.end());
    // Dedupe to indicator semantics.
    current.erase(std::unique(current.begin(), current.end()), current.end());
    auto old = snapshot_[u];
    old.erase(std::unique(old.begin(), old.end()), old.end());
    ones_old += old.size();
    ones_new += current.size();
    ones_both += intersection_size(current, old);
  }
  if (pairs == 0) return 0.0;
  const double p = static_cast<double>(pairs);
  const double mo = static_cast<double>(ones_old) / p;
  const double mn = static_cast<double>(ones_new) / p;
  const double cov = static_cast<double>(ones_both) / p - mo * mn;
  const double vo = mo * (1.0 - mo);
  const double vn = mn * (1.0 - mn);
  if (vo <= 0.0 || vn <= 0.0) return 0.0;
  return cov / std::sqrt(vo * vn);
}

}  // namespace gossip::sampling
