#include "sim/sharded_driver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/flat_send_forget.hpp"
#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "sim/round_driver.hpp"

namespace gossip::sim {
namespace {

void install_regular_topology(FlatSendForgetCluster& cluster, std::size_t k,
                              std::uint64_t graph_seed) {
  Rng rng(graph_seed);
  const Digraph g = permutation_regular(cluster.size(), k, rng);
  for (NodeId u = 0; u < cluster.size(); ++u) {
    cluster.install_view(u, g.out_neighbors(u));
  }
}

// ---------------------------------------------------------------------------
// FlatSendForgetCluster unit behavior (must mirror SendForget, Fig 5.1).
// ---------------------------------------------------------------------------

TEST(FlatSendForget, InitiateOnEmptyViewIsSelfLoop) {
  FlatSendForgetCluster cluster(4, SendForgetConfig{.view_size = 6,
                                                    .min_degree = 0});
  Rng rng(1);
  FlatPush msg;
  EXPECT_EQ(cluster.initiate(0, rng, msg), FlatInitiateResult::kSelfLoop);
  EXPECT_EQ(cluster.degree(0), 0u);
}

TEST(FlatSendForget, InitiateClearsSlotsAboveMinDegree) {
  FlatSendForgetCluster cluster(8, SendForgetConfig{.view_size = 6,
                                                    .min_degree = 0});
  cluster.install_view(3, {1, 2});
  Rng rng(2);
  FlatPush msg;
  FlatInitiateResult result = FlatInitiateResult::kSelfLoop;
  while (result == FlatInitiateResult::kSelfLoop) {
    result = cluster.initiate(3, rng, msg);
  }
  ASSERT_EQ(result, FlatInitiateResult::kSent);
  EXPECT_EQ(cluster.degree(3), 0u);
  EXPECT_EQ(msg.sender.id, 3u);
  EXPECT_FALSE(msg.sender.dependent);
  EXPECT_FALSE(msg.carried.dependent);
  EXPECT_TRUE((msg.to == 1 && msg.carried.id == 2) ||
              (msg.to == 2 && msg.carried.id == 1));
}

TEST(FlatSendForget, InitiateDuplicatesAtMinDegree) {
  FlatSendForgetCluster cluster(8, SendForgetConfig{.view_size = 8,
                                                    .min_degree = 2});
  cluster.install_view(5, {1, 2});  // degree 2 == dL -> duplication
  Rng rng(3);
  FlatPush msg;
  FlatInitiateResult result = FlatInitiateResult::kSelfLoop;
  while (result == FlatInitiateResult::kSelfLoop) {
    result = cluster.initiate(5, rng, msg);
  }
  ASSERT_EQ(result, FlatInitiateResult::kSentDuplicated);
  EXPECT_EQ(cluster.degree(5), 2u);
  EXPECT_TRUE(msg.sender.dependent);
  EXPECT_TRUE(msg.carried.dependent);
}

TEST(FlatSendForget, ReceiveStoresBothIdsAndDeletesWhenFull) {
  FlatSendForgetCluster cluster(10, SendForgetConfig{.view_size = 6,
                                                     .min_degree = 0});
  Rng rng(4);
  FlatPush msg;
  msg.to = 0;
  msg.sender = ViewEntry{3, false};
  msg.carried = ViewEntry{7, true};
  EXPECT_EQ(cluster.receive(0, msg, rng), 2u);
  EXPECT_EQ(cluster.degree(0), 2u);
  const auto ids = cluster.view_ids(0);
  EXPECT_NE(std::find(ids.begin(), ids.end(), 3u), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), 7u), ids.end());

  cluster.install_view(1, {2, 3, 4, 5, 6, 7});
  msg.to = 1;
  EXPECT_EQ(cluster.receive(1, msg, rng), 0u);  // full: deletion
  EXPECT_EQ(cluster.degree(1), 6u);
}

TEST(FlatSendForget, ReceivingOwnIdCreatesDependentSelfEdge) {
  FlatSendForgetCluster cluster(10, SendForgetConfig{.view_size = 6,
                                                     .min_degree = 0});
  Rng rng(5);
  FlatPush msg;
  msg.to = 4;
  msg.sender = ViewEntry{1, false};
  msg.carried = ViewEntry{4, false};
  cluster.receive(4, msg, rng);
  for (const ViewEntry& e : cluster.view_entries(4)) {
    if (e.id == 4) EXPECT_TRUE(e.dependent);
  }
}

TEST(FlatSendForget, ReviveBootstrapsMinDegreeLiveIds) {
  FlatSendForgetCluster cluster(64, SendForgetConfig{.view_size = 12,
                                                     .min_degree = 4});
  install_regular_topology(cluster, 4, 11);
  Rng rng(6);
  cluster.kill(7);
  EXPECT_EQ(cluster.live_count(), 63u);
  cluster.revive(7, rng);
  EXPECT_TRUE(cluster.live(7));
  EXPECT_EQ(cluster.degree(7), 4u);
  for (const NodeId id : cluster.view_ids(7)) {
    EXPECT_NE(id, 7u);
    EXPECT_TRUE(cluster.live(id));
  }
}

// ---------------------------------------------------------------------------
// ShardedDriver: determinism, invariants, equivalence with RoundDriver.
// ---------------------------------------------------------------------------

// One full sharded run with loss and churn; returns the final fingerprint.
std::uint64_t churny_run(std::size_t n, std::size_t shards,
                         std::uint64_t seed) {
  FlatSendForgetCluster cluster(n, default_send_forget_config());
  install_regular_topology(cluster, 18, 21);
  ShardedDriver driver(
      cluster, ShardedDriverConfig{
                   .shard_count = shards, .loss_rate = 0.05, .seed = seed});
  Rng churn_picks(seed ^ 0xABCD);
  std::vector<NodeId> dead;
  for (int batch = 0; batch < 8; ++batch) {
    driver.run_rounds(3);
    // Deterministic churn schedule: kill two nodes, revive one.
    for (int i = 0; i < 2; ++i) {
      const auto victim =
          static_cast<NodeId>(churn_picks.uniform(cluster.size()));
      if (cluster.live(victim) && cluster.live_count() > n / 2) {
        driver.kill(victim);
        dead.push_back(victim);
      }
    }
    if (!dead.empty()) {
      driver.revive(dead.back());
      dead.pop_back();
    }
  }
  return cluster.fingerprint() ^ (driver.actions_executed() * 0x9E37ULL) ^
         driver.network_metrics().delivered;
}

TEST(ShardedDriver, BitExactDeterminismForFixedSeedAndThreadCount) {
  // Same (seed, shard_count) => bit-identical final state and counters,
  // regardless of how the OS schedules the worker threads.
  const std::uint64_t a = churny_run(4096, 4, 77);
  const std::uint64_t b = churny_run(4096, 4, 77);
  EXPECT_EQ(a, b);
  // Different seed must (overwhelmingly) diverge — guards against the
  // fingerprint degenerating to a constant.
  EXPECT_NE(a, churny_run(4096, 4, 78));
}

TEST(ShardedDriver, SingleVsMultiShardAreBothDeterministic) {
  EXPECT_EQ(churny_run(1000, 1, 5), churny_run(1000, 1, 5));
  EXPECT_EQ(churny_run(1000, 3, 5), churny_run(1000, 3, 5));
}

TEST(ShardedDriver, Obs51InvariantUnderParallelLossAndChurn) {
  // Observation 5.1: every outdegree stays even and within [dL, s] — after
  // >= 10k parallel actions under 5% loss with ongoing churn.
  const std::size_t n = 2000;
  const auto cfg = default_send_forget_config();
  FlatSendForgetCluster cluster(n, cfg);
  install_regular_topology(cluster, cfg.min_degree, 31);
  ShardedDriver driver(cluster, ShardedDriverConfig{.shard_count = 4,
                                                    .loss_rate = 0.05,
                                                    .seed = 9});
  Rng churn_picks(123);
  std::vector<NodeId> dead;
  for (int batch = 0; batch < 10; ++batch) {
    driver.run_rounds(1);
    for (int i = 0; i < 5; ++i) {
      const auto victim = static_cast<NodeId>(churn_picks.uniform(n));
      if (cluster.live(victim) && cluster.live_count() > n - 200) {
        driver.kill(victim);
        dead.push_back(victim);
      }
    }
    while (dead.size() > 3) {
      driver.revive(dead.back());
      dead.pop_back();
    }
  }
  ASSERT_GE(driver.actions_executed(), 10'000u);
  for (NodeId u = 0; u < n; ++u) {
    if (!cluster.live(u)) continue;
    const std::size_t d = cluster.degree(u);
    ASSERT_EQ(d % 2, 0u) << "node " << u;
    ASSERT_GE(d, cfg.min_degree) << "node " << u;
    ASSERT_LE(d, cfg.view_size) << "node " << u;
  }
  // Loss actually happened and messages actually crossed shards.
  EXPECT_GT(driver.network_metrics().lost, 0u);
  EXPECT_GT(driver.network_metrics().delivered, 0u);
}

TEST(ShardedDriver, OneShardMatchesRoundDriverStatistically) {
  // The sharded schedule (stratified initiations, barrier-drained
  // deliveries) must reproduce the serialized driver's steady state:
  // compare degree statistics at the paper's operating point under 5% loss.
  const std::size_t n = 2000;
  const std::size_t rounds = 300;
  const auto cfg = default_send_forget_config();

  FlatSendForgetCluster flat(n, cfg);
  install_regular_topology(flat, cfg.min_degree, 41);
  ShardedDriver sharded(flat, ShardedDriverConfig{.shard_count = 1,
                                                  .loss_rate = 0.05,
                                                  .seed = 17});
  sharded.run_rounds(rounds);

  Rng seq_rng(17);
  Rng graph_rng(41);
  Cluster cluster(n, [&cfg](NodeId id) {
    return std::make_unique<SendForget>(id, cfg);
  });
  cluster.install_graph(permutation_regular(n, cfg.min_degree, graph_rng));
  UniformLoss loss(0.05);
  RoundDriver driver(cluster, loss, seq_rng);
  driver.run_rounds(rounds);

  double flat_mean = 0.0;
  double seq_mean = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    flat_mean += static_cast<double>(flat.degree(u));
    seq_mean += static_cast<double>(cluster.node(u).view().degree());
  }
  flat_mean /= static_cast<double>(n);
  seq_mean /= static_cast<double>(n);
  // Same tolerance regime as test_send_forget.cpp's statistical checks
  // (4% of the quantity's scale).
  EXPECT_NEAR(flat_mean, seq_mean, 0.04 * static_cast<double>(cfg.view_size));

  const auto flat_m = sharded.protocol_metrics();
  const auto seq_m = cluster.aggregate_metrics();
  EXPECT_NEAR(flat_m.self_loop_rate(), seq_m.self_loop_rate(), 0.04);
  EXPECT_NEAR(flat_m.duplication_rate(), seq_m.duplication_rate(), 0.04);
}

}  // namespace
}  // namespace gossip::sim
