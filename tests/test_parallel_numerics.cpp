// Threading correctness of the numeric kernels: the thread pool's
// coverage/blocking contract and the bit-reproducibility promises of the
// parallel SpMV and the mixing loop. This suite carries the `tsan` label —
// configure with -DGOSSIP_SANITIZE=thread and run `ctest -L tsan` to put
// the pool and the parallel gathers under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "analysis/mixing.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "markov/sparse_chain.hpp"

namespace gossip {
namespace {

// Large enough that SparseChain::step_into takes the parallel gather path
// (transition count >= 2^15).
markov::SparseChain large_random_chain(std::size_t n, std::size_t k,
                                       std::uint64_t seed) {
  markov::SparseChain chain(n);
  Rng rng(seed);
  const double p = 0.9 / static_cast<double>(k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      std::size_t to = rng.uniform(n);
      if (to == i) to = (to + 1) % n;
      chain.add(i, to, p);
    }
  }
  chain.finalize();
  return chain;
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 100'003;  // prime: uneven final chunk
  std::vector<std::atomic<int>> hits(kCount);
  ThreadPool::global().parallel_for(kCount, 64,
                                    [&](std::size_t begin, std::size_t end) {
                                      for (std::size_t i = begin; i < end; ++i)
                                        hits[i].fetch_add(1);
                                    });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ThreadPool, BlocksUntilAllChunksRan) {
  std::atomic<std::size_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    ThreadPool::global().parallel_for(
        1000, 10, [&](std::size_t begin, std::size_t end) {
          sum.fetch_add(end - begin);
        });
    ASSERT_EQ(sum.load(), 1000u * (round + 1));
  }
}

TEST(ThreadPool, NestedCallsRunInline) {
  std::atomic<std::size_t> inner_total{0};
  ThreadPool::global().parallel_for(
      8, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          // A nested parallel_for from a worker must not deadlock; it runs
          // inline on the calling thread.
          ThreadPool::global().parallel_for(
              100, 10, [&](std::size_t b, std::size_t e) {
                inner_total.fetch_add(e - b);
              });
        }
      });
  EXPECT_EQ(inner_total.load(), 800u);
}

TEST(ParallelSpmv, RepeatedRunsAreBitIdentical) {
  const auto chain = large_random_chain(8192, 8, 21);
  ASSERT_GE(chain.transition_count(), std::size_t{1} << 15);
  std::vector<double> pi(chain.state_count());
  Rng rng(5);
  double total = 0.0;
  for (double& x : pi) total += (x = rng.uniform_double());
  for (double& x : pi) x /= total;

  std::vector<double> first;
  chain.step_into(pi, first);
  for (int run = 0; run < 5; ++run) {
    std::vector<double> again;
    chain.step_into(pi, again);
    ASSERT_EQ(again, first) << "run=" << run;  // bitwise, not approximate
  }
}

TEST(ParallelSpmv, NestedInvocationMatchesTopLevel) {
  // step_into called from inside a pool worker takes the inline path; the
  // fixed-order per-destination gather must make that bit-identical to the
  // top-level (parallel) invocation.
  const auto chain = large_random_chain(8192, 8, 22);
  std::vector<double> pi(chain.state_count(),
                         1.0 / static_cast<double>(chain.state_count()));
  std::vector<double> top;
  chain.step_into(pi, top);

  // Several single-index chunks so the calls land on pool workers (when
  // the pool has more than one executor), each into its own output.
  std::vector<std::vector<double>> nested(4);
  ThreadPool::global().parallel_for(4, 1,
                                    [&](std::size_t begin, std::size_t end) {
                                      for (std::size_t i = begin; i < end; ++i)
                                        chain.step_into(pi, nested[i]);
                                    });
  for (std::size_t i = 0; i < nested.size(); ++i) {
    ASSERT_EQ(nested[i], top) << "chunk=" << i;
  }
}

TEST(ParallelSpmv, ParallelStationaryMatchesSmallChainSemantics) {
  // The same two-block structure solved at small (serial gather) and large
  // (parallel gather) scale: every copy of the block must get the same
  // stationary mass, so block sums agree across scales.
  auto block_chain = [](std::size_t copies) {
    markov::SparseChain chain(2 * copies);
    for (std::size_t c = 0; c < copies; ++c) {
      chain.add(2 * c, 2 * c + 1, 0.3);
      chain.add(2 * c + 1, 2 * c, 0.1);
      // Weak uniform coupling between consecutive copies keeps the chain
      // irreducible without disturbing the within-block ratio.
      chain.add(2 * c, (2 * c + 2) % (2 * copies), 1e-9);
      chain.add(2 * c + 1, (2 * c + 3) % (2 * copies), 1e-9);
    }
    chain.finalize();
    return chain;
  };
  const auto small = block_chain(4);       // serial path
  const auto large = block_chain(10'000);  // parallel path
  ASSERT_GE(large.transition_count(), std::size_t{1} << 15);
  // Tolerance well above the L1 rounding floor of a 20k-entry
  // renormalized vector (~1e-12): the residual cannot reach arbitrarily
  // small values on large chains.
  const auto rs = small.stationary({}, 1e-9, 200'000);
  const auto rl = large.stationary({}, 1e-9, 200'000);
  ASSERT_TRUE(rs.converged);
  ASSERT_TRUE(rl.converged);
  // Within every block pi(even) : pi(odd) = 1 : 3 (detailed balance of the
  // 0.3 / 0.1 pair), at both scales.
  EXPECT_NEAR(rs.distribution[1] / rs.distribution[0], 3.0, 1e-6);
  EXPECT_NEAR(rl.distribution[1] / rl.distribution[0], 3.0, 1e-6);
}

TEST(ParallelMixing, RepeatedMeasurementsAreBitIdentical) {
  // measure_mixing distributes rows over the pool; per-row TV terms are
  // summed in index order, so the curve must not depend on scheduling.
  markov::SparseChain chain(64);
  Rng rng(9);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      std::size_t to = rng.uniform(64);
      if (to == i) to = (to + 1) % 64;
      chain.add(i, to, 0.2);
    }
  }
  chain.finalize();
  const auto pi = chain.stationary({}, 1e-13, 500'000);
  ASSERT_TRUE(pi.converged);
  const auto first = analysis::measure_mixing(chain, pi.distribution, 30, 0.01);
  for (int run = 0; run < 3; ++run) {
    const auto again =
        analysis::measure_mixing(chain, pi.distribution, 30, 0.01);
    ASSERT_EQ(again.expected_tv, first.expected_tv);
  }
}

}  // namespace
}  // namespace gossip
