// Appendix A, executed: the reachability construction behind Lemma A.1.
//
// For pairs of membership graphs sampled from the same no-loss S&F system
// (hence sharing the sum-degree vector, Lemma 6.2), the planner emits an
// explicit sequence of degree-borrowing and edge-exchange moves — each
// realizable as 1-2 S&F actions — transforming one graph exactly into the
// other. The bench reports plan sizes, the move mix, and verifies every
// plan by replay. This makes the irreducibility at the heart of §7
// (Lemmas A.1-A.3, 7.1) constructive rather than existential.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/send_forget.hpp"
#include "graph/graph_gen.hpp"
#include "graph/reachability.hpp"
#include "sim/round_driver.hpp"

namespace {

using namespace gossip;
using namespace gossip::graph_ops;

std::pair<Digraph, Digraph> snapshot_pair(std::size_t n, std::size_t k,
                                          std::uint64_t rounds_apart,
                                          std::uint64_t seed) {
  Rng rng(seed);
  sim::Cluster cluster(n, [](NodeId id) {
    return std::make_unique<SendForget>(
        id, SendForgetConfig{.view_size = 64, .min_degree = 0});
  });
  cluster.install_graph(permutation_regular(n, k, rng));
  sim::UniformLoss loss(0.0);
  sim::RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(50);
  Digraph a = cluster.snapshot();
  driver.run_rounds(rounds_apart);
  Digraph b = cluster.snapshot();
  return {std::move(a), std::move(b)};
}

}  // namespace

int main() {
  using namespace gossip::bench;
  constexpr TransformLimits kLimits{.view_size = 64, .min_degree = 0};

  print_header("Appendix A — constructive reachability (Lemma A.1)");
  std::printf(
      "%6s %8s %14s | %10s %10s %10s %8s\n", "n", "edges", "rounds apart",
      "moves", "exchanges", "borrows", "exact?");

  for (const std::size_t n : {12u, 24u, 48u, 96u}) {
    for (const std::uint64_t apart : {20u, 200u}) {
      const auto [from, to] = snapshot_pair(n, 4, apart, 100 + n + apart);
      const auto moves = plan_transformation(from, to, kLimits);
      std::size_t exchanges = 0;
      std::size_t borrows = 0;
      for (const auto& move : moves) {
        if (move.kind == Move::Kind::kEdgeExchange) {
          ++exchanges;
        } else {
          ++borrows;
        }
      }
      Digraph work = from;
      apply_moves(work, moves, kLimits);
      std::printf("%6zu %8zu %14llu | %10zu %10zu %10zu %8s\n", n,
                  from.edge_count(), static_cast<unsigned long long>(apart),
                  moves.size(), exchanges, borrows,
                  work == to ? "yes" : "NO");
    }
  }
  print_note("every plan replays to the exact target graph; plan length "
             "scales near-linearly with the edge count (each relocation "
             "costs O(path length) primitive exchanges). Lemma A.1's "
             "'finite number of transformations' is typically a few per "
             "edge.");
  return 0;
}
