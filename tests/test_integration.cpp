// End-to-end tests: the full simulated system must exhibit the paper's
// headline behaviours (M1-M5, Lemmas 6.6-6.13, §7) from realistic starting
// topologies, under loss, churn, and concurrent execution.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/decay.hpp"
#include "analysis/degree_mc.hpp"
#include "analysis/independence.hpp"
#include "core/baselines/push_pull.hpp"
#include "core/baselines/shuffle.hpp"
#include "core/send_forget.hpp"
#include "common/stats.hpp"
#include "graph/connectivity.hpp"
#include "graph/graph_gen.hpp"
#include "graph/graph_stats.hpp"
#include "sampling/spatial.hpp"
#include "sampling/temporal_overlap.hpp"
#include "sampling/uniformity.hpp"
#include "sim/churn.hpp"
#include "sim/event_driver.hpp"
#include "sim/round_driver.hpp"

namespace gossip {
namespace {

using sim::Cluster;
using sim::RoundDriver;
using sim::UniformLoss;

Cluster::ProtocolFactory sf_factory(std::size_t s, std::size_t dl) {
  return [s, dl](NodeId id) {
    return std::make_unique<SendForget>(
        id, SendForgetConfig{.view_size = s, .min_degree = dl});
  };
}

TEST(Integration, SteadyStateDegreesMatchDegreeMc) {
  // The nonatomic simulated protocol should land on the distribution the
  // §6.2 degree MC predicts (validating the mean-field model).
  Rng rng(1);
  Cluster cluster(2000, sf_factory(40, 18));
  cluster.install_graph(permutation_regular(2000, 10, rng));
  UniformLoss loss(0.05);
  RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(500);

  RunningStats in_mean;
  for (int snap = 0; snap < 10; ++snap) {
    driver.run_rounds(20);
    in_mean.add(degree_summary(cluster.snapshot()).in_mean);
  }
  analysis::DegreeMcParams params;
  params.view_size = 40;
  params.min_degree = 18;
  params.loss = 0.05;
  const auto mc = analysis::solve_degree_mc(params);
  EXPECT_NEAR(in_mean.mean(), mc.expected_in, 0.5);
}

TEST(Integration, ConnectivityMaintainedUnderHeavyLoss) {
  Rng rng(2);
  Cluster cluster(1000, sf_factory(40, 18));
  cluster.install_graph(permutation_regular(1000, 10, rng));
  UniformLoss loss(0.10);
  RoundDriver driver(cluster, loss, rng);
  for (int chunk = 0; chunk < 10; ++chunk) {
    driver.run_rounds(50);
    ASSERT_TRUE(is_weakly_connected(cluster.snapshot()))
        << "partitioned after " << (chunk + 1) * 50 << " rounds";
  }
}

TEST(Integration, RecoversFromAdversarialStarTopology) {
  // M2/M3 must hold "starting from any sufficiently connected initial
  // state": begin from a dense star (hub indegree ~2n, everyone else ~2)
  // and verify the load evens out. Each spoke keeps a couple of random
  // chords so the initial state meets the paper's connectivity margin
  // (a bare star with degree-2 views mixes impractically slowly).
  Rng rng(3);
  constexpr std::size_t kN = 400;
  Cluster cluster(kN, sf_factory(12, 4));
  Digraph star(kN);
  for (NodeId u = 1; u < kN; ++u) {
    star.add_edge(u, 0);
    star.add_edge(u, 0);
    for (int c = 0; c < 2; ++c) {
      auto v = static_cast<NodeId>(rng.uniform(kN - 1));
      if (v >= u) ++v;
      star.add_edge(u, v);
    }
  }
  star.add_edge(0, 1);
  star.add_edge(0, 2);
  star.add_edge(0, 3);
  star.add_edge(0, 4);
  cluster.install_graph(star);
  ASSERT_GT(star.in_degree(0), 2 * (kN - 2));
  UniformLoss loss(0.01);
  RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(1500);
  const auto snap = cluster.snapshot();
  const auto summary = degree_summary(snap);
  // The hub's overload is gone: indegree variance is bounded (M2) and the
  // hub's indegree has collapsed by more than an order of magnitude.
  EXPECT_LT(summary.in_variance, 4.0 * summary.in_mean);
  EXPECT_LT(static_cast<double>(snap.in_degree(0)), summary.in_mean * 4.0);
  EXPECT_TRUE(is_weakly_connected(snap));
}

TEST(Integration, Lemma66DupBalancesLossPlusDeletionEmpirically) {
  Rng rng(4);
  Cluster cluster(1500, sf_factory(40, 18));
  cluster.install_graph(permutation_regular(1500, 10, rng));
  UniformLoss loss(0.05);
  RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(400);  // warm up to steady state

  // Measure rates over a window.
  const auto before = cluster.aggregate_metrics();
  driver.run_rounds(400);
  const auto after = cluster.aggregate_metrics();
  const double actions =
      static_cast<double>(after.actions_initiated - before.actions_initiated -
                          (after.self_loop_actions - before.self_loop_actions));
  const double dup =
      static_cast<double>(after.duplications - before.duplications) / actions;
  const double del =
      static_cast<double>(after.deletions - before.deletions) / actions;
  EXPECT_NEAR(dup, 0.05 + del, 0.01);
  // Lemma 6.7: dup in [l, l + delta] with delta ~ 1%.
  EXPECT_GE(dup, 0.045);
  EXPECT_LE(dup, 0.075);
}

TEST(Integration, LeaverIdsDecayNoFasterThanPaperBoundPredicts) {
  // Lemma 6.10 upper-bounds survival; the simulation must not exceed the
  // bound by more than statistical noise (and should decay at all).
  Rng rng(5);
  constexpr std::size_t kN = 1000;
  Cluster cluster(kN, sf_factory(40, 18));
  cluster.install_graph(permutation_regular(kN, 10, rng));
  UniformLoss loss(0.01);
  RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(400);

  // Kill 20 nodes; count their remaining id instances over time.
  std::vector<NodeId> victims;
  for (NodeId v = 0; v < 20; ++v) {
    victims.push_back(v);
    cluster.kill(v);
  }
  auto count_instances = [&] {
    std::size_t count = 0;
    const auto g = cluster.snapshot();
    for (const NodeId v : victims) count += g.in_degree(v);
    return count;
  };
  const double initial = static_cast<double>(count_instances());
  ASSERT_GT(initial, 0.0);

  analysis::DecayParams decay{
      .view_size = 40, .min_degree = 18, .loss = 0.01, .delta = 0.01};
  const auto bound = analysis::leave_survival_bound(decay, 200);
  for (int r = 50; r <= 200; r += 50) {
    driver.run_rounds(50);
    const double remaining = static_cast<double>(count_instances()) / initial;
    EXPECT_LE(remaining, bound[r] + 0.08) << "round " << r;
  }
  // And decay is real: under 45% left after 200 rounds (bound: ~11%).
  EXPECT_LT(static_cast<double>(count_instances()) / initial, 0.45);
}

TEST(Integration, JoinerIntegratesAtPaperRate) {
  // Corollary 6.14 shape: within ~s^2/((1-l-d)dL) rounds, a joiner gets
  // at least (dL/s)^2 * Din in-neighbors in expectation.
  Rng rng(6);
  constexpr std::size_t kN = 800;
  Cluster cluster(kN, sf_factory(40, 18));
  cluster.install_graph(permutation_regular(kN, 10, rng));
  UniformLoss loss(0.01);
  RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(300);

  const double din_expected = degree_summary(cluster.snapshot()).in_mean;
  constexpr int kJoiners = 30;
  std::vector<NodeId> joiners;
  for (int j = 0; j < kJoiners; ++j) {
    joiners.push_back(sim::join_node(cluster, sf_factory(40, 18), 18, rng));
  }
  analysis::DecayParams decay{
      .view_size = 40, .min_degree = 18, .loss = 0.01, .delta = 0.01};
  const auto window =
      static_cast<std::uint64_t>(analysis::joiner_integration_rounds(decay));
  driver.run_rounds(window);
  const auto g = cluster.snapshot();
  double total_in = 0.0;
  for (const NodeId j : joiners) {
    total_in += static_cast<double>(g.in_degree(j));
  }
  const double mean_in = total_in / kJoiners;
  const double paper_floor =
      analysis::joiner_instances_fraction(decay) * din_expected;
  EXPECT_GE(mean_in, paper_floor * 0.8) << "joiners under-integrated";
}

TEST(Integration, UniformityChiSquareOverLongRun) {
  // Lemma 7.6 / M3: long-run occupancy is uniform across ids.
  Rng rng(7);
  constexpr std::size_t kN = 256;
  Cluster cluster(kN, sf_factory(16, 6));
  cluster.install_graph(permutation_regular(kN, 4, rng));
  UniformLoss loss(0.01);
  RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(300);
  sampling::UniformityTester tester(kN);
  for (int snap = 0; snap < 120; ++snap) {
    driver.run_rounds(25);
    tester.record_snapshot(cluster);
  }
  const auto result = tester.test_uniform();
  // Snapshots are correlated so a strict p-value test would be invalid;
  // check that occupancy is within a modest relative band instead.
  EXPECT_LT(result.max_relative_deviation, 0.25);
}

TEST(Integration, SpatialIndependenceWithinPaperBound) {
  Rng rng(8);
  Cluster cluster(800, sf_factory(40, 18));
  cluster.install_graph(permutation_regular(800, 10, rng));
  UniformLoss loss(0.01);
  RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(600);
  const auto dep = sampling::measure_spatial_dependence(cluster);
  const double bound = analysis::dependent_fraction_bound_simple(0.01, 0.01);
  EXPECT_LT(dep.dependent_fraction_upper(), bound + 0.03);
  EXPECT_GT(dep.independence_estimate(), 0.9);
}

TEST(Integration, TemporalIndependenceWithinOSLogNActionsPerNode) {
  // §7.5: overlap with the starting state decays to near-baseline after
  // each node initiates O(s log n) actions.
  Rng rng(9);
  constexpr std::size_t kN = 500;
  constexpr std::size_t kS = 16;
  Cluster cluster(kN, sf_factory(kS, 6));
  cluster.install_graph(permutation_regular(kN, 4, rng));
  UniformLoss loss(0.01);
  RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(200);

  const sampling::TemporalOverlapTracker tracker(cluster);
  const auto rounds =
      static_cast<std::uint64_t>(4.0 * kS * std::log(static_cast<double>(kN)));
  driver.run_rounds(rounds);
  const double overlap = tracker.overlap(cluster);
  EXPECT_LT(overlap, tracker.independent_baseline() + 0.08);
}

TEST(Integration, SurvivesChurnWithLoss) {
  Rng rng(10);
  Cluster cluster(500, sf_factory(24, 8));
  cluster.install_graph(permutation_regular(500, 6, rng));
  UniformLoss loss(0.05);
  RoundDriver driver(cluster, loss, rng);
  driver.run_rounds(100);
  sim::ChurnProcess churn(cluster, sf_factory(24, 8), 8,
                          /*join_rate=*/0.5, /*leave_rate=*/0.5,
                          /*min_live=*/100);
  for (int step = 0; step < 300; ++step) {
    churn.maybe_churn(rng);
    driver.run_rounds(1);
  }
  EXPECT_GT(churn.total_joins(), 100u);
  EXPECT_GT(churn.total_leaves(), 100u);
  // Dead ids must not dominate views, and the live overlay stays
  // connected.
  driver.run_rounds(200);
  EXPECT_TRUE(is_weakly_connected_among(cluster.snapshot(),
                                        cluster.liveness()));
  std::size_t dead_refs = 0;
  std::size_t total_refs = 0;
  for (const NodeId u : cluster.live_nodes()) {
    for (const NodeId v : cluster.node(u).view().ids()) {
      ++total_refs;
      if (v >= cluster.size() || !cluster.live(v)) ++dead_refs;
    }
  }
  EXPECT_LT(static_cast<double>(dead_refs) / static_cast<double>(total_refs),
            0.05);
}

TEST(Integration, ConcurrentDriverMatchesSerializedSteadyState) {
  // The event-driven (overlapping actions) execution must produce the same
  // steady-state mean degrees as the serialized analysis model.
  Rng rng1(11);
  Cluster serial(800, sf_factory(40, 18));
  serial.install_graph(permutation_regular(800, 10, rng1));
  UniformLoss loss1(0.05);
  RoundDriver round_driver(serial, loss1, rng1);
  round_driver.run_rounds(500);

  Rng rng2(12);
  Cluster concurrent(800, sf_factory(40, 18));
  concurrent.install_graph(permutation_regular(800, 10, rng2));
  UniformLoss loss2(0.05);
  sim::EventDriverConfig config;
  config.period = 5.0;
  config.latency = sim::LatencyModel{.min_latency = 0.5, .max_latency = 4.0};
  sim::EventDriver event_driver(concurrent, loss2, rng2, config);
  event_driver.run_rounds(500);

  // Average several snapshots to tame per-snapshot noise. A small
  // systematic gap remains (messages in flight are invisible to a
  // snapshot), so the tolerance is ~4% of the mean.
  RunningStats out1;
  RunningStats out2;
  RunningStats invar1;
  RunningStats invar2;
  for (int snap = 0; snap < 5; ++snap) {
    round_driver.run_rounds(20);
    event_driver.run_rounds(20);
    const auto s1 = degree_summary(serial.snapshot());
    const auto s2 = degree_summary(concurrent.snapshot());
    out1.add(s1.out_mean);
    out2.add(s2.out_mean);
    invar1.add(s1.in_variance);
    invar2.add(s2.in_variance);
  }
  EXPECT_NEAR(out1.mean(), out2.mean(), 1.2);
  EXPECT_NEAR(invar1.mean(), invar2.mean(), invar1.mean() * 0.5);
}

TEST(Integration, ShuffleCollapsesUnderLossButSfDoesNot) {
  // §3.1's motivating comparison. Equal loss, equal rounds: shuffle leaks
  // edges permanently; S&F regenerates them.
  Rng rng(13);
  const auto g = permutation_regular(400, 8, rng);

  Cluster sf(400, sf_factory(24, 8));
  sf.install_graph(g);
  UniformLoss loss_sf(0.10);
  RoundDriver sf_driver(sf, loss_sf, rng);
  sf_driver.run_rounds(400);

  Cluster shuffle(400, [](NodeId id) {
    return std::make_unique<Shuffle>(
        id, ShuffleConfig{.view_size = 24, .shuffle_length = 4});
  });
  shuffle.install_graph(g);
  UniformLoss loss_sh(0.10);
  RoundDriver sh_driver(shuffle, loss_sh, rng);
  sh_driver.run_rounds(400);

  const double sf_out = degree_summary(sf.snapshot()).out_mean;
  const double sh_out = degree_summary(shuffle.snapshot()).out_mean;
  EXPECT_GT(sf_out, 8.0);  // held up above dL
  EXPECT_LT(sh_out, sf_out * 0.5);  // shuffle collapsed
}

}  // namespace
}  // namespace gossip
