#include "common/node_id.hpp"
#include "common/node_id.hpp"
