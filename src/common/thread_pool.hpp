// Persistent worker pool with a deterministic blocking parallel-for.
//
// The analysis pipeline (sparse SpMV in `markov/sparse_chain`, the mixing
// loop, spectral power iteration) needs data parallelism with *bit-exact*
// results: chunk boundaries are a pure function of (count, grain), never of
// the worker count or of scheduling, and every output element is written by
// exactly one chunk as a fixed-order sum. Workers only decide *which thread*
// executes a chunk, so results are identical for any pool size — the same
// contract the sharded simulation driver provides per (seed, shard_count),
// strengthened here to independence from the thread count as well.
//
// parallel_for is re-entrant-safe: a call made from inside a worker (nested
// parallelism, e.g. mixing evolving rows whose step could itself be
// parallel) runs inline on the calling thread instead of deadlocking on the
// pool.
#pragma once

#include <cstddef>
#include <functional>

namespace gossip {

class ThreadPool {
 public:
  // Spawns `thread_count - 1` workers (the caller participates as the
  // remaining executor). thread_count == 0 is normalized to 1.
  explicit ThreadPool(std::size_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total executors (workers + the calling thread).
  [[nodiscard]] std::size_t size() const { return thread_count_; }

  // Invokes fn(begin, end) over [0, count) split into ceil(count / grain)
  // contiguous chunks and blocks until all chunks ran. Chunk boundaries
  // depend only on count and grain. Runs entirely inline when the pool has
  // one executor, when there is a single chunk, or when called from inside
  // a pool worker.
  void parallel_for(std::size_t count, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  // Process-wide pool sized to the hardware concurrency. Lazily constructed
  // on first use; shared by all numeric kernels so oversubscription never
  // multiplies across solver layers.
  [[nodiscard]] static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_;
  std::size_t thread_count_;
};

}  // namespace gossip
