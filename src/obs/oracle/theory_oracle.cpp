#include "obs/oracle/theory_oracle.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace gossip::obs {

namespace {

// Support cells the prediction considers reachable; mass below this is
// treated as zero when counting effective bins.
constexpr double kSupportEps = 1e-9;

double tvd_hist_vs_pmf(const std::vector<std::uint64_t>& hist,
                       const std::vector<double>& pmf, std::uint64_t samples,
                       std::size_t* effective_bins) {
  const std::size_t len = std::max(hist.size(), pmf.size());
  double tvd = 0.0;
  std::size_t bins = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const double p = i < pmf.size() ? pmf[i] : 0.0;
    const double q =
        (i < hist.size() && samples > 0)
            ? static_cast<double>(hist[i]) / static_cast<double>(samples)
            : 0.0;
    tvd += std::abs(p - q);
    if (p > kSupportEps || q > 0.0) ++bins;
  }
  if (effective_bins != nullptr) *effective_bins = std::max<std::size_t>(1, bins);
  return 0.5 * tvd;
}

// Pearson χ² with sparse-cell folding: cells whose expected count falls
// below 0.5 are folded into one residual cell, and the residual's expected
// count is floored so a single stray observation cannot produce an
// astronomically large statistic (it still registers as drift; the limit
// comparison does the judging).
double chi2_hist_vs_pmf(const std::vector<std::uint64_t>& hist,
                        const std::vector<double>& pmf, std::uint64_t samples,
                        std::size_t* dof_out) {
  const auto n = static_cast<double>(samples);
  const std::size_t len = std::max(hist.size(), pmf.size());
  double chi2 = 0.0;
  double residual_expected = 0.0;
  double residual_observed = 0.0;
  std::size_t cells = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const double p = i < pmf.size() ? pmf[i] : 0.0;
    const double obs =
        i < hist.size() ? static_cast<double>(hist[i]) : 0.0;
    const double expected = n * p;
    if (expected >= 0.5) {
      const double diff = obs - expected;
      chi2 += diff * diff / expected;
      ++cells;
    } else {
      residual_expected += expected;
      residual_observed += obs;
    }
  }
  if (residual_observed > 0.0 || residual_expected > 0.0) {
    const double expected = std::max(residual_expected, 0.25);
    const double diff = residual_observed - expected;
    chi2 += diff * diff / expected;
    ++cells;
  }
  if (dof_out != nullptr) *dof_out = cells > 1 ? cells - 1 : 1;
  return chi2;
}

std::uint64_t counter_delta(std::uint64_t now, std::uint64_t before) {
  return now >= before ? now - before : 0;
}

}  // namespace

TheoryOracle::TheoryOracle(TheoryPrediction prediction, OracleConfig config,
                           DriftMonitorConfig monitor_config)
    : prediction_(std::move(prediction)),
      config_(config),
      monitor_(monitor_config) {
  monitor_.set_violation_callback([this](const DriftTransition&) {
    if (flight_recorder_ != nullptr && !flight_dumped_ &&
        !flight_dump_path_.empty()) {
      flight_dumped_ = flight_recorder_->dump_to_file(flight_dump_path_);
    }
  });
}

void TheoryOracle::bind_registry(MetricsRegistry* registry,
                                 std::size_t shard) {
  registry_ = registry;
  registry_shard_ = shard;
  if (registry_ == nullptr) return;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(DriftCheck::kCheckCount); ++i) {
    score_gauges_[i] = registry_->gauge(
        std::string("drift_") +
        drift_check_name(static_cast<DriftCheck>(i)));
  }
  violations_gauge_ = registry_->gauge("drift_violations");
}

void TheoryOracle::update_prediction(TheoryPrediction prediction) {
  prediction_ = std::move(prediction);
  // Statistics accumulated against the previous stationary point are no
  // longer comparable: re-pin the rate window at the next probe and start
  // the uniformity census over, as when a declared fault window closes.
  have_rate_baseline_ = false;
  occurrence_sum_.clear();
  always_live_.clear();
  uniformity_probes_ = 0;
}

void TheoryOracle::declare_fault_window(std::uint64_t begin,
                                        std::uint64_t end,
                                        std::uint64_t grace_rounds) {
  fault_windows_.push_back({begin, end + grace_rounds});
}

bool TheoryOracle::round_expected(std::uint64_t round) const {
  for (const FaultWindow& w : fault_windows_) {
    if (round >= w.begin && round < w.end_with_grace) return true;
  }
  return false;
}

void TheoryOracle::arm_flight_dump(FlightRecorder* recorder,
                                   std::string path) {
  flight_recorder_ = recorder;
  flight_dump_path_ = std::move(path);
  flight_dumped_ = false;
}

void TheoryOracle::check_degree(const FlatClusterProbe& probe) {
  const std::uint64_t samples = probe.live_nodes;
  if (samples == 0 || !prediction_.valid()) return;

  std::size_t out_bins = 1;
  std::size_t in_bins = 1;
  last_.tvd_out = tvd_hist_vs_pmf(probe.outdegree_hist, prediction_.out_pmf,
                                  samples, &out_bins);
  last_.tvd_in = tvd_hist_vs_pmf(probe.indegree_hist, prediction_.in_pmf,
                                 samples, &in_bins);
  const auto n = static_cast<double>(samples);
  last_.tvd_out_limit =
      config_.tvd_bias +
      config_.tvd_noise_factor * std::sqrt(static_cast<double>(out_bins) / n);
  last_.tvd_in_limit =
      config_.tvd_bias +
      config_.tvd_noise_factor * std::sqrt(static_cast<double>(in_bins) / n);

  std::size_t out_dof = 1;
  std::size_t in_dof = 1;
  last_.chi2_out = chi2_hist_vs_pmf(probe.outdegree_hist,
                                    prediction_.out_pmf, samples, &out_dof);
  last_.chi2_in = chi2_hist_vs_pmf(probe.indegree_hist, prediction_.in_pmf,
                                   samples, &in_dof);
  const auto chi2_limit = [this, n](std::size_t dof) {
    const auto d = static_cast<double>(dof);
    return d + config_.chi2_noise_sd * std::sqrt(2.0 * d) +
           config_.chi2_bias_per_sample * n;
  };
  last_.chi2_out_limit = chi2_limit(out_dof);
  last_.chi2_in_limit = chi2_limit(in_dof);
  last_.degree_checked = true;

  monitor_.record(DriftCheck::kDegreeOut,
                  std::max(last_.tvd_out / last_.tvd_out_limit,
                           last_.chi2_out / last_.chi2_out_limit));
  monitor_.record(DriftCheck::kDegreeIn,
                  std::max(last_.tvd_in / last_.tvd_in_limit,
                           last_.chi2_in / last_.chi2_in_limit));
}

void TheoryOracle::check_rates(std::uint64_t round,
                               const CumulativeCounters& counters) {
  if (round < config_.warmup_rounds) return;
  if (!have_rate_baseline_) {
    // First post-warmup probe: pin the window start so transient rates
    // never dilute the steady-state estimate (same trick as the watchdog).
    rate_baseline_ = counters;
    have_rate_baseline_ = true;
    return;
  }
  const std::uint64_t sent = counter_delta(counters.sent, rate_baseline_.sent);
  last_.window_sent = sent;
  if (sent < config_.min_sent_for_rates) return;
  const auto sent_d = static_cast<double>(sent);
  last_.duplication_rate =
      static_cast<double>(counter_delta(counters.duplications,
                                        rate_baseline_.duplications)) /
      sent_d;
  last_.deletion_rate =
      static_cast<double>(counter_delta(counters.deletions,
                                        rate_baseline_.deletions)) /
      sent_d;
  last_.rates_checked = true;

  // Lemma 6.7: dup rate in [ℓ, ℓ+δ] — against the *predicted* ℓ.
  const double lo = prediction_.loss;
  const double hi = prediction_.loss + prediction_.delta;
  double dup_excess = 0.0;
  if (last_.duplication_rate < lo) dup_excess = lo - last_.duplication_rate;
  if (last_.duplication_rate > hi) dup_excess = last_.duplication_rate - hi;
  monitor_.record(DriftCheck::kDuplicationRate,
                  dup_excess / config_.rate_tolerance);

  // Lemma 6.6 via the MC: deletion probability at the predicted ℓ.
  const double del_err =
      std::abs(last_.deletion_rate - prediction_.deletion_probability);
  monitor_.record(DriftCheck::kDeletionRate, del_err / config_.rate_tolerance);
}

void TheoryOracle::check_uniformity(
    std::span<const std::uint32_t> occurrences) {
  if (occurrences.empty()) return;
  if (occurrence_sum_.size() != occurrences.size()) {
    occurrence_sum_.assign(occurrences.size(), 0);
    always_live_.assign(occurrences.size(), 1);
    uniformity_probes_ = 0;
  }
  for (std::size_t i = 0; i < occurrences.size(); ++i) {
    if (occurrences[i] == kDeadNodeOccurrence) {
      always_live_[i] = 0;
    } else if (always_live_[i] != 0) {
      occurrence_sum_[i] += occurrences[i];
    }
  }
  ++uniformity_probes_;
  if (uniformity_probes_ < config_.min_probes_for_uniformity) return;

  std::uint64_t m = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < occurrence_sum_.size(); ++i) {
    if (always_live_[i] != 0) {
      ++m;
      sum += static_cast<double>(occurrence_sum_[i]);
    }
  }
  if (m < 16) return;  // too few stable ids for a max-deviation statistic
  const double mean = sum / static_cast<double>(m);
  double sq = 0.0;
  double max_dev = 0.0;
  for (std::size_t i = 0; i < occurrence_sum_.size(); ++i) {
    if (always_live_[i] == 0) continue;
    const double dev = static_cast<double>(occurrence_sum_[i]) - mean;
    sq += dev * dev;
    max_dev = std::max(max_dev, std::abs(dev));
  }
  const double sd =
      std::sqrt(sq / static_cast<double>(m > 1 ? m - 1 : 1));
  if (sd <= 0.0) return;
  last_.uniformity_z = max_dev / sd;
  last_.uniformity_limit =
      config_.uniformity_slack *
      std::sqrt(2.0 * std::log(static_cast<double>(m)));
  last_.uniformity_ids = m;
  last_.uniformity_checked = true;
  monitor_.record(DriftCheck::kUniformity,
                  last_.uniformity_z / last_.uniformity_limit);
}

void TheoryOracle::check_alpha(const FlatClusterProbe& probe) {
  if (probe.occupied_slots == 0) return;
  last_.alpha_hat = 1.0 - static_cast<double>(probe.dependent_entries) /
                              static_cast<double>(probe.occupied_slots);
  last_.alpha_checked = true;
  const double shortfall =
      std::max(0.0, prediction_.alpha_lower_bound - last_.alpha_hat);
  monitor_.record(DriftCheck::kIndependence,
                  shortfall / config_.alpha_tolerance);
}

void TheoryOracle::observe(std::uint64_t round, const FlatClusterProbe& probe,
                           std::span<const std::uint32_t> occurrences,
                           const CumulativeCounters& counters) {
  ++probes_;
  last_ = OracleSnapshot{};
  last_.round = round;
  const bool expected = round_expected(round);
  if (!expected && last_probe_expected_) {
    // Suppression just ended: the rate window and the streaming uniformity
    // sums are poisoned by the declared fault, so restart both — this
    // probe re-pins the rate baseline and the uniformity census starts
    // accumulating from the healed overlay.
    have_rate_baseline_ = false;
    occurrence_sum_.clear();
    always_live_.clear();
    uniformity_probes_ = 0;
  }
  last_probe_expected_ = expected;
  monitor_.begin_probe(round, expected);
  if (round >= config_.warmup_rounds) {
    check_degree(probe);
    check_uniformity(occurrences);
    check_alpha(probe);
  }
  check_rates(round, counters);
  monitor_.end_probe();

  if (registry_ != nullptr) {
    const DriftSample& sample = monitor_.samples().back();
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(DriftCheck::kCheckCount); ++i) {
      registry_->set(score_gauges_[i], registry_shard_, sample.score[i]);
    }
    registry_->set(violations_gauge_, registry_shard_,
                   static_cast<double>(monitor_.violation_transitions()));
  }
}

std::string TheoryOracle::report() const {
  std::ostringstream out;
  out << "theory oracle: prediction ℓ=" << prediction_.loss
      << " δ=" << prediction_.delta << " E[out]=" << prediction_.expected_out
      << " dup=" << prediction_.duplication_probability
      << " del=" << prediction_.deletion_probability
      << " α≥" << prediction_.alpha_lower_bound << '\n';
  out << "  probes " << probes_ << ", last round " << last_.round << '\n';
  if (last_.degree_checked) {
    out << "  degree: TVD out " << last_.tvd_out << " (limit "
        << last_.tvd_out_limit << "), in " << last_.tvd_in << " (limit "
        << last_.tvd_in_limit << "); χ² out " << last_.chi2_out << " (limit "
        << last_.chi2_out_limit << ")\n";
  }
  if (last_.rates_checked) {
    out << "  rates: dup " << last_.duplication_rate << " vs ["
        << prediction_.loss << ", " << prediction_.loss + prediction_.delta
        << "], del " << last_.deletion_rate << " vs "
        << prediction_.deletion_probability << " over " << last_.window_sent
        << " sent\n";
  }
  if (last_.uniformity_checked) {
    out << "  uniformity: max|z| " << last_.uniformity_z << " (limit "
        << last_.uniformity_limit << ", ids " << last_.uniformity_ids
        << ")\n";
  }
  if (last_.alpha_checked) {
    out << "  independence: α̂ " << last_.alpha_hat << " vs bound "
        << prediction_.alpha_lower_bound << '\n';
  }
  out << monitor_.report();
  return out.str();
}

void TheoryOracle::write_json(std::ostream& out) const {
  out << "{\"prediction\":{\"loss\":" << prediction_.loss
      << ",\"delta\":" << prediction_.delta
      << ",\"view_size\":" << prediction_.view_size
      << ",\"min_degree\":" << prediction_.min_degree
      << ",\"expected_out\":" << prediction_.expected_out
      << ",\"expected_in\":" << prediction_.expected_in
      << ",\"duplication_probability\":"
      << prediction_.duplication_probability
      << ",\"deletion_probability\":" << prediction_.deletion_probability
      << ",\"alpha_lower_bound\":" << prediction_.alpha_lower_bound << '}'
      << ",\"probes\":" << probes_ << ",\"last\":{"
      << "\"round\":" << last_.round
      << ",\"degree_checked\":" << (last_.degree_checked ? "true" : "false")
      << ",\"tvd_out\":" << last_.tvd_out
      << ",\"tvd_out_limit\":" << last_.tvd_out_limit
      << ",\"tvd_in\":" << last_.tvd_in
      << ",\"tvd_in_limit\":" << last_.tvd_in_limit
      << ",\"chi2_out\":" << last_.chi2_out
      << ",\"chi2_out_limit\":" << last_.chi2_out_limit
      << ",\"chi2_in\":" << last_.chi2_in
      << ",\"chi2_in_limit\":" << last_.chi2_in_limit
      << ",\"rates_checked\":" << (last_.rates_checked ? "true" : "false")
      << ",\"duplication_rate\":" << last_.duplication_rate
      << ",\"deletion_rate\":" << last_.deletion_rate
      << ",\"window_sent\":" << last_.window_sent
      << ",\"uniformity_checked\":"
      << (last_.uniformity_checked ? "true" : "false")
      << ",\"uniformity_z\":" << last_.uniformity_z
      << ",\"uniformity_limit\":" << last_.uniformity_limit
      << ",\"uniformity_ids\":" << last_.uniformity_ids
      << ",\"alpha_checked\":" << (last_.alpha_checked ? "true" : "false")
      << ",\"alpha_hat\":" << last_.alpha_hat << "},\"monitor\":";
  monitor_.write_json(out);
  out << ",\"flight_dumped\":" << (flight_dumped_ ? "true" : "false") << '}';
}

}  // namespace gossip::obs
