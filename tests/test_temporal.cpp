#include "analysis/temporal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace gossip::analysis {
namespace {

TemporalParams base() {
  TemporalParams p;
  p.node_count = 1000;
  p.view_size = 40;
  p.expected_out = 28.0;
  p.alpha = 0.96;
  p.epsilon = 0.01;
  return p;
}

TEST(Temporal, ConductanceBoundFormula) {
  const auto p = base();
  // dE (dE-1) a / (2 s (s-1)).
  EXPECT_NEAR(expected_conductance_bound(p),
              28.0 * 27.0 * 0.96 / (2.0 * 40.0 * 39.0), 1e-12);
}

TEST(Temporal, TauBoundFormula) {
  const auto p = base();
  const double s = 40.0;
  const double de = 28.0;
  const double front = 16.0 * s * s * 39.0 * 39.0 /
                       (de * de * 27.0 * 27.0 * 0.96 * 0.96);
  const double expected =
      front * (1000.0 * s * std::log(1000.0) + std::log(4.0 / 0.01));
  EXPECT_NEAR(temporal_independence_bound(p), expected, expected * 1e-12);
}

TEST(Temporal, PerNodeBoundIsTauOverN) {
  const auto p = base();
  EXPECT_NEAR(temporal_independence_actions_per_node(p),
              temporal_independence_bound(p) / 1000.0, 1e-6);
}

TEST(Temporal, PerNodeActionsScaleAsSLogN) {
  // With constant s, tau/n ~ s log n: doubling n adds ~s log 2 plus lower
  // order terms -> the ratio of per-node bounds approaches
  // log(2n)/log(n).
  auto p = base();
  const double at_n = temporal_independence_actions_per_node(p);
  p.node_count = 2000;
  const double at_2n = temporal_independence_actions_per_node(p);
  const double expected_ratio = std::log(2000.0) / std::log(1000.0);
  EXPECT_NEAR(at_2n / at_n, expected_ratio, 0.01);
}

TEST(Temporal, BoundDegradesGracefullyWithAlpha) {
  auto p = base();
  const double strong = temporal_independence_bound(p);
  p.alpha = 0.48;  // half the independence
  const double weak = temporal_independence_bound(p);
  // tau ~ 1/alpha^2.
  EXPECT_NEAR(weak / strong, 4.0, 1e-9);
}

TEST(Temporal, TighterEpsilonCostsOnlyLogarithmically) {
  auto p = base();
  const double loose = temporal_independence_bound(p);
  p.epsilon = 1e-9;
  const double tight = temporal_independence_bound(p);
  EXPECT_LT(tight / loose, 1.01);  // n s log n dominates
}

TEST(Temporal, Validation) {
  auto p = base();
  p.node_count = 1;
  EXPECT_THROW((void)(expected_conductance_bound(p)), std::invalid_argument);
  p = base();
  p.expected_out = 1.0;
  EXPECT_THROW((void)(temporal_independence_bound(p)), std::invalid_argument);
  p = base();
  p.alpha = 0.0;
  EXPECT_THROW((void)(temporal_independence_bound(p)), std::invalid_argument);
  p = base();
  p.epsilon = 1.0;
  EXPECT_THROW((void)(temporal_independence_bound(p)), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::analysis
