#include "common/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace gossip {

namespace {

bool needs_quoting(const std::string& text) {
  return text.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& raw : cells) {
    if (!first) out_ << ',';
    first = false;
    out_ << (needs_quoting(raw) ? quote(raw) : raw);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::cell(const std::string& text) { return text; }

std::string CsvWriter::cell(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string CsvWriter::cell(std::uint64_t value) {
  return std::to_string(value);
}

void write_csv_series(std::ostream& out, const std::vector<std::string>& header,
                      const std::vector<std::vector<double>>& columns) {
  if (header.size() != columns.size()) {
    throw std::invalid_argument("header/column count mismatch");
  }
  std::size_t length = 0;
  for (const auto& col : columns) {
    if (length == 0) length = col.size();
    if (col.size() != length) {
      throw std::invalid_argument("columns have unequal lengths");
    }
  }
  CsvWriter writer(out);
  writer.write_row(header);
  for (std::size_t row = 0; row < length; ++row) {
    std::vector<std::string> cells;
    cells.reserve(columns.size());
    for (const auto& col : columns) {
      cells.push_back(CsvWriter::cell(col[row]));
    }
    writer.write_row(cells);
  }
}

}  // namespace gossip
