file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_chain.dir/test_sparse_chain.cpp.o"
  "CMakeFiles/test_sparse_chain.dir/test_sparse_chain.cpp.o.d"
  "test_sparse_chain"
  "test_sparse_chain.pdb"
  "test_sparse_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
