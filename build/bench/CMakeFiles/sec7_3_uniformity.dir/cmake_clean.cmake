file(REMOVE_RECURSE
  "CMakeFiles/sec7_3_uniformity.dir/sec7_3_uniformity.cpp.o"
  "CMakeFiles/sec7_3_uniformity.dir/sec7_3_uniformity.cpp.o.d"
  "sec7_3_uniformity"
  "sec7_3_uniformity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_3_uniformity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
