#include "sampling/size_estimator.hpp"

namespace gossip::sampling {

void BirthdaySizeEstimator::add_sample(NodeId id) {
  if (id >= counts_.size()) counts_.resize(id + 1, 0);
  // Each prior occurrence of this id forms one new colliding pair.
  collisions_ += counts_[id];
  ++counts_[id];
  ++samples_;
}

std::uint64_t BirthdaySizeEstimator::collision_pairs() const {
  return collisions_;
}

std::optional<double> BirthdaySizeEstimator::estimate() const {
  if (collisions_ == 0 || samples_ < 2) return std::nullopt;
  const auto k = static_cast<double>(samples_);
  return k * (k - 1.0) / (2.0 * static_cast<double>(collisions_));
}

void BirthdaySizeEstimator::reset() {
  counts_.clear();
  samples_ = 0;
  collisions_ = 0;
}

}  // namespace gossip::sampling
