#include "sim/cluster.hpp"
#include "sim/cluster.hpp"
