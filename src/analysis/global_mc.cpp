#include "analysis/global_mc.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace gossip::analysis {

namespace {

// Removes one instance of `id` from a sorted multiset view.
void remove_instance(std::vector<NodeId>& view, NodeId id) {
  const auto it = std::lower_bound(view.begin(), view.end(), id);
  assert(it != view.end() && *it == id);
  view.erase(it);
}

// Inserts an id keeping the view sorted.
void insert_instance(std::vector<NodeId>& view, NodeId id) {
  view.insert(std::upper_bound(view.begin(), view.end(), id), id);
}

// Interned storage for global states. Each state is one flat record in a
// shared arena — `n` view lengths followed by the concatenated (sorted)
// view contents — deduplicated through an open-addressing hash table that
// compares records in place. No per-state heap allocations, no string
// keys: interning a candidate state touches only the reusable encode
// buffer and the arena.
class StateArena {
 public:
  explicit StateArena(std::size_t node_count) : n_(node_count) {}

  [[nodiscard]] std::size_t size() const { return begin_.size(); }

  // Interns the state, returning its dense index (appending a new record
  // when unseen).
  std::size_t intern(const GlobalState& state) {
    assert(state.size() == n_);
    encode_buffer_.clear();
    for (const auto& view : state) {
      encode_buffer_.push_back(static_cast<NodeId>(view.size()));
    }
    for (const auto& view : state) {
      encode_buffer_.insert(encode_buffer_.end(), view.begin(), view.end());
    }
    const std::uint64_t h = hash(encode_buffer_);

    if (table_.empty()) rehash(1024);
    const std::size_t mask = table_.size() - 1;
    std::size_t pos = static_cast<std::size_t>(h) & mask;
    while (table_[pos] != 0) {
      const std::size_t candidate = table_[pos] - 1;
      if (hashes_[candidate] == h && equals(candidate, encode_buffer_)) {
        return candidate;
      }
      pos = (pos + 1) & mask;
    }

    const std::size_t index = begin_.size();
    begin_.push_back(arena_.size());
    arena_.insert(arena_.end(), encode_buffer_.begin(), encode_buffer_.end());
    hashes_.push_back(h);
    table_[pos] = index + 1;
    if ((begin_.size() + 1) * 10 > table_.size() * 7) {
      rehash(table_.size() * 2);
    }
    return index;
  }

  // Decodes record `index` back into the nested-vector representation.
  [[nodiscard]] GlobalState decode(std::size_t index) const {
    GlobalState state(n_);
    const NodeId* record = arena_.data() + begin_[index];
    const NodeId* ids = record + n_;
    for (std::size_t u = 0; u < n_; ++u) {
      state[u].assign(ids, ids + record[u]);
      ids += record[u];
    }
    return state;
  }

 private:
  [[nodiscard]] static std::uint64_t hash(const std::vector<NodeId>& record) {
    // FNV-1a over the raw id values.
    std::uint64_t h = 1469598103934665603ULL;
    for (const NodeId v : record) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return h;
  }

  [[nodiscard]] bool equals(std::size_t index,
                            const std::vector<NodeId>& record) const {
    const std::size_t offset = begin_[index];
    const std::size_t end = index + 1 < begin_.size() ? begin_[index + 1]
                                                      : arena_.size();
    if (end - offset != record.size()) return false;
    return std::equal(record.begin(), record.end(), arena_.begin() + offset);
  }

  void rehash(std::size_t capacity) {
    table_.assign(capacity, 0);
    const std::size_t mask = capacity - 1;
    for (std::size_t s = 0; s < begin_.size(); ++s) {
      std::size_t pos = static_cast<std::size_t>(hashes_[s]) & mask;
      while (table_[pos] != 0) pos = (pos + 1) & mask;
      table_[pos] = s + 1;
    }
  }

  std::size_t n_;
  std::vector<NodeId> arena_;        // concatenated records
  std::vector<std::size_t> begin_;   // state index -> arena offset
  std::vector<std::uint64_t> hashes_;
  std::vector<std::size_t> table_;   // open addressing; entry = index + 1
  std::vector<NodeId> encode_buffer_;
};

class GlobalMcBuilder {
 public:
  explicit GlobalMcBuilder(const GlobalMcParams& params)
      : p_(params), arena_(params.initial.node_count()) {
    validate();
  }

  GlobalMcResult build() {
    GlobalMcResult result;
    result.node_count = p_.initial.node_count();

    const GlobalState initial = state_from_graph(p_.initial);
    arena_.intern(initial);
    chain_.resize(1);

    // Breadth-first exploration; transitions are recorded as states are
    // expanded.
    for (std::size_t s = 0; s < arena_.size(); ++s) {
      if (arena_.size() > p_.max_states) {
        result.exploration_complete = false;
        break;
      }
      expand(s);
    }
    result.exploration_complete =
        result.exploration_complete && arena_.size() <= p_.max_states;

    chain_.resize(arena_.size());
    chain_.finalize();
    result.states.reserve(arena_.size());
    for (std::size_t s = 0; s < arena_.size(); ++s) {
      result.states.push_back(arena_.decode(s));
    }
    result.strongly_connected =
        result.exploration_complete && chain_.strongly_connected();
    result.doubly_stochastic =
        result.exploration_complete && chain_.doubly_stochastic();

    if (result.exploration_complete && p_.compute_stationary) {
      result.stationary = chain_.stationary({}, p_.stationary_tolerance,
                                            p_.max_stationary_iterations);
      finalize_statistics(result);
    }
    result.chain = std::move(chain_);
    return result;
  }

 private:
  void validate() const {
    p_.config.validate();
    if (p_.loss < 0.0 || p_.loss >= 1.0) {
      throw std::invalid_argument("loss must be in [0, 1)");
    }
    if (p_.initial.node_count() < 2) {
      throw std::invalid_argument("need at least 2 nodes");
    }
    for (NodeId u = 0; u < p_.initial.node_count(); ++u) {
      const auto d = p_.initial.out_degree(u);
      if (d % 2 != 0) {
        throw std::invalid_argument("initial outdegrees must be even");
      }
      if (d > p_.config.view_size) {
        throw std::invalid_argument("initial view exceeds capacity");
      }
    }
  }

  // Enumerates all transformations out of state `s` with exact
  // probabilities; anything not emitted stays as an implicit self-loop.
  // All working states live in reusable member buffers — a full expansion
  // performs no steady-state allocations.
  void expand(std::size_t s) {
    base_ = arena_.decode(s);
    const std::size_t n = base_.size();
    const double cap = static_cast<double>(p_.config.view_size);
    const double pair_slots = cap * (cap - 1.0);

    for (NodeId u = 0; u < n; ++u) {
      const auto& view = base_[u];
      if (view.size() < 2) continue;  // only self-loop actions possible

      const bool duplicate = view.size() <= p_.config.min_degree;

      // Distinct id values with multiplicities: the view is sorted, so
      // runs enumerate them without any per-view map.
      for (std::size_t i = 0; i < view.size();) {
        const NodeId target = view[i];
        std::size_t ri = i;
        while (ri < view.size() && view[ri] == target) ++ri;
        const auto m_target = static_cast<double>(ri - i);
        for (std::size_t j = 0; j < view.size();) {
          const NodeId carried = view[j];
          std::size_t rj = j;
          while (rj < view.size() && view[rj] == carried) ++rj;
          const double m_carried =
              static_cast<double>(rj - j) - (target == carried ? 1.0 : 0.0);
          j = rj;
          const double favorable = m_target * m_carried;
          if (favorable <= 0.0) continue;
          const double p_pick =
              favorable / pair_slots / static_cast<double>(n);

          // Sender-side step (identical whether the message is lost).
          after_send_ = base_;
          if (!duplicate) {
            remove_instance(after_send_[u], target);
            remove_instance(after_send_[u], carried);
          }

          if (p_.loss > 0.0) {
            emit(s, after_send_, p_pick * p_.loss);
          }

          // Receive step at `target` (which may be u itself; the view used
          // is the post-send one — steps execute in order).
          delivered_ = after_send_;
          auto& receiver = delivered_[target];
          if (receiver.size() + 2 <= p_.config.view_size) {
            insert_instance(receiver, u);
            insert_instance(receiver, carried);
          }
          // else: deletion — ids dropped, view unchanged.
          emit(s, delivered_, p_pick * (1.0 - p_.loss));
        }
        i = ri;
      }
    }
  }

  void emit(std::size_t from, const GlobalState& to_state, double prob) {
    if (prob <= 0.0) return;
    // §7.1: partitioned membership graphs are excluded from G; edges
    // leading to them become self-loops.
    if (!weakly_connected(to_state)) return;
    const std::size_t to = arena_.intern(to_state);
    if (to >= chain_.state_count()) chain_.resize(arena_.size());
    chain_.add(from, to, prob);
  }

  // Weak connectivity of the membership graph (self-edges do not connect).
  [[nodiscard]] bool weakly_connected(const GlobalState& state) {
    const std::size_t n = state.size();
    parent_.resize(n);
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
    auto find = [&](std::size_t x) {
      while (parent_[x] != x) {
        parent_[x] = parent_[parent_[x]];
        x = parent_[x];
      }
      return x;
    };
    std::size_t components = n;
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : state[u]) {
        const std::size_t a = find(u);
        const std::size_t b = find(v);
        if (a != b) {
          parent_[a] = b;
          --components;
        }
      }
    }
    return components == 1;
  }

  [[nodiscard]] static bool is_simple_state(const GlobalState& state) {
    for (NodeId u = 0; u < state.size(); ++u) {
      const auto& view = state[u];
      for (std::size_t i = 0; i < view.size(); ++i) {
        if (view[i] == u) return false;                    // self-edge
        if (i > 0 && view[i] == view[i - 1]) return false; // parallel edge
      }
    }
    return true;
  }

  void finalize_statistics(GlobalMcResult& result) const {
    const auto& pi = result.stationary.distribution;
    const auto& states = result.states;
    const auto n_states = static_cast<double>(states.size());
    for (const double x : pi) {
      result.uniformity_deviation =
          std::max(result.uniformity_deviation, std::abs(x * n_states - 1.0));
    }

    // Uniformity restricted to simple states (exact Lemma 7.5 regime).
    double simple_mass = 0.0;
    for (std::size_t s = 0; s < states.size(); ++s) {
      if (is_simple_state(states[s])) {
        ++result.simple_state_count;
        simple_mass += pi[s];
      }
    }
    if (result.simple_state_count > 0) {
      const double mean =
          simple_mass / static_cast<double>(result.simple_state_count);
      for (std::size_t s = 0; s < states.size(); ++s) {
        if (!is_simple_state(states[s])) continue;
        result.simple_state_uniformity_deviation =
            std::max(result.simple_state_uniformity_deviation,
                     std::abs(pi[s] / mean - 1.0));
      }
    }

    // P(v in u.lv) under pi, for all ordered pairs u != v.
    const std::size_t n = result.node_count;
    std::vector<double> presence(n * n, 0.0);
    for (std::size_t s = 0; s < states.size(); ++s) {
      for (NodeId u = 0; u < n; ++u) {
        const auto& view = states[s][u];
        NodeId previous = kNilNode;
        for (const NodeId v : view) {
          if (v == previous) continue;  // presence, not multiplicity
          previous = v;
          presence[u * n + v] += pi[s];
        }
      }
    }
    double lo = 2.0;
    double hi = -1.0;
    double sum = 0.0;
    std::size_t pairs = 0;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u == v) continue;  // self-edges exempt (Lemma 7.6)
        const double p = presence[u * n + v];
        lo = std::min(lo, p);
        hi = std::max(hi, p);
        sum += p;
        ++pairs;
      }
    }
    const double mean = sum / static_cast<double>(pairs);
    result.edge_presence_spread = mean > 0.0 ? (hi - lo) / mean : 0.0;
  }

  GlobalMcParams p_;
  StateArena arena_;
  markov::SparseChain chain_;
  // expand() working buffers, reused across all expansions.
  GlobalState base_;
  GlobalState after_send_;
  GlobalState delivered_;
  std::vector<std::size_t> parent_;
};

}  // namespace

GlobalMcResult build_global_mc(const GlobalMcParams& params) {
  return GlobalMcBuilder(params).build();
}

GlobalState state_from_graph(const Digraph& graph) {
  GlobalState state(graph.node_count());
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    state[u] = graph.out_neighbors(u);
    std::sort(state[u].begin(), state[u].end());
  }
  return state;
}

Digraph graph_from_state(const GlobalState& state) {
  Digraph g(state.size());
  for (NodeId u = 0; u < state.size(); ++u) {
    for (const NodeId v : state[u]) {
      g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace gossip::analysis
