#include "sim/session_churn.hpp"
#include "sim/session_churn.hpp"
