# Empty dependencies file for test_newscast.
# This may be replaced when dependencies are built.
