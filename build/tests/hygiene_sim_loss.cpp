#include "sim/loss.hpp"
#include "sim/loss.hpp"
