#include "analysis/degree_mc.hpp"
#include "analysis/degree_mc.hpp"
