# Empty compiler generated dependencies file for sec7_4_connectivity_threshold.
# This may be replaced when dependencies are built.
