#include "graph/graph_stats.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace gossip {

DegreeSummary degree_summary(const Digraph& g) {
  DegreeSummary s;
  if (g.node_count() == 0) return s;
  RunningStats outs;
  RunningStats ins;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    outs.add(static_cast<double>(g.out_degree(u)));
    ins.add(static_cast<double>(g.in_degree(u)));
  }
  s.out_mean = outs.mean();
  s.out_variance = outs.variance();
  s.in_mean = ins.mean();
  s.in_variance = ins.variance();
  s.out_min = static_cast<std::size_t>(outs.min());
  s.out_max = static_cast<std::size_t>(outs.max());
  s.in_min = static_cast<std::size_t>(ins.min());
  s.in_max = static_cast<std::size_t>(ins.max());
  return s;
}

Histogram out_degree_histogram(const Digraph& g) {
  Histogram h;
  for (NodeId u = 0; u < g.node_count(); ++u) h.add(g.out_degree(u));
  return h;
}

Histogram in_degree_histogram(const Digraph& g) {
  Histogram h;
  for (NodeId u = 0; u < g.node_count(); ++u) h.add(g.in_degree(u));
  return h;
}

Histogram sum_degree_histogram(const Digraph& g) {
  Histogram h;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    h.add(g.out_degree(u) + 2 * g.in_degree(u));
  }
  return h;
}

double structural_dependence_fraction(const Digraph& g) {
  if (g.edge_count() == 0) return 0.0;
  const std::size_t dependent = g.self_edge_count() + g.parallel_edge_count();
  return static_cast<double>(std::min(dependent, g.edge_count())) /
         static_cast<double>(g.edge_count());
}

}  // namespace gossip
