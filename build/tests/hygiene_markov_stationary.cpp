#include "markov/stationary.hpp"
#include "markov/stationary.hpp"
