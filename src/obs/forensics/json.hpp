// Minimal JSON reader for the forensics plane.
//
// The analyzer consumes artifacts this repo itself writes — chaos --json
// reports and sfgossip.snapshot/v1 JSONL lines — so this is a small,
// dependency-free recursive-descent parser, not a general-purpose JSON
// library: no streaming, no comments, documents limited to a fixed
// nesting depth. Objects keep their members in source order (a vector of
// pairs, not a map) so anything re-emitted downstream stays deterministic.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gossip::obs::forensics {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup (first match); nullptr when absent or not an
  // object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  // Typed member accessors with fallbacks, for the tolerant artifact
  // readers: a missing or mistyped key yields the fallback, never a throw.
  [[nodiscard]] double get_number(std::string_view key,
                                  double fallback = 0.0) const;
  [[nodiscard]] bool get_bool(std::string_view key,
                              bool fallback = false) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback = "") const;
};

// Parses exactly one JSON document (trailing whitespace allowed, anything
// else is an error). Returns false and sets *error (when non-null) with a
// byte offset on malformed input; *out is left empty on failure.
[[nodiscard]] bool parse_json(std::string_view text, JsonValue* out,
                              std::string* error);

}  // namespace gossip::obs::forensics
