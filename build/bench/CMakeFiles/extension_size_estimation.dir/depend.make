# Empty dependencies file for extension_size_estimation.
# This may be replaced when dependencies are built.
