file(REMOVE_RECURSE
  "CMakeFiles/gossip_common.dir/common/binomial.cpp.o"
  "CMakeFiles/gossip_common.dir/common/binomial.cpp.o.d"
  "CMakeFiles/gossip_common.dir/common/cli.cpp.o"
  "CMakeFiles/gossip_common.dir/common/cli.cpp.o.d"
  "CMakeFiles/gossip_common.dir/common/csv.cpp.o"
  "CMakeFiles/gossip_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/gossip_common.dir/common/discrete_distribution.cpp.o"
  "CMakeFiles/gossip_common.dir/common/discrete_distribution.cpp.o.d"
  "CMakeFiles/gossip_common.dir/common/histogram.cpp.o"
  "CMakeFiles/gossip_common.dir/common/histogram.cpp.o.d"
  "CMakeFiles/gossip_common.dir/common/rng.cpp.o"
  "CMakeFiles/gossip_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/gossip_common.dir/common/stats.cpp.o"
  "CMakeFiles/gossip_common.dir/common/stats.cpp.o.d"
  "libgossip_common.a"
  "libgossip_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
